package shamfinder

import (
	"context"
	"errors"
	"fmt"
	"net"
	"time"

	"repro/internal/dnsclient"
	"repro/internal/service"
	"repro/internal/triage"
	"repro/internal/zonewatch"
)

// WatchZoneOptions configures WatchZone.
type WatchZoneOptions struct {
	// ZonePath is the zone file to watch (required).
	ZonePath string
	// StateDir holds the durable watch state — seen-set, checkpoint —
	// and, by default, the deltas journal (required; created if
	// missing).
	StateDir string
	// DeltasPath overrides the append-only output of added FQDNs.
	// Empty means StateDir/deltas.out.
	DeltasPath string

	// SnapshotPath, RefsPath, References and Build resolve the
	// detection engine exactly as Serve does: snapshot cold-start with
	// an optional explicit reference list overriding the embedded
	// detector, or a full build.
	SnapshotPath string
	RefsPath     string
	References   []string
	Build        Config

	// Interval is the zone polling cadence (0 = the watcher default,
	// 10s).
	Interval time.Duration
	// CheckpointEvery is the number of zone lines between durable
	// checkpoints (0 = default).
	CheckpointEvery int64
	// ThrottleLPS caps scanning at this many zone lines per second;
	// 0 means unthrottled.
	ThrottleLPS int
	// MinZoneFraction is the truncation guard (0 = default, 0.5).
	MinZoneFraction float64

	// Resolver, when non-empty, probes each detected addition for
	// NS/A/MX against this "host:port" DNS server — the paper's §6.1
	// liveness sweep running continuously on the delta stream.
	Resolver string

	// Addr, when non-empty, also serves the HTTP API on this address;
	// /metrics then carries the watcher's health block alongside the
	// serving counters, and /v1/detect answers off the same engine.
	Addr string
	// OnListen, when non-nil, receives the bound address (port-0
	// callers and tests learn the actual port through it).
	OnListen func(addr net.Addr)

	// Once runs a single delta scan (draining any queued probes) and
	// returns, instead of polling forever — the cron-shaped mode.
	Once bool

	// Logf receives operational log lines; nil means silent.
	Logf func(format string, args ...any)
}

// WatchZone runs the crash-safe continuous zone watch: it streams each
// new zone generation against the durable seen-set, appends only the
// added FQDNs to the deltas journal (detections annotated with the
// imitated reference), and keeps running — degraded, visibly — through
// missing zones, truncated drops, corrupt state and resolver outages.
// A SIGKILL at any point resumes from the last checkpoint with no
// duplicated and no dropped deltas.
//
// With Once set it performs one scan and returns; otherwise it polls
// until ctx is cancelled (which returns nil — shutdown is not an
// error). With Addr set the HTTP API serves concurrently and its
// /metrics exposes the watcher's health.
func WatchZone(ctx context.Context, opt WatchZoneOptions) error {
	logf := opt.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	engine, _, err := buildEngine(ServeOptions{
		SnapshotPath: opt.SnapshotPath,
		RefsPath:     opt.RefsPath,
		References:   opt.References,
		Build:        opt.Build,
	}, logf)
	if err != nil {
		return err
	}

	var probe func(context.Context, triage.Input) error
	if opt.Resolver != "" {
		client := dnsclient.New(opt.Resolver)
		probe = func(_ context.Context, in triage.Input) error {
			return client.Probe(in.FQDN).Err
		}
	}
	w, err := zonewatch.New(zonewatch.Config{
		ZonePath:        opt.ZonePath,
		StateDir:        opt.StateDir,
		DeltasPath:      opt.DeltasPath,
		Engine:          engine.inner,
		Interval:        opt.Interval,
		CheckpointEvery: opt.CheckpointEvery,
		ThrottleLPS:     opt.ThrottleLPS,
		MinZoneFraction: opt.MinZoneFraction,
		Probe:           probe,
		Logf:            logf,
	})
	if err != nil {
		return err
	}

	if opt.Once {
		stats, err := w.ScanOnce(ctx)
		if err != nil {
			return err
		}
		w.DrainProbes(ctx)
		h := w.Health()
		logf("scan: %d lines, %d candidates, %d added (%d detected); probes %d ok / %d failed",
			stats.Lines, stats.Names, stats.Added, stats.Detected, h.ProbesSubmitted, h.ProbeFailures)
		if stats.UpToDate {
			logf("zone already fully scanned; nothing to do")
		}
		return nil
	}

	// Service mode: the API serves while the watcher polls; either one
	// ending (or ctx) stops the other.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var srvErr chan error
	if opt.Addr != "" {
		srv := service.New(service.Config{Engine: engine.inner, ZoneWatch: w, Logf: logf})
		ln, err := net.Listen("tcp", opt.Addr)
		if err != nil {
			return fmt.Errorf("shamfinder: listening on %s: %w", opt.Addr, err)
		}
		if opt.OnListen != nil {
			opt.OnListen(ln.Addr())
		}
		logf("serving metrics and detection on %s", ln.Addr())
		srvErr = make(chan error, 1)
		go func() {
			srvErr <- srv.Serve(ctx, ln)
			cancel() // a dead listener must not leave the watcher headless
		}()
	}
	runErr := w.Run(ctx)
	if errors.Is(runErr, context.Canceled) || errors.Is(runErr, context.DeadlineExceeded) {
		runErr = nil
	}
	if srvErr != nil {
		cancel()
		if err := <-srvErr; err != nil && runErr == nil {
			runErr = err
		}
	}
	return runErr
}
