package shamfinder

import (
	"context"
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"time"

	"repro/internal/dnsclient"
	"repro/internal/jobstore"
	"repro/internal/service"
	"repro/internal/triage"
	"repro/internal/zonewatch"
)

// WatchZoneOptions configures WatchZone.
type WatchZoneOptions struct {
	// ZonePath is the zone file to watch (required).
	ZonePath string
	// StateDir holds the durable watch state — seen-set, checkpoint —
	// and, by default, the deltas journal (required; created if
	// missing).
	StateDir string
	// DeltasPath overrides the append-only output of added FQDNs.
	// Empty means StateDir/deltas.out.
	DeltasPath string

	// SnapshotPath, RefsPath, References and Build resolve the
	// detection engine exactly as Serve does: snapshot cold-start with
	// an optional explicit reference list overriding the embedded
	// detector, or a full build.
	SnapshotPath string
	RefsPath     string
	References   []string
	Build        Config

	// Interval is the zone polling cadence (0 = the watcher default,
	// 10s).
	Interval time.Duration
	// CheckpointEvery is the number of zone lines between durable
	// checkpoints (0 = default).
	CheckpointEvery int64
	// ThrottleLPS caps scanning at this many zone lines per second;
	// 0 means unthrottled.
	ThrottleLPS int
	// MinZoneFraction is the truncation guard (0 = default, 0.5).
	MinZoneFraction float64

	// Resolver, when non-empty, probes each detected addition for
	// NS/A/MX against this "host:port" DNS server — the paper's §6.1
	// liveness sweep running continuously on the delta stream.
	Resolver string
	// Transport selects the probing transport ("udp", "tcp", "dot" or
	// "doh"; empty = udp). Batched survey jobs inherit it.
	Transport string

	// Addr, when non-empty, also serves the HTTP API on this address;
	// /metrics then carries the watcher's health block alongside the
	// serving counters, and /v1/detect answers off the same engine.
	Addr string
	// OnListen, when non-nil, receives the bound address (port-0
	// callers and tests learn the actual port through it).
	OnListen func(addr net.Addr)

	// SurveyJobDir, when non-empty, closes the paper's monitoring loop:
	// batched journal deltas become durable survey jobs persisted under
	// this directory, each batch recording the journal span it covers so
	// a restart re-submits nothing and orphans nothing. Requires Addr
	// (jobs are observed over the HTTP API) and excludes Once.
	SurveyJobDir string
	// SurveyBatch cuts a survey batch once this many deltas are pending
	// (0 = batcher default).
	SurveyBatch int
	// SurveyAge cuts a smaller pending batch after this long (0 =
	// batcher default).
	SurveyAge time.Duration
	// SurveyStall is the per-job stall watchdog for batched surveys;
	// 0 disables it.
	SurveyStall time.Duration
	// SurveySkipWeb drops the web stage from batched surveys (DNS-only
	// monitoring).
	SurveySkipWeb bool

	// Once runs a single delta scan (draining any queued probes) and
	// returns, instead of polling forever — the cron-shaped mode.
	Once bool

	// Logf receives operational log lines; nil means silent.
	Logf func(format string, args ...any)
}

// WatchZone runs the crash-safe continuous zone watch: it streams each
// new zone generation against the durable seen-set, appends only the
// added FQDNs to the deltas journal (detections annotated with the
// imitated reference), and keeps running — degraded, visibly — through
// missing zones, truncated drops, corrupt state and resolver outages.
// A SIGKILL at any point resumes from the last checkpoint with no
// duplicated and no dropped deltas.
//
// With Once set it performs one scan and returns; otherwise it polls
// until ctx is cancelled (which returns nil — shutdown is not an
// error). With Addr set the HTTP API serves concurrently and its
// /metrics exposes the watcher's health.
func WatchZone(ctx context.Context, opt WatchZoneOptions) error {
	logf := opt.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if opt.SurveyJobDir != "" {
		if opt.Addr == "" {
			return fmt.Errorf("shamfinder: survey batching needs Addr — jobs are served and observed over the HTTP API")
		}
		if opt.Once {
			return fmt.Errorf("shamfinder: survey batching needs the long-running mode; Once would exit with jobs mid-flight")
		}
	}
	engine, _, err := buildEngine(ServeOptions{
		SnapshotPath: opt.SnapshotPath,
		RefsPath:     opt.RefsPath,
		References:   opt.References,
		Build:        opt.Build,
	}, logf)
	if err != nil {
		return err
	}

	transport, err := dnsclient.ParseTransport(opt.Transport)
	if err != nil {
		return fmt.Errorf("shamfinder: %w", err)
	}
	var probe func(context.Context, triage.Input) error
	if opt.Resolver != "" {
		client := dnsclient.New(opt.Resolver)
		client.Transport = transport
		defer client.Close()
		probe = func(pctx context.Context, in triage.Input) error {
			return client.ProbeContext(pctx, in.FQDN).Err
		}
	}
	w, err := zonewatch.New(zonewatch.Config{
		ZonePath:        opt.ZonePath,
		StateDir:        opt.StateDir,
		DeltasPath:      opt.DeltasPath,
		Engine:          engine.inner,
		Interval:        opt.Interval,
		CheckpointEvery: opt.CheckpointEvery,
		ThrottleLPS:     opt.ThrottleLPS,
		MinZoneFraction: opt.MinZoneFraction,
		Probe:           probe,
		Logf:            logf,
	})
	if err != nil {
		return err
	}

	if opt.Once {
		stats, err := w.ScanOnce(ctx)
		if err != nil {
			return err
		}
		w.DrainProbes(ctx)
		h := w.Health()
		logf("scan: %d lines, %d candidates, %d added (%d detected); probes %d ok / %d failed",
			stats.Lines, stats.Names, stats.Added, stats.Detected, h.ProbesSubmitted, h.ProbeFailures)
		if stats.UpToDate {
			logf("zone already fully scanned; nothing to do")
		}
		return nil
	}

	// Service mode: the API serves while the watcher polls; either one
	// ending (or ctx) stops the other.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var srvErr chan error
	if opt.Addr != "" {
		surveyCfg := service.SurveyConfig{StallTimeout: opt.SurveyStall}
		if opt.SurveyJobDir != "" {
			store, err := jobstore.Open(opt.SurveyJobDir)
			if err != nil {
				return fmt.Errorf("shamfinder: survey job dir: %w", err)
			}
			surveyCfg.Store = store
		}
		srv := service.New(service.Config{Engine: engine.inner, ZoneWatch: w, Survey: surveyCfg, Logf: logf})
		if surveyCfg.Store != nil {
			// Resume interrupted jobs before the batcher starts tailing:
			// recovery also tells the batcher (via MaxJournalTo) where the
			// last submitted batch's journal span ended, so nothing is
			// re-submitted and nothing between spans is orphaned.
			if err := srv.RecoverSurveys(); err != nil {
				return fmt.Errorf("shamfinder: recovering survey jobs: %w", err)
			}
			journal := opt.DeltasPath
			if journal == "" {
				journal = filepath.Join(opt.StateDir, "deltas.out")
			}
			// Batched jobs re-probe through the same resolver the watcher
			// uses; without one the DNS stage is skipped rather than left
			// to dial a default it was never given.
			spec := jobstore.Spec{
				Resolver:  opt.Resolver,
				Transport: string(transport),
				SkipDNS:   opt.Resolver == "",
				SkipWeb:   opt.SurveySkipWeb,
			}
			batcher, err := zonewatch.NewSurveyBatcher(zonewatch.SurveyBatcherConfig{
				JournalPath: journal,
				Submit: func(inputs []triage.Input, queried int, from, to int64) (string, error) {
					return srv.SubmitSurvey(spec, inputs, queried, journal, from, to)
				},
				MaxBatch: opt.SurveyBatch,
				MaxAge:   opt.SurveyAge,
				// Batch evaluation tracks the zone polling cadence: deltas
				// can only appear as fast as the watcher scans.
				Interval:       opt.Interval,
				Cursor:         surveyCfg.Store.MaxJournalTo(journal),
				DeadLetterPath: w.DeadLetterPath(),
				Logf:           logf,
			})
			if err != nil {
				return err
			}
			srv.SetJournalLag(batcher.Lag)
			go batcher.Run(ctx)
		}
		ln, err := net.Listen("tcp", opt.Addr)
		if err != nil {
			return fmt.Errorf("shamfinder: listening on %s: %w", opt.Addr, err)
		}
		if opt.OnListen != nil {
			opt.OnListen(ln.Addr())
		}
		logf("serving metrics and detection on %s", ln.Addr())
		srvErr = make(chan error, 1)
		go func() {
			srvErr <- srv.Serve(ctx, ln)
			cancel() // a dead listener must not leave the watcher headless
		}()
	}
	runErr := w.Run(ctx)
	if errors.Is(runErr, context.Canceled) || errors.Is(runErr, context.DeadlineExceeded) {
		runErr = nil
	}
	if srvErr != nil {
		cancel()
		if err := <-srvErr; err != nil && runErr == nil {
			runErr = err
		}
	}
	return runErr
}
