package shamfinder

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func writeWatchFixtures(t *testing.T, dir string, zoneLines ...string) (zonePath, refsPath string) {
	t.Helper()
	zonePath = filepath.Join(dir, "zone.txt")
	refsPath = filepath.Join(dir, "refs.txt")
	if err := os.WriteFile(zonePath, []byte(strings.Join(zoneLines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(refsPath, []byte("google.com\nfacebook.com\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return zonePath, refsPath
}

// TestWatchZoneOnce drives the public one-shot mode end to end: first
// scan emits the zone's candidates, a grown zone emits only the
// additions, and an unchanged zone emits nothing.
func TestWatchZoneOnce(t *testing.T) {
	dir := t.TempDir()
	zonePath, refsPath := writeWatchFixtures(t, dir,
		"google.com", "xn--ggle-55da.com", "plain.example")
	opt := WatchZoneOptions{
		ZonePath: zonePath,
		StateDir: filepath.Join(dir, "state"),
		RefsPath: refsPath,
		Build:    Config{FontScope: FontFast},
		Once:     true,
	}
	readDeltas := func() string {
		data, err := os.ReadFile(filepath.Join(dir, "state", "deltas.out"))
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}

	if err := WatchZone(context.Background(), opt); err != nil {
		t.Fatal(err)
	}
	got := readDeltas()
	if !strings.Contains(got, "xn--ggle-55da.com\tgoogle.com") {
		t.Fatalf("first scan deltas missing annotated detection:\n%s", got)
	}
	if strings.Contains(got, "plain.example") || strings.Contains(got, "google.com\n") {
		t.Fatalf("non-candidate lines leaked into deltas:\n%s", got)
	}

	// Grow the zone: only the addition is appended.
	zone, _ := os.ReadFile(zonePath)
	os.WriteFile(zonePath, append(zone, "xn--new-addition.example\n"...), 0o644)
	if err := WatchZone(context.Background(), opt); err != nil {
		t.Fatal(err)
	}
	grown := readDeltas()
	if !strings.HasPrefix(grown, got) || !strings.HasSuffix(grown, "xn--new-addition.example\n") {
		t.Fatalf("second scan did not append exactly the addition:\n%s", grown)
	}

	// Unchanged zone: byte-identical deltas.
	if err := WatchZone(context.Background(), opt); err != nil {
		t.Fatal(err)
	}
	if readDeltas() != grown {
		t.Fatal("up-to-date scan modified the deltas journal")
	}
}

// TestWatchZoneServiceMode runs the continuous mode with the HTTP API
// attached and asserts /metrics carries the watcher's health block,
// detection answers off the same engine, and cancellation is a clean
// (nil) shutdown.
func TestWatchZoneServiceMode(t *testing.T) {
	dir := t.TempDir()
	zonePath, refsPath := writeWatchFixtures(t, dir, "xn--ggle-55da.com")
	ctx, cancel := context.WithCancel(context.Background())
	addrc := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() {
		done <- WatchZone(ctx, WatchZoneOptions{
			ZonePath: zonePath,
			StateDir: filepath.Join(dir, "state"),
			RefsPath: refsPath,
			Build:    Config{FontScope: FontFast},
			Interval: 10 * time.Millisecond,
			Addr:     "127.0.0.1:0",
			OnListen: func(a net.Addr) { addrc <- a },
		})
	}()
	var addr net.Addr
	select {
	case addr = <-addrc:
	case err := <-done:
		t.Fatalf("WatchZone exited before listening: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("never listened")
	}

	type stats struct {
		ZoneWatch *struct {
			State string `json:"state"`
			Added uint64 `json:"deltas_emitted"`
		} `json:"zonewatch"`
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get("http://" + addr.String() + "/metrics")
		var st stats
		if err == nil {
			err = json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
		}
		if err == nil && st.ZoneWatch != nil && st.ZoneWatch.Added == 1 && st.ZoneWatch.State == "ok" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("metrics never showed a healthy watcher: %+v (err %v)", st.ZoneWatch, err)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The same engine answers detection queries.
	resp, err := http.Post("http://"+addr.String()+"/v1/detect", "application/json",
		strings.NewReader(`{"fqdn":"xn--ggle-55da.com"}`))
	if err != nil {
		t.Fatal(err)
	}
	var det struct {
		Matches []json.RawMessage `json:"matches"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&det); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(det.Matches) != 1 {
		t.Fatalf("detect over watch-zone service returned %d matches", len(det.Matches))
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("WatchZone shutdown returned %v, want nil", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("WatchZone did not stop on cancel")
	}
}

// TestWatchZoneSurveyLoop drives the paper's full monitoring loop
// through the public facade: the watcher detects zone additions, the
// batcher cuts the journal deltas into a durable survey job, the job
// runs to done and its tally lands in /metrics — and a restart over
// the same state recovers the finished job and re-submits nothing.
func TestWatchZoneSurveyLoop(t *testing.T) {
	dir := t.TempDir()
	zonePath, refsPath := writeWatchFixtures(t, dir,
		"xn--ggle-55da.com", "xn--other-candidate.example")
	opt := WatchZoneOptions{
		ZonePath:     zonePath,
		StateDir:     filepath.Join(dir, "state"),
		RefsPath:     refsPath,
		Build:        Config{FontScope: FontFast},
		Interval:     10 * time.Millisecond,
		Addr:         "127.0.0.1:0",
		SurveyJobDir: filepath.Join(dir, "jobs"),
		SurveyAge:    20 * time.Millisecond,
		// No resolver and no web stage: the skip-all pipeline keeps the
		// loop hermetic while still exercising journal → batch → job →
		// tally end to end.
		SurveySkipWeb: true,
	}

	type loopStats struct {
		SurveyJobs map[string]int `json:"survey_jobs"`
		Resumed    uint64         `json:"surveys_resumed"`
		Recovered  uint64         `json:"surveys_recovered"`
		Lag        int64          `json:"survey_journal_lag"`
		Tally      *struct {
			Total int `json:"total"`
		} `json:"survey_tally"`
	}
	start := func() (string, context.CancelFunc, chan error) {
		t.Helper()
		ctx, cancel := context.WithCancel(context.Background())
		addrc := make(chan net.Addr, 1)
		done := make(chan error, 1)
		o := opt
		o.OnListen = func(a net.Addr) { addrc <- a }
		go func() { done <- WatchZone(ctx, o) }()
		select {
		case a := <-addrc:
			return a.String(), cancel, done
		case err := <-done:
			t.Fatalf("WatchZone exited before listening: %v", err)
		case <-time.After(30 * time.Second):
			t.Fatal("never listened")
		}
		panic("unreachable")
	}
	scrape := func(addr string) (loopStats, error) {
		resp, err := http.Get("http://" + addr + "/metrics")
		if err != nil {
			return loopStats{}, err
		}
		defer resp.Body.Close()
		var st loopStats
		return st, json.NewDecoder(resp.Body).Decode(&st)
	}
	stop := func(cancel context.CancelFunc, done chan error) {
		t.Helper()
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("WatchZone shutdown returned %v, want nil", err)
			}
		case <-time.After(15 * time.Second):
			t.Fatal("WatchZone did not stop on cancel")
		}
	}

	// First run: one batch covers both journal lines — the detected
	// homograph becomes the survey input, the plain candidate counts
	// into the funnel's queried denominator — the job runs to done, and
	// the merged tally plus a drained journal show up in the metrics.
	addr, cancel, done := start()
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, err := scrape(addr)
		if err == nil && st.SurveyJobs["done"] == 1 && st.Tally != nil &&
			st.Tally.Total == 1 && st.Lag == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("survey loop never completed: %+v (err %v)", st, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	stop(cancel, done)
	if _, err := os.Stat(filepath.Join(dir, "jobs", "j1", "manifest.job")); err != nil {
		t.Fatalf("finished batch job left no durable manifest: %v", err)
	}

	// Restart over the same state: the finished job republishes from
	// its manifest and the batcher resumes past the recorded journal
	// span — no duplicate submission, no resumed (interrupted) jobs.
	addr, cancel, done = start()
	deadline = time.Now().Add(30 * time.Second)
	for {
		st, err := scrape(addr)
		if err == nil && st.Recovered == 1 && st.Lag == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("restart never recovered the finished job: %+v (err %v)", st, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	time.Sleep(200 * time.Millisecond) // ~20 batcher ticks: a duplicate batch would land by now
	st, err := scrape(addr)
	if err != nil {
		t.Fatal(err)
	}
	if st.SurveyJobs["done"] != 1 || st.Resumed != 0 || st.Tally == nil || st.Tally.Total != 1 {
		t.Fatalf("restart re-submitted or resumed work: %+v", st)
	}
	stop(cancel, done)
}
