package langid

import "repro/internal/stats"

// Pool is the character inventory used to synthesise labels in one
// language. The registry generator samples from these pools so the
// classifier (and the paper's Table 7) sees realistic script mixes.
type Pool struct {
	Language Language
	// Core letters drawn for most positions.
	Core []rune
	// Accents are language-signature characters mixed in at
	// AccentRate so Latin languages are separable.
	Accents    []rune
	AccentRate float64
}

// Pools returns the label-synthesis inventory for every supported
// language. Core pools use only IDNA-permitted letters.
func Pools() []Pool {
	return []Pool{
		{Language: Chinese, Core: runesRange(0x4E00, 0x4E80)},
		{Language: Korean, Core: runesRange(0xAC00, 0xAC80)},
		{Language: Japanese, Core: append(runesRange(0x3042, 0x3060), runesRange(0x30A2, 0x30C0)...)},
		{Language: German, Core: []rune("abcdefghiklmnoprstuvwz"), Accents: []rune("äöüß"), AccentRate: 0.25},
		{Language: Turkish, Core: []rune("abcdefghiklmnoprstuvyz"), Accents: []rune("ğşı"), AccentRate: 0.3},
		{Language: French, Core: []rune("abcdefghiklmnoprstuv"), Accents: []rune("éèàç"), AccentRate: 0.25},
		{Language: Spanish, Core: []rune("abcdefghiklmnoprstuv"), Accents: []rune("ñáíóú"), AccentRate: 0.25},
		{Language: Russian, Core: runesRange(0x0430, 0x0450)},
		{Language: Arabic, Core: runesRange(0x0627, 0x0640)},
		{Language: Thai, Core: runesRange(0x0E01, 0x0E2E)},
		{Language: Vietnamese, Core: []rune("abcdeghiklmnopqrstuvxy"), Accents: []rune("ăâđêôơư"), AccentRate: 0.35},
		{Language: English, Core: []rune("abcdefghijklmnopqrstuvwxyz")},
	}
}

// PoolFor returns the pool for a language, falling back to English.
func PoolFor(lang Language) Pool {
	for _, p := range Pools() {
		if p.Language == lang {
			return p
		}
	}
	return Pool{Language: English, Core: []rune("abcdefghijklmnopqrstuvwxyz")}
}

// Label draws a pseudo-random label of the given rune length from the
// pool using rng. Labels always contain at least one accent character
// when the pool has accents, so the language signature is present.
func (p Pool) Label(rng *stats.RNG, length int) string {
	if length < 1 {
		length = 1
	}
	runes := make([]rune, length)
	hasAccent := false
	for i := range runes {
		if len(p.Accents) > 0 && rng.Float64() < p.AccentRate {
			runes[i] = p.Accents[rng.Intn(len(p.Accents))]
			hasAccent = true
		} else {
			runes[i] = p.Core[rng.Intn(len(p.Core))]
		}
	}
	if len(p.Accents) > 0 && !hasAccent {
		runes[rng.Intn(length)] = p.Accents[rng.Intn(len(p.Accents))]
	}
	return string(runes)
}

func runesRange(lo, hi rune) []rune {
	rs := make([]rune, 0, hi-lo)
	for r := lo; r < hi; r++ {
		rs = append(rs, r)
	}
	return rs
}
