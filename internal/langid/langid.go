// Package langid identifies the most plausible language of a short
// Unicode string, standing in for the LangID Python module the paper
// uses to produce Table 7 (top languages among .com IDNs).
//
// The classifier is two-stage, mirroring how langid.py behaves on
// domain-name-sized inputs: a Unicode-script gate first (a Hangul
// string can only be Korean; Kana implies Japanese), then a
// character-frequency score over language-specific letter pools to
// separate languages that share a script (German vs Turkish vs French
// in Latin; Russian vs Ukrainian in Cyrillic).
package langid

import (
	"sort"
	"unicode"
)

// Language is an ISO-639-1-style language code with a display name.
type Language struct {
	Code string
	Name string
}

// Languages the classifier distinguishes. The paper's Table 7 reports
// Chinese, Korean, Japanese, German and Turkish as the top five; the
// remaining entries give the classifier realistic confusion targets.
var (
	Chinese    = Language{"zh", "Chinese"}
	Korean     = Language{"ko", "Korean"}
	Japanese   = Language{"ja", "Japanese"}
	German     = Language{"de", "German"}
	Turkish    = Language{"tr", "Turkish"}
	French     = Language{"fr", "French"}
	Spanish    = Language{"es", "Spanish"}
	Russian    = Language{"ru", "Russian"}
	Arabic     = Language{"ar", "Arabic"}
	Thai       = Language{"th", "Thai"}
	Vietnamese = Language{"vi", "Vietnamese"}
	English    = Language{"en", "English"}
	Unknown    = Language{"und", "Undetermined"}
)

// All lists every language the classifier can return.
var All = []Language{
	Chinese, Korean, Japanese, German, Turkish, French,
	Spanish, Russian, Arabic, Thai, Vietnamese, English,
}

// signature letters: characters that strongly indicate one language
// within a shared script. The sets are disjoint so a single signature
// letter is decisive; evaluation order is fixed for determinism.
var signatures = []struct {
	lang Language
	sig  []rune
}{
	{German, []rune("äöüß")},
	{Turkish, []rune("ğşı")},
	{French, []rune("éèàçùîû")},
	{Spanish, []rune("ñáíóú")},
	{Vietnamese, []rune("ăâđêôơưạảấầẩẫậắằẳẵặẹẻẽềểễệỉịọỏốồổỗộớờởỡợụủứừửữựỳỵỷỹ")},
}

// Identify returns the most plausible language for s with a score in
// (0, 1]. Empty or purely numeric strings return Unknown with score 0.
func Identify(s string) (Language, float64) {
	counts := scriptCounts(s)
	total := 0
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return Unknown, 0
	}
	frac := func(k script) float64 { return float64(counts[k]) / float64(total) }

	// Script gate: unambiguous writing systems.
	switch {
	case counts[scrHangul] > 0 && frac(scrHangul) >= 0.5:
		return Korean, frac(scrHangul)
	case counts[scrKana] > 0:
		// Any Kana at all marks Japanese even in mixed Kana/Han text.
		return Japanese, frac(scrKana) + frac(scrHan)
	case counts[scrHan] > 0 && frac(scrHan) >= 0.5:
		return Chinese, frac(scrHan)
	case counts[scrThai] > 0 && frac(scrThai) >= 0.5:
		return Thai, frac(scrThai)
	case counts[scrArabic] > 0 && frac(scrArabic) >= 0.5:
		return Arabic, frac(scrArabic)
	case counts[scrCyrillic] > 0 && frac(scrCyrillic) >= 0.5:
		return Russian, frac(scrCyrillic)
	}

	// Latin-script languages: score signature letters.
	if counts[scrLatin] == 0 {
		return Unknown, 0
	}
	best, bestScore := English, 0.0
	for _, entry := range signatures {
		score := 0.0
		for _, r := range s {
			for _, m := range entry.sig {
				if unicode.ToLower(r) == m {
					score++
					break
				}
			}
		}
		score /= float64(total)
		if score > bestScore {
			best, bestScore = entry.lang, score
		}
	}
	if bestScore == 0 {
		return English, frac(scrLatin)
	}
	return best, bestScore
}

type script uint8

const (
	scrLatin script = iota
	scrHan
	scrHangul
	scrKana
	scrCyrillic
	scrArabic
	scrThai
	scrOther
	scrCount
)

func scriptCounts(s string) [scrCount]int {
	var counts [scrCount]int
	for _, r := range s {
		switch {
		case r < 128:
			if unicode.IsLetter(r) {
				counts[scrLatin]++
			}
		case unicode.Is(unicode.Hangul, r):
			counts[scrHangul]++
		case unicode.Is(unicode.Hiragana, r) || unicode.Is(unicode.Katakana, r):
			counts[scrKana]++
		case unicode.Is(unicode.Han, r):
			counts[scrHan]++
		case unicode.Is(unicode.Cyrillic, r):
			counts[scrCyrillic]++
		case unicode.Is(unicode.Arabic, r):
			counts[scrArabic]++
		case unicode.Is(unicode.Thai, r):
			counts[scrThai]++
		case unicode.Is(unicode.Latin, r):
			counts[scrLatin]++
		default:
			counts[scrOther]++
		}
	}
	return counts
}

// Tally counts languages across a set of strings and returns rows
// sorted by descending count — the shape of the paper's Table 7.
type TallyRow struct {
	Language Language
	Count    int
	Fraction float64
}

// TallyAll identifies every string and aggregates.
func TallyAll(labels []string) []TallyRow {
	counts := make(map[Language]int)
	for _, l := range labels {
		lang, _ := Identify(l)
		counts[lang]++
	}
	rows := make([]TallyRow, 0, len(counts))
	for lang, c := range counts {
		rows = append(rows, TallyRow{
			Language: lang,
			Count:    c,
			Fraction: float64(c) / float64(len(labels)),
		})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Count != rows[j].Count {
			return rows[i].Count > rows[j].Count
		}
		return rows[i].Language.Code < rows[j].Language.Code
	})
	return rows
}
