package langid

import (
	"testing"

	"repro/internal/stats"
)

func TestIdentifyScriptGate(t *testing.T) {
	cases := []struct {
		in   string
		want Language
	}{
		{"北京大学", Chinese},
		{"한국어도메인", Korean},
		{"ひらがなドメイン", Japanese},
		{"テスト", Japanese},     // pure Katakana
		{"日本のひらがな", Japanese}, // Han + Kana => Japanese, not Chinese
		{"домен", Russian},
		{"مثال", Arabic},
		{"ไทยแลนด", Thai},
		{"example", English},
	}
	for _, c := range cases {
		got, score := Identify(c.in)
		if got != c.want {
			t.Errorf("Identify(%q) = %v (%.2f), want %v", c.in, got, score, c.want)
		}
		if score <= 0 {
			t.Errorf("Identify(%q) score = %v", c.in, score)
		}
	}
}

func TestIdentifyLatinSignatures(t *testing.T) {
	cases := []struct {
		in   string
		want Language
	}{
		{"münchengrün", German},
		{"straße", German},
		{"ğüzelşehir", Turkish},
		{"ıstanbul", Turkish},
		{"créditagricole", French},
		{"mañana", Spanish},
		{"việtnam", Vietnamese},
	}
	for _, c := range cases {
		if got, _ := Identify(c.in); got != c.want {
			t.Errorf("Identify(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestIdentifyDegenerate(t *testing.T) {
	for _, s := range []string{"", "12345", "---"} {
		if got, score := Identify(s); got != Unknown || score != 0 {
			t.Errorf("Identify(%q) = %v, %v; want Unknown, 0", s, got, score)
		}
	}
}

func TestPoolLabelsClassifyCorrectly(t *testing.T) {
	rng := stats.NewRNG(42)
	for _, p := range Pools() {
		correct := 0
		const n = 200
		for i := 0; i < n; i++ {
			label := p.Label(rng, 4+rng.Intn(8))
			got, _ := Identify(label)
			if got == p.Language {
				correct++
			}
		}
		// Each pool's labels must be classified as its own language at
		// least 90% of the time, or Table 7 falls apart.
		if correct < n*9/10 {
			t.Errorf("%s: only %d/%d labels classified correctly", p.Language.Name, correct, n)
		}
	}
}

func TestPoolLabelLength(t *testing.T) {
	rng := stats.NewRNG(1)
	p := PoolFor(Chinese)
	for _, n := range []int{1, 5, 20} {
		label := p.Label(rng, n)
		if got := len([]rune(label)); got != n {
			t.Errorf("Label(%d) has %d runes", n, got)
		}
	}
	if got := len([]rune(p.Label(rng, 0))); got != 1 {
		t.Errorf("Label(0) has %d runes, want clamped 1", got)
	}
}

func TestPoolForFallback(t *testing.T) {
	p := PoolFor(Language{"xx", "Bogus"})
	if p.Language != English {
		t.Errorf("fallback pool = %v", p.Language)
	}
}

func TestTallyAll(t *testing.T) {
	labels := []string{
		"北京", "上海", "广州", // 3 Chinese
		"한국", "서울", // 2 Korean
		"münchen", // 1 German
	}
	rows := TallyAll(labels)
	if rows[0].Language != Chinese || rows[0].Count != 3 {
		t.Errorf("top row = %+v", rows[0])
	}
	if rows[1].Language != Korean || rows[1].Count != 2 {
		t.Errorf("second row = %+v", rows[1])
	}
	sum := 0.0
	for _, r := range rows {
		sum += r.Fraction
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("fractions sum to %f", sum)
	}
}

func TestTallyDeterministic(t *testing.T) {
	labels := []string{"北京", "한국", "münchen", "ğüzel"}
	a := TallyAll(labels)
	b := TallyAll(labels)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("tally not deterministic: %v vs %v", a[i], b[i])
		}
	}
}
