package core

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/punycode"
	"repro/internal/stats"
)

// TestDetectionCompletenessProperty: any label built by substituting
// 1–2 characters of a reference with database homoglyphs MUST be
// detected as a homograph of that reference — the correctness
// guarantee the registry generator and the whole evaluation rely on.
func TestDetectionCompletenessProperty(t *testing.T) {
	db := testDB(t)
	refs := []string{"google", "facebook", "myetherwallet", "allstate", "binance"}
	det := NewDetector(db, refs)

	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		ref := refs[rng.Intn(len(refs))]
		runes := []rune(ref)
		subs := 1 + rng.Intn(2)
		changed := 0
		for try := 0; try < 20 && changed < subs; try++ {
			pos := rng.Intn(len(runes))
			if runes[pos] != []rune(ref)[pos] {
				continue // already substituted
			}
			glyphs := db.Homoglyphs(runes[pos])
			if len(glyphs) == 0 {
				continue
			}
			runes[pos] = glyphs[rng.Intn(len(glyphs))]
			changed++
		}
		if changed == 0 {
			return true // no substitutable position drawn; vacuous
		}
		label := string(runes)
		if _, err := punycode.ToASCIILabel(label); err != nil {
			return true // unencodable candidate; not a registrable attack
		}
		for _, m := range det.DetectLabel(label) {
			if m.Reference == ref && len(m.Diffs) == changed {
				return true
			}
		}
		t.Logf("missed homograph %q of %q (%d subs)", label, ref, changed)
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestDetectionSoundnessProperty: random same-length labels that share
// no homoglyph relationship with a reference must NOT be detected.
func TestDetectionSoundnessProperty(t *testing.T) {
	db := testDB(t)
	det := NewDetector(db, []string{"google"})
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		runes := make([]rune, 6)
		for i := range runes {
			runes[i] = rune('a' + rng.Intn(26))
		}
		label := string(runes)
		matches := det.DetectLabel(label)
		if label == "google" {
			return len(matches) == 1
		}
		// An ASCII label is a homograph only if it IS the reference:
		// ASCII-to-ASCII pairs are never homoglyphs.
		return len(matches) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestRevertRecoversReferenceProperty: reverting any detected
// homograph built from a reference returns that reference.
func TestRevertRecoversReferenceProperty(t *testing.T) {
	db := testDB(t)
	refs := []string{"google", "paypal"}
	det := NewDetector(db, refs)
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		ref := refs[rng.Intn(len(refs))]
		runes := []rune(ref)
		pos := rng.Intn(len(runes))
		glyphs := db.Homoglyphs(runes[pos])
		if len(glyphs) == 0 {
			return true
		}
		runes[pos] = glyphs[rng.Intn(len(glyphs))]
		ace, err := punycode.ToASCIILabel(string(runes))
		if err != nil {
			return true
		}
		got, err := det.Revert(ace)
		return err == nil && got == ref
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestDetectBatchMatchesPerLabel: the batch API must equal per-label
// detection concatenated.
func TestDetectBatchMatchesPerLabel(t *testing.T) {
	db := testDB(t)
	det := NewDetector(db, []string{"google", "amazon"})
	labels := []string{
		ace(t, "gооgle"),
		"amazon",
		ace(t, "amazоn"),
		"unrelated",
	}
	batch := det.Detect(labels)
	var single []Match
	for _, l := range labels {
		single = append(single, det.DetectLabel(l)...)
	}
	if len(batch) != len(single) {
		t.Fatalf("batch %d matches, per-label %d", len(batch), len(single))
	}
	// Algorithm 1 iterates references in the outer loop, so batch
	// order differs from per-label order; compare as sets.
	key := func(m Match) string { return m.IDN + "\x00" + m.Reference }
	seen := make(map[string]int)
	for _, m := range batch {
		seen[key(m)]++
	}
	for _, m := range single {
		seen[key(m)]--
	}
	for k, n := range seen {
		if n != 0 {
			t.Errorf("match multiset differs at %q (%+d)", k, n)
		}
	}
}

// TestDetectLabelRejectsGarbage: malformed ACE input must not panic
// and must not match.
func TestDetectLabelRejectsGarbage(t *testing.T) {
	db := testDB(t)
	det := NewDetector(db, []string{"google"})
	for _, label := range []string{"xn--", "xn---", "xn--\x00", strings.Repeat("x", 500)} {
		if matches := det.DetectLabel(label); len(matches) != 0 {
			t.Errorf("garbage %q matched: %v", label, matches)
		}
	}
}
