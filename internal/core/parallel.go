package core

import (
	"runtime"
	"slices"
	"sort"
	"strings"
	"sync"

	"repro/internal/punycode"
)

// compareMatch orders matches by FQDN, then matched label, then
// reference — the deterministic output order every batch API guarantees
// regardless of worker count. (A multi-label FQDN can match through
// more than one of its labels, so the label breaks FQDN ties.)
func compareMatch(a, b Match) int {
	if c := strings.Compare(a.FQDN, b.FQDN); c != 0 {
		return c
	}
	if c := strings.Compare(a.IDN, b.IDN); c != 0 {
		return c
	}
	return strings.Compare(a.Reference, b.Reference)
}

// Detect scans a set of domains (full FQDNs on any TLD, or bare IDN
// labels) across GOMAXPROCS workers and returns every (domain,
// reference) match, sorted by FQDN then reference.
func (d *Detector) Detect(domains []string) []Match {
	return d.DetectParallel(domains, 0)
}

// DetectParallel is Detect with an explicit worker count (≤ 0 means
// GOMAXPROCS). The result is deterministic: workers accumulate private
// match slices which are concatenated and sorted exactly once.
func (d *Detector) DetectParallel(domains []string, workers int) []Match {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(domains) {
		workers = len(domains)
	}
	var out []Match
	if workers <= 1 {
		for _, idn := range domains {
			out = append(out, d.DetectDomain(idn)...)
		}
	} else {
		parts := make([][]Match, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				var local []Match
				for i := w; i < len(domains); i += workers {
					local = append(local, d.DetectDomain(domains[i])...)
				}
				parts[w] = local
			}(w)
		}
		wg.Wait()
		n := 0
		for _, p := range parts {
			n += len(p)
		}
		out = make([]Match, 0, n)
		for _, p := range parts {
			out = append(out, p...)
		}
	}
	slices.SortFunc(out, compareMatch)
	return out
}

// DetectStream scans domains arriving on in across workers (≤ 0 means
// GOMAXPROCS) and sends every match on the returned channel, which is
// closed once in is drained. Workers reuse the detector's per-call
// buffers, so steady-state allocation is O(matches); match order across
// domains is not deterministic — stream consumers that need the batch
// ordering should sort with SortMatches.
func (d *Detector) DetectStream(in <-chan string, workers int) <-chan Match {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	out := make(chan Match, 4*workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idn := range in {
				for _, m := range d.DetectDomain(idn) {
					out <- m
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(out)
	}()
	return out
}

// DetectStreamBytes is DetectStream for pooled line buffers: normalized
// zone lines (full FQDNs, any TLD) arrive as *[]byte, and each buffer is
// handed back to recycle (when non-nil) as soon as its domain has been
// scanned. Together with DetectDomainBytes' lazy string materialization
// this makes the whole line→match pipeline allocation-free in steady
// state on the miss path — the common case at zone scale, where ~99% of
// domains match nothing.
func (d *Detector) DetectStreamBytes(in <-chan *[]byte, workers int, recycle *sync.Pool) <-chan Match {
	return d.DetectStreamBytesBackend(in, workers, recycle, BackendPostings)
}

// DetectStreamBytesBackend is DetectStreamBytes with an explicit backend
// choice — the CLI's `detect -backend` stream path.
func (d *Detector) DetectStreamBytesBackend(in <-chan *[]byte, workers int, recycle *sync.Pool, be Backend) <-chan Match {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	out := make(chan Match, 4*workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for bp := range in {
				for _, m := range d.DetectDomainBytesBackend(*bp, be) {
					out <- m
				}
				if recycle != nil {
					recycle.Put(bp)
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(out)
	}()
	return out
}

// SortMatches sorts matches into the deterministic batch order (IDN,
// then reference), e.g. after collecting a DetectStream.
func SortMatches(matches []Match) {
	slices.SortFunc(matches, compareMatch)
}

// DetectedIDNs collapses matches to the distinct set of homograph IDNs —
// the counting unit of the paper's Table 8.
func DetectedIDNs(matches []Match) []string {
	seen := map[string]bool{}
	var out []string
	for _, m := range matches {
		if !seen[m.IDN] {
			seen[m.IDN] = true
			out = append(out, m.IDN)
		}
	}
	sort.Strings(out)
	return out
}

// TargetHistogram counts matches per reference — Table 9's "top targeted
// domains".
func TargetHistogram(matches []Match) map[string]int {
	h := map[string]int{}
	byIDN := map[string]map[string]bool{}
	for _, m := range matches {
		if byIDN[m.Reference] == nil {
			byIDN[m.Reference] = map[string]bool{}
		}
		byIDN[m.Reference][m.IDN] = true
	}
	for ref, idns := range byIDN {
		h[ref] = len(idns)
	}
	return h
}

// Revert maps a (possibly undetected) IDN label back to its most plausible
// original domain label — Section 6.4's countermeasure for homographs of
// unpopular domains. If the label is a homograph of a known reference,
// the reference wins (this resolves direction-ambiguous pairs such as
// CJK 工 vs Katakana エ); otherwise every character is canonicalized
// independently.
func (d *Detector) Revert(idnLabel string) (string, error) {
	if matches := d.DetectLabel(idnLabel); len(matches) > 0 {
		return matches[0].Reference, nil
	}
	uni, err := punycode.ToUnicodeLabel(idnLabel)
	if err != nil {
		return "", err
	}
	return d.db.Revert(uni), nil
}
