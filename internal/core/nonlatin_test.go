package core

import (
	"testing"

	"repro/internal/punycode"
)

// The paper (Section 2.2) shows a non-Latin homograph current browsers
// miss: 工業大学 ("institute of technology") imitated by エ業大学,
// where 工 (CJK U+5DE5) is swapped for エ (Katakana U+30A8). The
// synthetic font encodes that exact twin, so the detector must find it
// even though no Latin character is involved.
func TestDetectNonLatinHomograph(t *testing.T) {
	db := testDB(t)
	refs := []string{"工業大学", "google"}
	d := NewDetector(db, refs)

	idn := ace(t, "エ業大学")
	matches := d.DetectLabel(idn)
	if len(matches) != 1 {
		t.Fatalf("matches = %v", matches)
	}
	m := matches[0]
	if m.Reference != "工業大学" {
		t.Errorf("reference = %q", m.Reference)
	}
	if len(m.Diffs) != 1 || m.Diffs[0].Got != 'エ' || m.Diffs[0].Want != '工' {
		t.Errorf("diffs = %v", m.Diffs)
	}
	if m.Diffs[0].Pos != 0 {
		t.Errorf("substitution position = %d", m.Diffs[0].Pos)
	}
}

// Katakana ニ for CJK 二 and ロ for 口 are further curated twins; a
// label mixing two of them must still match.
func TestDetectDoubleKanaSubstitution(t *testing.T) {
	db := testDB(t)
	d := NewDetector(db, []string{"二口工"})
	idn := ace(t, "ニロ工")
	matches := d.DetectLabel(idn)
	if len(matches) != 1 {
		t.Fatalf("matches = %v", matches)
	}
	if len(matches[0].Diffs) != 2 {
		t.Errorf("diffs = %v", matches[0].Diffs)
	}
}

// A CJK label with an unrelated substitution must not match.
func TestNonLatinNoFalsePositive(t *testing.T) {
	db := testDB(t)
	d := NewDetector(db, []string{"工業大学"})
	// 山 (U+5C71) is not a homoglyph of 工 in any database.
	idn := ace(t, "山業大学")
	if matches := d.DetectLabel(idn); len(matches) != 0 {
		t.Errorf("unrelated CJK label matched: %v", matches)
	}
}

// Unicode-form input (not ACE) must work identically — callers inside
// a browser see the decoded form.
func TestDetectLabelUnicodeInput(t *testing.T) {
	db := testDB(t)
	d := NewDetector(db, []string{"工業大学"})
	matches := d.DetectLabel("エ業大学")
	if len(matches) != 1 {
		t.Fatalf("unicode-form input: matches = %v", matches)
	}
}

// Reverting a non-Latin homograph reconstructs the original label
// (Section 6.4 is script-agnostic).
func TestNonLatinRevert(t *testing.T) {
	db := testDB(t)
	d := NewDetector(db, []string{"工業大学"})
	got, err := d.Revert(ace(t, "エ業大学"))
	if err != nil {
		t.Fatal(err)
	}
	if got != "工業大学" {
		t.Errorf("Revert = %q, want 工業大学", got)
	}
}

// Mixed-script homographs: Latin base with one Kana/CJK twin plus one
// Cyrillic twin — the class of attack the browsers' script-mixing
// heuristics handle inconsistently (Section 2.2).
func TestMixedScriptHomograph(t *testing.T) {
	db := testDB(t)
	d := NewDetector(db, []string{"ox二"})
	// о (Cyrillic U+043E) for o, ニ (Katakana) for 二.
	label := "оxニ"
	if _, err := punycode.ToASCIILabel(label); err != nil {
		t.Fatalf("test label not encodable: %v", err)
	}
	matches := d.DetectLabel(ace(t, label))
	if len(matches) != 1 {
		t.Fatalf("matches = %v", matches)
	}
	if len(matches[0].Diffs) != 2 {
		t.Errorf("diffs = %v", matches[0].Diffs)
	}
}
