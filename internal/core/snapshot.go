package core

import (
	"fmt"
	"sort"
	"unicode/utf8"

	"repro/internal/homoglyph"
)

// Snapshot is the flattened, position-independent form of a built
// Detector: the deduplicated reference list plus every per-(length,
// position) posting list laid out in contiguous arrays. It exists so the
// internal/snapshot codec can serialize a detector with bulk slice writes
// and NewDetectorFromSnapshot can rebuild one without re-running the
// homoglyph expansion of NewDetector — the posting lists are stored
// already expanded.
type Snapshot struct {
	// Refs is the detector's reference list, normalized and
	// deduplicated, in insertion order.
	Refs []string
	// Buckets holds one entry per distinct reference rune length,
	// ascending.
	Buckets []BucketSnapshot

	// The skeleton backend, flattened (format v2). The three maps are
	// laid out keys-ascending so identical detectors serialize
	// byte-identically and a load/re-snapshot round trip is exact.

	// SkelRepRunes/SkelReps are the non-identity component-representative
	// pairs, SkelRepRunes ascending.
	SkelRepRunes []rune
	SkelReps     []rune
	// SkelSeqRunes (ascending) key the multi-rune skeletons; entry i's
	// sequence is the next SkelSeqLens[i] runes of SkelSeqs.
	SkelSeqRunes []rune
	SkelSeqLens  []int32
	SkelSeqs     []rune
	// SkelKeys (ascending, byte order) are the reference skeletons; key
	// i's posting list is the next SkelListLens[i] entries of
	// SkelListIDs — indexes into Refs, ascending within each list.
	SkelKeys     []string
	SkelListLens []int32
	SkelListIDs  []int32
}

// BucketSnapshot flattens one length bucket. For each position p in
// [0,Length), PosCounts[p] gives the number of distinct runes indexed at
// p; their runes, posting-list lengths, and concatenated posting ids
// occupy the next PosCounts[p] entries of Runes/ListLens and the matching
// span of ListIDs. Posting ids are bucket-local indexes into RefIDs.
type BucketSnapshot struct {
	Length    int32
	RefIDs    []int32 // bucket slot -> index into Snapshot.Refs
	PosCounts []int32
	Runes     []rune
	ListLens  []int32
	ListIDs   []int32
}

// Snapshot flattens the detector into its serializable form. The layout
// is canonical — buckets ascend by length, runes ascend within each
// position — so identical detectors produce identical snapshots.
func (d *Detector) Snapshot() *Snapshot {
	s := &Snapshot{Refs: append([]string(nil), d.refs...)}
	refID := make(map[string]int32, len(d.refs))
	for i, r := range d.refs {
		refID[r] = int32(i)
	}
	lengths := make([]int, 0, len(d.byLen))
	for n := range d.byLen {
		lengths = append(lengths, n)
	}
	sort.Ints(lengths)
	for _, n := range lengths {
		b := d.byLen[n]
		bs := BucketSnapshot{Length: int32(n)}
		for i := range b.refs {
			bs.RefIDs = append(bs.RefIDs, refID[b.refs[i].label])
		}
		for p := 0; p < n; p++ {
			m := b.index[p]
			rs := make([]rune, 0, len(m))
			for r := range m {
				rs = append(rs, r)
			}
			sort.Slice(rs, func(i, j int) bool { return rs[i] < rs[j] })
			bs.PosCounts = append(bs.PosCounts, int32(len(rs)))
			for _, r := range rs {
				l := m[r]
				bs.Runes = append(bs.Runes, r)
				bs.ListLens = append(bs.ListLens, int32(len(l)))
				bs.ListIDs = append(bs.ListIDs, l...)
			}
		}
		s.Buckets = append(s.Buckets, bs)
	}
	if d.skel != nil {
		for _, r := range sortedRuneKeys(d.skel.rep) {
			s.SkelRepRunes = append(s.SkelRepRunes, r)
			s.SkelReps = append(s.SkelReps, d.skel.rep[r])
		}
		for _, r := range sortedRuneKeys(d.skel.seq) {
			seq := d.skel.seq[r]
			s.SkelSeqRunes = append(s.SkelSeqRunes, r)
			s.SkelSeqLens = append(s.SkelSeqLens, int32(len(seq)))
			s.SkelSeqs = append(s.SkelSeqs, seq...)
		}
		keys := make([]string, 0, len(d.skel.refs))
		for k := range d.skel.refs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			ids := d.skel.refs[k]
			s.SkelKeys = append(s.SkelKeys, k)
			s.SkelListLens = append(s.SkelListLens, int32(len(ids)))
			s.SkelListIDs = append(s.SkelListIDs, ids...)
		}
	}
	return s
}

// NewDetectorFromSnapshot rebuilds a detector over an already-loaded
// homoglyph database. Posting lists alias the snapshot's ListIDs arrays
// (full-capacity subslices), so beyond the per-position maps the load
// performs no copying; the snapshot must not be mutated afterwards. The
// db must be the one serialized alongside the detector — posting lists
// bake in its homoglyph expansion.
func NewDetectorFromSnapshot(db *homoglyph.DB, s *Snapshot) (*Detector, error) {
	d := &Detector{db: db, byLen: make(map[int]*bucket, len(s.Buckets))}
	d.scratch.New = func() any { return &scratch{} }
	d.refs = append([]string(nil), s.Refs...)
	for bi := range s.Buckets {
		bs := &s.Buckets[bi]
		n := int(bs.Length)
		if n <= 0 || len(bs.PosCounts) != n {
			return nil, fmt.Errorf("core: snapshot bucket %d: %d position counts for length %d", bi, len(bs.PosCounts), n)
		}
		if _, dup := d.byLen[n]; dup {
			return nil, fmt.Errorf("core: snapshot has duplicate bucket for length %d", n)
		}
		b := &bucket{
			refs:  make([]refEntry, len(bs.RefIDs)),
			index: make([]map[rune][]int32, n),
		}
		// Validate every reference id and rune length up front: only
		// then is n·refs a trusted arena size (a crafted snapshot must
		// not reach a multi-terabyte make, or overflow the product).
		for _, id := range bs.RefIDs {
			if id < 0 || int(id) >= len(d.refs) {
				return nil, fmt.Errorf("core: snapshot bucket %d: reference id %d out of range", bi, id)
			}
			if utf8.RuneCountInString(d.refs[id]) != n {
				return nil, fmt.Errorf("core: snapshot bucket %d: reference %q is not %d runes", bi, d.refs[id], n)
			}
		}
		// Every reference in the bucket is exactly n runes, so one arena
		// sized n·refs holds all their decompositions: its capacity is
		// fixed up front, appends never reallocate, and the per-ref rune
		// slices of a 10k-reference detector collapse into one
		// allocation.
		arena := make([]rune, 0, len(bs.RefIDs)*n)
		for i, id := range bs.RefIDs {
			label := d.refs[id]
			start := len(arena)
			for _, r := range label {
				arena = append(arena, r)
			}
			b.refs[i] = refEntry{label: label, runes: arena[start:len(arena):len(arena)]}
		}
		off, idOff := 0, 0
		for p := 0; p < n; p++ {
			cnt := int(bs.PosCounts[p])
			if cnt < 0 || off+cnt > len(bs.Runes) || off+cnt > len(bs.ListLens) {
				return nil, fmt.Errorf("core: snapshot bucket %d: truncated position table", bi)
			}
			m := make(map[rune][]int32, cnt)
			for k := 0; k < cnt; k++ {
				l := int(bs.ListLens[off+k])
				if l < 0 || idOff+l > len(bs.ListIDs) {
					return nil, fmt.Errorf("core: snapshot bucket %d: truncated posting lists", bi)
				}
				for _, id := range bs.ListIDs[idOff : idOff+l] {
					if id < 0 || int(id) >= len(b.refs) {
						return nil, fmt.Errorf("core: snapshot bucket %d: posting id %d out of range", bi, id)
					}
				}
				m[bs.Runes[off+k]] = bs.ListIDs[idOff : idOff+l : idOff+l]
				idOff += l
			}
			off += cnt
			b.index[p] = m
		}
		if off != len(bs.Runes) || idOff != len(bs.ListIDs) {
			return nil, fmt.Errorf("core: snapshot bucket %d: %d trailing index entries", bi, len(bs.Runes)-off)
		}
		d.byLen[n] = b
	}
	skel, err := skelFromSnapshot(s, len(d.refs))
	if err != nil {
		return nil, err
	}
	d.skel = skel
	return d, nil
}

// skelFromSnapshot rebuilds the skeleton index verbatim from its
// flattened form — no union-find, no re-expansion — validating every
// count and reference id so a crafted snapshot fails loudly.
func skelFromSnapshot(s *Snapshot, numRefs int) (*skelIndex, error) {
	if len(s.SkelReps) != len(s.SkelRepRunes) {
		return nil, fmt.Errorf("core: snapshot skeleton rep table: %d runes, %d reps", len(s.SkelRepRunes), len(s.SkelReps))
	}
	if len(s.SkelSeqLens) != len(s.SkelSeqRunes) {
		return nil, fmt.Errorf("core: snapshot skeleton seq table: %d runes, %d lengths", len(s.SkelSeqRunes), len(s.SkelSeqLens))
	}
	if len(s.SkelListLens) != len(s.SkelKeys) {
		return nil, fmt.Errorf("core: snapshot skeleton ref index: %d keys, %d lengths", len(s.SkelKeys), len(s.SkelListLens))
	}
	x := &skelIndex{
		rep:  make(map[rune]rune, len(s.SkelRepRunes)),
		seq:  make(map[rune][]rune, len(s.SkelSeqRunes)),
		refs: make(map[string][]int32, len(s.SkelKeys)),
	}
	for i, r := range s.SkelRepRunes {
		x.rep[r] = s.SkelReps[i]
	}
	off := 0
	for i, r := range s.SkelSeqRunes {
		l := int(s.SkelSeqLens[i])
		if l < 2 || off+l > len(s.SkelSeqs) {
			return nil, fmt.Errorf("core: snapshot skeleton seq %d: bad length %d", i, l)
		}
		x.seq[r] = s.SkelSeqs[off : off+l : off+l]
		off += l
	}
	if off != len(s.SkelSeqs) {
		return nil, fmt.Errorf("core: snapshot skeleton seqs: %d trailing runes", len(s.SkelSeqs)-off)
	}
	idOff := 0
	for i, k := range s.SkelKeys {
		l := int(s.SkelListLens[i])
		if l < 0 || idOff+l > len(s.SkelListIDs) {
			return nil, fmt.Errorf("core: snapshot skeleton key %d: truncated posting list", i)
		}
		for _, id := range s.SkelListIDs[idOff : idOff+l] {
			if id < 0 || int(id) >= numRefs {
				return nil, fmt.Errorf("core: snapshot skeleton key %d: reference id %d out of range", i, id)
			}
		}
		x.refs[k] = s.SkelListIDs[idOff : idOff+l : idOff+l]
		idOff += l
	}
	if idOff != len(s.SkelListIDs) {
		return nil, fmt.Errorf("core: snapshot skeleton ids: %d trailing entries", len(s.SkelListIDs)-idOff)
	}
	return x, nil
}
