// Package core implements the ShamFinder detection engine — Algorithm 1 of
// the paper: given a list of reference domain names and a set of extracted
// IDNs, find the IDNs that are homographs of a reference, pinpointing the
// differential characters so downstream countermeasures (blocklists, the
// Figure 12 warning UI) can explain exactly which character was substituted.
//
// The engine is indexed: instead of scanning every same-length reference
// per label, NewDetector builds a per-(length, position) posting-list index
// mapping each rune to the references whose character at that position
// equals it or is one of its homoglyphs. An incoming label intersects its
// positions' posting lists to get a small candidate set, which is then
// verified character-by-character. Labels containing any rune unknown at
// some position reject in O(label length). The seed linear scan survives
// as DetectLabelLinear, the parity baseline for tests and ablations.
package core

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/domain"
	"repro/internal/homoglyph"
	"repro/internal/punycode"
)

// CharDiff records one substituted character in a detected homograph.
type CharDiff struct {
	Pos    int              // rune index within the label
	Got    rune             // the character in the IDN
	Want   rune             // the character in the reference
	Source homoglyph.Source // which database vouched for the pair
}

// String renders the diff as "օ≈o@1 (SimChar)".
func (d CharDiff) String() string {
	return fmt.Sprintf("%c≈%c@%d (%s)", d.Got, d.Want, d.Pos, d.Source)
}

// Match is one detected homograph: the matched label (in both forms),
// the reference it imitates, and the domain context it was found in —
// so a report can say "xn--ggle-55da.net imitates google.net" instead
// of hardcoding one TLD.
type Match struct {
	IDN       string // ASCII (xn--) form of the matched label, as seen in the zone
	Unicode   string // decoded label
	Reference string // targeted reference label (registrable label, suffix removed)
	FQDN      string // full domain the label was matched in (equals IDN for bare-label input)
	TLD       string // public suffix of FQDN ("com", "co.uk", "xn--p1ai"); "" for bare labels
	Backend   Backend
	Diffs     []CharDiff // per-character substitutions (posting backend only)
}

// Imitated returns the domain the match imitates: the reference label
// under the matched FQDN's own public suffix ("google.net" for a
// homograph registered in the .net zone). A bare-label match returns
// just the reference.
func (m Match) Imitated() string {
	if m.TLD == "" {
		return m.Reference
	}
	return m.Reference + "." + m.TLD
}

// refEntry is one indexed reference with its rune decomposition cached,
// so the hot path never re-runs []rune(ref).
type refEntry struct {
	label string
	runes []rune
}

// bucket groups the references of one rune length together with their
// candidate index: index[p][r] lists (ascending) the ids of references
// whose rune at position p is r or a homoglyph of r.
type bucket struct {
	refs  []refEntry
	index []map[rune][]int32
}

// scratch holds the per-call working memory DetectLabel and
// DetectDomain reuse across labels, keeping the steady-state path
// allocation-free except for the matches themselves.
type scratch struct {
	runes []rune
	lists [][]int32
	cand  []int32
	next  []int32
	skel  []byte
}

// Detector holds the reference list bucketed by length, the candidate
// index, and the homoglyph database, ready to scan IDNs. A Detector is
// immutable after construction and safe for concurrent use.
type Detector struct {
	db      *homoglyph.DB
	byLen   map[int]*bucket
	refs    []string
	skel    *skelIndex
	scratch sync.Pool
}

// NewDetector builds a detector over reference labels (TLD part removed,
// ASCII form). Duplicate references are collapsed. Construction compiles
// the candidate index; reuse the detector across scans.
func NewDetector(db *homoglyph.DB, references []string) *Detector {
	d := &Detector{db: db, byLen: make(map[int]*bucket)}
	d.scratch.New = func() any { return &scratch{} }
	seen := make(map[string]bool, len(references))
	for _, ref := range references {
		// punycode.Fold is the same normalization the decode path applies
		// to incoming labels, so an uppercase (even non-ASCII) reference
		// and its lowercase spelling index identically.
		ref = punycode.FoldString(strings.TrimSpace(ref))
		// An ACE reference ("xn--bcher-kva") must index on its decoded
		// runes — incoming labels are compared in Unicode form, so the
		// literal ASCII spelling could never match any homograph. A
		// label that fails to decode stays literal (inert, as before).
		if punycode.IsACE(ref) {
			if uni, err := punycode.ToUnicodeLabel(ref); err == nil {
				ref = uni
			}
		}
		if ref == "" || seen[ref] {
			continue
		}
		seen[ref] = true
		d.refs = append(d.refs, ref)
		runes := []rune(ref)
		b := d.byLen[len(runes)]
		if b == nil {
			b = &bucket{}
			d.byLen[len(runes)] = b
		}
		b.refs = append(b.refs, refEntry{label: ref, runes: runes})
	}
	// Reference labels draw from a few dozen distinct runes, so memoize
	// the partner lookups across buckets instead of re-filtering the
	// homoglyph span per (reference, position) occurrence.
	memo := make(map[rune][]rune)
	homoglyphs := func(c rune) []rune {
		hs, ok := memo[c]
		if !ok {
			hs = db.Homoglyphs(c)
			memo[c] = hs
		}
		return hs
	}
	for _, b := range d.byLen {
		b.buildIndex(homoglyphs)
	}
	d.skel = buildSkelIndex(db, d.refs)
	return d
}

// buildIndex compiles the per-position posting lists. Reference ids are
// appended in ascending order, so every posting list is sorted.
func (b *bucket) buildIndex(homoglyphs func(rune) []rune) {
	if len(b.refs) == 0 {
		return
	}
	n := len(b.refs[0].runes)
	b.index = make([]map[rune][]int32, n)
	for p := range b.index {
		b.index[p] = make(map[rune][]int32)
	}
	for id, ref := range b.refs {
		for p, c := range ref.runes {
			b.index[p][c] = append(b.index[p][c], int32(id))
			for _, h := range homoglyphs(c) {
				b.index[p][h] = append(b.index[p][h], int32(id))
			}
		}
	}
}

// NumReferences returns the deduplicated reference count without
// copying the list — the serving layer's health and metrics endpoints
// read it on every scrape.
func (d *Detector) NumReferences() int { return len(d.refs) }

// References returns the deduplicated reference labels.
func (d *Detector) References() []string {
	out := make([]string, len(d.refs))
	copy(out, d.refs)
	return out
}

// matchAgainst implements the inner loop of Algorithm 1 for one
// (reference, IDN) pair of equal rune length.
func (d *Detector) matchAgainst(ref []rune, idn []rune) ([]CharDiff, bool) {
	var diffs []CharDiff
	for i := range ref {
		if ref[i] == idn[i] {
			continue
		}
		ok, src := d.db.Confusable(idn[i], ref[i])
		if !ok {
			return nil, false
		}
		diffs = append(diffs, CharDiff{Pos: i, Got: idn[i], Want: ref[i], Source: src})
	}
	// A homograph must differ somewhere; an identical string is the
	// reference itself, not an attack.
	if len(diffs) == 0 {
		return nil, false
	}
	return diffs, true
}

// DetectLabel checks one IDN label (ASCII xn-- form, TLD removed) against
// the same-length references via the candidate index and returns all
// matches, in reference insertion order. Safe for concurrent use.
func (d *Detector) DetectLabel(idnLabel string) []Match {
	return detectLabel(d, idnLabel, BackendPostings)
}

// DetectLabelBackend is DetectLabel with an explicit backend choice.
func (d *Detector) DetectLabelBackend(idnLabel string, be Backend) []Match {
	return detectLabel(d, idnLabel, be)
}

// DetectLabelBytes is DetectLabel over a reused line buffer: nothing is
// retained from label, and the miss path allocates nothing, so a zone
// feeder can recycle one buffer per in-flight line. Strings (the match's
// IDN and Unicode forms) are materialized only when a label actually
// matches.
//
//shamlint:noalloc
func (d *Detector) DetectLabelBytes(label []byte) []Match {
	return detectLabel(d, label, BackendPostings)
}

// DetectLabelBytesBackend is DetectLabelBytes with an explicit backend;
// the skeleton path keeps the same contract — one map probe on borrowed
// scratch, nothing allocated unless the label matches.
//
//shamlint:noalloc
func (d *Detector) DetectLabelBytesBackend(label []byte, be Backend) []Match {
	return detectLabel(d, label, be)
}

// detectLabel is the label-level entry point: it borrows scratch and
// runs the shared hot path.
func detectLabel[S punycode.ByteSeq](d *Detector, idnLabel S, be Backend) []Match {
	sc := d.scratch.Get().(*scratch)
	defer d.scratch.Put(sc)
	return detectLabelIn(d, sc, idnLabel, be)
}

// DetectDomain checks a dotted FQDN — any TLD, any label count,
// trailing root dot tolerated — by scanning each candidate label (ACE
// "xn--" labels and labels carrying non-ASCII bytes; pure-ASCII labels
// cannot be homographs) against the reference index. Only labels left
// of the public suffix are scanned: the registrable label and any
// subdomains are attacker-chosen, the suffix is the zone's own (and
// skipping it keeps ACE TLDs like xn--p1ai from costing a punycode
// decode per line). Matches carry the FQDN and its public suffix, so
// reports can name the imitated domain on the zone it was actually
// found in. Safe for concurrent use.
func (d *Detector) DetectDomain(fqdn string) []Match {
	return detectDomain(d, fqdn, BackendPostings)
}

// DetectDomainBackend is DetectDomain with an explicit backend choice.
// With the skeleton backend enabled every non-empty label left of the
// public suffix is a candidate — a pure-ASCII label ("rnicrosoft") can
// be a many-to-one homograph, which the posting backend's non-ASCII
// candidate gate rightly excludes for itself.
func (d *Detector) DetectDomainBackend(fqdn string, be Backend) []Match {
	return detectDomain(d, fqdn, be)
}

// DetectDomainBytes is DetectDomain over a reused line buffer: nothing
// is retained from fqdn, and a domain that matches nothing allocates
// nothing — the zone-feeder contract of DetectLabelBytes, lifted to
// whole FQDNs.
//
//shamlint:noalloc
func (d *Detector) DetectDomainBytes(fqdn []byte) []Match {
	return detectDomain(d, fqdn, BackendPostings)
}

// DetectDomainBytesBackend is DetectDomainBytes with an explicit
// backend, preserving the zero-allocation miss path.
//
//shamlint:noalloc
func (d *Detector) DetectDomainBytesBackend(fqdn []byte, be Backend) []Match {
	return detectDomain(d, fqdn, be)
}

// detectDomain is the domain-level hot path, compiled for both
// spellings. A cheap scratch-free gate runs first: the scannable
// labels all sit left of the final dot (the suffix is never scanned),
// so a name with no candidate label before its last dot — the shape of
// almost every line in an IDN-TLD zone such as .xn--p1ai, where the
// ACE TLD alone gets plain lines past the feeder's xn-- test — rejects
// on one short byte scan. Names that pass split into label spans
// (scratch-backed, no allocation); the candidate labels left of the
// public suffix are scanned, and matches are enriched with the
// FQDN/TLD context (materialized only when a label actually matched).
func detectDomain[S punycode.ByteSeq](d *Detector, fqdn S, be Backend) []Match {
	end := len(fqdn)
	if end > 0 && fqdn[end-1] == '.' {
		end-- // trailing root dot
	}
	trimmed := fqdn[:end]
	firstDot := -1
	for i := 0; i < end; i++ {
		if trimmed[i] == '.' {
			firstDot = i
			break
		}
	}
	if firstDot < 0 { // bare label
		if !candidateLabelFor(trimmed, be) {
			return nil
		}
		sc := d.scratch.Get().(*scratch)
		defer d.scratch.Put(sc)
		ms := detectLabelIn(d, sc, trimmed, be)
		if len(ms) > 0 && end != len(fqdn) { // root-dot spelling: echo it
			fq := string(fqdn)
			for i := range ms {
				ms[i].FQDN = fq
			}
		}
		return ms
	}

	// One fused walk scans every scannable label. Scannability reduces
	// to "not the final label": the first label is always scannable (the
	// public suffix never swallows the whole name), the final label of a
	// dotted name never is, and an interior label could only be excluded
	// as the second half of a "co.uk"-style suffix — whose second-level
	// entries are all plain ASCII, never candidates (an invariant the
	// domain package pins with a test). Scratch is checked out lazily,
	// so a line with no candidate label costs one byte scan and nothing
	// else — the shape of almost every line an IDN TLD's xn-- sneaks
	// past the feeder gate.
	var out []Match
	var sc *scratch
	if label := trimmed[:firstDot]; candidateLabelFor(label, be) {
		sc = d.scratch.Get().(*scratch)
		out = detectLabelIn(d, sc, label, be)
	}
	secondLastStart, lastStart := 0, firstDot+1
	start := firstDot + 1
	for i := start; i < end; i++ {
		if trimmed[i] != '.' {
			continue
		}
		if label := trimmed[start:i]; candidateLabelFor(label, be) {
			if sc == nil {
				sc = d.scratch.Get().(*scratch)
			}
			out = append(out, detectLabelIn(d, sc, label, be)...)
		}
		secondLastStart, lastStart = lastStart, i+1
		start = i + 1
	}
	if sc != nil {
		d.scratch.Put(sc)
	}
	if len(out) == 0 {
		return nil
	}
	// Attach the domain context, deciding the suffix width only now
	// that a match exists.
	fq := string(fqdn)
	tldStart := lastStart
	if lastStart > firstDot+1 && // three labels or more
		domain.TwoLabelSuffix(trimmed, domain.Span{Start: secondLastStart, End: lastStart - 1}, domain.Span{Start: lastStart, End: end}) {
		tldStart = secondLastStart
	}
	tld := fq[tldStart:end]
	for i := range out {
		out[i].FQDN = fq
		out[i].TLD = tld
	}
	return out
}

// candidateLabel reports whether a label can be a homograph under the
// posting backend: an ACE label decodes to non-ASCII by construction,
// and a raw label must carry a non-ASCII byte (ASCII-to-ASCII pairs are
// never homoglyphs — the soundness property the engine's tests pin).
func candidateLabel[S punycode.ByteSeq](label S) bool {
	if punycode.HasACEPrefix(label) {
		return true
	}
	for i := 0; i < len(label); i++ {
		if label[i] >= 0x80 {
			return true
		}
	}
	return false
}

// candidateLabelFor is the backend-aware candidate gate. The skeleton
// backend must see every non-empty label: a many-to-one homograph
// ("rnicrosoft") is pure ASCII, exactly the shape the posting gate
// rejects as impossible for itself.
func candidateLabelFor[S punycode.ByteSeq](label S, be Backend) bool {
	if be&BackendSkeleton != 0 {
		return len(label) > 0
	}
	return candidateLabel(label)
}

// detectLabelIn is the shared per-label hot path, compiled for both
// label spellings, running on borrowed scratch: decode once, then run
// each selected backend over the decoded runes. In both-mode the
// skeleton pass merges into the posting results, OR-ing the Backend mask
// of references both indexes found.
func detectLabelIn[S punycode.ByteSeq](d *Detector, sc *scratch, idnLabel S, be Backend) []Match {
	runes, err := punycode.ToUnicodeLabelAppend(sc.runes[:0], idnLabel)
	sc.runes = runes
	if err != nil {
		return nil
	}
	var out []Match
	if be&BackendPostings != 0 {
		out = detectPostingsIn(d, sc, runes, idnLabel)
	}
	if be&BackendSkeleton != 0 {
		out = detectSkeletonIn(d, sc, runes, idnLabel, out)
	}
	return out
}

// detectPostingsIn is the posting-list backend over an already-decoded
// label: gather per-position lists, intersect rarest-first, verify
// survivors character-by-character.
func detectPostingsIn[S punycode.ByteSeq](d *Detector, sc *scratch, runes []rune, idnLabel S) []Match {
	b := d.byLen[len(runes)]
	if b == nil {
		return nil
	}

	// Gather each position's posting list, rejecting immediately when a
	// position has none; seed the intersection with the rarest list.
	lists := sc.lists[:0]
	minPos := 0
	for p, r := range runes {
		l := b.index[p][r]
		if len(l) == 0 {
			sc.lists = lists
			return nil
		}
		lists = append(lists, l)
		if len(l) < len(lists[minPos]) {
			minPos = p
		}
	}
	sc.lists = lists

	// cur starts as a read-only view of the rarest posting list; each
	// intersection writes into the scratch buffer the next round does
	// not read from, so nothing is ever copied.
	cur := lists[minPos]
	bufA, bufB := sc.cand, sc.next
	for p, l := range lists {
		if p == minPos {
			continue
		}
		bufA = intersect(cur, l, bufA[:0])
		cur = bufA
		bufA, bufB = bufB, bufA
		if len(cur) == 0 {
			break
		}
	}
	sc.cand, sc.next = bufA, bufB // keep the grown buffers for reuse
	if len(cur) == 0 {
		return nil
	}

	// Survivors exist, so matches are likely: materialize the IDN and
	// Unicode strings once, here — the miss path above never builds them.
	var idn, uni string
	var out []Match
	for _, id := range cur {
		ref := &b.refs[id]
		if diffs, ok := d.matchAgainst(ref.runes, runes); ok {
			if out == nil {
				idn, uni = string(idnLabel), string(runes)
			}
			out = append(out, Match{
				IDN:       idn,
				Unicode:   uni,
				Reference: ref.label,
				FQDN:      idn, // bare-label context; detectDomain overwrites
				Backend:   BackendPostings,
				Diffs:     diffs,
			})
		}
	}
	return out
}

// intersect writes the sorted intersection of a and b into dst. When one
// list is far shorter it binary-searches the long one instead of merging,
// so the cost is O(short·log(long)) — an ASCII position shared by most
// references never forces a walk over its whole posting list.
func intersect(a, b []int32, dst []int32) []int32 {
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(b) > 16*len(a) {
		lo := 0
		for _, x := range a {
			lo += search(b[lo:], x)
			if lo < len(b) && b[lo] == x {
				dst = append(dst, x)
				lo++
			}
		}
		return dst
	}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			dst = append(dst, a[i])
			i++
			j++
		}
	}
	return dst
}

// search returns the first index in the sorted slice s holding a value
// ≥ x, or len(s).
func search(s []int32, x int32) int {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// DetectLabelLinear is the seed engine: a linear scan over every
// same-length reference. It is retained as the correctness baseline the
// indexed path is property-tested against, and as the "before" side of
// the throughput ablation.
func (d *Detector) DetectLabelLinear(idnLabel string) []Match {
	uni, err := punycode.ToUnicodeLabel(idnLabel)
	if err != nil {
		return nil
	}
	runes := []rune(uni)
	b := d.byLen[len(runes)]
	if b == nil {
		return nil
	}
	var out []Match
	for i := range b.refs {
		if diffs, ok := d.matchAgainst(b.refs[i].runes, runes); ok {
			out = append(out, Match{
				IDN:       idnLabel,
				Unicode:   uni,
				Reference: b.refs[i].label,
				FQDN:      idnLabel,
				Backend:   BackendPostings,
				Diffs:     diffs,
			})
		}
	}
	return out
}

// DB exposes the detector's homoglyph database.
func (d *Detector) DB() *homoglyph.DB { return d.db }
