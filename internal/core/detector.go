// Package core implements the ShamFinder detection engine — Algorithm 1 of
// the paper: given a list of reference domain names and a set of extracted
// IDNs, find the IDNs that are homographs of a reference, pinpointing the
// differential characters so downstream countermeasures (blocklists, the
// Figure 12 warning UI) can explain exactly which character was substituted.
package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/homoglyph"
	"repro/internal/punycode"
)

// CharDiff records one substituted character in a detected homograph.
type CharDiff struct {
	Pos    int              // rune index within the label
	Got    rune             // the character in the IDN
	Want   rune             // the character in the reference
	Source homoglyph.Source // which database vouched for the pair
}

// String renders the diff as "օ≈o@1 (SimChar)".
func (d CharDiff) String() string {
	return fmt.Sprintf("%c≈%c@%d (%s)", d.Got, d.Want, d.Pos, d.Source)
}

// Match is one detected homograph: the IDN (in both forms) and the
// reference it imitates.
type Match struct {
	IDN       string // ASCII (xn--) form as seen in the zone
	Unicode   string // decoded label
	Reference string // targeted reference label (TLD removed)
	Diffs     []CharDiff
}

// Detector holds the reference list bucketed by length and the homoglyph
// database, ready to scan IDNs.
type Detector struct {
	db    *homoglyph.DB
	byLen map[int][]string
	refs  []string
}

// NewDetector builds a detector over reference labels (TLD part removed,
// ASCII form). Duplicate references are collapsed.
func NewDetector(db *homoglyph.DB, references []string) *Detector {
	d := &Detector{db: db, byLen: make(map[int][]string)}
	seen := make(map[string]bool, len(references))
	for _, ref := range references {
		ref = strings.ToLower(strings.TrimSpace(ref))
		if ref == "" || seen[ref] {
			continue
		}
		seen[ref] = true
		d.refs = append(d.refs, ref)
		n := len([]rune(ref))
		d.byLen[n] = append(d.byLen[n], ref)
	}
	return d
}

// References returns the deduplicated reference labels.
func (d *Detector) References() []string {
	out := make([]string, len(d.refs))
	copy(out, d.refs)
	return out
}

// matchAgainst implements the inner loop of Algorithm 1 for one
// (reference, IDN) pair of equal rune length.
func (d *Detector) matchAgainst(ref []rune, idn []rune) ([]CharDiff, bool) {
	var diffs []CharDiff
	for i := range ref {
		if ref[i] == idn[i] {
			continue
		}
		ok, src := d.db.Confusable(idn[i], ref[i])
		if !ok {
			return nil, false
		}
		diffs = append(diffs, CharDiff{Pos: i, Got: idn[i], Want: ref[i], Source: src})
	}
	// A homograph must differ somewhere; an identical string is the
	// reference itself, not an attack.
	if len(diffs) == 0 {
		return nil, false
	}
	return diffs, true
}

// DetectLabel checks one IDN label (ASCII xn-- form, TLD removed) against
// every same-length reference and returns all matches.
func (d *Detector) DetectLabel(idnLabel string) []Match {
	uni, err := punycode.ToUnicodeLabel(idnLabel)
	if err != nil {
		return nil
	}
	runes := []rune(uni)
	var out []Match
	for _, ref := range d.byLen[len(runes)] {
		if diffs, ok := d.matchAgainst([]rune(ref), runes); ok {
			out = append(out, Match{
				IDN:       idnLabel,
				Unicode:   uni,
				Reference: ref,
				Diffs:     diffs,
			})
		}
	}
	return out
}

// Detect scans a set of IDN labels and returns every (IDN, reference)
// match, sorted by IDN then reference.
func (d *Detector) Detect(idnLabels []string) []Match {
	var out []Match
	for _, idn := range idnLabels {
		out = append(out, d.DetectLabel(idn)...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].IDN != out[j].IDN {
			return out[i].IDN < out[j].IDN
		}
		return out[i].Reference < out[j].Reference
	})
	return out
}

// DetectedIDNs collapses matches to the distinct set of homograph IDNs —
// the counting unit of the paper's Table 8.
func DetectedIDNs(matches []Match) []string {
	seen := map[string]bool{}
	var out []string
	for _, m := range matches {
		if !seen[m.IDN] {
			seen[m.IDN] = true
			out = append(out, m.IDN)
		}
	}
	sort.Strings(out)
	return out
}

// TargetHistogram counts matches per reference — Table 9's "top targeted
// domains".
func TargetHistogram(matches []Match) map[string]int {
	h := map[string]int{}
	byIDN := map[string]map[string]bool{}
	for _, m := range matches {
		if byIDN[m.Reference] == nil {
			byIDN[m.Reference] = map[string]bool{}
		}
		byIDN[m.Reference][m.IDN] = true
	}
	for ref, idns := range byIDN {
		h[ref] = len(idns)
	}
	return h
}

// Revert maps a (possibly undetected) IDN label back to its most plausible
// original domain label — Section 6.4's countermeasure for homographs of
// unpopular domains. If the label is a homograph of a known reference,
// the reference wins (this resolves direction-ambiguous pairs such as
// CJK 工 vs Katakana エ); otherwise every character is canonicalized
// independently.
func (d *Detector) Revert(idnLabel string) (string, error) {
	if matches := d.DetectLabel(idnLabel); len(matches) > 0 {
		return matches[0].Reference, nil
	}
	uni, err := punycode.ToUnicodeLabel(idnLabel)
	if err != nil {
		return "", err
	}
	return d.db.Revert(uni), nil
}

// DB exposes the detector's homoglyph database.
func (d *Detector) DB() *homoglyph.DB { return d.db }
