package core

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/confusables"
	"repro/internal/fontgen"
	"repro/internal/homoglyph"
	"repro/internal/punycode"
	"repro/internal/simchar"
	"repro/internal/ucd"
)

var (
	testDBOnce   sync.Once
	testDBShared *homoglyph.DB
)

// testDB builds a homoglyph DB from the mid-size font plus the default UC,
// shared across the package's tests (the build is deterministic).
func testDB(t testing.TB) *homoglyph.DB {
	t.Helper()
	testDBOnce.Do(func() {
		font := fontgen.Generate(fontgen.Options{SkipCJK: true, SkipHangul: true})
		sim, _ := simchar.Build(font, ucd.IDNASet(), simchar.Options{})
		testDBShared = homoglyph.New(confusables.Default(), sim, 0)
	})
	return testDBShared
}

func ace(t testing.TB, unicodeLabel string) string {
	t.Helper()
	a, err := punycode.ToASCIILabel(unicodeLabel)
	if err != nil {
		t.Fatalf("ToASCIILabel(%q): %v", unicodeLabel, err)
	}
	return a
}

func TestDetectCyrillicGoogle(t *testing.T) {
	db := testDB(t)
	d := NewDetector(db, []string{"google", "facebook", "amazon"})
	// gооgle with two Cyrillic о (the paper's Figure 2 example uses
	// Armenian օ; both are twins of o in the database).
	idn := ace(t, "gооgle")
	matches := d.DetectLabel(idn)
	if len(matches) != 1 {
		t.Fatalf("matches = %d, want 1 (%v)", len(matches), matches)
	}
	m := matches[0]
	if m.Reference != "google" {
		t.Fatalf("reference = %q", m.Reference)
	}
	if len(m.Diffs) != 2 || m.Diffs[0].Pos != 1 || m.Diffs[1].Pos != 2 {
		t.Fatalf("diffs = %v", m.Diffs)
	}
	if m.Diffs[0].Got != 0x043E || m.Diffs[0].Want != 'o' {
		t.Fatalf("diff0 = %v", m.Diffs[0])
	}
}

func TestDetectArmenianExample(t *testing.T) {
	// Figure 2 left: g + Armenian օ (U+0585) twice.
	db := testDB(t)
	d := NewDetector(db, []string{"google"})
	idn := ace(t, "gօօgle")
	if got := d.DetectLabel(idn); len(got) != 1 {
		t.Fatalf("Armenian gօօgle not detected: %v", got)
	}
}

func TestRejectNonHomograph(t *testing.T) {
	// Figure 2 right: "gocaié" shares no structure with google.
	db := testDB(t)
	d := NewDetector(db, []string{"google"})
	idn := ace(t, "gocaié")
	if got := d.DetectLabel(idn); len(got) != 0 {
		t.Fatalf("gocaié wrongly detected: %v", got)
	}
}

func TestLengthMismatchSkipped(t *testing.T) {
	db := testDB(t)
	d := NewDetector(db, []string{"google"})
	idn := ace(t, "gооgles") // 7 runes vs 6
	if got := d.DetectLabel(idn); len(got) != 0 {
		t.Fatalf("length mismatch should not match: %v", got)
	}
}

func TestDiacriticHomograph(t *testing.T) {
	// facébook: é is a UC-and-SimChar homoglyph of e? In our DB, é→e
	// comes from SimChar (Δ=3 acute).
	db := testDB(t)
	d := NewDetector(db, []string{"facebook"})
	idn := ace(t, "facébook")
	matches := d.DetectLabel(idn)
	if len(matches) != 1 {
		t.Fatalf("facébook not detected: %v", matches)
	}
	if matches[0].Diffs[0].Source&homoglyph.SourceSimChar == 0 {
		t.Fatalf("é/e should be vouched by SimChar, got %v", matches[0].Diffs[0].Source)
	}
}

func TestUCOnlyVsUnionDetection(t *testing.T) {
	db := testDB(t)
	ucOnly := NewDetector(db.WithSources(homoglyph.SourceUC), []string{"facebook"})
	union := NewDetector(db, []string{"facebook"})
	idn := ace(t, "facébook") // é is SimChar-only
	if got := ucOnly.DetectLabel(idn); len(got) != 0 {
		t.Fatalf("UC-only should miss é: %v", got)
	}
	if got := union.DetectLabel(idn); len(got) != 1 {
		t.Fatalf("union should detect é: %v", got)
	}
}

func TestDetectBatchAndHistogram(t *testing.T) {
	db := testDB(t)
	d := NewDetector(db, []string{"google", "amazon"})
	idns := []string{
		ace(t, "gооgle"),
		ace(t, "goоgle"),
		ace(t, "amazоn"),
		ace(t, "nomatché"),
	}
	matches := d.Detect(idns)
	if len(DetectedIDNs(matches)) != 3 {
		t.Fatalf("detected = %v", DetectedIDNs(matches))
	}
	h := TargetHistogram(matches)
	if h["google"] != 2 || h["amazon"] != 1 {
		t.Fatalf("histogram = %v", h)
	}
}

func TestIdenticalLabelNotAHomograph(t *testing.T) {
	db := testDB(t)
	d := NewDetector(db, []string{"google"})
	// A non-IDN ASCII label identical to the reference must not match
	// (DetectLabel requires at least one substitution).
	if got := d.DetectLabel("google"); len(got) != 0 {
		t.Fatalf("identical label matched: %v", got)
	}
}

func TestInvalidPunycodeIgnored(t *testing.T) {
	db := testDB(t)
	d := NewDetector(db, []string{"google"})
	if got := d.DetectLabel("xn--!!!"); got != nil {
		t.Fatalf("invalid punycode should yield nil, got %v", got)
	}
}

func TestRevert(t *testing.T) {
	db := testDB(t)
	d := NewDetector(db, nil)
	idn := ace(t, "gооgle")
	back, err := d.Revert(idn)
	if err != nil || back != "google" {
		t.Fatalf("Revert = %q, %v", back, err)
	}
	// Lao digit zero reverts to o (Figure 12).
	idn = ace(t, "g໐໐gle")
	back, err = d.Revert(idn)
	if err != nil || back != "google" {
		t.Fatalf("Revert Lao = %q, %v", back, err)
	}
	if _, err := d.Revert("xn--!!!"); err == nil {
		t.Fatal("invalid punycode must error")
	}
}

func TestReferencesDeduplicated(t *testing.T) {
	db := testDB(t)
	d := NewDetector(db, []string{"google", "GOOGLE", " google ", "amazon", ""})
	if got := len(d.References()); got != 2 {
		t.Fatalf("references = %v", d.References())
	}
}

func TestWarningRendering(t *testing.T) {
	db := testDB(t)
	d := NewDetector(db, []string{"google"})
	m := d.DetectLabel(ace(t, "g໐໐gle"))
	if len(m) != 1 {
		t.Fatalf("expected 1 match, got %v", m)
	}
	w := BuildWarning(m[0])
	txt := w.Text()
	if !strings.Contains(txt, "Did you mean \"google\"") {
		t.Errorf("warning text missing suggestion:\n%s", txt)
	}
	if !strings.Contains(txt, "Lao") {
		t.Errorf("warning text missing script context:\n%s", txt)
	}
	page := w.HTML()
	for _, want := range []string{"<!DOCTYPE html>", "class=\"hl\"", "google", "Proceed anyway"} {
		if !strings.Contains(page, want) {
			t.Errorf("warning HTML missing %q", want)
		}
	}
	// The two substituted characters must be highlighted exactly twice.
	if got := strings.Count(page, "<span class=\"hl\">"); got < 2 {
		t.Errorf("highlight spans = %d, want >= 2", got)
	}
}

func TestCharDiffString(t *testing.T) {
	d := CharDiff{Pos: 1, Got: 0x0585, Want: 'o', Source: homoglyph.SourceSimChar}
	if s := d.String(); !strings.Contains(s, "@1") || !strings.Contains(s, "SimChar") {
		t.Fatalf("CharDiff.String = %q", s)
	}
}

func BenchmarkDetectLabel(b *testing.B) {
	db := testDB(b)
	refs := make([]string, 0, 1000)
	for i := 0; i < 1000; i++ {
		refs = append(refs, strings.Repeat("ab", 3)+string(rune('a'+i%26))+string(rune('a'+(i/26)%26)))
	}
	refs = append(refs, "google")
	d := NewDetector(db, refs)
	idn, _ := punycode.ToASCIILabel("gооgle")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.DetectLabel(idn)
	}
}
