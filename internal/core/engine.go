// The serving engine: a hot-swappable holder for the immutable
// Detector. The paper's operational model is a continuously running
// pipeline — zone diffs and reference-list updates arrive daily while
// detection keeps answering — so the compiled detector state must be
// replaceable underneath live queries without a restart. The split is
// deliberate: a *Detector stays a frozen value (built once, never
// mutated, safe to share), and Engine is the one mutable cell that
// points at the current one. Queries load the pointer once and run
// entirely against that state; a swap installs a fresh pointer for
// future queries while in-flight ones finish on the state they
// started with. No locks sit on the query path.
package core

import (
	"sync"
	"sync/atomic"

	"repro/internal/homoglyph"
)

// engineState pairs a frozen detector with the epoch it was installed
// at. The pair travels behind one atomic pointer so a reader can never
// observe a detector from one generation with the epoch of another.
type engineState struct {
	det   *Detector
	epoch uint64
}

// Engine holds the live *Detector behind an atomic pointer and swaps
// it wholesale. Epochs are strictly increasing, starting at 1:
// every swap installs epoch+1, and every query reports the epoch it
// ran against, so callers (and the serving layer's consistency tests)
// can prove an answer came from exactly one generation of state.
//
// The zero Engine is not usable; construct with NewEngine.
type Engine struct {
	state atomic.Pointer[engineState]

	// swapMu serializes writers only: it makes the read-increment-store
	// of the epoch atomic across concurrent Swap/Rebuild callers.
	// Readers never take it.
	swapMu sync.Mutex
}

// NewEngine wraps det as the engine's first state, at epoch 1.
func NewEngine(det *Detector) *Engine {
	if det == nil {
		panic("core: NewEngine with nil detector")
	}
	e := &Engine{}
	e.state.Store(&engineState{det: det, epoch: 1})
	return e
}

// Current returns the live detector and its epoch as one consistent
// pair. The detector is immutable and remains valid (and correct for
// that epoch) even after a later Swap — which is exactly how in-flight
// queries finish on the state they started with.
func (e *Engine) Current() (*Detector, uint64) {
	s := e.state.Load()
	return s.det, s.epoch
}

// Detector returns the live detector.
func (e *Engine) Detector() *Detector { return e.state.Load().det }

// Epoch returns the current epoch.
func (e *Engine) Epoch() uint64 { return e.state.Load().epoch }

// DB returns the homoglyph database behind the live detector.
func (e *Engine) DB() *homoglyph.DB { return e.state.Load().det.db }

// Swap installs det as the new live state and returns its epoch.
// In-flight queries keep their already-loaded state; queries that
// start after Swap returns observe det (or something newer). det must
// be fully constructed — the engine never publishes partial state.
func (e *Engine) Swap(det *Detector) uint64 {
	if det == nil {
		panic("core: Engine.Swap with nil detector")
	}
	e.swapMu.Lock()
	defer e.swapMu.Unlock()
	next := e.state.Load().epoch + 1
	e.state.Store(&engineState{det: det, epoch: next})
	return next
}

// Rebuild compiles a fresh detector for refs off the engine's current
// homoglyph database and swaps it in, returning the new epoch. The
// (comparatively expensive) index compilation happens before the swap
// lock is taken, on the caller's goroutine, while queries continue
// uninterrupted on the old state — so a reference-list update is a
// background build plus one pointer store, never a service pause.
// Concurrent Rebuilds are safe; the last swap wins.
func (e *Engine) Rebuild(refs []string) uint64 {
	det := NewDetector(e.state.Load().det.db, refs)
	return e.Swap(det)
}

// DetectDomain runs Detector.DetectDomain against one consistent
// state, reporting the epoch the answer is valid for.
func (e *Engine) DetectDomain(fqdn string) ([]Match, uint64) {
	s := e.state.Load()
	return s.det.DetectDomain(fqdn), s.epoch
}

// DetectDomainBytes is DetectDomain over a reused line buffer — the
// serving layer's hot path: zero allocation on the miss path, one
// atomic load of state per query.
//
// Batch callers that must answer a whole request from one epoch (the
// HTTP layer's /v1/detect) take Current() once and loop on the
// returned detector — the pattern these two methods are sugar for.
func (e *Engine) DetectDomainBytes(fqdn []byte) ([]Match, uint64) {
	s := e.state.Load()
	return s.det.DetectDomainBytes(fqdn), s.epoch
}

// DetectDomainBackend is DetectDomain with an explicit backend choice.
func (e *Engine) DetectDomainBackend(fqdn string, be Backend) ([]Match, uint64) {
	s := e.state.Load()
	return s.det.DetectDomainBackend(fqdn, be), s.epoch
}

// DetectDomainBytesBackend is DetectDomainBytes with an explicit backend
// choice — the serving layer's hot path when a request selects one.
func (e *Engine) DetectDomainBytesBackend(fqdn []byte, be Backend) ([]Match, uint64) {
	s := e.state.Load()
	return s.det.DetectDomainBytesBackend(fqdn, be), s.epoch
}
