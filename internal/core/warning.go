package core

import (
	"fmt"
	"html"
	"strings"

	"repro/internal/ucd"
)

// Warning is the context behind a detected homograph, the information the
// paper's Figure 12 UI presents instead of force-punycoding the name:
// which character was substituted, what it looks like, which script/block
// it came from, and what the user probably meant.
type Warning struct {
	Accessed    string // the homograph in Unicode form
	Suggested   string // the reference domain the user probably meant
	Substitutes []Substitution
}

// Substitution explains one substituted character.
type Substitution struct {
	Pos      int
	Got      rune
	GotName  string // e.g. "U+0ED0 (Lao, Lao block)"
	Want     rune
	WantName string
	Database string // which DB flagged the pair
}

// describeRune names a code point by script and block, a readable stand-in
// for the full Unicode character names the paper's mock-up shows.
func describeRune(r rune) string {
	return fmt.Sprintf("U+%04X (%s script, %s block)", r, ucd.ScriptOf(r), ucd.BlockOf(r))
}

// BuildWarning converts a detection match into its user-facing context.
// When the match carries domain context, both names are rendered under
// the TLD the homograph was actually found on — "gооgle.net … did you
// mean google.net?" — instead of a hardcoded suffix. Accessed is the
// matched label plus that suffix; any subdomain prefix of the FQDN
// (the "www." of www.gооgle.com) is dropped, which is what keeps the
// Substitutes positions — label-relative rune indexes — valid as
// direct indexes into Accessed.
func BuildWarning(m Match) Warning {
	accessed := m.Unicode
	if m.TLD != "" {
		accessed += "." + m.TLD
	}
	w := Warning{Accessed: accessed, Suggested: m.Imitated()}
	for _, d := range m.Diffs {
		w.Substitutes = append(w.Substitutes, Substitution{
			Pos:      d.Pos,
			Got:      d.Got,
			GotName:  describeRune(d.Got),
			Want:     d.Want,
			WantName: describeRune(d.Want),
			Database: d.Source.String(),
		})
	}
	return w
}

// Text renders the warning as terminal-friendly text.
func (w Warning) Text() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "WARNING: use of homoglyph detected.\n")
	fmt.Fprintf(&sb, "You are accessing %q. Did you mean %q?\n", w.Accessed, w.Suggested)
	for _, s := range w.Substitutes {
		fmt.Fprintf(&sb, "  position %d: %q %s imitates %q %s [flagged by %s]\n",
			s.Pos, s.Got, s.GotName, s.Want, s.WantName, s.Database)
	}
	return sb.String()
}

// HTML renders the warning as the interstitial page of Figure 12, with the
// substituted characters highlighted. The markup is self-contained so the
// browser-warning example can serve it directly.
func (w Warning) HTML() string {
	var sb strings.Builder
	sb.WriteString("<!DOCTYPE html><html><head><meta charset=\"utf-8\"><title>Homograph warning</title>")
	sb.WriteString("<style>body{font-family:sans-serif;max-width:40em;margin:4em auto}" +
		".warn{border:3px solid #c00;padding:1.5em;border-radius:8px}" +
		".hl{background:#fdd;color:#c00;font-weight:bold}" +
		".domain{font-size:1.4em;letter-spacing:.05em}" +
		"a.go{display:inline-block;margin:1em .5em 0 0;padding:.5em 1em;border-radius:4px;" +
		"background:#eee;text-decoration:none;color:#000}a.safe{background:#cfc}</style></head><body>")
	sb.WriteString("<div class=\"warn\"><h1>⚠ Use of homoglyph detected</h1>")
	sb.WriteString("<p>You are accessing <span class=\"domain\">")
	hl := map[int]bool{}
	for _, s := range w.Substitutes {
		hl[s.Pos] = true
	}
	for i, r := range []rune(w.Accessed) {
		if hl[i] {
			sb.WriteString("<span class=\"hl\">")
			sb.WriteString(html.EscapeString(string(r)))
			sb.WriteString("</span>")
		} else {
			sb.WriteString(html.EscapeString(string(r)))
		}
	}
	sb.WriteString("</span>.</p>")
	fmt.Fprintf(&sb, "<p>Did you mean <span class=\"domain\">%s</span>?</p><ul>",
		html.EscapeString(w.Suggested))
	for _, s := range w.Substitutes {
		fmt.Fprintf(&sb, "<li><span class=\"hl\">%s</span> %s &rarr; %s %s</li>",
			html.EscapeString(string(s.Got)), html.EscapeString(s.GotName),
			html.EscapeString(string(s.Want)), html.EscapeString(s.WantName))
	}
	sb.WriteString("</ul>")
	fmt.Fprintf(&sb, "<a class=\"go safe\" href=\"https://%s/\">Go to %s</a>",
		html.EscapeString(w.Suggested), html.EscapeString(w.Suggested))
	fmt.Fprintf(&sb, "<a class=\"go\" href=\"https://%s/?homograph-ack=1\">Proceed anyway</a>",
		html.EscapeString(w.Accessed))
	sb.WriteString("</div></body></html>")
	return sb.String()
}
