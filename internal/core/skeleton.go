package core

import (
	"sort"
	"unicode/utf8"

	"repro/internal/homoglyph"
	"repro/internal/punycode"
)

// skelIndex is the TR39 skeleton backend: every rune maps to a canonical
// prototype (a single representative rune, or a multi-rune sequence for
// many-to-one confusables), and every reference's whole-label skeleton is
// precomputed into a hash map — so a candidate label resolves to its
// imitated references in one map probe, regardless of length.
//
// The per-rune mapping is derived from the SAME pairwise graph the
// posting lists index, via union-find: every connected component of the
// Confusable relation collapses to one representative (its smallest
// rune). That construction makes the differential-parity property hold
// by design — Confusable(a,b) ⇒ same component ⇒ same skeleton rune — so
// any single-rune substitution the posting backend can see, the skeleton
// backend sees too. On top of that, components whose representative
// carries a multi-rune UC prototype ('m' → "rn") expand to the mapped
// sequence, which is what catches the length-changing homographs
// ("rnicrosoft") the pairwise model cannot represent.
type skelIndex struct {
	rep  map[rune]rune      // non-identity component representatives
	seq  map[rune][]rune    // multi-rune skeletons (already rep-mapped)
	refs map[string][]int32 // skeleton(ref) → ascending ids into Detector.refs
}

// buildSkelIndex compiles the skeleton backend for the detector's
// homoglyph view and global reference list.
func buildSkelIndex(db *homoglyph.DB, refs []string) *skelIndex {
	chars := db.Chars().Runes()

	// Union-find over the pairwise graph, path-halving on find.
	parent := make(map[rune]rune, len(chars))
	var find func(rune) rune
	find = func(r rune) rune {
		p, ok := parent[r]
		if !ok || p == r {
			return r
		}
		root := find(p)
		parent[r] = root
		return root
	}
	union := func(a, b rune) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for _, r := range chars {
		for _, p := range db.Homoglyphs(r) {
			union(r, p)
		}
	}

	// Representative = smallest rune of the component.
	minOf := make(map[rune]rune, len(chars))
	for _, r := range chars {
		root := find(r)
		if m, ok := minOf[root]; !ok || r < m {
			minOf[root] = r
		}
	}
	x := &skelIndex{
		rep:  make(map[rune]rune),
		seq:  make(map[rune][]rune),
		refs: make(map[string][]int32),
	}
	for _, r := range chars {
		if m := minOf[find(r)]; m != r {
			x.rep[r] = m
		}
	}

	// Sequence expansion is decided per COMPONENT, by its representative:
	// if the rep's full UC prototype is multi-rune, every member of the
	// component skeletonizes to that sequence (each sequence rune itself
	// resolved recursively). Deciding by member instead would let a
	// SimChar-only partner of 'w' keep skeleton 'w' while 'w' itself went
	// to "vv", silently breaking posting⊆skeleton parity.
	var uc ucExpander
	if db.Use()&homoglyph.SourceUC != 0 {
		if c := db.UC(); c != nil {
			uc = c
		}
	}
	var expand func(r rune, depth int, dst []rune) []rune
	expand = func(r rune, depth int, dst []rune) []rune {
		rep := r
		if m, ok := x.rep[r]; ok {
			rep = m
		}
		if uc != nil && depth < 8 {
			if s := uc.SkeletonAppend(nil, rep); len(s) > 1 {
				for _, t := range s {
					dst = expand(t, depth+1, dst)
				}
				return dst
			}
		}
		return append(dst, rep)
	}
	for _, r := range chars {
		if s := expand(r, 0, nil); len(s) > 1 {
			x.seq[r] = s
		}
	}

	for i, ref := range refs {
		key := string(x.appendLabel(nil, []rune(ref)))
		x.refs[key] = append(x.refs[key], int32(i))
	}
	return x
}

// ucExpander is the slice of confusables.DB the expansion needs; an
// interface so the build works against any view without importing the
// package for more than the type.
type ucExpander interface {
	SkeletonAppend(dst []rune, r rune) []rune
}

// appendLabel appends the UTF-8 skeleton of the label's runes to dst and
// returns the extended slice. Runes outside the database map to
// themselves, so an all-unknown label's skeleton is itself.
func (x *skelIndex) appendLabel(dst []byte, runes []rune) []byte {
	for _, r := range runes {
		if s, ok := x.seq[r]; ok {
			for _, sr := range s {
				dst = utf8.AppendRune(dst, sr)
			}
			continue
		}
		if m, ok := x.rep[r]; ok {
			dst = utf8.AppendRune(dst, m)
			continue
		}
		dst = utf8.AppendRune(dst, r)
	}
	return dst
}

// runesEqualString reports rs == s without materializing either side.
func runesEqualString(rs []rune, s string) bool {
	i := 0
	for _, r := range s {
		if i >= len(rs) || rs[i] != r {
			return false
		}
		i++
	}
	return i == len(rs)
}

// detectSkeletonIn runs the skeleton backend over an already-decoded
// label and merges its findings into out (which may hold posting-backend
// matches for the same label): a reference both backends found gets its
// Backend mask OR-ed, keeping the posting match's character diffs. The
// miss path — skeletonize, one map probe, empty list — allocates
// nothing: the map index uses the string(sc.skel) conversion the
// compiler performs without copying.
func detectSkeletonIn[S punycode.ByteSeq](d *Detector, sc *scratch, runes []rune, idnLabel S, out []Match) []Match {
	if d.skel == nil || len(runes) == 0 {
		return out
	}
	sc.skel = d.skel.appendLabel(sc.skel[:0], runes)
	ids := d.skel.refs[string(sc.skel)]
	if len(ids) == 0 {
		return out
	}
	var idn, uni string
	have := false
	if len(out) > 0 { // posting matches already materialized the strings
		idn, uni, have = out[0].IDN, out[0].Unicode, true
	}
	for _, id := range ids {
		ref := d.refs[id]
		// An identical label is the reference itself, not a homograph —
		// the skeleton-side twin of matchAgainst's zero-diff rejection.
		if runesEqualString(runes, ref) {
			continue
		}
		merged := false
		for i := range out {
			if out[i].Reference == ref {
				out[i].Backend |= BackendSkeleton
				merged = true
				break
			}
		}
		if merged {
			continue
		}
		if !have {
			idn, uni, have = string(idnLabel), string(runes), true
		}
		out = append(out, Match{
			IDN:       idn,
			Unicode:   uni,
			Reference: ref,
			FQDN:      idn, // bare-label context; detectDomain overwrites
			Backend:   BackendSkeleton,
		})
	}
	return out
}

// sortedRuneKeys returns a skeleton map's keys in their canonical
// (ascending) order, shared by Snapshot and the loader so identical
// detectors flatten identically.
func sortedRuneKeys[V any](m map[rune]V) []rune {
	out := make([]rune, 0, len(m))
	for r := range m {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
