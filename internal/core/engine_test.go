package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// engineFixture builds two detectors over disjoint reference sets and
// an engine starting on the first. The probe domain is a homograph of
// a set-A reference only, so "does it match" identifies which state a
// query ran against.
func engineFixture(t testing.TB) (e *Engine, detA, detB *Detector, probe string) {
	db := testDB(t)
	detA = NewDetector(db, []string{"google", "facebook", "amazon"})
	detB = NewDetector(db, []string{"paypal", "wikipedia"})
	probe = ace(t, "gооgle") + ".com" // Cyrillic о ×2: matches only set A
	if ms := detA.DetectDomain(probe); len(ms) == 0 {
		t.Fatal("probe does not match set A")
	}
	if ms := detB.DetectDomain(probe); len(ms) != 0 {
		t.Fatal("probe matches set B")
	}
	return NewEngine(detA), detA, detB, probe
}

func TestEngineSwapAdvancesEpoch(t *testing.T) {
	e, detA, detB, probe := engineFixture(t)
	if got := e.Epoch(); got != 1 {
		t.Fatalf("initial epoch = %d, want 1", got)
	}
	if ms, ep := e.DetectDomain(probe); len(ms) == 0 || ep != 1 {
		t.Fatalf("epoch-1 query: %d matches at epoch %d", len(ms), ep)
	}
	if got := e.Swap(detB); got != 2 {
		t.Fatalf("Swap = %d, want 2", got)
	}
	if ms, ep := e.DetectDomain(probe); len(ms) != 0 || ep != 2 {
		t.Fatalf("epoch-2 query: %d matches at epoch %d", len(ms), ep)
	}
	if got := e.Swap(detA); got != 3 {
		t.Fatalf("second Swap = %d, want 3", got)
	}
	det, ep := e.Current()
	if det != detA || ep != 3 {
		t.Fatalf("Current = (%p, %d), want (%p, 3)", det, ep, detA)
	}
}

func TestEngineRebuildUsesSharedDB(t *testing.T) {
	e, _, _, probe := engineFixture(t)
	ep := e.Rebuild([]string{"paypal"})
	if ep != 2 {
		t.Fatalf("Rebuild epoch = %d, want 2", ep)
	}
	if e.DB() != testDB(t) {
		t.Fatal("rebuilt detector does not share the engine's DB")
	}
	if n := e.Detector().NumReferences(); n != 1 {
		t.Fatalf("NumReferences = %d, want 1", n)
	}
	if ms, _ := e.DetectDomain(probe); len(ms) != 0 {
		t.Fatal("probe still matches after rebuilding away its reference")
	}
	e.Rebuild([]string{"google"})
	if ms, ep := e.DetectDomain(probe); len(ms) == 0 || ep != 3 {
		t.Fatalf("after second rebuild: %d matches at epoch %d", len(ms), ep)
	}
}

// TestEngineCurrentAnswersBatchFromOneEpoch pins the pattern batch
// callers use: one Current() load answers every name in the batch,
// even when a swap lands mid-loop.
func TestEngineCurrentAnswersBatchFromOneEpoch(t *testing.T) {
	e, _, detB, probe := engineFixture(t)
	det, ep := e.Current()
	if ep != 1 {
		t.Fatalf("epoch = %d", ep)
	}
	var n int
	for i, fqdn := range []string{probe, "plain.com", probe} {
		if i == 1 {
			e.Swap(detB) // a swap mid-batch must not change the answers
		}
		n += len(det.DetectDomain(fqdn))
	}
	if n != 2 {
		t.Fatalf("batch found %d matches across a mid-batch swap, want 2", n)
	}
	if _, ep := e.Current(); ep != 2 {
		t.Fatalf("post-swap epoch = %d", ep)
	}
}

// TestEngineConcurrentHotReload is the zero-downtime proof at the
// engine layer: N goroutines hammer DetectDomain[Bytes] while a writer
// loops Swap (and interleaved Rebuilds). The detectors alternate per
// epoch — odd epochs hold set A, even hold set B — so every response
// must be exactly consistent with the epoch it reports: a match at an
// even epoch (or a miss at an odd one) is a torn read. Each reader
// also brackets its query between two Epoch() loads to prove freshness:
// the reported epoch can never lag what was already visible before the
// query began. Run with -race; the test is wired into the race-clean
// tier-1 suite.
func TestEngineConcurrentHotReload(t *testing.T) {
	e, detA, detB, probe := engineFixture(t)
	const swaps = 300
	readers := runtime.GOMAXPROCS(0) * 2
	if readers < 4 {
		readers = 4
	}

	var stop atomic.Bool
	var queries atomic.Uint64
	errc := make(chan string, readers)
	fail := func(msg string) {
		select {
		case errc <- msg:
		default:
		}
	}

	var wg sync.WaitGroup
	probeBytes := []byte(probe)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			var lastEpoch uint64
			for !stop.Load() {
				before := e.Epoch()
				var ms []Match
				var ep uint64
				if r%2 == 0 {
					ms, ep = e.DetectDomain(probe)
				} else {
					ms, ep = e.DetectDomainBytes(probeBytes)
				}
				after := e.Epoch()
				wantMatch := ep%2 == 1 // odd epochs hold set A
				if wantMatch != (len(ms) > 0) {
					fail("response inconsistent with its epoch: match across a swap boundary (torn read)")
					return
				}
				if ep < before || ep > after {
					fail("epoch outside the query's bracket: stale state served")
					return
				}
				if ep < lastEpoch {
					fail("epoch went backwards within one goroutine")
					return
				}
				lastEpoch = ep
				queries.Add(1)
			}
		}(r)
	}

	// Let every reader complete at least one query before the storm so
	// "queries continue" is actually exercised against live traffic.
	for queries.Load() < uint64(readers) {
		runtime.Gosched()
	}
	for i := 0; i < swaps; i++ {
		runtime.Gosched()
		var ep uint64
		switch {
		case i%50 == 25: // a full rebuild mid-storm, off the shared DB
			if e.Epoch()%2 == 1 {
				ep = e.Rebuild([]string{"paypal", "wikipedia"})
			} else {
				ep = e.Rebuild([]string{"google", "facebook", "amazon"})
			}
		case e.Epoch()%2 == 1:
			ep = e.Swap(detB)
		default:
			ep = e.Swap(detA)
		}
		if ep != uint64(i)+2 {
			t.Fatalf("swap %d installed epoch %d, want %d", i, ep, i+2)
		}
	}
	stop.Store(true)
	wg.Wait()
	select {
	case msg := <-errc:
		t.Fatal(msg)
	default:
	}
	if queries.Load() == 0 {
		t.Fatal("no queries completed during the swap storm")
	}
	if got := e.Epoch(); got != swaps+1 {
		t.Fatalf("final epoch = %d, want %d", got, swaps+1)
	}
}
