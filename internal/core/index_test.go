package core

import (
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/punycode"
	"repro/internal/stats"
)

// indexRefs is a reference list with length collisions, shared prefixes
// and homoglyph-dense characters, so candidate intersection actually has
// work to do.
var indexRefs = []string{
	"google", "goggle", "gooole", "facebook", "faceboot",
	"myetherwallet", "allstate", "binance", "amazon", "amazen",
	"paypal", "payqal", "oooooo", "oxoxox",
}

// mutateLabel substitutes up to maxSubs characters of ref with database
// homoglyphs (or, every third draw, a random Latin letter, producing
// near-miss labels that must be rejected identically by both engines).
func mutateLabel(t *testing.T, d *Detector, rng *stats.RNG, ref string, maxSubs int) string {
	t.Helper()
	runes := []rune(ref)
	subs := 1 + rng.Intn(maxSubs)
	for k := 0; k < subs; k++ {
		pos := rng.Intn(len(runes))
		if rng.Intn(3) == 0 {
			runes[pos] = rune('a' + rng.Intn(26))
			continue
		}
		glyphs := d.DB().Homoglyphs(runes[pos])
		if len(glyphs) > 0 {
			runes[pos] = glyphs[rng.Intn(len(glyphs))]
		}
	}
	return string(runes)
}

// TestIndexedMatchesLinearParity: the candidate-index engine must return
// byte-for-byte identical matches to the seed linear scan, for labels
// built by homoglyph substitution as well as for near-miss garbage.
func TestIndexedMatchesLinearParity(t *testing.T) {
	db := testDB(t)
	det := NewDetector(db, indexRefs)
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		ref := indexRefs[rng.Intn(len(indexRefs))]
		label := mutateLabel(t, det, rng, ref, 3)
		ace, err := punycode.ToASCIILabel(label)
		if err != nil {
			return true // unencodable candidate; not a registrable attack
		}
		indexed := det.DetectLabel(ace)
		linear := det.DetectLabelLinear(ace)
		if !reflect.DeepEqual(indexed, linear) {
			t.Logf("label %q: indexed %+v, linear %+v", label, indexed, linear)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestIndexedParityOnReferences: feeding the references themselves (and
// their Unicode forms) must yield no self-matches from either engine.
func TestIndexedParityOnReferences(t *testing.T) {
	db := testDB(t)
	det := NewDetector(db, indexRefs)
	for _, ref := range indexRefs {
		indexed := det.DetectLabel(ref)
		linear := det.DetectLabelLinear(ref)
		if !reflect.DeepEqual(indexed, linear) {
			t.Errorf("ref %q: indexed %+v, linear %+v", ref, indexed, linear)
		}
		for _, m := range indexed {
			if m.Reference == ref {
				t.Errorf("ref %q matched itself: %+v", ref, m)
			}
		}
	}
}

// TestDetectParallelDeterminism: Detect must return the identical slice
// for any worker count, including duplicated input labels.
func TestDetectParallelDeterminism(t *testing.T) {
	db := testDB(t)
	det := NewDetector(db, indexRefs)
	rng := stats.NewRNG(99)
	var labels []string
	for i := 0; i < 300; i++ {
		ref := indexRefs[rng.Intn(len(indexRefs))]
		label := mutateLabel(t, det, rng, ref, 2)
		if a, err := punycode.ToASCIILabel(label); err == nil {
			labels = append(labels, a)
		}
	}
	labels = append(labels, labels[:40]...) // duplicates on purpose

	want := det.DetectParallel(labels, 1)
	if len(want) == 0 {
		t.Fatal("no matches in determinism corpus")
	}
	for _, workers := range []int{0, 2, 3, 7, 16, len(labels) + 5} {
		got := det.DetectParallel(labels, workers)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: output differs from sequential (%d vs %d matches)",
				workers, len(got), len(want))
		}
	}
}

// TestDetectStreamMatchesBatch: the streaming API must produce the same
// match multiset as the batch API, and exactly the batch slice once
// sorted.
func TestDetectStreamMatchesBatch(t *testing.T) {
	db := testDB(t)
	det := NewDetector(db, indexRefs)
	rng := stats.NewRNG(123)
	var labels []string
	for i := 0; i < 200; i++ {
		ref := indexRefs[rng.Intn(len(indexRefs))]
		label := mutateLabel(t, det, rng, ref, 2)
		if a, err := punycode.ToASCIILabel(label); err == nil {
			labels = append(labels, a)
		}
	}
	want := det.Detect(labels)

	in := make(chan string)
	go func() {
		for _, l := range labels {
			in <- l
		}
		close(in)
	}()
	var got []Match
	for m := range det.DetectStream(in, 4) {
		got = append(got, m)
	}
	SortMatches(got)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("stream %d matches, batch %d; sorted outputs differ", len(got), len(want))
	}
}
