package core

import (
	"bytes"
	"math/rand"
	"testing"
)

// manyToOneFixtures pins the false-negative class this backend closes:
// homographs built from many-to-one confusables ("rn"→"m", "vv"→"w",
// "cl"→"d") that the posting backend PROVABLY cannot represent — they
// change the label's rune length, so no per-(length,position) index can
// pair them with the reference.
var manyToOneFixtures = []struct {
	label string // attacker-registered, pure ASCII
	ref   string
}{
	{"rnicrosoft", "microsoft"},
	{"vvikipedia", "wikipedia"},
	{"close", "dose"}, // "cl" renders as 'd': close ≈ dose
	{"rnozilla", "mozilla"},
	{"vvard", "ward"},
}

func manyToOneDetector(t testing.TB) *Detector {
	refs := make([]string, 0, len(manyToOneFixtures))
	for _, f := range manyToOneFixtures {
		refs = append(refs, f.ref)
	}
	return NewDetector(testDB(t), refs)
}

func TestSkeletonCatchesManyToOne(t *testing.T) {
	d := manyToOneDetector(t)
	for _, f := range manyToOneFixtures {
		if ms := d.DetectLabelBackend(f.label, BackendPostings); len(ms) != 0 {
			t.Errorf("postings unexpectedly matched %q: %v", f.label, ms)
		}
		ms := d.DetectLabelBackend(f.label, BackendSkeleton)
		found := false
		for _, m := range ms {
			if m.Reference == f.ref {
				found = true
				if m.Backend != BackendSkeleton {
					t.Errorf("%q: Backend = %v, want skeleton", f.label, m.Backend)
				}
				if m.Unicode != f.label {
					t.Errorf("%q: Unicode = %q", f.label, m.Unicode)
				}
			}
		}
		if !found {
			t.Errorf("skeleton backend missed %q → %q (got %v)", f.label, f.ref, ms)
		}
	}
}

// The skeleton backend must keep working at the domain level, where the
// posting candidate gate would have rejected the pure-ASCII label before
// detection even ran.
func TestSkeletonDomainLevel(t *testing.T) {
	d := manyToOneDetector(t)
	if ms := d.DetectDomainBackend("rnicrosoft.com", BackendPostings); len(ms) != 0 {
		t.Fatalf("postings matched an ASCII label: %v", ms)
	}
	ms := d.DetectDomainBackend("rnicrosoft.com", BackendSkeleton)
	if len(ms) != 1 || ms[0].Reference != "microsoft" {
		t.Fatalf("skeleton DetectDomain = %v, want microsoft", ms)
	}
	if ms[0].FQDN != "rnicrosoft.com" || ms[0].TLD != "com" {
		t.Fatalf("domain context = %q/%q", ms[0].FQDN, ms[0].TLD)
	}
	if ms[0].Imitated() != "microsoft.com" {
		t.Fatalf("Imitated = %q", ms[0].Imitated())
	}
	bs := d.DetectDomainBytesBackend([]byte("www.rnicrosoft.co.uk"), BackendBoth)
	if len(bs) != 1 || bs[0].TLD != "co.uk" || bs[0].Backend != BackendSkeleton {
		t.Fatalf("bytes both-mode = %+v", bs)
	}
}

// In both-mode a reference found by the two backends carries the union
// mask and keeps the posting match's diffs; a skeleton-only find is
// tagged skeleton.
func TestBothModeUnionTagging(t *testing.T) {
	d := NewDetector(testDB(t), []string{"google", "microsoft"})
	idn := ace(t, "gооgle") // Cyrillic о twice: visible to both backends
	ms := d.DetectLabelBackend(idn, BackendBoth)
	if len(ms) != 1 {
		t.Fatalf("matches = %v", ms)
	}
	if ms[0].Backend != BackendBoth {
		t.Fatalf("Backend = %v, want both", ms[0].Backend)
	}
	if len(ms[0].Diffs) != 2 {
		t.Fatalf("merged match lost its diffs: %v", ms[0].Diffs)
	}
	ms = d.DetectLabelBackend("rnicrosoft", BackendBoth)
	if len(ms) != 1 || ms[0].Backend != BackendSkeleton || len(ms[0].Diffs) != 0 {
		t.Fatalf("skeleton-only both-mode match = %+v", ms)
	}
}

// The reference itself must never match itself through the skeleton map
// (every ref's skeleton trivially hits its own entry).
func TestSkeletonRejectsIdentity(t *testing.T) {
	d := NewDetector(testDB(t), []string{"google", "microsoft"})
	for _, be := range []Backend{BackendSkeleton, BackendBoth} {
		if ms := d.DetectLabelBackend("google", be); len(ms) != 0 {
			t.Errorf("%v: identical label matched: %v", be, ms)
		}
	}
	// But a label that equals another reference's skeleton form still
	// matches that OTHER reference ("rnicrosoft" is not a reference here,
	// "microsoft" is — and "microsoft" skeletonizes with its own 'm').
	if ms := d.DetectLabelBackend("rnicrosoft", BackendSkeleton); len(ms) != 1 {
		t.Errorf("non-identity skeleton match lost: %v", ms)
	}
}

func TestParseBackend(t *testing.T) {
	cases := []struct {
		in   string
		want Backend
		ok   bool
	}{
		{"", BackendPostings, true},
		{"postings", BackendPostings, true},
		{"skeleton", BackendSkeleton, true},
		{"both", BackendBoth, true},
		{"tr39", 0, false},
	}
	for _, c := range cases {
		got, err := ParseBackend(c.in)
		if (err == nil) != c.ok || got != c.want {
			t.Errorf("ParseBackend(%q) = %v, %v", c.in, got, err)
		}
	}
	for _, b := range []Backend{BackendPostings, BackendSkeleton, BackendBoth} {
		back, err := ParseBackend(b.String())
		if err != nil || back != b {
			t.Errorf("round trip %v: %v, %v", b, back, err)
		}
	}
}

// TestDifferentialParity is the fuzzed backend-parity bugfix test: every
// single-rune substitution the posting backend finds, the skeleton
// backend must find too. The skeleton index is built from the same
// pairwise graph via union-find, so Confusable(a,b) ⇒ same component ⇒
// equal skeletons — this test pins that construction against fold-order
// and expansion-order regressions with a seeded random corpus.
func TestDifferentialParity(t *testing.T) {
	db := testDB(t)
	refs := []string{
		"google", "microsoft", "wikipedia", "amazon", "facebook",
		"close", "ward", "example", "payments", "bank",
	}
	d := NewDetector(db, refs)
	rng := rand.New(rand.NewSource(42))
	labels := 0
	for trial := 0; trial < 3000; trial++ {
		ref := refs[rng.Intn(len(refs))]
		runes := []rune(ref)
		// Substitute 1..3 positions with pairwise homoglyphs.
		subs := 1 + rng.Intn(3)
		changed := false
		for s := 0; s < subs; s++ {
			p := rng.Intn(len(runes))
			hs := db.Homoglyphs(runes[p])
			if len(hs) == 0 {
				continue
			}
			runes[p] = hs[rng.Intn(len(hs))]
			changed = true
		}
		if !changed {
			continue
		}
		labels++
		label := string(runes)
		post := d.DetectLabelBackend(label, BackendPostings)
		skel := d.DetectLabelBackend(label, BackendSkeleton)
		for _, pm := range post {
			found := false
			for _, sm := range skel {
				if sm.Reference == pm.Reference {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("parity violated: postings found %q → %q, skeleton did not (skeleton: %v)",
					label, pm.Reference, skel)
			}
		}
	}
	if labels < 1000 {
		t.Fatalf("fuzz corpus too small: %d substituted labels", labels)
	}
}

// Snapshot round trip of the skeleton index is byte-for-byte: flatten,
// rebuild, re-flatten must reproduce the identical layout, and the
// rebuilt detector must answer skeleton queries identically.
func TestSkeletonSnapshotRoundTrip(t *testing.T) {
	db := testDB(t)
	d := NewDetector(db, []string{"google", "microsoft", "wikipedia", "close"})
	s1 := d.Snapshot()
	d2, err := NewDetectorFromSnapshot(db, s1)
	if err != nil {
		t.Fatal(err)
	}
	s2 := d2.Snapshot()

	if len(s1.SkelKeys) == 0 || len(s1.SkelSeqRunes) == 0 {
		t.Fatalf("skeleton sections empty: %d keys, %d seqs", len(s1.SkelKeys), len(s1.SkelSeqRunes))
	}
	if !runesEq(s1.SkelRepRunes, s2.SkelRepRunes) || !runesEq(s1.SkelReps, s2.SkelReps) ||
		!runesEq(s1.SkelSeqRunes, s2.SkelSeqRunes) || !runesEq(s1.SkelSeqs, s2.SkelSeqs) ||
		!i32Eq(s1.SkelSeqLens, s2.SkelSeqLens) || !i32Eq(s1.SkelListLens, s2.SkelListLens) ||
		!i32Eq(s1.SkelListIDs, s2.SkelListIDs) || !stringsEq(s1.SkelKeys, s2.SkelKeys) {
		t.Fatal("skeleton snapshot not byte-for-byte across load/re-flatten")
	}

	for _, f := range manyToOneFixtures[:3] {
		a := d.DetectLabelBackend(f.label, BackendBoth)
		b := d2.DetectLabelBackend(f.label, BackendBoth)
		if len(a) != len(b) {
			t.Fatalf("rebuilt detector diverges on %q: %v vs %v", f.label, a, b)
		}
	}
}

// Corrupt skeleton sections must be rejected, not silently loaded.
func TestSkeletonSnapshotValidation(t *testing.T) {
	db := testDB(t)
	d := NewDetector(db, []string{"google"})

	s := d.Snapshot()
	s.SkelReps = s.SkelReps[:len(s.SkelReps)-1]
	if _, err := NewDetectorFromSnapshot(db, s); err == nil {
		t.Error("truncated rep table accepted")
	}

	s = d.Snapshot()
	if len(s.SkelListIDs) == 0 {
		t.Fatal("no skeleton posting ids")
	}
	s.SkelListIDs[0] = 999
	if _, err := NewDetectorFromSnapshot(db, s); err == nil {
		t.Error("out-of-range skeleton ref id accepted")
	}

	s = d.Snapshot()
	if len(s.SkelSeqLens) > 0 {
		s.SkelSeqLens[0] = 1
		if _, err := NewDetectorFromSnapshot(db, s); err == nil {
			t.Error("single-rune skeleton sequence accepted")
		}
	}
}

func runesEq(a, b []rune) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func i32Eq(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func stringsEq(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// BenchmarkSkeletonLookup vs BenchmarkPostingIntersection: the ns/label
// cost of a whole-label skeleton probe against the posting-list
// intersection, both on the miss path (the zone-scale common case). CI
// publishes these as BENCH_skeleton.json.
func BenchmarkSkeletonLookup(b *testing.B) {
	d := NewDetector(testDB(b), benchRefs())
	fqdn := []byte("xn--ggle-55da.example.com")
	d.DetectDomainBytesBackend(fqdn, BackendSkeleton)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.DetectDomainBytesBackend(fqdn, BackendSkeleton)
	}
}

func BenchmarkPostingIntersection(b *testing.B) {
	d := NewDetector(testDB(b), benchRefs())
	fqdn := []byte("xn--ggle-55da.example.com")
	d.DetectDomainBytesBackend(fqdn, BackendPostings)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.DetectDomainBytesBackend(fqdn, BackendPostings)
	}
}

func benchRefs() []string {
	var refs []string
	var buf bytes.Buffer
	for i := 0; i < 1000; i++ {
		buf.Reset()
		buf.WriteString("brand")
		buf.WriteByte(byte('a' + i%26))
		buf.WriteByte(byte('a' + (i/26)%26))
		buf.WriteByte(byte('0' + i%10))
		refs = append(refs, buf.String())
	}
	return refs
}
