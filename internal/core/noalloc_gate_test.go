package core

import (
	"testing"

	"repro/internal/lint"
)

// TestNoallocGate pins the detector's //shamlint:noalloc contract
// dynamically: with a warm scratch pool, label- and domain-level byte
// detection must allocate nothing on the miss path — the shape of
// nearly every line a zone feeder pushes through.
func TestNoallocGate(t *testing.T) {
	det := NewDetector(testDB(t), []string{"google", "amazon"})
	label := []byte("xn--bcher-kva")
	fqdn := []byte("www.xn--bcher-kva.co.uk")
	// A pure-ASCII miss: only the skeleton backend even considers it,
	// and its whole-label probe must stay allocation-free too.
	asciiFqdn := []byte("plain-ascii-miss.example.com")
	// Warm the scratch pool outside the measured region.
	det.DetectLabelBytes(label)
	det.DetectDomainBytes(fqdn)
	det.DetectLabelBytesBackend(label, BackendBoth)
	det.DetectDomainBytesBackend(asciiFqdn, BackendBoth)

	lint.CheckNoallocCoverage(t, ".", map[string]func(){
		"(*Detector).DetectLabelBytes": func() {
			if ms := det.DetectLabelBytes(label); len(ms) != 0 {
				panic("unexpected match")
			}
		},
		"(*Detector).DetectDomainBytes": func() {
			if ms := det.DetectDomainBytes(fqdn); len(ms) != 0 {
				panic("unexpected match")
			}
		},
		"(*Detector).DetectLabelBytesBackend": func() {
			if ms := det.DetectLabelBytesBackend(label, BackendBoth); len(ms) != 0 {
				panic("unexpected match")
			}
		},
		"(*Detector).DetectDomainBytesBackend": func() {
			if ms := det.DetectDomainBytesBackend(fqdn, BackendSkeleton); len(ms) != 0 {
				panic("unexpected match")
			}
			if ms := det.DetectDomainBytesBackend(asciiFqdn, BackendBoth); len(ms) != 0 {
				panic("unexpected match")
			}
		},
	})
}
