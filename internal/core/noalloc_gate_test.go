package core

import (
	"testing"

	"repro/internal/lint"
)

// TestNoallocGate pins the detector's //shamlint:noalloc contract
// dynamically: with a warm scratch pool, label- and domain-level byte
// detection must allocate nothing on the miss path — the shape of
// nearly every line a zone feeder pushes through.
func TestNoallocGate(t *testing.T) {
	det := NewDetector(testDB(t), []string{"google", "amazon"})
	label := []byte("xn--bcher-kva")
	fqdn := []byte("www.xn--bcher-kva.co.uk")
	// Warm the scratch pool outside the measured region.
	det.DetectLabelBytes(label)
	det.DetectDomainBytes(fqdn)

	lint.CheckNoallocCoverage(t, ".", map[string]func(){
		"(*Detector).DetectLabelBytes": func() {
			if ms := det.DetectLabelBytes(label); len(ms) != 0 {
				panic("unexpected match")
			}
		},
		"(*Detector).DetectDomainBytes": func() {
			if ms := det.DetectDomainBytes(fqdn); len(ms) != 0 {
				panic("unexpected match")
			}
		},
	})
}
