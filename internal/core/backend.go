package core

import "fmt"

// Backend selects which detection index answers a query. The two
// backends see different attack classes: the per-(length,position)
// posting lists (BackendPostings) prove exactly which characters were
// substituted but can only represent same-length, rune-for-rune
// substitutions; the TR39 skeleton index (BackendSkeleton) compares
// whole-label prototypes in one hash probe, catching many-to-one and
// length-changing confusions ("rn"→"m", "vv"→"w") the pairwise model
// provably cannot. BackendBoth unions the two, tagging each match with
// the backend(s) that found it.
type Backend uint8

const (
	// BackendPostings is the per-(length,position) posting-list index.
	BackendPostings Backend = 1 << iota
	// BackendSkeleton is the whole-label TR39 skeleton hash index.
	BackendSkeleton
	// BackendBoth runs both backends and unions their matches.
	BackendBoth = BackendPostings | BackendSkeleton
)

// String names the backend the way the CLI flag and wire field spell it.
func (b Backend) String() string {
	switch b {
	case BackendPostings:
		return "postings"
	case BackendSkeleton:
		return "skeleton"
	case BackendBoth:
		return "both"
	default:
		return "none"
	}
}

// ParseBackend parses the CLI/wire spelling. The empty string selects
// BackendPostings — the pre-existing behavior of every caller that does
// not ask for a backend.
func ParseBackend(s string) (Backend, error) {
	switch s {
	case "", "postings":
		return BackendPostings, nil
	case "skeleton":
		return BackendSkeleton, nil
	case "both":
		return BackendBoth, nil
	default:
		return 0, fmt.Errorf(`core: unknown backend %q (want "postings", "skeleton", or "both")`, s)
	}
}
