package core

import (
	"reflect"
	"testing"

	"repro/internal/punycode"
)

// TestDetectDomainMultiTLD: the bugfix workload — homographs registered
// under .net, a multi-label suffix, and an ACE/IDN TLD must all be
// found, with the match carrying the FQDN and its actual suffix.
func TestDetectDomainMultiTLD(t *testing.T) {
	db := testDB(t)
	d := NewDetector(db, []string{"google", "amazon"})
	g := ace(t, "gооgle") // Cyrillic о ×2
	a := ace(t, "amаzon") // Cyrillic а

	cases := []struct {
		fqdn, ref, tld, imitated string
	}{
		{g + ".com", "google", "com", "google.com"},
		{g + ".net", "google", "net", "google.net"},
		{g + ".xn--p1ai", "google", "xn--p1ai", "google.xn--p1ai"},
		{a + ".co.uk", "amazon", "co.uk", "amazon.co.uk"},
		{"www." + g + ".com", "google", "com", "google.com"},
		{g, "google", "", "google"}, // bare label still works
	}
	for _, c := range cases {
		ms := d.DetectDomain(c.fqdn)
		if len(ms) != 1 {
			t.Errorf("DetectDomain(%q) = %v, want 1 match", c.fqdn, ms)
			continue
		}
		m := ms[0]
		if m.Reference != c.ref || m.FQDN != c.fqdn || m.TLD != c.tld || m.Imitated() != c.imitated {
			t.Errorf("DetectDomain(%q) = {ref %q fqdn %q tld %q imitated %q}, want {%q %q %q %q}",
				c.fqdn, m.Reference, m.FQDN, m.TLD, m.Imitated(), c.ref, c.fqdn, c.tld, c.imitated)
		}
		// The byte path must agree exactly.
		bs := d.DetectDomainBytes([]byte(c.fqdn))
		if !reflect.DeepEqual(ms, bs) {
			t.Errorf("DetectDomainBytes(%q) diverges: %+v vs %+v", c.fqdn, bs, ms)
		}
	}
}

// TestDetectDomainNonFinalIDNLabel: the IDN may sit in a subdomain
// label ("xn--ggle-55da.mail.example.net" shapes); every candidate label
// is scanned, and the context still reports the whole FQDN.
func TestDetectDomainNonFinalIDNLabel(t *testing.T) {
	db := testDB(t)
	d := NewDetector(db, []string{"google"})
	g := ace(t, "gооgle")
	fqdn := g + ".mail.example.net"
	ms := d.DetectDomain(fqdn)
	if len(ms) != 1 {
		t.Fatalf("DetectDomain(%q) = %v, want 1 match", fqdn, ms)
	}
	if ms[0].FQDN != fqdn || ms[0].TLD != "net" || ms[0].IDN != g {
		t.Fatalf("match context = %+v", ms[0])
	}
}

// TestDetectDomainMisses: pure-ASCII domains, empty labels, the bare
// root, and suffix-only names must produce nothing (and not panic).
func TestDetectDomainMisses(t *testing.T) {
	db := testDB(t)
	d := NewDetector(db, []string{"google", "com", "con"})
	for _, fqdn := range []string{
		"", ".", "google.com", "plain.net", "a..b", "co.uk",
		"xn--!!!.com", // malformed ACE label rejects cleanly
		"www.google.com.",
	} {
		if ms := d.DetectDomain(fqdn); len(ms) != 0 {
			t.Errorf("DetectDomain(%q) = %v, want none", fqdn, ms)
		}
	}
}

// TestDetectDomainSuffixNotScanned pins the scan boundary: labels
// inside the public suffix are the zone's own, not attacker-chosen, so
// an ACE "TLD" that happens to decode near a reference is not a match
// (and real ACE TLDs such as xn--p1ai cost no decode per line).
func TestDetectDomainSuffixNotScanned(t *testing.T) {
	db := testDB(t)
	d := NewDetector(db, []string{"google"})
	g := ace(t, "gооgle")
	if ms := d.DetectDomain("foo." + g); len(ms) != 0 {
		t.Fatalf("suffix-position label matched: %+v", ms)
	}
	// The same label in registrable position matches, of course.
	if ms := d.DetectDomain(g + ".foo"); len(ms) != 1 {
		t.Fatalf("registrable-position label missed: %+v", ms)
	}
}

// TestDetectDomainUnicodeForm: display-form (non-ACE) IDN domains are
// scanned too — the label carrying non-ASCII bytes is the candidate.
func TestDetectDomainUnicodeForm(t *testing.T) {
	db := testDB(t)
	d := NewDetector(db, []string{"google"})
	ms := d.DetectDomain("gооgle.co.uk") // Cyrillic о ×2, raw Unicode
	if len(ms) != 1 || ms[0].TLD != "co.uk" || ms[0].Imitated() != "google.co.uk" {
		t.Fatalf("unicode-form domain: %+v", ms)
	}
}

// TestDetectDomainTrailingRootDot: the zone-file spelling with the root
// dot matches identically, with the FQDN reported as given.
func TestDetectDomainTrailingRootDot(t *testing.T) {
	db := testDB(t)
	d := NewDetector(db, []string{"google"})
	g := ace(t, "gооgle")
	ms := d.DetectDomain(g + ".net.")
	if len(ms) != 1 || ms[0].TLD != "net" || ms[0].FQDN != g+".net." {
		t.Fatalf("trailing-dot domain: %+v", ms)
	}
}

// TestUppercaseNonASCIIReference: the pinned normalization contract —
// a reference given in uppercase (including non-ASCII uppercase) builds
// the identical detector as its lowercase spelling, and an ACE label
// whose encoder kept uppercase non-ASCII still matches, because both
// sides fold through punycode.Fold.
func TestUppercaseNonASCIIReference(t *testing.T) {
	db := testDB(t)
	upper := NewDetector(db, []string{"BÜCHER"})
	lower := NewDetector(db, []string{"bücher"})
	if !reflect.DeepEqual(upper.References(), lower.References()) {
		t.Fatalf("references diverge: %v vs %v", upper.References(), lower.References())
	}

	homograph := "büchér" // é for e, a SimChar twin
	aceLower := ace(t, homograph)
	um, lm := upper.DetectLabel(aceLower), lower.DetectLabel(aceLower)
	if !reflect.DeepEqual(um, lm) || len(um) != 1 || um[0].Reference != "bücher" {
		t.Fatalf("uppercase-ref detector diverges: %+v vs %+v", um, lm)
	}

	// Encode the homograph WITHOUT pre-folding, as a hostile registrant
	// could: the decode path must fold it back onto the reference.
	enc, err := punycode.Encode("BÜCHÉR")
	if err != nil {
		t.Fatal(err)
	}
	aceUpper := punycode.ACEPrefix + enc
	if ms := upper.DetectLabel(aceUpper); len(ms) != 1 || ms[0].Reference != "bücher" {
		t.Fatalf("uppercase-encoded label missed: %+v", ms)
	}
}

// TestACEReferenceIndexesDecoded: a reference given in ACE form
// ("xn--bcher-kva", as loadRefs now emits for IDN brands like
// xn--80ak6aa92e.xn--p1ai) must index on its decoded runes — the
// literal ASCII spelling could never match a homograph, silently
// no-op'ing IDN brand protection.
func TestACEReferenceIndexesDecoded(t *testing.T) {
	db := testDB(t)
	d := NewDetector(db, []string{ace(t, "bücher")}) // "xn--bcher-kva"
	if refs := d.References(); len(refs) != 1 || refs[0] != "bücher" {
		t.Fatalf("References() = %v, want [bücher]", refs)
	}
	homograph := ace(t, "büchér") // é for e, a SimChar twin
	ms := d.DetectDomain(homograph + ".xn--p1ai")
	if len(ms) != 1 || ms[0].Reference != "bücher" || ms[0].Imitated() != "bücher.xn--p1ai" {
		t.Fatalf("ACE-reference detection = %+v", ms)
	}
	// The decoded and ACE spellings of the same brand collapse to one
	// reference.
	both := NewDetector(db, []string{"bücher", ace(t, "bücher"), "BÜCHER"})
	if refs := both.References(); len(refs) != 1 {
		t.Fatalf("duplicate spellings not collapsed: %v", refs)
	}
}

// TestDetectDomainStreamParity: the pooled byte stream over full FQDNs
// equals the batch API match-for-match.
func TestDetectDomainStreamParity(t *testing.T) {
	db := testDB(t)
	det := NewDetector(db, indexRefs)
	g := ace(t, "gооgle")
	domains := []string{
		g + ".net", "www." + g + ".com", g + ".xn--p1ai",
		"plain.net", ace(t, "paypаl") + ".co.uk", g + ".net",
	}
	want := det.Detect(domains)
	if len(want) == 0 {
		t.Fatal("no matches in parity corpus")
	}
	in := make(chan *[]byte, 2)
	go func() {
		defer close(in)
		for _, d := range domains {
			b := []byte(d)
			in <- &b
		}
	}()
	var got []Match
	for m := range det.DetectStreamBytes(in, 3, nil) {
		got = append(got, m)
	}
	SortMatches(got)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("stream diverges from batch:\n%+v\nvs\n%+v", got, want)
	}
}
