package triage

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// WriteRecords streams records as JSONL (one record per line) — the
// survey output format and the checkpoint format; they are the same
// file.
func WriteRecords(w io.Writer, records []Record) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	enc.SetEscapeHTML(false)
	for _, rec := range records {
		if err := enc.Encode(rec); err != nil {
			return fmt.Errorf("triage: encoding record for %s: %w", rec.FQDN, err)
		}
	}
	return bw.Flush()
}

// A RecordWriter appends records to a JSONL stream one at a time,
// flushing each — the incremental checkpoint a long survey writes so
// an interrupted run loses at most the in-flight window.
type RecordWriter struct {
	bw  *bufio.Writer
	enc *json.Encoder
}

// NewRecordWriter wraps w.
func NewRecordWriter(w io.Writer) *RecordWriter {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	enc.SetEscapeHTML(false)
	return &RecordWriter{bw: bw, enc: enc}
}

// Write appends one record and flushes, so the line is durable the
// moment Write returns.
func (rw *RecordWriter) Write(rec Record) error {
	if err := rw.enc.Encode(rec); err != nil {
		return fmt.Errorf("triage: encoding record for %s: %w", rec.FQDN, err)
	}
	return rw.bw.Flush()
}

// ReadRecords parses a JSONL record stream. A trailing partial line —
// the shape an interrupted writer leaves — is ignored rather than
// fatal, because the resume path must accept exactly the files crashes
// produce; a malformed line followed by further complete lines is
// reported as corruption.
func ReadRecords(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	var records []Record
	var pendingErr error
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		if pendingErr != nil {
			return nil, pendingErr
		}
		var rec Record
		if err := json.Unmarshal(raw, &rec); err != nil {
			// Tolerate only as the final line.
			pendingErr = fmt.Errorf("triage: checkpoint line %d: %w", line, err)
			continue
		}
		records = append(records, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("triage: reading checkpoint: %w", err)
	}
	return records, nil
}

// LoadCheckpoint reads a previous run's JSONL output into a resume
// map, keyed by FQDN. A missing file is an empty (not failed) resume —
// the caller can pass the output path unconditionally. Later duplicate
// lines win, matching "the newest probe of a domain is the one to
// trust".
func LoadCheckpoint(path string) (map[string]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return map[string]Record{}, nil
		}
		return nil, fmt.Errorf("triage: opening checkpoint: %w", err)
	}
	defer f.Close()
	records, err := ReadRecords(f)
	if err != nil {
		return nil, err
	}
	m := make(map[string]Record, len(records))
	for _, rec := range records {
		m[rec.FQDN] = rec
	}
	return m, nil
}
