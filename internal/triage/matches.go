package triage

import (
	"strings"

	"repro/internal/core"
	"repro/internal/homoglyph"
	"repro/internal/punycode"
)

// NormalizeFQDN reduces a caller-supplied domain to the pipeline's
// canonical input form: the lowercased ACE FQDN, trailing root dot
// dropped — the same shape detection emits and the blacklist feeds
// normalize to, so a Unicode-form candidate ("gооgle.com") probes as
// its xn-- form, never as a raw non-ASCII DNS name. Inputs that fail
// IDNA conversion fall back to the unified case fold.
func NormalizeFQDN(domain string) string {
	d := strings.TrimSuffix(strings.TrimSpace(domain), ".")
	if d == "" {
		return ""
	}
	if ace, err := punycode.ToASCII(d); err == nil {
		return ace
	}
	return punycode.FoldString(d)
}

// SourceOf derives a match's detecting-database attribution for the
// Table 14 split: the homograph is detectable by a database only if
// every substituted character is vouched for by that database, so the
// attribution is the intersection of the per-diff source masks. A
// skeleton-only match carries no per-character diffs — whole-label
// prototype equality has no per-position substitution to attribute —
// so it is credited to the TR39 skeleton mapping itself.
func SourceOf(m core.Match) string {
	if m.Backend == core.BackendSkeleton && len(m.Diffs) == 0 {
		return "TR39"
	}
	mask := homoglyph.SourceUC | homoglyph.SourceSimChar
	for _, d := range m.Diffs {
		mask &= d.Source
	}
	if mask == homoglyph.SourceNone {
		// Mixed provenance (one diff only UC, another only SimChar):
		// only the union database detects it.
		return (homoglyph.SourceUC | homoglyph.SourceSimChar).String()
	}
	return mask.String()
}

// InputsFromMatches reduces detection output to pipeline inputs: one
// Input per distinct FQDN, in first-seen order, carrying the imitated
// domain and the database attribution. A domain matching several
// references keeps the first match's attribution — the probe outcome
// is per-domain either way.
func InputsFromMatches(matches []core.Match) []Input {
	inputs := make([]Input, 0, len(matches))
	seen := make(map[string]bool, len(matches))
	for _, m := range matches {
		fqdn := m.FQDN
		if fqdn == "" {
			fqdn = m.IDN
		}
		if seen[fqdn] {
			continue
		}
		seen[fqdn] = true
		inputs = append(inputs, Input{
			FQDN:      fqdn,
			Reference: m.Imitated(),
			Source:    SourceOf(m),
		})
	}
	return inputs
}
