package triage

import (
	"context"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/blacklist"
	"repro/internal/core"
	"repro/internal/dnsclient"
	"repro/internal/homoglyph"
)

// --- ordered stage ---

func TestOrderedStagePreservesOrderAcrossWorkerCounts(t *testing.T) {
	const n = 300
	for _, workers := range []int{1, 4, 32} {
		in := make(chan Record)
		go func() {
			defer close(in)
			for i := 0; i < n; i++ {
				in <- Record{FQDN: fmt.Sprintf("d%03d.com", i)}
			}
		}()
		// Adversarial timing: early items are the slowest, so an
		// order-agnostic pool would emit late items first.
		fn := func(_ context.Context, rec Record) Record {
			var i int
			fmt.Sscanf(rec.FQDN, "d%03d.com", &i)
			time.Sleep(time.Duration((n-i)%17) * 100 * time.Microsecond)
			rec.Category = "seen"
			return rec
		}
		out := orderedStage(context.Background(), in, workers, fn)
		i := 0
		for rec := range out {
			if want := fmt.Sprintf("d%03d.com", i); rec.FQDN != want {
				t.Fatalf("workers=%d: position %d = %s, want %s", workers, i, rec.FQDN, want)
			}
			if rec.Category != "seen" {
				t.Fatalf("workers=%d: %s skipped the stage fn", workers, rec.FQDN)
			}
			i++
		}
		if i != n {
			t.Fatalf("workers=%d: got %d records, want %d", workers, i, n)
		}
	}
}

func TestOrderedStageBoundsConcurrency(t *testing.T) {
	const workers = 4
	var inFlight, peak atomic.Int64
	fn := func(_ context.Context, rec Record) Record {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
		inFlight.Add(-1)
		return rec
	}
	in := make(chan Record)
	go func() {
		defer close(in)
		for i := 0; i < 64; i++ {
			in <- Record{FQDN: fmt.Sprint(i)}
		}
	}()
	for range orderedStage(context.Background(), in, workers, fn) {
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("peak concurrency %d exceeds worker bound %d", p, workers)
	}
}

// --- pipeline plumbing (no live backends) ---

// blackholeUDP binds a UDP socket that reads queries and never
// answers — the dropped-datagram resolver the timeout tests probe.
func blackholeUDP(t *testing.T) string {
	t.Helper()
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	go func() {
		buf := make([]byte, 64*1024)
		for {
			if _, _, err := conn.ReadFrom(buf); err != nil {
				return
			}
		}
	}()
	return conn.LocalAddr().String()
}

func TestPipelineBlacklistStageOrdered(t *testing.T) {
	feeds := &blacklist.Set{
		HpHosts:  blacklist.NewFeed("hpHosts"),
		GSB:      blacklist.NewFeed("GSB"),
		Symantec: blacklist.NewFeed("Symantec"),
	}
	feeds.HpHosts.Add("xn--bad-1.com")
	feeds.GSB.Add("xn--bad-1.com")
	feeds.Symantec.Add("xn--bad-3.com")
	p, err := New(Config{SkipDNS: true, SkipWeb: true, Blacklists: feeds})
	if err != nil {
		t.Fatal(err)
	}
	inputs := []Input{
		{FQDN: "xn--bad-1.com", Source: "UC"},
		{FQDN: "xn--ok-1.com"},
		{FQDN: "xn--bad-3.com", Source: "SimChar"},
	}
	records, err := p.Run(context.Background(), inputs)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 3 {
		t.Fatalf("got %d records", len(records))
	}
	if !reflect.DeepEqual(records[0].Blacklists, []string{"hpHosts", "GSB"}) {
		t.Errorf("record 0 blacklists = %v", records[0].Blacklists)
	}
	if records[1].Blacklists != nil {
		t.Errorf("record 1 blacklists = %v", records[1].Blacklists)
	}
	if !reflect.DeepEqual(records[2].Blacklists, []string{"Symantec"}) {
		t.Errorf("record 2 blacklists = %v", records[2].Blacklists)
	}
	if got := p.Progress(); got.Done != 3 || got.Submitted != 3 {
		t.Errorf("progress = %+v", got)
	}
}

func TestResumeSkipsProbingEntirely(t *testing.T) {
	// The DNS client points at a black hole with a visible timeout; a
	// fully resumed run must never touch it, so the pipeline finishes
	// in microseconds, preserving the checkpointed outcomes.
	dead := dnsclient.New(blackholeUDP(t))
	dead.Timeout = 500 * time.Millisecond
	resume := map[string]Record{
		"xn--a.com": {FQDN: "xn--a.com", HasNS: true, HasA: true, Category: "Normal", Blacklists: []string{"GSB"}},
		"xn--b.com": {FQDN: "xn--b.com", HasNS: false},
	}
	p, err := New(Config{DNS: dead, SkipWeb: true, Resume: resume, StageTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	records, err := p.Run(context.Background(), []Input{
		{FQDN: "xn--a.com", Reference: "aaa.com"},
		{FQDN: "xn--b.com"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 300*time.Millisecond {
		t.Fatalf("resumed run took %v — it probed", elapsed)
	}
	if !records[0].Resumed || !records[0].HasA || records[0].Category != "Normal" {
		t.Errorf("record 0 = %+v", records[0])
	}
	if records[0].Reference != "aaa.com" {
		t.Errorf("identity fields must follow the input: %+v", records[0])
	}
	if !reflect.DeepEqual(records[0].Blacklists, []string{"GSB"}) {
		t.Errorf("resumed blacklists must be preserved: %v", records[0].Blacklists)
	}
	if got := p.Progress(); got.Resumed != 2 || got.Probed != 0 {
		t.Errorf("progress = %+v", got)
	}
}

func TestStageTimeoutUnsticksThePipeline(t *testing.T) {
	baseline := runtime.NumGoroutine()
	// Client-level timeout far beyond the stage timeout: the stage
	// must cut the probe loose and record the overrun.
	dead := dnsclient.New(blackholeUDP(t))
	dead.Timeout = 600 * time.Millisecond
	dead.Retries = 0
	p, err := New(Config{DNS: dead, SkipWeb: true, Retries: -1, StageTimeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	records, err := p.Run(context.Background(), []Input{{FQDN: "xn--hang.com"}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(records[0].DNSError, "stage timeout") {
		t.Fatalf("DNSError = %q, want stage-timeout marker", records[0].DNSError)
	}
	dead.Close() // tear down the pooled sockets before counting goroutines
	waitForGoroutineSettle(t, baseline)
}

func TestCancellationDrainsWithoutLeaks(t *testing.T) {
	baseline := runtime.NumGoroutine()
	dead := dnsclient.New(blackholeUDP(t))
	dead.Timeout = 100 * time.Millisecond
	dead.Retries = 0
	p, err := New(Config{DNS: dead, SkipWeb: true, Retries: -1, DNSWorkers: 8, StageTimeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	in := make(chan Input)
	go func() {
		defer close(in)
		for i := 0; ; i++ {
			select {
			case in <- Input{FQDN: fmt.Sprintf("xn--x%d.com", i)}:
			case <-ctx.Done():
				return
			}
		}
	}()
	out := p.Stream(ctx, in)
	got := 0
	for rec := range out {
		// Every emitted record must be a completed probe (here: a real
		// client timeout). Cancellation-cut records are dropped, never
		// surfaced looking like clean NXDOMAINs — a checkpoint written
		// from this stream stays trustworthy for -resume.
		if rec.DNSError == "" || strings.Contains(rec.DNSError, "context canceled") {
			t.Fatalf("contaminated record emitted after cancel: %+v", rec)
		}
		got++
		if got == 5 {
			cancel()
		}
	}
	if got < 5 {
		t.Fatalf("only %d records before close", got)
	}
	cancel()
	dead.Close() // tear down the pooled sockets before counting goroutines
	waitForGoroutineSettle(t, baseline)
}

// waitForGoroutineSettle polls until the goroutine count returns to
// (near) the given pre-test baseline, failing if stragglers persist —
// the drained-pool assertion the concurrency tests share. Two of
// slack absorbs runtime/testing housekeeping goroutines.
func waitForGoroutineSettle(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("goroutines did not settle: %d running, baseline %d", runtime.NumGoroutine(), baseline)
}

func TestRateLimiterSpacesProbes(t *testing.T) {
	l := newLimiter(200) // 5ms apart
	start := time.Now()
	for i := 0; i < 8; i++ {
		if err := l.wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	if elapsed := time.Since(start); elapsed < 7*5*time.Millisecond-time.Millisecond {
		t.Fatalf("8 waits at 200/s took %v, want ≥ ~35ms", elapsed)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := l.wait(ctx); err == nil {
		t.Fatal("cancelled wait must return the context error")
	}
}

// --- checkpoint codec ---

func TestCheckpointRoundTrip(t *testing.T) {
	records := []Record{
		{FQDN: "xn--a.com", Reference: "a.com", Source: "UC", HasNS: true, HasA: true,
			NSHosts: []string{"ns1.xn--a.com"}, Category: "Normal", StatusHTTP: 200},
		{FQDN: "xn--b.com", DNSError: "timeout"},
		{FQDN: "xn--c.com", HasNS: true, Blacklists: []string{"hpHosts"}},
	}
	var sb strings.Builder
	if err := WriteRecords(&sb, records); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRecords(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, records) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, records)
	}
}

func TestReadRecordsToleratesTruncatedTail(t *testing.T) {
	full := `{"fqdn":"xn--a.com","has_ns":true,"has_a":false,"has_mx":false}` + "\n" +
		`{"fqdn":"xn--b.com","has_ns":false,"has_a":false,"has_mx":false}` + "\n"
	got, err := ReadRecords(strings.NewReader(full + `{"fqdn":"xn--c`))
	if err != nil {
		t.Fatalf("truncated tail must be tolerated: %v", err)
	}
	if len(got) != 2 || got[1].FQDN != "xn--b.com" {
		t.Fatalf("records = %+v", got)
	}
	// Corruption in the middle is NOT tolerated.
	if _, err := ReadRecords(strings.NewReader(`{"fqdn":"xn--c` + "\n" + full)); err == nil {
		t.Fatal("mid-stream corruption must fail")
	}
}

func TestLoadCheckpointMissingFileAndDuplicates(t *testing.T) {
	m, err := LoadCheckpoint(filepath.Join(t.TempDir(), "nope.jsonl"))
	if err != nil || len(m) != 0 {
		t.Fatalf("missing file: m=%v err=%v", m, err)
	}
	path := filepath.Join(t.TempDir(), "ck.jsonl")
	data := `{"fqdn":"xn--a.com","has_ns":false,"has_a":false,"has_mx":false}` + "\n" +
		`{"fqdn":"xn--a.com","has_ns":true,"has_a":true,"has_mx":false}` + "\n"
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err = LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if rec := m["xn--a.com"]; !rec.HasNS || !rec.HasA {
		t.Fatalf("later duplicate must win: %+v", rec)
	}
}

func TestRecordWriterFlushesPerRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	rw := NewRecordWriter(f)
	if err := rw.Write(Record{FQDN: "xn--a.com"}); err != nil {
		t.Fatal(err)
	}
	// Durable before Close: a crashed survey keeps the line.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	if !strings.Contains(string(data), `"fqdn":"xn--a.com"`) {
		t.Fatalf("record not flushed: %q", data)
	}
}

// --- tally ---

func TestTallyAggregates(t *testing.T) {
	tl := NewTally()
	tl.Add(Record{FQDN: "a", HasNS: true, HasA: true, HasMX: true, Category: "Normal", Source: "UC"})
	tl.Add(Record{FQDN: "b", HasNS: true, Category: "Redirect", RedirectClass: "Brand protection",
		Blacklists: []string{"hpHosts"}, Source: "UC"})
	tl.Add(Record{FQDN: "c", DNSError: "timeout"})
	tl.Add(Record{FQDN: "d", HasNS: true, HasA: true, Blacklists: []string{"hpHosts", "GSB"}, Source: "UC∪SimChar", Resumed: true})
	if tl.Total != 4 || tl.WithNS != 3 || tl.WithA != 2 || tl.WithMX != 1 || tl.DNSErrors != 1 || tl.Resumed != 1 {
		t.Fatalf("tally = %+v", tl)
	}
	if tl.ByCategory["Redirect"] != 1 || tl.ByRedirect["Brand protection"] != 1 {
		t.Fatalf("category maps = %+v", tl)
	}
	if tl.Blacklisted != 2 || tl.ByFeed["hpHosts"] != 2 || tl.ByFeed["GSB"] != 1 {
		t.Fatalf("feed counts = %+v", tl.ByFeed)
	}
	tbl := tl.TableFourteen()
	// hpHosts: one UC-only + one union homograph → UC 2, SimChar 1, union 2.
	var hp []string
	for _, row := range tbl.Rows {
		if row[0] == "hpHosts" {
			hp = row
		}
	}
	if hp == nil || hp[1] != "2" || hp[2] != "1" || hp[3] != "2" {
		t.Fatalf("Table 14 hpHosts row = %v", hp)
	}
	if got := len(tl.Tables()); got != 4 {
		t.Fatalf("Tables() = %d tables, want 4", got)
	}
}

// --- match conversion ---

func TestSourceOfIntersectsDiffMasks(t *testing.T) {
	mk := func(sources ...homoglyph.Source) core.Match {
		m := core.Match{IDN: "xn--x.com", FQDN: "xn--x.com"}
		for i, s := range sources {
			m.Diffs = append(m.Diffs, core.CharDiff{Pos: i, Source: s})
		}
		return m
	}
	both := homoglyph.SourceUC | homoglyph.SourceSimChar
	cases := []struct {
		m    core.Match
		want string
	}{
		{mk(homoglyph.SourceUC), "UC"},
		{mk(homoglyph.SourceSimChar, homoglyph.SourceSimChar), "SimChar"},
		{mk(both, homoglyph.SourceUC), "UC"},
		{mk(both, both), both.String()},
		{mk(homoglyph.SourceUC, homoglyph.SourceSimChar), both.String()}, // mixed: only the union detects it
	}
	for i, c := range cases {
		if got := SourceOf(c.m); got != c.want {
			t.Errorf("case %d: SourceOf = %q, want %q", i, got, c.want)
		}
	}
}

func TestInputsFromMatchesDedupes(t *testing.T) {
	matches := []core.Match{
		{FQDN: "xn--a.com", Reference: "aaa", TLD: "com", Diffs: []core.CharDiff{{Source: homoglyph.SourceUC}}},
		{FQDN: "xn--b.net", Reference: "bbb", TLD: "net", Diffs: []core.CharDiff{{Source: homoglyph.SourceSimChar}}},
		{FQDN: "xn--a.com", Reference: "zzz", TLD: "com", Diffs: []core.CharDiff{{Source: homoglyph.SourceSimChar}}},
	}
	inputs := InputsFromMatches(matches)
	if len(inputs) != 2 {
		t.Fatalf("inputs = %+v", inputs)
	}
	if inputs[0].FQDN != "xn--a.com" || inputs[0].Reference != "aaa.com" || inputs[0].Source != "UC" {
		t.Errorf("input 0 = %+v", inputs[0])
	}
	if inputs[1].FQDN != "xn--b.net" || inputs[1].Reference != "bbb.net" || inputs[1].Source != "SimChar" {
		t.Errorf("input 1 = %+v", inputs[1])
	}
}

func TestNormalizeFQDN(t *testing.T) {
	cases := map[string]string{
		"gооgle.com":         "xn--ggle-55da.com", // Cyrillic о ×2
		"XN--GGLE-55DA.COM.": "xn--ggle-55da.com",
		"  Plain.COM. ":      "plain.com",
		"":                   "",
		".":                  "",
		"PАYPAL.com":         "xn--pypal-4ve.com", // Cyrillic А folds into the encoding
	}
	for in, want := range cases {
		if got := NormalizeFQDN(in); got != want {
			t.Errorf("NormalizeFQDN(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestStageTimeoutDoesNotRetry(t *testing.T) {
	// Retries=2 configured, but a stage-timeout overrun must consume
	// the domain immediately: one stage timeout, not three.
	dead := dnsclient.New(blackholeUDP(t))
	dead.Timeout = 5 * time.Second
	dead.Retries = 0
	p, err := New(Config{DNS: dead, SkipWeb: true, Retries: 2, StageTimeout: 150 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	records, err := p.Run(context.Background(), []Input{{FQDN: "xn--hang.com"}})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 400*time.Millisecond {
		t.Fatalf("stage timeout was retried: run took %v", elapsed)
	}
	if !strings.Contains(records[0].DNSError, "stage timeout") {
		t.Fatalf("DNSError = %q", records[0].DNSError)
	}
}
