//go:build race

package triage

// raceEnabled scales the fault-injection harness down under the race
// detector (whose instrumentation slows the network stages ~10×) while
// keeping every fault mode covered — the same pattern the root
// package's race_enabled_test.go uses for allocation-count tests.
const raceEnabled = true
