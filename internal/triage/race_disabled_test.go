//go:build !race

package triage

const raceEnabled = false
