package triage

import (
	"context"
	"fmt"
	"net/netip"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/blacklist"
	"repro/internal/dnsclient"
	"repro/internal/dnsserver"
	"repro/internal/dnswire"
	"repro/internal/webclassify"
	"repro/internal/websim"
)

// The fault-injection harness: an in-process authoritative DNS server
// and web simulator hosting a handcrafted population in which every
// domain exhibits one pathology a zone-scale survey meets in the wild
// — dropped datagrams, truncation forcing TCP fallback, SERVFAIL,
// parked delegations, hanging and 5xx web hosts — plus healthy
// controls. The full pipeline runs against it and every record-level
// outcome and tally is asserted, twice (workers 1 vs N) to prove the
// output is deterministic and order-preserving under any concurrency.

type faultEnv struct {
	dns      *dnsserver.Server
	web      *websim.Server
	client   *dnsclient.Client
	faults   map[string]dnsserver.Fault
	mu       sync.Mutex
	tcpSeen  map[string]bool
	udpDrops map[string]int
}

func startFaultEnv(t *testing.T) *faultEnv {
	t.Helper()
	env := &faultEnv{
		faults:   make(map[string]dnsserver.Fault),
		tcpSeen:  make(map[string]bool),
		udpDrops: make(map[string]int),
	}

	store := dnsserver.NewStore()
	store.AddApex("com.")
	store.Add(dnswire.Record{Name: "com.", Class: dnswire.ClassIN, TTL: 900, Data: dnswire.SOA{
		MName: "a.gtld-servers.net.", RName: "nstld.example.",
		Serial: 1, Refresh: 1800, Retry: 900, Expire: 604800, Minimum: 86400,
	}})
	addDomain := func(name string, hasA, hasMX bool, nsHost string) {
		owner := name + "."
		if nsHost == "" {
			nsHost = "ns1." + owner
		}
		store.Add(dnswire.Record{Name: owner, Class: dnswire.ClassIN, TTL: 300, Data: dnswire.NS{Host: nsHost}})
		if hasA {
			store.Add(dnswire.Record{Name: owner, Class: dnswire.ClassIN, TTL: 300,
				Data: dnswire.A{Addr: netip.MustParseAddr("127.0.0.1")}})
		}
		if hasMX {
			store.Add(dnswire.Record{Name: owner, Class: dnswire.ClassIN, TTL: 300,
				Data: dnswire.MX{Preference: 10, Host: "mail." + owner}})
		}
	}

	// Healthy hosted domains, one per web behaviour.
	addDomain("xn--normal.com", true, true, "")
	addDomain("xn--forsale.com", true, false, "")
	addDomain("xn--redirect-brand.com", true, false, "")
	addDomain("xn--redirect-evil.com", true, false, "")
	addDomain("xn--empty.com", true, false, "")
	addDomain("xn--http500.com", true, false, "")
	addDomain("xn--hang.com", true, false, "")
	addDomain("xn--listed.com", true, false, "")
	// Parked by delegation: classified without a fetch.
	addDomain("xn--parked-ns.com", true, false, "ns1.parkingcrew.example.")
	// Registered but unhosted: NS only, never fetched (§6.2 gate).
	addDomain("xn--ns-only.com", false, false, "")
	// Truncation victim: records exist, UDP answers force TCP retry.
	addDomain("xn--truncated.com", true, false, "")
	// xn--vanished.com: not in the zone at all → NXDOMAIN.
	// xn--dropped.com / xn--lame.com: in the zone but faulted below.
	addDomain("xn--dropped.com", true, false, "")
	addDomain("xn--lame.com", true, false, "")

	env.faults["xn--dropped.com."] = dnsserver.FaultDrop
	env.faults["xn--truncated.com."] = dnsserver.FaultTruncate
	env.faults["xn--lame.com."] = dnsserver.FaultServFail

	dns := dnsserver.NewServer(store)
	dns.OnFault = func(q dnswire.Question, udp bool) dnsserver.Fault {
		env.mu.Lock()
		if !udp {
			env.tcpSeen[q.Name] = true
		}
		f := env.faults[q.Name]
		if f == dnsserver.FaultDrop && udp {
			env.udpDrops[q.Name]++
		}
		env.mu.Unlock()
		return f
	}
	if err := dns.ListenAndServe("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if err := dns.EnableDoT("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if err := dns.EnableDoH("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dns.Close() })

	web := websim.NewServer()
	if err := web.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { web.Close() })
	web.SetSite("xn--normal.com", websim.Site{Kind: "normal", Title: "normal"})
	web.SetSite("xn--forsale.com", websim.Site{Kind: "forsale"})
	web.SetSite("xn--redirect-brand.com", websim.Site{Kind: "redirect", RedirectTarget: "google.com"})
	web.SetSite("xn--redirect-evil.com", websim.Site{Kind: "redirect", RedirectTarget: "evil.badexample"})
	web.SetSite("xn--empty.com", websim.Site{Kind: "empty"})
	web.SetSite("xn--http500.com", websim.Site{Kind: "http500"})
	web.SetSite("xn--hang.com", websim.Site{Kind: "slow"}) // holds the connection open ~forever
	web.SetSite("xn--listed.com", websim.Site{Kind: "normal", Title: "listed"})
	web.SetSite("xn--truncated.com", websim.Site{Kind: "normal", Title: "truncated"})
	// xn--parked-ns.com deliberately has NO site: the NS first pass
	// must classify it before any fetch happens.

	env.dns = dns
	env.web = web
	env.client = env.clientFor(t, dnsclient.TransportUDP)
	return env
}

// clientFor builds a probing client for one transport against the
// fault server, with the harness's tight timeout/retry budget.
func (env *faultEnv) clientFor(t *testing.T, tr dnsclient.Transport) *dnsclient.Client {
	t.Helper()
	addr := env.dns.Addr()
	switch tr {
	case dnsclient.TransportDoT:
		addr = env.dns.DoTAddr()
	case dnsclient.TransportDoH:
		addr = env.dns.DoHAddr()
	}
	c := dnsclient.New(addr)
	c.Transport = tr
	c.Timeout = 250 * time.Millisecond
	c.Retries = 1
	t.Cleanup(func() { c.Close() })
	return c
}

func (env *faultEnv) pipeline(t *testing.T, workers int) *Pipeline {
	t.Helper()
	feeds := &blacklist.Set{
		HpHosts:  blacklist.NewFeed("hpHosts"),
		GSB:      blacklist.NewFeed("GSB"),
		Symantec: blacklist.NewFeed("Symantec"),
	}
	feeds.HpHosts.Add("xn--listed.com")
	feeds.GSB.Add("xn--listed.com")
	feeds.HpHosts.Add("evil.badexample")
	classifier := &webclassify.Classifier{
		Resolve: func(domain string, port int) string {
			if port == 443 {
				return env.web.HTTPSAddr()
			}
			return env.web.HTTPAddr()
		},
		Timeout:   300 * time.Millisecond,
		UserAgent: "FaultHarness/1.0",
		Reverter: func(domain string) (string, bool) {
			if domain == "xn--redirect-brand.com" {
				return "google.com", true
			}
			return "", false
		},
		IsMalicious: feeds.AnyContains,
	}
	p, err := New(Config{
		DNS:          env.client,
		Classifier:   classifier,
		Blacklists:   feeds,
		DNSWorkers:   workers,
		WebWorkers:   workers,
		Retries:      -1, // the client's own retry covers the UDP drop path
		StageTimeout: 2 * time.Second,
		ParkingNS:    []string{"parkingcrew.example"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func faultInputs() []Input {
	names := []string{
		"xn--normal.com", "xn--forsale.com", "xn--redirect-brand.com",
		"xn--redirect-evil.com", "xn--empty.com", "xn--http500.com",
		"xn--hang.com", "xn--listed.com", "xn--parked-ns.com",
		"xn--ns-only.com", "xn--truncated.com", "xn--vanished.com",
		"xn--dropped.com", "xn--lame.com",
	}
	inputs := make([]Input, len(names))
	for i, n := range names {
		inputs[i] = Input{FQDN: n, Reference: "ref.com", Source: "UC"}
	}
	return inputs
}

// TestFaultInjectionEndToEnd runs the full 14-pathology population
// over every probing transport: the same faults are injected by the
// shared handle() path, so every record-level outcome and tally must
// be transport-independent (the one exception being the TC bit, which
// only exists on UDP and is proven separately below).
func TestFaultInjectionEndToEnd(t *testing.T) {
	for _, tr := range dnsclient.Transports() {
		t.Run(string(tr), func(t *testing.T) { testFaultInjectionEndToEnd(t, tr) })
	}
}

func testFaultInjectionEndToEnd(t *testing.T, tr dnsclient.Transport) {
	env := startFaultEnv(t)
	env.client = env.clientFor(t, tr)
	workers := 8
	if raceEnabled {
		workers = 4
	}
	p := env.pipeline(t, workers)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	records, err := p.Run(ctx, faultInputs())
	if err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]Record, len(records))
	for _, rec := range records {
		byName[rec.FQDN] = rec
	}

	check := func(name string, want func(Record) string) {
		t.Helper()
		rec, ok := byName[name]
		if !ok {
			t.Errorf("%s: no record", name)
			return
		}
		if msg := want(rec); msg != "" {
			t.Errorf("%s: %s (record %+v)", name, msg, rec)
		}
	}

	check("xn--normal.com", func(r Record) string {
		if !r.HasNS || !r.HasA || !r.HasMX || r.Category != string(webclassify.CatNormal) {
			return "want healthy NS+A+MX Normal"
		}
		return ""
	})
	check("xn--forsale.com", func(r Record) string {
		if r.Category != string(webclassify.CatForSale) {
			return "want For sale"
		}
		return ""
	})
	check("xn--redirect-brand.com", func(r Record) string {
		if r.Category != string(webclassify.CatRedirect) || r.RedirectClass != string(webclassify.RedirBrand) ||
			r.RedirectTarget != "google.com" {
			return "want brand-protection redirect"
		}
		return ""
	})
	check("xn--redirect-evil.com", func(r Record) string {
		if r.Category != string(webclassify.CatRedirect) || r.RedirectClass != string(webclassify.RedirMalicious) {
			return "want malicious redirect"
		}
		return ""
	})
	check("xn--empty.com", func(r Record) string {
		if r.Category != string(webclassify.CatEmpty) {
			return "want Empty"
		}
		return ""
	})
	check("xn--http500.com", func(r Record) string {
		if r.Category != string(webclassify.CatError) || r.StatusHTTP != 500 {
			return "want Error with StatusHTTP 500"
		}
		return ""
	})
	check("xn--hang.com", func(r Record) string {
		if r.Category != string(webclassify.CatError) {
			return "want Error from the hanging host"
		}
		return ""
	})
	check("xn--listed.com", func(r Record) string {
		if !reflect.DeepEqual(r.Blacklists, []string{"hpHosts", "GSB"}) {
			return fmt.Sprintf("want hpHosts+GSB, got %v", r.Blacklists)
		}
		return ""
	})
	check("xn--parked-ns.com", func(r Record) string {
		if r.Category != string(webclassify.CatParked) {
			return "want Parked via NS delegation"
		}
		if r.StatusHTTP != 0 {
			return "parked-by-NS must not be fetched"
		}
		return ""
	})
	check("xn--ns-only.com", func(r Record) string {
		if !r.HasNS || r.HasA || r.Category != "" {
			return "want NS-only, ungated from the web stage"
		}
		return ""
	})
	check("xn--truncated.com", func(r Record) string {
		if !r.HasNS || !r.HasA || r.Category != string(webclassify.CatNormal) {
			return "want full outcome via TCP fallback"
		}
		return ""
	})
	check("xn--vanished.com", func(r Record) string {
		if r.HasNS || r.DNSError != "" {
			return "NXDOMAIN is an answer, not an error"
		}
		return ""
	})
	check("xn--dropped.com", func(r Record) string {
		if r.DNSError == "" || !strings.Contains(r.DNSError, "timed out") {
			return "want timeout after dropped datagrams"
		}
		return ""
	})
	check("xn--lame.com", func(r Record) string {
		if r.DNSError == "" || !strings.Contains(r.DNSError, "SERVFAIL") {
			return "want SERVFAIL surfaced"
		}
		return ""
	})

	// Transport-level proof of the fault paths; only the datagram
	// transport has a TC bit to fall back from or datagrams to drop.
	if tr == dnsclient.TransportUDP {
		env.mu.Lock()
		if !env.tcpSeen["xn--truncated.com."] {
			t.Error("truncation did not force a TCP retry")
		}
		if env.udpDrops["xn--dropped.com."] < 2 {
			t.Errorf("dropped domain saw %d UDP queries, want ≥2 (client retry)", env.udpDrops["xn--dropped.com."])
		}
		env.mu.Unlock()
	}

	// Tally assertions: the Table 12/13/14 aggregates over this
	// population are fully determined by the ground truth above.
	tl := NewTally()
	for _, rec := range records {
		tl.Add(rec)
	}
	if tl.Total != 14 || tl.WithNS != 11 || tl.WithA != 10 || tl.WithMX != 1 || tl.DNSErrors != 2 {
		t.Errorf("funnel = %+v", tl)
	}
	wantCat := map[string]int{
		string(webclassify.CatNormal):   3, // normal, listed, truncated
		string(webclassify.CatForSale):  1,
		string(webclassify.CatRedirect): 2,
		string(webclassify.CatEmpty):    1,
		string(webclassify.CatError):    2, // http500, hang
		string(webclassify.CatParked):   1,
	}
	if !reflect.DeepEqual(tl.ByCategory, wantCat) {
		t.Errorf("ByCategory = %v, want %v", tl.ByCategory, wantCat)
	}
	wantRedir := map[string]int{
		string(webclassify.RedirBrand):     1,
		string(webclassify.RedirMalicious): 1,
	}
	if !reflect.DeepEqual(tl.ByRedirect, wantRedir) {
		t.Errorf("ByRedirect = %v, want %v", tl.ByRedirect, wantRedir)
	}
	if tl.ByFeed["hpHosts"] != 1 || tl.ByFeed["GSB"] != 1 || tl.Blacklisted != 1 {
		t.Errorf("feeds = %+v", tl.ByFeed)
	}
}

func TestFaultPipelineDeterministicAcrossWorkerCounts(t *testing.T) {
	env := startFaultEnv(t)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	counts := []int{1, 8}
	if raceEnabled {
		counts = []int{1, 4}
	}
	var baseline []Record
	for i, workers := range counts {
		records, err := env.pipeline(t, workers).Run(ctx, faultInputs())
		if err != nil {
			t.Fatal(err)
		}
		// Input order must be preserved exactly.
		for j, input := range faultInputs() {
			if records[j].FQDN != input.FQDN {
				t.Fatalf("workers=%d: position %d = %s, want %s", workers, j, records[j].FQDN, input.FQDN)
			}
		}
		if i == 0 {
			baseline = records
			continue
		}
		if !reflect.DeepEqual(records, baseline) {
			t.Errorf("workers=%d records differ from workers=%d baseline", workers, counts[0])
		}
	}
}

func TestFaultPipelineResumeRoundTrip(t *testing.T) {
	env := startFaultEnv(t)
	ctx := context.Background()
	full, err := env.pipeline(t, 4).Run(ctx, faultInputs())
	if err != nil {
		t.Fatal(err)
	}
	// Checkpoint the first half through the JSONL codec, then rerun
	// with the resume set: output must be byte-identical to the full
	// run (Resumed is runtime-only), and the resumed half must not be
	// re-probed.
	var sb strings.Builder
	if err := WriteRecords(&sb, full[:7]); err != nil {
		t.Fatal(err)
	}
	ckpt, err := ReadRecords(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	resume := make(map[string]Record, len(ckpt))
	for _, rec := range ckpt {
		resume[rec.FQDN] = rec
	}
	p := env.pipeline(t, 4)
	p.cfg.Resume = resume
	queriesBefore := env.dns.Queries()
	resumed, err := p.Run(ctx, faultInputs())
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Progress(); got.Resumed != 7 {
		t.Errorf("resumed = %d, want 7", got.Resumed)
	}
	var fullJSON, resumedJSON strings.Builder
	if err := WriteRecords(&fullJSON, full); err != nil {
		t.Fatal(err)
	}
	if err := WriteRecords(&resumedJSON, resumed); err != nil {
		t.Fatal(err)
	}
	if fullJSON.String() != resumedJSON.String() {
		t.Errorf("resumed output differs from full run:\n%s\nvs\n%s", resumedJSON.String(), fullJSON.String())
	}
	// The resumed half spans the first 7 inputs; none of them may
	// have been re-queried. The remaining 7 were: the exact count is
	// timing-dependent (retries), but the resumed names must not
	// appear. Approximate by bounding total queries: 7 live domains
	// cost at most 3 record types × (1+retries) × 2 transports.
	if delta := env.dns.Queries() - queriesBefore; delta > 7*3*2*2 {
		t.Errorf("resume run issued %d queries — resumed domains were re-probed", delta)
	}
}
