// Package triage is the measurement half of the framework as one
// streaming pipeline: detected homographs flow through bounded-
// concurrency DNS probing, conditional web classification and
// blacklist coverage, emitting one Record per domain — the paper's
// Sections 5–6 (resolve the 3,280 detected homographs, fetch and
// categorize the live ones per Tables 12–13, check the set against the
// Table 14 feeds) as a single backpressured chain instead of three
// disconnected batch helpers.
//
// Shape:
//
//	inputs ──► DNS stage ──► web stage ──► blacklist + tally ──► records
//	           (workers,     (workers;     (in-order collector)
//	            rate limit,   only HasA —
//	            retries)      §6.2 gate)
//
// Stages are connected by channels whose capacity equals the worker
// window, so a slow web fetch backpressures the DNS stage and the DNS
// stage backpressures the feeder — memory stays proportional to the
// worker counts, never to the input. Each stage preserves input order
// deterministically for any worker count: a dispatcher hands every
// item a one-shot result slot and queues the slots in arrival order; a
// collector awaits the slots in that same order. Per-stage timeouts
// bound a hung probe without stalling the window, retries absorb
// transient transport errors, and a token-bucket rate limit caps the
// aggregate DNS query rate across workers.
//
// Partial progress is checkpointable: records already present in a
// resume set (loaded from a previous run's JSONL output) ride the
// pipeline unprobed, so an interrupted zone-scale survey restarts in
// seconds and its final output is byte-identical to an uninterrupted
// run.
package triage

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/blacklist"
	"repro/internal/dnsclient"
	"repro/internal/resilience"
	"repro/internal/webclassify"
)

// Input is one detected homograph entering the pipeline.
type Input struct {
	// FQDN is the normalized ACE domain ("xn--ggle-55da.com").
	FQDN string
	// Reference is the domain it imitates ("google.com"); optional,
	// carried through for reporting.
	Reference string
	// Source names the homoglyph database(s) that detected it ("UC",
	// "SimChar", "UC∪SimChar"); optional, feeds the Table 14 split.
	Source string
}

// Record is the triage outcome for one domain — one JSONL line of a
// survey run. The Resumed flag is runtime-only (never serialized) so a
// resumed run's output is byte-identical to an uninterrupted one.
type Record struct {
	FQDN      string `json:"fqdn"`
	Reference string `json:"reference,omitempty"`
	Source    string `json:"source,omitempty"`

	// DNS stage (paper §6.1).
	HasNS    bool     `json:"has_ns"`
	HasA     bool     `json:"has_a"`
	HasMX    bool     `json:"has_mx"`
	NSHosts  []string `json:"ns_hosts,omitempty"`
	DNSError string   `json:"dns_error,omitempty"`

	// Web stage (paper §6.2, Tables 12–13). Empty when the stage was
	// skipped or gated off (no A record).
	Category       string `json:"category,omitempty"`
	RedirectTarget string `json:"redirect_target,omitempty"`
	RedirectClass  string `json:"redirect_class,omitempty"`
	StatusHTTP     int    `json:"status_http,omitempty"`
	StatusHTTPS    int    `json:"status_https,omitempty"`

	// Blacklist stage (paper Table 14): names of the feeds listing the
	// domain, in the set's column order.
	Blacklists []string `json:"blacklists,omitempty"`

	Resumed bool `json:"-"`

	// aborted marks a record whose probing was cut short by
	// cancellation rather than completed or timed out. Aborted records
	// are never emitted: a half-probed domain must not enter a
	// checkpoint looking like a clean NXDOMAIN, or a resumed run would
	// trust it forever.
	aborted bool
}

// Config parameterizes a Pipeline.
type Config struct {
	// DNS is the probing client; required unless SkipDNS.
	DNS *dnsclient.Client
	// Classifier fetches and classifies websites; required unless
	// SkipWeb. Its Workers field is ignored (the pipeline's stage pool
	// governs concurrency); its Timeout still bounds each fetch, with
	// StageTimeout as the per-domain ceiling above it.
	Classifier *webclassify.Classifier
	// Blacklists is the Table 14 feed set; nil skips the blacklist
	// stage.
	Blacklists *blacklist.Set

	// DNSWorkers bounds concurrent DNS probes. 0 means 16.
	DNSWorkers int
	// WebWorkers bounds concurrent web fetches. 0 means 16.
	WebWorkers int
	// RateLimit caps aggregate DNS probes per second across workers;
	// 0 means unlimited.
	RateLimit float64
	// Retries is how many extra attempts a failed DNS probe gets
	// (transport errors only; NXDOMAIN is an answer). Default 1; pass
	// a negative value for none. These stack multiplicatively on the
	// DNS client's own UDP retransmits (dnsclient.Client.Retries,
	// default 2) — construct the client with Retries: 0 when the
	// pipeline should own the whole retry policy, as the CLI and
	// serving layer do.
	Retries int
	// RetryBackoff spaces the pipeline-level DNS retries. A probe that
	// just failed usually failed because the resolver (or path) is
	// saturated; an immediate re-probe from every worker at once only
	// deepens the hole. The zero value keeps the historical
	// back-to-back behaviour.
	RetryBackoff resilience.Backoff
	// StageTimeout bounds one domain's stay in one stage; a probe or
	// fetch still running when it expires is recorded as an error and
	// the window moves on. 0 means 15 seconds.
	StageTimeout time.Duration

	// ParkingNS are name-server suffixes of known parking providers:
	// domains whose probed delegation matches are classified parked
	// without a fetch (the Vissers-style first pass).
	ParkingNS []string

	// Resume holds records from a previous run, keyed by FQDN; inputs
	// found here ride through unprobed.
	Resume map[string]Record

	// SkipDNS, SkipWeb and SkipBlacklist disable stages. With SkipDNS
	// the §6.2 gate is open: every domain is fetched.
	SkipDNS, SkipWeb, SkipBlacklist bool
}

// Progress is a point-in-time snapshot of a running pipeline's
// counters, safe to read concurrently with the run.
type Progress struct {
	Submitted int64 `json:"submitted"`
	Probed    int64 `json:"probed"`
	Fetched   int64 `json:"fetched"`
	Done      int64 `json:"done"`
	Resumed   int64 `json:"resumed"`
	DNSErrors int64 `json:"dns_errors"`
}

// Pipeline is a configured triage chain. One Pipeline may run once;
// construct a fresh one per survey.
type Pipeline struct {
	cfg     Config
	limiter *limiter

	submitted, probed, fetched, done, resumed, dnsErrors atomic.Int64
}

// New validates cfg and returns a runnable pipeline.
func New(cfg Config) (*Pipeline, error) {
	if !cfg.SkipDNS && cfg.DNS == nil {
		return nil, errors.New("triage: Config.DNS is required unless SkipDNS")
	}
	if !cfg.SkipWeb && cfg.Classifier == nil {
		return nil, errors.New("triage: Config.Classifier is required unless SkipWeb")
	}
	if cfg.DNSWorkers <= 0 {
		cfg.DNSWorkers = 16
	}
	if cfg.WebWorkers <= 0 {
		cfg.WebWorkers = 16
	}
	if cfg.Retries == 0 {
		cfg.Retries = 1
	} else if cfg.Retries < 0 {
		cfg.Retries = 0
	}
	if cfg.StageTimeout <= 0 {
		cfg.StageTimeout = 15 * time.Second
	}
	p := &Pipeline{cfg: cfg}
	if cfg.RateLimit > 0 {
		p.limiter = newLimiter(cfg.RateLimit)
	}
	return p, nil
}

// Progress snapshots the pipeline's counters.
func (p *Pipeline) Progress() Progress {
	return Progress{
		Submitted: p.submitted.Load(),
		Probed:    p.probed.Load(),
		Fetched:   p.fetched.Load(),
		Done:      p.done.Load(),
		Resumed:   p.resumed.Load(),
		DNSErrors: p.dnsErrors.Load(),
	}
}

// Stream runs the pipeline over in, emitting one Record per Input on
// the returned channel, in input order. The channel closes when the
// input is exhausted or ctx is cancelled. On cancellation, only
// records that completed every enabled stage are emitted — in-flight
// domains whose probing was cut short are dropped (never surfaced as
// false negatives, never checkpointed), and no goroutines are left
// behind once the channel closes.
func (p *Pipeline) Stream(ctx context.Context, in <-chan Input) <-chan Record {
	// Feeder: Input → seeded Record (resume hit or blank).
	seeded := make(chan Record, p.cfg.DNSWorkers)
	go func() {
		defer close(seeded)
		for {
			var input Input
			var ok bool
			select {
			case input, ok = <-in:
				if !ok {
					return
				}
			case <-ctx.Done():
				return
			}
			p.submitted.Add(1)
			rec := Record{FQDN: input.FQDN, Reference: input.Reference, Source: input.Source}
			if prev, hit := p.cfg.Resume[input.FQDN]; hit {
				rec = prev
				// The identity fields follow the current input: a resume
				// file only memoizes probe outcomes.
				rec.FQDN, rec.Reference, rec.Source = input.FQDN, input.Reference, input.Source
				rec.Resumed = true
				p.resumed.Add(1)
			}
			select {
			case seeded <- rec:
			case <-ctx.Done():
				return
			}
		}
	}()

	var probed <-chan Record = seeded
	if !p.cfg.SkipDNS {
		probed = orderedStage(ctx, probed, p.cfg.DNSWorkers, p.dnsStage)
	}
	classified := probed
	if !p.cfg.SkipWeb {
		classified = orderedStage(ctx, classified, p.cfg.WebWorkers, p.webStage)
	}

	// Final stage: blacklist lookup + bookkeeping, in order, no pool —
	// map probes cost nanoseconds.
	out := make(chan Record)
	go func() {
		defer close(out)
		for rec := range classified {
			if rec.aborted {
				continue // cancelled mid-probe: incomplete, not a result
			}
			if !p.cfg.SkipBlacklist && p.cfg.Blacklists != nil && !rec.Resumed {
				for _, f := range p.cfg.Blacklists.Feeds() {
					if f != nil && f.Contains(rec.FQDN) {
						rec.Blacklists = append(rec.Blacklists, f.Name)
					}
				}
			}
			p.done.Add(1)
			select {
			case out <- rec:
			case <-ctx.Done():
				// Drain so every upstream goroutine can finish and exit.
				for range classified {
				}
				return
			}
		}
	}()
	return out
}

// Run drains inputs through Stream and collects the records. The
// returned slice holds one record per input, in input order; on
// cancellation it holds only the records that completed every enabled
// stage (in-flight domains are dropped, not emitted half-probed),
// alongside ctx's error.
func (p *Pipeline) Run(ctx context.Context, inputs []Input) ([]Record, error) {
	in := make(chan Input)
	go func() {
		defer close(in)
		for _, input := range inputs {
			select {
			case in <- input:
			case <-ctx.Done():
				return
			}
		}
	}()
	records := make([]Record, 0, len(inputs))
	for rec := range p.Stream(ctx, in) {
		records = append(records, rec)
	}
	return records, ctx.Err()
}

// dnsStage probes NS/A/MX for one record (unless resumed), applying
// the rate limit, retries and the stage timeout.
func (p *Pipeline) dnsStage(ctx context.Context, rec Record) Record {
	if rec.Resumed {
		return rec
	}
	defer p.probed.Add(1)
	attempts := p.cfg.Retries + 1
	var res dnsclient.ProbeResult
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 && p.cfg.RetryBackoff.Base > 0 {
			if err := p.cfg.RetryBackoff.Sleep(ctx, attempt-1); err != nil {
				rec.aborted = true
				return rec
			}
		}
		if p.limiter != nil {
			if err := p.limiter.wait(ctx); err != nil {
				rec.aborted = true // cancelled while queued, not an outcome
				return rec
			}
		}
		var timedOut bool
		res, timedOut = p.probeWithTimeout(ctx, rec.FQDN)
		if timedOut {
			// The stage timeout is a hard per-domain ceiling, not a
			// per-attempt one: retrying here would hold the worker slot
			// (and the in-order window) for attempts × StageTimeout and
			// stack abandoned probe goroutines. Record the overrun and
			// move the window on.
			rec.DNSError = fmt.Sprintf("triage: probe exceeded stage timeout %v", p.cfg.StageTimeout)
			p.dnsErrors.Add(1)
			return rec
		}
		if res.Err == nil {
			break
		}
	}
	if res.Err != nil {
		if errors.Is(res.Err, context.Canceled) || errors.Is(res.Err, context.DeadlineExceeded) {
			rec.aborted = true
			return rec
		}
		rec.DNSError = res.Err.Error()
		p.dnsErrors.Add(1)
		return rec
	}
	rec.HasNS, rec.HasA, rec.HasMX, rec.NSHosts = res.HasNS, res.HasA, res.HasMX, res.NSHosts
	return rec
}

// probeWithTimeout runs one probe bounded by the stage timeout,
// expressed as a context deadline the DNS client honors directly: on
// expiry the probe stops retransmitting, stops sleeping through its
// backoff schedule, and releases its pooled-connection slots before
// returning — nothing is abandoned to keep probing a domain the
// window already moved past.
func (p *Pipeline) probeWithTimeout(ctx context.Context, fqdn string) (dnsclient.ProbeResult, bool) {
	pctx, cancel := context.WithTimeout(ctx, p.cfg.StageTimeout)
	defer cancel()
	res := p.cfg.DNS.ProbeContext(pctx, fqdn)
	if res.Err != nil && pctx.Err() == context.DeadlineExceeded && ctx.Err() == nil {
		return dnsclient.ProbeResult{Name: fqdn}, true
	}
	return res, false
}

// webStage classifies one record's website. The §6.2 gate: only
// domains that resolved (or everything, when DNS was skipped) are
// fetched. A delegation parked on a known provider classifies without
// a fetch.
func (p *Pipeline) webStage(ctx context.Context, rec Record) Record {
	if rec.Resumed || rec.aborted {
		return rec
	}
	if !p.cfg.SkipDNS && !rec.HasA {
		return rec
	}
	if len(p.cfg.ParkingNS) > 0 && webclassify.ParkedOn(rec.NSHosts, p.cfg.ParkingNS) {
		rec.Category = string(webclassify.CatParked)
		return rec
	}
	defer p.fetched.Add(1)
	ch := make(chan webclassify.Result, 1)
	go func() {
		ch <- p.cfg.Classifier.Classify(rec.FQDN)
	}()
	t := time.NewTimer(p.cfg.StageTimeout)
	defer t.Stop()
	var res webclassify.Result
	select {
	case res = <-ch:
	case <-t.C:
		// A genuine outcome: the host was too slow for the survey, the
		// paper's Error class.
		rec.Category = string(webclassify.CatError)
		return rec
	case <-ctx.Done():
		rec.aborted = true // cancelled, not slow
		return rec
	}
	rec.Category = string(res.Category)
	rec.RedirectTarget = res.RedirectTarget
	rec.RedirectClass = string(res.RedirectClass)
	rec.StatusHTTP = res.StatusHTTP
	rec.StatusHTTPS = res.StatusHTTPS
	return rec
}

// orderedStage fans records across a bounded worker pool while
// preserving input order: the dispatcher assigns each record a
// one-shot slot and queues slots in arrival order; the collector
// awaits them in that order. The pending queue's capacity is the
// worker count, which is also the stage's reorder window — a stalled
// head-of-line item (bounded by the stage timeout) holds back at most
// one window of completed successors, and the full queue backpressures
// the dispatcher, which backpressures upstream.
func orderedStage(ctx context.Context, in <-chan Record, workers int, fn func(context.Context, Record) Record) <-chan Record {
	out := make(chan Record)
	pending := make(chan chan Record, workers)
	sem := make(chan struct{}, workers)
	go func() { // dispatcher
		defer close(pending)
		for rec := range in {
			select {
			case sem <- struct{}{}:
			case <-ctx.Done():
				// Drain upstream so its goroutine can exit.
				for range in {
				}
				return
			}
			slot := make(chan Record, 1)
			pending <- slot
			go func(rec Record) {
				defer func() { <-sem }()
				if ctx.Err() != nil {
					rec.aborted = true // never ran the stage
					slot <- rec
					return
				}
				slot <- fn(ctx, rec)
			}(rec)
		}
	}()
	go func() { // collector
		defer close(out)
		for slot := range pending {
			rec := <-slot // always arrives: workers send unconditionally into a 1-slot buffer
			select {
			case out <- rec:
			case <-ctx.Done():
				for slot := range pending {
					<-slot
				}
				return
			}
		}
	}()
	return out
}

// limiter is a minimal token-bucket rate limiter: each wait reserves
// the next slot on a virtual timeline spaced 1/rate apart, so N
// concurrent workers collectively never exceed the configured rate,
// with no background goroutine to leak.
type limiter struct {
	mu       sync.Mutex
	next     time.Time
	interval time.Duration
}

func newLimiter(perSecond float64) *limiter {
	return &limiter{interval: time.Duration(float64(time.Second) / perSecond)}
}

func (l *limiter) wait(ctx context.Context) error {
	l.mu.Lock()
	//shamlint:allow determinism the token bucket paces wall-clock probe rate; time never reaches record bytes
	now := time.Now()
	if l.next.Before(now) {
		l.next = now
	}
	d := l.next.Sub(now)
	l.next = l.next.Add(l.interval)
	l.mu.Unlock()
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return ctx.Err()
	case <-ctx.Done():
		return ctx.Err()
	}
}
