package triage

import (
	"sort"

	"repro/internal/report"
	"repro/internal/webclassify"
)

// Tally aggregates records into the paper's summary shapes: the §6.1
// resolution funnel, the Table 12 category and Table 13 redirect
// breakdowns, and the Table 14 per-feed × per-database blacklist
// counts. Add is not safe for concurrent use; feed it from the single
// ordered record stream.
type Tally struct {
	Total     int `json:"total"`
	Resumed   int `json:"resumed"`
	WithNS    int `json:"with_ns"`
	WithA     int `json:"with_a"`
	WithMX    int `json:"with_mx"`
	DNSErrors int `json:"dns_errors"`

	ByCategory map[string]int `json:"by_category,omitempty"`
	ByRedirect map[string]int `json:"by_redirect,omitempty"`

	// ByFeed counts listed homographs per feed; ByFeedSource splits
	// each feed's count by the detecting database (the Table 14
	// columns), using Record.Source.
	ByFeed       map[string]int            `json:"by_feed,omitempty"`
	ByFeedSource map[string]map[string]int `json:"by_feed_source,omitempty"`
	Blacklisted  int                       `json:"blacklisted"`
}

// NewTally returns an empty tally.
func NewTally() *Tally {
	return &Tally{
		ByCategory:   make(map[string]int),
		ByRedirect:   make(map[string]int),
		ByFeed:       make(map[string]int),
		ByFeedSource: make(map[string]map[string]int),
	}
}

// Add folds one record in.
func (t *Tally) Add(rec Record) {
	t.Total++
	if rec.Resumed {
		t.Resumed++
	}
	if rec.DNSError != "" {
		t.DNSErrors++
	}
	if rec.HasNS {
		t.WithNS++
	}
	if rec.HasA {
		t.WithA++
	}
	if rec.HasMX {
		t.WithMX++
	}
	if rec.Category != "" {
		t.ByCategory[rec.Category]++
	}
	if rec.Category == string(webclassify.CatRedirect) && rec.RedirectClass != "" {
		t.ByRedirect[rec.RedirectClass]++
	}
	if len(rec.Blacklists) > 0 {
		t.Blacklisted++
	}
	for _, feed := range rec.Blacklists {
		t.ByFeed[feed]++
		src := rec.Source
		if src == "" {
			src = "unknown"
		}
		m := t.ByFeedSource[feed]
		if m == nil {
			m = make(map[string]int)
			t.ByFeedSource[feed] = m
		}
		m[src]++
	}
}

// Merge folds another tally in — the continuous-monitoring aggregation:
// each batch survey job tallies its own records, and the running §6
// tables are the merge of every completed job's tally. Counters add;
// map entries add per key.
func (t *Tally) Merge(o *Tally) {
	if o == nil {
		return
	}
	t.Total += o.Total
	t.Resumed += o.Resumed
	t.WithNS += o.WithNS
	t.WithA += o.WithA
	t.WithMX += o.WithMX
	t.DNSErrors += o.DNSErrors
	t.Blacklisted += o.Blacklisted
	for k, v := range o.ByCategory {
		t.ByCategory[k] += v
	}
	for k, v := range o.ByRedirect {
		t.ByRedirect[k] += v
	}
	for k, v := range o.ByFeed {
		t.ByFeed[k] += v
	}
	for feed, bySrc := range o.ByFeedSource {
		m := t.ByFeedSource[feed]
		if m == nil {
			m = make(map[string]int)
			t.ByFeedSource[feed] = m
		}
		for src, v := range bySrc {
			m[src] += v
		}
	}
}

// sortedKeys returns m's keys sorted, for deterministic table output.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Tables renders the tally as aligned report tables: the resolution
// funnel, the Table 12 categories, the Table 13 redirect classes and
// the Table 14 feed coverage. Row order is deterministic.
func (t *Tally) Tables() []*report.Table {
	funnel := report.NewTable("Resolution funnel (§6.1)", "stage", "domains")
	funnel.AddRow("triaged", t.Total)
	funnel.AddRow("with NS", t.WithNS)
	funnel.AddRow("with A", t.WithA)
	funnel.AddRow("with MX", t.WithMX)
	funnel.AddRow("DNS errors", t.DNSErrors)

	tables := []*report.Table{funnel}
	if len(t.ByCategory) > 0 {
		cat := report.NewTable("Web categories (Table 12)", "category", "domains")
		for _, k := range sortedKeys(t.ByCategory) {
			cat.AddRow(k, t.ByCategory[k])
		}
		tables = append(tables, cat)
	}
	if len(t.ByRedirect) > 0 {
		red := report.NewTable("Redirect classes (Table 13)", "class", "domains")
		for _, k := range sortedKeys(t.ByRedirect) {
			red.AddRow(k, t.ByRedirect[k])
		}
		tables = append(tables, red)
	}
	if len(t.ByFeed) > 0 {
		bl := report.NewTable("Blacklist coverage (Table 14)", "feed", "listed")
		for _, k := range sortedKeys(t.ByFeed) {
			bl.AddRow(k, t.ByFeed[k])
		}
		tables = append(tables, bl)
	}
	return tables
}

// TableFourteen renders the feed × detecting-database split in the
// paper's Table 14 shape. Sources beyond the three canonical columns
// (UC, SimChar, the union) are folded into the union column, which by
// definition contains every detected homograph.
func (t *Tally) TableFourteen() *report.Table {
	tbl := report.NewTable("Table 14 — blacklisted homographs by database", "feed", "UC", "SimChar", "UC∪SimChar")
	for _, feed := range sortedKeys(t.ByFeedSource) {
		bySrc := t.ByFeedSource[feed]
		uc, sim, union := 0, 0, 0
		for src, n := range bySrc {
			union += n
			switch src {
			case "UC":
				uc += n
			case "SimChar":
				sim += n
			case "UC∪SimChar":
				// Detectable by both: counts in each single-database column
				// too, as the paper's per-database rows do.
				uc += n
				sim += n
			}
		}
		tbl.AddRow(feed, uc, sim, union)
	}
	return tbl
}
