package registry

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/homoglyph"
	"repro/internal/langid"
	"repro/internal/punycode"
	"repro/internal/ranking"
	"repro/internal/stats"
)

// Options configures a registry generation run.
type Options struct {
	Seed uint64
	// Scale multiplies the benign population (TotalDomains and the
	// IDN pool). Homograph counts are absolute regardless of Scale.
	// Zero means 1/1000.
	Scale float64
	// Profile holds the population constants; zero value means
	// PaperProfile.
	Profile *Profile
	// Refs is the reference ranking. Nil means
	// ranking.Generate(10000, Seed, ranking.PaperAnchors()).
	Refs *ranking.List
	// DB is the homoglyph database homographs are built from.
	// Required.
	DB *homoglyph.DB
}

// Registry is a generated synthetic .com population.
type Registry struct {
	Seed    uint64
	Scale   float64
	Profile Profile
	Refs    *ranking.List

	// BenignASCII are plain LDH registrations (no ground truth
	// needed beyond their existence).
	BenignASCII []string
	// BenignIDNs are non-homograph IDN registrations.
	BenignIDNs []BenignIDN
	// Homographs carry full ground truth.
	Homographs []Homograph

	byASCII map[string]*Homograph
}

// Generate builds the registry. The same Options always produce the
// same Registry.
func Generate(opt Options) (*Registry, error) {
	if opt.DB == nil {
		return nil, fmt.Errorf("registry: Options.DB is required")
	}
	prof := PaperProfile()
	if opt.Profile != nil {
		prof = *opt.Profile
	}
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	scale := opt.Scale
	if scale == 0 {
		scale = 0.001
	}
	refs := opt.Refs
	if refs == nil {
		refs = ranking.Generate(10000, opt.Seed, ranking.PaperAnchors())
	}
	r := &Registry{
		Seed:    opt.Seed,
		Scale:   scale,
		Profile: prof,
		Refs:    refs,
		byASCII: make(map[string]*Homograph),
	}
	if err := r.generate(opt.DB); err != nil {
		return nil, err
	}
	return r, nil
}

func (r *Registry) generate(db *homoglyph.DB) error {
	rng := stats.NewRNG(r.Seed*2654435761 + 1)
	taken := make(map[string]bool)
	for _, e := range r.Refs.Entries {
		taken[e.Domain] = true
	}

	cs := classify(db)
	reqs, err := r.planRequests(cs, rng)
	if err != nil {
		return err
	}
	homographs, err := buildHomographs(cs, reqs, taken, rng)
	if err != nil {
		return err
	}
	r.Homographs = homographs
	r.assignFeatured(rng)
	r.assignActivity(rng)
	r.assignCategories(rng)
	r.assignBlacklists(rng)
	r.assignResolutions(rng)
	for i := range r.Homographs {
		r.byASCII[r.Homographs[i].ASCII] = &r.Homographs[i]
	}

	r.generateBenign(rng, taken)
	return nil
}

// planRequests decides how many homographs of which class target each
// reference, honouring the pinned Table 9 counts and Table 11 featured
// targets and distributing the remainder Zipf-style over the top 10k
// references.
func (r *Registry) planRequests(cs *candidateSets, rng *stats.RNG) ([]request, error) {
	prof := &r.Profile
	classes := prof.Classes
	total := classes.Total()

	// Featured homographs are SimChar-only detections by construction.
	featuredCount := len(prof.Featured)
	perTarget := make(map[string]int)
	for _, f := range prof.Featured {
		perTarget[f.Target]++
	}
	pinnedTotal := featuredCount
	for _, t := range prof.TopTargets {
		perTarget[t.Target] += t.Count
		pinnedTotal += t.Count
	}
	if pinnedTotal > total {
		return nil, fmt.Errorf("registry: pinned %d homographs exceed total %d", pinnedTotal, total)
	}

	// Remaining homographs spread across references not already
	// pinned, Zipf by rank, capped.
	slds := r.Refs.SLDs(r.Refs.Len())
	pinned := make(map[string]bool, len(perTarget))
	for t := range perTarget {
		pinned[t] = true
	}
	var others []string
	for _, s := range slds {
		if !pinned[s] && len(s) >= 4 {
			others = append(others, s)
		}
	}
	if len(others) == 0 {
		others = slds
	}
	zipf := stats.NewZipf(rng, len(others), 1.1)
	remaining := total - pinnedTotal
	for remaining > 0 {
		t := others[zipf.Rank()-1]
		if perTarget[t] >= prof.MaxOtherTarget {
			continue
		}
		perTarget[t]++
		remaining--
	}

	// Split each target's count across classes so the global class
	// totals come out exactly. Walk targets deterministically,
	// draining class budgets.
	budget := map[PairClass]int{
		ClassUCOnly:  classes.UCOnly,
		ClassSimOnly: classes.SimOnly - featuredCount,
		ClassBoth:    classes.Both,
	}
	if budget[ClassSimOnly] < 0 {
		return nil, fmt.Errorf("registry: featured homographs exceed SimChar-only budget")
	}
	targets := make([]string, 0, len(perTarget))
	for t := range perTarget {
		targets = append(targets, t)
	}
	sort.Strings(targets)

	var reqs []request
	// Featured first: exact SimChar-only requests.
	for _, f := range prof.Featured {
		reqs = append(reqs, request{target: f.Target, class: ClassSimOnly, count: 1})
		perTarget[f.Target]--
	}
	classOrder := []PairClass{ClassSimOnly, ClassBoth, ClassUCOnly}
	for _, t := range targets {
		want := perTarget[t]
		for _, class := range classOrder {
			if want == 0 {
				break
			}
			if budget[class] == 0 {
				continue
			}
			// Proportional share, bounded by capacity and budget.
			n := want
			if n > budget[class] {
				n = budget[class]
			}
			if cap := cs.capacity(class, t); n > cap {
				n = cap
			}
			if n == 0 {
				continue
			}
			// Leave room in this class for later targets that may
			// only have capacity here: take a Zipf-ish portion unless
			// this is the last class with budget.
			reqs = append(reqs, request{target: t, class: class, count: n})
			budget[class] -= n
			want -= n
		}
		if want > 0 {
			return nil, fmt.Errorf("registry: target %q cannot host %d more homographs (capacity exhausted)", t, want)
		}
	}
	for class, left := range budget {
		if left > 0 {
			// Distribute leftovers to targets with spare capacity.
			for _, t := range targets {
				if left == 0 {
					break
				}
				spare := cs.capacity(class, t) - requested(reqs, t, class)
				if spare <= 0 {
					continue
				}
				n := spare
				if n > left {
					n = left
				}
				reqs = append(reqs, request{target: t, class: class, count: n})
				left -= n
			}
			if left > 0 {
				return nil, fmt.Errorf("registry: class %s has %d unplaceable homographs", class, left)
			}
		}
	}
	return reqs, nil
}

func requested(reqs []request, target string, class PairClass) int {
	n := 0
	for _, r := range reqs {
		if r.target == target && r.class == class {
			n += r.count
		}
	}
	return n
}

// assignFeatured matches the first generated homograph of each
// featured target (SimChar-only, generation order) to the featured
// spec and pins its Table 11 attributes.
func (r *Registry) assignFeatured(rng *stats.RNG) {
	used := make(map[int]bool)
	for fi := range r.Profile.Featured {
		f := &r.Profile.Featured[fi]
		for i := range r.Homographs {
			h := &r.Homographs[i]
			if used[i] || h.Target != f.Target || h.Class != ClassSimOnly {
				continue
			}
			used[i] = true
			h.Flavor = f.Flavor
			h.Resolutions = f.Resolutions
			h.MXActive = f.MXActive
			h.MXPast = f.MXPast
			h.WebLink = f.WebLink
			h.SNS = f.SNS
			h.Cloaking = f.Cloaking
			h.HasNS, h.HasA, h.Port80, h.Port443 = true, true, true, true
			switch f.Flavor {
			case "Phishing", "Portal":
				h.Category = CatNormal
			case "Parked":
				h.Category = CatParked
			case "Sale":
				h.Category = CatForSale
			}
			break
		}
	}
}

// assignActivity hands out NS/A records and open ports to the
// non-featured homographs so the global counts match Table 10.
func (r *Registry) assignActivity(rng *stats.RNG) {
	prof := &r.Profile
	// Count what the featured assignment already consumed.
	ns, a, p80only, p443only, pboth := 0, 0, 0, 0, 0
	var free []int
	for i := range r.Homographs {
		h := &r.Homographs[i]
		if h.Flavor != "" {
			ns++
			a++
			pboth++
			continue
		}
		free = append(free, i)
	}
	needNS := prof.WithNS - ns
	needA := prof.WithA - a
	needBoth := prof.PortBoth - pboth
	need80 := prof.Port80Only - p80only
	need443 := prof.Port443Only - p443only
	if needNS < 0 || needA < 0 || needBoth < 0 {
		needNS, needA, needBoth = max(0, needNS), max(0, needA), max(0, needBoth)
	}
	rng.Shuffle(len(free), func(i, j int) { free[i], free[j] = free[j], free[i] })
	for k, idx := range free {
		h := &r.Homographs[idx]
		if k >= needNS {
			break
		}
		h.HasNS = true
		if k >= needA {
			continue
		}
		h.HasA = true
		switch {
		case k < needBoth:
			h.Port80, h.Port443 = true, true
		case k < needBoth+need80:
			h.Port80 = true
		case k < needBoth+need80+need443:
			h.Port443 = true
		}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// assignCategories labels the active homographs with Table 12
// categories and the redirect subset with Table 13 kinds.
func (r *Registry) assignCategories(rng *stats.RNG) {
	prof := &r.Profile
	counts := prof.Categories
	// Featured already consumed some category slots.
	for i := range r.Homographs {
		h := &r.Homographs[i]
		if h.Flavor == "" {
			continue
		}
		switch h.Category {
		case CatParked:
			counts.Parked--
		case CatForSale:
			counts.ForSale--
		case CatNormal:
			counts.Normal--
		}
	}
	var active []int
	for i := range r.Homographs {
		h := &r.Homographs[i]
		if h.Active() && h.Flavor == "" {
			active = append(active, i)
		}
	}
	rng.Shuffle(len(active), func(i, j int) { active[i], active[j] = active[j], active[i] })
	assign := func(n int, cat Category) {
		for n > 0 && len(active) > 0 {
			r.Homographs[active[0]].Category = cat
			active = active[1:]
			n--
		}
	}
	assign(counts.Parked, CatParked)
	assign(counts.ForSale, CatForSale)
	assign(counts.Redirect, CatRedirect)
	assign(counts.Normal, CatNormal)
	assign(counts.Empty, CatEmpty)
	assign(counts.Error, CatError)

	// Redirect kinds, preferring non-top-1k targets for the malicious
	// subset so Section 6.4 has its 91 revert cases.
	var redirects []int
	for i := range r.Homographs {
		if r.Homographs[i].Category == CatRedirect {
			redirects = append(redirects, i)
		}
	}
	sort.SliceStable(redirects, func(a, b int) bool {
		ra := r.Refs.Rank(r.Homographs[redirects[a]].Target + ".com")
		rb := r.Refs.Rank(r.Homographs[redirects[b]].Target + ".com")
		return ra > rb // lowest-ranked (largest rank number) first
	})
	brand, legit, malicious := prof.RedirectBrand, prof.RedirectLegit, prof.RedirectMalicious
	for _, idx := range redirects {
		h := &r.Homographs[idx]
		switch {
		case malicious > 0:
			h.Redirect = RedirMalicious
			h.RedirectTarget = "trap-" + h.Target + ".example"
			malicious--
		case brand > 0:
			h.Redirect = RedirBrandProtection
			h.RedirectTarget = h.Target + ".com"
			brand--
		default:
			h.Redirect = RedirLegitimate
			h.RedirectTarget = "cdn-" + h.Target + ".example"
			legit--
		}
	}
}

// assignBlacklists marks homographs as known to the three feeds,
// respecting the per-class counts of Table 14. A global quota steers
// exactly Profile.MaliciousNonTop1k of the hpHosts entries onto
// homographs whose target sits outside the Alexa top 1k, so Section
// 6.4's revert analysis reproduces the paper's 91-domain finding while
// the majority of malicious homographs still chase top brands.
func (r *Registry) assignBlacklists(rng *stats.RNG) {
	prof := &r.Profile
	nonTopQuota := prof.MaliciousNonTop1k

	outside := func(idx int) bool {
		rank := r.Refs.Rank(r.Homographs[idx].Target + ".com")
		return rank == 0 || rank > 1000
	}
	byClass := map[PairClass][]int{}
	for i := range r.Homographs {
		h := &r.Homographs[i]
		byClass[h.Class] = append(byClass[h.Class], i)
	}
	take := func(class PairClass, n int, feed Blacklists, mustHaveHp bool) {
		// Two passes: while the non-top-1k quota lasts, fill from
		// outside-top-1k targets; afterwards from top-1k targets,
		// falling back to whatever remains.
		pass := func(wantOutside bool, strict bool) {
			for _, idx := range byClass[class] {
				if n == 0 {
					return
				}
				h := &r.Homographs[idx]
				if h.Blacklist.Has(feed) {
					continue
				}
				if mustHaveHp && !h.Blacklist.Has(BLHpHosts) {
					continue
				}
				if strict && outside(idx) != wantOutside {
					continue
				}
				if feed == BLHpHosts && outside(idx) {
					if nonTopQuota == 0 {
						continue // would exceed the Section 6.4 quota
					}
					nonTopQuota--
				}
				h.Blacklist |= feed
				n--
			}
		}
		pass(true, true)
		pass(false, true)
		pass(false, false)
	}
	take(ClassUCOnly, prof.HpHosts.UCOnly, BLHpHosts, false)
	take(ClassSimOnly, prof.HpHosts.SimOnly, BLHpHosts, false)
	take(ClassBoth, prof.HpHosts.Both, BLHpHosts, false)
	take(ClassUCOnly, prof.GSB.UCOnly, BLGSB, true)
	take(ClassSimOnly, prof.GSB.SimOnly, BLGSB, true)
	take(ClassBoth, prof.GSB.Both, BLGSB, true)
	take(ClassUCOnly, prof.Symantec.UCOnly, BLSymantec, true)
	take(ClassSimOnly, prof.Symantec.SimOnly, BLSymantec, true)
	take(ClassBoth, prof.Symantec.Both, BLSymantec, true)
}

// assignResolutions gives every non-featured homograph a long-tail
// passive-DNS resolution count well below the featured minimum.
func (r *Registry) assignResolutions(rng *stats.RNG) {
	floor := int64(1 << 62)
	for _, f := range r.Profile.Featured {
		if f.Resolutions < floor {
			floor = f.Resolutions
		}
	}
	if floor == 1<<62 {
		floor = 1 << 20
	}
	for i := range r.Homographs {
		h := &r.Homographs[i]
		if h.Flavor != "" {
			continue
		}
		if !h.Active() {
			h.Resolutions = int64(rng.Intn(50))
			continue
		}
		// Log-uniform tail capped at 60% of the featured floor.
		maxRes := int(float64(floor) * 0.6)
		if maxRes < 2 {
			maxRes = 2
		}
		v := 1
		for v < maxRes && rng.Float64() < 0.75 {
			v *= 2
		}
		h.Resolutions = int64(rng.Intn(v) + 1)
	}
}

// generateBenign fills in the scaled benign corpus: ASCII domains and
// language-distributed IDNs.
func (r *Registry) generateBenign(rng *stats.RNG, taken map[string]bool) {
	prof := &r.Profile
	totalIDN := int(float64(prof.TotalDomains) * prof.IDNFraction * r.Scale)
	benignIDN := totalIDN - len(r.Homographs)
	if benignIDN < 0 {
		benignIDN = 0
	}
	totalBenignASCII := int(float64(prof.TotalDomains)*r.Scale) - totalIDN
	if totalBenignASCII < 0 {
		totalBenignASCII = 0
	}

	// Language-mix IDNs.
	r.BenignIDNs = make([]BenignIDN, 0, benignIDN)
	type share struct {
		pool langid.Pool
		n    int
	}
	var shares []share
	assigned := 0
	for _, ls := range prof.LangMix {
		n := int(float64(benignIDN) * ls.Fraction)
		shares = append(shares, share{langid.PoolFor(ls.Language), n})
		assigned += n
	}
	if len(shares) > 0 {
		shares[0].n += benignIDN - assigned // remainder to the top language
	}
	for _, sh := range shares {
		for k := 0; k < sh.n; k++ {
			label := sh.pool.Label(rng, 3+rng.Intn(10))
			ascii, err := punycode.ToASCII(label + ".com")
			if err != nil || taken[ascii] {
				k--
				continue
			}
			taken[ascii] = true
			r.BenignIDNs = append(r.BenignIDNs, BenignIDN{
				ASCII:    ascii,
				Label:    label,
				Language: sh.pool.Language.Code,
			})
		}
	}

	// Bulk ASCII corpus.
	r.BenignASCII = make([]string, 0, totalBenignASCII)
	var sb strings.Builder
	for len(r.BenignASCII) < totalBenignASCII {
		sb.Reset()
		n := 5 + rng.Intn(12)
		for i := 0; i < n; i++ {
			sb.WriteByte(byte('a' + rng.Intn(26)))
		}
		if rng.Float64() < 0.15 {
			sb.WriteByte(byte('0' + rng.Intn(10)))
		}
		sb.WriteString(".com")
		d := sb.String()
		if taken[d] {
			continue
		}
		taken[d] = true
		r.BenignASCII = append(r.BenignASCII, d)
	}
}

// Homograph returns the ground truth for an ASCII (xn--) domain, if it
// is one of the injected homographs.
func (r *Registry) Homograph(ascii string) (*Homograph, bool) {
	h, ok := r.byASCII[strings.ToLower(strings.TrimSuffix(ascii, "."))]
	return h, ok
}

// ActiveHomographs returns the homographs answering on at least one
// port.
func (r *Registry) ActiveHomographs() []*Homograph {
	var out []*Homograph
	for i := range r.Homographs {
		if r.Homographs[i].Active() {
			out = append(out, &r.Homographs[i])
		}
	}
	return out
}
