package registry

import (
	"fmt"
	"sort"

	"repro/internal/homoglyph"
	"repro/internal/punycode"
	"repro/internal/stats"
	"repro/internal/ucd"
)

// candidateSets holds, for each Basic Latin lowercase letter, the
// homoglyph substitutions available in each pair class.
type candidateSets struct {
	ucOnly  map[rune][]rune
	simOnly map[rune][]rune
	both    map[rune][]rune
}

// classify builds the per-letter candidate sets from the two databases
// inside db. Only lowercase a-z sources matter: the references are
// ASCII domains.
func classify(db *homoglyph.DB) *candidateSets {
	cs := &candidateSets{
		ucOnly:  make(map[rune][]rune),
		simOnly: make(map[rune][]rune),
		both:    make(map[rune][]rune),
	}
	uc, sim := db.UC(), db.SimChar()
	for r := 'a'; r <= 'z'; r++ {
		seen := make(map[rune]bool)
		add := func(g rune) {
			if g == r || seen[g] || !ucd.IsPValid(g) {
				return
			}
			seen[g] = true
			inUC := uc.Confusable(r, g)
			inSim := sim.Confusable(r, g)
			switch {
			case inUC && inSim:
				cs.both[r] = append(cs.both[r], g)
			case inUC:
				cs.ucOnly[r] = append(cs.ucOnly[r], g)
			case inSim:
				cs.simOnly[r] = append(cs.simOnly[r], g)
			}
		}
		for _, g := range uc.Sources() {
			if uc.Confusable(r, g) {
				add(g)
			}
		}
		for _, g := range sim.Homoglyphs(r) {
			add(g)
		}
		for _, m := range []map[rune][]rune{cs.ucOnly, cs.simOnly, cs.both} {
			sort.Slice(m[r], func(i, j int) bool { return m[r][i] < m[r][j] })
		}
	}
	return cs
}

// pool returns the candidate list for letter r in the given class.
func (cs *candidateSets) pool(class PairClass, r rune) []rune {
	switch class {
	case ClassUCOnly:
		return cs.ucOnly[r]
	case ClassSimOnly:
		return cs.simOnly[r]
	default:
		return cs.both[r]
	}
}

// capacity counts single- and double-substitution variants of label in
// the class; used to verify a target can host the requested number of
// homographs.
func (cs *candidateSets) capacity(class PairClass, label string) int {
	runes := []rune(label)
	single := 0
	perPos := make([]int, len(runes))
	for i, r := range runes {
		perPos[i] = len(cs.pool(class, r))
		single += perPos[i]
	}
	double := 0
	for i := 0; i < len(runes); i++ {
		for j := i + 1; j < len(runes); j++ {
			double += perPos[i] * perPos[j]
		}
	}
	return single + double
}

// variants lazily enumerates substitution variants of label in the
// class: all single substitutions in deterministic order, then all
// doubles. Each call to next() produces the rune slice and the number
// of substitutions, or ok=false when exhausted.
type variants struct {
	cs    *candidateSets
	class PairClass
	runes []rune

	stage  int // 0 = singles, 1 = doubles, 2 = done
	i, j   int // positions
	ci, cj int // candidate indices
}

func newVariants(cs *candidateSets, class PairClass, label string) *variants {
	return &variants{cs: cs, class: class, runes: []rune(label)}
}

func (v *variants) next() (out []rune, subs int, ok bool) {
	for {
		switch v.stage {
		case 0: // singles
			if v.i >= len(v.runes) {
				v.stage, v.i, v.j, v.ci, v.cj = 1, 0, 1, 0, 0
				continue
			}
			pool := v.cs.pool(v.class, v.runes[v.i])
			if v.ci >= len(pool) {
				v.i++
				v.ci = 0
				continue
			}
			out = append([]rune(nil), v.runes...)
			out[v.i] = pool[v.ci]
			v.ci++
			return out, 1, true
		case 1: // doubles
			if v.i >= len(v.runes)-1 {
				v.stage = 2
				continue
			}
			if v.j >= len(v.runes) {
				v.i++
				v.j = v.i + 1
				v.ci, v.cj = 0, 0
				continue
			}
			poolI := v.cs.pool(v.class, v.runes[v.i])
			poolJ := v.cs.pool(v.class, v.runes[v.j])
			if v.ci >= len(poolI) {
				v.j++
				v.ci, v.cj = 0, 0
				continue
			}
			if v.cj >= len(poolJ) {
				v.ci++
				v.cj = 0
				continue
			}
			out = append([]rune(nil), v.runes...)
			out[v.i] = poolI[v.ci]
			out[v.j] = poolJ[v.cj]
			v.cj++
			return out, 2, true
		default:
			return nil, 0, false
		}
	}
}

// request asks the builder for count homographs of target in class.
type request struct {
	target string
	class  PairClass
	count  int
}

// buildHomographs constructs unique homographs satisfying all
// requests. taken tracks already-used ASCII names across calls.
func buildHomographs(cs *candidateSets, reqs []request, taken map[string]bool, rng *stats.RNG) ([]Homograph, error) {
	var out []Homograph
	for _, req := range reqs {
		got := 0
		v := newVariants(cs, req.class, req.target)
		for got < req.count {
			runes, subs, ok := v.next()
			if !ok {
				return nil, fmt.Errorf(
					"registry: target %q class %s: only %d of %d variants available",
					req.target, req.class, got, req.count)
			}
			label := string(runes)
			ascii, err := punycode.ToASCII(label + ".com")
			if err != nil {
				continue // substitution produced an unencodable label
			}
			if taken[ascii] {
				continue
			}
			taken[ascii] = true
			out = append(out, Homograph{
				ASCII:   ascii,
				Unicode: label + ".com",
				Label:   label,
				Target:  req.target,
				Class:   req.class,
				Subs:    subs,
			})
			got++
		}
	}
	// Shuffle so later positional assignments (activity, categories)
	// don't correlate with targets.
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out, nil
}
