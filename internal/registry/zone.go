package registry

import (
	"bufio"
	"io"
	"net/netip"
	"strings"

	"repro/internal/dnswire"
	"repro/internal/stats"
	"repro/internal/zonefile"
)

// Membership reports which of the two collected domain lists (the zone
// file and domainlists.io) contain a given domain. The split is a
// deterministic hash of the name tuned to the per-list coverage
// fractions in the profile, so Table 6's three rows (zone, list,
// union) come out at the right relative sizes without storing
// per-domain bits.
type Membership struct {
	Zone bool
	List bool
}

// MembershipOf computes the list membership of one domain.
func (r *Registry) MembershipOf(domain string, isIDN bool) Membership {
	h := stats.Mix(stats.HashString(domain))
	zc, lc := r.Profile.ZoneCoverage, r.Profile.ListCoverage
	if isIDN {
		zc, lc = r.Profile.ZoneIDNCoverage, r.Profile.ListIDNCoverage
	}
	// Two independent draws from the same hash.
	zDraw := float64(h&0xFFFFFFFF) / float64(1<<32)
	lDraw := float64(h>>32) / float64(1<<32)
	m := Membership{Zone: zDraw < zc, List: lDraw < lc}
	if !m.Zone && !m.List {
		m.Zone = true // the union must contain every registration
	}
	return m
}

// ForEachDomain visits every registered domain with its IDN flag and
// list membership. Visit order is deterministic: benign ASCII, benign
// IDNs, homographs.
func (r *Registry) ForEachDomain(visit func(domain string, isIDN bool, m Membership)) {
	for _, d := range r.BenignASCII {
		visit(d, false, r.MembershipOf(d, false))
	}
	for _, d := range r.BenignIDNs {
		visit(d.ASCII, true, r.MembershipOf(d.ASCII, true))
	}
	for i := range r.Homographs {
		d := r.Homographs[i].ASCII
		visit(d, true, r.MembershipOf(d, true))
	}
}

// IDNs returns the ASCII (xn--) form of every registered IDN — the
// paper's Step 2 output.
func (r *Registry) IDNs() []string {
	out := make([]string, 0, len(r.BenignIDNs)+len(r.Homographs))
	for _, d := range r.BenignIDNs {
		out = append(out, d.ASCII)
	}
	for i := range r.Homographs {
		out = append(out, r.Homographs[i].ASCII)
	}
	return out
}

// IDNLabels returns the decoded Unicode SLD of every registered IDN,
// the input to the Table 7 language tally.
func (r *Registry) IDNLabels() []string {
	out := make([]string, 0, len(r.BenignIDNs)+len(r.Homographs))
	for _, d := range r.BenignIDNs {
		out = append(out, d.Label)
	}
	for i := range r.Homographs {
		out = append(out, r.Homographs[i].Label)
	}
	return out
}

// TotalDomains counts every registration.
func (r *Registry) TotalDomains() int {
	return len(r.BenignASCII) + len(r.BenignIDNs) + len(r.Homographs)
}

// probeAddr is the loopback address planted in the zone's A records;
// the host simulator remaps per-domain ports at connect time.
var probeAddr = netip.MustParseAddr("127.0.0.1")

// ParkingProviders are the name-server suffixes of the simulated
// domain-parking companies. The paper compiles such a list (17 NS
// records, following Vissers et al.) and classifies a domain as parked
// when its NS delegation points at one; most — but not all — of the
// parked homographs here delegate to a provider, so both the NS signal
// and the content fallback are exercised.
var ParkingProviders = []string{
	"parkingcrew.example",
	"sedoparking.example",
	"bodis.example",
	"parklogic.example",
	"above.example",
}

// ParkingNSHost returns the parking provider NS host for a parked
// homograph, or "" when the domain uses generic hosting (the content
// classifier's job). Deterministic in the domain name.
func (r *Registry) ParkingNSHost(h *Homograph) string {
	if h.Category != CatParked {
		return ""
	}
	hash := stats.Mix(stats.HashString(h.ASCII) ^ r.Seed)
	if hash%5 == 0 {
		return "" // ~20% parked on generic infrastructure
	}
	return "ns1." + ParkingProviders[hash%uint64(len(ParkingProviders))] + "."
}

// BuildProbeZone builds the zone the simulated authoritative server
// loads: SOA + apex NS, then NS/A/MX records for every homograph
// according to its ground truth. Benign domains are included only up
// to benignSample entries to keep the store small — probing only ever
// targets detected homographs plus a control sample.
func (r *Registry) BuildProbeZone(benignSample int) *zonefile.Zone {
	z := &zonefile.Zone{Origin: "com.", TTL: 300}
	z.Records = append(z.Records,
		dnswire.Record{Name: "com.", Class: dnswire.ClassIN, TTL: 900,
			Data: dnswire.SOA{
				MName: "a.gtld-servers.net.", RName: "nstld.example.",
				Serial: uint32(r.Seed), Refresh: 1800, Retry: 900,
				Expire: 604800, Minimum: 86400,
			}},
		dnswire.Record{Name: "com.", Class: dnswire.ClassIN, TTL: 900,
			Data: dnswire.NS{Host: "a.gtld-servers.net."}},
	)
	add := func(domain string, hasNS, hasA, hasMX bool, nsHost string) {
		name := dnswire.CanonicalName(domain)
		if hasNS {
			if nsHost == "" {
				nsHost = "ns1." + name
			}
			z.Records = append(z.Records, dnswire.Record{
				Name: name, Class: dnswire.ClassIN, TTL: 300,
				Data: dnswire.NS{Host: nsHost},
			})
		}
		if hasA {
			z.Records = append(z.Records, dnswire.Record{
				Name: name, Class: dnswire.ClassIN, TTL: 300,
				Data: dnswire.A{Addr: probeAddr},
			})
		}
		if hasMX {
			z.Records = append(z.Records, dnswire.Record{
				Name: name, Class: dnswire.ClassIN, TTL: 300,
				Data: dnswire.MX{Preference: 10, Host: "mail." + name},
			})
		}
	}
	for i := range r.Homographs {
		h := &r.Homographs[i]
		add(h.ASCII, h.HasNS, h.HasA, h.MXActive, r.ParkingNSHost(h))
	}
	for i, d := range r.BenignASCII {
		if i >= benignSample {
			break
		}
		add(d, true, true, false, "")
	}
	return z
}

// WriteZoneFile streams the full registry as an RFC 1035 master file:
// one NS delegation line per domain in the zone-file list. This is the
// Table 6 "zone file" artifact.
func (r *Registry) WriteZoneFile(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString("$ORIGIN com.\n$TTL 300\n@ IN SOA a.gtld-servers.net. nstld.example. 1 1800 900 604800 86400\n@ IN NS a.gtld-servers.net.\n"); err != nil {
		return err
	}
	var err error
	r.ForEachDomain(func(domain string, isIDN bool, m Membership) {
		if err != nil || !m.Zone {
			return
		}
		sld := strings.TrimSuffix(domain, ".com")
		_, werr := bw.WriteString(sld + " IN NS ns1." + domain + ".\n")
		if werr != nil {
			err = werr
		}
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

// WriteDomainList streams the domainlists.io-style flat list: one
// domain per line for every domain in the list feed.
func (r *Registry) WriteDomainList(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	var err error
	r.ForEachDomain(func(domain string, isIDN bool, m Membership) {
		if err != nil || !m.List {
			return
		}
		if _, werr := bw.WriteString(domain + "\n"); werr != nil {
			err = werr
		}
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

// ListStats is one row of Table 6.
type ListStats struct {
	Name    string
	Domains int
	IDNs    int
}

// TableSix computes the zone/list/union rows of Table 6 from the
// membership function.
func (r *Registry) TableSix() [3]ListStats {
	var zone, list, union ListStats
	zone.Name, list.Name, union.Name = "zone file", "domainlists.io", "Total (union)"
	r.ForEachDomain(func(domain string, isIDN bool, m Membership) {
		union.Domains++
		if isIDN {
			union.IDNs++
		}
		if m.Zone {
			zone.Domains++
			if isIDN {
				zone.IDNs++
			}
		}
		if m.List {
			list.Domains++
			if isIDN {
				list.IDNs++
			}
		}
	})
	return [3]ListStats{zone, list, union}
}
