// Package registry generates the synthetic .com registry that stands in
// for the Verisign zone file and domainlists.io feeds of the paper's
// Section 5. The generator is fully deterministic (seeded) and embeds
// ground truth for every homograph it injects — which reference it
// imitates, which homoglyph database its substitutions come from,
// whether it resolves, which ports it answers on, what category of
// website it hosts, and which blacklists know about it — so every
// downstream experiment (Tables 6 through 14, Section 6.4) can be
// regenerated and checked against the paper's magnitudes.
//
// Scaling model ("homograph-dense sampling"): the benign corpus scales
// with Options.Scale, but homograph counts stay at the paper's absolute
// values, because Tables 8–14 report absolute counts whose magnitude is
// the phenomenon under study. This is documented in DESIGN.md §1.
package registry

import "repro/internal/langid"

// LangShare is one language's share of the benign IDN population.
type LangShare struct {
	Language langid.Language
	Fraction float64
}

// TargetCount pins the number of homographs aimed at one reference
// label (Table 9's top targets).
type TargetCount struct {
	Target string // reference SLD, e.g. "myetherwallet"
	Count  int
}

// ClassCounts splits homographs by which database detects them:
// UCOnly are detectable only via confusables.txt, SimOnly only via
// SimChar, Both via either. The paper's Table 8 (436 UC, 3,110
// SimChar, 3,280 union) decomposes into 170/2,844/266.
type ClassCounts struct {
	UCOnly  int
	SimOnly int
	Both    int
}

// Total is the union count.
func (c ClassCounts) Total() int { return c.UCOnly + c.SimOnly + c.Both }

// CategoryCounts are the Table 12 classes of the port-responsive
// homographs.
type CategoryCounts struct {
	Parked   int
	ForSale  int
	Redirect int
	Normal   int
	Empty    int
	Error    int
}

// Total sums all categories.
func (c CategoryCounts) Total() int {
	return c.Parked + c.ForSale + c.Redirect + c.Normal + c.Empty + c.Error
}

// FeedCounts are one blacklist feed's detections split by homograph
// class (Table 14 rows).
type FeedCounts struct {
	UCOnly  int
	SimOnly int
	Both    int
}

// Total is the union count the paper reports per feed.
func (f FeedCounts) Total() int { return f.UCOnly + f.SimOnly + f.Both }

// Featured pins one specific homograph the paper's Table 11 discusses:
// a designated target, website flavour, resolution count and mail/link
// flags.
type Featured struct {
	Target      string // reference SLD
	Flavor      string // Table 11 category column: Phishing, Portal, Parked, Sale
	Resolutions int64
	MXActive    bool // active MX record
	MXPast      bool // MX existed historically
	WebLink     bool
	SNS         bool
	Cloaking    bool // User-Agent cloaking (the gmail phishing site)
}

// Profile holds every population constant of the synthetic registry at
// paper scale. PaperProfile returns the values from the paper; tests
// use hand-rolled small profiles.
type Profile struct {
	// Table 6.
	TotalDomains    int     // union of zone file and domain list
	IDNFraction     float64 // IDNs / TotalDomains
	ZoneCoverage    float64 // fraction of non-IDN domains in the zone file
	ListCoverage    float64 // fraction of non-IDN domains in domainlists
	ZoneIDNCoverage float64 // fraction of IDNs in the zone file
	ListIDNCoverage float64 // fraction of IDNs in domainlists

	// Table 7.
	LangMix []LangShare

	// Tables 8 and 9.
	Classes    ClassCounts
	TopTargets []TargetCount
	// MaxOtherTarget caps homograph counts for non-pinned targets so
	// the pinned ones stay the top five.
	MaxOtherTarget int

	// Table 10.
	WithNS      int // homographs with NS records
	WithA       int // subset with A records
	Port80Only  int
	Port443Only int
	PortBoth    int

	// Tables 12 and 13.
	Categories        CategoryCounts
	RedirectBrand     int
	RedirectLegit     int
	RedirectMalicious int

	// Table 14. Feeds are keyed by name; GSB and Symantec entries are
	// generated as subsets of hpHosts, matching how commercial feeds
	// overlap community ones.
	HpHosts  FeedCounts
	GSB      FeedCounts
	Symantec FeedCounts

	// Section 6.4: at least this many malicious homographs must target
	// references outside the Alexa top 1k.
	MaliciousNonTop1k int

	// Table 11.
	Featured []Featured
}

// PaperProfile returns the population constants reported in the paper.
func PaperProfile() Profile {
	return Profile{
		TotalDomains:    141_212_035,
		IDNFraction:     955_512.0 / 141_212_035.0,
		ZoneCoverage:    140_900_279.0 / 141_212_035.0,
		ListCoverage:    139_667_014.0 / 141_212_035.0,
		ZoneIDNCoverage: 952_352.0 / 955_512.0,
		ListIDNCoverage: 953_209.0 / 955_512.0,

		LangMix: []LangShare{
			{langid.Chinese, 0.465},
			{langid.Korean, 0.106},
			{langid.Japanese, 0.093},
			{langid.German, 0.056},
			{langid.Turkish, 0.036},
			{langid.French, 0.050},
			{langid.Spanish, 0.048},
			{langid.Russian, 0.046},
			{langid.Arabic, 0.040},
			{langid.Thai, 0.030},
			{langid.Vietnamese, 0.020},
			{langid.English, 0.010},
		},

		Classes: ClassCounts{UCOnly: 170, SimOnly: 2844, Both: 266},
		TopTargets: []TargetCount{
			{"myetherwallet", 170},
			{"google", 114},
			{"amazon", 75},
			{"facebook", 72},
			{"allstate", 68},
		},
		MaxOtherTarget: 50,

		WithNS:      2294,
		WithA:       1909,
		Port80Only:  947,
		Port443Only: 5,
		PortBoth:    695,

		Categories: CategoryCounts{
			Parked: 348, ForSale: 345, Redirect: 338,
			Normal: 281, Empty: 222, Error: 113,
		},
		RedirectBrand:     178,
		RedirectLegit:     125,
		RedirectMalicious: 35,

		HpHosts:  FeedCounts{UCOnly: 20, SimOnly: 214, Both: 8},
		GSB:      FeedCounts{UCOnly: 1, SimOnly: 11, Both: 1},
		Symantec: FeedCounts{UCOnly: 1, SimOnly: 7, Both: 0},

		MaliciousNonTop1k: 91,

		Featured: []Featured{
			{Target: "gmail", Flavor: "Phishing", Resolutions: 615_447, MXPast: true, WebLink: true, Cloaking: true},
			{Target: "doviz", Flavor: "Portal", Resolutions: 127_417, MXActive: true, SNS: true},
			{Target: "gmail", Flavor: "Parked", Resolutions: 74_699, MXPast: true},
			{Target: "gmail", Flavor: "Parked", Resolutions: 63_233, WebLink: true},
			{Target: "expansion", Flavor: "Parked", Resolutions: 56_918, MXPast: true, WebLink: true},
			{Target: "gmail", Flavor: "Parked", Resolutions: 49_248, SNS: true},
			{Target: "yahoo", Flavor: "Parked", Resolutions: 44_368, MXPast: true},
			{Target: "shadbase", Flavor: "Parked", Resolutions: 38_556, WebLink: true},
			{Target: "youtube", Flavor: "Sale", Resolutions: 37_713, SNS: true},
			{Target: "peru", Flavor: "Parked", Resolutions: 36_405, WebLink: true},
		},
	}
}

// Validate checks the internal consistency every generator run relies
// on: port splits must sum to the category total, category totals must
// not exceed the A-record population, and so on.
func (p Profile) Validate() error {
	active := p.Port80Only + p.Port443Only + p.PortBoth
	switch {
	case p.Classes.Total() == 0:
		return errf("profile has no homographs")
	case p.WithNS > p.Classes.Total():
		return errf("WithNS %d exceeds homograph count %d", p.WithNS, p.Classes.Total())
	case p.WithA > p.WithNS:
		return errf("WithA %d exceeds WithNS %d", p.WithA, p.WithNS)
	case active > p.WithA:
		return errf("active %d exceeds WithA %d", active, p.WithA)
	case p.Categories.Total() != active:
		return errf("categories total %d != active %d", p.Categories.Total(), active)
	case p.RedirectBrand+p.RedirectLegit+p.RedirectMalicious != p.Categories.Redirect:
		return errf("redirect breakdown %d != redirect count %d",
			p.RedirectBrand+p.RedirectLegit+p.RedirectMalicious, p.Categories.Redirect)
	case p.HpHosts.Total() > p.Classes.Total():
		return errf("hpHosts entries exceed homograph count")
	case p.GSB.Total() > p.HpHosts.Total() || p.Symantec.Total() > p.HpHosts.Total():
		return errf("commercial feeds must be subsets of hpHosts")
	}
	pinned := 0
	for _, t := range p.TopTargets {
		pinned += t.Count
	}
	for _, f := range p.Featured {
		pinned++
		_ = f
	}
	if pinned > p.Classes.Total() {
		return errf("pinned targets %d exceed homograph count %d", pinned, p.Classes.Total())
	}
	return nil
}

func errf(format string, args ...interface{}) error {
	return &ProfileError{msg: sprintf(format, args...)}
}

// ProfileError reports an inconsistent Profile.
type ProfileError struct{ msg string }

func (e *ProfileError) Error() string { return "registry: " + e.msg }
