package registry

import "fmt"

func sprintf(format string, args ...interface{}) string {
	return fmt.Sprintf(format, args...)
}

// PairClass says which homoglyph database can vouch for every
// substituted character of a homograph.
type PairClass uint8

// Pair classes.
const (
	ClassUCOnly PairClass = iota
	ClassSimOnly
	ClassBoth
)

// String names the class.
func (c PairClass) String() string {
	switch c {
	case ClassUCOnly:
		return "UC-only"
	case ClassSimOnly:
		return "SimChar-only"
	case ClassBoth:
		return "both"
	}
	return "unknown"
}

// Category is the Table 12 website class of an active homograph.
type Category uint8

// Website categories.
const (
	CatNone Category = iota // not active (no open port)
	CatParked
	CatForSale
	CatRedirect
	CatNormal
	CatEmpty
	CatError
)

var categoryNames = [...]string{
	"none", "parked", "forsale", "redirect", "normal", "empty", "error",
}

// String names the category.
func (c Category) String() string {
	if int(c) < len(categoryNames) {
		return categoryNames[c]
	}
	return "invalid"
}

// RedirectKind is the Table 13 breakdown of redirecting homographs.
type RedirectKind uint8

// Redirect kinds.
const (
	RedirNone RedirectKind = iota
	RedirBrandProtection
	RedirLegitimate
	RedirMalicious
)

// String names the redirect kind.
func (r RedirectKind) String() string {
	switch r {
	case RedirNone:
		return "none"
	case RedirBrandProtection:
		return "brand-protection"
	case RedirLegitimate:
		return "legitimate"
	case RedirMalicious:
		return "malicious"
	}
	return "invalid"
}

// Blacklists is a bitmask of the feeds that list a domain.
type Blacklists uint8

// Feed bits.
const (
	BLHpHosts Blacklists = 1 << iota
	BLGSB
	BLSymantec
)

// Has reports whether the mask includes feed.
func (b Blacklists) Has(feed Blacklists) bool { return b&feed != 0 }

// Homograph is one injected IDN homograph with its full ground truth.
type Homograph struct {
	ASCII   string // registered form, e.g. "xn--ggle-0nda.com"
	Unicode string // display form, e.g. "göögle.com"
	Label   string // unicode SLD only

	Target string    // reference SLD this imitates
	Class  PairClass // which DB detects it
	Subs   int       // number of substituted characters

	HasNS   bool
	HasA    bool
	Port80  bool
	Port443 bool

	Category Category
	Redirect RedirectKind
	// RedirectTarget is the registrable domain a CatRedirect site
	// points at ("gmail.com" for brand protection).
	RedirectTarget string

	Blacklist   Blacklists
	Resolutions int64
	Flavor      string // Table 11 display category; "" for non-featured
	MXActive    bool
	MXPast      bool
	WebLink     bool
	SNS         bool
	Cloaking    bool
}

// Active reports whether the homograph answers on at least one port —
// the paper's Table 10 "unique" row membership.
func (h *Homograph) Active() bool { return h.Port80 || h.Port443 }

// Malicious reports whether the domain is flagged by any blacklist or
// hosts a malicious redirect.
func (h *Homograph) Malicious() bool {
	return h.Blacklist != 0 || h.Redirect == RedirMalicious
}

// BenignIDN is a non-homograph IDN registration with its generation
// language (ground truth for Table 7).
type BenignIDN struct {
	ASCII    string // xn-- form with .com
	Label    string // unicode SLD
	Language string // ISO code of the pool that generated it
}
