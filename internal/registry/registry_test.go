package registry

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"repro/internal/confusables"
	"repro/internal/fontgen"
	"repro/internal/homoglyph"
	"repro/internal/punycode"
	"repro/internal/simchar"
	"repro/internal/ucd"
)

var (
	dbOnce sync.Once
	dbVal  *homoglyph.DB

	regOnce sync.Once
	regVal  *Registry
	regErr  error
)

func testDB(t testing.TB) *homoglyph.DB {
	t.Helper()
	dbOnce.Do(func() {
		font := fontgen.Generate(fontgen.Options{SkipCJK: true, SkipHangul: true})
		sim, _ := simchar.Build(font, ucd.IDNASet(), simchar.Options{})
		dbVal = homoglyph.New(confusables.Default(), sim, 0)
	})
	return dbVal
}

// paperRegistry generates the full paper-profile registry once (tiny
// benign scale) and shares it across tests.
func paperRegistry(t testing.TB) *Registry {
	t.Helper()
	regOnce.Do(func() {
		regVal, regErr = Generate(Options{Seed: 7, Scale: 0.0001, DB: testDB(t)})
	})
	if regErr != nil {
		t.Fatalf("Generate: %v", regErr)
	}
	return regVal
}

func TestGenerateRequiresDB(t *testing.T) {
	if _, err := Generate(Options{}); err == nil {
		t.Fatal("Generate without DB succeeded")
	}
}

func TestProfileValidate(t *testing.T) {
	good := PaperProfile()
	if err := good.Validate(); err != nil {
		t.Fatalf("paper profile invalid: %v", err)
	}
	bad := PaperProfile()
	bad.WithA = bad.WithNS + 1
	if err := bad.Validate(); err == nil {
		t.Error("WithA > WithNS accepted")
	}
	bad2 := PaperProfile()
	bad2.Categories.Parked++
	if err := bad2.Validate(); err == nil {
		t.Error("category/active mismatch accepted")
	}
	bad3 := PaperProfile()
	bad3.RedirectBrand++
	if err := bad3.Validate(); err == nil {
		t.Error("redirect breakdown mismatch accepted")
	}
}

func TestHomographClassCounts(t *testing.T) {
	r := paperRegistry(t)
	want := r.Profile.Classes
	var got ClassCounts
	for i := range r.Homographs {
		switch r.Homographs[i].Class {
		case ClassUCOnly:
			got.UCOnly++
		case ClassSimOnly:
			got.SimOnly++
		case ClassBoth:
			got.Both++
		}
	}
	if got != want {
		t.Errorf("class counts = %+v, want %+v", got, want)
	}
	if got.Total() != 3280 {
		t.Errorf("total homographs = %d, want 3280", got.Total())
	}
}

func TestHomographsUniqueAndWellFormed(t *testing.T) {
	r := paperRegistry(t)
	seen := make(map[string]bool)
	for i := range r.Homographs {
		h := &r.Homographs[i]
		if seen[h.ASCII] {
			t.Fatalf("duplicate homograph %q", h.ASCII)
		}
		seen[h.ASCII] = true
		if !strings.HasPrefix(h.ASCII, "xn--") {
			t.Errorf("%q is not an ACE domain", h.ASCII)
		}
		if !strings.HasSuffix(h.ASCII, ".com") {
			t.Errorf("%q lacks .com", h.ASCII)
		}
		uni, err := punycode.ToUnicode(h.ASCII)
		if err != nil {
			t.Errorf("ToUnicode(%q): %v", h.ASCII, err)
			continue
		}
		if uni != h.Unicode {
			t.Errorf("unicode mismatch: %q decodes to %q, recorded %q", h.ASCII, uni, h.Unicode)
		}
		if len([]rune(h.Label)) != len(h.Target) {
			t.Errorf("%q: label %q and target %q lengths differ", h.ASCII, h.Label, h.Target)
		}
		if h.Subs < 1 || h.Subs > 2 {
			t.Errorf("%q has %d substitutions", h.ASCII, h.Subs)
		}
	}
}

func TestTopTargetsPinned(t *testing.T) {
	r := paperRegistry(t)
	counts := make(map[string]int)
	for i := range r.Homographs {
		counts[r.Homographs[i].Target]++
	}
	for _, tc := range r.Profile.TopTargets {
		// Featured homographs may add to a pinned target (gmail etc.
		// are not in the top-5 list), so pinned counts are exact.
		want := tc.Count
		for _, f := range r.Profile.Featured {
			if f.Target == tc.Target {
				want++
			}
		}
		if counts[tc.Target] != want {
			t.Errorf("target %s has %d homographs, want %d", tc.Target, counts[tc.Target], want)
		}
	}
	// No unpinned target may exceed the cap.
	pinned := make(map[string]bool)
	for _, tc := range r.Profile.TopTargets {
		pinned[tc.Target] = true
	}
	for _, f := range r.Profile.Featured {
		pinned[f.Target] = true
	}
	for target, n := range counts {
		if !pinned[target] && n > r.Profile.MaxOtherTarget {
			t.Errorf("unpinned target %s has %d homographs (cap %d)", target, n, r.Profile.MaxOtherTarget)
		}
	}
}

func TestActivityCounts(t *testing.T) {
	r := paperRegistry(t)
	ns, a, p80only, p443only, both, active := 0, 0, 0, 0, 0, 0
	for i := range r.Homographs {
		h := &r.Homographs[i]
		if h.HasNS {
			ns++
		}
		if h.HasA {
			a++
		}
		if h.HasA && !h.HasNS {
			t.Errorf("%q has A without NS", h.ASCII)
		}
		if h.Active() && !h.HasA {
			t.Errorf("%q has open port without A", h.ASCII)
		}
		switch {
		case h.Port80 && h.Port443:
			both++
		case h.Port80:
			p80only++
		case h.Port443:
			p443only++
		}
		if h.Active() {
			active++
		}
	}
	p := r.Profile
	if ns != p.WithNS || a != p.WithA {
		t.Errorf("NS/A = %d/%d, want %d/%d", ns, a, p.WithNS, p.WithA)
	}
	if both != p.PortBoth || p80only != p.Port80Only || p443only != p.Port443Only {
		t.Errorf("ports = both %d, 80 %d, 443 %d; want %d/%d/%d",
			both, p80only, p443only, p.PortBoth, p.Port80Only, p.Port443Only)
	}
	if active != 1647 {
		t.Errorf("active = %d, want 1647", active)
	}
}

func TestCategoryCounts(t *testing.T) {
	r := paperRegistry(t)
	var got CategoryCounts
	redir := map[RedirectKind]int{}
	for i := range r.Homographs {
		h := &r.Homographs[i]
		if !h.Active() {
			if h.Category != CatNone {
				t.Errorf("inactive %q has category %s", h.ASCII, h.Category)
			}
			continue
		}
		switch h.Category {
		case CatParked:
			got.Parked++
		case CatForSale:
			got.ForSale++
		case CatRedirect:
			got.Redirect++
			redir[h.Redirect]++
			if h.RedirectTarget == "" {
				t.Errorf("redirect %q has no target", h.ASCII)
			}
		case CatNormal:
			got.Normal++
		case CatEmpty:
			got.Empty++
		case CatError:
			got.Error++
		default:
			t.Errorf("active %q has no category", h.ASCII)
		}
	}
	if got != r.Profile.Categories {
		t.Errorf("categories = %+v, want %+v", got, r.Profile.Categories)
	}
	if redir[RedirBrandProtection] != r.Profile.RedirectBrand ||
		redir[RedirLegitimate] != r.Profile.RedirectLegit ||
		redir[RedirMalicious] != r.Profile.RedirectMalicious {
		t.Errorf("redirect kinds = %v", redir)
	}
}

func TestBrandProtectionPointsAtOriginal(t *testing.T) {
	r := paperRegistry(t)
	for i := range r.Homographs {
		h := &r.Homographs[i]
		if h.Redirect == RedirBrandProtection && h.RedirectTarget != h.Target+".com" {
			t.Errorf("%q brand-protect target = %q, want %q", h.ASCII, h.RedirectTarget, h.Target+".com")
		}
	}
}

func TestBlacklistCounts(t *testing.T) {
	r := paperRegistry(t)
	count := func(feed Blacklists) (uc, sim, both int) {
		for i := range r.Homographs {
			h := &r.Homographs[i]
			if !h.Blacklist.Has(feed) {
				continue
			}
			switch h.Class {
			case ClassUCOnly:
				uc++
			case ClassSimOnly:
				sim++
			case ClassBoth:
				both++
			}
		}
		return
	}
	uc, sim, both := count(BLHpHosts)
	if got := (FeedCounts{uc, sim, both}); got != r.Profile.HpHosts {
		t.Errorf("hpHosts = %+v, want %+v", got, r.Profile.HpHosts)
	}
	uc, sim, both = count(BLGSB)
	if got := (FeedCounts{uc, sim, both}); got != r.Profile.GSB {
		t.Errorf("GSB = %+v, want %+v", got, r.Profile.GSB)
	}
	uc, sim, both = count(BLSymantec)
	if got := (FeedCounts{uc, sim, both}); got != r.Profile.Symantec {
		t.Errorf("Symantec = %+v, want %+v", got, r.Profile.Symantec)
	}
	// Commercial feeds are subsets of hpHosts.
	for i := range r.Homographs {
		h := &r.Homographs[i]
		if (h.Blacklist.Has(BLGSB) || h.Blacklist.Has(BLSymantec)) && !h.Blacklist.Has(BLHpHosts) {
			t.Errorf("%q in commercial feed but not hpHosts", h.ASCII)
		}
	}
}

func TestMaliciousNonTop1k(t *testing.T) {
	r := paperRegistry(t)
	n := 0
	for i := range r.Homographs {
		h := &r.Homographs[i]
		if !h.Malicious() {
			continue
		}
		rank := r.Refs.Rank(h.Target + ".com")
		if rank == 0 || rank > 1000 {
			n++
		}
	}
	if n < r.Profile.MaliciousNonTop1k {
		t.Errorf("malicious homographs of non-top-1k originals = %d, want >= %d",
			n, r.Profile.MaliciousNonTop1k)
	}
}

func TestFeaturedAssigned(t *testing.T) {
	r := paperRegistry(t)
	var featured []*Homograph
	for i := range r.Homographs {
		if r.Homographs[i].Flavor != "" {
			featured = append(featured, &r.Homographs[i])
		}
	}
	if len(featured) != len(r.Profile.Featured) {
		t.Fatalf("featured = %d, want %d", len(featured), len(r.Profile.Featured))
	}
	// Featured resolutions strictly dominate the long tail.
	minFeatured := featured[0].Resolutions
	for _, h := range featured {
		if h.Resolutions < minFeatured {
			minFeatured = h.Resolutions
		}
		if !h.Active() || !h.HasNS || !h.HasA {
			t.Errorf("featured %q is not fully active", h.ASCII)
		}
	}
	for i := range r.Homographs {
		h := &r.Homographs[i]
		if h.Flavor == "" && h.Resolutions >= minFeatured {
			t.Errorf("tail homograph %q has %d resolutions >= featured floor %d",
				h.ASCII, h.Resolutions, minFeatured)
		}
	}
	// One featured homograph is the cloaking phishing site.
	cloaking := 0
	for _, h := range featured {
		if h.Cloaking {
			cloaking++
		}
	}
	if cloaking != 1 {
		t.Errorf("cloaking featured = %d, want 1", cloaking)
	}
}

func TestBenignIDNLanguageMix(t *testing.T) {
	r := paperRegistry(t)
	if len(r.BenignIDNs) == 0 {
		t.Skip("scale too small for benign IDNs")
	}
	counts := make(map[string]int)
	for _, d := range r.BenignIDNs {
		counts[d.Language]++
	}
	if counts["zh"] <= counts["ko"] || counts["ko"] < counts["ja"] {
		t.Errorf("language mix out of order: %v", counts)
	}
}

func TestTableSixShape(t *testing.T) {
	r := paperRegistry(t)
	rows := r.TableSix()
	zone, list, union := rows[0], rows[1], rows[2]
	if union.Domains != r.TotalDomains() {
		t.Errorf("union domains = %d, want %d", union.Domains, r.TotalDomains())
	}
	if zone.Domains >= union.Domains || list.Domains >= union.Domains {
		t.Errorf("zone %d / list %d must be < union %d", zone.Domains, list.Domains, union.Domains)
	}
	frac := float64(union.IDNs) / float64(union.Domains)
	if frac < 0.002 || frac > 0.2 {
		t.Errorf("IDN fraction = %f, out of plausible range", frac)
	}
}

func TestMembershipDeterministic(t *testing.T) {
	r := paperRegistry(t)
	m1 := r.MembershipOf("example.com", false)
	m2 := r.MembershipOf("example.com", false)
	if m1 != m2 {
		t.Error("membership not deterministic")
	}
	if !m1.Zone && !m1.List {
		t.Error("domain in neither list")
	}
}

func TestHomographLookup(t *testing.T) {
	r := paperRegistry(t)
	h := &r.Homographs[0]
	got, ok := r.Homograph(h.ASCII)
	if !ok || got != h {
		t.Errorf("Homograph(%q) = %v, %t", h.ASCII, got, ok)
	}
	if _, ok := r.Homograph("innocent.com"); ok {
		t.Error("benign domain reported as homograph")
	}
}

func TestBuildProbeZone(t *testing.T) {
	r := paperRegistry(t)
	z := r.BuildProbeZone(10)
	if z.Origin != "com." {
		t.Errorf("origin = %q", z.Origin)
	}
	// Every NS-having homograph appears exactly once as an NS record.
	nsOwners := make(map[string]int)
	for _, rec := range z.Records {
		if rec.Data.Type().String() == "NS" && rec.Name != "com." {
			nsOwners[strings.TrimSuffix(rec.Name, ".")]++
		}
	}
	wantNS := r.Profile.WithNS + 10 // + benign sample
	if len(nsOwners) != wantNS {
		t.Errorf("NS owners = %d, want %d", len(nsOwners), wantNS)
	}
}

func TestWriteOutputsNonEmpty(t *testing.T) {
	r := paperRegistry(t)
	var zf, dl bytes.Buffer
	if err := r.WriteZoneFile(&zf); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteDomainList(&dl); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(zf.String(), "$ORIGIN com.") {
		t.Error("zone file missing $ORIGIN")
	}
	if !strings.Contains(dl.String(), "xn--") {
		t.Error("domain list contains no IDNs")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	db := testDB(t)
	small := PaperProfile()
	a, err := Generate(Options{Seed: 11, Scale: 0.00001, DB: db, Profile: &small})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Options{Seed: 11, Scale: 0.00001, DB: db, Profile: &small})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Homographs) != len(b.Homographs) {
		t.Fatal("homograph counts differ")
	}
	for i := range a.Homographs {
		if a.Homographs[i] != b.Homographs[i] {
			t.Fatalf("homograph %d differs:\n%+v\n%+v", i, a.Homographs[i], b.Homographs[i])
		}
	}
}

func TestIDNsAndLabels(t *testing.T) {
	r := paperRegistry(t)
	idns := r.IDNs()
	labels := r.IDNLabels()
	if len(idns) != len(labels) {
		t.Fatalf("IDNs %d != labels %d", len(idns), len(labels))
	}
	if len(idns) < len(r.Homographs) {
		t.Errorf("IDNs = %d < homographs %d", len(idns), len(r.Homographs))
	}
	for _, d := range idns[:10] {
		if !strings.HasPrefix(d, "xn--") && !strings.Contains(d, ".xn--") {
			t.Errorf("IDN %q has no ACE label", d)
		}
	}
}
