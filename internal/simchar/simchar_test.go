package simchar

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/fontgen"
	"repro/internal/hexfont"
	"repro/internal/ucd"
)

// tinyFont builds a font with controlled relationships:
//
//	'a'(0x61) and 0x100: identical (Δ=0)
//	0x101: 3 pixels away from 'a'
//	0x102: far from everything
//	0x103: sparse (4 px), 1 pixel from another sparse char 0x104
func tinyFont() *hexfont.Font {
	f := hexfont.New()
	base := &hexfont.Glyph{Width: 8}
	for i := 4; i < 12; i++ {
		for j := 1; j < 5; j++ {
			base.Set(i, j)
		}
	}
	f.SetGlyph('a', base)
	f.SetGlyph(0x100, base.Clone())
	near := base.Clone()
	near.Flip(13, 1)
	near.Flip(13, 2)
	near.Flip(13, 3)
	f.SetGlyph(0x101, near)
	far := &hexfont.Glyph{Width: 8}
	for i := 2; i < 14; i++ {
		far.Set(i, 6)
		far.Set(i, 7)
	}
	f.SetGlyph(0x102, far)
	sparse := &hexfont.Glyph{Width: 8}
	sparse.Set(0, 0)
	sparse.Set(1, 1)
	sparse.Set(2, 2)
	sparse.Set(3, 3)
	f.SetGlyph(0x103, sparse)
	sparse2 := sparse.Clone()
	sparse2.Flip(4, 4)
	f.SetGlyph(0x104, sparse2)
	return f
}

func TestBuildTinyFont(t *testing.T) {
	db, tm := Build(tinyFont(), nil, Options{})
	if !db.Confusable('a', 0x100) {
		t.Error("identical glyphs must be confusable")
	}
	if !db.Confusable('a', 0x101) || !db.Confusable(0x100, 0x101) {
		t.Error("Δ=3 pair must be confusable")
	}
	if db.Confusable('a', 0x102) {
		t.Error("far glyphs must not be confusable")
	}
	if db.Confusable(0x103, 0x104) {
		t.Error("sparse characters must be eliminated (Step III)")
	}
	if db.NumPairs() != 3 { // (a,100) (a,101) (100,101)
		t.Errorf("NumPairs = %d, want 3", db.NumPairs())
	}
	if db.Chars().Len() != 3 {
		t.Errorf("Chars = %d, want 3", db.Chars().Len())
	}
	if tm.RasterizeImages < 0 || tm.ComputePairwise < 0 {
		t.Error("timings must be non-negative")
	}
}

func TestDeltaValuesRecorded(t *testing.T) {
	db, _ := Build(tinyFont(), nil, Options{})
	for _, p := range db.Pairs() {
		switch {
		case p.A == 'a' && p.B == 0x100:
			if p.Delta != 0 {
				t.Errorf("twin pair Δ=%d, want 0", p.Delta)
			}
		case p.B == 0x101:
			if p.Delta != 3 {
				t.Errorf("near pair Δ=%d, want 3", p.Delta)
			}
		}
	}
}

func TestPermittedSetRestriction(t *testing.T) {
	permitted := ucd.NewRuneSet('a', 0x101) // exclude the identical twin 0x100
	db, _ := Build(tinyFont(), permitted, Options{})
	if db.Confusable('a', 0x100) {
		t.Error("excluded code point must not appear")
	}
	if !db.Confusable('a', 0x101) {
		t.Error("permitted pair must appear")
	}
}

func TestThresholdOption(t *testing.T) {
	db, _ := Build(tinyFont(), nil, Options{Threshold: 2})
	if db.Confusable('a', 0x101) {
		t.Error("Δ=3 pair must be excluded at θ=2")
	}
	if !db.Confusable('a', 0x100) {
		t.Error("Δ=0 pair must remain at θ=2")
	}
}

func TestHomoglyphsListing(t *testing.T) {
	db, _ := Build(tinyFont(), nil, Options{})
	hs := db.Homoglyphs('a')
	if len(hs) != 2 || hs[0] != 0x100 || hs[1] != 0x101 {
		t.Fatalf("Homoglyphs(a) = %U", hs)
	}
	if got := db.Homoglyphs(0x7FFF); len(got) != 0 {
		t.Fatalf("Homoglyphs(unknown) = %U", got)
	}
}

func canonical(ps []Pair) []Pair {
	out := make([]Pair, len(ps))
	copy(out, ps)
	return out
}

// The banded pigeonhole index must find exactly the same pairs as the
// naive O(n²) scan — the central exactness property of the optimization.
func TestBandedMatchesNaive(t *testing.T) {
	font := fontgen.Generate(fontgen.Options{SkipCJK: true, SkipHangul: true})
	idna := ucd.IDNASet()
	banded, _ := Build(font, idna, Options{})
	naive, _ := Build(font, idna, Options{Naive: true})
	if !reflect.DeepEqual(canonical(banded.Pairs()), canonical(naive.Pairs())) {
		t.Fatalf("banded (%d pairs) and naive (%d pairs) disagree",
			banded.NumPairs(), naive.NumPairs())
	}
	if banded.NumPairs() == 0 {
		t.Fatal("mid-size font should produce pairs")
	}
}

func TestPrefilterAblationEquivalent(t *testing.T) {
	font := fontgen.Generate(fontgen.Options{LatinOnly: true})
	with, _ := Build(font, nil, Options{})
	without, _ := Build(font, nil, Options{NoPrefilter: true})
	if !reflect.DeepEqual(canonical(with.Pairs()), canonical(without.Pairs())) {
		t.Fatal("popcount prefilter changed results")
	}
}

func TestKnownStructureFromFont(t *testing.T) {
	font := fontgen.Generate(fontgen.Options{SkipCJK: true, SkipHangul: true})
	db, _ := Build(font, ucd.IDNASet(), Options{})
	cases := []struct {
		a, b rune
		want bool
	}{
		{'o', 0x043E, true},  // Cyrillic о twin
		{'o', 0x0585, true},  // Armenian օ twin
		{'o', 0x0ED0, true},  // Lao zero (Figure 12)
		{'e', 0x00E9, true},  // é at Δ=3
		{'e', 0x0435, true},  // Cyrillic е twin
		{'e', 0x00EA, false}, // ê at Δ=5: beyond threshold
		{'a', 0x00E5, false}, // å ring costs 6
		{'o', 'e', false},
		{'a', 'b', false},
	}
	for _, c := range cases {
		if got := db.Confusable(c.a, c.b); got != c.want {
			t.Errorf("Confusable(%#U, %#U) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
	// 'o' must have the most homoglyphs among Latin letters (Table 3).
	oCount := len(db.Homoglyphs('o'))
	for r := 'a'; r <= 'z'; r++ {
		if r == 'o' {
			continue
		}
		if n := len(db.Homoglyphs(r)); n > oCount {
			t.Errorf("letter %q has %d homoglyphs > o's %d", r, n, oCount)
		}
	}
}

func TestSparseEliminationMatchesPostFilter(t *testing.T) {
	// Pre-filtering sparse glyphs must equal the paper's post-filter:
	// build with MinPixels=1 (no filtering) and drop pairs involving
	// sparse characters afterwards; compare with the built-in filter.
	font := fontgen.Generate(fontgen.Options{LatinOnly: true})
	filtered, _ := Build(font, nil, Options{})
	unfiltered, _ := Build(font, nil, Options{MinPixels: 1})
	var post []Pair
	for _, p := range unfiltered.Pairs() {
		ga, _ := font.Glyph(p.A)
		gb, _ := font.Glyph(p.B)
		if ga.Rasterize().PixelCount() >= DefaultMinPixels &&
			gb.Rasterize().PixelCount() >= DefaultMinPixels {
			post = append(post, p)
		}
	}
	if !reflect.DeepEqual(canonical(filtered.Pairs()), canonical(post)) {
		t.Fatalf("pre-filter (%d) != post-filter (%d)", filtered.NumPairs(), len(post))
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	db, _ := Build(tinyFont(), nil, Options{})
	var buf bytes.Buffer
	if err := db.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(canonical(db.Pairs()), canonical(back.Pairs())) {
		t.Fatal("round-trip mismatch")
	}
}

func TestReadErrors(t *testing.T) {
	bad := []string{
		"0061\n",
		"ZZZZ 0062 0\n",
		"0061 ZZZZ 0\n",
		"0061 0062 x\n",
	}
	for _, in := range bad {
		if _, err := Read(bytes.NewReader([]byte(in))); err == nil {
			t.Errorf("Read(%q) should fail", in)
		}
	}
}

func TestComparisonsSaved(t *testing.T) {
	font := fontgen.Generate(fontgen.Options{SkipCJK: true, SkipHangul: true})
	_, tm := Build(font, ucd.IDNASet(), Options{})
	if tm.ComparisonsSaved <= 0 {
		t.Errorf("banded index should skip comparisons; saved=%d candidates=%d",
			tm.ComparisonsSaved, tm.CandidatePairs)
	}
}

func BenchmarkBuildMidFont(b *testing.B) {
	font := fontgen.Generate(fontgen.Options{SkipCJK: true, SkipHangul: true})
	idna := ucd.IDNASet()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(font, idna, Options{})
	}
}
