package simchar

import "sort"

// Merge unites SimChar databases built from different fonts — the
// paper's Section 7.1 extension ("it would be straightforward to
// extend our evaluation to other font families"). A pair confusable
// under any font is confusable in the union; when several fonts list
// the same pair, the smallest Δ is kept, since an attacker gets to
// pick the victim's rendering.
func Merge(dbs ...*DB) *DB {
	best := make(map[[2]rune]int)
	for _, db := range dbs {
		if db == nil {
			continue
		}
		for _, p := range db.pairs {
			key := [2]rune{p.A, p.B}
			if d, ok := best[key]; !ok || p.Delta < d {
				best[key] = p.Delta
			}
		}
	}
	pairs := make([]Pair, 0, len(best))
	for key, d := range best {
		pairs = append(pairs, Pair{A: key[0], B: key[1], Delta: d})
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].A != pairs[j].A {
			return pairs[i].A < pairs[j].A
		}
		return pairs[i].B < pairs[j].B
	})
	return fromPairs(pairs)
}

// Diff reports the pairs present in a but absent from b — what one
// font finds that another misses.
func Diff(a, b *DB) []Pair {
	var out []Pair
	for _, p := range a.pairs {
		if !b.Confusable(p.A, p.B) {
			out = append(out, p)
		}
	}
	return out
}
