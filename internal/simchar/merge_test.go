package simchar

import (
	"testing"

	"repro/internal/fontgen"
	"repro/internal/ucd"
)

func TestMergeKeepsMinimumDelta(t *testing.T) {
	a := fromPairs([]Pair{{A: 'a', B: 0x100, Delta: 3}, {A: 'b', B: 0x101, Delta: 2}})
	b := fromPairs([]Pair{{A: 'a', B: 0x100, Delta: 1}, {A: 'c', B: 0x102, Delta: 4}})
	m := Merge(a, b)
	if m.NumPairs() != 3 {
		t.Fatalf("merged pairs = %d", m.NumPairs())
	}
	for _, p := range m.Pairs() {
		if p.A == 'a' && p.Delta != 1 {
			t.Errorf("merged delta for a/U+0100 = %d, want min 1", p.Delta)
		}
	}
	if !m.Confusable('b', 0x101) || !m.Confusable('c', 0x102) {
		t.Error("merge lost pairs")
	}
}

func TestMergeNilAndEmpty(t *testing.T) {
	a := fromPairs([]Pair{{A: 'a', B: 0x100, Delta: 0}})
	m := Merge(nil, a, fromPairs(nil))
	if m.NumPairs() != 1 {
		t.Errorf("pairs = %d", m.NumPairs())
	}
	if Merge().NumPairs() != 0 {
		t.Error("empty merge not empty")
	}
}

func TestMergeDeterministicOrder(t *testing.T) {
	a := fromPairs([]Pair{{A: 'z', B: 0x200, Delta: 1}, {A: 'a', B: 0x100, Delta: 1}})
	b := fromPairs([]Pair{{A: 'm', B: 0x150, Delta: 1}})
	m1 := Merge(a, b)
	m2 := Merge(b, a)
	p1, p2 := m1.Pairs(), m2.Pairs()
	if len(p1) != len(p2) {
		t.Fatal("merge order changed pair count")
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("merge not order-independent: %v vs %v", p1[i], p2[i])
		}
	}
}

func TestDiff(t *testing.T) {
	a := fromPairs([]Pair{{A: 'a', B: 0x100, Delta: 1}, {A: 'b', B: 0x101, Delta: 1}})
	b := fromPairs([]Pair{{A: 'a', B: 0x100, Delta: 3}})
	d := Diff(a, b)
	if len(d) != 1 || d[0].A != 'b' {
		t.Errorf("Diff = %v", d)
	}
	if got := Diff(b, a); len(got) != 0 {
		t.Errorf("reverse Diff = %v", got)
	}
}

// TestMultiFontUnionGrowsCoverage is the Section 7.1 experiment in
// miniature: SimChar over two font styles finds pairs neither style
// finds alone, while the curated (style-invariant) pairs survive in
// both.
func TestMultiFontUnionGrowsCoverage(t *testing.T) {
	idna := ucd.IDNASet()
	fontA := fontgen.Generate(fontgen.Options{SkipCJK: true, SkipHangul: true})
	fontB := fontgen.Generate(fontgen.Options{SkipCJK: true, SkipHangul: true, StyleSeed: 99})
	dbA, _ := Build(fontA, idna, Options{})
	dbB, _ := Build(fontB, idna, Options{})
	union := Merge(dbA, dbB)

	if union.NumPairs() < dbA.NumPairs() || union.NumPairs() < dbB.NumPairs() {
		t.Fatalf("union %d smaller than a component (%d, %d)",
			union.NumPairs(), dbA.NumPairs(), dbB.NumPairs())
	}
	// The styles must actually differ: each font contributes pairs
	// the other lacks.
	if len(Diff(dbA, dbB)) == 0 || len(Diff(dbB, dbA)) == 0 {
		t.Error("font styles produced identical databases")
	}
	// Style-invariant curated twins survive in both: ı (dotless i)
	// remains near i regardless of style.
	if !dbA.Confusable('i', 0x0131) || !dbB.Confusable('i', 0x0131) {
		t.Error("curated variant lost under a style change")
	}
}
