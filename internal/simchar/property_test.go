package simchar

import (
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/hexfont"
	"repro/internal/stats"
)

// randomFont builds a font of n glyphs with pseudo-random pixel
// patterns, some of which are forced into near-pair clusters so the
// threshold actually matters.
func randomFont(seed uint64, n int) *hexfont.Font {
	rng := stats.NewRNG(seed)
	f := hexfont.New()
	var prev *hexfont.Glyph
	for i := 0; i < n; i++ {
		cp := rune(0x3000 + i)
		var g *hexfont.Glyph
		switch {
		case prev != nil && rng.Intn(4) == 0:
			// Derived near-pair: flip 0-6 pixels of the previous glyph.
			g = prev.Clone()
			flips := rng.Intn(7)
			for k := 0; k < flips; k++ {
				g.Flip(rng.Intn(16), rng.Intn(8))
			}
		default:
			g = &hexfont.Glyph{Width: 8}
			pixels := 10 + rng.Intn(30)
			for k := 0; k < pixels; k++ {
				g.Set(rng.Intn(16), rng.Intn(8))
			}
		}
		f.SetGlyph(cp, g)
		prev = g
	}
	return f
}

// TestBandedMatchesNaiveProperty checks index correctness over random
// fonts: the banded pigeonhole prefilter must find exactly the pairs
// the exhaustive scan finds, for several thresholds.
func TestBandedMatchesNaiveProperty(t *testing.T) {
	f := func(seed uint64, rawTheta uint8) bool {
		theta := int(rawTheta%8) + 1
		font := randomFont(seed, 120)
		banded, _ := Build(font, nil, Options{Threshold: theta})
		naive, _ := Build(font, nil, Options{Threshold: theta, Naive: true})
		return reflect.DeepEqual(banded.Pairs(), naive.Pairs())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestPairInvariants checks structural invariants over a random font:
// ordered pairs (A < B), Δ within threshold, symmetry of Confusable,
// and char-set consistency.
func TestPairInvariants(t *testing.T) {
	db, _ := Build(randomFont(42, 200), nil, Options{})
	chars := db.Chars()
	for _, p := range db.Pairs() {
		if p.A >= p.B {
			t.Fatalf("unordered pair %v", p)
		}
		if p.Delta < 0 || p.Delta > DefaultThreshold {
			t.Fatalf("pair %v outside threshold", p)
		}
		if !db.Confusable(p.A, p.B) || !db.Confusable(p.B, p.A) {
			t.Fatalf("pair %v not symmetric in Confusable", p)
		}
		if !chars.Contains(p.A) || !chars.Contains(p.B) {
			t.Fatalf("pair %v chars missing from Chars()", p)
		}
	}
}

// TestMergeIdempotentProperty: merging a database with itself is the
// identity.
func TestMergeIdempotentProperty(t *testing.T) {
	f := func(seed uint64) bool {
		db, _ := Build(randomFont(seed, 80), nil, Options{})
		m := Merge(db, db)
		return reflect.DeepEqual(m.Pairs(), db.Pairs())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
