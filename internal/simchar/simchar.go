// Package simchar builds the SimChar homoglyph database — the paper's key
// technical contribution (Section 3.3). Given a bitmap font and the set of
// IDNA-permitted code points, it rasterizes every covered glyph, finds all
// pairs within the pixel-distance threshold Δ ≤ θ, and eliminates sparse
// characters, yielding an automatically maintained homoglyph database.
package simchar

import (
	"bufio"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/bitmap"
	"repro/internal/hexfont"
	"repro/internal/ucd"
)

// DefaultThreshold is the paper's empirically validated Δ threshold
// (Section 4.1: pairs at Δ=4 score "confusing", Δ=5 "distinct").
const DefaultThreshold = 4

// DefaultMinPixels is the paper's Step III sparse-character cutoff.
const DefaultMinPixels = 10

// Pair is one homoglyph pair with its pixel distance.
type Pair struct {
	A, B  rune // A < B
	Delta int
}

// DB is a built SimChar database: the homoglyph pairs and the set of
// characters participating in at least one pair.
type DB struct {
	pairs   []Pair
	partner map[rune][]rune
}

// Options configures the build.
type Options struct {
	Threshold   int  // Δ cutoff (default 4)
	MinPixels   int  // sparse cutoff (default 10)
	Workers     int  // parallel Δ workers (default GOMAXPROCS)
	Naive       bool // use the O(n²) scan instead of the banded index (ablation)
	NoPrefilter bool // disable the popcount prefilter (ablation)
}

func (o *Options) fill() {
	if o.Threshold == 0 {
		o.Threshold = DefaultThreshold
	}
	if o.MinPixels == 0 {
		o.MinPixels = DefaultMinPixels
	}
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
}

// Timings reports the wall-clock cost of each build stage, the rows of the
// paper's Table 5.
type Timings struct {
	RasterizeImages  time.Duration
	ComputePairwise  time.Duration
	EliminateSparse  time.Duration
	CandidatePairs   int // pairs whose Δ was actually computed
	ComparisonsSaved int // naive pair count minus candidates
}

// Build constructs SimChar from the font restricted to the permitted set
// (the paper uses IDNA ∩ Unifont).
func Build(font *hexfont.Font, permitted *ucd.RuneSet, opt Options) (*DB, Timings) {
	opt.fill()
	var tm Timings

	// Step I: rasterize the permitted, covered glyphs.
	start := time.Now()
	var runes []rune
	for _, r := range font.Runes() {
		if permitted == nil || permitted.Contains(r) {
			runes = append(runes, r)
		}
	}
	images := make([]*bitmap.Image, len(runes))
	pixels := make([]int, len(runes))
	parallelFor(len(runes), opt.Workers, func(i int) {
		g, _ := font.Glyph(runes[i])
		images[i] = g.Rasterize()
		pixels[i] = images[i].PixelCount()
	})
	tm.RasterizeImages = time.Since(start)

	// Step III is applied before the pairwise scan: sparse characters can
	// never appear in the output, so excluding them first is equivalent to
	// the paper's post-filter and shrinks the candidate space. (The
	// equivalence is asserted by tests.)
	start = time.Now()
	keep := make([]int, 0, len(runes))
	for i := range runes {
		if pixels[i] >= opt.MinPixels {
			keep = append(keep, i)
		}
	}
	tm.EliminateSparse = time.Since(start)

	// Step II: pairwise Δ. The banded pigeonhole index is only sound
	// while Bands > Threshold (two images within Δ of each other must
	// share at least one bit-identical band); for larger thresholds
	// fall back to the exhaustive scan rather than silently missing
	// pairs.
	start = time.Now()
	var pairs []Pair
	if opt.Naive || opt.Threshold >= bitmap.Bands {
		pairs, tm.CandidatePairs = naiveScan(runes, images, pixels, keep, opt)
	} else {
		pairs, tm.CandidatePairs = bandedScan(runes, images, pixels, keep, opt)
	}
	tm.ComputePairwise = time.Since(start)
	total := len(keep) * (len(keep) - 1) / 2
	tm.ComparisonsSaved = total - tm.CandidatePairs

	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].A != pairs[j].A {
			return pairs[i].A < pairs[j].A
		}
		return pairs[i].B < pairs[j].B
	})
	return fromPairs(pairs), tm
}

// naiveScan is the paper's literal O(n²) pairwise computation, kept as the
// ablation baseline. The popcount prefilter (|pc(a)−pc(b)| > θ ⇒ Δ > θ)
// can be disabled too, giving the fully naive cost of Table 5.
func naiveScan(runes []rune, images []*bitmap.Image, pixels []int, keep []int, opt Options) ([]Pair, int) {
	type result struct {
		pairs []Pair
		cands int
	}
	results := make([]result, opt.Workers)
	var wg sync.WaitGroup
	for w := 0; w < opt.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var local []Pair
			cands := 0
			for ii := w; ii < len(keep); ii += opt.Workers {
				i := keep[ii]
				for jj := ii + 1; jj < len(keep); jj++ {
					j := keep[jj]
					if !opt.NoPrefilter {
						if d := pixels[i] - pixels[j]; d > opt.Threshold || -d > opt.Threshold {
							continue
						}
					}
					cands++
					if d := bitmap.DeltaCapped(images[i], images[j], opt.Threshold); d <= opt.Threshold {
						local = append(local, orderedPair(runes[i], runes[j], d))
					}
				}
			}
			results[w] = result{local, cands}
		}(w)
	}
	wg.Wait()
	var pairs []Pair
	cands := 0
	for _, r := range results {
		pairs = append(pairs, r.pairs...)
		cands += r.cands
	}
	return pairs, cands
}

// bandedScan finds candidate pairs with the pigeonhole band index: an image
// is split into Bands disjoint row groups; Δ ≤ θ < Bands implies at least
// one group is bit-identical, so hashing each group and comparing only
// within hash buckets finds every qualifying pair while skipping almost all
// of the n² comparisons.
//
// A pair can collide in several bands; exactly one bucket must own the
// comparison. Ownership is structural — the first band in which the two
// images share a key owns the pair — so workers dedup with a handful of
// uint64 compares against precomputed keys instead of serializing on a
// shared seen-map.
func bandedScan(runes []rune, images []*bitmap.Image, pixels []int, keep []int, opt Options) ([]Pair, int) {
	keys := make([][bitmap.Bands]uint64, len(images))
	parallelFor(len(keep), opt.Workers, func(ki int) {
		i := keep[ki]
		for b := 0; b < bitmap.Bands; b++ {
			keys[i][b] = images[i].BandKey(b)
		}
	})

	type bucketKey struct {
		band int
		key  uint64
	}
	buckets := make(map[bucketKey][]int, len(keep)*2)
	for _, i := range keep {
		for b := 0; b < bitmap.Bands; b++ {
			k := bucketKey{b, keys[i][b]}
			buckets[k] = append(buckets[k], i)
		}
	}
	type bandBucket struct {
		band    int
		members []int
	}
	bucketList := make([]bandBucket, 0, len(buckets))
	for k, members := range buckets {
		if len(members) > 1 {
			bucketList = append(bucketList, bandBucket{k.band, members})
		}
	}

	type result struct {
		pairs []Pair
		cands int
	}
	results := make([]result, opt.Workers)
	var wg sync.WaitGroup
	for w := 0; w < opt.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var local []Pair
			localCands := 0
			for bi := w; bi < len(bucketList); bi += opt.Workers {
				band, members := bucketList[bi].band, bucketList[bi].members
				for x := 0; x < len(members); x++ {
					i := members[x]
					for y := x + 1; y < len(members); y++ {
						j := members[y]
						if !opt.NoPrefilter {
							if d := pixels[i] - pixels[j]; d > opt.Threshold || -d > opt.Threshold {
								continue
							}
						}
						if firstSharedBand(&keys[i], &keys[j]) != band {
							continue // an earlier band's bucket owns this pair
						}
						localCands++
						if d := bitmap.DeltaCapped(images[i], images[j], opt.Threshold); d <= opt.Threshold {
							local = append(local, orderedPair(runes[i], runes[j], d))
						}
					}
				}
			}
			results[w] = result{local, localCands}
		}(w)
	}
	wg.Wait()
	var pairs []Pair
	cands := 0
	for _, r := range results {
		pairs = append(pairs, r.pairs...)
		cands += r.cands
	}
	return pairs, cands
}

// firstSharedBand returns the lowest band index in which the two key
// vectors agree, or Bands if they never do.
func firstSharedBand(a, b *[bitmap.Bands]uint64) int {
	for band := 0; band < bitmap.Bands; band++ {
		if a[band] == b[band] {
			return band
		}
	}
	return bitmap.Bands
}

func orderedPair(a, b rune, d int) Pair {
	if a > b {
		a, b = b, a
	}
	return Pair{A: a, B: b, Delta: d}
}

// parallelFor runs f(i) for i in [0,n) across workers goroutines.
func parallelFor(n, workers int, f func(int)) {
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				f(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// FromPairs builds a database directly from a pair list — the snapshot
// load path, which must reconstruct the component database without a
// font or Δ scan. Pairs are copied, normalized (A < B) and sorted, so
// the result is identical to a Build that produced the same pair set.
func FromPairs(pairs []Pair) *DB {
	cp := make([]Pair, len(pairs))
	for i, p := range pairs {
		cp[i] = orderedPair(p.A, p.B, p.Delta)
	}
	sort.Slice(cp, func(i, j int) bool {
		if cp[i].A != cp[j].A {
			return cp[i].A < cp[j].A
		}
		return cp[i].B < cp[j].B
	})
	return fromPairs(cp)
}

func fromPairs(pairs []Pair) *DB {
	db := &DB{pairs: pairs, partner: make(map[rune][]rune)}
	for _, p := range pairs {
		db.partner[p.A] = append(db.partner[p.A], p.B)
		db.partner[p.B] = append(db.partner[p.B], p.A)
	}
	for r := range db.partner {
		sort.Slice(db.partner[r], func(i, j int) bool { return db.partner[r][i] < db.partner[r][j] })
	}
	return db
}

// Pairs returns the homoglyph pairs, sorted.
func (db *DB) Pairs() []Pair { return db.pairs }

// NumPairs returns the number of homoglyph pairs (Table 1's pair counts).
func (db *DB) NumPairs() int { return len(db.pairs) }

// Chars returns the set of characters participating in at least one pair
// (Table 1's character counts).
func (db *DB) Chars() *ucd.RuneSet {
	s := ucd.NewRuneSet()
	for r := range db.partner {
		s.Add(r)
	}
	return s
}

// Confusable reports whether (a, b) is a SimChar pair.
func (db *DB) Confusable(a, b rune) bool {
	if a == b {
		return true
	}
	for _, p := range db.partner[a] {
		if p == b {
			return true
		}
		if p > b {
			break
		}
	}
	return false
}

// Homoglyphs returns the partners of r (characters within Δ ≤ θ of it).
func (db *DB) Homoglyphs(r rune) []rune {
	out := make([]rune, len(db.partner[r]))
	copy(out, db.partner[r])
	return out
}

// Write serializes the database as lines of "AAAA BBBB delta".
func (db *DB) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "# SimChar homoglyph pairs: codepointA codepointB delta"); err != nil {
		return err
	}
	for _, p := range db.pairs {
		if _, err := fmt.Fprintf(bw, "%04X %04X %d\n", p.A, p.B, p.Delta); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses the Write format.
func Read(r io.Reader) (*DB, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var pairs []Pair
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, fmt.Errorf("simchar: line %d: want 'A B delta'", lineNo)
		}
		a, err := strconv.ParseUint(fields[0], 16, 32)
		if err != nil {
			return nil, fmt.Errorf("simchar: line %d: %v", lineNo, err)
		}
		b, err := strconv.ParseUint(fields[1], 16, 32)
		if err != nil {
			return nil, fmt.Errorf("simchar: line %d: %v", lineNo, err)
		}
		d, err := strconv.Atoi(fields[2])
		if err != nil {
			return nil, fmt.Errorf("simchar: line %d: %v", lineNo, err)
		}
		pairs = append(pairs, orderedPair(rune(a), rune(b), d))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].A != pairs[j].A {
			return pairs[i].A < pairs[j].A
		}
		return pairs[i].B < pairs[j].B
	})
	return fromPairs(pairs), nil
}
