package portscan

import (
	"net"
	"testing"
	"time"

	"repro/internal/hostsim"
)

// testEnv builds a mapper with one live listener and returns both.
func testEnv(t *testing.T) (*hostsim.Mapper, net.Listener) {
	t.Helper()
	m, err := hostsim.NewMapper()
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			conn.Close()
		}
	}()
	return m, ln
}

func TestScanOpenAndClosed(t *testing.T) {
	m, ln := testEnv(t)
	m.Open("both.com", 80, ln.Addr().String())
	m.Open("both.com", 443, ln.Addr().String())
	m.Open("web.com", 80, ln.Addr().String())
	m.Open("tls.com", 443, ln.Addr().String())

	s := &Scanner{Resolve: m.Resolve, Timeout: time.Second, Workers: 8}
	results := s.Scan([]string{"both.com", "web.com", "tls.com", "dead.com"}, []int{80, 443})

	want := map[string][2]bool{
		"both.com": {true, true},
		"web.com":  {true, false},
		"tls.com":  {false, true},
		"dead.com": {false, false},
	}
	for _, r := range results {
		w := want[r.Domain]
		if r.Open[80] != w[0] || r.Open[443] != w[1] {
			t.Errorf("%s: open = %v, want %v", r.Domain, r.Open, w)
		}
	}
	if !results[0].AnyOpen() || results[3].AnyOpen() {
		t.Error("AnyOpen mismatch")
	}
}

func TestSummarize(t *testing.T) {
	m, ln := testEnv(t)
	m.Open("a.com", 80, ln.Addr().String())
	m.Open("a.com", 443, ln.Addr().String())
	m.Open("b.com", 80, ln.Addr().String())
	m.Open("c.com", 443, ln.Addr().String())

	s := &Scanner{Resolve: m.Resolve, Timeout: time.Second}
	results := s.Scan([]string{"a.com", "b.com", "c.com", "d.com"}, []int{80, 443})
	sum := Summarize(results)
	if sum.Port80 != 2 || sum.Port443 != 2 || sum.Both != 1 || sum.AnyOpen != 3 || sum.Scanned != 4 {
		t.Errorf("summary = %+v", sum)
	}
}

func TestScanPreservesOrder(t *testing.T) {
	m, _ := testEnv(t)
	domains := []string{"z.com", "a.com", "m.com"}
	s := &Scanner{Resolve: m.Resolve, Timeout: 200 * time.Millisecond}
	results := s.Scan(domains, []int{80})
	for i, r := range results {
		if r.Domain != domains[i] {
			t.Errorf("result %d = %s, want %s", i, r.Domain, domains[i])
		}
	}
}

func TestScanEmpty(t *testing.T) {
	m, _ := testEnv(t)
	s := &Scanner{Resolve: m.Resolve}
	if got := s.Scan(nil, []int{80}); len(got) != 0 {
		t.Errorf("scan of nothing = %v", got)
	}
	sum := Summarize(nil)
	if sum.Scanned != 0 || sum.AnyOpen != 0 {
		t.Errorf("empty summary = %+v", sum)
	}
}

func TestScanManyConcurrent(t *testing.T) {
	m, ln := testEnv(t)
	var domains []string
	for i := 0; i < 200; i++ {
		d := string(rune('a'+i%26)) + "x" + string(rune('0'+i%10)) + ".com"
		domains = append(domains, d)
	}
	// Open port 80 for half of them (dedup via map semantics is fine).
	for i := 0; i < len(domains); i += 2 {
		m.Open(domains[i], 80, ln.Addr().String())
	}
	s := &Scanner{Resolve: m.Resolve, Timeout: time.Second, Workers: 32}
	results := s.Scan(domains, []int{80})
	for i, r := range results {
		if want := m.IsOpen(domains[i], 80); r.Open[80] != want {
			t.Errorf("%s: open=%t want %t", r.Domain, r.Open[80], want)
		}
	}
}
