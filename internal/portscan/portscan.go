// Package portscan implements the concurrent TCP connect scanner the
// paper runs against its 1,909 resolvable homographs (Table 10): for
// each domain, attempt TCP connections to ports 80 and 443, record
// which accept, and aggregate the open/closed matrix. Addresses are
// obtained through a resolver function so the scanner works unchanged
// against real hosts or the loopback host simulator.
package portscan

import (
	"net"
	"sync"
	"time"
)

// Resolver maps (domain, port) to a dialable address. hostsim.Mapper's
// Resolve method satisfies this.
type Resolver func(domain string, port int) string

// Result records the scan outcome for one domain.
type Result struct {
	Domain string
	Open   map[int]bool
}

// AnyOpen reports whether at least one scanned port accepted.
func (r Result) AnyOpen() bool {
	for _, v := range r.Open {
		if v {
			return true
		}
	}
	return false
}

// Scanner is a concurrent TCP connect scanner.
type Scanner struct {
	// Resolve maps domains to addresses. Required.
	Resolve Resolver
	// Timeout bounds each connection attempt. Zero means 1 second.
	Timeout time.Duration
	// Workers bounds concurrency. Zero means 64.
	Workers int
}

// Scan probes every port on every domain. Results preserve domain
// order.
func (s *Scanner) Scan(domains []string, ports []int) []Result {
	timeout := s.Timeout
	if timeout == 0 {
		timeout = time.Second
	}
	workers := s.Workers
	if workers <= 0 {
		workers = 64
	}
	results := make([]Result, len(domains))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, d := range domains {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, domain string) {
			defer wg.Done()
			defer func() { <-sem }()
			open := make(map[int]bool, len(ports))
			for _, port := range ports {
				open[port] = probe(s.Resolve(domain, port), timeout)
			}
			results[i] = Result{Domain: domain, Open: open}
		}(i, d)
	}
	wg.Wait()
	return results
}

// probe attempts one TCP connection; open means the handshake
// completed.
func probe(addr string, timeout time.Duration) bool {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return false
	}
	conn.Close()
	return true
}

// Summary aggregates scan results into the Table 10 rows.
type Summary struct {
	Port80  int // domains with TCP/80 open
	Port443 int // domains with TCP/443 open
	Both    int // domains with both open
	AnyOpen int // unique domains with at least one port open
	Scanned int
}

// Summarize counts the Table 10 aggregate over results.
func Summarize(results []Result) Summary {
	var s Summary
	s.Scanned = len(results)
	for _, r := range results {
		p80, p443 := r.Open[80], r.Open[443]
		if p80 {
			s.Port80++
		}
		if p443 {
			s.Port443++
		}
		if p80 && p443 {
			s.Both++
		}
		if p80 || p443 {
			s.AnyOpen++
		}
	}
	return s
}
