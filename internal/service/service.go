// Package service exposes the hot-swappable detection engine over an
// HTTP JSON API — the serving layer of the paper's "daily operation"
// model (Section 5): detection answers continuously while new zone
// data and reference lists arrive and are swapped in underneath it.
//
// Routes:
//
//	POST /v1/detect        {"fqdn":"..."} or {"fqdns":["...", ...]},
//	                       optional "backend": postings|skeleton|both
//	GET  /v1/explain       ?fqdn=...[&backend=...]  (matches + Figure-12 warnings)
//	POST /v1/reload        {"snapshot":"path"} | {"refs":"path"} |
//	                       {"references":["google", ...]}
//	POST   /v1/survey      {"fqdns":[...], "resolver":"host:port", ...}
//	                       async triage job: detect → DNS → web → blacklist
//	GET    /v1/survey/{id} job status, progress counters, records + tally when done
//	DELETE /v1/survey/{id} cancel a running job
//	GET  /healthz          liveness + current epoch and reference count
//	GET  /metrics          epoch, reference count, QPS, p50/p99 latency, survey counters
//
// Every detection response names the engine epoch it was computed
// against, and each request runs entirely on one atomically-loaded
// state: a reload mid-request never splits an answer across epochs.
// Queries are normalized by the exact zone-line rules the CLI feeder
// uses (internal/domain.NormalizeZoneLine), so `serve` and `detect`
// cannot disagree about case folding or the trailing root dot.
//
// Overload sheds instead of OOMing: a bounded-concurrency gate admits
// at most MaxInFlight detection requests; beyond that the server
// answers 503 with Retry-After immediately, keeping memory flat and
// the admitted requests fast. /healthz and /metrics bypass the gate —
// an overloaded server must still tell its monitor it is alive.
//
// /v1/reload reads operator-named files from the server's own
// filesystem; bind the listener to localhost or a trusted network, as
// you would any operations endpoint.
package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/domain"
	"repro/internal/reflist"
	"repro/internal/snapshot"
	"repro/internal/triage"
	"repro/internal/zonewatch"
)

// Config parameterizes a Server.
type Config struct {
	// Engine is the hot-swappable detection state. Required.
	Engine *core.Engine
	// MaxInFlight bounds concurrently admitted detection requests;
	// excess requests are shed with 503. 0 means 8×GOMAXPROCS.
	MaxInFlight int
	// MaxBatch bounds the FQDN count of one /v1/detect request.
	// 0 means 10000.
	MaxBatch int
	// Backend selects the default detection backend for requests that
	// do not name one ("backend" in /v1/detect bodies, ?backend= on
	// /v1/explain). The zero value means the posting-list backend.
	Backend core.Backend
	// Survey wires the async triage job API (POST /v1/survey). The
	// zero value works; see SurveyConfig.
	Survey SurveyConfig
	// ZoneWatch, when non-nil, is a continuous zone watcher running
	// alongside this server; its health (breaker states, delta counters,
	// queue depth) is folded into /metrics so one scrape covers both the
	// serving path and the ingestion path.
	ZoneWatch *zonewatch.Watcher
	// Logf receives operational log lines; nil means silent.
	Logf func(format string, args ...any)
}

// Server is the HTTP serving layer over a core.Engine. Construct with
// New; it implements http.Handler.
type Server struct {
	engine    *core.Engine
	sem       chan struct{}
	maxBatch  int
	backend   core.Backend
	logf      func(string, ...any)
	mux       *http.ServeMux
	met       metrics
	reloadMu  sync.Mutex // serializes /v1/reload; queries never take it
	bufs      sync.Pool  // *[]byte normalization buffers
	surveyCfg SurveyConfig
	surveys   surveyRegistry
	zoneWatch *zonewatch.Watcher

	// tallyMu guards surveyTally, the server-wide §6 aggregation merged
	// from every finished survey job (including recovered ones).
	tallyMu     sync.Mutex
	surveyTally *triage.Tally
	// journalLag, when set (SetJournalLag), reports how many bytes of
	// the zone-watch deltas journal no survey job covers yet.
	journalLag func() int64
}

// SetJournalLag wires the /metrics journal-lag probe — how far the
// survey batcher is behind the zone-watch deltas journal, in bytes.
// Call during wiring, before traffic.
func (s *Server) SetJournalLag(fn func() int64) { s.journalLag = fn }

// New builds a Server over cfg.Engine.
func New(cfg Config) *Server {
	if cfg.Engine == nil {
		panic("service: Config.Engine is required")
	}
	maxInFlight := cfg.MaxInFlight
	if maxInFlight <= 0 {
		maxInFlight = 8 * runtime.GOMAXPROCS(0)
	}
	maxBatch := cfg.MaxBatch
	if maxBatch <= 0 {
		maxBatch = 10000
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	backend := cfg.Backend
	if backend == 0 {
		backend = core.BackendPostings
	}
	s := &Server{
		engine:    cfg.Engine,
		sem:       make(chan struct{}, maxInFlight),
		maxBatch:  maxBatch,
		backend:   backend,
		logf:      logf,
		mux:       http.NewServeMux(),
		surveyCfg: cfg.Survey,
		zoneWatch: cfg.ZoneWatch,
	}
	s.met.start = time.Now()
	s.bufs.New = func() any { b := make([]byte, 0, 256); return &b }
	s.mux.HandleFunc("POST /v1/detect", s.bounded(s.handleDetect))
	s.mux.HandleFunc("GET /v1/explain", s.bounded(s.handleExplain))
	s.mux.HandleFunc("POST /v1/reload", s.handleReload)
	// Survey jobs run in the background on their own worker pools, so
	// submission is not gated by the detection-concurrency limiter —
	// the per-registry running-jobs cap bounds them instead.
	s.mux.HandleFunc("POST /v1/survey", s.handleSurveySubmit)
	s.mux.HandleFunc("GET /v1/survey/{id}", s.handleSurveyStatus)
	s.mux.HandleFunc("DELETE /v1/survey/{id}", s.handleSurveyCancel)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Stats snapshots the serving counters — what /metrics serves. A
// scrape also runs the survey retention sweep, so TTL evictions fire
// on an otherwise idle server.
func (s *Server) Stats() Stats {
	s.sweepSurveys()
	det, epoch := s.engine.Current()
	st := s.met.snapshot(epoch, det.NumReferences())
	if s.zoneWatch != nil {
		h := s.zoneWatch.Health()
		st.ZoneWatch = &h
	}
	st.SurveyJobs = s.surveys.countByState()
	st.SurveyTally = s.surveyTallySnapshot()
	if s.journalLag != nil {
		st.SurveyJournalLag = s.journalLag()
	}
	return st
}

// bounded wraps a detection handler in the concurrency gate and the
// latency/QPS accounting. Admission is one non-blocking channel send:
// a full gate means the server is at capacity, and queueing further
// requests would only grow memory until the process died — shedding
// with Retry-After keeps the admitted requests fast and the process
// alive (the "overload sheds instead of OOMing" contract).
func (s *Server) bounded(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.sem <- struct{}{}:
		default:
			s.met.shed.Add(1)
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable, "overloaded: concurrency limit reached")
			return
		}
		s.met.inFlight.Add(1)
		start := time.Now()
		defer func() {
			s.met.latency.observe(time.Since(start))
			s.met.inFlight.Add(-1)
			<-s.sem
		}()
		s.met.requests.Add(1)
		h(w, r)
	}
}

// maxPooledBuf caps what goes back into the normalization pool. A
// legitimate FQDN is ≤253 bytes; a hostile multi-megabyte "fqdn"
// would otherwise inflate a pooled buffer permanently — up to
// MaxInFlight of them — on the very path whose contract is "overload
// sheds instead of OOMing". Oversized buffers are simply dropped for
// the GC.
const maxPooledBuf = 4096

func (s *Server) putBuf(buf *[]byte) {
	if cap(*buf) <= maxPooledBuf {
		s.bufs.Put(buf)
	}
}

// --- request/response shapes ---

type detectRequest struct {
	FQDN    string   `json:"fqdn,omitempty"`
	FQDNs   []string `json:"fqdns,omitempty"`
	Backend string   `json:"backend,omitempty"`
}

type detectResponse struct {
	Epoch   uint64  `json:"epoch"`
	Queried int     `json:"queried"`
	Backend string  `json:"backend"`
	Matches []Match `json:"matches"`
}

type explainResponse struct {
	Epoch    uint64   `json:"epoch"`
	Backend  string   `json:"backend"`
	Matches  []Match  `json:"matches"`
	Warnings []string `json:"warnings"`
}

type reloadRequest struct {
	Snapshot   string   `json:"snapshot,omitempty"`
	Refs       string   `json:"refs,omitempty"`
	References []string `json:"references,omitempty"`
}

type reloadResponse struct {
	Epoch      uint64 `json:"epoch"`
	References int    `json:"references"`
	Source     string `json:"source"`
}

type healthResponse struct {
	Status     string `json:"status"`
	Epoch      uint64 `json:"epoch"`
	References int    `json:"references"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// --- handlers ---

// scan normalizes one incoming name into the pooled buffer and scans
// it against det. The zone-line rules decide everything: trailing root
// dot dropped, ASCII uppercase folded (non-ASCII folding happens in
// the punycode decode, same as ingestion). Under the posting backend,
// names with no scannable candidate label — plain ASCII, or an
// ACE-TLD-only shape — return no matches without touching the index;
// when the chosen backend includes the skeleton index, every non-blank
// name is scanned, because a pure-ASCII "rnicrosoft.com" is exactly the
// class that backend exists to catch.
func scan(det *core.Detector, buf *[]byte, name string, be core.Backend) []core.Match {
	*buf = append((*buf)[:0], name...)
	normalize := domain.NormalizeZoneLine
	if be&core.BackendSkeleton != 0 {
		normalize = domain.NormalizeZoneLineAll
	}
	fqdn, ok := normalize(*buf)
	if !ok {
		return nil
	}
	return det.DetectDomainBytesBackend(fqdn, be)
}

// requestBackend resolves a request's backend name against the server
// default; an unknown name is the caller's error.
func (s *Server) requestBackend(name string) (core.Backend, error) {
	if name == "" {
		return s.backend, nil
	}
	return core.ParseBackend(name)
}

func (s *Server) handleDetect(w http.ResponseWriter, r *http.Request) {
	var req detectRequest
	if err := decodeBody(w, r, &req); err != nil {
		s.met.badInput.Add(1)
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	names := req.FQDNs
	if req.FQDN != "" {
		names = append([]string{req.FQDN}, names...)
	}
	if len(names) == 0 {
		s.met.badInput.Add(1)
		writeError(w, http.StatusBadRequest, `need "fqdn" or "fqdns"`)
		return
	}
	if len(names) > s.maxBatch {
		s.met.badInput.Add(1)
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("batch of %d exceeds limit %d", len(names), s.maxBatch))
		return
	}
	be, err := s.requestBackend(req.Backend)
	if err != nil {
		s.met.badInput.Add(1)
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	// One engine load for the whole request: every name in the batch is
	// answered by the same epoch, even if a reload lands mid-loop.
	det, epoch := s.engine.Current()
	buf := s.bufs.Get().(*[]byte)
	var matches []core.Match
	for _, name := range names {
		matches = append(matches, scan(det, buf, name, be)...)
	}
	s.putBuf(buf)
	core.SortMatches(matches)
	s.met.domains.Add(uint64(len(names)))
	s.met.matches.Add(uint64(len(matches)))
	writeJSON(w, http.StatusOK, detectResponse{
		Epoch:   epoch,
		Queried: len(names),
		Backend: be.String(),
		Matches: NewMatches(matches),
	})
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("fqdn")
	if name == "" {
		s.met.badInput.Add(1)
		writeError(w, http.StatusBadRequest, `need ?fqdn=`)
		return
	}
	be, err := s.requestBackend(r.URL.Query().Get("backend"))
	if err != nil {
		s.met.badInput.Add(1)
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	det, epoch := s.engine.Current()
	buf := s.bufs.Get().(*[]byte)
	matches := scan(det, buf, name, be)
	s.putBuf(buf)
	core.SortMatches(matches)
	s.met.domains.Add(1)
	s.met.matches.Add(uint64(len(matches)))
	warnings := make([]string, len(matches))
	for i, m := range matches {
		warnings[i] = core.BuildWarning(m).Text()
	}
	writeJSON(w, http.StatusOK, explainResponse{
		Epoch:    epoch,
		Backend:  be.String(),
		Matches:  NewMatches(matches),
		Warnings: warnings,
	})
}

// handleReload swaps new state under live traffic. The three sources,
// in precedence order: a compiled snapshot file (the 20 ms path — the
// artifact `shamfinder compile` writes), a reference list file
// (rebuild off the current homoglyph DB), or an inline reference
// array. Reloads serialize among themselves; queries never wait.
func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	var req reloadRequest
	if err := decodeBody(w, r, &req); err != nil {
		s.met.badInput.Add(1)
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	epoch, refs, source, err := s.reload(req)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	s.noteSwap()
	s.logf("reload: epoch %d, %d references (%s)", epoch, refs, source)
	writeJSON(w, http.StatusOK, reloadResponse{Epoch: epoch, References: refs, Source: source})
}

func (s *Server) reload(req reloadRequest) (epoch uint64, refs int, source string, err error) {
	switch {
	case req.Snapshot != "":
		db, det, rerr := snapshot.ReadFile(req.Snapshot)
		if rerr != nil {
			return 0, 0, "", fmt.Errorf("loading snapshot: %w", rerr)
		}
		// An explicit reference list overrides the snapshot's embedded
		// detector — the same precedence `serve -snapshot -refs` (and
		// the CLI's loadEngine) applies at startup, so the operator who
		// POSTs both gets the list they named, not silently the stale
		// embedded set.
		refList := reflist.Labels(req.References)
		source := "snapshot:" + req.Snapshot
		if req.Refs != "" {
			if refList, rerr = reflist.Load(req.Refs); rerr != nil {
				return 0, 0, "", fmt.Errorf("loading refs: %w", rerr)
			}
			if len(refList) == 0 {
				return 0, 0, "", fmt.Errorf("reference list %s is empty", req.Refs)
			}
			source += " refs:" + req.Refs
		} else if len(refList) > 0 {
			source += " inline"
		} else if len(req.References) > 0 {
			return 0, 0, "", errors.New("references reduce to no registrable labels")
		}
		if len(refList) > 0 {
			det = core.NewDetector(db, refList)
		}
		if det == nil {
			return 0, 0, "", errors.New("snapshot embeds no detector; recompile with -refs or include refs/references")
		}
		return s.engine.Swap(det), det.NumReferences(), source, nil
	case req.Refs != "":
		refList, rerr := reflist.Load(req.Refs)
		if rerr != nil {
			return 0, 0, "", fmt.Errorf("loading refs: %w", rerr)
		}
		if len(refList) == 0 {
			return 0, 0, "", fmt.Errorf("reference list %s is empty", req.Refs)
		}
		// Build-then-swap so the response reports THIS detector's count:
		// a concurrent -watch swap between an engine-level rebuild and a
		// later Detector() read could pair epoch N with another epoch's
		// reference count.
		det := core.NewDetector(s.engine.DB(), refList)
		return s.engine.Swap(det), det.NumReferences(), "refs:" + req.Refs, nil
	case len(req.References) > 0:
		refList := reflist.Labels(req.References)
		if len(refList) == 0 {
			return 0, 0, "", errors.New("references reduce to no registrable labels")
		}
		det := core.NewDetector(s.engine.DB(), refList)
		return s.engine.Swap(det), det.NumReferences(), "inline", nil
	default:
		return 0, 0, "", errors.New(`need "snapshot", "refs" or "references"`)
	}
}

// noteSwap records a successful swap for /metrics.
func (s *Server) noteSwap() {
	s.met.reloads.Add(1)
	s.met.lastSwapN.Store(time.Now().UnixNano())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	det, epoch := s.engine.Current()
	writeJSON(w, http.StatusOK, healthResponse{
		Status:     "ok",
		Epoch:      epoch,
		References: det.NumReferences(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// --- plumbing ---

// maxBodyBytes bounds request bodies; a detect batch of maxBatch
// 253-byte FQDNs fits with an order of magnitude to spare.
const maxBodyBytes = 32 << 20

func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("decoding request body: %w", err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v) // the client hanging up mid-response is its problem
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorResponse{Error: msg})
}
