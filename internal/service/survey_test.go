package service

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"net/netip"
	"testing"
	"time"

	"repro/internal/blacklist"
	"repro/internal/core"
	"repro/internal/dnsserver"
	"repro/internal/dnswire"
	"repro/internal/jobstore"
	"repro/internal/triage"
	"repro/internal/websim"
)

// surveyEnv stands up the simulated measurement backends plus a
// serving engine, mirroring what `shamfinder serve` would wire in a
// deployment that fronts the triage pipeline.
func surveyEnv(t *testing.T) (*httptest.Server, string, *blacklist.Set) {
	t.Helper()
	hosted := ace(t, "gооgle") + ".com"   // NS+A, normal site
	parked := ace(t, "fаcebook") + ".com" // NS only
	store := dnsserver.NewStore()
	store.AddApex("com.")
	store.Add(dnswire.Record{Name: "com.", Class: dnswire.ClassIN, TTL: 900, Data: dnswire.SOA{
		MName: "a.gtld-servers.net.", RName: "nstld.example.",
		Serial: 1, Refresh: 1800, Retry: 900, Expire: 604800, Minimum: 86400,
	}})
	store.Add(dnswire.Record{Name: hosted + ".", Class: dnswire.ClassIN, TTL: 300, Data: dnswire.NS{Host: "ns1." + hosted + "."}})
	store.Add(dnswire.Record{Name: hosted + ".", Class: dnswire.ClassIN, TTL: 300, Data: dnswire.A{Addr: netip.MustParseAddr("127.0.0.1")}})
	store.Add(dnswire.Record{Name: parked + ".", Class: dnswire.ClassIN, TTL: 300, Data: dnswire.NS{Host: "ns1." + parked + "."}})
	dns := dnsserver.NewServer(store)
	if err := dns.ListenAndServe("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dns.Close() })

	web := websim.NewServer()
	if err := web.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { web.Close() })
	web.SetSite(hosted, websim.Site{Kind: "normal", Title: "hosted"})

	feeds := &blacklist.Set{
		HpHosts:  blacklist.NewFeed("hpHosts"),
		GSB:      blacklist.NewFeed("GSB"),
		Symantec: blacklist.NewFeed("Symantec"),
	}
	feeds.HpHosts.Add(hosted)

	engine := core.NewEngine(core.NewDetector(testDB(t), []string{"google", "facebook"}))
	s := New(Config{
		Engine: engine,
		Survey: SurveyConfig{
			Resolve: func(domain string, port int) string {
				if port == 443 {
					return web.HTTPSAddr()
				}
				return web.HTTPAddr()
			},
			Blacklists: feeds,
		},
	})
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return ts, dns.Addr(), feeds
}

func pollSurvey(t *testing.T, ts *httptest.Server, id string) surveyStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		var st surveyStatus
		resp := getJSON(t, ts.URL+"/v1/survey/"+id, &st)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status poll = %d", resp.StatusCode)
		}
		if jobstore.Terminal(st.Status) {
			return st
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("survey did not finish")
	return surveyStatus{}
}

func TestSurveyJobEndToEnd(t *testing.T) {
	ts, resolver, _ := surveyEnv(t)
	hosted := ace(t, "gооgle") + ".com"
	parked := ace(t, "fаcebook") + ".com"
	resp, data := postJSON(t, ts.URL+"/v1/survey", surveyRequest{
		// Mixed candidates: two homographs (different DNS fates), a
		// plain domain the detector must filter out, and an unknown
		// homograph-free IDN.
		FQDNs:    []string{hosted, "plain.com", parked, ace(t, "bücher") + ".com"},
		Resolver: resolver,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", resp.StatusCode, data)
	}
	var acc surveyAcceptedResp
	if err := json.Unmarshal(data, &acc); err != nil {
		t.Fatal(err)
	}
	if acc.Status != surveyRunning || acc.Epoch != 1 || acc.Queried != 4 || acc.Detected != 2 {
		t.Fatalf("accepted = %+v", acc)
	}

	st := pollSurvey(t, ts, acc.ID)
	if st.Status != surveyDone {
		t.Fatalf("final status = %+v", st)
	}
	if len(st.Records) != 2 {
		t.Fatalf("records = %+v", st.Records)
	}
	byName := map[string]triage.Record{}
	for _, rec := range st.Records {
		byName[rec.FQDN] = rec
	}
	h := byName[hosted]
	if !h.HasNS || !h.HasA || h.Category != "Normal" || h.Reference != "google.com" {
		t.Errorf("hosted record = %+v", h)
	}
	if len(h.Blacklists) != 1 || h.Blacklists[0] != "hpHosts" {
		t.Errorf("hosted blacklists = %v", h.Blacklists)
	}
	p := byName[parked]
	if !p.HasNS || p.HasA || p.Category != "" {
		t.Errorf("parked record = %+v", p)
	}
	if st.Tally == nil || st.Tally.Total != 2 || st.Tally.WithNS != 2 || st.Tally.WithA != 1 {
		t.Errorf("tally = %+v", st.Tally)
	}
	if st.Progress.Done != 2 {
		t.Errorf("progress = %+v", st.Progress)
	}

	// records=0 trims the payload for pollers.
	var slim surveyStatus
	getJSON(t, ts.URL+"/v1/survey/"+acc.ID+"?records=0", &slim)
	if slim.Records != nil || slim.Tally == nil {
		t.Errorf("slim poll = %+v", slim)
	}

	// Metrics picked the job up.
	var stats Stats
	getJSON(t, ts.URL+"/metrics", &stats)
	if stats.Surveys != 1 || stats.SurveyDomains != 2 || stats.SurveysActive != 0 {
		t.Errorf("survey metrics = %+v", stats)
	}
}

func TestSurveyDetectFalseSurveysEverything(t *testing.T) {
	ts, resolver, _ := surveyEnv(t)
	no := false
	resp, data := postJSON(t, ts.URL+"/v1/survey", surveyRequest{
		FQDNs:    []string{"Plain.COM.", "plain.com"},
		Resolver: resolver,
		Detect:   &no,
		SkipWeb:  true,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", resp.StatusCode, data)
	}
	var acc surveyAcceptedResp
	if err := json.Unmarshal(data, &acc); err != nil {
		t.Fatal(err)
	}
	if acc.Detected != 1 { // deduped + normalized
		t.Fatalf("accepted = %+v", acc)
	}
	st := pollSurvey(t, ts, acc.ID)
	if st.Status != surveyDone || len(st.Records) != 1 || st.Records[0].FQDN != "plain.com" {
		t.Fatalf("final = %+v", st)
	}
	// plain.com is not in the zone: NXDOMAIN, no error.
	if st.Records[0].HasNS || st.Records[0].DNSError != "" {
		t.Errorf("record = %+v", st.Records[0])
	}
}

func TestSurveyValidation(t *testing.T) {
	ts, resolver, _ := surveyEnv(t)
	for _, tc := range []struct {
		name string
		req  surveyRequest
		want int
	}{
		{"no fqdns", surveyRequest{Resolver: resolver}, http.StatusBadRequest},
		{"no resolver", surveyRequest{FQDNs: []string{"a.com"}}, http.StatusBadRequest},
		{"bad resolver", surveyRequest{FQDNs: []string{"a.com"}, Resolver: "not-an-addr"}, http.StatusUnprocessableEntity},
	} {
		resp, data := postJSON(t, ts.URL+"/v1/survey", tc.req)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status = %d (%s), want %d", tc.name, resp.StatusCode, data, tc.want)
		}
	}
	resp, _ := http.Get(ts.URL + "/v1/survey/s999")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown id = %d", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestSurveyCancel(t *testing.T) {
	ts, _, _ := surveyEnv(t)
	// A big detect=false batch against a black-hole resolver with one
	// worker: plenty of time to cancel mid-flight.
	blackhole := newBlackholeResolver(t)
	no := false
	fqdns := make([]string, 64)
	for i := range fqdns {
		fqdns[i] = fmt.Sprintf("c%02d.com", i)
	}
	resp, data := postJSON(t, ts.URL+"/v1/survey", surveyRequest{
		FQDNs: fqdns, Resolver: blackhole, Detect: &no, SkipWeb: true,
		DNSWorkers: 1, DNSTimeoutMS: 200,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", resp.StatusCode, data)
	}
	var acc surveyAcceptedResp
	if err := json.Unmarshal(data, &acc); err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/survey/"+acc.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("cancel = %d", dresp.StatusCode)
	}
	st := pollSurvey(t, ts, acc.ID)
	if st.Status != surveyCancelled {
		t.Fatalf("status after cancel = %+v", st)
	}
	if int(st.Progress.Done) >= len(fqdns) {
		t.Errorf("cancel landed after completion: %+v", st.Progress)
	}
}

// newBlackholeResolver binds a UDP socket that never answers.
func newBlackholeResolver(t *testing.T) string {
	t.Helper()
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	go func() {
		buf := make([]byte, 64*1024)
		for {
			if _, _, err := conn.ReadFrom(buf); err != nil {
				return
			}
		}
	}()
	return conn.LocalAddr().String()
}

func TestSurveyDetectFalseNormalizesUnicode(t *testing.T) {
	ts, resolver, _ := surveyEnv(t)
	no := false
	resp, data := postJSON(t, ts.URL+"/v1/survey", surveyRequest{
		FQDNs:    []string{"gооgle.com"}, // Cyrillic: must probe as xn--ggle-55da.com
		Resolver: resolver,
		Detect:   &no,
		SkipWeb:  true,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", resp.StatusCode, data)
	}
	var acc surveyAcceptedResp
	if err := json.Unmarshal(data, &acc); err != nil {
		t.Fatal(err)
	}
	st := pollSurvey(t, ts, acc.ID)
	if len(st.Records) != 1 || st.Records[0].FQDN != ace(t, "gооgle")+".com" {
		t.Fatalf("records = %+v", st.Records)
	}
	// The zone hosts this ACE name, so the probe must have found it.
	if !st.Records[0].HasNS || !st.Records[0].HasA {
		t.Errorf("record = %+v", st.Records[0])
	}
}

func TestSurveyDeleteEvictsFinishedJob(t *testing.T) {
	ts, resolver, _ := surveyEnv(t)
	resp, data := postJSON(t, ts.URL+"/v1/survey", surveyRequest{
		FQDNs: []string{ace(t, "gооgle") + ".com"}, Resolver: resolver, SkipWeb: true,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", resp.StatusCode, data)
	}
	var acc surveyAcceptedResp
	if err := json.Unmarshal(data, &acc); err != nil {
		t.Fatal(err)
	}
	if st := pollSurvey(t, ts, acc.ID); st.Status != surveyDone {
		t.Fatalf("status = %+v", st)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/survey/"+acc.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("delete = %d", dresp.StatusCode)
	}
	gresp, err := http.Get(ts.URL + "/v1/survey/" + acc.ID)
	if err != nil {
		t.Fatal(err)
	}
	gresp.Body.Close()
	if gresp.StatusCode != http.StatusNotFound {
		t.Errorf("finished job survived DELETE: %d", gresp.StatusCode)
	}
}

func TestSurveyShedsBeforeDetection(t *testing.T) {
	// MaxJobs=1: with one slot held by a slow job, a second submit must
	// be rejected 429 — reservation happens before any detection work.
	blackhole := newBlackholeResolver(t)
	engine := core.NewEngine(core.NewDetector(testDB(t), []string{"google"}))
	s := New(Config{Engine: engine, Survey: SurveyConfig{MaxJobs: 1}})
	ts := httptest.NewServer(s)
	defer ts.Close()
	no := false
	resp, data := postJSON(t, ts.URL+"/v1/survey", surveyRequest{
		FQDNs: []string{"slow.com"}, Resolver: blackhole, Detect: &no, SkipWeb: true,
		DNSTimeoutMS: 2000,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit = %d: %s", resp.StatusCode, data)
	}
	resp2, _ := postJSON(t, ts.URL+"/v1/survey", surveyRequest{
		FQDNs: []string{"other.com"}, Resolver: blackhole, Detect: &no, SkipWeb: true,
	})
	if resp2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second submit = %d, want 429", resp2.StatusCode)
	}
	// A rejected submit must release nothing it did not hold: after the
	// first job finishes, a third submit succeeds.
	var acc surveyAcceptedResp
	if err := json.Unmarshal(data, &acc); err != nil {
		t.Fatal(err)
	}
	pollSurvey(t, ts, acc.ID)
	resp3, data3 := postJSON(t, ts.URL+"/v1/survey", surveyRequest{
		FQDNs: []string{"third.com"}, Resolver: blackhole, Detect: &no, SkipWeb: true,
		DNSTimeoutMS: 100,
	})
	if resp3.StatusCode != http.StatusAccepted {
		t.Fatalf("third submit = %d: %s", resp3.StatusCode, data3)
	}
}
