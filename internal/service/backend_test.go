package service

import (
	"net/http"
	"net/url"
	"testing"

	"repro/internal/core"
	"repro/internal/jobstore"
	"repro/internal/triage"
)

// The backend selector end-to-end through /v1/detect: the default
// posting backend cannot see a pure-ASCII many-to-one homograph, an
// explicit "skeleton" (or "both") catches it, and the response names
// the backend it answered with.
func TestDetectBackendSelection(t *testing.T) {
	_, ts := newTestServer(t, []string{"microsoft", "google"}, Config{})

	out, resp := detect(t, ts, detectRequest{FQDN: "rnicrosoft.com"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if out.Backend != "postings" || len(out.Matches) != 0 {
		t.Fatalf("default backend response: %+v", out)
	}

	out, _ = detect(t, ts, detectRequest{FQDN: "rnicrosoft.com", Backend: "skeleton"})
	if out.Backend != "skeleton" || len(out.Matches) != 1 {
		t.Fatalf("skeleton response: %+v", out)
	}
	m := out.Matches[0]
	if m.Reference != "microsoft" || m.Imitated != "microsoft.com" || m.Backend != "skeleton" {
		t.Fatalf("skeleton match = %+v", m)
	}
	if len(m.Diffs) != 0 {
		t.Fatalf("skeleton match carries diffs: %+v", m.Diffs)
	}

	// Both-mode on a same-length homograph: found by the two backends,
	// tagged with the union, diffs preserved from the posting side.
	out, _ = detect(t, ts, detectRequest{FQDN: ace(t, "gооgle") + ".com", Backend: "both"})
	if out.Backend != "both" || len(out.Matches) != 1 {
		t.Fatalf("both response: %+v", out)
	}
	if out.Matches[0].Backend != "both" || len(out.Matches[0].Diffs) != 2 {
		t.Fatalf("both match = %+v", out.Matches[0])
	}
}

func TestDetectBackendUnknownRejected(t *testing.T) {
	s, ts := newTestServer(t, []string{"google"}, Config{})
	_, resp := detect(t, ts, detectRequest{FQDN: "google.com", Backend: "tr39"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	if got := s.met.badInput.Load(); got != 1 {
		t.Fatalf("badInput = %d", got)
	}
}

// A server configured with a non-default backend applies it to
// requests that name none.
func TestServerDefaultBackend(t *testing.T) {
	_, ts := newTestServer(t, []string{"microsoft"}, Config{Backend: core.BackendBoth})
	out, _ := detect(t, ts, detectRequest{FQDN: "rnicrosoft.com"})
	if out.Backend != "both" || len(out.Matches) != 1 || out.Matches[0].Backend != "skeleton" {
		t.Fatalf("default-both response: %+v", out)
	}
}

func TestExplainBackendParam(t *testing.T) {
	_, ts := newTestServer(t, []string{"microsoft"}, Config{})
	var out explainResponse
	resp := getJSON(t, ts.URL+"/v1/explain?backend=skeleton&fqdn="+url.QueryEscape("rnicrosoft.com"), &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if out.Backend != "skeleton" || len(out.Matches) != 1 || len(out.Warnings) != 1 {
		t.Fatalf("explain response: %+v", out)
	}
}

// The survey submit path runs its detect stage under the requested
// backend and records the resolved backend in the durable spec, with
// skeleton-only matches attributed to the TR39 mapping.
func TestSurveyBackendSpec(t *testing.T) {
	req := surveyRequest{
		FQDNs:   []string{"rnicrosoft.com", "plain.com"},
		Backend: "skeleton",
		SkipDNS: true,
		SkipWeb: true,
	}
	spec := req.spec(core.BackendSkeleton)
	if spec.Backend != "skeleton" {
		t.Fatalf("spec.Backend = %q", spec.Backend)
	}
	var zero jobstore.Spec
	zero.Backend = "skeleton"
	zero.SkipDNS = true
	zero.SkipWeb = true
	if spec != zero {
		t.Fatalf("spec = %+v", spec)
	}
}

// Skeleton-only matches flow into triage inputs with the TR39
// attribution (no per-character diffs to intersect).
func TestSkeletonMatchTriageAttribution(t *testing.T) {
	det := core.NewDetector(testDB(t), []string{"microsoft"})
	ms := det.DetectDomainBackend("rnicrosoft.com", core.BackendSkeleton)
	if len(ms) != 1 {
		t.Fatalf("matches = %v", ms)
	}
	inputs := triage.InputsFromMatches(ms)
	if len(inputs) != 1 || inputs[0].Source != "TR39" || inputs[0].Reference != "microsoft.com" {
		t.Fatalf("inputs = %+v", inputs)
	}
}
