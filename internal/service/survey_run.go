package service

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/jobstore"
	"repro/internal/resilience"
	"repro/internal/triage"
)

// The survey job lifecycle: startSurvey admits and (durably) accepts a
// job, launch transitions it to running and spawns its pipeline,
// runSurvey streams records to disk as they complete, finalizeSurvey
// lands the terminal state. Every transition that matters for crash
// recovery — accepted, running, draining, terminal — is an atomic
// manifest write, so a SIGKILL between any two instructions leaves a
// state RecoverSurveys resumes exactly.

func (s *Server) store() *jobstore.Store { return s.surveyCfg.Store }

// surveyStart carries one admission into startSurvey.
type surveyStart struct {
	spec        jobstore.Spec
	inputs      []triage.Input
	queried     int
	epoch       uint64
	journalPath string
	journalFrom int64
	journalTo   int64
	// slot is whether the caller already holds a running-job slot.
	slot bool
	// queue, when the caller holds no slot, parks the job for the next
	// free slot instead of failing (batcher submissions).
	queue bool
}

// startSurvey validates, durably accepts, publishes and (slot
// permitting) launches one job. On error the caller still owns any
// slot it reserved.
func (s *Server) startSurvey(st surveyStart) (*surveyJob, error) {
	// Validate the spec up front: a job that cannot build its pipeline
	// must be rejected at submit, not discovered broken at launch after
	// it was durably accepted.
	cfg, err := s.surveyPipelineConfig(st.spec)
	if err != nil {
		return nil, err
	}
	if _, err := triage.New(cfg); err != nil {
		return nil, err
	}

	var id string
	if s.store() != nil {
		id = s.store().NewID()
	} else {
		id = s.surveys.nextID()
	}
	job := &surveyJob{
		id:          id,
		epoch:       st.epoch,
		queried:     st.queried,
		detected:    len(st.inputs),
		spec:        st.spec,
		inputs:      st.inputs,
		durable:     s.store() != nil,
		journalPath: st.journalPath,
		journalFrom: st.journalFrom,
		journalTo:   st.journalTo,
		createdUnix: time.Now().Unix(),
		status:      surveyAccepted,
	}
	if err := s.persistSurvey(job); err != nil {
		return nil, err
	}
	s.met.surveys.Add(1)
	s.publishSurvey(job)

	switch {
	case st.slot:
		if err := s.launch(job); err != nil {
			// The slot stays with the caller's reservation; runSurvey never
			// started, so finalize and hand the slot onward here.
			s.finalizeSurvey(job, nil, nil, surveyFailed, err.Error(), true)
			s.releaseSurveySlot()
			return job, nil
		}
	case st.queue:
		s.surveys.enqueue(job)
		s.logf("survey %s: accepted, queued for a running slot (%d candidates)", job.id, job.detected)
	default:
		return nil, errors.New("survey: no slot and queueing disabled")
	}
	return job, nil
}

// publishSurvey makes the job visible and applies retention to older
// finished jobs.
func (s *Server) publishSurvey(job *surveyJob) {
	evicted := s.surveys.publish(job, s.keepFinishedSurveys(), s.surveyCfg.JobTTL)
	s.dropEvicted(evicted)
}

// sweepSurveys applies retention outside a publish (the TTL can expire
// jobs on an otherwise idle server); /metrics scrapes trigger it.
func (s *Server) sweepSurveys() {
	s.dropEvicted(s.surveys.sweep(s.keepFinishedSurveys(), s.surveyCfg.JobTTL))
}

func (s *Server) dropEvicted(evicted []*surveyJob) {
	for _, j := range evicted {
		s.met.surveysEvicted.Add(1)
		if s.store() != nil && j.durable {
			if err := s.store().Remove(j.id); err != nil {
				s.logf("survey %s: evicting durable state: %v", j.id, err)
			}
		}
	}
}

// persistSurvey writes the job's manifest when a store is wired.
func (s *Server) persistSurvey(job *surveyJob) error {
	if s.store() == nil || !job.durable {
		return nil
	}
	job.mu.Lock()
	m := job.manifestLocked()
	job.mu.Unlock()
	if err := s.store().Put(m); err != nil {
		return fmt.Errorf("survey %s: persisting manifest: %w", job.id, err)
	}
	return nil
}

// launch transitions an accepted job to running and spawns its
// pipeline. The caller must hold a running-job slot; on error the job
// has not started and the slot is still the caller's.
func (s *Server) launch(job *surveyJob) error {
	var resume map[string]triage.Record
	if job.durable && job.resume {
		// A job interrupted mid-run: trim the torn tail a crash may have
		// left in its record log and seed the pipeline with the complete
		// records, so the resumed run re-probes only what never finished
		// and the final log is byte-identical to an uninterrupted one.
		var err error
		resume, err = s.store().PrepareResume(job.id)
		if err != nil {
			return err
		}
	}
	cfg, err := s.surveyPipelineConfig(job.spec)
	if err != nil {
		return err
	}
	cfg.Resume = resume
	pipeline, err := triage.New(cfg)
	if err != nil {
		if cfg.DNS != nil {
			cfg.DNS.Close()
		}
		return err
	}
	if cfg.DNS != nil {
		job.closeDNS = cfg.DNS.Close
	}
	ctx, cancel := context.WithCancel(context.Background())
	job.mu.Lock()
	job.status = surveyRunning
	job.pipeline = pipeline
	job.cancel = cancel
	if job.resume {
		job.resumes++
	}
	job.mu.Unlock()
	if job.resume {
		s.met.surveysResumed.Add(1)
	}
	if err := s.persistSurvey(job); err != nil {
		// The manifest could not record "running"; refuse to run a job a
		// crash could not see. Roll the in-memory state back.
		cancel()
		if job.closeDNS != nil {
			job.closeDNS()
			job.closeDNS = nil
		}
		job.mu.Lock()
		job.status = surveyAccepted
		job.pipeline = nil
		job.cancel = nil
		job.mu.Unlock()
		return err
	}
	s.met.surveysActive.Add(1)
	verb := "running"
	if job.resume {
		verb = fmt.Sprintf("resumed (restart %d)", job.resumes)
	}
	s.logf("survey %s: %s, %d candidates, %d to triage (epoch %d)",
		job.id, verb, job.queried, job.detected, job.epoch)
	go s.runSurvey(ctx, job)
	return nil
}

// releaseSurveySlot frees one running-job slot, launching queued jobs
// while any are waiting. A queued job that fails to launch is
// finalized failed and the slot moves to the next in line.
func (s *Server) releaseSurveySlot() {
	for {
		next := s.surveys.release()
		if next == nil {
			return
		}
		// The cancel race: a DELETE may have dequeued-and-cancelled this
		// job between release() popping it and here — dequeue() returning
		// false made the DELETE fall through to a no-op, so check state.
		next.mu.Lock()
		cancelled := next.status != surveyAccepted
		next.mu.Unlock()
		if cancelled {
			continue
		}
		if err := s.launch(next); err != nil {
			s.finalizeSurvey(next, nil, nil, surveyFailed, err.Error(), true)
			continue
		}
		return
	}
}

// runSurvey drives one launched job to a terminal state, streaming
// each completed record to the durable log the moment the pipeline
// emits it.
func (s *Server) runSurvey(ctx context.Context, job *surveyJob) {
	defer s.releaseSurveySlot()
	defer s.met.surveysActive.Add(-1)
	defer func() {
		if job.closeDNS != nil {
			job.closeDNS()
		}
	}()
	defer job.cancelFn()()

	// The per-job watchdog: when the pipeline's counters freeze for
	// StallTimeout the job is cancelled and failed with a retryable
	// cause — a wedged resolver or sink must not pin a running slot
	// forever. The watchdog dies with the job's context.
	if t := s.surveyCfg.StallTimeout; t > 0 {
		go resilience.StallWatch{
			Timeout: t,
			Progress: func() int64 {
				pr := job.pipeline.Progress()
				return pr.Submitted + pr.Probed + pr.Fetched + pr.Done
			},
			OnStall: func(stalled time.Duration) {
				job.mu.Lock()
				job.stalledFor = stalled
				cancel := job.cancel
				job.mu.Unlock()
				s.logf("survey %s: watchdog: no progress for %v, cancelling", job.id, stalled.Round(time.Millisecond))
				if cancel != nil {
					cancel()
				}
			},
		}.Run(ctx)
	}

	var writer *triage.RecordWriter
	var closeLog func() error
	if job.durable {
		f, err := s.store().OpenRecordsAppend(job.id)
		if err != nil {
			s.finalizeSurvey(job, nil, nil, surveyFailed, err.Error(), true)
			return
		}
		writer = triage.NewRecordWriter(f)
		closeLog = f.Close
	}

	in := make(chan triage.Input)
	go func() {
		defer close(in)
		for _, input := range job.inputs {
			select {
			case in <- input:
			case <-ctx.Done():
				return
			}
		}
	}()

	records := make([]triage.Record, 0, len(job.inputs))
	var writeErr error
	for rec := range job.pipeline.Stream(ctx, in) {
		// Resumed records are already in the log — a crash leaves a
		// strict prefix (the collector emits in input order and the
		// writer appends in emission order), and the resume set is
		// exactly that prefix. Appending only the new records keeps the
		// log byte-identical to an uninterrupted run at every kill point.
		if writer != nil && !rec.Resumed && writeErr == nil {
			if writeErr = writer.Write(rec); writeErr != nil {
				job.cancelFn()()
			}
		}
		records = append(records, rec)
	}
	if closeLog != nil {
		if err := closeLog(); err != nil && writeErr == nil {
			writeErr = err
		}
	}
	s.met.surveyDomains.Add(uint64(len(records)))

	// Every record that will exist is on disk: announce draining, then
	// compute the tally. A kill between here and the terminal write
	// resumes with a full resume set and an instant re-tally.
	job.mu.Lock()
	job.status = surveyDraining
	stalled := job.stalledFor
	job.mu.Unlock()
	if err := s.persistSurvey(job); err != nil {
		s.logf("%v", err)
	}
	tally := triage.NewTally()
	for _, rec := range records {
		tally.Add(rec)
	}

	runErr := ctx.Err()
	switch {
	case writeErr != nil:
		s.finalizeSurvey(job, records, tally, surveyFailed, "record log: "+writeErr.Error(), true)
	case stalled > 0:
		s.finalizeSurvey(job, records, tally, surveyFailed,
			fmt.Sprintf("stage stalled: no progress for %v", stalled.Round(time.Millisecond)), true)
	case errors.Is(runErr, context.Canceled):
		s.finalizeSurvey(job, records, tally, surveyCancelled, "cancelled", false)
	case runErr != nil:
		s.finalizeSurvey(job, records, tally, surveyFailed, runErr.Error(), true)
	default:
		s.finalizeSurvey(job, records, tally, surveyDone, "", false)
	}
}

// finalizeSurvey lands a job's terminal state: in-memory results, the
// aggregate tally, the durable manifest.
func (s *Server) finalizeSurvey(job *surveyJob, records []triage.Record, tally *triage.Tally,
	state, errMsg string, retryable bool) {
	job.mu.Lock()
	job.status = state
	job.err = errMsg
	job.retryable = retryable
	job.records = records
	job.tally = tally
	job.finishedAt = s.surveys.clock()
	job.mu.Unlock()
	if state == surveyDone && tally != nil {
		s.mergeSurveyTally(tally)
	}
	if err := s.persistSurvey(job); err != nil {
		s.logf("%v", err)
	}
	s.logf("survey %s: %s (%d records)", job.id, state, len(records))
}

// mergeSurveyTally folds one finished job's tally into the server-wide
// §6 aggregation /metrics serves.
func (s *Server) mergeSurveyTally(t *triage.Tally) {
	s.tallyMu.Lock()
	defer s.tallyMu.Unlock()
	if s.surveyTally == nil {
		s.surveyTally = triage.NewTally()
	}
	s.surveyTally.Merge(t)
}

// surveyTallySnapshot deep-copies the aggregate tally for a scrape
// (the live one keeps being merged into).
func (s *Server) surveyTallySnapshot() *triage.Tally {
	s.tallyMu.Lock()
	defer s.tallyMu.Unlock()
	if s.surveyTally == nil {
		return nil
	}
	out := triage.NewTally()
	out.Merge(s.surveyTally)
	return out
}

// RecoverSurveys reloads the durable job store after a restart:
// corrupt manifests are quarantined (loudly), finished jobs are
// republished with their tallies re-merged, and interrupted jobs
// resume — under the running-jobs cap, with the overflow queued in
// creation order. Call once after New, before serving traffic. A nil
// store is a no-op.
func (s *Server) RecoverSurveys() error {
	if s.store() == nil {
		return nil
	}
	res, err := s.store().Recover(s.logf)
	if err != nil {
		return err
	}
	s.met.surveysQuarantined.Add(uint64(res.Quarantined))
	for _, m := range res.Finished {
		job := s.jobFromManifest(m)
		job.lazyRecords = true
		s.publishSurvey(job)
		s.met.surveysRecovered.Add(1)
		if m.State == surveyDone && m.Tally != nil {
			s.mergeSurveyTally(m.Tally)
		}
	}
	for _, m := range res.Active {
		job := s.jobFromManifest(m)
		job.resume = true
		job.status = surveyAccepted
		s.publishSurvey(job)
		if s.surveys.tryReserve(s.maxSurveyJobs()) {
			if err := s.launch(job); err != nil {
				s.finalizeSurvey(job, nil, nil, surveyFailed, err.Error(), true)
				s.releaseSurveySlot()
			}
		} else {
			s.surveys.enqueue(job)
			s.logf("survey %s: recovered, queued for a running slot", job.id)
		}
	}
	if n := len(res.Active); n > 0 || res.Quarantined > 0 {
		s.logf("survey recovery: %d interrupted, %d finished, %d quarantined",
			n, len(res.Finished), res.Quarantined)
	}
	return nil
}

// jobFromManifest rebuilds the in-memory job shell a manifest
// describes.
func (s *Server) jobFromManifest(m jobstore.Manifest) *surveyJob {
	return &surveyJob{
		id:          m.ID,
		epoch:       m.Epoch,
		queried:     m.Queried,
		detected:    m.Detected,
		spec:        m.Spec,
		inputs:      m.Inputs,
		durable:     true,
		journalPath: m.JournalPath,
		journalFrom: m.JournalFrom,
		journalTo:   m.JournalTo,
		createdUnix: m.CreatedUnix,
		status:      m.State,
		err:         m.Error,
		retryable:   m.Retryable,
		resumes:     m.Resumes,
		tally:       m.Tally,
		finishedAt:  time.Unix(m.UpdatedUnix, 0),
	}
}
