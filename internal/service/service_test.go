package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/confusables"
	"repro/internal/core"
	"repro/internal/fontgen"
	"repro/internal/homoglyph"
	"repro/internal/punycode"
	"repro/internal/simchar"
	"repro/internal/snapshot"
	"repro/internal/ucd"
)

var (
	testDBOnce sync.Once
	testDBVal  *homoglyph.DB
)

func testDB(t testing.TB) *homoglyph.DB {
	t.Helper()
	testDBOnce.Do(func() {
		font := fontgen.Generate(fontgen.Options{SkipCJK: true, SkipHangul: true})
		sim, _ := simchar.Build(font, ucd.IDNASet(), simchar.Options{})
		testDBVal = homoglyph.New(confusables.Default(), sim, 0)
	})
	return testDBVal
}

func ace(t testing.TB, label string) string {
	t.Helper()
	a, err := punycode.ToASCIILabel(label)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func newTestServer(t testing.TB, refs []string, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	cfg.Engine = core.NewEngine(core.NewDetector(testDB(t), refs))
	s := New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t testing.TB, url string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func getJSON(t testing.TB, url string, v any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
	return resp
}

func detect(t testing.TB, ts *httptest.Server, body any) (detectResponse, *http.Response) {
	t.Helper()
	resp, data := postJSON(t, ts.URL+"/v1/detect", body)
	var out detectResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(data, &out); err != nil {
			t.Fatalf("decoding %q: %v", data, err)
		}
	}
	return out, resp
}

func TestDetectSingleFQDN(t *testing.T) {
	_, ts := newTestServer(t, []string{"google", "facebook"}, Config{})
	probe := ace(t, "gооgle") + ".net" // Cyrillic о ×2
	out, resp := detect(t, ts, detectRequest{FQDN: probe})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if out.Epoch != 1 || out.Queried != 1 || len(out.Matches) != 1 {
		t.Fatalf("unexpected response: %+v", out)
	}
	m := out.Matches[0]
	if m.FQDN != probe || m.Reference != "google" || m.Imitated != "google.net" || m.TLD != "net" {
		t.Fatalf("match = %+v", m)
	}
	if len(m.Diffs) != 2 || m.Diffs[0].Want != "o" || m.Diffs[0].Source == "" {
		t.Fatalf("diffs = %+v", m.Diffs)
	}
}

func TestDetectBatchSortedAndSingleEpoch(t *testing.T) {
	_, ts := newTestServer(t, []string{"google", "amazon"}, Config{})
	g := ace(t, "gооgle") + ".com"
	a := ace(t, "аmazon") + ".co.uk" // Cyrillic а
	out, _ := detect(t, ts, detectRequest{FQDNs: []string{g, "plain.com", a}})
	if out.Queried != 3 || len(out.Matches) != 2 {
		t.Fatalf("unexpected response: %+v", out)
	}
	// Deterministic batch order: sorted by FQDN ("xn--ggle..." before
	// "xn--mazon..."), regardless of request order.
	if !(out.Matches[0].FQDN < out.Matches[1].FQDN) {
		t.Fatalf("matches unsorted: %+v", out.Matches)
	}
	if out.Matches[0].Imitated != "google.com" || out.Matches[1].Imitated != "amazon.co.uk" {
		t.Fatalf("imitated = %q, %q", out.Matches[0].Imitated, out.Matches[1].Imitated)
	}
}

// TestDetectNormalizationAgreesWithCLI is the serve/detect-agreement
// regression: the HTTP handler must route queries through the exact
// NormalizeZoneLine rules the CLI feeder applies — trailing root dot
// dropped, ASCII uppercase folded (mixed-case ACE included), and
// whitespace trimmed — so the same name answers identically on both
// paths.
func TestDetectNormalizationAgreesWithCLI(t *testing.T) {
	_, ts := newTestServer(t, []string{"google"}, Config{})
	canonical := ace(t, "gооgle") + ".com"
	out, _ := detect(t, ts, detectRequest{FQDN: canonical})
	if len(out.Matches) != 1 {
		t.Fatalf("canonical query found %d matches", len(out.Matches))
	}
	want := out.Matches[0]

	for _, spelled := range []string{
		canonical + ".",                  // trailing root dot
		strings.ToUpper(canonical),       // uppercase query
		strings.ToUpper(canonical) + ".", // both
		"  " + canonical + "\t",          // surrounding whitespace
		"XN--ggle-55DA.CoM",              // mixed-case ACE
	} {
		out, _ := detect(t, ts, detectRequest{FQDN: spelled})
		if len(out.Matches) != 1 {
			t.Errorf("%q: %d matches, want 1", spelled, len(out.Matches))
			continue
		}
		got := out.Matches[0]
		if got.FQDN != want.FQDN || got.Reference != want.Reference || got.Imitated != want.Imitated {
			t.Errorf("%q: match %+v, want %+v (normalization disagreement)", spelled, got, want)
		}
	}

	// Plain-ASCII and blank queries are no-candidate shapes: zero
	// matches, not an error — the same verdict the feeder gate gives.
	for _, benign := range []string{"google.com", "GOOGLE.COM.", "   "} {
		out, resp := detect(t, ts, detectRequest{FQDN: benign})
		if resp.StatusCode != http.StatusOK || len(out.Matches) != 0 {
			t.Errorf("%q: status %d, %d matches", benign, resp.StatusCode, len(out.Matches))
		}
	}
}

func TestExplainWarnings(t *testing.T) {
	_, ts := newTestServer(t, []string{"google"}, Config{})
	probe := ace(t, "gооgle") + ".com"
	var out explainResponse
	resp := getJSON(t, ts.URL+"/v1/explain?fqdn="+url.QueryEscape(strings.ToUpper(probe)+"."), &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if len(out.Matches) != 1 || len(out.Warnings) != 1 {
		t.Fatalf("response = %+v", out)
	}
	if !strings.Contains(out.Warnings[0], "google.com") {
		t.Fatalf("warning %q does not name the imitated domain", out.Warnings[0])
	}
}

func TestReloadInlineReferences(t *testing.T) {
	s, ts := newTestServer(t, []string{"google"}, Config{})
	probe := ace(t, "gооgle") + ".com"
	if out, _ := detect(t, ts, detectRequest{FQDN: probe}); len(out.Matches) != 1 {
		t.Fatal("probe should match before reload")
	}

	resp, data := postJSON(t, ts.URL+"/v1/reload", reloadRequest{References: []string{"paypal"}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload status = %d: %s", resp.StatusCode, data)
	}
	var rl reloadResponse
	if err := json.Unmarshal(data, &rl); err != nil {
		t.Fatal(err)
	}
	if rl.Epoch != 2 || rl.References != 1 || rl.Source != "inline" {
		t.Fatalf("reload = %+v", rl)
	}
	out, _ := detect(t, ts, detectRequest{FQDN: probe})
	if len(out.Matches) != 0 || out.Epoch != 2 {
		t.Fatalf("post-reload: %+v", out)
	}
	if st := s.Stats(); st.Reloads != 1 || st.LastReload == "" {
		t.Fatalf("stats after reload: %+v", st)
	}
}

// TestReloadInlineDomainShapedReferences: inline references must
// reduce through the same registrable-label rules as a refs file, so
// "paypal.com" protects "paypal" instead of indexing an inert dotted
// literal — and a list that reduces to nothing is a 422, not a silent
// empty detector.
func TestReloadInlineDomainShapedReferences(t *testing.T) {
	_, ts := newTestServer(t, []string{"google"}, Config{})
	resp, data := postJSON(t, ts.URL+"/v1/reload",
		reloadRequest{References: []string{"PayPal.com", "amazon.co.uk", "# comment", " "}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload status = %d: %s", resp.StatusCode, data)
	}
	var rl reloadResponse
	if err := json.Unmarshal(data, &rl); err != nil {
		t.Fatal(err)
	}
	if rl.References != 2 {
		t.Fatalf("reload = %+v, want 2 registrable labels", rl)
	}
	probe := ace(t, "pаypal") + ".com" // Cyrillic а
	if out, _ := detect(t, ts, detectRequest{FQDN: probe}); len(out.Matches) != 1 {
		t.Fatalf("domain-shaped inline reference did not index its label: %+v", out)
	}
	if resp, _ := postJSON(t, ts.URL+"/v1/reload", reloadRequest{References: []string{"  ", "# x"}}); resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("all-blank references: status = %d, want 422", resp.StatusCode)
	}
}

func TestReloadRefsFile(t *testing.T) {
	_, ts := newTestServer(t, []string{"google"}, Config{})
	path := filepath.Join(t.TempDir(), "refs.txt")
	if err := os.WriteFile(path, []byte("paypal.com\nwikipedia.org\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	resp, data := postJSON(t, ts.URL+"/v1/reload", reloadRequest{Refs: path})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload status = %d: %s", resp.StatusCode, data)
	}
	var rl reloadResponse
	if err := json.Unmarshal(data, &rl); err != nil {
		t.Fatal(err)
	}
	if rl.References != 2 || rl.Source != "refs:"+path {
		t.Fatalf("reload = %+v", rl)
	}
	probe := ace(t, "pаypal") + ".com" // Cyrillic а
	if out, _ := detect(t, ts, detectRequest{FQDN: probe}); len(out.Matches) != 1 {
		t.Fatalf("new reference not live: %+v", out)
	}
}

func TestReloadSnapshotFile(t *testing.T) {
	s, ts := newTestServer(t, []string{"google"}, Config{})
	db := testDB(t)
	snapPath := filepath.Join(t.TempDir(), "b.snap")
	if err := snapshot.WriteFile(snapPath, db, core.NewDetector(db, []string{"wikipedia", "paypal"})); err != nil {
		t.Fatal(err)
	}
	resp, data := postJSON(t, ts.URL+"/v1/reload", reloadRequest{Snapshot: snapPath})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload status = %d: %s", resp.StatusCode, data)
	}
	var rl reloadResponse
	if err := json.Unmarshal(data, &rl); err != nil {
		t.Fatal(err)
	}
	if rl.Epoch != 2 || rl.References != 2 || rl.Source != "snapshot:"+snapPath {
		t.Fatalf("reload = %+v", rl)
	}
	if got := s.engine.Detector().NumReferences(); got != 2 {
		t.Fatalf("live references = %d", got)
	}
}

// TestReloadSnapshotRefsOverride: an explicit reference list POSTed
// alongside a snapshot overrides the snapshot's embedded detector —
// the same precedence `serve -snapshot -refs` applies at startup. The
// embedded set must never silently win over a list the operator named.
func TestReloadSnapshotRefsOverride(t *testing.T) {
	_, ts := newTestServer(t, []string{"google"}, Config{})
	db := testDB(t)
	snapPath := filepath.Join(t.TempDir(), "embedded.snap")
	if err := snapshot.WriteFile(snapPath, db, core.NewDetector(db, []string{"google", "facebook"})); err != nil {
		t.Fatal(err)
	}
	refsPath := filepath.Join(t.TempDir(), "refs.txt")
	if err := os.WriteFile(refsPath, []byte("paypal.com\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	resp, data := postJSON(t, ts.URL+"/v1/reload", reloadRequest{Snapshot: snapPath, Refs: refsPath})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload status = %d: %s", resp.StatusCode, data)
	}
	var rl reloadResponse
	if err := json.Unmarshal(data, &rl); err != nil {
		t.Fatal(err)
	}
	if rl.References != 1 || rl.Source != "snapshot:"+snapPath+" refs:"+refsPath {
		t.Fatalf("reload = %+v: embedded detector won over the explicit list", rl)
	}
	probe := ace(t, "pаypal") + ".com"
	if out, _ := detect(t, ts, detectRequest{FQDN: probe}); len(out.Matches) != 1 {
		t.Fatalf("override list not live: %+v", out)
	}
	// Inline references override the embedded detector too.
	resp, data = postJSON(t, ts.URL+"/v1/reload",
		reloadRequest{Snapshot: snapPath, References: []string{"wikipedia.org"}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("inline override status = %d: %s", resp.StatusCode, data)
	}
	if err := json.Unmarshal(data, &rl); err != nil {
		t.Fatal(err)
	}
	if rl.References != 1 || rl.Source != "snapshot:"+snapPath+" inline" {
		t.Fatalf("inline override = %+v", rl)
	}
	// An explicitly named refs file that parses to nothing is a 422,
	// not a silent fallback to the embedded set.
	emptyPath := filepath.Join(t.TempDir(), "empty.txt")
	if err := os.WriteFile(emptyPath, []byte("# nothing\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if resp, _ := postJSON(t, ts.URL+"/v1/reload", reloadRequest{Snapshot: snapPath, Refs: emptyPath}); resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("empty override list: status = %d, want 422", resp.StatusCode)
	}
}

func TestReloadSnapshotWithoutDetectorNeedsRefs(t *testing.T) {
	_, ts := newTestServer(t, []string{"google"}, Config{})
	db := testDB(t)
	snapPath := filepath.Join(t.TempDir(), "db-only.snap")
	if err := snapshot.WriteFile(snapPath, db, nil); err != nil {
		t.Fatal(err)
	}
	resp, _ := postJSON(t, ts.URL+"/v1/reload", reloadRequest{Snapshot: snapPath})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("detector-less snapshot: status = %d, want 422", resp.StatusCode)
	}
	// ... but the same snapshot plus inline references compiles fine.
	resp, data := postJSON(t, ts.URL+"/v1/reload",
		reloadRequest{Snapshot: snapPath, References: []string{"paypal"}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot+references: status = %d: %s", resp.StatusCode, data)
	}
}

func TestReloadBadRequests(t *testing.T) {
	_, ts := newTestServer(t, []string{"google"}, Config{})
	for _, tc := range []struct {
		name string
		body string
		want int
	}{
		{"empty body", ``, http.StatusBadRequest},
		{"no source", `{}`, http.StatusUnprocessableEntity},
		{"unknown field", `{"snapshots":"x"}`, http.StatusBadRequest},
		{"missing snapshot file", `{"snapshot":"/nonexistent.snap"}`, http.StatusUnprocessableEntity},
		{"missing refs file", `{"refs":"/nonexistent.txt"}`, http.StatusUnprocessableEntity},
	} {
		resp, err := http.Post(ts.URL+"/v1/reload", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status = %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}
}

func TestDetectBadRequests(t *testing.T) {
	s, ts := newTestServer(t, []string{"google"}, Config{MaxBatch: 2})
	for _, tc := range []struct {
		name string
		body string
	}{
		{"empty body", ``},
		{"no fqdn", `{}`},
		{"oversized batch", `{"fqdns":["a.com","b.com","c.com"]}`},
		{"wrong type", `{"fqdn":5}`},
	} {
		resp, err := http.Post(ts.URL+"/v1/detect", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", tc.name, resp.StatusCode)
		}
	}
	if st := s.Stats(); st.BadInput != 4 {
		t.Errorf("bad_input = %d, want 4", st.BadInput)
	}
	// GET on a POST route must 405, not detect.
	resp, err := http.Get(ts.URL + "/v1/detect")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/detect: status = %d, want 405", resp.StatusCode)
	}
}

// TestOverloadSheds pins the bounded-concurrency contract: with the
// gate full, a detect request is refused immediately with 503 +
// Retry-After instead of queueing, and the shed counter records it.
func TestOverloadSheds(t *testing.T) {
	s, ts := newTestServer(t, []string{"google"}, Config{MaxInFlight: 1})
	s.sem <- struct{}{} // occupy the only slot
	resp, _ := postJSON(t, ts.URL+"/v1/detect", detectRequest{FQDN: "x.com"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("no Retry-After header")
	}
	// Health and metrics bypass the gate: an overloaded server still
	// answers its monitor.
	var h healthResponse
	if resp := getJSON(t, ts.URL+"/healthz", &h); resp.StatusCode != http.StatusOK || h.Status != "ok" {
		t.Fatalf("healthz under overload: %d %+v", resp.StatusCode, h)
	}
	<-s.sem
	if out, _ := detect(t, ts, detectRequest{FQDN: "x.com"}); out.Epoch != 1 {
		t.Fatal("request after release failed")
	}
	if st := s.Stats(); st.Shed != 1 {
		t.Errorf("shed = %d, want 1", st.Shed)
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	_, ts := newTestServer(t, []string{"google", "facebook"}, Config{})
	var h healthResponse
	getJSON(t, ts.URL+"/healthz", &h)
	if h.Status != "ok" || h.Epoch != 1 || h.References != 2 {
		t.Fatalf("healthz = %+v", h)
	}
	probe := ace(t, "gооgle") + ".com"
	for i := 0; i < 10; i++ {
		detect(t, ts, detectRequest{FQDN: probe})
	}
	var st Stats
	getJSON(t, ts.URL+"/metrics", &st)
	if st.Epoch != 1 || st.References != 2 || st.Requests != 10 || st.Domains != 10 || st.Matches != 10 {
		t.Fatalf("metrics = %+v", st)
	}
	if st.P50Ns == 0 || st.P99Ns < st.P50Ns || st.QPS <= 0 {
		t.Fatalf("latency counters not populated: %+v", st)
	}
}

// logCapture collects Logf lines so tests can synchronize on watcher
// lifecycle events instead of sleeping.
type logCapture struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (lc *logCapture) logf(f string, a ...any) {
	lc.mu.Lock()
	fmt.Fprintf(&lc.buf, f+"\n", a...)
	lc.mu.Unlock()
}

func (lc *logCapture) wait(t *testing.T, substr string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		lc.mu.Lock()
		ok := strings.Contains(lc.buf.String(), substr)
		lc.mu.Unlock()
		if ok {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("log line %q never appeared", substr)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestWatchSnapshotHotSwaps(t *testing.T) {
	var lc logCapture
	s, _ := newTestServer(t, []string{"google"}, Config{Logf: lc.logf})
	db := testDB(t)
	path := filepath.Join(t.TempDir(), "live.snap")
	if err := snapshot.WriteFile(path, db, core.NewDetector(db, []string{"google"})); err != nil {
		t.Fatal(err)
	}
	// The baseline is the served artifact's own mtime, captured before
	// the watcher starts — a rename landing in that window is detected,
	// not mistaken for already-served state.
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.WatchSnapshot(ctx, WatchConfig{Path: path, Interval: 5 * time.Millisecond, Loaded: st.ModTime()})
	}()
	lc.wait(t, "watch: polling")

	// Overwrite the artifact the way a compile cron would: atomic
	// rename via WriteFile. The watcher must pick it up and swap.
	if err := snapshot.WriteFile(path, db, core.NewDetector(db, []string{"paypal", "wikipedia"})); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for s.engine.Epoch() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("watcher never swapped")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := s.engine.Detector().NumReferences(); got != 2 {
		t.Fatalf("live references = %d, want 2", got)
	}
	if st := s.Stats(); st.Reloads != 1 {
		t.Fatalf("reloads = %d, want 1", st.Reloads)
	}
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("watcher did not stop on ctx cancel")
	}
}

// TestWatchSnapshotPinsOverrideRefs: when the operator started with an
// explicit reference list (-refs over a snapshot), an artifact
// rollover must rebuild over the new snapshot's DB with THAT list —
// never silently fall back to the artifact's embedded detector.
func TestWatchSnapshotPinsOverrideRefs(t *testing.T) {
	var lc logCapture
	s, _ := newTestServer(t, []string{"paypal"}, Config{Logf: lc.logf})
	db := testDB(t)
	path := filepath.Join(t.TempDir(), "live.snap")
	if err := snapshot.WriteFile(path, db, core.NewDetector(db, []string{"google"})); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go s.WatchSnapshot(ctx, WatchConfig{
		Path:         path,
		Interval:     5 * time.Millisecond,
		Loaded:       st.ModTime(),
		OverrideRefs: []string{"paypal"},
	})
	lc.wait(t, "watch: polling")

	// Rotate to an artifact embedding a different (larger) set.
	if err := snapshot.WriteFile(path, db, core.NewDetector(db, []string{"google", "facebook"})); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for s.engine.Epoch() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("watcher never swapped")
		}
		time.Sleep(5 * time.Millisecond)
	}
	refs := s.engine.Detector().References()
	if len(refs) != 1 || refs[0] != "paypal" {
		t.Fatalf("post-rollover references = %v: embedded set replaced the pinned override", refs)
	}
}

// TestWatchSnapshotSurvivesCorruptFile: a bad artifact must never take
// down the serving state — the watcher logs and keeps the old epoch.
func TestWatchSnapshotSurvivesCorruptFile(t *testing.T) {
	var lc logCapture
	db := testDB(t)
	engine := core.NewEngine(core.NewDetector(db, []string{"google"}))
	s := New(Config{Engine: engine, Logf: lc.logf})
	path := filepath.Join(t.TempDir(), "live.snap")
	if err := snapshot.WriteFile(path, db, core.NewDetector(db, []string{"google"})); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Zero Loaded baseline: stat at start.
	go s.WatchSnapshot(ctx, WatchConfig{Path: path, Interval: 5 * time.Millisecond})
	lc.wait(t, "watch: polling")

	if err := os.WriteFile(path, []byte("garbage, not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	lc.wait(t, "keeping epoch")
	if ep := s.engine.Epoch(); ep != 1 {
		t.Fatalf("epoch = %d after corrupt artifact, want 1", ep)
	}
}

// TestWatchSnapshotStatErrorStreak: a path that stops stat-ing is an
// outage, not background noise — the watcher counts every failed poll
// in watch_errors, logs once per streak (not once per tick), and
// recovers in place when the artifact reappears.
func TestWatchSnapshotStatErrorStreak(t *testing.T) {
	var lc logCapture
	s, _ := newTestServer(t, []string{"google"}, Config{Logf: lc.logf})
	db := testDB(t)
	path := filepath.Join(t.TempDir(), "live.snap")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		// 1ms interval: the 16× backoff cap keeps even a long failure
		// streak polling every ≤16ms, so the test stays fast.
		s.WatchSnapshot(ctx, WatchConfig{Path: path, Interval: time.Millisecond})
	}()
	lc.wait(t, "watch: stat")

	// Let the streak run: errors accumulate, the log line does not.
	deadline := time.Now().Add(10 * time.Second)
	for s.Stats().WatchErrors < 5 {
		if time.Now().After(deadline) {
			t.Fatalf("watch_errors stuck at %d", s.Stats().WatchErrors)
		}
		time.Sleep(2 * time.Millisecond)
	}
	lc.mu.Lock()
	statLines := strings.Count(lc.buf.String(), "watch: stat")
	lc.mu.Unlock()
	if statLines != 1 {
		t.Fatalf("streak of ≥5 failures logged %d stat lines, want 1", statLines)
	}

	// The artifact appears; the watcher must announce recovery and then
	// complete a real swap off the newly visible file.
	if err := snapshot.WriteFile(path, db, core.NewDetector(db, []string{"paypal"})); err != nil {
		t.Fatal(err)
	}
	lc.wait(t, "visible again after")
	deadline = time.Now().Add(10 * time.Second)
	for s.engine.Epoch() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("watcher never swapped after recovery")
		}
		time.Sleep(2 * time.Millisecond)
	}
	errs := s.Stats().WatchErrors
	time.Sleep(20 * time.Millisecond)
	if got := s.Stats().WatchErrors; got != errs {
		t.Fatalf("watch_errors still growing after recovery: %d -> %d", errs, got)
	}
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("watcher did not stop on ctx cancel")
	}
}

// TestWatchSnapshotStopsDuringBackoff: ctx cancellation must interrupt
// a widened (backoff) sleep promptly, not wait the delay out.
func TestWatchSnapshotStopsDuringBackoff(t *testing.T) {
	s, _ := newTestServer(t, []string{"google"}, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.WatchSnapshot(ctx, WatchConfig{
			Path:     filepath.Join(t.TempDir(), "never-exists.snap"),
			Interval: time.Hour, // backoff delays would be hours
		})
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("WatchSnapshot did not exit promptly during backoff sleep")
	}
}

func TestServeGracefulShutdown(t *testing.T) {
	s, _ := newTestServer(t, []string{"google"}, Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- s.Serve(ctx, ln) }()

	url := "http://" + ln.Addr().String() + "/healthz"
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(url)
		if err == nil {
			resp.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never came up: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("Serve returned %v after graceful shutdown", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("Serve did not return after ctx cancel")
	}
}

// TestMatchEncodingShape pins the shared wire format the CLI's -json
// flag and the HTTP responses both emit.
func TestMatchEncodingShape(t *testing.T) {
	det := core.NewDetector(testDB(t), []string{"google"})
	ms := det.DetectDomain(ace(t, "gооgle") + ".co.uk")
	if len(ms) != 1 {
		t.Fatalf("fixture: %d matches", len(ms))
	}
	raw, err := json.Marshal(NewMatch(ms[0]))
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"fqdn", "idn", "unicode", "reference", "imitated", "tld", "diffs"} {
		if _, ok := decoded[key]; !ok {
			t.Errorf("wire match missing %q: %s", key, raw)
		}
	}
	if decoded["imitated"] != "google.co.uk" || decoded["tld"] != "co.uk" {
		t.Errorf("wire match = %s", raw)
	}
	diffs := decoded["diffs"].([]any)
	d0 := diffs[0].(map[string]any)
	for _, key := range []string{"pos", "got", "want", "source"} {
		if _, ok := d0[key]; !ok {
			t.Errorf("wire diff missing %q: %s", key, raw)
		}
	}
}

func TestLatencyHistQuantiles(t *testing.T) {
	var h latencyHist
	if got := h.quantile(0.5); got != 0 {
		t.Fatalf("empty hist p50 = %d", got)
	}
	// 90 fast observations (~1µs) and 10 slow (~1ms): p50 reports the
	// fast bucket's ceiling, p99 the slow one's.
	for i := 0; i < 90; i++ {
		h.observe(time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.observe(time.Millisecond)
	}
	p50, p99 := h.quantile(0.5), h.quantile(0.99)
	if p50 < 1000 || p50 > 4096 {
		t.Errorf("p50 = %dns, want ~1-2µs bucket", p50)
	}
	if p99 < 1000000 || p99 > 4194304 {
		t.Errorf("p99 = %dns, want ~1-2ms bucket", p99)
	}
	// Far-overflow observations land in the last bucket, not panic.
	h.observe(20 * time.Minute)
	if got := h.quantile(1.0); got != 1<<39 {
		t.Errorf("overflow bucket ceiling = %d", got)
	}
}
