package service

import (
	"math/bits"
	"sync/atomic"
	"time"

	"repro/internal/triage"
	"repro/internal/zonewatch"
)

// latencyHist is a lock-free power-of-two latency histogram: bucket i
// counts observations in [2^(i-1), 2^i) nanoseconds. Recording is one
// atomic increment, so the serving hot path pays no lock and no
// allocation; quantiles are read by walking the (fixed, small) bucket
// array and reporting the ceiling of the bucket holding the target
// rank — ≤2× resolution, which is what capacity planning needs from
// p50/p99 counters, at zero cost to the request path.
type latencyHist struct {
	buckets [40]atomic.Uint64 // 2^39 ns ≈ 9 min: far past any request
}

func (h *latencyHist) observe(d time.Duration) {
	ns := uint64(d.Nanoseconds())
	if ns == 0 {
		ns = 1
	}
	i := bits.Len64(ns)
	if i >= len(h.buckets) {
		i = len(h.buckets) - 1
	}
	h.buckets[i].Add(1)
}

// quantile returns the upper bound (ns) of the bucket containing the
// q-th fraction of observations, or 0 with none recorded. Reads are
// not atomic across buckets; under concurrent traffic the answer is a
// valid quantile of *some* recent state, which is all a scrape needs.
func (h *latencyHist) quantile(q float64) uint64 {
	var counts [40]uint64
	total := uint64(0)
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	seen := uint64(0)
	for i, c := range counts {
		seen += c
		if seen > rank {
			return uint64(1) << uint(i)
		}
	}
	return uint64(1) << uint(len(counts)-1)
}

// metrics aggregates the counters /metrics exposes. All fields are
// atomics: the request path records with plain increments and the
// scrape path assembles a consistent-enough snapshot without ever
// blocking a query.
type metrics struct {
	start     time.Time
	requests  atomic.Uint64 // detection requests accepted (detect + explain)
	domains   atomic.Uint64 // FQDNs scanned (batch requests count each)
	matches   atomic.Uint64 // matches returned
	shed      atomic.Uint64 // requests refused by the concurrency limiter
	reloads   atomic.Uint64 // successful reloads/swaps through this server
	latency   latencyHist   // per-request service time (detect + explain)
	inFlight  atomic.Int64  // currently admitted detection requests
	badInput  atomic.Uint64 // 4xx rejections (malformed body, missing fqdn)
	lastSwapN atomic.Int64  // unix nanos of the last observed swap; 0 = never

	surveys       atomic.Uint64 // survey jobs accepted
	surveysActive atomic.Int64  // survey jobs currently running
	surveyDomains atomic.Uint64 // domains triaged across all survey jobs

	surveysEvicted     atomic.Uint64 // finished jobs dropped by TTL/cap retention
	surveysResumed     atomic.Uint64 // interrupted jobs resumed after a restart
	surveysRecovered   atomic.Uint64 // finished jobs republished from the store
	surveysQuarantined atomic.Uint64 // corrupt manifests refused and quarantined

	watchErrors atomic.Uint64 // snapshot-watch poll failures (stat errors)
}

// Stats is the JSON shape /metrics serves. QPS is cumulative
// (requests over uptime): a zone-scale load test reads throughput off
// one scrape, and a dashboard that wants instantaneous rates can
// difference two scrapes of Requests itself.
type Stats struct {
	Epoch      uint64  `json:"epoch"`
	References int     `json:"references"`
	UptimeSec  float64 `json:"uptime_sec"`
	Requests   uint64  `json:"requests"`
	Domains    uint64  `json:"domains"`
	Matches    uint64  `json:"matches"`
	Shed       uint64  `json:"shed"`
	Reloads    uint64  `json:"reloads"`
	BadInput   uint64  `json:"bad_input"`
	InFlight   int64   `json:"in_flight"`
	QPS        float64 `json:"qps"`
	P50Ns      uint64  `json:"p50_ns"`
	P90Ns      uint64  `json:"p90_ns"`
	P99Ns      uint64  `json:"p99_ns"`
	LastReload string  `json:"last_reload,omitempty"` // RFC3339; absent before the first swap

	Surveys       uint64 `json:"surveys"`
	SurveysActive int64  `json:"surveys_active"`
	SurveyDomains uint64 `json:"survey_domains"`

	// Job-store health: retention evictions, restart recovery outcomes,
	// and the per-state census of live jobs. A monitor alerting on
	// surveys_quarantined > 0 catches on-disk corruption the moment a
	// restart meets it.
	SurveysEvicted     uint64         `json:"surveys_evicted"`
	SurveysResumed     uint64         `json:"surveys_resumed"`
	SurveysRecovered   uint64         `json:"surveys_recovered"`
	SurveysQuarantined uint64         `json:"surveys_quarantined"`
	SurveyJobs         map[string]int `json:"survey_jobs,omitempty"`

	// SurveyTally is the continuously-merged §6 aggregation across every
	// finished survey job — the paper's funnel and tables, updated as the
	// zone-watch batcher lands each batch.
	SurveyTally *triage.Tally `json:"survey_tally,omitempty"`

	// SurveyJournalLag is how many bytes of the zone-watch deltas
	// journal no survey job covers yet (batcher wiring only).
	SurveyJournalLag int64 `json:"survey_journal_lag,omitempty"`

	// WatchErrors counts snapshot-watch polls that failed to stat the
	// watched artifact. A monitor alerting on its growth catches the
	// "snapshot path broke, server quietly serves stale state" failure
	// that a bare reload counter cannot see.
	WatchErrors uint64 `json:"watch_errors"`

	// ZoneWatch carries the continuous zone watcher's health when the
	// server runs alongside one (`watch-zone -addr`); absent otherwise.
	ZoneWatch *zonewatch.Health `json:"zonewatch,omitempty"`
}

func (m *metrics) snapshot(epoch uint64, references int) Stats {
	uptime := time.Since(m.start).Seconds()
	req := m.requests.Load()
	s := Stats{
		Epoch:      epoch,
		References: references,
		UptimeSec:  uptime,
		Requests:   req,
		Domains:    m.domains.Load(),
		Matches:    m.matches.Load(),
		Shed:       m.shed.Load(),
		Reloads:    m.reloads.Load(),
		BadInput:   m.badInput.Load(),
		InFlight:   m.inFlight.Load(),
		P50Ns:      m.latency.quantile(0.50),
		P90Ns:      m.latency.quantile(0.90),
		P99Ns:      m.latency.quantile(0.99),

		Surveys:       m.surveys.Load(),
		SurveysActive: m.surveysActive.Load(),
		SurveyDomains: m.surveyDomains.Load(),

		SurveysEvicted:     m.surveysEvicted.Load(),
		SurveysResumed:     m.surveysResumed.Load(),
		SurveysRecovered:   m.surveysRecovered.Load(),
		SurveysQuarantined: m.surveysQuarantined.Load(),

		WatchErrors: m.watchErrors.Load(),
	}
	if uptime > 0 {
		s.QPS = float64(req) / uptime
	}
	if ns := m.lastSwapN.Load(); ns != 0 {
		s.LastReload = time.Unix(0, ns).UTC().Format(time.RFC3339)
	}
	return s
}
