package service

import (
	"context"
	"errors"
	"net"
	"net/http"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/resilience"
	"repro/internal/snapshot"
)

// Serve runs the server on ln until ctx is cancelled, then shuts down
// gracefully: the listener closes, in-flight requests get drainTimeout
// to finish on the state they loaded, and only then does Serve return.
// A hot-swap service that dropped requests on redeploy would defeat
// the point of epoch-versioned state.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	httpSrv := &http.Server{
		Handler:           s,
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		s.logf("shutting down: draining in-flight requests")
		sctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		if err := httpSrv.Shutdown(sctx); err != nil {
			return err
		}
		err := <-errc
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	}
}

const drainTimeout = 10 * time.Second

// WatchConfig parameterizes WatchSnapshot.
type WatchConfig struct {
	// Path is the snapshot file to poll.
	Path string
	// Interval is the poll period; <= 0 means 2s.
	Interval time.Duration
	// Loaded is the mtime of the artifact the engine currently serves,
	// captured BEFORE it was read: an artifact renamed into place
	// between that load and the watcher's first poll then shows a
	// different mtime and is picked up on the first tick, instead of
	// being permanently mistaken for the already-served one. Zero falls
	// back to stat-at-start (callers that built their engine some other
	// way).
	Loaded time.Time
	// OverrideRefs, when non-empty, pins the reference list: each new
	// artifact contributes its homoglyph database, and the detector is
	// rebuilt over it from these references — the serve-time `-refs`
	// override must survive snapshot rollovers, not silently give way
	// to the artifact's embedded set on the first nightly recompile.
	OverrideRefs []string
}

// WatchSnapshot polls the snapshot's modification time every interval
// and, when it changes, loads the artifact and swaps the new state in
// — the `serve -watch` auto-reload: a cron job (or PR-2's `shamfinder
// compile`) atomically renames a fresh snapshot into place, and the
// running server picks it up within one interval, no restart, no
// dropped query. Artifacts that fail to load (truncated copy,
// checksum mismatch), and — absent OverrideRefs — artifacts without
// an embedded detector, are logged and skipped: the engine keeps
// serving its current epoch; a bad artifact must never take down the
// service. Returns when ctx is done.
//
// Polling by mtime is deliberate: it needs no platform notification
// API, and the snapshot writer's atomic rename guarantees the file is
// complete whenever its mtime moves.
func (s *Server) WatchSnapshot(ctx context.Context, cfg WatchConfig) {
	interval := cfg.Interval
	if interval <= 0 {
		interval = 2 * time.Second
	}
	last := cfg.Loaded
	if last.IsZero() {
		if st, err := os.Stat(cfg.Path); err == nil {
			last = st.ModTime()
		}
	}
	// Stat failures widen the poll with jittered backoff instead of
	// silently ticking forever: a poll loop that swallows every error is
	// indistinguishable from one that works, right up until the nightly
	// snapshot quietly stops arriving. Equal jitter keeps a floor under
	// the cadence so a broken path cannot turn into a stat busy-loop.
	backoff := resilience.Backoff{Base: interval, Max: 16 * interval, Jitter: resilience.JitterEqual}
	s.logf("watch: polling %s every %v", cfg.Path, interval)
	failStreak := 0
	for {
		delay := interval
		if failStreak > 0 {
			delay = backoff.Delay(failStreak - 1)
		}
		t := time.NewTimer(delay)
		select {
		case <-ctx.Done():
			t.Stop()
			return
		case <-t.C:
		}
		st, err := os.Stat(cfg.Path)
		if err != nil {
			// One transient miss is normal (the writer may be mid-rename);
			// a streak is an outage. Log the first failure of each streak
			// and count every one in /metrics.
			s.met.watchErrors.Add(1)
			if failStreak == 0 {
				s.logf("watch: stat %s: %v (keeping epoch %d, retrying with backoff)", cfg.Path, err, s.engine.Epoch())
			}
			failStreak++
			continue
		}
		if failStreak > 0 {
			s.logf("watch: %s visible again after %d failed polls", cfg.Path, failStreak)
			failStreak = 0
		}
		if mt := st.ModTime(); !mt.Equal(last) {
			last = mt
			db, det, err := snapshot.ReadFile(cfg.Path)
			if err != nil {
				s.logf("watch: reloading %s failed, keeping epoch %d: %v", cfg.Path, s.engine.Epoch(), err)
				continue
			}
			if len(cfg.OverrideRefs) > 0 {
				det = core.NewDetector(db, cfg.OverrideRefs)
			}
			if det == nil {
				s.logf("watch: %s embeds no detector, keeping epoch %d", cfg.Path, s.engine.Epoch())
				continue
			}
			epoch := s.engine.Swap(det)
			s.noteSwap()
			s.logf("watch: %s changed, swapped to epoch %d (%d references)", cfg.Path, epoch, det.NumReferences())
		}
	}
}
