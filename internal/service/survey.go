package service

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/blacklist"
	"repro/internal/core"
	"repro/internal/dnsclient"
	"repro/internal/triage"
	"repro/internal/webclassify"
)

// The async survey job API: POST /v1/survey submits a candidate list,
// the server detects homographs against the current engine epoch and
// pushes the matches through the triage pipeline (DNS → web →
// blacklist) in the background; GET /v1/survey/{id} reports progress
// and, once done, the records and tally; DELETE cancels. Jobs are
// in-memory: they live as long as the process, which matches the
// serving model (a survey is operational tooling, not durable state —
// the CLI's JSONL checkpoints cover durability).

// SurveyConfig wires the serving layer's triage backends. The zero
// value works: DNS probing uses the resolver named per request, web
// fetches dial the surveyed domain directly, and the blacklist stage
// is skipped.
type SurveyConfig struct {
	// Resolve overrides how web fetches dial (domain, port) — the
	// simulated-infrastructure hook. Nil dials domain:port.
	Resolve webclassify.Resolver
	// Blacklists enables the blacklist stage.
	Blacklists *blacklist.Set
	// ParkingNS are parking-provider NS suffixes for the
	// parked-by-delegation first pass.
	ParkingNS []string
	// MaxJobs bounds concurrently running surveys; more are rejected
	// with 429. 0 means 2.
	MaxJobs int
	// MaxDomains bounds one survey's candidate list. 0 means 100000.
	MaxDomains int
}

type surveyRequest struct {
	FQDNs []string `json:"fqdns"`
	// Resolver is the DNS server to probe ("host:port"). Required
	// unless SkipDNS.
	Resolver string `json:"resolver,omitempty"`
	// Detect, default true, filters the candidates through the
	// detection engine first and surveys only the homograph matches.
	// Explicitly false surveys every submitted FQDN.
	Detect *bool `json:"detect,omitempty"`

	DNSWorkers     int     `json:"dns_workers,omitempty"`
	WebWorkers     int     `json:"web_workers,omitempty"`
	Rate           float64 `json:"rate,omitempty"`
	Retries        *int    `json:"retries,omitempty"`
	StageTimeoutMS int     `json:"stage_timeout_ms,omitempty"`
	DNSTimeoutMS   int     `json:"dns_timeout_ms,omitempty"`
	WebTimeoutMS   int     `json:"web_timeout_ms,omitempty"`
	SkipDNS        bool    `json:"skip_dns,omitempty"`
	SkipWeb        bool    `json:"skip_web,omitempty"`
	SkipBlacklist  bool    `json:"skip_blacklist,omitempty"`
}

type surveyAccepted struct {
	ID       string `json:"id"`
	Status   string `json:"status"`
	Epoch    uint64 `json:"epoch"`
	Queried  int    `json:"queried"`
	Detected int    `json:"detected"`
}

type surveyStatus struct {
	ID       string          `json:"id"`
	Status   string          `json:"status"`
	Epoch    uint64          `json:"epoch"`
	Queried  int             `json:"queried"`
	Detected int             `json:"detected"`
	Progress triage.Progress `json:"progress"`
	Error    string          `json:"error,omitempty"`
	Records  []triage.Record `json:"records,omitempty"`
	Tally    *triage.Tally   `json:"tally,omitempty"`
}

// Job states.
const (
	surveyRunning   = "running"
	surveyDone      = "done"
	surveyFailed    = "failed"
	surveyCancelled = "cancelled"
)

type surveyJob struct {
	id       string
	epoch    uint64
	queried  int
	detected int
	pipeline *triage.Pipeline
	cancel   context.CancelFunc

	mu      sync.Mutex
	status  string
	err     string
	records []triage.Record
	tally   *triage.Tally
}

func (j *surveyJob) snapshot(includeRecords bool) surveyStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := surveyStatus{
		ID:       j.id,
		Status:   j.status,
		Epoch:    j.epoch,
		Queried:  j.queried,
		Detected: j.detected,
		Progress: j.pipeline.Progress(),
		Error:    j.err,
	}
	if j.status == surveyDone {
		st.Tally = j.tally
		if includeRecords {
			st.Records = j.records
		}
	}
	return st
}

// keepFinished bounds how many finished jobs the registry retains:
// old results (and their record sets) are evicted oldest-first when a
// new job is published, so a long-lived server's memory stays flat no
// matter how many surveys it has run.
const keepFinished = 32

type surveyRegistry struct {
	mu      sync.Mutex
	seq     int
	running int
	jobs    map[string]*surveyJob
	order   []string // publication order, for oldest-first eviction
}

// reserve claims a running-job slot and an id BEFORE any submit-time
// work happens, so a request destined for 429 is rejected without
// paying for detection. The job itself is published only once fully
// constructed; until then the id 404s (the client has not seen it
// yet).
func (r *surveyRegistry) reserve(maxJobs int) (string, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.running >= maxJobs {
		return "", fmt.Errorf("survey: %d jobs already running", r.running)
	}
	r.running++
	r.seq++
	return "s" + strconv.Itoa(r.seq), nil
}

// release returns a reserved slot (job finished, or submit failed
// after reserve).
func (r *surveyRegistry) release() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.running--
}

// publish makes a fully-constructed job visible and evicts the oldest
// finished jobs beyond the retention bound.
func (r *surveyRegistry) publish(job *surveyJob) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.jobs == nil {
		r.jobs = make(map[string]*surveyJob)
	}
	r.jobs[job.id] = job
	r.order = append(r.order, job.id)
	kept := make([]string, 0, len(r.order))
	finished := 0
	for i := len(r.order) - 1; i >= 0; i-- {
		j := r.jobs[r.order[i]]
		if j == nil {
			continue
		}
		j.mu.Lock()
		done := j.status != surveyRunning
		j.mu.Unlock()
		if done {
			finished++
			if finished > keepFinished {
				delete(r.jobs, r.order[i])
				continue
			}
		}
		kept = append(kept, r.order[i])
	}
	// kept was built newest-first; restore publication order.
	for i, j := 0, len(kept)-1; i < j; i, j = i+1, j-1 {
		kept[i], kept[j] = kept[j], kept[i]
	}
	r.order = kept
}

// remove evicts a job (DELETE on a finished job frees its records).
func (r *surveyRegistry) remove(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.jobs, id)
}

func (r *surveyRegistry) get(id string) (*surveyJob, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	job, ok := r.jobs[id]
	return job, ok
}

func (s *Server) handleSurveySubmit(w http.ResponseWriter, r *http.Request) {
	var req surveyRequest
	if err := decodeBody(w, r, &req); err != nil {
		s.met.badInput.Add(1)
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	maxDomains := s.surveyCfg.MaxDomains
	if maxDomains <= 0 {
		maxDomains = 100000
	}
	if len(req.FQDNs) == 0 {
		s.met.badInput.Add(1)
		writeError(w, http.StatusBadRequest, `need "fqdns"`)
		return
	}
	if len(req.FQDNs) > maxDomains {
		s.met.badInput.Add(1)
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("survey of %d exceeds limit %d", len(req.FQDNs), maxDomains))
		return
	}
	if !req.SkipDNS && req.Resolver == "" {
		s.met.badInput.Add(1)
		writeError(w, http.StatusBadRequest, `need "resolver" (or "skip_dns")`)
		return
	}

	// Claim the running-job slot FIRST: a request the cap will reject
	// must be shed before it pays for detection, the way /v1/detect's
	// admission gate sheds before scanning.
	maxJobs := s.surveyCfg.MaxJobs
	if maxJobs <= 0 {
		maxJobs = 2
	}
	id, err := s.surveys.reserve(maxJobs)
	if err != nil {
		w.Header().Set("Retry-After", "5")
		writeError(w, http.StatusTooManyRequests, err.Error())
		return
	}

	// The detect stage answers from ONE epoch, exactly like /v1/detect:
	// the whole survey is attributable to the engine state it started
	// on, even if reloads land while probes run.
	det, epoch := s.engine.Current()
	var inputs []triage.Input
	if req.Detect == nil || *req.Detect {
		buf := s.bufs.Get().(*[]byte)
		var matches []core.Match
		for _, name := range req.FQDNs {
			if ms := scan(det, buf, name); len(ms) > 0 {
				matches = append(matches, ms...)
			}
		}
		s.putBuf(buf)
		core.SortMatches(matches)
		inputs = triage.InputsFromMatches(matches)
	} else {
		seen := make(map[string]bool, len(req.FQDNs))
		for _, name := range req.FQDNs {
			// The same ACE-aware normalization the blacklist and the CLI
			// match-file path use: a Unicode-form candidate probes as its
			// xn-- form, never as a raw non-ASCII DNS name.
			fqdn := triage.NormalizeFQDN(name)
			if fqdn == "" || seen[fqdn] {
				continue
			}
			seen[fqdn] = true
			inputs = append(inputs, triage.Input{FQDN: fqdn})
		}
	}

	cfg, err := s.surveyPipelineConfig(req)
	if err != nil {
		s.surveys.release()
		s.met.badInput.Add(1)
		writeError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	pipeline, err := triage.New(cfg)
	if err != nil {
		s.surveys.release()
		writeError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}

	// The job is published only fully constructed: every field a
	// concurrent GET/DELETE can reach is set before publish.
	ctx, cancel := context.WithCancel(context.Background())
	job := &surveyJob{
		id:       id,
		status:   surveyRunning,
		epoch:    epoch,
		queried:  len(req.FQDNs),
		detected: len(inputs),
		pipeline: pipeline,
		cancel:   cancel,
	}
	s.surveys.publish(job)
	s.met.surveys.Add(1)
	s.met.surveysActive.Add(1)
	s.logf("survey %s: %d candidates, %d to triage (epoch %d)", job.id, job.queried, job.detected, epoch)
	go s.runSurvey(ctx, job, inputs)

	writeJSON(w, http.StatusAccepted, surveyAccepted{
		ID: job.id, Status: surveyRunning, Epoch: epoch,
		Queried: job.queried, Detected: job.detected,
	})
}

func (s *Server) runSurvey(ctx context.Context, job *surveyJob, inputs []triage.Input) {
	defer s.surveys.release()
	defer s.met.surveysActive.Add(-1)
	defer job.cancel()
	records, err := job.pipeline.Run(ctx, inputs)
	s.met.surveyDomains.Add(uint64(len(records)))
	tally := triage.NewTally()
	for _, rec := range records {
		tally.Add(rec)
	}
	job.mu.Lock()
	defer job.mu.Unlock()
	job.records = records
	job.tally = tally
	switch {
	case errors.Is(err, context.Canceled):
		job.status = surveyCancelled
		job.err = "cancelled"
	case err != nil:
		job.status = surveyFailed
		job.err = err.Error()
	default:
		job.status = surveyDone
	}
	s.logf("survey %s: %s (%d records)", job.id, job.status, len(records))
}

// surveyPipelineConfig maps request knobs onto the triage config,
// bounded to keep one HTTP client from monopolizing the process.
func (s *Server) surveyPipelineConfig(req surveyRequest) (triage.Config, error) {
	clamp := func(v, def, max int) int {
		if v <= 0 {
			return def
		}
		if v > max {
			return max
		}
		return v
	}
	ms := func(v, def int) time.Duration {
		if v <= 0 {
			return time.Duration(def) * time.Millisecond
		}
		return time.Duration(v) * time.Millisecond
	}
	// Rate and stage timeout are clamped like the worker counts: a
	// survey of MaxDomains at 0.001 qps, or with a multi-day stage
	// timeout, would pin a running-jobs slot effectively forever.
	rate := req.Rate
	if rate > 0 && rate < 1 {
		rate = 1
	}
	cfg := triage.Config{
		DNSWorkers:    clamp(req.DNSWorkers, 16, 128),
		WebWorkers:    clamp(req.WebWorkers, 16, 128),
		RateLimit:     rate,
		StageTimeout:  time.Duration(clamp(req.StageTimeoutMS, 15000, 120000)) * time.Millisecond,
		SkipDNS:       req.SkipDNS,
		SkipWeb:       req.SkipWeb,
		SkipBlacklist: req.SkipBlacklist || s.surveyCfg.Blacklists == nil,
		Blacklists:    s.surveyCfg.Blacklists,
		ParkingNS:     s.surveyCfg.ParkingNS,
	}
	if req.Retries != nil {
		// The pointer distinguishes explicit zero from unset: a client
		// asking for "retries":0 means none, which the triage config
		// spells as a negative value (its own zero means "default").
		cfg.Retries = *req.Retries
		if cfg.Retries == 0 {
			cfg.Retries = -1
		}
	}
	if !req.SkipDNS {
		if _, _, err := net.SplitHostPort(req.Resolver); err != nil {
			return cfg, fmt.Errorf("bad resolver %q: %v", req.Resolver, err)
		}
		client := dnsclient.New(req.Resolver)
		client.Timeout = ms(req.DNSTimeoutMS, 2000)
		client.Retries = 0 // the pipeline's "retries" knob owns retry policy
		cfg.DNS = client
	}
	if !req.SkipWeb {
		resolve := s.surveyCfg.Resolve
		if resolve == nil {
			resolve = func(domain string, port int) string {
				return net.JoinHostPort(domain, strconv.Itoa(port))
			}
		}
		classifier := &webclassify.Classifier{
			Resolve:   resolve,
			Timeout:   ms(req.WebTimeoutMS, 3000),
			UserAgent: "ShamFinder-Survey/1.0",
		}
		if s.surveyCfg.Blacklists != nil {
			classifier.IsMalicious = s.surveyCfg.Blacklists.AnyContains
		}
		cfg.Classifier = classifier
	}
	return cfg, nil
}

func (s *Server) handleSurveyStatus(w http.ResponseWriter, r *http.Request) {
	job, ok := s.surveys.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such survey")
		return
	}
	includeRecords := r.URL.Query().Get("records") != "0"
	writeJSON(w, http.StatusOK, job.snapshot(includeRecords))
}

// handleSurveyCancel cancels a running job; on an already-finished
// job it evicts the entry instead, freeing its retained records.
func (s *Server) handleSurveyCancel(w http.ResponseWriter, r *http.Request) {
	job, ok := s.surveys.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such survey")
		return
	}
	job.mu.Lock()
	running := job.status == surveyRunning
	job.mu.Unlock()
	if running {
		job.cancel()
	} else {
		s.surveys.remove(job.id)
	}
	writeJSON(w, http.StatusOK, job.snapshot(false))
}
