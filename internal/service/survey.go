package service

import (
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/blacklist"
	"repro/internal/core"
	"repro/internal/dnsclient"
	"repro/internal/jobstore"
	"repro/internal/triage"
	"repro/internal/webclassify"
)

// The async survey job API: POST /v1/survey submits a candidate list,
// the server detects homographs against the current engine epoch and
// pushes the matches through the triage pipeline (DNS → web →
// blacklist) in the background; GET /v1/survey/{id} reports progress
// and, once done, the records and tally; DELETE cancels. With a
// jobstore wired (SurveyConfig.Store / `serve -job-dir`) every job is
// durable: its spec and state machine live in a CRC'd manifest, its
// completed records stream into an append-only JSONL log, and a
// process killed at any point resumes each interrupted job on restart
// with byte-identical output. Without a store, jobs are in-memory and
// live as long as the process — the original serving model.

// SurveyConfig wires the serving layer's triage backends. The zero
// value works: DNS probing uses the resolver named per request, web
// fetches dial the surveyed domain directly, the blacklist stage is
// skipped, and jobs are in-memory only.
type SurveyConfig struct {
	// Resolve overrides how web fetches dial (domain, port) — the
	// simulated-infrastructure hook. Nil dials domain:port.
	Resolve webclassify.Resolver
	// Blacklists enables the blacklist stage.
	Blacklists *blacklist.Set
	// ParkingNS are parking-provider NS suffixes for the
	// parked-by-delegation first pass.
	ParkingNS []string
	// MaxJobs bounds concurrently running surveys; more are rejected
	// with 429 (HTTP) or queued (batcher submissions and restart
	// recovery). 0 means 2.
	MaxJobs int
	// MaxDomains bounds one survey's candidate list. 0 means 100000.
	MaxDomains int

	// Store, when non-nil, makes every job durable: manifests and
	// record logs live under its directory and interrupted jobs resume
	// on restart (call Server.RecoverSurveys once after New).
	Store *jobstore.Store
	// JobTTL evicts finished jobs (registry and store) this long after
	// they finish. 0 disables the TTL; the KeepFinished cap still
	// applies.
	JobTTL time.Duration
	// KeepFinished bounds how many finished jobs are retained before
	// oldest-first eviction. 0 means 32.
	KeepFinished int
	// StallTimeout is the per-job watchdog: a running job whose
	// pipeline counters stop moving for this long is cancelled and
	// marked failed with a retryable cause. 0 disables the watchdog.
	StallTimeout time.Duration
}

type surveyRequest struct {
	FQDNs []string `json:"fqdns"`
	// Resolver is the DNS server to probe ("host:port"). Required
	// unless SkipDNS.
	Resolver string `json:"resolver,omitempty"`
	// Transport selects the probing transport: "udp" (default), "tcp",
	// "dot" or "doh".
	Transport string `json:"dns_transport,omitempty"`
	// Detect, default true, filters the candidates through the
	// detection engine first and surveys only the homograph matches.
	// Explicitly false surveys every submitted FQDN.
	Detect *bool `json:"detect,omitempty"`
	// Backend selects the detection backend for that filter ("postings",
	// "skeleton", "both"); empty means the server default.
	Backend string `json:"backend,omitempty"`

	DNSWorkers     int     `json:"dns_workers,omitempty"`
	WebWorkers     int     `json:"web_workers,omitempty"`
	Rate           float64 `json:"rate,omitempty"`
	Retries        *int    `json:"retries,omitempty"`
	StageTimeoutMS int     `json:"stage_timeout_ms,omitempty"`
	DNSTimeoutMS   int     `json:"dns_timeout_ms,omitempty"`
	WebTimeoutMS   int     `json:"web_timeout_ms,omitempty"`
	SkipDNS        bool    `json:"skip_dns,omitempty"`
	SkipWeb        bool    `json:"skip_web,omitempty"`
	SkipBlacklist  bool    `json:"skip_blacklist,omitempty"`
}

// spec maps the request's pipeline knobs onto the durable job spec —
// the two shapes are field-for-field identical so a manifest replays
// exactly what the client asked for.
// The detect-stage backend is recorded in its resolved form (spec
// callers pass it through requestBackend first), so a manifest always
// names the backend that actually ran, not the empty default.
func (req surveyRequest) spec(be core.Backend) jobstore.Spec {
	return jobstore.Spec{
		Resolver:       req.Resolver,
		Transport:      req.Transport,
		Backend:        be.String(),
		DNSWorkers:     req.DNSWorkers,
		WebWorkers:     req.WebWorkers,
		Rate:           req.Rate,
		Retries:        req.Retries,
		StageTimeoutMS: req.StageTimeoutMS,
		DNSTimeoutMS:   req.DNSTimeoutMS,
		WebTimeoutMS:   req.WebTimeoutMS,
		SkipDNS:        req.SkipDNS,
		SkipWeb:        req.SkipWeb,
		SkipBlacklist:  req.SkipBlacklist,
	}
}

type surveyAcceptedResp struct {
	ID       string `json:"id"`
	Status   string `json:"status"`
	Epoch    uint64 `json:"epoch"`
	Queried  int    `json:"queried"`
	Detected int    `json:"detected"`
}

type surveyStatus struct {
	ID       string          `json:"id"`
	Status   string          `json:"status"`
	Epoch    uint64          `json:"epoch"`
	Queried  int             `json:"queried"`
	Detected int             `json:"detected"`
	Progress triage.Progress `json:"progress"`
	Error    string          `json:"error,omitempty"`
	// Retryable marks a failed job whose cause a re-submission could
	// clear (a stalled stage, a dead resolver) as opposed to bad input.
	Retryable bool `json:"retryable,omitempty"`
	// Resumes counts process restarts that resumed this job.
	Resumes int             `json:"resumes,omitempty"`
	Records []triage.Record `json:"records,omitempty"`
	Tally   *triage.Tally   `json:"tally,omitempty"`
}

// Job states — the jobstore state machine; the in-memory registry and
// the durable manifests speak the same vocabulary.
const (
	surveyAccepted  = jobstore.StateAccepted
	surveyRunning   = jobstore.StateRunning
	surveyDraining  = jobstore.StateDraining
	surveyDone      = jobstore.StateDone
	surveyFailed    = jobstore.StateFailed
	surveyCancelled = jobstore.StateCancelled
)

type surveyJob struct {
	id       string
	epoch    uint64
	queried  int
	detected int
	spec     jobstore.Spec
	inputs   []triage.Input
	durable  bool
	// resume marks a job recovered mid-flight: launch prepares its
	// record log (torn-tail trim) and seeds the pipeline's resume set
	// from it.
	resume bool
	// journal* record the zone-watch deltas span this job covers
	// (batcher submissions); zero for direct API jobs.
	journalPath            string
	journalFrom, journalTo int64
	createdUnix            int64

	// closeDNS, set at launch, tears down the job's pooled DNS client
	// (sockets, reader goroutines, TLS sessions) when the run ends; a
	// long-lived serve process must not accrete a connection pool per
	// finished job.
	closeDNS func() error

	mu         sync.Mutex
	status     string
	err        string
	retryable  bool
	resumes    int
	records    []triage.Record
	tally      *triage.Tally
	pipeline   *triage.Pipeline // set at launch; nil while queued
	cancel     func()           // set at launch; nil while queued
	finishedAt time.Time        // set when the job turns terminal
	stalledFor time.Duration    // set by the watchdog before it cancels
	// lazyRecords marks a terminal job recovered from disk whose
	// records were not loaded into memory; GETs read them from the
	// store on demand.
	lazyRecords bool
}

func (j *surveyJob) snapshot(includeRecords bool) surveyStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := surveyStatus{
		ID:        j.id,
		Status:    j.status,
		Epoch:     j.epoch,
		Queried:   j.queried,
		Detected:  j.detected,
		Error:     j.err,
		Retryable: j.retryable,
		Resumes:   j.resumes,
	}
	if j.pipeline != nil {
		st.Progress = j.pipeline.Progress()
	}
	if j.status == surveyDone {
		st.Tally = j.tally
		if includeRecords {
			st.Records = j.records
		}
	}
	return st
}

// manifest assembles the job's durable descriptor for its current
// state. Caller holds j.mu or owns the job exclusively.
func (j *surveyJob) manifestLocked() jobstore.Manifest {
	return jobstore.Manifest{
		ID:          j.id,
		State:       j.status,
		Epoch:       j.epoch,
		Queried:     j.queried,
		Detected:    j.detected,
		Spec:        j.spec,
		Inputs:      j.inputs,
		JournalPath: j.journalPath,
		JournalFrom: j.journalFrom,
		JournalTo:   j.journalTo,
		Error:       j.err,
		Retryable:   j.retryable,
		Tally:       j.tally,
		Resumes:     j.resumes,
		CreatedUnix: j.createdUnix,
	}
}

// keepFinished is the default retention bound on finished jobs: old
// results (and their record sets) are evicted oldest-first so a
// long-lived server's memory — and with a store, its disk — stays flat
// no matter how many surveys it has run.
const keepFinished = 32

type surveyRegistry struct {
	mu      sync.Mutex
	seq     int
	running int
	jobs    map[string]*surveyJob
	order   []string // publication order, for oldest-first eviction
	// pending queues fully-constructed jobs awaiting a running slot:
	// recovered jobs beyond the cap at restart, and batcher submissions
	// arriving while the cap is full. FIFO.
	pending []*surveyJob
	// now is injectable for TTL tests.
	now func() time.Time
}

func (r *surveyRegistry) clock() time.Time {
	if r.now != nil {
		return r.now()
	}
	return time.Now()
}

// tryReserve claims a running-job slot BEFORE any submit-time work
// happens, so a request destined for rejection is shed without paying
// for detection.
func (r *surveyRegistry) tryReserve(maxJobs int) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.running >= maxJobs {
		return false
	}
	r.running++
	return true
}

// release returns a reserved slot; when a queued job is waiting it is
// handed the slot instead (the slot count never dips) and returned for
// the caller to launch.
func (r *surveyRegistry) release() *surveyJob {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.pending) > 0 {
		next := r.pending[0]
		r.pending = r.pending[1:]
		return next
	}
	r.running--
	return nil
}

// enqueue parks a published job until a slot frees up.
func (r *surveyRegistry) enqueue(job *surveyJob) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.pending = append(r.pending, job)
}

// dequeue removes a queued job (DELETE on an accepted job), reporting
// whether it was still queued.
func (r *surveyRegistry) dequeue(job *surveyJob) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, p := range r.pending {
		if p == job {
			r.pending = append(r.pending[:i], r.pending[i+1:]...)
			return true
		}
	}
	return false
}

func (r *surveyRegistry) nextID() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	return "s" + strconv.Itoa(r.seq)
}

// publish makes a fully-constructed job visible and applies retention.
// It returns the evicted jobs so the caller can drop their durable
// state and count them.
func (r *surveyRegistry) publish(job *surveyJob, keep int, ttl time.Duration) []*surveyJob {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.jobs == nil {
		r.jobs = make(map[string]*surveyJob)
	}
	r.jobs[job.id] = job
	r.order = append(r.order, job.id)
	return r.sweepLocked(keep, ttl)
}

// sweep applies the retention policy: finished jobs past the TTL, then
// finished jobs beyond the keep cap, oldest-first. Running, draining
// and queued jobs are never evicted.
func (r *surveyRegistry) sweep(keep int, ttl time.Duration) []*surveyJob {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sweepLocked(keep, ttl)
}

func (r *surveyRegistry) sweepLocked(keep int, ttl time.Duration) []*surveyJob {
	now := r.clock()
	var evicted []*surveyJob
	kept := make([]string, 0, len(r.order))
	finished := 0
	for i := len(r.order) - 1; i >= 0; i-- {
		j := r.jobs[r.order[i]]
		if j == nil {
			continue
		}
		j.mu.Lock()
		terminal := jobstore.Terminal(j.status)
		expired := terminal && ttl > 0 && !j.finishedAt.IsZero() && now.Sub(j.finishedAt) > ttl
		j.mu.Unlock()
		if terminal {
			finished++
			if expired || finished > keep {
				delete(r.jobs, r.order[i])
				evicted = append(evicted, j)
				continue
			}
		}
		kept = append(kept, r.order[i])
	}
	// kept was built newest-first; restore publication order.
	for i, j := 0, len(kept)-1; i < j; i, j = i+1, j-1 {
		kept[i], kept[j] = kept[j], kept[i]
	}
	r.order = kept
	return evicted
}

// remove evicts a job (DELETE on a finished job frees its records).
func (r *surveyRegistry) remove(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.jobs, id)
}

func (r *surveyRegistry) get(id string) (*surveyJob, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	job, ok := r.jobs[id]
	return job, ok
}

// countByState tallies live jobs per state — the /metrics breakdown.
func (r *surveyRegistry) countByState() map[string]int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.jobs) == 0 {
		return nil
	}
	out := make(map[string]int, 4)
	for _, j := range r.jobs {
		j.mu.Lock()
		out[j.status]++
		j.mu.Unlock()
	}
	return out
}

func (s *Server) maxSurveyJobs() int {
	if s.surveyCfg.MaxJobs > 0 {
		return s.surveyCfg.MaxJobs
	}
	return 2
}

func (s *Server) keepFinishedSurveys() int {
	if s.surveyCfg.KeepFinished > 0 {
		return s.surveyCfg.KeepFinished
	}
	return keepFinished
}

func (s *Server) handleSurveySubmit(w http.ResponseWriter, r *http.Request) {
	var req surveyRequest
	if err := decodeBody(w, r, &req); err != nil {
		s.met.badInput.Add(1)
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	maxDomains := s.surveyCfg.MaxDomains
	if maxDomains <= 0 {
		maxDomains = 100000
	}
	if len(req.FQDNs) == 0 {
		s.met.badInput.Add(1)
		writeError(w, http.StatusBadRequest, `need "fqdns"`)
		return
	}
	if len(req.FQDNs) > maxDomains {
		s.met.badInput.Add(1)
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("survey of %d exceeds limit %d", len(req.FQDNs), maxDomains))
		return
	}
	if !req.SkipDNS && req.Resolver == "" {
		s.met.badInput.Add(1)
		writeError(w, http.StatusBadRequest, `need "resolver" (or "skip_dns")`)
		return
	}
	be, err := s.requestBackend(req.Backend)
	if err != nil {
		s.met.badInput.Add(1)
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	// Claim the running-job slot FIRST: a request the cap will reject
	// must be shed before it pays for detection, the way /v1/detect's
	// admission gate sheds before scanning.
	if !s.surveys.tryReserve(s.maxSurveyJobs()) {
		w.Header().Set("Retry-After", "5")
		writeError(w, http.StatusTooManyRequests,
			fmt.Sprintf("survey: %d jobs already running", s.maxSurveyJobs()))
		return
	}

	// The detect stage answers from ONE epoch, exactly like /v1/detect:
	// the whole survey is attributable to the engine state it started
	// on, even if reloads land while probes run.
	det, epoch := s.engine.Current()
	var inputs []triage.Input
	if req.Detect == nil || *req.Detect {
		buf := s.bufs.Get().(*[]byte)
		var matches []core.Match
		for _, name := range req.FQDNs {
			if ms := scan(det, buf, name, be); len(ms) > 0 {
				matches = append(matches, ms...)
			}
		}
		s.putBuf(buf)
		core.SortMatches(matches)
		inputs = triage.InputsFromMatches(matches)
	} else {
		seen := make(map[string]bool, len(req.FQDNs))
		for _, name := range req.FQDNs {
			// The same ACE-aware normalization the blacklist and the CLI
			// match-file path use: a Unicode-form candidate probes as its
			// xn-- form, never as a raw non-ASCII DNS name.
			fqdn := triage.NormalizeFQDN(name)
			if fqdn == "" || seen[fqdn] {
				continue
			}
			seen[fqdn] = true
			inputs = append(inputs, triage.Input{FQDN: fqdn})
		}
	}

	job, err := s.startSurvey(surveyStart{
		spec:    req.spec(be),
		inputs:  inputs,
		queried: len(req.FQDNs),
		epoch:   epoch,
		slot:    true,
	})
	if err != nil {
		s.releaseSurveySlot()
		s.met.badInput.Add(1)
		writeError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	writeJSON(w, http.StatusAccepted, surveyAcceptedResp{
		ID: job.id, Status: surveyRunning, Epoch: epoch,
		Queried: job.queried, Detected: job.detected,
	})
}

// SubmitSurvey is the programmatic submit path — the zone-watch
// batcher's entry point. Unlike the HTTP handler it never sheds: a
// submission arriving while the running-jobs cap is full is accepted
// (durably, when a store is wired) and queued for the next free slot,
// so a burst of zone deltas never orphans its batch. The journal span
// [journalFrom, journalTo) is recorded in the job's manifest; on
// watcher restart the batch cursor resumes after the furthest covered
// offset.
func (s *Server) SubmitSurvey(spec jobstore.Spec, inputs []triage.Input, queried int,
	journalPath string, journalFrom, journalTo int64) (string, error) {
	_, epoch := s.engine.Current()
	job, err := s.startSurvey(surveyStart{
		spec:        spec,
		inputs:      inputs,
		queried:     queried,
		epoch:       epoch,
		journalPath: journalPath,
		journalFrom: journalFrom,
		journalTo:   journalTo,
		slot:        s.surveys.tryReserve(s.maxSurveyJobs()),
		queue:       true,
	})
	if err != nil {
		return "", err
	}
	return job.id, nil
}

// surveyPipelineConfig maps a job spec onto the triage config, bounded
// to keep one client from monopolizing the process.
func (s *Server) surveyPipelineConfig(spec jobstore.Spec) (triage.Config, error) {
	clamp := func(v, def, max int) int {
		if v <= 0 {
			return def
		}
		if v > max {
			return max
		}
		return v
	}
	ms := func(v, def int) time.Duration {
		if v <= 0 {
			return time.Duration(def) * time.Millisecond
		}
		return time.Duration(v) * time.Millisecond
	}
	// Rate and stage timeout are clamped like the worker counts: a
	// survey of MaxDomains at 0.001 qps, or with a multi-day stage
	// timeout, would pin a running-jobs slot effectively forever.
	rate := spec.Rate
	if rate > 0 && rate < 1 {
		rate = 1
	}
	cfg := triage.Config{
		DNSWorkers:    clamp(spec.DNSWorkers, 16, 128),
		WebWorkers:    clamp(spec.WebWorkers, 16, 128),
		RateLimit:     rate,
		StageTimeout:  time.Duration(clamp(spec.StageTimeoutMS, 15000, 120000)) * time.Millisecond,
		SkipDNS:       spec.SkipDNS,
		SkipWeb:       spec.SkipWeb,
		SkipBlacklist: spec.SkipBlacklist || s.surveyCfg.Blacklists == nil,
		Blacklists:    s.surveyCfg.Blacklists,
		ParkingNS:     s.surveyCfg.ParkingNS,
	}
	if spec.Retries != nil {
		// The pointer distinguishes explicit zero from unset: a client
		// asking for "retries":0 means none, which the triage config
		// spells as a negative value (its own zero means "default").
		cfg.Retries = *spec.Retries
		if cfg.Retries == 0 {
			cfg.Retries = -1
		}
	}
	if !spec.SkipDNS {
		if _, _, err := net.SplitHostPort(spec.Resolver); err != nil {
			return cfg, fmt.Errorf("bad resolver %q: %v", spec.Resolver, err)
		}
		transport, err := dnsclient.ParseTransport(spec.Transport)
		if err != nil {
			return cfg, fmt.Errorf("bad dns_transport %q: %v", spec.Transport, err)
		}
		client := dnsclient.New(spec.Resolver)
		client.Transport = transport
		client.Timeout = ms(spec.DNSTimeoutMS, 2000)
		client.Retries = 0 // the pipeline's "retries" knob owns retry policy
		cfg.DNS = client
	}
	if !spec.SkipWeb {
		resolve := s.surveyCfg.Resolve
		if resolve == nil {
			resolve = func(domain string, port int) string {
				return net.JoinHostPort(domain, strconv.Itoa(port))
			}
		}
		classifier := &webclassify.Classifier{
			Resolve:   resolve,
			Timeout:   ms(spec.WebTimeoutMS, 3000),
			UserAgent: "ShamFinder-Survey/1.0",
		}
		if s.surveyCfg.Blacklists != nil {
			classifier.IsMalicious = s.surveyCfg.Blacklists.AnyContains
		}
		cfg.Classifier = classifier
	}
	return cfg, nil
}

func (s *Server) handleSurveyStatus(w http.ResponseWriter, r *http.Request) {
	job, ok := s.surveys.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such survey")
		return
	}
	includeRecords := r.URL.Query().Get("records") != "0"
	st := job.snapshot(includeRecords)
	if includeRecords && st.Status == surveyDone && st.Records == nil {
		// A job recovered already-finished keeps its records on disk
		// only; load them for the client that asks.
		job.mu.Lock()
		lazy := job.lazyRecords
		job.mu.Unlock()
		if lazy && s.store() != nil {
			if recs, err := s.store().LoadRecords(job.id); err == nil {
				st.Records = recs
			} else {
				s.logf("survey %s: loading recovered records: %v", job.id, err)
			}
		}
	}
	writeJSON(w, http.StatusOK, st)
}

// handleSurveyCancel cancels a running or queued job; on an
// already-finished job it evicts the entry (and its durable state)
// instead, freeing the records.
func (s *Server) handleSurveyCancel(w http.ResponseWriter, r *http.Request) {
	job, ok := s.surveys.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such survey")
		return
	}
	job.mu.Lock()
	status := job.status
	cancel := job.cancel
	job.mu.Unlock()
	switch {
	case status == surveyAccepted:
		// Still queued for a slot: pull it off the queue and finalize
		// directly — there is no pipeline to cancel. If the queue race
		// was lost (a slot just launched it), fall through to a plain
		// cancel.
		if s.surveys.dequeue(job) {
			s.finalizeSurvey(job, nil, nil, surveyCancelled, "cancelled", false)
		} else if cancel = job.cancelFn(); cancel != nil {
			cancel()
		}
	case status == surveyRunning || status == surveyDraining:
		if cancel != nil {
			cancel()
		}
	default:
		s.surveys.remove(job.id)
		if st := s.store(); st != nil {
			if err := st.Remove(job.id); err != nil {
				s.logf("survey %s: removing durable state: %v", job.id, err)
			}
		}
	}
	writeJSON(w, http.StatusOK, job.snapshot(false))
}

func (j *surveyJob) cancelFn() func() {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.cancel
}
