package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/netip"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dnsserver"
	"repro/internal/dnswire"
	"repro/internal/jobstore"
	"repro/internal/triage"
)

// durableDNS stands up a deterministic zone: d00..d07.com, the even
// ones delegated with an A record, the odd ones absent (NXDOMAIN).
// Deterministic answers are what make the crash-resume byte-identity
// assertions meaningful.
func durableDNS(t *testing.T) string {
	t.Helper()
	store := dnsserver.NewStore()
	store.AddApex("com.")
	store.Add(dnswire.Record{Name: "com.", Class: dnswire.ClassIN, TTL: 900, Data: dnswire.SOA{
		MName: "a.gtld-servers.net.", RName: "nstld.example.",
		Serial: 1, Refresh: 1800, Retry: 900, Expire: 604800, Minimum: 86400,
	}})
	for i := 0; i < 8; i += 2 {
		name := fmt.Sprintf("d%02d.com.", i)
		store.Add(dnswire.Record{Name: name, Class: dnswire.ClassIN, TTL: 300, Data: dnswire.NS{Host: "ns1." + name}})
		store.Add(dnswire.Record{Name: name, Class: dnswire.ClassIN, TTL: 300, Data: dnswire.A{Addr: netip.MustParseAddr("127.0.0.1")}})
	}
	dns := dnsserver.NewServer(store)
	if err := dns.ListenAndServe("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dns.Close() })
	return dns.Addr()
}

// newDurableServer builds a Server over a jobstore rooted at dir and
// runs the restart path (RecoverSurveys) before serving, the way
// `serve -job-dir` does.
func newDurableServer(t *testing.T, dir string, mutate ...func(*SurveyConfig)) (*Server, *httptest.Server, *jobstore.Store) {
	t.Helper()
	store, err := jobstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := SurveyConfig{Store: store}
	for _, m := range mutate {
		m(&cfg)
	}
	engine := core.NewEngine(core.NewDetector(testDB(t), []string{"google", "facebook"}))
	s := New(Config{Engine: engine, Survey: cfg})
	if err := s.RecoverSurveys(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts, store
}

// TestSurveyDurableResumeByteIdentical is the kill-anywhere proof: a
// job interrupted after any prefix of its record log — including a torn
// final line — resumes on restart and finishes with a record log
// byte-identical to an uninterrupted run's, with the same tally, and
// with exactly the already-completed records skipped.
func TestSurveyDurableResumeByteIdentical(t *testing.T) {
	resolver := durableDNS(t)
	fqdns := make([]string, 8)
	for i := range fqdns {
		fqdns[i] = fmt.Sprintf("d%02d.com", i)
	}
	no := false
	req := surveyRequest{FQDNs: fqdns, Resolver: resolver, Detect: &no, SkipWeb: true, DNSWorkers: 4}

	// The golden run: uninterrupted, start to done.
	_, goldTS, goldStore := newDurableServer(t, t.TempDir())
	resp, data := postJSON(t, goldTS.URL+"/v1/survey", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("golden submit = %d: %s", resp.StatusCode, data)
	}
	var acc surveyAcceptedResp
	if err := json.Unmarshal(data, &acc); err != nil {
		t.Fatal(err)
	}
	gst := pollSurvey(t, goldTS, acc.ID)
	if gst.Status != surveyDone || len(gst.Records) != 8 {
		t.Fatalf("golden final = %+v", gst)
	}
	golden, err := os.ReadFile(goldStore.RecordsPath(acc.ID))
	if err != nil {
		t.Fatal(err)
	}
	goldenTally, err := json.Marshal(gst.Tally)
	if err != nil {
		t.Fatal(err)
	}
	gm, ok := goldStore.Get(acc.ID)
	if !ok {
		t.Fatal("golden manifest missing from store")
	}
	lines := bytes.SplitAfter(golden, []byte("\n"))
	if lines[len(lines)-1] != nil && len(lines[len(lines)-1]) == 0 {
		lines = lines[:len(lines)-1]
	}
	if len(lines) != 8 {
		t.Fatalf("golden log has %d lines", len(lines))
	}

	// Crash states: killed before any record landed, after one, midway,
	// and in draining with every record on disk — each with the torn
	// partial line a kill mid-write leaves behind.
	for _, cut := range []int{0, 1, 4, 8} {
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			dir := t.TempDir()
			crash, err := jobstore.Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			m := gm
			m.State = jobstore.StateRunning
			if cut == len(lines) {
				m.State = jobstore.StateDraining
			}
			m.Tally = nil
			if err := crash.Put(m); err != nil {
				t.Fatal(err)
			}
			var log bytes.Buffer
			for _, l := range lines[:cut] {
				log.Write(l)
			}
			log.WriteString(`{"fqdn":"torn-mid-wri`)
			if err := os.WriteFile(crash.RecordsPath(m.ID), log.Bytes(), 0o644); err != nil {
				t.Fatal(err)
			}

			// "Restart": a fresh process over the same directory.
			_, ts, store := newDurableServer(t, dir)
			st := pollSurvey(t, ts, m.ID)
			if st.Status != surveyDone {
				t.Fatalf("resumed final = %+v", st)
			}
			if st.Resumes != 1 {
				t.Errorf("resumes = %d, want 1", st.Resumes)
			}
			if st.Progress.Resumed != int64(cut) {
				t.Errorf("resumed records = %d, want %d (only the missing tail re-probes)",
					st.Progress.Resumed, cut)
			}
			got, err := os.ReadFile(store.RecordsPath(m.ID))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, golden) {
				t.Errorf("record log after resume differs from golden:\n got: %q\nwant: %q", got, golden)
			}
			// The tally's Resumed counter is the one legitimate difference:
			// it records that the first cut records were skipped. Everything
			// else must match the golden tally exactly.
			if st.Tally == nil || st.Tally.Resumed != cut {
				t.Fatalf("tally = %+v, want resumed=%d", st.Tally, cut)
			}
			normalized := *st.Tally
			normalized.Resumed = 0
			gotTally, err := json.Marshal(&normalized)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(gotTally, goldenTally) {
				t.Errorf("tally after resume = %s, want %s", gotTally, goldenTally)
			}
			var stats Stats
			getJSON(t, ts.URL+"/metrics", &stats)
			if stats.SurveysResumed != 1 {
				t.Errorf("surveys_resumed = %d, want 1", stats.SurveysResumed)
			}
		})
	}
}

func TestSurveyRecoverQuarantinesCorruptManifest(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "j1"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "j1", "manifest.job"), []byte("not a manifest"), 0o644); err != nil {
		t.Fatal(err)
	}
	records := []byte(`{"fqdn":"a.com","has_ns":true,"has_a":false,"has_mx":false}` + "\n")
	if err := os.WriteFile(filepath.Join(dir, "j1", "records.jsonl"), records, 0o644); err != nil {
		t.Fatal(err)
	}

	_, ts, _ := newDurableServer(t, dir)
	var stats Stats
	getJSON(t, ts.URL+"/metrics", &stats)
	if stats.SurveysQuarantined != 1 {
		t.Errorf("surveys_quarantined = %d, want 1", stats.SurveysQuarantined)
	}
	resp, err := http.Get(ts.URL + "/v1/survey/j1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("quarantined job answered GET: %d", resp.StatusCode)
	}
	// Refused loudly, kept for the operator: manifest AND records moved
	// under quarantine/, not deleted.
	kept, err := os.ReadFile(filepath.Join(dir, "quarantine", "j1", "records.jsonl"))
	if err != nil {
		t.Fatalf("quarantined records: %v", err)
	}
	if !bytes.Equal(kept, records) {
		t.Errorf("quarantined records mutated: %q", kept)
	}
}

func TestSurveyWatchdogFailsStalledJob(t *testing.T) {
	blackhole := newBlackholeResolver(t)
	_, ts, _ := newDurableServer(t, t.TempDir(), func(c *SurveyConfig) {
		c.StallTimeout = 150 * time.Millisecond
	})
	no := false
	// A black-hole resolver with huge stage/DNS timeouts: without the
	// watchdog this job would pin its slot for minutes.
	resp, data := postJSON(t, ts.URL+"/v1/survey", surveyRequest{
		FQDNs:    []string{"w1.com", "w2.com", "w3.com", "w4.com"},
		Resolver: blackhole, Detect: &no, SkipWeb: true,
		DNSTimeoutMS: 60000, StageTimeoutMS: 120000,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", resp.StatusCode, data)
	}
	var acc surveyAcceptedResp
	if err := json.Unmarshal(data, &acc); err != nil {
		t.Fatal(err)
	}
	st := pollSurvey(t, ts, acc.ID)
	if st.Status != surveyFailed {
		t.Fatalf("final = %+v", st)
	}
	if !st.Retryable {
		t.Errorf("a stalled job must be marked retryable: %+v", st)
	}
	if !bytes.Contains([]byte(st.Error), []byte("stalled")) {
		t.Errorf("error = %q, want a stall cause", st.Error)
	}
	// The slot is free again: a fresh job runs to completion.
	resp2, data2 := postJSON(t, ts.URL+"/v1/survey", surveyRequest{
		FQDNs: []string{"after.com"}, Detect: &no, SkipDNS: true, SkipWeb: true,
	})
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("post-stall submit = %d: %s", resp2.StatusCode, data2)
	}
	var acc2 surveyAcceptedResp
	if err := json.Unmarshal(data2, &acc2); err != nil {
		t.Fatal(err)
	}
	if st2 := pollSurvey(t, ts, acc2.ID); st2.Status != surveyDone {
		t.Errorf("post-stall job = %+v", st2)
	}
}

// TestSurveyRecoverOverCapQueues restarts over more interrupted jobs
// than the running cap admits: the overflow must queue (not fail, not
// run over-cap) and drain to done as slots free up.
func TestSurveyRecoverOverCapQueues(t *testing.T) {
	dir := t.TempDir()
	seed, err := jobstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		m := jobstore.Manifest{
			ID: fmt.Sprintf("j%d", i), State: jobstore.StateRunning, Epoch: 1,
			Queried: 2, Detected: 2,
			Spec: jobstore.Spec{SkipDNS: true, SkipWeb: true, SkipBlacklist: true},
			Inputs: []triage.Input{
				{FQDN: fmt.Sprintf("a%d.com", i)},
				{FQDN: fmt.Sprintf("b%d.com", i)},
			},
		}
		if err := seed.Put(m); err != nil {
			t.Fatal(err)
		}
	}

	_, ts, _ := newDurableServer(t, dir, func(c *SurveyConfig) { c.MaxJobs = 1 })
	for i := 1; i <= 3; i++ {
		st := pollSurvey(t, ts, fmt.Sprintf("j%d", i))
		if st.Status != surveyDone || len(st.Records) != 2 {
			t.Fatalf("j%d = %+v", i, st)
		}
		if st.Resumes != 1 {
			t.Errorf("j%d resumes = %d, want 1", i, st.Resumes)
		}
	}
	var stats Stats
	getJSON(t, ts.URL+"/metrics", &stats)
	if stats.SurveysResumed != 3 || stats.SurveysActive != 0 {
		t.Errorf("metrics = resumed %d active %d, want 3/0", stats.SurveysResumed, stats.SurveysActive)
	}
	if stats.SurveyJobs["done"] != 3 {
		t.Errorf("survey_jobs = %v", stats.SurveyJobs)
	}
	if stats.SurveyTally == nil || stats.SurveyTally.Total != 6 {
		t.Errorf("aggregate tally = %+v", stats.SurveyTally)
	}
}

// TestSurveyRetentionEviction covers the unbounded-registry fix: the
// finished-jobs cap and the TTL both evict (registry entry, durable
// directory) and count.
func TestSurveyRetentionEviction(t *testing.T) {
	dir := t.TempDir()
	srv, ts, _ := newDurableServer(t, dir, func(c *SurveyConfig) {
		c.JobTTL = time.Hour
		c.KeepFinished = 2
	})
	// An injectable clock: the TTL half of the test advances it two
	// hours without sleeping.
	var skew atomic.Int64
	srv.surveys.now = func() time.Time { return time.Now().Add(time.Duration(skew.Load())) }

	no := false
	ids := make([]string, 4)
	for i := range ids {
		resp, data := postJSON(t, ts.URL+"/v1/survey", surveyRequest{
			FQDNs:  []string{fmt.Sprintf("r%d.com", i)},
			Detect: &no, SkipDNS: true, SkipWeb: true,
		})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d = %d: %s", i, resp.StatusCode, data)
		}
		var acc surveyAcceptedResp
		if err := json.Unmarshal(data, &acc); err != nil {
			t.Fatal(err)
		}
		ids[i] = acc.ID
		pollSurvey(t, ts, acc.ID)
	}

	// Cap: keep 2 of 4 finished jobs; the two oldest go, registry and
	// disk both.
	var stats Stats
	getJSON(t, ts.URL+"/metrics", &stats)
	if stats.SurveysEvicted != 2 {
		t.Fatalf("surveys_evicted = %d, want 2", stats.SurveysEvicted)
	}
	for _, id := range ids[:2] {
		resp, err := http.Get(ts.URL + "/v1/survey/" + id)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("evicted %s still answers: %d", id, resp.StatusCode)
		}
		if _, err := os.Stat(filepath.Join(dir, id)); !os.IsNotExist(err) {
			t.Errorf("evicted %s kept its durable directory", id)
		}
	}
	if st := pollSurvey(t, ts, ids[3]); st.Status != surveyDone {
		t.Fatalf("kept job = %+v", st)
	}

	// TTL: two hours later the remaining finished jobs expire too. A
	// fresh Stats value, because survey_jobs is omitempty and a reused
	// decode target would keep the previous scrape's map.
	skew.Store(int64(2 * time.Hour))
	var after Stats
	getJSON(t, ts.URL+"/metrics", &after)
	if after.SurveysEvicted != 4 {
		t.Errorf("surveys_evicted after TTL = %d, want 4", after.SurveysEvicted)
	}
	if _, err := os.Stat(filepath.Join(dir, ids[3])); !os.IsNotExist(err) {
		t.Errorf("TTL-expired %s kept its durable directory", ids[3])
	}
	if len(after.SurveyJobs) != 0 {
		t.Errorf("survey_jobs after full eviction = %v", after.SurveyJobs)
	}
}

// TestSurveyCancelRacesCompletion fires DELETE the instant after each
// submit of a near-instant job: whichever side wins, the job must land
// in a terminal state (or be evicted by the terminal-DELETE path),
// never wedge, and never leak its running slot.
func TestSurveyCancelRacesCompletion(t *testing.T) {
	_, ts, _ := newDurableServer(t, t.TempDir(), func(c *SurveyConfig) { c.MaxJobs = 1 })
	no := false
	// The previous job's slot frees asynchronously after it turns
	// terminal, so a prompt re-submit can legitimately shed 429 —
	// retry like a real client would.
	submit := func(i int) surveyAcceptedResp {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for {
			resp, data := postJSON(t, ts.URL+"/v1/survey", surveyRequest{
				FQDNs:  []string{fmt.Sprintf("race%d.com", i)},
				Detect: &no, SkipDNS: true, SkipWeb: true,
			})
			if resp.StatusCode == http.StatusTooManyRequests && time.Now().Before(deadline) {
				time.Sleep(5 * time.Millisecond)
				continue
			}
			if resp.StatusCode != http.StatusAccepted {
				t.Fatalf("submit %d = %d: %s", i, resp.StatusCode, data)
			}
			var acc surveyAcceptedResp
			if err := json.Unmarshal(data, &acc); err != nil {
				t.Fatal(err)
			}
			return acc
		}
	}
	for i := 0; i < 8; i++ {
		acc := submit(i)
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/survey/"+acc.ID, nil)
		dresp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		dresp.Body.Close()
		if dresp.StatusCode != http.StatusOK {
			t.Fatalf("cancel %d = %d", i, dresp.StatusCode)
		}
		// The job must settle: terminal, or already evicted (DELETE saw
		// it terminal and removed it).
		deadline := time.Now().Add(10 * time.Second)
		for {
			gresp, err := http.Get(ts.URL + "/v1/survey/" + acc.ID)
			if err != nil {
				t.Fatal(err)
			}
			if gresp.StatusCode == http.StatusNotFound {
				gresp.Body.Close()
				break
			}
			var st surveyStatus
			if err := json.NewDecoder(gresp.Body).Decode(&st); err != nil {
				t.Fatal(err)
			}
			gresp.Body.Close()
			if jobstore.Terminal(st.Status) {
				if st.Status != surveyDone && st.Status != surveyCancelled {
					t.Fatalf("race %d landed in %q", i, st.Status)
				}
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("race %d wedged in %q", i, st.Status)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	// No slot leaked across 8 races: with MaxJobs=1 a fresh submit is
	// still admitted (after at most one in-flight drain) and finishes.
	acc := submit(99)
	if st := pollSurvey(t, ts, acc.ID); st.Status != surveyDone {
		t.Errorf("post-race job = %+v", st)
	}
}

// TestSurveyDeleteOnResumedJob cancels a job that a restart resumed,
// then deletes it again: the first DELETE cancels the live pipeline,
// the second evicts the registry entry and the durable directory.
func TestSurveyDeleteOnResumedJob(t *testing.T) {
	blackhole := newBlackholeResolver(t)
	dir := t.TempDir()
	seed, err := jobstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	inputs := make([]triage.Input, 8)
	for i := range inputs {
		inputs[i] = triage.Input{FQDN: fmt.Sprintf("s%d.com", i)}
	}
	m := jobstore.Manifest{
		ID: "j1", State: jobstore.StateRunning, Epoch: 1, Queried: 8, Detected: 8,
		Spec: jobstore.Spec{
			Resolver: blackhole, SkipWeb: true,
			DNSWorkers: 1, DNSTimeoutMS: 60000, StageTimeoutMS: 120000,
		},
		Inputs: inputs,
	}
	if err := seed.Put(m); err != nil {
		t.Fatal(err)
	}

	_, ts, _ := newDurableServer(t, dir)
	var st surveyStatus
	getJSON(t, ts.URL+"/v1/survey/j1", &st)
	if st.Status != surveyRunning || st.Resumes != 1 {
		t.Fatalf("recovered job = %+v", st)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/survey/j1", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("cancel = %d", dresp.StatusCode)
	}
	if st = pollSurvey(t, ts, "j1"); st.Status != surveyCancelled {
		t.Fatalf("after cancel = %+v", st)
	}

	req2, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/survey/j1", nil)
	dresp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	dresp2.Body.Close()
	if dresp2.StatusCode != http.StatusOK {
		t.Fatalf("second delete = %d", dresp2.StatusCode)
	}
	gresp, err := http.Get(ts.URL + "/v1/survey/j1")
	if err != nil {
		t.Fatal(err)
	}
	gresp.Body.Close()
	if gresp.StatusCode != http.StatusNotFound {
		t.Errorf("deleted job still answers: %d", gresp.StatusCode)
	}
	if _, err := os.Stat(filepath.Join(dir, "j1")); !os.IsNotExist(err) {
		t.Errorf("deleted job kept its durable directory")
	}
}

// TestSurveyRegistrySlotAccounting pins the slot state machine the
// cancel/launch race rides on: dequeue is first-wins, and a released
// slot either frees up or moves atomically to the queue head.
func TestSurveyRegistrySlotAccounting(t *testing.T) {
	r := &surveyRegistry{}
	if !r.tryReserve(1) {
		t.Fatal("first reserve refused")
	}
	if r.tryReserve(1) {
		t.Fatal("over-cap reserve admitted")
	}
	j := &surveyJob{id: "q1", status: surveyAccepted}
	r.enqueue(j)
	if !r.dequeue(j) {
		t.Fatal("dequeue missed a queued job")
	}
	if r.dequeue(j) {
		t.Fatal("second dequeue claimed an already-dequeued job (the cancel race must be first-wins)")
	}
	if got := r.release(); got != nil {
		t.Fatalf("release with an empty queue handed out %v", got)
	}
	if !r.tryReserve(1) {
		t.Fatal("released slot not reusable")
	}
	r.enqueue(j)
	if got := r.release(); got != j {
		t.Fatalf("release = %v, want the queued job", got)
	}
	if r.tryReserve(1) {
		t.Fatal("slot handoff to a queued job must keep the slot occupied")
	}
}
