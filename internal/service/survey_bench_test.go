package service

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/jobstore"
	"repro/internal/triage"
)

// BenchmarkDeltasToTally measures the batcher's downstream half: one
// batch of journal deltas submitted through SubmitSurvey, durably
// accepted, run through the pipeline and merged into the continuous
// tally. The skip-all spec keeps probing out of the measurement, so
// ns/op is the delta→durable-record→tally overhead itself and
// domains/s the sustained ingestion rate of the durable path.
func BenchmarkDeltasToTally(b *testing.B) {
	const batch = 512
	store, err := jobstore.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	engine := core.NewEngine(core.NewDetector(testDB(b), []string{"google", "facebook"}))
	// A small retention cap keeps the sweep (which runs inside Stats)
	// GCing finished jobs, so the store does not grow with b.N.
	s := New(Config{Engine: engine, Survey: SurveyConfig{Store: store, KeepFinished: 4}})
	inputs := make([]triage.Input, batch)
	for i := range inputs {
		inputs[i] = triage.Input{
			FQDN:      fmt.Sprintf("xn--delta%04d.example", i),
			Reference: "google.example",
			Source:    "UC",
		}
	}
	spec := jobstore.Spec{SkipDNS: true, SkipWeb: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.SubmitSurvey(spec, inputs, batch, "", 0, 0); err != nil {
			b.Fatal(err)
		}
		want := uint64(batch * (i + 1))
		for s.Stats().SurveyDomains < want {
			time.Sleep(200 * time.Microsecond)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N*batch)/b.Elapsed().Seconds(), "domains/s")
}
