package service

import "repro/internal/core"

// Match is the wire form of one detected homograph — the single JSON
// encoding every output path shares: the HTTP API's /v1/detect and
// /v1/explain responses and the CLI's `detect -json` lines all
// marshal this struct, so a downstream consumer parses one shape no
// matter which entry point produced it. Field order is fixed by the
// struct, which keeps golden transcripts stable.
type Match struct {
	FQDN      string `json:"fqdn"`
	IDN       string `json:"idn"`
	Unicode   string `json:"unicode"`
	Reference string `json:"reference"`
	Imitated  string `json:"imitated"`
	TLD       string `json:"tld,omitempty"`
	Backend   string `json:"backend"`
	Diffs     []Diff `json:"diffs"`
}

// Diff is the wire form of one substituted character.
type Diff struct {
	Pos    int    `json:"pos"`
	Got    string `json:"got"`
	Want   string `json:"want"`
	Source string `json:"source"`
}

// NewMatch converts a core match to its wire form.
func NewMatch(m core.Match) Match {
	diffs := make([]Diff, len(m.Diffs))
	for i, d := range m.Diffs {
		diffs[i] = Diff{
			Pos:    d.Pos,
			Got:    string(d.Got),
			Want:   string(d.Want),
			Source: d.Source.String(),
		}
	}
	return Match{
		FQDN:      m.FQDN,
		IDN:       m.IDN,
		Unicode:   m.Unicode,
		Reference: m.Reference,
		Imitated:  m.Imitated(),
		TLD:       m.TLD,
		Backend:   m.Backend.String(),
		Diffs:     diffs,
	}
}

// NewMatches converts a batch, preserving order.
func NewMatches(ms []core.Match) []Match {
	out := make([]Match, len(ms))
	for i, m := range ms {
		out[i] = NewMatch(m)
	}
	return out
}
