package punycode

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"unicode/utf8"

	"repro/internal/stats"
)

// seedDecode is the pre-append-refactor Decode, copied verbatim from the
// seed engine. DecodeAppend must agree with it on arbitrary input — same
// output, same accept/reject decisions — which is what licenses making
// Decode a thin wrapper.
func seedDecode(input string) (string, error) {
	for i := 0; i < len(input); i++ {
		if input[i] >= 0x80 {
			return "", fmt.Errorf("%w: non-basic code point in input", ErrInvalid)
		}
	}
	var output []rune
	pos := 0
	if i := strings.LastIndexByte(input, delimiter); i >= 0 {
		for _, c := range input[:i] {
			output = append(output, c)
		}
		pos = i + 1
	}
	n := int32(initialN)
	i := int32(0)
	bias := int32(initialBias)
	for pos < len(input) {
		oldi := i
		w := int32(1)
		for k := int32(base); ; k += base {
			if pos >= len(input) {
				return "", fmt.Errorf("%w: truncated variable-length integer", ErrInvalid)
			}
			digit := byteToDigit(input[pos])
			pos++
			if digit < 0 {
				return "", fmt.Errorf("%w: bad digit %q", ErrInvalid, input[pos-1])
			}
			if digit > (maxInt32-i)/w {
				return "", ErrOverflow
			}
			i += digit * w
			t := k - bias
			if t < tmin {
				t = tmin
			} else if t > tmax {
				t = tmax
			}
			if digit < t {
				break
			}
			if w > maxInt32/(base-t) {
				return "", ErrOverflow
			}
			w *= base - t
		}
		outLen := int32(len(output)) + 1
		bias = adapt(i-oldi, outLen, oldi == 0)
		if i/outLen > maxInt32-n {
			return "", ErrOverflow
		}
		n += i / outLen
		i %= outLen
		if n > utf8.MaxRune || (n >= 0xD800 && n <= 0xDFFF) {
			return "", fmt.Errorf("%w: decoded code point out of range", ErrInvalid)
		}
		output = append(output, 0)
		copy(output[i+1:], output[i:])
		output[i] = rune(n)
		i++
	}
	return string(output), nil
}

// seedToUnicodeLabel is the pre-refactor ToUnicodeLabel over seedDecode.
func seedToUnicodeLabel(label string) (string, error) {
	label = lowerASCII(label)
	if !IsACE(label) {
		return label, nil
	}
	dec, err := seedDecode(label[len(ACEPrefix):])
	if err != nil {
		return "", fmt.Errorf("label %q: %w", label, err)
	}
	if dec == "" {
		return "", fmt.Errorf("label %q: %w", label, ErrEmptyLabel)
	}
	if IsASCII(dec) {
		return "", fmt.Errorf("label %q decodes to pure ASCII: %w", label, ErrInvalid)
	}
	return dec, nil
}

// checkDecode asserts every decode entry point agrees with the seed on
// one input.
func checkDecode(t *testing.T, input string) {
	t.Helper()
	want, wantErr := seedDecode(input)

	got, gotErr := Decode(input)
	if (gotErr != nil) != (wantErr != nil) || got != want {
		t.Fatalf("Decode(%q) = %q, %v; seed = %q, %v", input, got, gotErr, want, wantErr)
	}

	// String instantiation, appending to a prefixed buffer: the prefix
	// must survive untouched in both the success and error case.
	prefix := []rune{'p', 'f', 'x'}
	buf := append([]rune(nil), prefix...)
	buf, gotErr = DecodeAppend(buf, input)
	if (gotErr != nil) != (wantErr != nil) {
		t.Fatalf("DecodeAppend(%q) err = %v; seed err = %v", input, gotErr, wantErr)
	}
	if string(buf[:3]) != "pfx" {
		t.Fatalf("DecodeAppend(%q) clobbered the prefix: %q", input, string(buf[:3]))
	}
	if wantErr == nil {
		if string(buf[3:]) != want {
			t.Fatalf("DecodeAppend(%q) = %q, want %q", input, string(buf[3:]), want)
		}
	} else if len(buf) != 3 {
		t.Fatalf("DecodeAppend(%q) left %d stale runes after error", input, len(buf)-3)
	}

	// []byte instantiation must match the string one exactly.
	bbuf, bErr := DecodeAppend(nil, []byte(input))
	if (bErr != nil) != (wantErr != nil) || string(bbuf) != want {
		t.Fatalf("DecodeAppend([]byte %q) = %q, %v; want %q, %v", input, string(bbuf), bErr, want, wantErr)
	}
}

// TestDecodeAppendDifferential fuzzes DecodeAppend against the seed
// decoder on three input families: valid encodings (via Encode),
// mutated encodings, and raw garbage.
func TestDecodeAppendDifferential(t *testing.T) {
	rng := stats.NewRNG(0x5eed)
	alphabet := []rune("abz09-éи界ÿ\U0001F600")
	for iter := 0; iter < 3000; iter++ {
		n := rng.Intn(12)
		runes := make([]rune, n)
		for i := range runes {
			runes[i] = alphabet[rng.Intn(len(alphabet))]
		}
		enc, err := Encode(string(runes))
		if err != nil {
			continue
		}
		checkDecode(t, enc)
		// Mutate one byte of the valid encoding.
		if len(enc) > 0 {
			b := []byte(enc)
			b[rng.Intn(len(b))] = byte(rng.Intn(128))
			checkDecode(t, string(b))
		}
		// Raw garbage, possibly non-ASCII.
		g := make([]byte, rng.Intn(10))
		for i := range g {
			g[i] = byte(rng.Intn(256))
		}
		checkDecode(t, string(g))
	}
	// Regression corner cases.
	for _, in := range []string{"", "-", "--", "a-", "-a", "tda", "99999999", "bcher-kva", "ggle-55da"} {
		checkDecode(t, in)
	}
}

// checkLabel asserts the label-level append variant agrees with the
// seed label conversion (which ToUnicodeLabel now wraps).
func checkLabel(t *testing.T, label string) {
	t.Helper()
	want, wantErr := ToUnicodeLabel(label)

	got, gotErr := ToUnicodeLabelAppend(nil, label)
	if (gotErr != nil) != (wantErr != nil) {
		t.Fatalf("ToUnicodeLabelAppend(%q) err = %v; ToUnicodeLabel err = %v", label, gotErr, wantErr)
	}
	if wantErr == nil && string(got) != want {
		t.Fatalf("ToUnicodeLabelAppend(%q) = %q, want %q", label, string(got), want)
	}
	bgot, bErr := ToUnicodeLabelAppend(nil, []byte(label))
	if (bErr != nil) != (wantErr != nil) || string(bgot) != string(got) {
		t.Fatalf("ToUnicodeLabelAppend([]byte %q) = %q, %v; string variant %q, %v",
			label, string(bgot), bErr, string(got), gotErr)
	}

	// And the wrapper itself against the seed implementation's
	// accept/reject decision (seedToUnicodeLabel only reports errors
	// faithfully; its success value is compared through seedDecode).
	_, seedErr := seedToUnicodeLabel(label)
	if (wantErr != nil) != (seedErr != nil) {
		t.Fatalf("ToUnicodeLabel(%q) err = %v; seed err = %v", label, wantErr, seedErr)
	}
}

func TestToUnicodeLabelAppendDifferential(t *testing.T) {
	fixed := []string{
		"", "google", "GOOGLE", "xn--", "XN--", "xn--a", "xn--tda",
		"xn--bcher-kva", "xn--BCHER-KVA", "xn--ggle-55da", "xn--55da",
		"xn---", "xn--!!!", "plain-ascii", "ünïcode", "ÜNÏCODE",
		"xn--xn---epa", "xn--aa-!!", "xn--99999999",
	}
	for _, l := range fixed {
		checkLabel(t, l)
	}
	rng := stats.NewRNG(0xace)
	for iter := 0; iter < 2000; iter++ {
		n := rng.Intn(14)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(32 + rng.Intn(96))
		}
		checkLabel(t, string(b))
		checkLabel(t, "xn--"+string(b))
	}
}

// TestDecodeAppendSteadyStateAllocs proves the ingestion contract: with
// a warm buffer, decoding an ACE label (or rejecting a malformed one)
// allocates nothing.
func TestDecodeAppendSteadyStateAllocs(t *testing.T) {
	buf := make([]rune, 0, 64)
	label := []byte("ggle-55da")
	bad := []byte("!!bad!!")
	if n := testing.AllocsPerRun(200, func() {
		var err error
		buf, err = DecodeAppend(buf[:0], label)
		if err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("DecodeAppend allocates %.1f per decode; want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		if _, err := DecodeAppend(buf[:0], bad); err == nil {
			t.Fatal("want error")
		}
	}); n != 0 {
		t.Errorf("DecodeAppend allocates %.1f per rejected decode; want 0", n)
	}
	full := []byte("xn--ggle-55da")
	if n := testing.AllocsPerRun(200, func() {
		var err error
		buf, err = ToUnicodeLabelAppend(buf[:0], full)
		if err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("ToUnicodeLabelAppend allocates %.1f per label; want 0", n)
	}
}

func TestDecodeAppendErrorsUnwrap(t *testing.T) {
	for _, in := range []string{"é", "a", "!!!", "a-\x7f"} {
		if _, err := DecodeAppend(nil, in); err != nil && !errors.Is(err, ErrInvalid) && !errors.Is(err, ErrOverflow) {
			t.Errorf("DecodeAppend(%q) error %v unwraps to neither ErrInvalid nor ErrOverflow", in, err)
		}
	}
}

// FuzzDecodeAppend keeps the differential check available to `go test
// -fuzz`; under plain `go test` the seed corpus doubles as regression
// coverage.
func FuzzDecodeAppend(f *testing.F) {
	for _, s := range []string{"", "tda", "bcher-kva", "ggle-55da", "--", "a-b-c", "\x80", "99999999"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		want, wantErr := seedDecode(input)
		got, gotErr := DecodeAppend(nil, input)
		if (gotErr != nil) != (wantErr != nil) || string(got) != want {
			t.Fatalf("DecodeAppend(%q) = %q, %v; seed = %q, %v", input, string(got), gotErr, want, wantErr)
		}
	})
}
