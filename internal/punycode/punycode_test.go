package punycode

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"unicode/utf8"
)

// rfcSamples are the sample strings of RFC 3492 section 7.1.
var rfcSamples = []struct {
	name    string
	unicode string
	encoded string
}{
	{"Arabic (Egyptian)",
		"ليهمابتكلموشعربي؟",
		"egbpdaj6bu4bxfgehfvwxn"},
	{"Chinese (simplified)",
		"他们为什么不说中文",
		"ihqwcrb4cv8a8dqg056pqjye"},
	{"Chinese (traditional)",
		"他們爲什麽不說中文",
		"ihqwctvzc91f659drss3x8bo0yb"},
	{"Czech",
		"Pročprostěnemluvíčesky",
		"Proprostnemluvesky-uyb24dma41a"},
	{"Hebrew",
		"למההםפשוטלאמדבריםעברית",
		"4dbcagdahymbxekheh6e0a7fei0b"},
	{"Hindi (Devanagari)",
		"यहलोगहिन्दीक्योंनहींबोलसकतेहैं",
		"i1baa7eci9glrd9b2ae1bj0hfcgg6iyaf8o0a1dig0cd"},
	{"Japanese (kanji and hiragana)",
		"なぜみんな日本語を話してくれないのか",
		"n8jok5ay5dzabd5bym9f0cm5685rrjetr6pdxa"},
	{"Russian (Cyrillic)",
		"почемужеонинеговорятпорусски",
		"b1abfaaepdrnnbgefbadotcwatmq2g4l"},
	{"Spanish",
		"PorquénopuedensimplementehablarenEspañol",
		"PorqunopuedensimplementehablarenEspaol-fmd56a"},
	{"Vietnamese",
		"TạisaohọkhôngthểchỉnóitiếngViệt",
		"TisaohkhngthchnitingVit-kjcr8268qyxafd2f1b9g"},
	{"Japanese artist 3B",
		"3年B組金八先生",
		"3B-ww4c5e180e575a65lsy2b"},
	{"Japanese artist with ASCII",
		"安室奈美恵-with-SUPER-MONKEYS",
		"-with-SUPER-MONKEYS-pc58ag80a8qai00g7n9n"},
	{"Hello Another Way",
		"Hello-Another-Way-それぞれの場所",
		"Hello-Another-Way--fc4qua05auwb3674vfr0b"},
	{"Hitotsu yane no shita 2",
		"ひとつ屋根の下2",
		"2-u9tlzr9756bt3uc0v"},
	{"Maji de koi suru",
		"MajiでKoiする5秒前",
		"MajiKoi5-783gue6qz075azm5e"},
	{"Pafii de runba",
		"パフィーdeルンバ",
		"de-jg4avhby1noc0d"},
	{"Sono supiido de",
		"そのスピードで",
		"d9juau41awczczp"},
	{"ASCII-only",
		"-> $1.00 <-",
		"-> $1.00 <--"},
}

func TestEncodeRFCSamples(t *testing.T) {
	for _, s := range rfcSamples {
		got, err := Encode(s.unicode)
		if err != nil {
			t.Errorf("%s: Encode error: %v", s.name, err)
			continue
		}
		// RFC samples preserve case of basic code points; our Encode does
		// not lowercase (IDNA layer does).
		if got != s.encoded {
			t.Errorf("%s: Encode = %q, want %q", s.name, got, s.encoded)
		}
	}
}

func TestDecodeRFCSamples(t *testing.T) {
	for _, s := range rfcSamples {
		got, err := Decode(s.encoded)
		if err != nil {
			t.Errorf("%s: Decode error: %v", s.name, err)
			continue
		}
		if got != s.unicode {
			t.Errorf("%s: Decode = %q, want %q", s.name, got, s.unicode)
		}
	}
}

func TestEncodeKnownDomains(t *testing.T) {
	cases := []struct{ in, want string }{
		{"bücher", "bcher-kva"},
		{"münchen", "mnchen-3ya"},
		{"facébook", "facbook-dya"},
		{"阿里巴巴", "tsta8290bfzd"},
		{"español", "espaol-zwa"},
	}
	for _, c := range cases {
		got, err := Encode(c.in)
		if err != nil {
			t.Fatalf("Encode(%q): %v", c.in, err)
		}
		if got != c.want {
			t.Errorf("Encode(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	bad := []string{
		"日本語",        // non-basic input
		"xyz-!!!",    // bad digit after delimiter
		"999999999a", // overflow-ish / invalid
	}
	for _, in := range bad {
		if _, err := Decode(in); err == nil {
			t.Errorf("Decode(%q) expected error", in)
		}
	}
}

func TestDecodeEmptyAndBasicOnly(t *testing.T) {
	got, err := Decode("abc-")
	if err != nil || got != "abc" {
		t.Fatalf("Decode(abc-) = %q, %v", got, err)
	}
	got, err = Decode("")
	if err != nil || got != "" {
		t.Fatalf("Decode(\"\") = %q, %v", got, err)
	}
}

func TestRoundTripQuick(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 500,
		Values: func(v []reflect.Value, r *rand.Rand) {
			// Random strings over a mixed alphabet exercising multi-script
			// labels and pure-ASCII corner cases.
			alphabet := []rune("abcz019-éßαβабв漢字가각エ工あ")
			n := r.Intn(12)
			runes := make([]rune, n)
			for i := range runes {
				runes[i] = alphabet[r.Intn(len(alphabet))]
			}
			v[0] = reflect.ValueOf(string(runes))
		},
	}
	f := func(s string) bool {
		enc, err := Encode(s)
		if err != nil {
			return false
		}
		if !IsASCII(enc) {
			return false
		}
		dec, err := Decode(enc)
		if err != nil {
			return false
		}
		return dec == s
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeRejectsInvalidUTF8(t *testing.T) {
	if _, err := Encode(string([]byte{0xff, 0xfe})); err == nil {
		t.Fatal("Encode should reject invalid UTF-8")
	}
}

func TestToASCIILabel(t *testing.T) {
	cases := []struct {
		in, want string
		wantErr  bool
	}{
		{"example", "example", false},
		{"EXAMPLE", "example", false},
		{"bücher", "xn--bcher-kva", false},
		{"阿里巴巴", "xn--tsta8290bfzd", false},
		{"", "", true},
		{strings.Repeat("ü", 60), "", true}, // encodes to > 63 octets
	}
	for _, c := range cases {
		got, err := ToASCIILabel(c.in)
		if (err != nil) != c.wantErr {
			t.Errorf("ToASCIILabel(%q) err = %v, wantErr %v", c.in, err, c.wantErr)
			continue
		}
		if !c.wantErr && got != c.want {
			t.Errorf("ToASCIILabel(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestToUnicodeLabel(t *testing.T) {
	got, err := ToUnicodeLabel("xn--bcher-kva")
	if err != nil || got != "bücher" {
		t.Fatalf("ToUnicodeLabel = %q, %v", got, err)
	}
	got, err = ToUnicodeLabel("plain")
	if err != nil || got != "plain" {
		t.Fatalf("ToUnicodeLabel(plain) = %q, %v", got, err)
	}
	// Fake ACE: decodes to pure ASCII.
	if _, err = ToUnicodeLabel("xn--abc-"); err == nil {
		t.Fatal("fake-ACE label should be rejected")
	}
	if _, err = ToUnicodeLabel("xn--!!!"); err == nil {
		t.Fatal("malformed ACE label should be rejected")
	}
}

func TestToASCIIDomain(t *testing.T) {
	got, err := ToASCII("Bücher.example.COM")
	if err != nil || got != "xn--bcher-kva.example.com" {
		t.Fatalf("ToASCII = %q, %v", got, err)
	}
	got, err = ToASCII("google.com.")
	if err != nil || got != "google.com." {
		t.Fatalf("ToASCII trailing dot = %q, %v", got, err)
	}
	if _, err = ToASCII(""); err == nil {
		t.Fatal("empty domain should error")
	}
	if _, err = ToASCII("a..b"); err == nil {
		t.Fatal("empty interior label should error")
	}
}

func TestToUnicodeDomain(t *testing.T) {
	got, err := ToUnicode("xn--bcher-kva.example.com")
	if err != nil || got != "bücher.example.com" {
		t.Fatalf("ToUnicode = %q, %v", got, err)
	}
	// A broken label is preserved in ACE form and reported.
	got, err = ToUnicode("xn--!!!.example.com")
	if err == nil {
		t.Fatal("expected error for broken label")
	}
	if got != "xn--!!!.example.com" {
		t.Fatalf("broken label should be preserved, got %q", got)
	}
}

func TestIsIDN(t *testing.T) {
	cases := []struct {
		in   string
		want bool
	}{
		{"google.com", false},
		{"xn--tsta8290bfzd.com", true},
		{"sub.xn--bcher-kva.com", true},
		{"XN--BCHER-KVA.com", true},
		{"xnot.com", false},
		{"", false},
	}
	for _, c := range cases {
		if got := IsIDN(c.in); got != c.want {
			t.Errorf("IsIDN(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestSLD(t *testing.T) {
	cases := []struct{ in, want string }{
		{"example.com", "example"},
		{"www.example.com", "example"},
		{"example.com.", "example"},
		{"com", "com"},
		{"", ""},
	}
	for _, c := range cases {
		if got := SLD(c.in); got != c.want {
			t.Errorf("SLD(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// Every decode of a valid encode must be the identity, and the encoded form
// must never contain non-ASCII even for adversarial inputs.
func TestEncodeOutputAlwaysASCII(t *testing.T) {
	f := func(s string) bool {
		if !utf8.ValidString(s) {
			return true
		}
		enc, err := Encode(s)
		if err != nil {
			return true // overflow on absurd input is acceptable
		}
		return IsASCII(enc)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncode(b *testing.B) {
	in := "速いブラウン狐が怠け者の犬を飛び越える"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode(b *testing.B) {
	enc, _ := Encode("速いブラウン狐が怠け者の犬を飛び越える")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(enc); err != nil {
			b.Fatal(err)
		}
	}
}
