// Package punycode implements the Punycode bootstring encoding of RFC 3492
// and the IDNA label conversions (ToASCII/ToUnicode with the "xn--" ACE
// prefix) that the paper's Step 2 relies on to extract IDNs from domain
// lists.
package punycode

import (
	"errors"
	"fmt"
	"strings"
	"unicode/utf8"
)

// Bootstring parameters for Punycode, RFC 3492 section 5.
const (
	base        = 36
	tmin        = 1
	tmax        = 26
	skew        = 38
	damp        = 700
	initialBias = 72
	initialN    = 128
	delimiter   = '-'
)

// ErrOverflow is returned when decoding or encoding would exceed the rune
// space; RFC 3492 section 6.4 requires detecting it rather than wrapping.
var ErrOverflow = errors.New("punycode: overflow")

// ErrInvalid is returned for malformed Punycode input.
var ErrInvalid = errors.New("punycode: invalid input")

// The decode hot path returns preallocated errors so a malformed label in
// a zone sweep costs no allocation; all of them unwrap to ErrInvalid.
var (
	errNonBasic   = fmt.Errorf("%w: non-basic code point in input", ErrInvalid)
	errTruncated  = fmt.Errorf("%w: truncated variable-length integer", ErrInvalid)
	errBadDigit   = fmt.Errorf("%w: bad digit", ErrInvalid)
	errOutOfRange = fmt.Errorf("%w: decoded code point out of range", ErrInvalid)
)

const maxInt32 = int32(^uint32(0) >> 1)

// digitToByte maps a digit value 0..35 to its lowercase code point.
func digitToByte(d int32) byte {
	if d < 26 {
		return byte('a' + d)
	}
	return byte('0' + d - 26)
}

// byteToDigit maps a basic code point to its digit value, or -1.
func byteToDigit(b byte) int32 {
	switch {
	case b >= 'a' && b <= 'z':
		return int32(b - 'a')
	case b >= 'A' && b <= 'Z':
		return int32(b - 'A')
	case b >= '0' && b <= '9':
		return int32(b-'0') + 26
	}
	return -1
}

// adapt is the bias adaptation function of RFC 3492 section 6.1.
func adapt(delta int32, numPoints int32, firstTime bool) int32 {
	if firstTime {
		delta /= damp
	} else {
		delta /= 2
	}
	delta += delta / numPoints
	k := int32(0)
	for delta > ((base-tmin)*tmax)/2 {
		delta /= base - tmin
		k += base
	}
	return k + (base-tmin+1)*delta/(delta+skew)
}

// Encode converts a Unicode string to its Punycode form (RFC 3492
// section 6.3). The result contains only basic (ASCII) code points.
func Encode(input string) (string, error) {
	if !utf8.ValidString(input) {
		return "", fmt.Errorf("%w: not valid UTF-8", ErrInvalid)
	}
	runes := []rune(input)
	var out strings.Builder
	basic := 0
	for _, r := range runes {
		if r < initialN {
			out.WriteByte(byte(r))
			basic++
		}
	}
	h := int32(basic)
	b := h
	if basic > 0 {
		out.WriteByte(delimiter)
	}
	n := int32(initialN)
	delta := int32(0)
	bias := int32(initialBias)
	total := int32(len(runes))
	for h < total {
		m := maxInt32
		for _, r := range runes {
			if int32(r) >= n && int32(r) < m {
				m = int32(r)
			}
		}
		if m-n > (maxInt32-delta)/(h+1) {
			return "", ErrOverflow
		}
		delta += (m - n) * (h + 1)
		n = m
		for _, r := range runes {
			cp := int32(r)
			if cp < n {
				delta++
				if delta == 0 {
					return "", ErrOverflow
				}
			}
			if cp == n {
				q := delta
				for k := int32(base); ; k += base {
					t := k - bias
					if t < tmin {
						t = tmin
					} else if t > tmax {
						t = tmax
					}
					if q < t {
						break
					}
					out.WriteByte(digitToByte(t + (q-t)%(base-t)))
					q = (q - t) / (base - t)
				}
				out.WriteByte(digitToByte(q))
				bias = adapt(delta, h+1, h == b)
				delta = 0
				h++
			}
		}
		delta++
		n++
	}
	return out.String(), nil
}

// Decode converts a Punycode string back to Unicode (RFC 3492 section 6.2).
// It is a thin wrapper over DecodeAppend, the allocation-free variant the
// zone-ingestion hot path uses.
func Decode(input string) (string, error) {
	output, err := DecodeAppend(nil, input)
	if err != nil {
		return "", err
	}
	return string(output), nil
}

// ByteSeq abstracts the two spellings a DNS label arrives in — an
// immutable string or a reusable line buffer — so the decode hot path is
// compiled once for both without converting (and therefore copying) the
// bytes.
type ByteSeq interface{ ~string | ~[]byte }

// DecodeAppend decodes Punycode input and appends the code points to dst,
// returning the extended slice. Content below len(dst) is never touched.
// When dst has sufficient capacity no allocation occurs, which is what
// lets a zone feeder decode millions of ACE labels with zero steady-state
// allocations; Decode is differential-tested against it.
//
//shamlint:noalloc
func DecodeAppend[S ByteSeq](dst []rune, input S) ([]rune, error) {
	floor := len(dst)
	for i := 0; i < len(input); i++ {
		if input[i] >= 0x80 {
			return dst, errNonBasic
		}
	}
	pos := 0
	for i := len(input) - 1; i >= 0; i-- {
		if input[i] == delimiter {
			pos = i + 1
			break
		}
	}
	if pos > 0 {
		for _, c := range string(input[:pos-1]) {
			dst = append(dst, c)
		}
	}
	n := int32(initialN)
	i := int32(0)
	bias := int32(initialBias)
	for pos < len(input) {
		oldi := i
		w := int32(1)
		for k := int32(base); ; k += base {
			if pos >= len(input) {
				return dst[:floor], errTruncated
			}
			digit := byteToDigit(input[pos])
			pos++
			if digit < 0 {
				return dst[:floor], errBadDigit
			}
			if digit > (maxInt32-i)/w {
				return dst[:floor], ErrOverflow
			}
			i += digit * w
			t := k - bias
			if t < tmin {
				t = tmin
			} else if t > tmax {
				t = tmax
			}
			if digit < t {
				break
			}
			if w > maxInt32/(base-t) {
				return dst[:floor], ErrOverflow
			}
			w *= base - t
		}
		outLen := int32(len(dst)-floor) + 1
		bias = adapt(i-oldi, outLen, oldi == 0)
		if i/outLen > maxInt32-n {
			return dst[:floor], ErrOverflow
		}
		n += i / outLen
		i %= outLen
		if n > utf8.MaxRune || (n >= 0xD800 && n <= 0xDFFF) {
			return dst[:floor], errOutOfRange
		}
		dst = append(dst, 0)
		at := floor + int(i)
		copy(dst[at+1:], dst[at:])
		dst[at] = rune(n)
		i++
	}
	return dst, nil
}
