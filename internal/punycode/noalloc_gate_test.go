package punycode

import (
	"testing"

	"repro/internal/lint"
)

// TestNoallocGate is the dynamic half of the //shamlint:noalloc
// contract: the exercise table below must cover exactly the annotated
// functions in this package (drift fails the test even under -race),
// and each steady-state path must measure zero allocations.
func TestNoallocGate(t *testing.T) {
	runeBuf := make([]rune, 0, 64)
	ace := []byte("ggle-55da")
	full := []byte("xn--ggle-55da")
	idn := "www.xn--ggle-55da.com"
	idnBytes := []byte(idn)
	var foldSink rune
	var boolSink bool

	lint.CheckNoallocCoverage(t, ".", map[string]func(){
		"DecodeAppend": func() {
			runeBuf, _ = DecodeAppend(runeBuf[:0], ace)
		},
		"ToUnicodeLabelAppend": func() {
			runeBuf, _ = ToUnicodeLabelAppend(runeBuf[:0], full)
		},
		"Fold": func() {
			foldSink = Fold('Ä')
		},
		"IsIDN": func() {
			boolSink = IsIDN(idn)
		},
		"IsIDNBytes": func() {
			boolSink = IsIDNBytes(idnBytes)
		},
	})
	_, _ = foldSink, boolSink
}
