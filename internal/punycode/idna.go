package punycode

import (
	"errors"
	"fmt"
	"strings"
)

// ACEPrefix is the ASCII-compatible-encoding prefix that marks an IDN label
// on the wire ("xn--", RFC 5890 section 2.3.2.1).
const ACEPrefix = "xn--"

// MaxLabelLength is the DNS limit on a single label's octet length.
const MaxLabelLength = 63

// ErrLabelTooLong is returned when an encoded label exceeds 63 octets.
var ErrLabelTooLong = errors.New("idna: encoded label exceeds 63 octets")

// ErrEmptyLabel is returned for empty labels in domain conversion.
var ErrEmptyLabel = errors.New("idna: empty label")

// lowerASCII lowercases ASCII letters and passes everything else through.
func lowerASCII(s string) string {
	hasUpper := false
	for i := 0; i < len(s); i++ {
		if s[i] >= 'A' && s[i] <= 'Z' {
			hasUpper = true
			break
		}
	}
	if !hasUpper {
		return s
	}
	b := []byte(s)
	for i := range b {
		if b[i] >= 'A' && b[i] <= 'Z' {
			b[i] += 'a' - 'A'
		}
	}
	return string(b)
}

// IsASCII reports whether s contains only ASCII bytes.
func IsASCII(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] >= 0x80 {
			return false
		}
	}
	return true
}

// IsACE reports whether the label carries the xn-- ACE prefix.
func IsACE(label string) bool {
	return len(label) >= len(ACEPrefix) && lowerASCII(label[:len(ACEPrefix)]) == ACEPrefix
}

// ToASCIILabel converts one label to its ASCII (ACE) form. ASCII labels are
// lowercased and returned as-is; labels with non-ASCII code points are
// Punycode-encoded and prefixed with "xn--".
func ToASCIILabel(label string) (string, error) {
	if label == "" {
		return "", ErrEmptyLabel
	}
	if IsASCII(label) {
		return lowerASCII(label), nil
	}
	enc, err := Encode(lowerASCII(label))
	if err != nil {
		return "", err
	}
	out := ACEPrefix + enc
	if len(out) > MaxLabelLength {
		return "", ErrLabelTooLong
	}
	return out, nil
}

// ToUnicodeLabel converts one label to its Unicode form. Non-ACE labels are
// returned unchanged (lowercased).
func ToUnicodeLabel(label string) (string, error) {
	label = lowerASCII(label)
	if !IsACE(label) {
		return label, nil
	}
	dec, err := Decode(label[len(ACEPrefix):])
	if err != nil {
		return "", fmt.Errorf("label %q: %w", label, err)
	}
	if dec == "" {
		return "", fmt.Errorf("label %q: %w", label, ErrEmptyLabel)
	}
	if IsASCII(dec) {
		// An ACE label must decode to at least one non-ASCII code point;
		// otherwise it is a fake-ACE label (RFC 5891 hyphen restrictions).
		return "", fmt.Errorf("label %q decodes to pure ASCII: %w", label, ErrInvalid)
	}
	return dec, nil
}

// ToASCII converts a whole dotted domain name to its ACE form.
func ToASCII(domain string) (string, error) {
	if domain == "" {
		return "", ErrEmptyLabel
	}
	labels := strings.Split(domain, ".")
	for i, l := range labels {
		// A single trailing dot (root) is preserved.
		if l == "" && i == len(labels)-1 {
			continue
		}
		a, err := ToASCIILabel(l)
		if err != nil {
			return "", fmt.Errorf("domain %q: %w", domain, err)
		}
		labels[i] = a
	}
	return strings.Join(labels, "."), nil
}

// ToUnicode converts a whole dotted domain name to its Unicode form.
// Labels that fail to decode are left in ACE form, mirroring browser
// behaviour, and the first error encountered is returned alongside the
// partially converted name.
func ToUnicode(domain string) (string, error) {
	labels := strings.Split(domain, ".")
	var firstErr error
	for i, l := range labels {
		u, err := ToUnicodeLabel(l)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		labels[i] = u
	}
	return strings.Join(labels, "."), firstErr
}

// IsIDN reports whether any label of the (ASCII-form) domain carries the
// ACE prefix — the paper's Step 2 test for extracting IDNs.
func IsIDN(domain string) bool {
	for _, l := range strings.Split(domain, ".") {
		if IsACE(l) {
			return true
		}
	}
	return false
}

// SLD returns the second-level label of a dotted domain name: for
// "foo.example.com" it returns "example" when tld="com" strips one suffix
// label. With an empty tld it returns the label immediately left of the
// final dot-separated label.
func SLD(domain string) string {
	labels := strings.Split(strings.TrimSuffix(domain, "."), ".")
	if len(labels) < 2 {
		if len(labels) == 1 {
			return labels[0]
		}
		return ""
	}
	return labels[len(labels)-2]
}
