package punycode

import (
	"errors"
	"fmt"
	"strings"
	"unicode"
)

// ACEPrefix is the ASCII-compatible-encoding prefix that marks an IDN label
// on the wire ("xn--", RFC 5890 section 2.3.2.1).
const ACEPrefix = "xn--"

// MaxLabelLength is the DNS limit on a single label's octet length.
const MaxLabelLength = 63

// ErrLabelTooLong is returned when an encoded label exceeds 63 octets.
var ErrLabelTooLong = errors.New("idna: encoded label exceeds 63 octets")

// ErrEmptyLabel is returned for empty labels in domain conversion.
var ErrEmptyLabel = errors.New("idna: empty label")

// foldsBMP marks the Basic Multilingual Plane code points whose
// unicode.ToLower differs from themselves — ~1,200 of 65,536. The
// zone-ingestion hot path folds every decoded rune, and paying
// unicode.ToLower's case-range binary search per (almost always
// already-lowercase) rune showed up as tens of ns/line; one bit probe
// rejects the common case instead. Built from unicode.CaseRanges so
// coverage is exact by construction (Upper ∪ Lt alone would miss the
// Nl/So oddities like Roman numerals and circled letters); a test
// brute-forces the whole plane against unicode.ToLower.
var foldsBMP [1 << 16 / 64]uint64

func init() {
	for _, cr := range unicode.CaseRanges {
		lo, hi := rune(cr.Lo), rune(cr.Hi)
		if lo > 0xFFFF {
			continue
		}
		if hi > 0xFFFF {
			hi = 0xFFFF
		}
		for r := lo; r <= hi; r++ {
			if unicode.ToLower(r) != r {
				foldsBMP[r>>6] |= 1 << (uint32(r) & 63)
			}
		}
	}
}

// Fold maps one rune to its canonical lowercase form: the byte-cheap
// A–Z shift for ASCII, unicode.ToLower beyond (bitset-gated so
// already-lowercase runes cost one probe). It is the single case rule
// every path normalizes through — reference labels in
// core.NewDetector, decoded zone labels in ToUnicodeLabelAppend, and
// encoding in ToASCIILabel — so an uppercase reference and an
// uppercase-encoded zone label can never disagree about case.
//
//shamlint:noalloc
func Fold(r rune) rune {
	if r < 0x80 {
		if r >= 'A' && r <= 'Z' {
			return r + 'a' - 'A'
		}
		return r
	}
	if r <= 0xFFFF && foldsBMP[r>>6]&(1<<(uint32(r)&63)) == 0 {
		return r
	}
	return unicode.ToLower(r)
}

// FoldString lowercases s rune-wise via Fold, returning s itself (no
// allocation) when it is already folded.
func FoldString(s string) string {
	for i, r := range s {
		if Fold(r) != r {
			// Fold the remainder into a fresh builder, keeping the
			// already-folded prefix.
			var sb strings.Builder
			sb.Grow(len(s))
			sb.WriteString(s[:i])
			for _, r := range s[i:] {
				sb.WriteRune(Fold(r))
			}
			return sb.String()
		}
	}
	return s
}

// HasACEPrefix reports whether the label carries the xn-- ACE prefix,
// for either label spelling — the allocation-free test the domain scan
// uses to pick candidate labels out of an FQDN.
func HasACEPrefix[S ByteSeq](label S) bool {
	return hasACEPrefix(label)
}

// lowerASCII lowercases ASCII letters and passes everything else through.
func lowerASCII(s string) string {
	hasUpper := false
	for i := 0; i < len(s); i++ {
		if s[i] >= 'A' && s[i] <= 'Z' {
			hasUpper = true
			break
		}
	}
	if !hasUpper {
		return s
	}
	b := []byte(s)
	for i := range b {
		if b[i] >= 'A' && b[i] <= 'Z' {
			b[i] += 'a' - 'A'
		}
	}
	return string(b)
}

// IsASCII reports whether s contains only ASCII bytes.
func IsASCII(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] >= 0x80 {
			return false
		}
	}
	return true
}

// IsACE reports whether the label carries the xn-- ACE prefix.
func IsACE(label string) bool {
	return hasACEPrefix(label)
}

// hasACEPrefix is the allocation-free case-insensitive "xn--" test shared
// by the string and []byte entry points.
func hasACEPrefix[S ByteSeq](label S) bool {
	return len(label) >= 4 &&
		(label[0] == 'x' || label[0] == 'X') &&
		(label[1] == 'n' || label[1] == 'N') &&
		label[2] == '-' && label[3] == '-'
}

// ToASCIILabel converts one label to its ASCII (ACE) form. ASCII labels are
// lowercased and returned as-is; labels with non-ASCII code points are
// case-folded (Fold, so ToASCIILabel(x) == ToASCIILabel(FoldString(x))),
// Punycode-encoded and prefixed with "xn--".
func ToASCIILabel(label string) (string, error) {
	if label == "" {
		return "", ErrEmptyLabel
	}
	if IsASCII(label) {
		return lowerASCII(label), nil
	}
	enc, err := Encode(FoldString(label))
	if err != nil {
		return "", err
	}
	out := ACEPrefix + enc
	if len(out) > MaxLabelLength {
		return "", ErrLabelTooLong
	}
	return out, nil
}

// errFakeACE flags an ACE label whose decode is pure ASCII — such a label
// must carry at least one non-ASCII code point (RFC 5891 hyphen
// restrictions), otherwise it is a fake-ACE label.
var errFakeACE = fmt.Errorf("%w: ACE label decodes to pure ASCII", ErrInvalid)

// ToUnicodeLabel converts one label to its Unicode form. Non-ACE labels are
// returned unchanged (lowercased). It is a thin wrapper over
// ToUnicodeLabelAppend, differential-tested against it.
func ToUnicodeLabel(label string) (string, error) {
	if !IsACE(label) { // the ACE-prefix test is case-insensitive
		return FoldString(label), nil
	}
	label = lowerASCII(label)
	dec, err := ToUnicodeLabelAppend(nil, label)
	if err != nil {
		return "", fmt.Errorf("label %q: %w", label, err)
	}
	return string(dec), nil
}

// ToUnicodeLabelAppend appends the Unicode form of one label (ACE or not,
// any ASCII case) to dst, returning the extended slice: the zero-copy,
// zero-allocation core of ToUnicodeLabel that the detection engine feeds
// reused buffers through. ASCII letters are lowercased; errors leave dst
// truncated back to its original length and are preallocated, so even a
// malformed line costs nothing in steady state.
//
//shamlint:noalloc
func ToUnicodeLabelAppend[S ByteSeq](dst []rune, label S) ([]rune, error) {
	base := len(dst)
	if !hasACEPrefix(label) {
		// range string(label) is conversion-free for the []byte
		// instantiation; folding decoded runes is equivalent to folding
		// the raw bytes because A–Z never appear inside a multi-byte
		// UTF-8 sequence.
		for _, r := range string(label) {
			dst = append(dst, Fold(r))
		}
		return dst, nil
	}
	dst, err := DecodeAppend(dst, label[len(ACEPrefix):])
	if err != nil {
		return dst[:base], err
	}
	if len(dst) == base {
		return dst, ErrEmptyLabel
	}
	// Decoded output keeps the encoder's case; fold it here so labels
	// and references meet on one normal form, and detect the fake-ACE
	// case in the same pass. The ASCII verdict looks at the pre-fold
	// rune: fake-ACE is a property of what was encoded, not of the fold
	// (U+212A KELVIN SIGN folds to ASCII 'k' yet its encoding is a
	// legitimate non-ASCII label).
	ascii := true
	for i := base; i < len(dst); i++ {
		r := dst[i]
		if r >= 0x80 {
			ascii = false
		}
		dst[i] = Fold(r)
	}
	if ascii {
		return dst[:base], errFakeACE
	}
	return dst, nil
}

// ToASCII converts a whole dotted domain name to its ACE form.
func ToASCII(domain string) (string, error) {
	if domain == "" {
		return "", ErrEmptyLabel
	}
	labels := strings.Split(domain, ".")
	for i, l := range labels {
		// A single trailing dot (root) is preserved.
		if l == "" && i == len(labels)-1 {
			continue
		}
		a, err := ToASCIILabel(l)
		if err != nil {
			return "", fmt.Errorf("domain %q: %w", domain, err)
		}
		labels[i] = a
	}
	return strings.Join(labels, "."), nil
}

// ToUnicode converts a whole dotted domain name to its Unicode form.
// Labels that fail to decode are left in ACE form, mirroring browser
// behaviour, and the first error encountered is returned alongside the
// partially converted name.
func ToUnicode(domain string) (string, error) {
	labels := strings.Split(domain, ".")
	var firstErr error
	for i, l := range labels {
		u, err := ToUnicodeLabel(l)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		labels[i] = u
	}
	return strings.Join(labels, "."), firstErr
}

// IsIDN reports whether any label of the (ASCII-form) domain carries the
// ACE prefix — the paper's Step 2 test for extracting IDNs. It allocates
// nothing: at ~134M lines per zone sweep this test runs on every line.
//
//shamlint:noalloc
func IsIDN(domain string) bool {
	return isIDN(domain)
}

// IsIDNBytes is IsIDN over a byte slice — same zero-allocation test,
// for feeders that keep zone lines in reused buffers.
//
//shamlint:noalloc
func IsIDNBytes(domain []byte) bool {
	return isIDN(domain)
}

func isIDN[S ByteSeq](domain S) bool {
	start := 0
	for i := 0; i <= len(domain); i++ {
		if i == len(domain) || domain[i] == '.' {
			if hasACEPrefix(domain[start:i]) {
				return true
			}
			start = i + 1
		}
	}
	return false
}

// SLD returns the second-level label of a dotted domain name: for
// "foo.example.com" it returns "example" when tld="com" strips one suffix
// label. With an empty tld it returns the label immediately left of the
// final dot-separated label.
func SLD(domain string) string {
	labels := strings.Split(strings.TrimSuffix(domain, "."), ".")
	if len(labels) < 2 {
		if len(labels) == 1 {
			return labels[0]
		}
		return ""
	}
	return labels[len(labels)-2]
}
