package punycode

import (
	"testing"
	"unicode"
)

// TestFoldMatchesUnicodeToLower brute-forces every code point: Fold
// must agree with the ASCII shift below 0x80 and with unicode.ToLower
// everywhere else — the bitset fast path is an optimization, never a
// semantic change. (Astral planes go through unicode.ToLower directly,
// covered here too.)
func TestFoldMatchesUnicodeToLower(t *testing.T) {
	for r := rune(0); r <= unicode.MaxRune; r++ {
		want := unicode.ToLower(r)
		if r < 0x80 {
			want = r
			if r >= 'A' && r <= 'Z' {
				want = r + 'a' - 'A'
			}
		}
		if got := Fold(r); got != want {
			t.Fatalf("Fold(U+%04X) = U+%04X, want U+%04X", r, got, want)
		}
	}
}

func TestFoldString(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", ""},
		{"google", "google"},
		{"GOOGLE", "google"},
		{"BÜCHER", "bücher"},
		{"bücher", "bücher"},
		{"GОOGLE", "gоogle"}, // Cyrillic О folds too
		{"ⅯⅯⅩⅩⅤ", "ⅿⅿⅹⅹⅴ"},   // Roman numerals: Nl, outside Upper∪Lt
		{"工業大学", "工業大学"},
	}
	for _, c := range cases {
		if got := FoldString(c.in); got != c.want {
			t.Errorf("FoldString(%q) = %q, want %q", c.in, got, c.want)
		}
	}
	// Already-folded strings come back without copying.
	s := "already-lower-ü"
	if got := FoldString(s); got != s {
		t.Errorf("FoldString(%q) reallocated to %q", s, got)
	}
	if n := testing.AllocsPerRun(100, func() { FoldString("nothing-to-fold-här") }); n != 0 {
		t.Errorf("FoldString allocates %.1f on folded input; want 0", n)
	}
}

func BenchmarkFold(b *testing.B) {
	runes := []rune("gооgleБВГджзФooBAR") // mixed ASCII/Cyrillic, both cases
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, r := range runes {
			Fold(r)
		}
	}
}
