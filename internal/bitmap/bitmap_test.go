package bitmap

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestSetAtClear(t *testing.T) {
	im := &Image{}
	if im.At(0, 0) || im.At(31, 31) {
		t.Fatal("zero image must be white")
	}
	im.Set(0, 0)
	im.Set(31, 31)
	im.Set(5, 17)
	if !im.At(0, 0) || !im.At(31, 31) || !im.At(5, 17) {
		t.Fatal("Set/At mismatch")
	}
	if im.PixelCount() != 3 {
		t.Fatalf("PixelCount = %d, want 3", im.PixelCount())
	}
	im.Clear(5, 17)
	if im.At(5, 17) || im.PixelCount() != 2 {
		t.Fatal("Clear failed")
	}
}

func TestDeltaBasics(t *testing.T) {
	a, b := &Image{}, &Image{}
	if Delta(a, b) != 0 {
		t.Fatal("identical blank images must have Δ=0")
	}
	a.Set(1, 1)
	if Delta(a, b) != 1 {
		t.Fatalf("Δ = %d, want 1", Delta(a, b))
	}
	b.Set(1, 1)
	b.Set(2, 2)
	b.Set(3, 3)
	if Delta(a, b) != 2 {
		t.Fatalf("Δ = %d, want 2", Delta(a, b))
	}
	if !Equal(a, a.Clone()) {
		t.Fatal("clone must be equal")
	}
}

func TestDeltaSymmetricAndTriangle(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	randImage := func() *Image {
		im := &Image{}
		for k := 0; k < 40; k++ {
			im.Set(rng.Intn(N), rng.Intn(N))
		}
		return im
	}
	for trial := 0; trial < 50; trial++ {
		a, b, c := randImage(), randImage(), randImage()
		if Delta(a, b) != Delta(b, a) {
			t.Fatal("Δ must be symmetric")
		}
		if Delta(a, a) != 0 {
			t.Fatal("Δ(a,a) must be 0")
		}
		if Delta(a, c) > Delta(a, b)+Delta(b, c) {
			t.Fatal("Δ must satisfy the triangle inequality (Hamming)")
		}
	}
}

func TestDeltaCapped(t *testing.T) {
	a, b := &Image{}, &Image{}
	for j := 0; j < 20; j++ {
		a.Set(0, j)
	}
	if got := DeltaCapped(a, b, 4); got != 5 {
		t.Fatalf("DeltaCapped = %d, want 5 (cap+1)", got)
	}
	if got := DeltaCapped(a, b, 64); got != 20 {
		t.Fatalf("DeltaCapped uncapped = %d, want 20", got)
	}
}

func TestMSEAndPSNR(t *testing.T) {
	a, b := &Image{}, &Image{}
	if !math.IsInf(PSNR(a, b), 1) {
		t.Fatal("PSNR of identical images must be +Inf")
	}
	b.Set(0, 0)
	b.Set(0, 1)
	b.Set(0, 2)
	b.Set(0, 3)
	if got := MSE(a, b); math.Abs(got-4.0/1024.0) > 1e-12 {
		t.Fatalf("MSE = %v", got)
	}
	// PSNR = 20 log10(32) - 10 log10(4)
	want := 20*math.Log10(32) - 10*math.Log10(4)
	if got := PSNR(a, b); math.Abs(got-want) > 1e-9 {
		t.Fatalf("PSNR = %v, want %v", got, want)
	}
	// PSNR must decrease as Δ grows.
	c := b.Clone()
	c.Set(5, 5)
	c.Set(6, 6)
	if PSNR(a, c) >= PSNR(a, b) {
		t.Fatal("PSNR must decrease with Δ")
	}
}

func TestSparse(t *testing.T) {
	im := &Image{}
	for k := 0; k < 9; k++ {
		im.Set(k, k)
	}
	if !im.IsSparse(10) {
		t.Fatal("9 pixels must be sparse at min=10")
	}
	im.Set(9, 9)
	if im.IsSparse(10) {
		t.Fatal("10 pixels must not be sparse at min=10")
	}
}

func TestBandKeyPigeonhole(t *testing.T) {
	// If Δ(a,b) <= 4 then with 5 bands at least one band must be identical,
	// hence share a BandKey.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		a := &Image{}
		for k := 0; k < 60; k++ {
			a.Set(rng.Intn(N), rng.Intn(N))
		}
		b := a.Clone()
		flips := rng.Intn(5) // 0..4 differing pixels
		for f := 0; f < flips; f++ {
			i, j := rng.Intn(N), rng.Intn(N)
			if b.At(i, j) {
				b.Clear(i, j)
			} else {
				b.Set(i, j)
			}
		}
		shared := false
		for band := 0; band < Bands; band++ {
			if a.BandKey(band) == b.BandKey(band) {
				shared = true
				break
			}
		}
		if !shared && Delta(a, b) <= 4 {
			t.Fatalf("pigeonhole violated: Δ=%d but no shared band", Delta(a, b))
		}
	}
}

func TestBandKeyDistinguishesBands(t *testing.T) {
	im := &Image{}
	k0 := im.BandKey(0)
	k1 := im.BandKey(1)
	if k0 == k1 {
		t.Fatal("identical empty bands in different positions must hash differently")
	}
}

func TestTranslate(t *testing.T) {
	im := &Image{}
	im.Set(10, 10)
	sh := im.Translate(2, -3)
	if !sh.At(12, 7) || sh.PixelCount() != 1 {
		t.Fatalf("Translate failed:\n%s", sh)
	}
	// Pixels shifted off-canvas vanish.
	edge := &Image{}
	edge.Set(0, 0)
	if got := edge.Translate(-1, 0).PixelCount(); got != 0 {
		t.Fatalf("off-canvas pixel survived: %d", got)
	}
}

func TestFlipPixels(t *testing.T) {
	im := &Image{}
	im.Set(3, 3)
	out := im.FlipPixels([2]int{3, 3}, [2]int{4, 4})
	if out.At(3, 3) || !out.At(4, 4) {
		t.Fatal("FlipPixels wrong")
	}
	if !im.At(3, 3) {
		t.Fatal("FlipPixels must not mutate the receiver")
	}
	if Delta(im, out) != 2 {
		t.Fatalf("Δ after flipping 2 = %d", Delta(im, out))
	}
}

func TestUnion(t *testing.T) {
	a, b := &Image{}, &Image{}
	a.Set(1, 1)
	b.Set(2, 2)
	a.Union(b)
	if !a.At(1, 1) || !a.At(2, 2) || a.PixelCount() != 2 {
		t.Fatal("Union failed")
	}
}

func TestStringParseRoundTrip(t *testing.T) {
	f := func(coords []uint16) bool {
		im := &Image{}
		for _, c := range coords {
			im.Set(int(c)%N, int(c/N)%N)
		}
		back, err := Parse(im.String())
		if err != nil {
			return false
		}
		return Equal(im, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse("??\n"); err == nil {
		t.Fatal("bad pixel char must error")
	}
	long := ""
	for i := 0; i < N+1; i++ {
		long += ".\n"
	}
	if _, err := Parse(long); err == nil {
		t.Fatal("too many lines must error")
	}
}

func TestHashMatchesEquality(t *testing.T) {
	f := func(coords []uint16, flip uint16) bool {
		a := &Image{}
		for _, c := range coords {
			a.Set(int(c)%N, int(c/N)%N)
		}
		b := a.Clone()
		if Equal(a, b) && a.Hash() != b.Hash() {
			return false
		}
		b = b.FlipPixels([2]int{int(flip) % N, int(flip/N) % N})
		// Different images should (with overwhelming probability) have
		// different hashes; tolerate collisions by only checking equality
		// direction.
		return !Equal(a, b) || a.Hash() == b.Hash()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSideBySide(t *testing.T) {
	a, b := &Image{}, &Image{}
	a.Set(0, 0)
	b.Set(0, 31)
	out := SideBySide(a, b)
	lines := 0
	for _, ch := range out {
		if ch == '\n' {
			lines++
		}
	}
	if lines != N {
		t.Fatalf("SideBySide produced %d lines, want %d", lines, N)
	}
}

func BenchmarkDelta(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	x, y := &Image{}, &Image{}
	for k := 0; k < 100; k++ {
		x.Set(rng.Intn(N), rng.Intn(N))
		y.Set(rng.Intn(N), rng.Intn(N))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Delta(x, y)
	}
}

func BenchmarkBandKey(b *testing.B) {
	im := &Image{}
	im.Set(4, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for band := 0; band < Bands; band++ {
			im.BandKey(band)
		}
	}
}

// quick uses reflection-generated values; keep vet happy about unused import.
var _ = reflect.TypeOf
