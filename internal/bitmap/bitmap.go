// Package bitmap provides the binary glyph images and pixel-distance
// metrics at the heart of SimChar (Section 3.3 of the paper): 32×32
// single-bit images, the Δ differing-pixel count, and the MSE/PSNR
// derivations the paper relates Δ to.
package bitmap

import (
	"fmt"
	"math"
	"math/bits"
	"strings"
)

// N is the side length of a glyph image in pixels. The paper rasterizes
// every glyph to 32×32 (Step I).
const N = 32

// Words is the number of 64-bit words backing one image.
const Words = N * N / 64

// Image is an N×N binary image. Bit (i,j) — row i, column j — is stored at
// word (i*N+j)/64, bit (i*N+j)%64. The zero value is an all-white image.
type Image struct {
	w [Words]uint64
}

// Set turns the pixel at row i, column j on (black).
func (im *Image) Set(i, j int) {
	idx := i*N + j
	im.w[idx>>6] |= 1 << uint(idx&63)
}

// Clear turns the pixel at row i, column j off (white).
func (im *Image) Clear(i, j int) {
	idx := i*N + j
	im.w[idx>>6] &^= 1 << uint(idx&63)
}

// At reports whether the pixel at row i, column j is black.
func (im *Image) At(i, j int) bool {
	idx := i*N + j
	return im.w[idx>>6]&(1<<uint(idx&63)) != 0
}

// PixelCount returns the number of black pixels.
func (im *Image) PixelCount() int {
	n := 0
	for _, w := range im.w {
		n += bits.OnesCount64(w)
	}
	return n
}

// IsSparse reports whether the image has fewer than min black pixels.
// The paper's Step III eliminates characters with fewer than 10 black
// pixels (punctuation, spacing and combining marks).
func (im *Image) IsSparse(min int) bool {
	return im.PixelCount() < min
}

// Delta returns the paper's Δ metric: the number of pixels at which the two
// images differ. Δ = 0 means the glyphs are identical.
func Delta(a, b *Image) int {
	n := 0
	for k := 0; k < Words; k++ {
		n += bits.OnesCount64(a.w[k] ^ b.w[k])
	}
	return n
}

// DeltaCapped computes Δ but stops early once the count exceeds cap,
// returning cap+1. This keeps the O(n²) pairwise scan cheap for the
// overwhelmingly common far-apart pairs.
func DeltaCapped(a, b *Image, cap int) int {
	n := 0
	for k := 0; k < Words; k++ {
		n += bits.OnesCount64(a.w[k] ^ b.w[k])
		if n > cap {
			return cap + 1
		}
	}
	return n
}

// MSE returns the mean square error between two binary images,
// Δ/N² as derived in Section 3.3.
func MSE(a, b *Image) float64 {
	return float64(Delta(a, b)) / float64(N*N)
}

// PSNR returns the peak signal-to-noise ratio between two binary images:
// 20·log10(N) − 10·log10(Δ). It is +Inf for identical images.
func PSNR(a, b *Image) float64 {
	d := Delta(a, b)
	if d == 0 {
		return math.Inf(1)
	}
	return 20*math.Log10(N) - 10*math.Log10(float64(d))
}

// Equal reports whether the images are pixel-identical.
func Equal(a, b *Image) bool {
	return a.w == b.w
}

// Bands is the number of horizontal bands used by the pigeonhole index.
// With Δ ≤ threshold and Bands > threshold, at least one band of the two
// images must be bit-identical, so candidate pairs can be found by hashing
// bands (see internal/simchar).
const Bands = 5

// bandRows maps each band to its half-open row range. The five groups
// cover all 32 rows exactly once (so the pigeonhole argument is exact) but
// concentrate on rows 11..19 where centered glyph content actually varies,
// keeping empty-band hash buckets small.
var bandRows = [Bands][2]int{{0, 11}, {11, 14}, {14, 17}, {17, 20}, {20, 32}}

// RowBits returns row i of the image as a 32-bit mask (bit j = column j).
func (im *Image) RowBits(i int) uint32 {
	idx := i * N
	w := im.w[idx>>6]
	if idx&63 != 0 {
		return uint32(w >> 32)
	}
	return uint32(w)
}

// BandKey returns a hashable key for the band'th horizontal slice of the
// image (see bandRows).
func (im *Image) BandKey(band int) uint64 {
	lo, hi := bandRows[band][0], bandRows[band][1]
	// FNV-1a over the rows, mixed with the band number so the same band
	// content in different bands does not collide.
	h := uint64(14695981039346656037) ^ uint64(band)*1099511628211
	for i := lo; i < hi; i++ {
		h ^= uint64(im.RowBits(i))
		h *= 1099511628211
	}
	return h
}

// Hash returns a 64-bit content hash of the whole image.
func (im *Image) Hash() uint64 {
	h := uint64(14695981039346656037)
	for _, w := range im.w {
		h ^= w
		h *= 1099511628211
	}
	return h
}

// Union draws the black pixels of src onto im.
func (im *Image) Union(src *Image) {
	for k := 0; k < Words; k++ {
		im.w[k] |= src.w[k]
	}
}

// Translate returns a copy of the image shifted by (di, dj) rows/columns;
// pixels shifted outside the canvas are dropped.
func (im *Image) Translate(di, dj int) *Image {
	out := &Image{}
	for i := 0; i < N; i++ {
		ni := i + di
		if ni < 0 || ni >= N {
			continue
		}
		for j := 0; j < N; j++ {
			nj := j + dj
			if nj < 0 || nj >= N {
				continue
			}
			if im.At(i, j) {
				out.Set(ni, nj)
			}
		}
	}
	return out
}

// FlipPixels returns a copy with the pixels at the provided (row, col)
// coordinates toggled. It is the precise tool the synthetic font uses to
// manufacture glyph pairs at an exact Δ.
func (im *Image) FlipPixels(coords ...[2]int) *Image {
	out := *im
	for _, c := range coords {
		idx := c[0]*N + c[1]
		out.w[idx>>6] ^= 1 << uint(idx&63)
	}
	return &out
}

// Clone returns an independent copy.
func (im *Image) Clone() *Image {
	out := *im
	return &out
}

// String renders the image as N lines of '#' and '.', handy in test
// failures and the Figure 6 ladder output.
func (im *Image) String() string {
	var sb strings.Builder
	sb.Grow(N * (N + 1))
	for i := 0; i < N; i++ {
		for j := 0; j < N; j++ {
			if im.At(i, j) {
				sb.WriteByte('#')
			} else {
				sb.WriteByte('.')
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Parse reads the String() format back into an image. Lines shorter than N
// are padded with white; extra content is an error.
func Parse(s string) (*Image, error) {
	im := &Image{}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) > N {
		return nil, fmt.Errorf("bitmap: %d lines exceeds %d", len(lines), N)
	}
	for i, line := range lines {
		if len(line) > N {
			return nil, fmt.Errorf("bitmap: line %d length %d exceeds %d", i, len(line), N)
		}
		for j := 0; j < len(line); j++ {
			switch line[j] {
			case '#', '1', 'X':
				im.Set(i, j)
			case '.', '0', ' ':
			default:
				return nil, fmt.Errorf("bitmap: bad pixel char %q at (%d,%d)", line[j], i, j)
			}
		}
	}
	return im, nil
}

// SideBySide renders a row of images separated by a gutter, used by the
// Figure 6 Δ-ladder printout.
func SideBySide(images ...*Image) string {
	var sb strings.Builder
	for i := 0; i < N; i++ {
		for k, im := range images {
			if k > 0 {
				sb.WriteString("  ")
			}
			for j := 0; j < N; j++ {
				if im.At(i, j) {
					sb.WriteByte('#')
				} else {
					sb.WriteByte('.')
				}
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
