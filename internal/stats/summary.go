package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary is the five-number summary plus mean used for the paper's
// boxplots (Figures 9 and 10): median with quartiles, whiskers at
// 1.5 IQR clamped to the data range, and the dashed-line mean.
type Summary struct {
	N        int
	Mean     float64
	Median   float64
	Q1, Q3   float64
	Min, Max float64
	WhiskLo  float64 // largest of Min and Q1 - 1.5*IQR data point
	WhiskHi  float64 // smallest of Max and Q3 + 1.5*IQR data point
}

// Summarize computes the summary of xs. An empty input returns a zero
// Summary with N=0.
func Summarize(xs []float64) Summary {
	var s Summary
	s.N = len(xs)
	if s.N == 0 {
		return s
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Min, s.Max = sorted[0], sorted[len(sorted)-1]
	total := 0.0
	for _, x := range sorted {
		total += x
	}
	s.Mean = total / float64(s.N)
	s.Median = quantile(sorted, 0.5)
	s.Q1 = quantile(sorted, 0.25)
	s.Q3 = quantile(sorted, 0.75)
	iqr := s.Q3 - s.Q1
	lo, hi := s.Q1-1.5*iqr, s.Q3+1.5*iqr
	s.WhiskLo, s.WhiskHi = s.Max, s.Min
	for _, x := range sorted {
		if x >= lo && x < s.WhiskLo {
			s.WhiskLo = x
		}
		if x <= hi && x > s.WhiskHi {
			s.WhiskHi = x
		}
	}
	return s
}

// quantile interpolates the q-quantile of sorted data (type 7, the R
// and NumPy default).
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// String renders the summary compactly for logs and EXPERIMENTS.md.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.2f median=%.1f q1=%.1f q3=%.1f whiskers=[%.1f,%.1f]",
		s.N, s.Mean, s.Median, s.Q1, s.Q3, s.WhiskLo, s.WhiskHi)
}

// Histogram counts values into integer bins — Likert scores use bins
// 1..5.
func Histogram(xs []float64, lo, hi int) map[int]int {
	h := make(map[int]int)
	for _, x := range xs {
		b := int(math.Round(x))
		if b < lo {
			b = lo
		}
		if b > hi {
			b = hi
		}
		h[b]++
	}
	return h
}

// AsciiBox renders a one-line ASCII boxplot of s over [lo, hi] with
// the given width — the textual stand-in for the paper's Figure 9/10
// panels.
func AsciiBox(s Summary, lo, hi float64, width int) string {
	if width < 10 {
		width = 10
	}
	col := func(v float64) int {
		f := (v - lo) / (hi - lo)
		if f < 0 {
			f = 0
		}
		if f > 1 {
			f = 1
		}
		return int(f * float64(width-1))
	}
	row := []byte(strings.Repeat(" ", width))
	for i := col(s.WhiskLo); i <= col(s.WhiskHi); i++ {
		row[i] = '-'
	}
	for i := col(s.Q1); i <= col(s.Q3); i++ {
		row[i] = '='
	}
	row[col(s.Mean)] = '*'
	if col(s.Median) == col(s.Mean) {
		row[col(s.Median)] = '+' // median and mean coincide
	} else {
		row[col(s.Median)] = '|'
	}
	return string(row)
}

// Mean is the arithmetic mean; returns 0 on empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	t := 0.0
	for _, x := range xs {
		t += x
	}
	return t / float64(len(xs))
}

// Median returns the middle value; 0 on empty input.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return quantile(sorted, 0.5)
}
