package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	if a.Uint64() == c.Uint64() {
		t.Error("different seeds collided immediately")
	}
}

func TestIntnRange(t *testing.T) {
	rng := NewRNG(1)
	for i := 0; i < 1000; i++ {
		v := rng.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	rng := NewRNG(2)
	for i := 0; i < 1000; i++ {
		f := rng.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v", f)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	rng := NewRNG(3)
	p := rng.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("bad permutation %v", p)
		}
		seen[v] = true
	}
}

func TestNormalMoments(t *testing.T) {
	rng := NewRNG(4)
	n := 20000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := rng.Normal(3, 2)
		sum += x
		sumSq += x * x
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean-3) > 0.1 {
		t.Errorf("mean = %v", mean)
	}
	if math.Abs(math.Sqrt(variance)-2) > 0.1 {
		t.Errorf("stddev = %v", math.Sqrt(variance))
	}
}

func TestZipfSkew(t *testing.T) {
	rng := NewRNG(5)
	z := NewZipf(rng, 100, 1.1)
	counts := make([]int, 101)
	for i := 0; i < 20000; i++ {
		counts[z.Rank()]++
	}
	if counts[1] <= counts[50] || counts[1] <= counts[100] {
		t.Errorf("zipf not skewed: rank1=%d rank50=%d rank100=%d",
			counts[1], counts[50], counts[100])
	}
	// Mass sums to ~1.
	total := 0.0
	for r := 1; r <= 100; r++ {
		total += z.Mass(r)
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("mass sums to %v", total)
	}
}

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Median != 3 || s.Min != 1 || s.Max != 5 {
		t.Errorf("summary = %+v", s)
	}
	if s.Q1 != 2 || s.Q3 != 4 {
		t.Errorf("quartiles = %v/%v", s.Q1, s.Q3)
	}
	if s.WhiskLo != 1 || s.WhiskHi != 5 {
		t.Errorf("whiskers = %v/%v", s.WhiskLo, s.WhiskHi)
	}
}

func TestSummarizeOutlierWhiskers(t *testing.T) {
	// 100 is an outlier: whisker must stop at the last point within
	// 1.5 IQR.
	s := Summarize([]float64{1, 2, 2, 3, 3, 3, 4, 4, 5, 100})
	if s.WhiskHi == 100 {
		t.Errorf("whisker includes outlier: %+v", s)
	}
	if s.Max != 100 {
		t.Errorf("max = %v", s.Max)
	}
}

func TestSummarizeDegenerate(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Errorf("empty = %+v", s)
	}
	s := Summarize([]float64{7})
	if s.N != 1 || s.Mean != 7 || s.Median != 7 || s.Q1 != 7 || s.Q3 != 7 {
		t.Errorf("singleton = %+v", s)
	}
}

func TestSummarizeBoundsProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			// Exclude non-finite values and magnitudes where the mean
			// itself overflows; Likert data lives in [1, 5].
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e300 {
				xs = append(xs, x/1e10)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		return s.Min <= s.Q1 && s.Q1 <= s.Median && s.Median <= s.Q3 &&
			s.Q3 <= s.Max && s.Min <= s.Mean && s.Mean <= s.Max &&
			s.WhiskLo >= s.Min && s.WhiskHi <= s.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h := Histogram([]float64{1, 1.4, 2.6, 5, 9}, 1, 5)
	if h[1] != 2 || h[3] != 1 || h[5] != 2 {
		t.Errorf("histogram = %v", h)
	}
}

func TestMeanMedian(t *testing.T) {
	if Mean(nil) != 0 || Median(nil) != 0 {
		t.Error("empty mean/median")
	}
	if Mean([]float64{2, 4}) != 3 || Median([]float64{1, 3, 2}) != 2 {
		t.Error("mean/median wrong")
	}
}

func TestAsciiBox(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	box := AsciiBox(s, 1, 5, 40)
	if len(box) != 40 {
		t.Fatalf("box width = %d", len(box))
	}
	hasMedian := false
	for _, c := range box {
		if c == '|' || c == '+' { // '+' marks coincident mean/median
			hasMedian = true
		}
	}
	if !hasMedian {
		t.Errorf("box missing median marker: %q", box)
	}
	// An asymmetric distribution separates mean from median.
	skewed := AsciiBox(Summarize([]float64{1, 1, 1, 1, 2, 5}), 1, 5, 40)
	if !strings.ContainsRune(skewed, '|') || !strings.ContainsRune(skewed, '*') {
		t.Errorf("skewed box missing separate markers: %q", skewed)
	}
}

func TestHashStringStable(t *testing.T) {
	if HashString("example.com") != HashString("example.com") {
		t.Error("hash not stable")
	}
	if HashString("a.com") == HashString("b.com") {
		t.Error("trivial collision")
	}
}

func TestShuffleDeterministic(t *testing.T) {
	mk := func(seed uint64) []int {
		xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
		rng := NewRNG(seed)
		rng.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
		return xs
	}
	a, b := mk(9), mk(9)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("shuffle not deterministic")
		}
	}
}
