package stats

import "math"

// Thin wrappers keep rng.go free of qualified math calls; they also pin
// the few float operations the deterministic generators rely on.
const pi = math.Pi

func sqrt(x float64) float64 { return math.Sqrt(x) }
func ln(x float64) float64   { return math.Log(x) }
func cos(x float64) float64  { return math.Cos(x) }

// Zipf samples ranks 1..n with probability proportional to 1/rank^s using
// a precomputed cumulative table. It models the popularity skew of both
// website rankings and passive-DNS query volumes.
type Zipf struct {
	cum []float64
	rng *RNG
}

// NewZipf builds a Zipf sampler over n ranks with exponent s.
func NewZipf(rng *RNG, n int, s float64) *Zipf {
	cum := make([]float64, n)
	total := 0.0
	for i := 1; i <= n; i++ {
		total += 1 / math.Pow(float64(i), s)
		cum[i-1] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	return &Zipf{cum: cum, rng: rng}
}

// Rank samples a rank in [1, n].
func (z *Zipf) Rank() int {
	u := z.rng.Float64()
	lo, hi := 0, len(z.cum)
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo + 1
}

// Mass returns the normalized probability mass of rank r (1-based).
func (z *Zipf) Mass(r int) float64 {
	if r < 1 || r > len(z.cum) {
		return 0
	}
	if r == 1 {
		return z.cum[0]
	}
	return z.cum[r-1] - z.cum[r-2]
}
