// Package stats provides the deterministic random-number generation,
// sampling distributions and summary statistics shared by the synthetic
// workload generators and the experiment harness. Everything is seeded so
// two runs of the experiments produce identical tables.
package stats

// RNG is a splitmix64 pseudo-random generator. It is deliberately not
// math/rand: the sequence is part of the reproduction's determinism
// contract and must not drift with Go releases.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Uint64 returns the next 64-bit value.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the order of n elements using the provided swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Normal returns a normally distributed value with the given mean and
// standard deviation (Box–Muller).
func (r *RNG) Normal(mean, stddev float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	z := sqrt(-2*ln(u1)) * cos(2*pi*u2)
	return mean + stddev*z
}

// Mix hashes x with splitmix64's finalizer, useful for deriving stable
// per-item seeds (e.g. per code point or per domain).
func Mix(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// HashString returns a stable 64-bit FNV-1a hash of s.
func HashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
