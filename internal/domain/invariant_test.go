package domain

import (
	"strings"
	"testing"
)

// TestMultiSuffixEntriesAreNeverCandidates pins the invariant the
// detection engine's fused domain walk relies on: every second-level
// entry of the multi-label suffix table is plain lowercase ASCII with
// no ACE prefix. It follows that an interior label which is a homograph
// candidate (ACE or non-ASCII) can never be excluded as part of a
// two-label public suffix — so "scannable" reduces to "not the final
// label", with no per-line suffix probe. Whoever extends the table
// with an entry violating this must teach core.detectDomain the
// general case first.
func TestMultiSuffixEntriesAreNeverCandidates(t *testing.T) {
	for tld, slds := range multiSuffixes {
		if tld != strings.ToLower(tld) {
			t.Errorf("table TLD %q is not lowercase", tld)
		}
		// TwoLabelSuffix probes the table through a stack buffer of
		// maxSuffixKeyLen bytes; a longer key would silently never match.
		if len(tld) > maxSuffixKeyLen {
			t.Errorf("table TLD %q is %d bytes, exceeding maxSuffixKeyLen=%d — TwoLabelSuffix would never find it", tld, len(tld), maxSuffixKeyLen)
		}
		for _, sld := range slds {
			if sld != strings.ToLower(sld) {
				t.Errorf("table entry %q.%s is not lowercase", sld, tld)
			}
			if strings.HasPrefix(sld, "xn--") {
				t.Errorf("table entry %q.%s is an ACE label; core's fused scan assumes this never happens", sld, tld)
			}
			for i := 0; i < len(sld); i++ {
				if sld[i] >= 0x80 {
					t.Errorf("table entry %q.%s carries non-ASCII bytes; core's fused scan assumes this never happens", sld, tld)
				}
			}
		}
	}
}
