package domain

import (
	"testing"

	"repro/internal/lint"
)

// TestNoallocGate keeps this package's //shamlint:noalloc annotations
// and their AllocsPerRun exercises in lockstep: the per-line feeder
// primitives must stay allocation-free with warm scratch.
func TestNoallocGate(t *testing.T) {
	spans := make([]Span, 0, 8)
	name := []byte("www.xn--bcher-kva.co.uk")
	line := []byte("XN--GGLE-55DA.COM")
	buf := make([]byte, 64)

	lint.CheckNoallocCoverage(t, ".", map[string]func(){
		"AppendSpans": func() {
			spans = AppendSpans(spans[:0], name)
		},
		"NormalizeZoneLine": func() {
			copy(buf, line)
			NormalizeZoneLine(buf[:len(line)])
		},
		"NormalizeZoneLineAll": func() {
			copy(buf, line)
			NormalizeZoneLineAll(buf[:len(line)])
		},
	})
}
