package domain

import "repro/internal/punycode"

// NormalizeZoneLine prepares one domain-list line (or one incoming
// query FQDN — the HTTP serving layer routes through the same rules,
// so `serve` and `detect` can never disagree on normalization) for
// detection, in place and without allocating: ASCII whitespace is
// trimmed, one trailing root dot is dropped, and ASCII letters are
// lowercased. The whole FQDN is kept — any TLD, any label count — for
// the domain-aware detectors to split.
//
// It reports false for blank lines and lines with no scannable
// homograph candidate: a candidate is an ACE label left of the final
// dot, a bare ACE label, or any non-ASCII byte. The position test
// matters in IDN-TLD zones (.xn--p1ai), where the TLD would otherwise
// qualify every plain line: those reject here, before the pooled-buffer
// copy and worker handoff, with zero work beyond one byte scan. The
// returned domain aliases line's storage.
//
//shamlint:noalloc
func NormalizeZoneLine(line []byte) ([]byte, bool) {
	start, end := 0, len(line)
	for start < end && asciiSpace(line[start]) {
		start++
	}
	for end > start && asciiSpace(line[end-1]) {
		end--
	}
	if end > start && line[end-1] == '.' {
		end-- // zone files write FQDNs with the root dot
	}
	line = line[start:end]
	if len(line) == 0 || !scannableZoneName(line) {
		return nil, false
	}
	for i, c := range line {
		if c >= 'A' && c <= 'Z' {
			line[i] = c + 'a' - 'A'
		}
	}
	return line, true
}

// scannableZoneName is NormalizeZoneLine's gate, one early-exit pass:
// keep on the first non-ASCII byte, or on a dot following an ACE label
// start (the ACE label is then left of the final dot). A lone ACE
// label with nothing after it is kept only when it IS the whole name
// (firstACE == 0) — otherwise it is the name's TLD, which the detector
// never scans. The prefix probe runs on the label tail; "xn--" cannot
// span a dot, so no cross-label false positive exists.
// NormalizeZoneLineAll is NormalizeZoneLine without the ACE/non-ASCII
// candidate gate: every non-blank name is kept. The skeleton detection
// backend compares whole-label prototypes, so a pure-ASCII name like
// "rnicrosoft.com" is a live candidate there — feeders select this
// variant whenever the chosen backend includes the skeleton index, and
// keep the gated NormalizeZoneLine for postings-only runs where the
// early reject saves the pooled-buffer copy and worker handoff.
//
//shamlint:noalloc
func NormalizeZoneLineAll(line []byte) ([]byte, bool) {
	start, end := 0, len(line)
	for start < end && asciiSpace(line[start]) {
		start++
	}
	for end > start && asciiSpace(line[end-1]) {
		end--
	}
	if end > start && line[end-1] == '.' {
		end--
	}
	line = line[start:end]
	if len(line) == 0 {
		return nil, false
	}
	for i, c := range line {
		if c >= 'A' && c <= 'Z' {
			line[i] = c + 'a' - 'A'
		}
	}
	return line, true
}

func scannableZoneName(line []byte) bool {
	firstACE := -1
	labelStart := true
	for i := 0; i < len(line); i++ {
		c := line[i]
		if c >= 0x80 {
			return true
		}
		if firstACE >= 0 {
			if c == '.' {
				return true
			}
			continue
		}
		if labelStart && punycode.HasACEPrefix(line[i:]) {
			firstACE = i
		}
		labelStart = c == '.'
	}
	return firstACE == 0
}

func asciiSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\f' || c == '\v'
}
