// Package domain models DNS domain names as structured multi-label
// objects — the representation the measurement pipeline needs to see
// zones beyond .com. The paper scans .com, .net and ~1,500 new-gTLD
// zone files; treating a zone line as "label with a .com suffix glued
// on" (the seed's approach) makes every other zone invisible. This
// package provides:
//
//   - zero-allocation splitting of a domain name into label spans,
//     generic over string | []byte like internal/punycode, tolerant of
//     the trailing root dot zone files carry;
//   - a small embedded multi-label public-suffix table (the
//     "co.uk"-style cut rule), so the registrable label — the label a
//     homograph attack substitutes into — is extracted correctly for
//     arbitrary TLDs, including ACE/IDN TLDs such as xn--p1ai;
//   - string conveniences (Labels, Suffix, Registrable) for load-time
//     call sites such as reference-list parsing.
//
// The detection hot path (core's fused per-line walk) tracks label
// boundaries itself and consults only TwoLabelSuffix, on the match
// path — allocation-free by construction. AppendSpans, SuffixLabels
// and the string conveniences serve load-time callers (Registrable,
// ranking) and tests; changing suffix semantics means changing
// TwoLabelSuffix (or the table), which both paths share.
package domain

import "repro/internal/punycode"

// Span marks one label's [Start, End) byte range within a domain name.
type Span struct {
	Start, End int
}

// AppendSpans appends the label spans of name to dst, returning the
// extended slice. Labels are the dot-separated runs of bytes; one
// trailing root dot (as zone files write, "example.com.") contributes
// no final empty label. Interior empty labels ("a..b") are preserved
// as empty spans so callers see the malformed shape instead of a
// silently repaired name. With pre-grown dst capacity the call
// allocates nothing.
//
//shamlint:noalloc
func AppendSpans[S punycode.ByteSeq](dst []Span, name S) []Span {
	if len(name) == 0 {
		return dst
	}
	base := len(dst)
	start := 0
	for i := 0; i <= len(name); i++ {
		if i == len(name) || name[i] == '.' {
			if i == len(name) && start == i && len(dst) > base {
				break // trailing root dot: no final empty label
			}
			dst = append(dst, Span{Start: start, End: i})
			start = i + 1
		}
	}
	return dst
}

// SuffixLabels reports how many trailing labels of name form its public
// suffix: 0 for a single-label name, 2 when the last two labels are a
// known multi-label suffix ("co.uk"), 1 otherwise. The suffix never
// swallows the whole name — a two-label name keeps one registrable
// label even when it spells a multi-label suffix — so the registrable
// label at index len(spans)-SuffixLabels(...)-1 always exists. spans
// must be the AppendSpans decomposition of name.
func SuffixLabels[S punycode.ByteSeq](name S, spans []Span) int {
	if len(spans) < 2 {
		return 0
	}
	if len(spans) >= 3 && TwoLabelSuffix(name, spans[len(spans)-2], spans[len(spans)-1]) {
		return 2
	}
	return 1
}

// Labels splits a domain name into its labels (root dot dropped).
func Labels(name string) []string {
	spans := AppendSpans(nil, name)
	out := make([]string, len(spans))
	for i, sp := range spans {
		out[i] = name[sp.Start:sp.End]
	}
	return out
}

// Suffix returns the public suffix of name ("com", "co.uk",
// "xn--p1ai"), or "" for a single-label name.
func Suffix(name string) string {
	_, suffix := Registrable(name)
	return suffix
}

// Registrable returns the registrable label of name — the label
// immediately left of the public suffix, the unit Algorithm 1 matches
// against a reference — together with that suffix. A bare label
// returns (label, ""); an empty or dot-only name returns ("", "").
//
//	Registrable("amazon.co.uk")      = "amazon", "co.uk"
//	Registrable("www.xn--ggle-55da.com") = "xn--ggle-55da", "com"
//	Registrable("xn--80ak6aa92e.xn--p1ai") = "xn--80ak6aa92e", "xn--p1ai"
//	Registrable("google")            = "google", ""
func Registrable(name string) (label, suffix string) {
	spans := AppendSpans(nil, name)
	if len(spans) == 0 {
		return "", ""
	}
	n := SuffixLabels(name, spans)
	if n > 0 {
		suffix = name[spans[len(spans)-n].Start:spans[len(spans)-1].End]
	}
	sp := spans[len(spans)-n-1]
	return name[sp.Start:sp.End], suffix
}
