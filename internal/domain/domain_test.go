package domain

import (
	"reflect"
	"strings"
	"testing"
)

func spansToStrings(name string, spans []Span) []string {
	out := make([]string, len(spans))
	for i, sp := range spans {
		out[i] = name[sp.Start:sp.End]
	}
	return out
}

func TestAppendSpans(t *testing.T) {
	label63 := strings.Repeat("a", 63)
	cases := []struct {
		name string
		want []string
	}{
		{"", nil},
		{".", []string{""}},
		{"com", []string{"com"}},
		{"example.com", []string{"example", "com"}},
		{"example.com.", []string{"example", "com"}}, // trailing root dot
		{"www.example.co.uk", []string{"www", "example", "co", "uk"}},
		{"a..b", []string{"a", "", "b"}}, // interior empty label preserved
		{"a..", []string{"a", ""}},       // only ONE trailing dot is the root
		{"xn--80ak6aa92e.xn--p1ai", []string{"xn--80ak6aa92e", "xn--p1ai"}},
		{label63 + ".com", []string{label63, "com"}},
		{"xn--bcher-kva.mail.example.net", []string{"xn--bcher-kva", "mail", "example", "net"}},
	}
	for _, c := range cases {
		got := spansToStrings(c.name, AppendSpans(nil, c.name))
		if !reflect.DeepEqual(got, c.want) && !(len(got) == 0 && len(c.want) == 0) {
			t.Errorf("AppendSpans(%q) = %v, want %v", c.name, got, c.want)
		}
		// The []byte instantiation must agree with the string one.
		bgot := spansToStrings(c.name, AppendSpans(nil, []byte(c.name)))
		if !reflect.DeepEqual(got, bgot) {
			t.Errorf("AppendSpans([]byte %q) = %v diverges from string form %v", c.name, bgot, got)
		}
	}
}

// TestAppendSpansReuse: appending into a reused scratch slice must not
// let a previous name's spans leak into the trailing-root-dot logic.
func TestAppendSpansReuse(t *testing.T) {
	scratch := AppendSpans(nil, "a.b.c")
	got := spansToStrings(".", AppendSpans(scratch[:0], "."))
	if !reflect.DeepEqual(got, []string{""}) {
		t.Errorf("reused scratch: AppendSpans(\".\") = %v, want [\"\"]", got)
	}
	// Appending after existing entries keeps them intact.
	pre := AppendSpans(nil, "x.y")
	both := AppendSpans(pre, "q.")
	if len(both) != 3 {
		t.Errorf("append after existing entries: %d spans, want 3", len(both))
	}
}

func TestAppendSpansAllocFree(t *testing.T) {
	buf := make([]Span, 0, 8)
	name := []byte("www.xn--bcher-kva.co.uk")
	if n := testing.AllocsPerRun(200, func() {
		buf = AppendSpans(buf[:0], name)
	}); n != 0 {
		t.Errorf("AppendSpans allocates %.1f per call with warm scratch; want 0", n)
	}
}

func TestSuffixLabels(t *testing.T) {
	cases := []struct {
		name string
		want int
	}{
		{"label", 0},
		{"example.com", 1},
		{"example.net", 1},
		{"amazon.co.uk", 2},
		{"www.amazon.co.uk", 2},
		{"AMAZON.CO.UK", 2},            // case-insensitive
		{"co.uk", 1},                   // never swallows the whole name
		{"xn--80ak6aa92e.xn--p1ai", 1}, // ACE TLD is a single-label suffix
		{"example.uk", 1},              // uk itself, no second-level rule hit
		{"shop.example.com.au", 2},
		{"a.verylonglabel.uk", 1}, // second label not in the uk table
	}
	for _, c := range cases {
		spans := AppendSpans(nil, c.name)
		if got := SuffixLabels(c.name, spans); got != c.want {
			t.Errorf("SuffixLabels(%q) = %d, want %d", c.name, got, c.want)
		}
		if got := SuffixLabels([]byte(c.name), AppendSpans(nil, []byte(c.name))); got != c.want {
			t.Errorf("SuffixLabels([]byte %q) = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestRegistrable(t *testing.T) {
	cases := []struct {
		name, label, suffix string
	}{
		{"", "", ""},
		{".", "", ""},
		{"google", "google", ""},
		{"google.com", "google", "com"},
		{"google.com.", "google", "com"},
		{"amazon.co.uk", "amazon", "co.uk"},
		{"www.amazon.co.uk", "amazon", "co.uk"},
		{"www.xn--ggle-55da.com", "xn--ggle-55da", "com"},
		{"xn--80ak6aa92e.xn--p1ai", "xn--80ak6aa92e", "xn--p1ai"},
		{"co.uk", "co", "uk"}, // a name that IS a suffix still yields a label
		{"deep.sub.shop.example.com.au", "example", "com.au"},
		// The IDN sits in a non-final (subdomain) label; the registrable
		// label is still the one left of the suffix.
		{"xn--bcher-kva.mail.example.net", "example", "net"},
	}
	for _, c := range cases {
		label, suffix := Registrable(c.name)
		if label != c.label || suffix != c.suffix {
			t.Errorf("Registrable(%q) = (%q, %q), want (%q, %q)", c.name, label, suffix, c.label, c.suffix)
		}
	}
}

func TestSuffixAndLabels(t *testing.T) {
	if got := Suffix("amazon.co.uk"); got != "co.uk" {
		t.Errorf("Suffix = %q", got)
	}
	if got := Suffix("bare"); got != "" {
		t.Errorf("Suffix(bare) = %q", got)
	}
	if got := Labels("a.b.c."); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Errorf("Labels = %v", got)
	}
}
