package domain

import "repro/internal/punycode"

// multiSuffixes maps a final label to the second-level labels that,
// combined with it, form a two-label public suffix — the "co.uk" cut
// rule under which the third label from the right is the registrable
// one. The table is a curated embed of the stable ccTLD second-level
// registries most zone feeds cross (the full, churning public-suffix
// list is an external dataset; swapping it in changes only this file).
// Entries are lowercase; lookups fold ASCII case. Final-label keys
// must fit maxSuffixKeyLen (invariant-tested), so long ACE TLD keys
// (e.g. xn--90a3ac for .срб) can be added safely.
var multiSuffixes = map[string][]string{
	"ar": {"com", "gob", "net", "org"},
	"au": {"com", "edu", "gov", "id", "net", "org"},
	"br": {"com", "gov", "net", "nom", "org"},
	"cn": {"ac", "com", "edu", "gov", "net", "org"},
	"hk": {"com", "edu", "gov", "net", "org"},
	"id": {"ac", "co", "go", "net", "or"},
	"il": {"ac", "co", "gov", "muni", "net", "org"},
	"in": {"ac", "co", "edu", "gov", "net", "org"},
	"jp": {"ac", "ad", "co", "ed", "go", "lg", "ne", "or"},
	"kr": {"ac", "co", "go", "ne", "or", "re"},
	"mx": {"com", "edu", "gob", "net", "org"},
	"my": {"com", "edu", "gov", "net", "org"},
	"nz": {"ac", "co", "govt", "net", "org"},
	"pl": {"com", "edu", "gov", "net", "org"},
	"sg": {"com", "edu", "gov", "net", "org"},
	"th": {"ac", "co", "go", "net", "or"},
	"tr": {"av", "bel", "com", "edu", "gov", "net", "org"},
	"tw": {"club", "com", "edu", "gov", "net", "org"},
	"ua": {"com", "edu", "gov", "net", "org"},
	"uk": {"ac", "co", "gov", "ltd", "me", "net", "org", "plc", "sch"},
	"vn": {"ac", "com", "edu", "gov", "net", "org"},
	"za": {"ac", "co", "edu", "gov", "net", "org", "web"},
}

// maxSuffixKeyLen bounds the byte length of a multiSuffixes key (a
// final label). TwoLabelSuffix folds the probed label into a stack
// buffer of this size, so a longer key would compile yet silently
// never match — the invariant test asserts every table key fits.
const maxSuffixKeyLen = 24

// TwoLabelSuffix reports whether the labels of name at spans second
// and last form a known two-label public suffix ("co"+"uk").
// ASCII-case-insensitive, byte-wise: it runs on paths where the name
// may not have been folded yet. The final label is folded into a
// stack buffer for the map probe, so the test allocates nothing —
// callers (the detector's per-line match path) rely on that.
func TwoLabelSuffix[S punycode.ByteSeq](name S, second, last Span) bool {
	var buf [maxSuffixKeyLen]byte
	n := last.End - last.Start
	if n <= 0 || n > len(buf) {
		return false
	}
	for i := 0; i < n; i++ {
		c := name[last.Start+i]
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		buf[i] = c
	}
	slds, ok := multiSuffixes[string(buf[:n])]
	if !ok {
		return false
	}
	for _, sld := range slds {
		if equalFoldASCII(name, second, sld) {
			return true
		}
	}
	return false
}

// equalFoldASCII compares the span of name against want,
// ASCII-case-insensitively.
func equalFoldASCII[S punycode.ByteSeq](name S, sp Span, want string) bool {
	if sp.End-sp.Start != len(want) {
		return false
	}
	for i := 0; i < len(want); i++ {
		c := name[sp.Start+i]
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		if c != want[i] {
			return false
		}
	}
	return true
}
