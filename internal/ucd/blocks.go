// Package ucd provides the Unicode character database facilities ShamFinder
// depends on: named block ranges, script identification, and the RFC 5892
// (IDNA2008) derived-property computation that decides which code points are
// permitted in internationalized domain names.
//
// Script and general-category data come from the Go standard library's
// unicode tables, which ship the real Unicode Character Database. Block
// ranges are not exposed by the standard library, so the major allocated
// blocks are tabulated here.
package ucd

import "sort"

// Block is a contiguous, named range of Unicode code points.
type Block struct {
	Name string
	Lo   rune
	Hi   rune // inclusive
}

// blocks lists allocated Unicode blocks in ascending order of Lo.
// The table covers the Basic Multilingual Plane and the parts of the
// Supplementary Multilingual Plane relevant to IDNA; code points outside
// any listed block report "No_Block", matching UCD conventions.
var blocks = []Block{
	{"Basic Latin", 0x0000, 0x007F},
	{"Latin-1 Supplement", 0x0080, 0x00FF},
	{"Latin Extended-A", 0x0100, 0x017F},
	{"Latin Extended-B", 0x0180, 0x024F},
	{"IPA Extensions", 0x0250, 0x02AF},
	{"Spacing Modifier Letters", 0x02B0, 0x02FF},
	{"Combining Diacritical Marks", 0x0300, 0x036F},
	{"Greek and Coptic", 0x0370, 0x03FF},
	{"Cyrillic", 0x0400, 0x04FF},
	{"Cyrillic Supplement", 0x0500, 0x052F},
	{"Armenian", 0x0530, 0x058F},
	{"Hebrew", 0x0590, 0x05FF},
	{"Arabic", 0x0600, 0x06FF},
	{"Syriac", 0x0700, 0x074F},
	{"Arabic Supplement", 0x0750, 0x077F},
	{"Thaana", 0x0780, 0x07BF},
	{"NKo", 0x07C0, 0x07FF},
	{"Samaritan", 0x0800, 0x083F},
	{"Mandaic", 0x0840, 0x085F},
	{"Arabic Extended-A", 0x08A0, 0x08FF},
	{"Devanagari", 0x0900, 0x097F},
	{"Bengali", 0x0980, 0x09FF},
	{"Gurmukhi", 0x0A00, 0x0A7F},
	{"Gujarati", 0x0A80, 0x0AFF},
	{"Oriya", 0x0B00, 0x0B7F},
	{"Tamil", 0x0B80, 0x0BFF},
	{"Telugu", 0x0C00, 0x0C7F},
	{"Kannada", 0x0C80, 0x0CFF},
	{"Malayalam", 0x0D00, 0x0D7F},
	{"Sinhala", 0x0D80, 0x0DFF},
	{"Thai", 0x0E00, 0x0E7F},
	{"Lao", 0x0E80, 0x0EFF},
	{"Tibetan", 0x0F00, 0x0FFF},
	{"Myanmar", 0x1000, 0x109F},
	{"Georgian", 0x10A0, 0x10FF},
	{"Hangul Jamo", 0x1100, 0x11FF},
	{"Ethiopic", 0x1200, 0x137F},
	{"Ethiopic Supplement", 0x1380, 0x139F},
	{"Cherokee", 0x13A0, 0x13FF},
	{"Unified Canadian Aboriginal Syllabics", 0x1400, 0x167F},
	{"Ogham", 0x1680, 0x169F},
	{"Runic", 0x16A0, 0x16FF},
	{"Tagalog", 0x1700, 0x171F},
	{"Hanunoo", 0x1720, 0x173F},
	{"Buhid", 0x1740, 0x175F},
	{"Tagbanwa", 0x1760, 0x177F},
	{"Khmer", 0x1780, 0x17FF},
	{"Mongolian", 0x1800, 0x18AF},
	{"Unified Canadian Aboriginal Syllabics Extended", 0x18B0, 0x18FF},
	{"Limbu", 0x1900, 0x194F},
	{"Tai Le", 0x1950, 0x197F},
	{"New Tai Lue", 0x1980, 0x19DF},
	{"Khmer Symbols", 0x19E0, 0x19FF},
	{"Buginese", 0x1A00, 0x1A1F},
	{"Tai Tham", 0x1A20, 0x1AAF},
	{"Combining Diacritical Marks Extended", 0x1AB0, 0x1AFF},
	{"Balinese", 0x1B00, 0x1B7F},
	{"Sundanese", 0x1B80, 0x1BBF},
	{"Batak", 0x1BC0, 0x1BFF},
	{"Lepcha", 0x1C00, 0x1C4F},
	{"Ol Chiki", 0x1C50, 0x1C7F},
	{"Cyrillic Extended-C", 0x1C80, 0x1C8F},
	{"Sundanese Supplement", 0x1CC0, 0x1CCF},
	{"Vedic Extensions", 0x1CD0, 0x1CFF},
	{"Phonetic Extensions", 0x1D00, 0x1D7F},
	{"Phonetic Extensions Supplement", 0x1D80, 0x1DBF},
	{"Combining Diacritical Marks Supplement", 0x1DC0, 0x1DFF},
	{"Latin Extended Additional", 0x1E00, 0x1EFF},
	{"Greek Extended", 0x1F00, 0x1FFF},
	{"General Punctuation", 0x2000, 0x206F},
	{"Superscripts and Subscripts", 0x2070, 0x209F},
	{"Currency Symbols", 0x20A0, 0x20CF},
	{"Combining Diacritical Marks for Symbols", 0x20D0, 0x20FF},
	{"Letterlike Symbols", 0x2100, 0x214F},
	{"Number Forms", 0x2150, 0x218F},
	{"Arrows", 0x2190, 0x21FF},
	{"Mathematical Operators", 0x2200, 0x22FF},
	{"Miscellaneous Technical", 0x2300, 0x23FF},
	{"Control Pictures", 0x2400, 0x243F},
	{"Optical Character Recognition", 0x2440, 0x245F},
	{"Enclosed Alphanumerics", 0x2460, 0x24FF},
	{"Box Drawing", 0x2500, 0x257F},
	{"Block Elements", 0x2580, 0x259F},
	{"Geometric Shapes", 0x25A0, 0x25FF},
	{"Miscellaneous Symbols", 0x2600, 0x26FF},
	{"Dingbats", 0x2700, 0x27BF},
	{"Miscellaneous Mathematical Symbols-A", 0x27C0, 0x27EF},
	{"Supplemental Arrows-A", 0x27F0, 0x27FF},
	{"Braille Patterns", 0x2800, 0x28FF},
	{"Supplemental Arrows-B", 0x2900, 0x297F},
	{"Miscellaneous Mathematical Symbols-B", 0x2980, 0x29FF},
	{"Supplemental Mathematical Operators", 0x2A00, 0x2AFF},
	{"Miscellaneous Symbols and Arrows", 0x2B00, 0x2BFF},
	{"Glagolitic", 0x2C00, 0x2C5F},
	{"Latin Extended-C", 0x2C60, 0x2C7F},
	{"Coptic", 0x2C80, 0x2CFF},
	{"Georgian Supplement", 0x2D00, 0x2D2F},
	{"Tifinagh", 0x2D30, 0x2D7F},
	{"Ethiopic Extended", 0x2D80, 0x2DDF},
	{"Cyrillic Extended-A", 0x2DE0, 0x2DFF},
	{"Supplemental Punctuation", 0x2E00, 0x2E7F},
	{"CJK Radicals Supplement", 0x2E80, 0x2EFF},
	{"Kangxi Radicals", 0x2F00, 0x2FDF},
	{"Ideographic Description Characters", 0x2FF0, 0x2FFF},
	{"CJK Symbols and Punctuation", 0x3000, 0x303F},
	{"Hiragana", 0x3040, 0x309F},
	{"Katakana", 0x30A0, 0x30FF},
	{"Bopomofo", 0x3100, 0x312F},
	{"Hangul Compatibility Jamo", 0x3130, 0x318F},
	{"Kanbun", 0x3190, 0x319F},
	{"Bopomofo Extended", 0x31A0, 0x31BF},
	{"CJK Strokes", 0x31C0, 0x31EF},
	{"Katakana Phonetic Extensions", 0x31F0, 0x31FF},
	{"Enclosed CJK Letters and Months", 0x3200, 0x32FF},
	{"CJK Compatibility", 0x3300, 0x33FF},
	{"CJK Unified Ideographs Extension A", 0x3400, 0x4DBF},
	{"Yijing Hexagram Symbols", 0x4DC0, 0x4DFF},
	{"CJK Unified Ideographs", 0x4E00, 0x9FFF},
	{"Yi Syllables", 0xA000, 0xA48F},
	{"Yi Radicals", 0xA490, 0xA4CF},
	{"Lisu", 0xA4D0, 0xA4FF},
	{"Vai", 0xA500, 0xA63F},
	{"Cyrillic Extended-B", 0xA640, 0xA69F},
	{"Bamum", 0xA6A0, 0xA6FF},
	{"Modifier Tone Letters", 0xA700, 0xA71F},
	{"Latin Extended-D", 0xA720, 0xA7FF},
	{"Syloti Nagri", 0xA800, 0xA82F},
	{"Common Indic Number Forms", 0xA830, 0xA83F},
	{"Phags-pa", 0xA840, 0xA87F},
	{"Saurashtra", 0xA880, 0xA8DF},
	{"Devanagari Extended", 0xA8E0, 0xA8FF},
	{"Kayah Li", 0xA900, 0xA92F},
	{"Rejang", 0xA930, 0xA95F},
	{"Hangul Jamo Extended-A", 0xA960, 0xA97F},
	{"Javanese", 0xA980, 0xA9DF},
	{"Myanmar Extended-B", 0xA9E0, 0xA9FF},
	{"Cham", 0xAA00, 0xAA5F},
	{"Myanmar Extended-A", 0xAA60, 0xAA7F},
	{"Tai Viet", 0xAA80, 0xAADF},
	{"Meetei Mayek Extensions", 0xAAE0, 0xAAFF},
	{"Ethiopic Extended-A", 0xAB00, 0xAB2F},
	{"Latin Extended-E", 0xAB30, 0xAB6F},
	{"Cherokee Supplement", 0xAB70, 0xABBF},
	{"Meetei Mayek", 0xABC0, 0xABFF},
	{"Hangul Syllables", 0xAC00, 0xD7AF},
	{"Hangul Jamo Extended-B", 0xD7B0, 0xD7FF},
	{"Private Use Area", 0xE000, 0xF8FF},
	{"CJK Compatibility Ideographs", 0xF900, 0xFAFF},
	{"Alphabetic Presentation Forms", 0xFB00, 0xFB4F},
	{"Arabic Presentation Forms-A", 0xFB50, 0xFDFF},
	{"Variation Selectors", 0xFE00, 0xFE0F},
	{"Vertical Forms", 0xFE10, 0xFE1F},
	{"Combining Half Marks", 0xFE20, 0xFE2F},
	{"CJK Compatibility Forms", 0xFE30, 0xFE4F},
	{"Small Form Variants", 0xFE50, 0xFE6F},
	{"Arabic Presentation Forms-B", 0xFE70, 0xFEFF},
	{"Halfwidth and Fullwidth Forms", 0xFF00, 0xFFEF},
	{"Specials", 0xFFF0, 0xFFFF},
	{"Linear B Syllabary", 0x10000, 0x1007F},
	{"Linear B Ideograms", 0x10080, 0x100FF},
	{"Aegean Numbers", 0x10100, 0x1013F},
	{"Ancient Greek Numbers", 0x10140, 0x1018F},
	{"Phaistos Disc", 0x101D0, 0x101FF},
	{"Lycian", 0x10280, 0x1029F},
	{"Carian", 0x102A0, 0x102DF},
	{"Old Italic", 0x10300, 0x1032F},
	{"Gothic", 0x10330, 0x1034F},
	{"Old Permic", 0x10350, 0x1037F},
	{"Ugaritic", 0x10380, 0x1039F},
	{"Old Persian", 0x103A0, 0x103DF},
	{"Deseret", 0x10400, 0x1044F},
	{"Shavian", 0x10450, 0x1047F},
	{"Osmanya", 0x10480, 0x104AF},
	{"Osage", 0x104B0, 0x104FF},
	{"Elbasan", 0x10500, 0x1052F},
	{"Caucasian Albanian", 0x10530, 0x1056F},
	{"Warang Citi", 0x118A0, 0x118FF},
	{"Adlam", 0x1E900, 0x1E95F},
	{"Mathematical Alphanumeric Symbols", 0x1D400, 0x1D7FF},
	{"Emoticons", 0x1F600, 0x1F64F},
}

// NoBlock is the name reported for code points outside every tabulated block.
const NoBlock = "No_Block"

func init() {
	sort.Slice(blocks, func(i, j int) bool { return blocks[i].Lo < blocks[j].Lo })
}

// BlockOf returns the named block containing r, or NoBlock when r is
// outside every tabulated block.
func BlockOf(r rune) string {
	b := blockRange(r)
	if b == nil {
		return NoBlock
	}
	return b.Name
}

// blockRange binary-searches the block table.
func blockRange(r rune) *Block {
	lo, hi := 0, len(blocks)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case r < blocks[mid].Lo:
			hi = mid
		case r > blocks[mid].Hi:
			lo = mid + 1
		default:
			return &blocks[mid]
		}
	}
	return nil
}

// Blocks returns a copy of the block table in ascending code-point order.
func Blocks() []Block {
	out := make([]Block, len(blocks))
	copy(out, blocks)
	return out
}

// BlockByName returns the block with the given name and whether it exists.
func BlockByName(name string) (Block, bool) {
	for _, b := range blocks {
		if b.Name == name {
			return b, true
		}
	}
	return Block{}, false
}
