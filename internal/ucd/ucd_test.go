package ucd

import (
	"testing"
	"testing/quick"
	"unicode"
)

func TestBlockOfKnownCodePoints(t *testing.T) {
	cases := []struct {
		r    rune
		want string
	}{
		{'a', "Basic Latin"},
		{'é', "Latin-1 Supplement"},
		{0x0131, "Latin Extended-A"}, // dotless i
		{0x0430, "Cyrillic"},         // а
		{0x03B1, "Greek and Coptic"}, // α
		{0x0585, "Armenian"},         // օ
		{0x4E00, "CJK Unified Ideographs"},
		{0x30A8, "Katakana"}, // エ
		{0xAC00, "Hangul Syllables"},
		{0x0B32, "Oriya"},
		{0x0E97, "Lao"},
		{0xA500, "Vai"},
		{0x1400, "Unified Canadian Aboriginal Syllabics"},
		{0x0300, "Combining Diacritical Marks"},
		{0x118D8, "Warang Citi"},
		{0x1F600, "Emoticons"},
	}
	for _, c := range cases {
		if got := BlockOf(c.r); got != c.want {
			t.Errorf("BlockOf(%#U) = %q, want %q", c.r, got, c.want)
		}
	}
}

func TestBlockOfOutsideAnyBlock(t *testing.T) {
	// A code point in an unallocated gap.
	if got := BlockOf(0x0860); got == NoBlock {
		// 0x0860 belongs to Syriac Supplement, which we do not tabulate —
		// either answer is acceptable as long as it does not panic, but the
		// gap below must report NoBlock.
		_ = got
	}
	if got := BlockOf(0x2FE0); got != NoBlock {
		t.Errorf("BlockOf(0x2FE0) = %q, want %q", got, NoBlock)
	}
}

func TestBlocksAreSortedAndDisjoint(t *testing.T) {
	bs := Blocks()
	for i := 1; i < len(bs); i++ {
		if bs[i].Lo <= bs[i-1].Hi {
			t.Fatalf("blocks %q and %q overlap or are unsorted", bs[i-1].Name, bs[i].Name)
		}
	}
	for _, b := range bs {
		if b.Lo > b.Hi {
			t.Errorf("block %q has Lo > Hi", b.Name)
		}
		if b.Lo&0xF != 0 {
			t.Errorf("block %q does not start on a 16-boundary: %#x", b.Name, b.Lo)
		}
	}
}

func TestBlockByName(t *testing.T) {
	b, ok := BlockByName("Hangul Syllables")
	if !ok || b.Lo != 0xAC00 || b.Hi != 0xD7AF {
		t.Fatalf("BlockByName(Hangul Syllables) = %+v, %v", b, ok)
	}
	if _, ok := BlockByName("Klingon"); ok {
		t.Fatal("BlockByName(Klingon) unexpectedly found")
	}
}

func TestScriptOf(t *testing.T) {
	cases := []struct {
		r    rune
		want string
	}{
		{'a', "Latin"},
		{0x0430, "Cyrillic"},
		{0x03B1, "Greek"},
		{0x4E00, "Han"},
		{0x30A8, "Katakana"},
		{0x3042, "Hiragana"},
		{0xAC00, "Hangul"},
		{0x05D0, "Hebrew"},
		{0x0627, "Arabic"},
		{'1', "Common"},
		{0x0300, "Inherited"},
	}
	for _, c := range cases {
		if got := ScriptOf(c.r); got != c.want {
			t.Errorf("ScriptOf(%#U) = %q, want %q", c.r, got, c.want)
		}
	}
}

func TestIsSingleScript(t *testing.T) {
	cases := []struct {
		s    string
		want bool
	}{
		{"google", true},
		{"gооgle", false}, // Cyrillic о mixed into Latin
		{"工業大学", true},    // 工業大学 all Han
		{"エ業大学", true},    // エ業大学 Katakana+Han: CJK class
		{"abc123", true},
		{"café", true},
		{"абв", true},  // pure Cyrillic
		{"abα", false}, // Latin + Greek
		{"", true},
		{"123-", true}, // only Common
	}
	for _, c := range cases {
		if got := IsSingleScript(c.s); got != c.want {
			t.Errorf("IsSingleScript(%q) = %v, want %v", c.s, got, c.want)
		}
	}
}

func TestDerivedPropertyLDH(t *testing.T) {
	for r := 'a'; r <= 'z'; r++ {
		if DerivedProperty(r) != PValid {
			t.Errorf("%#U should be PVALID", r)
		}
	}
	for r := '0'; r <= '9'; r++ {
		if DerivedProperty(r) != PValid {
			t.Errorf("%#U should be PVALID", r)
		}
	}
	if DerivedProperty('-') != PValid {
		t.Error("hyphen should be PVALID")
	}
	for r := 'A'; r <= 'Z'; r++ {
		if DerivedProperty(r) != Disallowed {
			t.Errorf("%#U should be DISALLOWED", r)
		}
	}
	for _, r := range []rune{'.', '_', ' ', '!', '/', '\x00'} {
		if DerivedProperty(r) != Disallowed {
			t.Errorf("%#U should be DISALLOWED", r)
		}
	}
}

func TestDerivedPropertyExceptions(t *testing.T) {
	cases := []struct {
		r    rune
		want Property
	}{
		{0x00DF, PValid},     // ß
		{0x03C2, PValid},     // ς
		{0x3007, PValid},     // 〇
		{0x00B7, ContextO},   // middle dot
		{0x200C, ContextJ},   // ZWNJ
		{0x200D, ContextJ},   // ZWJ
		{0x0640, Disallowed}, // Arabic tatweel
		{0x30FB, ContextO},   // katakana middle dot
	}
	for _, c := range cases {
		if got := DerivedProperty(c.r); got != c.want {
			t.Errorf("DerivedProperty(%#U) = %v, want %v", c.r, got, c.want)
		}
	}
}

func TestDerivedPropertyScripts(t *testing.T) {
	pvalid := []rune{
		0x00E9, // é
		0x0430, // Cyrillic а
		0x03B1, // Greek α
		0x4E00, // CJK 一
		0x3042, // Hiragana あ
		0x30A8, // Katakana エ
		0xAC00, // Hangul syllable 가
		0x05D0, // Hebrew alef
		0x0627, // Arabic alef
		0x0E01, // Thai ko kai
		0x0ED0, // Lao digit zero... actually Nd so PVALID
	}
	for _, r := range pvalid {
		if got := DerivedProperty(r); got != PValid {
			t.Errorf("DerivedProperty(%#U) = %v, want PVALID", r, got)
		}
	}
	disallowed := []rune{
		0x1100,  // conjoining Hangul jamo (rule L)
		0xFF41,  // fullwidth a (compatibility)
		0x2160,  // Roman numeral one (Number Forms)
		0x00A9,  // © symbol
		0x2028,  // line separator
		0xFE00,  // variation selector
		0x1F600, // emoticon
	}
	for _, r := range disallowed {
		if got := DerivedProperty(r); got == PValid {
			t.Errorf("DerivedProperty(%#U) = PVALID, want non-PVALID", r)
		}
	}
}

func TestDerivedPropertyUnassigned(t *testing.T) {
	if got := DerivedProperty(0x05FF); got != Unassigned {
		t.Errorf("DerivedProperty(U+05FF) = %v, want UNASSIGNED", got)
	}
}

func TestPropertyString(t *testing.T) {
	pairs := map[Property]string{
		PValid:     "PVALID",
		ContextJ:   "CONTEXTJ",
		ContextO:   "CONTEXTO",
		Disallowed: "DISALLOWED",
		Unassigned: "UNASSIGNED",
	}
	for p, want := range pairs {
		if p.String() != want {
			t.Errorf("%d.String() = %q, want %q", p, p.String(), want)
		}
	}
}

func TestIDNASetSizeAndMembers(t *testing.T) {
	set := IDNASet()
	// Unicode 12 had 123,006 PVALID code points; the stdlib ships a newer
	// UCD so the count grows, but it must stay within the same order.
	if n := set.Len(); n < 100000 || n > 160000 {
		t.Fatalf("IDNASet size = %d, want ~123k-150k", n)
	}
	for _, r := range []rune{'a', 'z', '0', '-', 0x00E9, 0x0430, 0x4E00, 0xAC00} {
		if !set.Contains(r) {
			t.Errorf("IDNASet should contain %#U", r)
		}
	}
	for _, r := range []rune{'A', '.', 0x1100, 0xFF41} {
		if set.Contains(r) {
			t.Errorf("IDNASet should not contain %#U", r)
		}
	}
	// CJK and Hangul dominate the set, as in the paper.
	cjk, hangul := 0, 0
	for r := rune(0x4E00); r <= 0x9FFF; r++ {
		if set.Contains(r) {
			cjk++
		}
	}
	for r := rune(0xAC00); r <= 0xD7A3; r++ {
		if set.Contains(r) {
			hangul++
		}
	}
	if cjk < 20000 {
		t.Errorf("CJK PVALID count = %d, want >= 20000", cjk)
	}
	if hangul != 11172 {
		t.Errorf("Hangul syllable PVALID count = %d, want 11172", hangul)
	}
}

func TestIDNASetIsCached(t *testing.T) {
	if IDNASet() != IDNASet() {
		t.Fatal("IDNASet should return the same cached set")
	}
}

func TestRuneSetBasics(t *testing.T) {
	s := NewRuneSet('a', 'b', 'c')
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	s.Add('a') // duplicate
	if s.Len() != 3 {
		t.Fatalf("Len after dup add = %d, want 3", s.Len())
	}
	s.Remove('b')
	if s.Len() != 2 || s.Contains('b') {
		t.Fatalf("Remove failed: len=%d contains(b)=%v", s.Len(), s.Contains('b'))
	}
	s.Remove('b') // removing absent member is a no-op
	if s.Len() != 2 {
		t.Fatalf("Len after double remove = %d, want 2", s.Len())
	}
	got := s.Runes()
	if len(got) != 2 || got[0] != 'a' || got[1] != 'c' {
		t.Fatalf("Runes() = %v", got)
	}
}

func TestRuneSetOps(t *testing.T) {
	a := NewRuneSet('a', 'b', 'c', 0x4E00)
	b := NewRuneSet('b', 'c', 'd')
	inter := a.Intersect(b)
	if inter.Len() != 2 || !inter.Contains('b') || !inter.Contains('c') {
		t.Fatalf("Intersect = %v", inter.Runes())
	}
	uni := a.Union(b)
	if uni.Len() != 5 {
		t.Fatalf("Union len = %d, want 5", uni.Len())
	}
	diff := a.Diff(b)
	if diff.Len() != 2 || !diff.Contains('a') || !diff.Contains(0x4E00) {
		t.Fatalf("Diff = %v", diff.Runes())
	}
	cl := a.Clone()
	cl.Add('z')
	if a.Contains('z') {
		t.Fatal("Clone is not independent")
	}
}

func TestRuneSetNilSafety(t *testing.T) {
	var s *RuneSet
	if s.Contains('a') {
		t.Fatal("nil set should contain nothing")
	}
	if s.Len() != 0 {
		t.Fatal("nil set should have zero length")
	}
	if got := s.Runes(); got != nil {
		t.Fatalf("nil set Runes = %v", got)
	}
	u := s.Union(NewRuneSet('a'))
	if u.Len() != 1 {
		t.Fatalf("nil union = %v", u.Runes())
	}
}

func TestRuneSetRangeAdd(t *testing.T) {
	s := NewRuneSet()
	s.AddRange('a', 'e')
	if s.Len() != 5 {
		t.Fatalf("AddRange len = %d, want 5", s.Len())
	}
}

// Property-based: union is commutative and contains both operands;
// intersection is a subset of both.
func TestRuneSetProperties(t *testing.T) {
	f := func(xs, ys []uint16) bool {
		a, b := NewRuneSet(), NewRuneSet()
		for _, x := range xs {
			a.Add(rune(x))
		}
		for _, y := range ys {
			b.Add(rune(y))
		}
		u1, u2 := a.Union(b), b.Union(a)
		if u1.Len() != u2.Len() {
			return false
		}
		for _, r := range a.Runes() {
			if !u1.Contains(r) {
				return false
			}
		}
		inter := a.Intersect(b)
		for _, r := range inter.Runes() {
			if !a.Contains(r) || !b.Contains(r) {
				return false
			}
		}
		// |A| = |A∩B| + |A∖B|
		return a.Len() == inter.Len()+a.Diff(b).Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// The derivation must agree with the stdlib category data on basic letters.
func TestDerivedPropertyAgainstCategories(t *testing.T) {
	f := func(x uint16) bool {
		r := rune(x)
		if r < 0x80 || !assigned(r) {
			return true // covered by dedicated tests
		}
		p := DerivedProperty(r)
		if p == PValid {
			// Every PVALID non-ASCII code point must be a letter, mark or digit.
			return unicode.Is(unicode.L, r) || unicode.Is(unicode.M, r) || unicode.Is(unicode.Nd, r)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
