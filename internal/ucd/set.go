package ucd

import "sort"

// RuneSet is a set of Unicode code points backed by a per-64-codepoint
// bitmap. It is the working representation for the paper's character sets
// (IDNA, UC, SimChar and their intersections/unions, Figures 3 and 4).
type RuneSet struct {
	words map[rune]uint64 // key: r >> 6, bit: r & 63
	n     int
}

// NewRuneSet returns an empty set, optionally seeded with runes.
func NewRuneSet(runes ...rune) *RuneSet {
	s := &RuneSet{words: make(map[rune]uint64)}
	for _, r := range runes {
		s.Add(r)
	}
	return s
}

// Add inserts r into the set.
func (s *RuneSet) Add(r rune) {
	w, bit := r>>6, uint64(1)<<uint(r&63)
	old := s.words[w]
	if old&bit == 0 {
		s.words[w] = old | bit
		s.n++
	}
}

// AddRange inserts every code point in [lo, hi] (inclusive).
func (s *RuneSet) AddRange(lo, hi rune) {
	for r := lo; r <= hi; r++ {
		s.Add(r)
	}
}

// Remove deletes r from the set if present.
func (s *RuneSet) Remove(r rune) {
	w, bit := r>>6, uint64(1)<<uint(r&63)
	old, ok := s.words[w]
	if !ok || old&bit == 0 {
		return
	}
	old &^= bit
	if old == 0 {
		delete(s.words, w)
	} else {
		s.words[w] = old
	}
	s.n--
}

// Contains reports whether r is in the set.
func (s *RuneSet) Contains(r rune) bool {
	if s == nil {
		return false
	}
	return s.words[r>>6]&(uint64(1)<<uint(r&63)) != 0
}

// Len returns the number of code points in the set.
func (s *RuneSet) Len() int {
	if s == nil {
		return 0
	}
	return s.n
}

// Runes returns the members in ascending order.
func (s *RuneSet) Runes() []rune {
	if s == nil {
		return nil
	}
	keys := make([]rune, 0, len(s.words))
	for w := range s.words {
		keys = append(keys, w)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	out := make([]rune, 0, s.n)
	for _, w := range keys {
		bits := s.words[w]
		for bits != 0 {
			b := bits & (-bits)
			out = append(out, w<<6|rune(trailingZeros64(bits)))
			bits ^= b
		}
	}
	return out
}

func trailingZeros64(x uint64) int {
	if x == 0 {
		return 64
	}
	n := 0
	for x&1 == 0 {
		x >>= 1
		n++
	}
	return n
}

// Intersect returns a new set containing the members present in both sets.
func (s *RuneSet) Intersect(t *RuneSet) *RuneSet {
	out := NewRuneSet()
	if s == nil || t == nil {
		return out
	}
	small, large := s, t
	if large.Len() < small.Len() {
		small, large = large, small
	}
	for w, bits := range small.words {
		if both := bits & large.words[w]; both != 0 {
			out.words[w] = both
			out.n += popcount64(both)
		}
	}
	return out
}

// Union returns a new set containing members present in either set.
func (s *RuneSet) Union(t *RuneSet) *RuneSet {
	out := NewRuneSet()
	for _, src := range []*RuneSet{s, t} {
		if src == nil {
			continue
		}
		for w, bits := range src.words {
			old := out.words[w]
			merged := old | bits
			out.n += popcount64(merged) - popcount64(old)
			out.words[w] = merged
		}
	}
	return out
}

// Diff returns a new set of members in s that are not in t.
func (s *RuneSet) Diff(t *RuneSet) *RuneSet {
	out := NewRuneSet()
	if s == nil {
		return out
	}
	for w, bits := range s.words {
		var tb uint64
		if t != nil {
			tb = t.words[w]
		}
		if rem := bits &^ tb; rem != 0 {
			out.words[w] = rem
			out.n += popcount64(rem)
		}
	}
	return out
}

// Clone returns an independent copy of the set.
func (s *RuneSet) Clone() *RuneSet {
	out := NewRuneSet()
	if s == nil {
		return out
	}
	for w, bits := range s.words {
		out.words[w] = bits
	}
	out.n = s.n
	return out
}

func popcount64(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}
