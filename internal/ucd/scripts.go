package ucd

import "unicode"

// scriptOrder lists the scripts we probe, most common first, so ScriptOf
// terminates quickly for the hot paths (Latin, CJK, Cyrillic).
var scriptOrder = []string{
	"Latin", "Han", "Hangul", "Hiragana", "Katakana", "Cyrillic", "Greek",
	"Arabic", "Hebrew", "Armenian", "Georgian", "Thai", "Lao", "Devanagari",
	"Bengali", "Tamil", "Telugu", "Kannada", "Malayalam", "Oriya", "Gurmukhi",
	"Gujarati", "Sinhala", "Myanmar", "Khmer", "Ethiopic", "Cherokee",
	"Canadian_Aboriginal", "Vai", "Tifinagh", "Mongolian", "Tibetan", "Yi",
	"Syriac", "Thaana", "Nko", "Common", "Inherited",
}

// ScriptOf returns the Unicode script property value of r (e.g. "Latin",
// "Cyrillic", "Han"). Code points not covered by any known script table
// report "Unknown".
func ScriptOf(r rune) string {
	for _, name := range scriptOrder {
		if t, ok := unicode.Scripts[name]; ok && unicode.Is(t, r) {
			return name
		}
	}
	// Fall back to the full table for rarely used scripts.
	for name, t := range unicode.Scripts {
		if unicode.Is(t, r) {
			return name
		}
	}
	return "Unknown"
}

// IsSingleScript reports whether every letter in s belongs to the same
// script, treating Common/Inherited code points (digits, hyphen, combining
// marks) as compatible with any script. Mixed-script labels are what modern
// browsers fall back to Punycode for (Section 2.2 of the paper).
func IsSingleScript(s string) bool {
	base := ""
	for _, r := range s {
		sc := ScriptOf(r)
		if sc == "Common" || sc == "Inherited" {
			continue
		}
		// Han, Hiragana and Katakana legitimately mix in Japanese text;
		// browsers treat the CJK scripts as one confusability class.
		if isCJKScript(sc) {
			sc = "CJK"
		}
		if base == "" {
			base = sc
			continue
		}
		if sc != base {
			return false
		}
	}
	return true
}

func isCJKScript(sc string) bool {
	switch sc {
	case "Han", "Hiragana", "Katakana", "Hangul", "Bopomofo":
		return true
	}
	return false
}
