package ucd

import (
	"sync"
	"unicode"
)

// Property is the IDNA2008 derived property of a code point (RFC 5892
// section 2). Only PVALID code points may appear freely in IDN labels;
// CONTEXTJ/CONTEXTO require contextual rules to pass.
type Property uint8

const (
	Unassigned Property = iota
	Disallowed
	PValid
	ContextJ
	ContextO
)

// String returns the RFC 5892 spelling of the property.
func (p Property) String() string {
	switch p {
	case PValid:
		return "PVALID"
	case ContextJ:
		return "CONTEXTJ"
	case ContextO:
		return "CONTEXTO"
	case Disallowed:
		return "DISALLOWED"
	default:
		return "UNASSIGNED"
	}
}

// exceptions is the RFC 5892 section 2.6 exception table (rule F).
var exceptions = map[rune]Property{
	0x00DF: PValid,   // LATIN SMALL LETTER SHARP S
	0x03C2: PValid,   // GREEK SMALL LETTER FINAL SIGMA
	0x06FD: PValid,   // ARABIC SIGN SINDHI AMPERSAND
	0x06FE: PValid,   // ARABIC SIGN SINDHI POSTPOSITION MEN
	0x0F0B: PValid,   // TIBETAN MARK INTERSYLLABIC TSHEG
	0x3007: PValid,   // IDEOGRAPHIC NUMBER ZERO
	0x00B7: ContextO, // MIDDLE DOT
	0x0375: ContextO, // GREEK LOWER NUMERAL SIGN
	0x05F3: ContextO, // HEBREW PUNCTUATION GERESH
	0x05F4: ContextO, // HEBREW PUNCTUATION GERSHAYIM
	0x30FB: ContextO, // KATAKANA MIDDLE DOT
	0x0660: ContextO, // ARABIC-INDIC DIGIT ZERO..NINE
	0x0661: ContextO,
	0x0662: ContextO,
	0x0663: ContextO,
	0x0664: ContextO,
	0x0665: ContextO,
	0x0666: ContextO,
	0x0667: ContextO,
	0x0668: ContextO,
	0x0669: ContextO,
	0x06F0: ContextO, // EXTENDED ARABIC-INDIC DIGIT ZERO..NINE
	0x06F1: ContextO,
	0x06F2: ContextO,
	0x06F3: ContextO,
	0x06F4: ContextO,
	0x06F5: ContextO,
	0x06F6: ContextO,
	0x06F7: ContextO,
	0x06F8: ContextO,
	0x06F9: ContextO,
	0x200C: ContextJ, // ZERO WIDTH NON-JOINER
	0x200D: ContextJ, // ZERO WIDTH JOINER
	0x0640: Disallowed,
	0x07FA: Disallowed,
	0x302E: Disallowed,
	0x302F: Disallowed,
	0x3031: Disallowed,
	0x3032: Disallowed,
	0x3033: Disallowed,
	0x3034: Disallowed,
	0x3035: Disallowed,
	0x303B: Disallowed,
}

// unstableBlocks approximates RFC 5892 rule B (NFKC/case-fold instability):
// compatibility-decomposable blocks whose members normalize away, which the
// real derivation marks DISALLOWED. Listing the blocks avoids carrying the
// full normalization tables while matching the real outcome for the blocks
// that matter to homograph analysis (fullwidth forms, presentation forms,
// enclosed and mathematical alphanumerics).
var unstableBlocks = map[string]bool{
	"Halfwidth and Fullwidth Forms":           true,
	"Alphabetic Presentation Forms":           true,
	"Arabic Presentation Forms-A":             true,
	"Arabic Presentation Forms-B":             true,
	"Enclosed Alphanumerics":                  true,
	"Enclosed CJK Letters and Months":         true,
	"CJK Compatibility":                       true,
	"CJK Compatibility Ideographs":            true,
	"CJK Compatibility Forms":                 true,
	"Small Form Variants":                     true,
	"Vertical Forms":                          true,
	"Letterlike Symbols":                      true,
	"Number Forms":                            true,
	"Mathematical Alphanumeric Symbols":       true,
	"Kangxi Radicals":                         true,
	"CJK Radicals Supplement":                 true,
	"Superscripts and Subscripts":             true,
	"Phonetic Extensions":                     true,
	"Phonetic Extensions Supplement":          true,
	"Spacing Modifier Letters":                false, // modifier letters are PVALID (Lm)
	"Hangul Compatibility Jamo":               true,
	"Katakana Phonetic Extensions":            false,
	"Ideographic Description Characters":      true,
	"Combining Diacritical Marks for Symbols": true,
}

// DerivedProperty computes the RFC 5892 derived property of r using the
// rule order of section 3: exceptions, unassigned, LDH, ignorables,
// ignorable blocks, old Hangul jamo, instability, then letters/digits.
func DerivedProperty(r rune) Property {
	if p, ok := exceptions[r]; ok {
		return p
	}
	if r > unicode.MaxRune || isNoncharacter(r) {
		return Disallowed
	}
	if !assigned(r) {
		return Unassigned
	}
	// Rule I: LDH — ASCII lowercase letters, digits, hyphen.
	if r == '-' || (r >= '0' && r <= '9') || (r >= 'a' && r <= 'z') {
		return PValid
	}
	if r < 0x80 {
		// Remaining ASCII (uppercase, punctuation, controls) is disallowed
		// at the IDNA layer; uppercase is case-folded before lookup.
		return Disallowed
	}
	// Rule J: ignorable properties.
	if unicode.IsSpace(r) || unicode.Is(unicode.Cf, r) || unicode.Is(unicode.Cs, r) ||
		unicode.Is(unicode.Co, r) || unicode.Is(unicode.Cc, r) {
		return Disallowed
	}
	if r >= 0xFE00 && r <= 0xFE0F { // variation selectors (default ignorable)
		return Disallowed
	}
	// Rule L: old (conjoining) Hangul jamo.
	if (r >= 0x1100 && r <= 0x11FF) || (r >= 0xA960 && r <= 0xA97F) || (r >= 0xD7B0 && r <= 0xD7FF) {
		return Disallowed
	}
	// Rule B approximation: compatibility blocks normalize away.
	if unstableBlocks[BlockOf(r)] {
		return Disallowed
	}
	// Rule A: letters and digits.
	if unicode.Is(unicode.Ll, r) || unicode.Is(unicode.Lo, r) || unicode.Is(unicode.Lm, r) ||
		unicode.Is(unicode.Mn, r) || unicode.Is(unicode.Mc, r) || unicode.Is(unicode.Nd, r) {
		return PValid
	}
	return Disallowed
}

func assigned(r rune) bool {
	return unicode.Is(unicode.L, r) || unicode.Is(unicode.M, r) ||
		unicode.Is(unicode.N, r) || unicode.Is(unicode.P, r) ||
		unicode.Is(unicode.S, r) || unicode.Is(unicode.Z, r) ||
		unicode.Is(unicode.C, r)
}

func isNoncharacter(r rune) bool {
	if r >= 0xFDD0 && r <= 0xFDEF {
		return true
	}
	low := r & 0xFFFF
	return low == 0xFFFE || low == 0xFFFF
}

// IsPValid reports whether r may appear in an IDN label (PVALID only;
// contextual code points are excluded, matching the paper's use of the
// PVALID rows of the IDNA2008 draft).
func IsPValid(r rune) bool { return DerivedProperty(r) == PValid }

var (
	idnaOnce sync.Once
	idnaSet  *RuneSet
)

// IDNASet returns the set of all PVALID code points — the paper's
// "IDNA2008 draft" character set (123,006 code points under Unicode 12;
// slightly more here because the Go toolchain ships a newer UCD).
// The set is computed once and shared; callers must not mutate it.
func IDNASet() *RuneSet {
	idnaOnce.Do(func() {
		idnaSet = NewRuneSet()
		for r := rune(0); r <= unicode.MaxRune; r++ {
			if DerivedProperty(r) == PValid {
				idnaSet.Add(r)
			}
		}
	})
	return idnaSet
}
