package webclassify

import (
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"testing"
	"time"

	"repro/internal/hostsim"
	"repro/internal/websim"
)

// env deploys a websim with one site per category and returns a
// classifier wired through a hostsim mapper.
func env(t *testing.T) (*websim.Server, *hostsim.Mapper, *Classifier) {
	t.Helper()
	srv := websim.NewServer()
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	mapper, err := hostsim.NewMapper()
	if err != nil {
		t.Fatal(err)
	}
	c := &Classifier{
		Resolve: mapper.Resolve,
		Timeout: 2 * time.Second,
		Workers: 8,
	}
	return srv, mapper, c
}

func deploy(srv *websim.Server, m *hostsim.Mapper, domain string, site websim.Site, ports ...int) {
	srv.SetSite(domain, site)
	for _, p := range ports {
		if p == 443 {
			m.Open(domain, p, srv.HTTPSAddr())
		} else {
			m.Open(domain, p, srv.HTTPAddr())
		}
	}
}

func TestClassifyCategories(t *testing.T) {
	srv, m, c := env(t)
	deploy(srv, m, "parked.com", websim.Site{Kind: "parked"}, 80)
	deploy(srv, m, "sale.com", websim.Site{Kind: "forsale"}, 80)
	deploy(srv, m, "redir.com", websim.Site{Kind: "redirect", RedirectTarget: "target.com"}, 80)
	deploy(srv, m, "normal.com", websim.Site{Kind: "normal", Title: "News"}, 80)
	deploy(srv, m, "empty.com", websim.Site{Kind: "empty"}, 80)
	deploy(srv, m, "broken.com", websim.Site{Kind: "error"}, 80)

	cases := []struct {
		domain string
		want   Category
	}{
		{"parked.com", CatParked},
		{"sale.com", CatForSale},
		{"redir.com", CatRedirect},
		{"normal.com", CatNormal},
		{"empty.com", CatEmpty},
		{"broken.com", CatError},
		{"offline.com", CatError}, // nothing listening at all
	}
	for _, tc := range cases {
		got := c.Classify(tc.domain)
		if got.Category != tc.want {
			t.Errorf("Classify(%s) = %s, want %s", tc.domain, got.Category, tc.want)
		}
	}
}

func TestClassifyRedirectTarget(t *testing.T) {
	srv, m, c := env(t)
	deploy(srv, m, "redir.com", websim.Site{Kind: "redirect", RedirectTarget: "brand.com"}, 80)
	res := c.Classify("redir.com")
	if res.RedirectTarget != "brand.com" {
		t.Errorf("redirect target = %q", res.RedirectTarget)
	}
}

func TestClassifyHTTPSFallback(t *testing.T) {
	srv, m, c := env(t)
	// Only port 443 open — the paper's 5 TLS-only homographs.
	deploy(srv, m, "tlsonly.com", websim.Site{Kind: "parked"}, 443)
	res := c.Classify("tlsonly.com")
	if res.Category != CatParked {
		t.Errorf("https-only classified as %s", res.Category)
	}
	if res.StatusHTTP != 0 || res.StatusHTTPS != 200 {
		t.Errorf("statuses = %d/%d", res.StatusHTTP, res.StatusHTTPS)
	}
}

func TestRedirectClassification(t *testing.T) {
	srv, m, c := env(t)
	c.Reverter = func(domain string) (string, bool) {
		if domain == "xn--fake.com" {
			return "gmail.com", true
		}
		return "", false
	}
	c.IsMalicious = func(domain string) bool { return domain == "trap.example" }

	deploy(srv, m, "xn--fake.com", websim.Site{Kind: "redirect", RedirectTarget: "gmail.com"}, 80)
	deploy(srv, m, "xn--legit.com", websim.Site{Kind: "redirect", RedirectTarget: "cdn.example"}, 80)
	deploy(srv, m, "xn--evil.com", websim.Site{Kind: "redirect", RedirectTarget: "trap.example"}, 80)

	cases := []struct {
		domain string
		want   RedirectClass
	}{
		{"xn--fake.com", RedirBrand},
		{"xn--legit.com", RedirLegit},
		{"xn--evil.com", RedirMalicious},
	}
	for _, tc := range cases {
		got := c.Classify(tc.domain)
		if got.RedirectClass != tc.want {
			t.Errorf("%s: class = %q, want %q", tc.domain, got.RedirectClass, tc.want)
		}
	}
}

func TestCrawlerUserAgentGetsCloaked(t *testing.T) {
	srv, m, c := env(t)
	deploy(srv, m, "phish.com", websim.Site{Kind: "phishing", Cloaking: true}, 80)
	// A crawler-identifying survey sees an empty page.
	c.UserAgent = "SurveyBot/1.0"
	if got := c.Classify("phish.com"); got.Category != CatEmpty {
		t.Errorf("crawler UA saw %s, want %s", got.Category, CatEmpty)
	}
	// A browser UA sees the credential form (classified Normal).
	c.UserAgent = "Mozilla/5.0 (X11; Linux) Firefox/115.0"
	if got := c.Classify("phish.com"); got.Category != CatNormal {
		t.Errorf("browser UA saw %s, want %s", got.Category, CatNormal)
	}
}

func TestClassifyBatchAndTally(t *testing.T) {
	srv, m, c := env(t)
	deploy(srv, m, "p1.com", websim.Site{Kind: "parked"}, 80)
	deploy(srv, m, "p2.com", websim.Site{Kind: "parked"}, 80)
	deploy(srv, m, "r1.com", websim.Site{Kind: "redirect", RedirectTarget: "x.example"}, 80)

	results := c.ClassifyBatch([]string{"p1.com", "p2.com", "r1.com", "gone.com"})
	if len(results) != 4 || results[0].Domain != "p1.com" {
		t.Fatalf("batch order broken: %v", results)
	}
	tally := TallyResults(results)
	if tally.ByCategory[CatParked] != 2 || tally.ByCategory[CatRedirect] != 1 || tally.ByCategory[CatError] != 1 {
		t.Errorf("tally = %+v", tally.ByCategory)
	}
	if tally.ByRedirect[RedirLegit] != 1 {
		t.Errorf("redirect tally = %+v", tally.ByRedirect)
	}
}

func TestRegistrable(t *testing.T) {
	cases := []struct{ in, want string }{
		{"http://target.com/", "target.com"},
		{"https://Target.COM:8443/path", "target.com"},
		{"//host.example/x", "host.example"},
		{"/relative/path", "relative/path"},
	}
	for _, tc := range cases {
		if got := registrable(tc.in); got != tc.want {
			t.Errorf("registrable(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestSlowHostClassifiedAsError(t *testing.T) {
	srv, m, c := env(t)
	c.Timeout = 300 * time.Millisecond
	deploy(srv, m, "hung.com", websim.Site{Kind: "slow"}, 80)
	start := time.Now()
	res := c.Classify("hung.com")
	if res.Category != CatError {
		t.Errorf("slow host classified as %s", res.Category)
	}
	// Both schemes time out; the whole classification must finish in
	// roughly two timeouts, not hang.
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Errorf("classification took %v", elapsed)
	}
}

func TestNSBasedParkingSignal(t *testing.T) {
	srv, m, c := env(t)
	// The site content says "normal", but the delegation points at a
	// parking provider — the NS signal must win (and spare the fetch).
	deploy(srv, m, "nspark.com", websim.Site{Kind: "normal"}, 80)
	c.ParkingNS = []string{"sedoparking.example"}
	c.NSLookup = func(domain string) ([]string, error) {
		if domain == "nspark.com" {
			return []string{"ns1.sedoparking.example."}, nil
		}
		return []string{"ns1." + domain + "."}, nil
	}
	if got := c.Classify("nspark.com"); got.Category != CatParked {
		t.Errorf("NS-parked domain classified as %s", got.Category)
	}
	// Generic NS falls through to content classification.
	deploy(srv, m, "generic.com", websim.Site{Kind: "normal"}, 80)
	if got := c.Classify("generic.com"); got.Category != CatNormal {
		t.Errorf("generic-NS domain classified as %s", got.Category)
	}
	// NS lookup failures are non-fatal: content path still runs.
	c.NSLookup = func(string) ([]string, error) { return nil, errors.New("SERVFAIL") }
	if got := c.Classify("generic.com"); got.Category != CatNormal {
		t.Errorf("NS failure broke classification: %s", got.Category)
	}
}

// --- ClassifyBatch concurrency ---

func TestClassifyBatchOrderAcrossWorkerCounts(t *testing.T) {
	srv, m, c := env(t)
	kinds := []string{"normal", "forsale", "parked", "empty", "redirect"}
	domains := make([]string, 40)
	for i := range domains {
		domains[i] = fmt.Sprintf("c%02d.example", i)
		site := websim.Site{Kind: kinds[i%len(kinds)]}
		if site.Kind == "redirect" {
			site.RedirectTarget = "target.example"
		}
		deploy(srv, m, domains[i], site, 80)
	}
	var baseline []Result
	for _, workers := range []int{1, 4, 32} {
		c.Workers = workers
		results := c.ClassifyBatch(domains)
		if len(results) != len(domains) {
			t.Fatalf("workers=%d: %d results", workers, len(results))
		}
		for i, res := range results {
			if res.Domain != domains[i] {
				t.Fatalf("workers=%d: position %d = %s, want %s", workers, i, res.Domain, domains[i])
			}
		}
		if baseline == nil {
			baseline = results
			// Spot-check the categories really differ across positions,
			// so order bugs cannot cancel out.
			if baseline[0].Category != CatNormal || baseline[1].Category != CatForSale ||
				baseline[2].Category != CatParked || baseline[4].Category != CatRedirect {
				t.Fatalf("unexpected category layout: %+v", baseline[:5])
			}
		} else if !reflect.DeepEqual(results, baseline) {
			t.Fatalf("workers=%d results differ from workers=1 baseline", workers)
		}
	}
}

func TestClassifyBatchTimeoutDrainsWorkers(t *testing.T) {
	baseline := runtime.NumGoroutine()
	srv, m, c := env(t)
	c.Timeout = 150 * time.Millisecond
	c.Workers = 32
	domains := make([]string, 24)
	for i := range domains {
		domains[i] = fmt.Sprintf("hang%02d.example", i)
		// Every site hangs far past the client timeout; the pool must
		// drain on the timeout alone.
		deploy(srv, m, domains[i], websim.Site{Kind: "slow"}, 80)
	}
	results := c.ClassifyBatch(domains)
	for i, res := range results {
		if res.Category != CatError {
			t.Fatalf("result %d = %+v, want Error from timeout", i, res)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("worker goroutines leaked: %d running, baseline %d", runtime.NumGoroutine(), baseline)
}
