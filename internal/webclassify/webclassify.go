// Package webclassify probes the websites of detected homographs over
// HTTP and HTTPS and classifies them into the paper's Table 12
// categories (parked / for-sale / redirect / normal / empty / error)
// plus the Table 13 redirect breakdown (brand protection / legitimate
// / malicious). Classification uses the HTTP response alone — status,
// Location header, body phrases — the way the paper's
// screenshot-and-response pipeline did, not the simulator's ground
// truth.
package webclassify

import (
	"context"
	"crypto/tls"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"
)

// Category is the classification outcome for one site.
type Category string

// Categories of Table 12.
const (
	CatParked   Category = "Domain parking"
	CatForSale  Category = "For sale"
	CatRedirect Category = "Redirect"
	CatNormal   Category = "Normal"
	CatEmpty    Category = "Empty"
	CatError    Category = "Error"
)

// RedirectClass is the Table 13 breakdown.
type RedirectClass string

// Redirect classes.
const (
	RedirBrand     RedirectClass = "Brand protection"
	RedirLegit     RedirectClass = "Legitimate website"
	RedirMalicious RedirectClass = "Malicious website"
	RedirUnknown   RedirectClass = ""
)

// Result is the classification of one domain.
type Result struct {
	Domain         string
	Category       Category
	RedirectTarget string // registrable domain from Location, if any
	RedirectClass  RedirectClass
	StatusHTTP     int // 0 when the HTTP fetch failed
	StatusHTTPS    int
}

// Resolver maps (domain, port) to a dialable address, satisfied by
// hostsim.Mapper.Resolve.
type Resolver func(domain string, port int) string

// Classifier fetches and classifies homograph websites.
type Classifier struct {
	// Resolve locates the listener for each domain/port. Required.
	Resolve Resolver
	// Timeout bounds each fetch. Zero means 3 seconds.
	Timeout time.Duration
	// Workers bounds concurrent fetches. Zero means 32.
	Workers int
	// UserAgent is sent on every request; survey crawlers identify
	// themselves, which is exactly what cloaking sites key on.
	UserAgent string

	// Reverter maps a homograph domain to the original it imitates
	// ("xn--ggle..com" -> "google.com"); used to recognise brand-
	// protection redirects. Optional.
	Reverter func(domain string) (string, bool)
	// IsMalicious reports whether a redirect target is a known-bad
	// domain (a blacklist lookup). Optional.
	IsMalicious func(domain string) bool
	// NSLookup returns the NS hosts of a domain; combined with
	// ParkingNS it implements the paper's first-pass parking
	// classification by delegation target (Vissers et al.). Optional.
	NSLookup func(domain string) ([]string, error)
	// ParkingNS are name-server suffixes of known parking providers.
	ParkingNS []string
}

// parkedByNS reports whether the domain's delegation points at a known
// parking provider.
func (c *Classifier) parkedByNS(domain string) bool {
	if c.NSLookup == nil || len(c.ParkingNS) == 0 {
		return false
	}
	hosts, err := c.NSLookup(domain)
	if err != nil {
		return false
	}
	return ParkedOn(hosts, c.ParkingNS)
}

// ParkedOn reports whether any of nsHosts sits on (or under) one of the
// parking-provider suffixes — the Vissers-style first-pass parking test
// by delegation target. Exported so pipelines that already hold a
// domain's NS answer (the triage pipeline's DNS stage captures it) can
// classify without a second lookup.
func ParkedOn(nsHosts, providers []string) bool {
	for _, h := range nsHosts {
		h = strings.TrimSuffix(strings.ToLower(h), ".")
		for _, provider := range providers {
			if h == provider || strings.HasSuffix(h, "."+provider) {
				return true
			}
		}
	}
	return false
}

func (c *Classifier) timeout() time.Duration {
	if c.Timeout == 0 {
		return 3 * time.Second
	}
	return c.Timeout
}

// client builds an HTTP client that dials through the resolver and
// does not follow redirects (the Location header is the signal).
func (c *Classifier) client(port int) *http.Client {
	dialer := &net.Dialer{Timeout: c.timeout()}
	transport := &http.Transport{
		DialContext: func(ctx context.Context, network, addr string) (net.Conn, error) {
			host, _, err := net.SplitHostPort(addr)
			if err != nil {
				host = addr
			}
			return dialer.DialContext(ctx, network, c.Resolve(host, port))
		},
		TLSClientConfig:   &tls.Config{InsecureSkipVerify: true},
		DisableKeepAlives: true,
	}
	return &http.Client{
		Timeout:   c.timeout(),
		Transport: transport,
		CheckRedirect: func(req *http.Request, via []*http.Request) error {
			return http.ErrUseLastResponse
		},
	}
}

// fetch retrieves scheme://domain/ and returns status, body prefix and
// the Location header.
func (c *Classifier) fetch(scheme, domain string, port int) (status int, body, location string, err error) {
	client := c.client(port)
	req, err := http.NewRequest("GET", scheme+"://"+domain+"/", nil)
	if err != nil {
		return 0, "", "", fmt.Errorf("webclassify: building request: %w", err)
	}
	if c.UserAgent != "" {
		req.Header.Set("User-Agent", c.UserAgent)
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, "", "", err
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(io.LimitReader(resp.Body, 64*1024))
	return resp.StatusCode, string(b), resp.Header.Get("Location"), nil
}

// Classify probes one domain and derives its category: first the NS
// delegation check (parked domains sit on parking-company name
// servers), then HTTP with HTTPS fallback.
func (c *Classifier) Classify(domain string) Result {
	res := Result{Domain: domain}
	if c.parkedByNS(domain) {
		res.Category = CatParked
		return res
	}
	status, body, location, err := c.fetch("http", domain, 80)
	res.StatusHTTP = status
	if err != nil {
		// Try HTTPS before declaring an error.
		status, body, location, err = c.fetch("https", domain, 443)
		res.StatusHTTPS = status
		if err != nil {
			res.Category = CatError
			return res
		}
	}
	res.Category, res.RedirectTarget = categorize(status, body, location)
	if res.Category == CatRedirect {
		res.RedirectClass = c.classifyRedirect(domain, res.RedirectTarget)
	}
	return res
}

// categorize applies the response heuristics.
func categorize(status int, body, location string) (Category, string) {
	if status >= 300 && status < 400 && location != "" {
		return CatRedirect, registrable(location)
	}
	lower := strings.ToLower(body)
	switch {
	case strings.Contains(lower, "domain is parked") ||
		strings.Contains(lower, "parked free") ||
		strings.Contains(lower, "related searches"):
		return CatParked, ""
	case strings.Contains(lower, "for sale") ||
		strings.Contains(lower, "make an offer") ||
		strings.Contains(lower, "buy this domain"):
		return CatForSale, ""
	case strings.TrimSpace(body) == "":
		return CatEmpty, ""
	case status >= 400:
		return CatError, ""
	default:
		return CatNormal, ""
	}
}

// registrable extracts the registrable domain from a Location value.
func registrable(location string) string {
	u, err := url.Parse(location)
	if err != nil || u.Host == "" {
		return strings.Trim(location, "/")
	}
	host := u.Host
	if h, _, err := net.SplitHostPort(host); err == nil {
		host = h
	}
	return strings.ToLower(host)
}

// classifyRedirect decides the Table 13 class of a redirect.
func (c *Classifier) classifyRedirect(domain, target string) RedirectClass {
	if c.IsMalicious != nil && c.IsMalicious(target) {
		return RedirMalicious
	}
	if c.Reverter != nil {
		if original, ok := c.Reverter(domain); ok && strings.EqualFold(original, target) {
			return RedirBrand
		}
	}
	return RedirLegit
}

// ClassifyBatch classifies every domain concurrently, preserving
// order.
func (c *Classifier) ClassifyBatch(domains []string) []Result {
	workers := c.Workers
	if workers <= 0 {
		workers = 32
	}
	results := make([]Result, len(domains))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, d := range domains {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, d string) {
			defer wg.Done()
			defer func() { <-sem }()
			results[i] = c.Classify(d)
		}(i, d)
	}
	wg.Wait()
	return results
}

// Tally aggregates results by category (Table 12) and redirect class
// (Table 13).
type Tally struct {
	ByCategory map[Category]int
	ByRedirect map[RedirectClass]int
}

// TallyResults counts categories across results.
func TallyResults(results []Result) Tally {
	t := Tally{
		ByCategory: make(map[Category]int),
		ByRedirect: make(map[RedirectClass]int),
	}
	for _, r := range results {
		t.ByCategory[r.Category]++
		if r.Category == CatRedirect && r.RedirectClass != RedirUnknown {
			t.ByRedirect[r.RedirectClass]++
		}
	}
	return t
}
