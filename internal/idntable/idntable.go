// Package idntable models the IANA per-TLD IDN tables of Section 2.1:
// each registry publishes the code points it permits (the
// "inclusion-based" approach ICANN's 2003 guideline requires), so
// whether a homograph is registrable depends on the TLD. The JP
// registry, for example, permits LDH + Hiragana + Katakana + a CJK
// subset, which is why "ácm.jp" cannot be registered while .com —
// whose table spans 97 Unicode blocks — accepts homoglyphs from
// almost every script.
//
// The package parses the common one-codepoint-per-line table format
// IANA distributes, ships built-in tables for a representative set of
// TLDs, and answers the question the attacker and the defender both
// ask: which homoglyphs of this label survive this TLD's table?
package idntable

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/ucd"
)

// Table is one TLD's permitted code-point inventory.
type Table struct {
	TLD       string // without dot, e.g. "com"
	Permitted *ucd.RuneSet
}

// Allows reports whether every character of label is permitted.
// ASCII letters, digits and hyphen (LDH) are always permitted, per
// the IDNA base requirement.
func (t *Table) Allows(label string) bool {
	for _, r := range label {
		if !t.AllowsRune(r) {
			return false
		}
	}
	return true
}

// AllowsRune reports whether one code point is permitted.
func (t *Table) AllowsRune(r rune) bool {
	if r == '-' || (r >= '0' && r <= '9') || (r >= 'a' && r <= 'z') {
		return true
	}
	if r >= 'A' && r <= 'Z' {
		return true // registries compare case-insensitively
	}
	return t.Permitted != nil && t.Permitted.Contains(r)
}

// FilterHomoglyphs keeps only the homoglyph candidates this TLD's
// table permits — the registrable attack surface of one character.
func (t *Table) FilterHomoglyphs(candidates []rune) []rune {
	var out []rune
	for _, r := range candidates {
		if t.AllowsRune(r) {
			out = append(out, r)
		}
	}
	return out
}

// Parse reads the IANA one-codepoint-per-line format:
//
//	U+00E9     # LATIN SMALL LETTER E WITH ACUTE
//	0x4E00..0x9FFF                 (ranges allowed)
//	3042                           (bare hex allowed)
//
// Blank lines and # comments are ignored.
func Parse(tld string, r io.Reader) (*Table, error) {
	set := ucd.NewRuneSet()
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		lo, hi, err := parseRange(line)
		if err != nil {
			return nil, fmt.Errorf("idntable: %s line %d: %w", tld, lineNo, err)
		}
		set.AddRange(lo, hi)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("idntable: %w", err)
	}
	return &Table{TLD: strings.TrimPrefix(strings.ToLower(tld), "."), Permitted: set}, nil
}

func parseRange(s string) (lo, hi rune, err error) {
	parts := strings.SplitN(s, "..", 2)
	lo, err = parseCodepoint(parts[0])
	if err != nil {
		return 0, 0, err
	}
	hi = lo
	if len(parts) == 2 {
		hi, err = parseCodepoint(parts[1])
		if err != nil {
			return 0, 0, err
		}
	}
	if hi < lo {
		return 0, 0, fmt.Errorf("range %q is inverted", s)
	}
	return lo, hi, nil
}

func parseCodepoint(s string) (rune, error) {
	s = strings.TrimSpace(s)
	s = strings.TrimPrefix(strings.TrimPrefix(s, "U+"), "0x")
	v, err := strconv.ParseUint(s, 16, 32)
	if err != nil {
		return 0, fmt.Errorf("bad code point %q", s)
	}
	return rune(v), nil
}

// Write emits the table in the parseable format, as contiguous ranges.
func (t *Table) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# IDN table for .%s\n", t.TLD)
	runes := t.Permitted.Runes()
	for i := 0; i < len(runes); {
		j := i
		for j+1 < len(runes) && runes[j+1] == runes[j]+1 {
			j++
		}
		if i == j {
			fmt.Fprintf(bw, "U+%04X\n", runes[i])
		} else {
			fmt.Fprintf(bw, "U+%04X..U+%04X\n", runes[i], runes[j])
		}
		i = j + 1
	}
	return bw.Flush()
}

// Builtin returns the built-in table for a TLD, if shipped.
func Builtin(tld string) (*Table, bool) {
	tld = strings.TrimPrefix(strings.ToLower(tld), ".")
	t, ok := builtins()[tld]
	return t, ok
}

// BuiltinTLDs lists the shipped tables.
func BuiltinTLDs() []string {
	m := builtins()
	out := make([]string, 0, len(m))
	for tld := range m {
		out = append(out, tld)
	}
	// Small fixed set; insertion sort keeps it dependency-free.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
