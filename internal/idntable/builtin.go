package idntable

import (
	"sync"

	"repro/internal/ucd"
)

var (
	builtinOnce sync.Once
	builtinMap  map[string]*Table
)

// builtins constructs the shipped tables once. The inventories follow
// the registries' published policies in shape:
//
//	com — Verisign's table spans ~97 blocks: most living scripts.
//	jp  — JPRS permits LDH + Hiragana + Katakana + JIS-subset CJK only
//	      (Section 2.1's example of inclusion thwarting Latin
//	      homographs).
//	de  — DENIC permits Latin letters with a fixed diacritic list.
//	ru  — the Cyrillic ccTLD permits Cyrillic only.
//	рф (xn--p1ai) — likewise Cyrillic-only, the TLD Section 7.1 calls
//	      out as future measurement work.
func builtins() map[string]*Table {
	builtinOnce.Do(func() {
		builtinMap = map[string]*Table{}

		com := ucd.NewRuneSet()
		for _, blk := range []struct{ lo, hi rune }{
			{0x00C0, 0x024F}, // Latin-1 Supplement .. Latin Extended-B
			{0x0370, 0x03FF}, // Greek
			{0x0400, 0x052F}, // Cyrillic + Supplement
			{0x0530, 0x058F}, // Armenian
			{0x0590, 0x05FF}, // Hebrew
			{0x0600, 0x06FF}, // Arabic
			{0x0900, 0x0DFF}, // Indic blocks
			{0x0E00, 0x0EFF}, // Thai, Lao
			{0x0F00, 0x0FFF}, // Tibetan
			{0x1000, 0x109F}, // Myanmar
			{0x10A0, 0x10FF}, // Georgian
			{0x1100, 0x11FF}, // Hangul Jamo
			{0x1200, 0x137F}, // Ethiopic
			{0x1400, 0x167F}, // Canadian Aboriginal
			{0x1780, 0x17FF}, // Khmer
			{0x1E00, 0x1EFF}, // Latin Extended Additional
			{0x3040, 0x30FF}, // Hiragana, Katakana
			{0x3400, 0x4DBF}, // CJK Extension A
			{0x4E00, 0x9FFF}, // CJK Unified
			{0xA500, 0xA63F}, // Vai
			{0xAC00, 0xD7A3}, // Hangul Syllables
		} {
			com.AddRange(blk.lo, blk.hi)
		}
		builtinMap["com"] = &Table{TLD: "com", Permitted: restrictPValid(com)}

		jp := ucd.NewRuneSet()
		jp.AddRange(0x3041, 0x3096) // Hiragana
		jp.AddRange(0x30A1, 0x30FA) // Katakana
		jp.Add(0x30FC)              // prolonged sound mark
		jp.AddRange(0x4E00, 0x9FFF) // CJK (JIS subset approximated)
		builtinMap["jp"] = &Table{TLD: "jp", Permitted: restrictPValid(jp)}

		de := ucd.NewRuneSet()
		for _, r := range []rune("àáâãäåæçèéêëìíîïðñòóôõöøùúûüýþÿāăąćĉċčďđēĕėęěĝğġģĥħĩīĭįıĵķĺļľłńņňŋōŏőœŕŗřśŝşšţťŧũūŭůűųŵŷźżžß") {
			de.Add(r)
		}
		builtinMap["de"] = &Table{TLD: "de", Permitted: restrictPValid(de)}

		ru := ucd.NewRuneSet()
		ru.AddRange(0x0430, 0x045F)
		builtinMap["ru"] = &Table{TLD: "ru", Permitted: restrictPValid(ru)}
		builtinMap["xn--p1ai"] = &Table{TLD: "xn--p1ai", Permitted: restrictPValid(ru.Clone())}
	})
	return builtinMap
}

// restrictPValid drops code points IDNA2008 forbids regardless of
// registry policy.
func restrictPValid(s *ucd.RuneSet) *ucd.RuneSet {
	out := ucd.NewRuneSet()
	for _, r := range s.Runes() {
		if ucd.IsPValid(r) {
			out.Add(r)
		}
	}
	return out
}
