package idntable

import (
	"bytes"
	"strings"
	"testing"
)

func TestParseFormats(t *testing.T) {
	input := `
# comment
U+00E9          # é
0x4E00..0x4E05
3042
U+0061..U+007A  # a-z (redundant with LDH but legal)
`
	tbl, err := Parse(".COM", strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if tbl.TLD != "com" {
		t.Errorf("TLD = %q", tbl.TLD)
	}
	for _, r := range []rune{0x00E9, 0x4E00, 0x4E05, 0x3042, 'a'} {
		if !tbl.AllowsRune(r) {
			t.Errorf("AllowsRune(%U) = false", r)
		}
	}
	if tbl.AllowsRune(0x4E06) {
		t.Error("code point outside range permitted")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"U+ZZZZ",
		"0x10..0x05", // inverted
		"not-hex",
	}
	for _, c := range cases {
		if _, err := Parse("x", strings.NewReader(c)); err == nil {
			t.Errorf("Parse(%q) succeeded", c)
		}
	}
}

func TestLDHAlwaysAllowed(t *testing.T) {
	tbl := &Table{TLD: "empty"}
	for _, r := range []rune("abc-XYZ019") {
		if !tbl.AllowsRune(r) {
			t.Errorf("LDH rune %q rejected", r)
		}
	}
	if tbl.AllowsRune('é') {
		t.Error("empty table permitted a non-LDH rune")
	}
}

func TestAllowsLabel(t *testing.T) {
	jp, ok := Builtin("jp")
	if !ok {
		t.Fatal("no jp table")
	}
	cases := []struct {
		label string
		want  bool
	}{
		{"example", true},  // plain LDH
		{"にほん", true},      // Hiragana
		{"テスト", true},      // Katakana
		{"日本語", true},      // CJK
		{"ácm", false},     // the paper's Section 2.1 example
		{"gооgle", false},  // Cyrillic о not in the JP table
		{"mixedにほん", true}, // LDH + kana
	}
	for _, c := range cases {
		if got := jp.Allows(c.label); got != c.want {
			t.Errorf("jp.Allows(%q) = %t, want %t", c.label, got, c.want)
		}
	}
}

func TestComPermitsCrossScript(t *testing.T) {
	com, ok := Builtin("com")
	if !ok {
		t.Fatal("no com table")
	}
	// The attacks the paper measures are registrable under .com.
	for _, label := range []string{"gооgle", "ácm", "ρaypal", "エ業大学"} {
		if !com.Allows(label) {
			t.Errorf("com.Allows(%q) = false", label)
		}
	}
}

func TestCyrillicTLDs(t *testing.T) {
	rf, ok := Builtin("xn--p1ai")
	if !ok {
		t.Fatal("no рф table")
	}
	if !rf.Allows("домен") {
		t.Error("Cyrillic label rejected by рф")
	}
	if rf.Allows("домéн") {
		t.Error("Latin é permitted by рф")
	}
}

func TestFilterHomoglyphs(t *testing.T) {
	jp, _ := Builtin("jp")
	candidates := []rune{0x043E /* Cyrillic о */, 0x30A8 /* エ */, 'o'}
	got := jp.FilterHomoglyphs(candidates)
	if len(got) != 2 || got[0] != 0x30A8 || got[1] != 'o' {
		t.Errorf("FilterHomoglyphs = %U", got)
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	de, _ := Builtin("de")
	var buf bytes.Buffer
	if err := de.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Parse("de", &buf)
	if err != nil {
		t.Fatal(err)
	}
	want := de.Permitted.Runes()
	gotRunes := got.Permitted.Runes()
	if len(want) != len(gotRunes) {
		t.Fatalf("round trip: %d -> %d runes", len(want), len(gotRunes))
	}
	for i := range want {
		if want[i] != gotRunes[i] {
			t.Fatalf("rune %d: %U != %U", i, want[i], gotRunes[i])
		}
	}
}

func TestBuiltinTLDs(t *testing.T) {
	tlds := BuiltinTLDs()
	if len(tlds) < 5 {
		t.Fatalf("builtins = %v", tlds)
	}
	for i := 1; i < len(tlds); i++ {
		if tlds[i-1] >= tlds[i] {
			t.Errorf("BuiltinTLDs not sorted: %v", tlds)
		}
	}
	if _, ok := Builtin("nonexistent"); ok {
		t.Error("bogus TLD has a table")
	}
	if _, ok := Builtin(".COM"); !ok {
		t.Error("dot/case-insensitive lookup failed")
	}
}
