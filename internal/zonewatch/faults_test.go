package zonewatch

import (
	"context"
	"errors"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/resilience"
	"repro/internal/triage"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// fastConfig tightens every cadence so the fault schedule runs in
// test time: 5ms polling, millisecond backoff, a breaker that opens
// after 2 failures and reconsiders every 30ms.
func fastConfig(c *Config) {
	c.Interval = 5 * time.Millisecond
	c.Backoff = resilience.Backoff{Base: 2 * time.Millisecond, Max: 20 * time.Millisecond, Jitter: resilience.JitterNone}
	c.ZoneBreaker = &resilience.Breaker{OpenAfter: 2, Cooldown: 30 * time.Millisecond, RecoverAfter: 1}
	c.ProbeBreaker = &resilience.Breaker{OpenAfter: 2, Cooldown: 30 * time.Millisecond, RecoverAfter: 1}
	c.ProbeRetry = resilience.RetryPolicy{
		Attempts: 2,
		Backoff:  resilience.Backoff{Base: time.Millisecond, Jitter: resilience.JitterNone},
	}
}

// TestWatchFaultSchedule drives one continuous deployment through the
// full pathology schedule — zone growth, downstream DNS outage,
// truncated drop, rollback, process restart, seen-set corruption — and
// asserts the two invariants that define the watcher: every added
// candidate is emitted exactly once, and health returns to ok after
// each fault clears.
func TestWatchFaultSchedule(t *testing.T) {
	dir := t.TempDir()
	zonePath := dir + "/zone.txt"

	var dnsDown atomic.Bool
	var probed atomic.Uint64
	probe := func(ctx context.Context, in triage.Input) error {
		if dnsDown.Load() {
			return errors.New("resolver unreachable")
		}
		probed.Add(1)
		return nil
	}
	mkWatcher := func() *Watcher {
		cfg := Config{
			ZonePath: zonePath,
			StateDir: dir + "/state",
			Engine:   testEngine(t),
			Probe:    probe,
			QueueCap: 64,
			Logf:     t.Logf,
		}
		fastConfig(&cfg)
		w, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	start := func(w *Watcher) (cancel func()) {
		ctx, stop := context.WithCancel(context.Background())
		done := make(chan struct{})
		go func() {
			defer close(done)
			w.Run(ctx)
		}()
		return func() {
			stop()
			select {
			case <-done:
			case <-time.After(5 * time.Second):
				t.Fatal("Run did not exit after cancel")
			}
		}
	}

	homographs := []string{ace(t, "gооgle") + ".com", ace(t, "facébook") + ".com"}

	// Phase 1: first generation, healthy end to end.
	v1 := append(bigZoneLines(40), homographs[0])
	writeZone(t, zonePath, v1...)
	w := mkWatcher()
	cancel := start(w)
	waitFor(t, "first generation scanned", func() bool { return w.Health().Added == 41 })
	waitFor(t, "detection probed", func() bool { return probed.Load() == 1 })
	waitFor(t, "healthy state", func() bool { return w.Health().State == "ok" })

	// Phase 2: DNS outage. Detection must keep flowing while probes
	// queue; the probe breaker degrades and opens, the zone side stays
	// healthy.
	dnsDown.Store(true)
	v2 := append(append([]string{}, v1...), bigZoneLines(60)[40:]...)
	v2 = append(v2, homographs[1])
	writeZone(t, zonePath, v2...)
	waitFor(t, "outage generation scanned", func() bool { return w.Health().Added == 62 })
	waitFor(t, "probe breaker degraded", func() bool {
		h := w.Health()
		return h.Probe != nil && h.Probe.State != "ok" && h.ProbeFailures > 0
	})
	if h := w.Health(); h.Zone.State != "ok" {
		t.Fatalf("zone health %q during a DNS-only outage", h.Zone.State)
	}
	if probed.Load() != 1 {
		t.Fatalf("probe went through during outage: %d", probed.Load())
	}

	// Outage clears: the queued detection drains and the breaker leaves
	// the open state (one success is probation — degraded — not health).
	dnsDown.Store(false)
	waitFor(t, "queued probe drained", func() bool { return probed.Load() == 2 })
	waitFor(t, "probe breaker off open", func() bool {
		h := w.Health()
		return h.Probe != nil && h.Probe.State != "open"
	})

	// Phase 3: truncated drop. The loop refuses it, goes degraded, and
	// counts watch errors; the full drop heals it. The healing zone
	// carries a fresh homograph whose successful probe completes the
	// probe breaker's recovery streak.
	writeZone(t, zonePath, bigZoneLines(3)...)
	waitFor(t, "truncation noticed", func() bool {
		h := w.Health()
		return h.WatchErrors > 0 && h.Zone.State != "ok"
	})
	added := w.Health().Added
	v3 := append(append([]string{}, v2...), "xn--after-truncation.example", ace(t, "gօօgle")+".com")
	writeZone(t, zonePath, v3...)
	waitFor(t, "post-truncation scan", func() bool { return w.Health().Added == added+2 })
	waitFor(t, "third probe delivered", func() bool { return probed.Load() == 3 })
	waitFor(t, "health fully recovered", func() bool { return w.Health().State == "ok" })

	// Phase 4: rollback to yesterday's zone — scans clean, zero
	// emissions.
	scans := w.Health().Scans
	writeZone(t, zonePath, v2...)
	waitFor(t, "rollback scanned", func() bool { return w.Health().Scans > scans })
	if got := w.Health().Added; got != added+2 {
		t.Fatalf("rollback emitted %d new deltas", got-(added+2))
	}

	// Phase 5: restart (the crash-consistency tests cover mid-scan
	// kills; here the full service restarts over live state).
	cancel()
	w = mkWatcher()
	cancel = start(w)
	writeZone(t, zonePath, append(append([]string{}, v3...), "xn--post-restart.example")...)
	waitFor(t, "post-restart delta", func() bool { return w.Health().Added == 1 })

	// Phase 6: seen-set corruption detected at the next restart. The
	// watcher refuses to scan — degraded, loudly — until the file is
	// restored, then recovers in place.
	cancel()
	healthy, err := os.ReadFile(dir + "/state/seen.set")
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), healthy...)
	bad[len(bad)/3] ^= 0x80
	os.WriteFile(dir+"/state/seen.set", bad, 0o644)
	writeZone(t, zonePath, append(append([]string{}, v3...), "xn--post-restart.example", "xn--final.example")...)
	w = mkWatcher()
	cancel = start(w)
	defer cancel()
	waitFor(t, "corrupt seen-set refused", func() bool {
		h := w.Health()
		return h.WatchErrors > 0 && h.Zone.State != "ok" && h.Added == 0
	})
	os.WriteFile(dir+"/state/seen.set", healthy, 0o644)
	waitFor(t, "post-restore delta", func() bool { return w.Health().Added == 1 })
	waitFor(t, "final health ok", func() bool { return w.Health().State == "ok" })

	// The global invariant: across six pathologies and three processes,
	// every candidate was emitted exactly once.
	names := deltaNames(t, dir+"/state/deltas.out")
	assertNoDuplicates(t, names)
	want := map[string]bool{}
	for _, l := range v3 {
		want[strings.ToLower(l)] = true
	}
	want["xn--post-restart.example"] = true
	want["xn--final.example"] = true
	if len(names) != len(want) {
		t.Fatalf("deltas hold %d names, want %d", len(names), len(want))
	}
	for _, n := range names {
		if !want[n] {
			t.Fatalf("unexpected delta %q", n)
		}
	}
}

// TestRunStopsCleanly asserts the lifecycle contract: cancelling Run's
// context stops the poll loop and the submitter goroutine without
// leaking either, even while a probe target is down.
func TestRunStopsCleanly(t *testing.T) {
	dir := t.TempDir()
	writeZone(t, dir+"/zone.txt", append(bigZoneLines(5), ace(t, "gооgle")+".com")...)

	before := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		cfg := Config{
			ZonePath: dir + "/zone.txt",
			StateDir: fmt.Sprintf("%s/state%d", dir, i),
			Engine:   testEngine(t),
			Probe: func(context.Context, triage.Input) error {
				return errors.New("always down")
			},
		}
		fastConfig(&cfg)
		w, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() { done <- w.Run(ctx) }()
		waitFor(t, "scan ran", func() bool { return w.Health().Scans > 0 })
		cancel()
		select {
		case err := <-done:
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("Run returned %v, want context.Canceled", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("Run did not exit after cancel")
		}
	}

	waitFor(t, "goroutines to drain", func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= before+2
	})
}
