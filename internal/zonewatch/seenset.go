// Package zonewatch implements the crash-safe continuous zone watch:
// a durable delta-ingestion loop that streams today's zone file against
// the fingerprint set of everything already observed, emits only the
// added FQDNs into detection, and survives truncated zones, rolled-back
// zones, corrupted state files and SIGKILL mid-scan without ever
// emitting a duplicate or dropping an addition.
//
// The durable state is three files in the state directory:
//
//	seen.set    — sorted 64-bit FQDN fingerprints of every name ever
//	              observed (SHAMSEEN codec, CRC-sealed, atomic writes)
//	seen.set.bak— the previous generation, kept for operator recovery
//	watch.ckpt  — the scan checkpoint: zone byte offset, a CRC over the
//	              consumed zone prefix, and the deltas-file offset
//
// The deltas output file doubles as the dedup journal for the scan in
// progress: a checkpoint records only offsets, and a resume rebuilds
// the session's fingerprints by re-reading the deltas lines the
// checkpoint vouches for. Crash windows are closed by ordering — flush
// deltas, checkpoint, merge seen-set, mark complete — with every step
// idempotent under re-execution.
package zonewatch

import (
	"sort"

	"repro/internal/snapshot"
)

// FNV-1a 64-bit parameters. FNV keeps the fingerprint dependency-free
// and fast on short keys; at zone scale (~10^8 names) the birthday bound
// for a 64-bit space is ~10^-3, and a collision costs one suppressed
// emission, never a false emission.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// Fingerprint hashes a normalized FQDN to its 64-bit seen-set key.
func Fingerprint(fqdn []byte) uint64 {
	h := uint64(fnvOffset64)
	for _, c := range fqdn {
		h ^= uint64(c)
		h *= fnvPrime64
	}
	return h
}

// seenSet is the in-memory membership structure: the durable base (a
// sorted array straight out of the SHAMSEEN codec, answered by binary
// search) plus the current session's additions in a map. Completing a
// scan merges the two and persists the union; the base never mutates
// mid-scan, so a crashed session loses only map entries that the resume
// path rebuilds from the deltas journal.
type seenSet struct {
	base []uint64
	add  map[uint64]struct{}
}

func newSeenSet(base []uint64) *seenSet {
	return &seenSet{base: base, add: make(map[uint64]struct{})}
}

func (s *seenSet) contains(h uint64) bool {
	i := sort.Search(len(s.base), func(i int) bool { return s.base[i] >= h })
	if i < len(s.base) && s.base[i] == h {
		return true
	}
	_, ok := s.add[h]
	return ok
}

// addHash records h and reports whether it was new.
func (s *seenSet) addHash(h uint64) bool {
	if s.contains(h) {
		return false
	}
	s.add[h] = struct{}{}
	return true
}

func (s *seenSet) size() int { return len(s.base) + len(s.add) }

// merged returns the sorted union of base and session additions.
func (s *seenSet) merged() []uint64 {
	if len(s.add) == 0 {
		return s.base
	}
	extra := make([]uint64, 0, len(s.add))
	for h := range s.add {
		extra = append(extra, h)
	}
	sort.Slice(extra, func(i, j int) bool { return extra[i] < extra[j] })
	out := make([]uint64, 0, len(s.base)+len(extra))
	i, j := 0, 0
	for i < len(s.base) && j < len(extra) {
		if s.base[i] < extra[j] {
			out = append(out, s.base[i])
			i++
		} else {
			out = append(out, extra[j])
			j++
		}
	}
	out = append(out, s.base[i:]...)
	out = append(out, extra[j:]...)
	return out
}

// loadSeenSet reads the durable base set; a missing file is the empty
// set every deployment starts from.
func loadSeenSet(path string) (*seenSet, error) {
	base, err := snapshot.ReadSeenSetFile(path)
	if err != nil {
		return nil, err
	}
	return newSeenSet(base), nil
}
