package zonewatch

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/confusables"
	"repro/internal/core"
	"repro/internal/fontgen"
	"repro/internal/homoglyph"
	"repro/internal/punycode"
	"repro/internal/simchar"
	"repro/internal/snapshot"
	"repro/internal/triage"
	"repro/internal/ucd"
)

var (
	testDBOnce sync.Once
	testDBVal  *homoglyph.DB
)

func testDB(t testing.TB) *homoglyph.DB {
	t.Helper()
	testDBOnce.Do(func() {
		font := fontgen.Generate(fontgen.Options{SkipCJK: true, SkipHangul: true})
		sim, _ := simchar.Build(font, ucd.IDNASet(), simchar.Options{})
		testDBVal = homoglyph.New(confusables.Default(), sim, 0)
	})
	return testDBVal
}

func testEngine(t testing.TB, refs ...string) *core.Engine {
	t.Helper()
	if len(refs) == 0 {
		refs = []string{"google", "facebook"}
	}
	return core.NewEngine(core.NewDetector(testDB(t), refs))
}

func ace(t testing.TB, label string) string {
	t.Helper()
	a, err := punycode.ToASCIILabel(label)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func writeZone(t testing.TB, path string, lines ...string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
}

// deltaNames reads the deltas file and returns the first field of each
// line, in order.
func deltaNames(t testing.TB, path string) []string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		t.Fatal(err)
	}
	var names []string
	for _, line := range strings.Split(strings.TrimRight(string(data), "\n"), "\n") {
		if line == "" {
			continue
		}
		names = append(names, strings.SplitN(line, "\t", 2)[0])
	}
	return names
}

func assertNoDuplicates(t testing.TB, names []string) {
	t.Helper()
	seen := make(map[string]bool, len(names))
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate delta emission: %q", n)
		}
		seen[n] = true
	}
}

func newTestWatcher(t testing.TB, dir string, mutate ...func(*Config)) *Watcher {
	t.Helper()
	cfg := Config{
		ZonePath: filepath.Join(dir, "zone.txt"),
		StateDir: filepath.Join(dir, "state"),
		Engine:   testEngine(t),
	}
	for _, m := range mutate {
		m(&cfg)
	}
	w, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestSeenSetMergeAndContains(t *testing.T) {
	s := newSeenSet([]uint64{10, 20, 30})
	for _, h := range []uint64{10, 30} {
		if !s.contains(h) {
			t.Fatalf("base hash %d not found", h)
		}
	}
	if s.addHash(20) {
		t.Fatal("addHash re-added a base hash")
	}
	if !s.addHash(25) || !s.addHash(5) || !s.addHash(35) {
		t.Fatal("addHash refused new hashes")
	}
	if s.addHash(25) {
		t.Fatal("addHash re-added a session hash")
	}
	got := s.merged()
	want := []uint64{5, 10, 20, 25, 30, 35}
	if len(got) != len(want) {
		t.Fatalf("merged = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merged = %v, want %v", got, want)
		}
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "watch.ckpt")
	c := checkpoint{
		Complete:     true,
		ZoneSize:     1 << 40,
		ZoneOff:      123456789,
		PrefixCRC:    0xDEADBEEF,
		ScanStartOut: 42,
		OutOff:       99,
		Emitted:      7,
	}
	if err := writeCheckpointFile(path, c); err != nil {
		t.Fatal(err)
	}
	got, ok, err := readCheckpointFile(path)
	if err != nil || !ok {
		t.Fatalf("read = (%v, %v)", ok, err)
	}
	if got != c {
		t.Fatalf("round trip = %+v, want %+v", got, c)
	}

	// Missing file: ok=false, no error.
	if _, ok, err := readCheckpointFile(path + ".nope"); ok || err != nil {
		t.Fatalf("missing checkpoint = (%v, %v)", ok, err)
	}

	// Corruption: flipped bit must be rejected, not misread.
	data, _ := os.ReadFile(path)
	data[len(data)-7] ^= 0x40
	os.WriteFile(path, data, 0o644)
	if _, ok, err := readCheckpointFile(path); ok || err == nil {
		t.Fatal("corrupt checkpoint accepted")
	}
}

func TestQueueDropsOldestWhenFull(t *testing.T) {
	q := newSubmitQueue(3)
	for i := 0; i < 5; i++ {
		q.push(triage.Input{FQDN: fmt.Sprintf("d%d.com", i)})
	}
	if got := q.dropped.Load(); got != 2 {
		t.Fatalf("dropped = %d, want 2", got)
	}
	var got []string
	for {
		in, ok := q.pop()
		if !ok {
			break
		}
		got = append(got, in.FQDN)
	}
	if strings.Join(got, " ") != "d2.com d3.com d4.com" {
		t.Fatalf("queue kept %v, want the 3 newest", got)
	}
}

func TestScanEmitsOnlyNewCandidates(t *testing.T) {
	dir := t.TempDir()
	w := newTestWatcher(t, dir)
	homograph := ace(t, "gооgle") + ".com"

	writeZone(t, w.cfg.ZonePath,
		"plain0.example",                           // ASCII, not a candidate: never emitted
		"xn--name0001.example",                     // candidate
		"XN--NAME0002.EXAMPLE.",                    // uppercase + root dot: normalizes
		"xn--rec3.example. 300 IN NS ns1.example.", // master-file record: owner field only
		homograph, // detects against "google"
		"; a comment line",
	)
	st, err := w.ScanOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.UpToDate || st.Resumed {
		t.Fatalf("first scan stats = %+v", st)
	}
	if st.Added != 4 || st.Detected != 1 {
		t.Fatalf("added=%d detected=%d, want 4/1", st.Added, st.Detected)
	}
	names := deltaNames(t, w.deltasPath())
	want := []string{"xn--name0001.example", "xn--name0002.example", "xn--rec3.example", homograph}
	if strings.Join(names, " ") != strings.Join(want, " ") {
		t.Fatalf("deltas = %v, want %v", names, want)
	}
	// The detected line carries reference and attribution columns.
	data, _ := os.ReadFile(w.deltasPath())
	var matched string
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(line, homograph+"\t") {
			matched = line
		}
	}
	if fields := strings.Split(matched, "\t"); len(fields) != 3 || fields[1] != "google.com" {
		t.Fatalf("detected delta line = %q", matched)
	}

	// Same zone again: the completion checkpoint proves it.
	st, err = w.ScanOnce(context.Background())
	if err != nil || !st.UpToDate {
		t.Fatalf("rescan = (%+v, %v), want up-to-date", st, err)
	}

	// A fresh process over the same state dir agrees.
	w2 := newTestWatcher(t, dir)
	st, err = w2.ScanOnce(context.Background())
	if err != nil || !st.UpToDate {
		t.Fatalf("fresh-process rescan = (%+v, %v), want up-to-date", st, err)
	}

	// Next generation: previous names (even respelled in upper case)
	// emit nothing; only the genuinely new name appears.
	writeZone(t, w2.cfg.ZonePath,
		"xn--name0001.example",
		"xn--name0002.example",
		"XN--REC3.EXAMPLE.",
		homograph,
		"xn--fresh.example",
	)
	st, err = w2.ScanOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Added != 1 {
		t.Fatalf("second generation added = %d, want 1", st.Added)
	}
	names = deltaNames(t, w2.deltasPath())
	assertNoDuplicates(t, names)
	if names[len(names)-1] != "xn--fresh.example" {
		t.Fatalf("deltas tail = %v", names)
	}
}

// abortCtx cancels itself after a fixed number of Err() polls — a
// deterministic stand-in for SIGKILL hitting the scan loop mid-zone
// (the scanner aborts cold: no flush, no checkpoint).
type abortCtx struct {
	context.Context
	budget int32
	polls  atomic.Int32
}

func (c *abortCtx) Err() error {
	if c.polls.Add(1) > c.budget {
		return context.Canceled
	}
	return nil
}

func bigZoneLines(n int) []string {
	lines := make([]string, 0, n)
	for i := 0; i < n; i++ {
		lines = append(lines, fmt.Sprintf("xn--host%05d.example", i))
	}
	return lines
}

func TestKillResumeByteIdentical(t *testing.T) {
	lines := bigZoneLines(3000)

	// Golden: one uninterrupted scan.
	goldDir := t.TempDir()
	gold := newTestWatcher(t, goldDir)
	writeZone(t, gold.cfg.ZonePath, lines...)
	if _, err := gold.ScanOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	goldBytes, err := os.ReadFile(gold.deltasPath())
	if err != nil {
		t.Fatal(err)
	}

	// Crash run: kill the scan cold several times mid-zone, resuming
	// with a fresh watcher (fresh process state) each time.
	crashDir := t.TempDir()
	mkWatcher := func() *Watcher {
		return newTestWatcher(t, crashDir, func(c *Config) { c.CheckpointEvery = 100 })
	}
	w := mkWatcher()
	writeZone(t, w.cfg.ZonePath, lines...)
	kills := 0
	for budget := int32(2); ; budget += 2 {
		st, err := w.ScanOnce(&abortCtx{Context: context.Background(), budget: budget})
		if err == nil {
			if kills < 2 {
				t.Fatalf("scan finished after only %d kills; raise zone size", kills)
			}
			if !st.Resumed {
				t.Fatal("final scan did not resume from a checkpoint")
			}
			break
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatal(err)
		}
		kills++
		w = mkWatcher()
	}

	crashBytes, err := os.ReadFile(w.deltasPath())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(goldBytes, crashBytes) {
		t.Fatalf("kill-resume deltas differ from uninterrupted run: %d vs %d bytes (%d kills)",
			len(crashBytes), len(goldBytes), kills)
	}

	// And the interrupted state dir converges: one more scan is a no-op.
	st, err := mkWatcher().ScanOnce(context.Background())
	if err != nil || !st.UpToDate {
		t.Fatalf("post-recovery rescan = (%+v, %v), want up-to-date", st, err)
	}
}

func TestCompletionIsIdempotent(t *testing.T) {
	// Reconstruct the crash window between the final active checkpoint
	// and the seen-set merge: deltas fully written, checkpoint at EOF,
	// no seen.set. The next scan must redo the merge without re-reading
	// names or re-emitting a byte.
	dir := t.TempDir()
	w := newTestWatcher(t, dir)
	writeZone(t, w.cfg.ZonePath, "xn--aa.example", "xn--bb.example")
	zoneBytes, _ := os.ReadFile(w.cfg.ZonePath)
	deltas := "xn--aa.example\nxn--bb.example\n"
	if err := os.WriteFile(w.deltasPath(), []byte(deltas), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := writeCheckpointFile(w.ckptPath(), checkpoint{
		ZoneSize:     int64(len(zoneBytes)),
		ZoneOff:      int64(len(zoneBytes)),
		PrefixCRC:    crc32.ChecksumIEEE(zoneBytes),
		ScanStartOut: 0,
		OutOff:       int64(len(deltas)),
		Emitted:      2,
	}); err != nil {
		t.Fatal(err)
	}

	st, err := w.ScanOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Lines != 0 || st.Added != 0 {
		t.Fatalf("completion replay scanned lines=%d added=%d, want 0/0", st.Lines, st.Added)
	}
	got, _ := os.ReadFile(w.deltasPath())
	if string(got) != deltas {
		t.Fatalf("deltas changed during completion replay: %q", got)
	}
	hashes, err := snapshot.ReadSeenSetFile(w.seenPath())
	if err != nil || len(hashes) != 2 {
		t.Fatalf("seen-set after replay = (%d entries, %v), want 2", len(hashes), err)
	}
	if st, err := w.ScanOnce(context.Background()); err != nil || !st.UpToDate {
		t.Fatalf("rescan = (%+v, %v), want up-to-date", st, err)
	}
}

func TestCorruptSeenSetRefusedThenRecovered(t *testing.T) {
	dir := t.TempDir()
	w := newTestWatcher(t, dir)
	writeZone(t, w.cfg.ZonePath, "xn--aa.example", "xn--bb.example")
	if _, err := w.ScanOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	healthy, err := os.ReadFile(w.seenPath())
	if err != nil {
		t.Fatal(err)
	}
	deltasBefore, _ := os.ReadFile(w.deltasPath())

	// Corrupt the durable set; a fresh process must refuse to scan —
	// silently re-emitting the whole zone is the one forbidden failure.
	bad := append([]byte(nil), healthy...)
	bad[len(bad)/2] ^= 0x01
	os.WriteFile(w.seenPath(), bad, 0o644)

	w2 := newTestWatcher(t, dir)
	if _, err := w2.ScanOnce(context.Background()); !errors.Is(err, ErrSeenSet) {
		t.Fatalf("scan over corrupt seen-set = %v, want ErrSeenSet", err)
	}
	if after, _ := os.ReadFile(w2.deltasPath()); !bytes.Equal(after, deltasBefore) {
		t.Fatal("refused scan still touched the deltas file")
	}

	// Operator restores the file: the same watcher recovers in place.
	os.WriteFile(w2.seenPath(), healthy, 0o644)
	writeZone(t, w2.cfg.ZonePath, "xn--aa.example", "xn--bb.example", "xn--cc.example")
	st, err := w2.ScanOnce(context.Background())
	if err != nil || st.Added != 1 {
		t.Fatalf("post-restore scan = (%+v, %v), want 1 addition", st, err)
	}
	assertNoDuplicates(t, deltaNames(t, w2.deltasPath()))
}

func TestTruncatedZoneRefused(t *testing.T) {
	dir := t.TempDir()
	w := newTestWatcher(t, dir)
	writeZone(t, w.cfg.ZonePath, bigZoneLines(100)...)
	if _, err := w.ScanOnce(context.Background()); err != nil {
		t.Fatal(err)
	}

	// A 10%-sized drop is a truncated upload, not a delta. A fresh
	// process must infer the guard from the checkpoint alone.
	writeZone(t, w.cfg.ZonePath, bigZoneLines(10)...)
	w2 := newTestWatcher(t, dir)
	if _, err := w2.ScanOnce(context.Background()); !errors.Is(err, ErrZoneTruncated) {
		t.Fatalf("truncated zone scan = %v, want ErrZoneTruncated", err)
	}

	// The real drop lands: scanning resumes, no duplicates.
	writeZone(t, w2.cfg.ZonePath, bigZoneLines(110)...)
	st, err := w2.ScanOnce(context.Background())
	if err != nil || st.Added != 10 {
		t.Fatalf("recovered scan = (%+v, %v), want 10 additions", st, err)
	}
	assertNoDuplicates(t, deltaNames(t, w2.deltasPath()))
}

func TestZoneRollbackEmitsNothing(t *testing.T) {
	dir := t.TempDir()
	w := newTestWatcher(t, dir)
	v1 := bigZoneLines(80)
	writeZone(t, w.cfg.ZonePath, v1...)
	if _, err := w.ScanOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	writeZone(t, w.cfg.ZonePath, bigZoneLines(100)...)
	if _, err := w.ScanOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	before, _ := os.ReadFile(w.deltasPath())

	// The registry republishes yesterday's zone: every name is already
	// seen, so the scan completes with zero emissions.
	writeZone(t, w.cfg.ZonePath, v1...)
	st, err := w.ScanOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Added != 0 {
		t.Fatalf("rollback scan added %d names", st.Added)
	}
	if after, _ := os.ReadFile(w.deltasPath()); !bytes.Equal(before, after) {
		t.Fatal("rollback scan modified the deltas file")
	}
}

func TestCorruptCheckpointRecoversWithoutDuplicates(t *testing.T) {
	dir := t.TempDir()
	w := newTestWatcher(t, dir)
	writeZone(t, w.cfg.ZonePath, bigZoneLines(50)...)
	if _, err := w.ScanOnce(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Scribble the checkpoint. The journal and seen-set are intact, so
	// a fresh process falls back to a conservative full rescan that
	// emits only the genuinely new names.
	if err := os.WriteFile(w.ckptPath(), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	writeZone(t, w.cfg.ZonePath, bigZoneLines(60)...)
	var logged bool
	w2 := newTestWatcher(t, dir, func(c *Config) {
		c.Logf = func(string, ...any) { logged = true }
	})
	st, err := w2.ScanOnce(context.Background())
	if err != nil || st.Added != 10 {
		t.Fatalf("scan after checkpoint loss = (%+v, %v), want 10 additions", st, err)
	}
	if !logged {
		t.Error("discarded checkpoint was not logged")
	}
	names := deltaNames(t, w2.deltasPath())
	assertNoDuplicates(t, names)
	if len(names) != 60 {
		t.Fatalf("total deltas = %d, want 60", len(names))
	}
}
