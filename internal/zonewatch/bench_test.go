package zonewatch

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/snapshot"
)

// BenchmarkDeltaScan measures the full delta-ingestion path — read,
// normalize, fingerprint, dedup, detect, emit, checkpoint — over a
// fresh 100k-line zone, reporting throughput as lines/s.
func BenchmarkDeltaScan(b *testing.B) {
	const lines = 100_000
	dir := b.TempDir()
	zonePath := filepath.Join(dir, "zone.txt")
	var sb strings.Builder
	for i := 0; i < lines; i++ {
		fmt.Fprintf(&sb, "xn--host%06d.example\n", i)
	}
	if err := os.WriteFile(zonePath, []byte(sb.String()), 0o644); err != nil {
		b.Fatal(err)
	}
	engine := testEngine(b)

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		w, err := New(Config{
			ZonePath: zonePath,
			StateDir: filepath.Join(dir, fmt.Sprintf("state%d", i)),
			Engine:   engine,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := w.ScanOnce(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(lines)*float64(b.N)/b.Elapsed().Seconds(), "lines/s")
}

// BenchmarkSeenSetLoad measures the durable seen-set's cold-load cost —
// the startup tax of every watch process — over a 1M-fingerprint set,
// reporting it in milliseconds per load.
func BenchmarkSeenSetLoad(b *testing.B) {
	const n = 1_000_000
	hashes := make([]uint64, n)
	for i := range hashes {
		hashes[i] = uint64(i)*2654435761 + 1 // strictly increasing
	}
	path := filepath.Join(b.TempDir(), "seen.set")
	if err := snapshot.WriteSeenSetFile(path, hashes); err != nil {
		b.Fatal(err)
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := snapshot.ReadSeenSetFile(path)
		if err != nil || len(got) != n {
			b.Fatalf("load = (%d, %v)", len(got), err)
		}
	}
	b.ReportMetric(b.Elapsed().Seconds()*1000/float64(b.N), "ms/load")
}
