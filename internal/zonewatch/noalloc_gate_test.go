package zonewatch

import (
	"bufio"
	"io"
	"testing"

	"repro/internal/lint"
)

// TestNoallocGate covers this package's //shamlint:noalloc functions:
// the per-line field splitter and the delta emitter's miss path (a
// non-matching name, the overwhelmingly common case) must not allocate.
func TestNoallocGate(t *testing.T) {
	line := []byte("  www.example.com. 300 IN A 192.0.2.1")
	name := []byte("www.example.com")
	bw := bufio.NewWriter(io.Discard)
	var fieldSink []byte

	lint.CheckNoallocCoverage(t, ".", map[string]func(){
		"firstField": func() {
			fieldSink = firstField(line)
		},
		"writeDeltaLine": func() {
			bw.Reset(io.Discard)
			if _, err := writeDeltaLine(bw, name, nil); err != nil {
				panic(err)
			}
		},
	})
	_ = fieldSink
}
