package zonewatch

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/triage"
)

// SurveyBatcher turns the zone watcher's deltas journal into survey
// jobs: it tails the journal, accumulates the detected homographs, and
// cuts a survey submission whenever the batch grows big enough or old
// enough. Each submission names the exact journal byte span it covers,
// which the job store records in the job's manifest — so a restarted
// watcher asks the store how far coverage reaches and resumes tailing
// from there: no delta is ever surveyed twice, none is orphaned. Spans
// between submissions that carried no detected names are re-read
// harmlessly on restart (they produce no inputs).
//
// The batcher tolerates the watcher's own crash recovery: a resumed
// scan truncates the journal to its checkpoint offset and re-emits the
// dropped lines byte-identically, so a journal momentarily shorter
// than the cursor means "wait", never "error".
type SurveyBatcherConfig struct {
	// JournalPath is the deltas journal to tail (required).
	JournalPath string
	// Submit cuts one survey job over inputs covering journal bytes
	// [from, to); queried counts the delta lines consumed (required).
	// An error keeps the batch pending for the next tick.
	Submit func(inputs []triage.Input, queried int, from, to int64) (string, error)

	// MaxBatch cuts a batch at this many detected inputs (default 256).
	MaxBatch int
	// MaxAge cuts a non-empty batch this long after its first input
	// arrived, so a quiet zone still surveys its stragglers promptly
	// (default 30s).
	MaxAge time.Duration
	// Interval is the journal polling cadence (default 2s).
	Interval time.Duration
	// Cursor is the restart position — the furthest journal offset any
	// existing job manifest covers (jobstore.MaxJournalTo).
	Cursor int64
	// DeadLetterPath, when set, is replayed into the next cut: items a
	// one-shot DrainProbes abandoned are merged (deduped) into the next
	// batch and the file is truncated after a successful submission.
	DeadLetterPath string
	// Logf receives operational log lines; nil discards them.
	Logf func(format string, args ...any)
}

// SurveyBatcher tails one deltas journal. Run is not safe for
// concurrent calls; Lag and the counters are safe from any goroutine.
type SurveyBatcher struct {
	cfg SurveyBatcherConfig

	mu           sync.Mutex
	cursor       int64 // next unread journal byte
	spanStart    int64 // start of the span the pending batch covers
	pending      []triage.Input
	pendingFQDNs map[string]bool
	pendingLines int
	firstAt      time.Time

	batches      atomic.Uint64
	inputsTotal  atomic.Uint64
	submitErrors atomic.Uint64
	pollErrors   atomic.Uint64
	coveredTo    atomic.Int64
	journalSize  atomic.Int64
}

// NewSurveyBatcher validates cfg.
func NewSurveyBatcher(cfg SurveyBatcherConfig) (*SurveyBatcher, error) {
	if cfg.JournalPath == "" {
		return nil, errors.New("zonewatch: batcher JournalPath required")
	}
	if cfg.Submit == nil {
		return nil, errors.New("zonewatch: batcher Submit required")
	}
	b := &SurveyBatcher{cfg: cfg, cursor: cfg.Cursor, spanStart: cfg.Cursor}
	b.coveredTo.Store(cfg.Cursor)
	return b, nil
}

func (b *SurveyBatcher) maxBatch() int {
	if b.cfg.MaxBatch > 0 {
		return b.cfg.MaxBatch
	}
	return 256
}

func (b *SurveyBatcher) maxAge() time.Duration {
	if b.cfg.MaxAge > 0 {
		return b.cfg.MaxAge
	}
	return 30 * time.Second
}

func (b *SurveyBatcher) interval() time.Duration {
	if b.cfg.Interval > 0 {
		return b.cfg.Interval
	}
	return 2 * time.Second
}

func (b *SurveyBatcher) logf(format string, args ...any) {
	if b.cfg.Logf != nil {
		b.cfg.Logf(format, args...)
	}
}

// Lag reports how many journal bytes no submitted survey job covers
// yet — the /metrics ingestion-lag gauge. Safe from any goroutine.
func (b *SurveyBatcher) Lag() int64 {
	lag := b.journalSize.Load() - b.coveredTo.Load()
	if lag < 0 {
		// The watcher truncated the journal for a checkpoint resume; the
		// missing bytes are about to be rewritten identically.
		return 0
	}
	return lag
}

// Batches returns how many survey jobs this batcher has cut.
func (b *SurveyBatcher) Batches() uint64 { return b.batches.Load() }

// Run tails the journal until ctx is cancelled, cutting batches at the
// size/age thresholds. On the way out it makes one final attempt to
// cut whatever is pending, so a graceful shutdown strands nothing.
func (b *SurveyBatcher) Run(ctx context.Context) error {
	for {
		if err := ctx.Err(); err != nil {
			b.finalCut()
			return err
		}
		b.Tick(ctx)
		if err := sleepCtx(ctx, b.interval()); err != nil {
			b.finalCut()
			return err
		}
	}
}

// Tick is one poll-and-maybe-cut step, exposed for one-shot use
// (`watch-zone -once`) and tests.
func (b *SurveyBatcher) Tick(ctx context.Context) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err := b.pollLocked(); err != nil {
		b.pollErrors.Add(1)
		b.logf("zonewatch: batcher poll: %v", err)
	}
	if len(b.pending) == 0 && b.deadLetterEmpty() {
		return
	}
	if len(b.pending) >= b.maxBatch() ||
		(len(b.pending) > 0 && time.Since(b.firstAt) >= b.maxAge()) ||
		(len(b.pending) == 0 && !b.deadLetterEmpty()) {
		b.cutLocked()
	}
}

// Flush cuts any pending batch immediately, regardless of thresholds.
func (b *SurveyBatcher) Flush() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.pending) > 0 || !b.deadLetterEmpty() || b.cursor > b.spanStart {
		b.cutLocked()
	}
}

func (b *SurveyBatcher) finalCut() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.pending) > 0 || !b.deadLetterEmpty() {
		b.cutLocked()
	}
}

// pollLocked reads every complete journal line in [cursor, EOF) into
// the pending batch.
func (b *SurveyBatcher) pollLocked() error {
	f, err := os.Open(b.cfg.JournalPath)
	if err != nil {
		if os.IsNotExist(err) {
			return nil // the watcher has not emitted anything yet
		}
		return err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return err
	}
	size := fi.Size()
	b.journalSize.Store(size)
	if size <= b.cursor {
		// Shorter than the cursor: the watcher is mid checkpoint-resume,
		// truncating and byte-identically rewriting. Equal: nothing new.
		return nil
	}
	end, err := completeLineEnd(f, b.cursor, size)
	if err != nil {
		return err
	}
	if end <= b.cursor {
		return nil
	}
	r := bufio.NewReaderSize(io.NewSectionReader(f, b.cursor, end-b.cursor), 1<<16)
	for {
		line, err := r.ReadBytes('\n')
		if len(bytes.TrimRight(line, "\r\n")) > 0 {
			b.pendingLines++
			if in, detected := parseDeltaLine(line); detected {
				b.addPending(in)
			}
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
	}
	b.cursor = end
	return nil
}

func (b *SurveyBatcher) addPending(in triage.Input) {
	if b.pendingFQDNs == nil {
		b.pendingFQDNs = make(map[string]bool)
	}
	if b.pendingFQDNs[in.FQDN] {
		return
	}
	b.pendingFQDNs[in.FQDN] = true
	if len(b.pending) == 0 {
		b.firstAt = time.Now()
	}
	b.pending = append(b.pending, in)
}

// cutLocked submits the pending batch — dead-letter replays merged in
// front — covering journal bytes [spanStart, cursor). On success the
// span advances; on error everything stays pending for the next tick.
func (b *SurveyBatcher) cutLocked() {
	dead, haveDL := b.readDeadLetter()
	inputs := make([]triage.Input, 0, len(dead)+len(b.pending))
	seen := make(map[string]bool, len(dead)+len(b.pending))
	for _, in := range append(dead, b.pending...) {
		if !seen[in.FQDN] {
			seen[in.FQDN] = true
			inputs = append(inputs, in)
		}
	}
	if len(inputs) == 0 {
		// A span of purely non-detected deltas: nothing to survey, and no
		// manifest will cover it. A restart re-reads it harmlessly.
		b.resetPendingLocked()
		return
	}
	queried := b.pendingLines + len(dead)
	id, err := b.cfg.Submit(inputs, queried, b.spanStart, b.cursor)
	if err != nil {
		b.submitErrors.Add(1)
		b.logf("zonewatch: batch submit failed (kept pending): %v", err)
		return
	}
	b.batches.Add(1)
	b.inputsTotal.Add(uint64(len(inputs)))
	b.coveredTo.Store(b.cursor)
	b.logf("zonewatch: batch %s: %d homographs over journal [%d,%d) (%d retried)",
		id, len(inputs), b.spanStart, b.cursor, len(dead))
	if haveDL {
		if err := os.Truncate(b.cfg.DeadLetterPath, 0); err != nil && !os.IsNotExist(err) {
			b.logf("zonewatch: truncating dead-letter: %v", err)
		}
	}
	b.resetPendingLocked()
}

func (b *SurveyBatcher) resetPendingLocked() {
	b.spanStart = b.cursor
	b.pending = nil
	b.pendingFQDNs = nil
	b.pendingLines = 0
}

func (b *SurveyBatcher) deadLetterEmpty() bool {
	if b.cfg.DeadLetterPath == "" {
		return true
	}
	fi, err := os.Stat(b.cfg.DeadLetterPath)
	return err != nil || fi.Size() == 0
}

// readDeadLetter loads abandoned probe items for replay. The file is
// truncated only after the batch that carries them lands.
func (b *SurveyBatcher) readDeadLetter() ([]triage.Input, bool) {
	if b.cfg.DeadLetterPath == "" {
		return nil, false
	}
	data, err := os.ReadFile(b.cfg.DeadLetterPath)
	if err != nil || len(data) == 0 {
		return nil, false
	}
	var out []triage.Input
	for _, line := range bytes.Split(data, []byte("\n")) {
		if in, ok := parseMatchLine(line); ok {
			out = append(out, in)
		}
	}
	return out, true
}

// parseDeltaLine decodes one journal line. Only detected lines (fqdn
// TAB imitated TAB source) yield an input; bare additions are zone
// noise the surveys skip.
func parseDeltaLine(line []byte) (triage.Input, bool) {
	fields := bytes.Split(bytes.TrimRight(line, "\r\n"), []byte("\t"))
	if len(fields) < 3 || len(fields[0]) == 0 {
		return triage.Input{}, false
	}
	return triage.Input{
		FQDN:      string(fields[0]),
		Reference: string(fields[1]),
		Source:    string(fields[2]),
	}, true
}

// parseMatchLine decodes a dead-letter (match-file format) line: a
// bare FQDN or the full three-field form.
func parseMatchLine(line []byte) (triage.Input, bool) {
	fields := bytes.Split(bytes.TrimRight(line, "\r\n"), []byte("\t"))
	if len(fields) == 0 || len(fields[0]) == 0 {
		return triage.Input{}, false
	}
	in := triage.Input{FQDN: string(fields[0])}
	if len(fields) >= 3 {
		in.Reference, in.Source = string(fields[1]), string(fields[2])
	}
	return in, true
}

// appendDeadLetter records one abandoned probe item for a later batch
// to retry, in the match-file format the batcher replays. The append
// is fsynced and the Close error checked: a dead letter that never
// reached disk is a probe silently lost, the exact failure this file
// exists to prevent.
func appendDeadLetter(path string, in triage.Input) (retErr error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && retErr == nil {
			retErr = cerr
		}
	}()
	if in.Reference == "" && in.Source == "" {
		_, err = fmt.Fprintf(f, "%s\n", in.FQDN)
	} else {
		_, err = fmt.Fprintf(f, "%s\t%s\t%s\n", in.FQDN, in.Reference, in.Source)
	}
	if err != nil {
		return err
	}
	return f.Sync()
}
