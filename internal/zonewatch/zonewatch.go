package zonewatch

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/resilience"
	"repro/internal/triage"
)

// Config parameterizes a Watcher.
type Config struct {
	// ZonePath is the zone file to watch (required).
	ZonePath string
	// StateDir holds the durable state: seen.set, seen.set.bak and
	// watch.ckpt (required; created if missing).
	StateDir string
	// DeltasPath is the append-only output of added FQDNs. Defaults to
	// StateDir/deltas.out.
	DeltasPath string
	// Engine supplies detection; hot-swappable underneath the watch
	// (required).
	Engine *core.Engine

	// Interval is the zone polling cadence (default 10s).
	Interval time.Duration
	// CheckpointEvery is the number of zone lines between durable
	// checkpoints (default 65536).
	CheckpointEvery int64
	// ThrottleLPS caps scanning at this many zone lines per second;
	// 0 means unthrottled. Exists so crash-drills can kill a scan at a
	// predictable point.
	ThrottleLPS int
	// MinZoneFraction is the shrink guard: a zone smaller than this
	// fraction of the last completed generation is refused as truncated
	// (default 0.5).
	MinZoneFraction float64

	// Probe, when set, receives every detected addition (after dedup)
	// from a background submitter goroutine. Unhealthy probing never
	// blocks detection: submissions queue up to QueueCap and the oldest
	// are dropped, counted, once full.
	Probe func(ctx context.Context, in triage.Input) error
	// QueueCap bounds the submission queue (default 1024).
	QueueCap int
	// ProbeRetry spaces the attempts of each individual submission.
	ProbeRetry resilience.RetryPolicy
	// DeadLetterPath is where DrainProbes records the items it gives up
	// on (breaker open, retries exhausted, shutdown), in the match-file
	// format; a survey batcher replays the file into its next batch, so
	// giving up defers a probe instead of losing it. Defaults to
	// StateDir/probe.deadletter; set "-" to disable.
	DeadLetterPath string

	// Backoff widens the poll cadence while the zone path is failing.
	// The zero value is the resilience default (100ms base, 30s cap,
	// full jitter).
	Backoff resilience.Backoff
	// ZoneBreaker and ProbeBreaker, when non-nil, replace the default
	// health state machines (zero-value resilience.Breaker semantics).
	ZoneBreaker  *resilience.Breaker
	ProbeBreaker *resilience.Breaker

	// Logf receives operational log lines; nil discards them.
	Logf func(format string, args ...any)
}

// Watcher is the continuous zone watch: a poll loop that detects new
// zone generations, streams their added FQDNs through detection into a
// deltas journal, and keeps running — degraded, visibly — through
// missing zones, truncated drops, corrupt state and downstream outages.
// One Watcher owns its state directory; methods other than Health are
// not safe for concurrent use.
type Watcher struct {
	cfg          Config
	zoneBreaker  *resilience.Breaker
	probeBreaker *resilience.Breaker
	queue        *submitQueue

	// Scan-goroutine state.
	seen         *seenSet
	lastZoneSize int64
	genSize      int64
	genMod       time.Time
	haveGen      bool

	// Counters, readable from any goroutine via Health.
	scans          atomic.Uint64
	scanErrors     atomic.Uint64
	watchErrors    atomic.Uint64
	linesTotal     atomic.Uint64
	namesTotal     atomic.Uint64
	addedTotal     atomic.Uint64
	detectedTotal  atomic.Uint64
	submitted      atomic.Uint64
	submitFailures atomic.Uint64
	deadLettered   atomic.Uint64
	lastScanUnix   atomic.Int64
	seenSize       atomic.Int64
	seenLoadMicros atomic.Int64
}

// New validates the config and prepares the state directory.
func New(cfg Config) (*Watcher, error) {
	if cfg.ZonePath == "" {
		return nil, errors.New("zonewatch: ZonePath required")
	}
	if cfg.StateDir == "" {
		return nil, errors.New("zonewatch: StateDir required")
	}
	if cfg.Engine == nil {
		return nil, errors.New("zonewatch: Engine required")
	}
	if err := os.MkdirAll(cfg.StateDir, 0o755); err != nil {
		return nil, fmt.Errorf("zonewatch: state dir: %w", err)
	}
	w := &Watcher{cfg: cfg, zoneBreaker: cfg.ZoneBreaker, probeBreaker: cfg.ProbeBreaker}
	if w.zoneBreaker == nil {
		w.zoneBreaker = &resilience.Breaker{}
	}
	if w.probeBreaker == nil {
		w.probeBreaker = &resilience.Breaker{}
	}
	if cfg.Probe != nil {
		cap := cfg.QueueCap
		if cap <= 0 {
			cap = 1024
		}
		w.queue = newSubmitQueue(cap)
	}
	return w, nil
}

func (w *Watcher) seenPath() string { return filepath.Join(w.cfg.StateDir, "seen.set") }
func (w *Watcher) ckptPath() string { return filepath.Join(w.cfg.StateDir, "watch.ckpt") }

// DeadLetterPath is where abandoned probe submissions are parked for a
// batcher to retry; empty means dead-lettering is disabled.
func (w *Watcher) DeadLetterPath() string {
	switch w.cfg.DeadLetterPath {
	case "":
		return filepath.Join(w.cfg.StateDir, "probe.deadletter")
	case "-":
		return ""
	}
	return w.cfg.DeadLetterPath
}
func (w *Watcher) deltasPath() string {
	if w.cfg.DeltasPath != "" {
		return w.cfg.DeltasPath
	}
	return filepath.Join(w.cfg.StateDir, "deltas.out")
}

func (w *Watcher) interval() time.Duration {
	if w.cfg.Interval <= 0 {
		return 10 * time.Second
	}
	return w.cfg.Interval
}

func (w *Watcher) checkpointEvery() int64 {
	if w.cfg.CheckpointEvery <= 0 {
		return 65536
	}
	return w.cfg.CheckpointEvery
}

func (w *Watcher) minZoneFraction() float64 {
	if w.cfg.MinZoneFraction <= 0 || w.cfg.MinZoneFraction >= 1 {
		return 0.5
	}
	return w.cfg.MinZoneFraction
}

func (w *Watcher) logf(format string, args ...any) {
	if w.cfg.Logf != nil {
		w.cfg.Logf(format, args...)
	}
}

// Run polls the zone until ctx is cancelled, scanning each new
// generation as it appears. Failures — missing zone, truncated drop,
// corrupt seen-set — log once per streak, feed the health breaker, and
// widen the poll cadence with jittered backoff; the loop itself never
// exits on them. If a Probe is configured, Run also owns the submitter
// goroutine and waits for it on the way out.
func (w *Watcher) Run(ctx context.Context) error {
	var wg sync.WaitGroup
	if w.cfg.Probe != nil {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.submitLoop(ctx)
		}()
	}
	defer wg.Wait()

	failStreak := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		if !w.zoneBreaker.Allow() {
			// Open breaker: hold the poll until the next admitted probe.
			if err := sleepCtx(ctx, w.interval()); err != nil {
				return err
			}
			continue
		}
		err := w.tick(ctx)
		switch {
		case err == nil:
			if failStreak > 0 {
				w.logf("zonewatch: recovered after %d consecutive failures", failStreak)
				failStreak = 0
			}
			w.zoneBreaker.Success()
			if err := sleepCtx(ctx, w.interval()); err != nil {
				return err
			}
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			return err
		default:
			w.watchErrors.Add(1)
			w.zoneBreaker.Failure()
			if failStreak == 0 {
				w.logf("zonewatch: %v (health %s; retrying with backoff)", err, w.zoneBreaker.State())
			}
			failStreak++
			if err := w.cfg.Backoff.Sleep(ctx, failStreak-1); err != nil {
				return err
			}
		}
	}
}

// tick is one poll: stat the zone path, and scan if the (size, mtime)
// generation differs from the last one scanned to completion.
func (w *Watcher) tick(ctx context.Context) error {
	fi, err := os.Stat(w.cfg.ZonePath)
	if err != nil {
		return fmt.Errorf("zone poll: %w", err)
	}
	if w.haveGen && fi.Size() == w.genSize && fi.ModTime().Equal(w.genMod) {
		return nil
	}
	if _, err := w.ScanOnce(ctx); err != nil {
		return err
	}
	// Record the pre-scan stat: if the file was replaced mid-scan the
	// next poll sees a newer (size, mtime) and rescans.
	w.genSize, w.genMod, w.haveGen = fi.Size(), fi.ModTime(), true
	return nil
}

// DrainProbes synchronously submits every queued detection, for one-shot
// scans that run without the background submitter. Retries each item
// under the probe policy; gives up on an item (counting it) once the
// breaker opens, so a dead resolver cannot wedge a one-shot run. Every
// item given up on — breaker open, retries exhausted, or shutdown
// mid-drain — is appended to the dead-letter file, where the next
// survey batch submission retries it; giving up defers the probe, it
// never silently loses it.
func (w *Watcher) DrainProbes(ctx context.Context) {
	if w.queue == nil || w.cfg.Probe == nil {
		return
	}
	for {
		in, ok := w.queue.pop()
		if !ok {
			return
		}
		if !w.probeBreaker.Allow() {
			w.abandonProbe(in)
			continue
		}
		err := resilience.Retry(ctx, w.cfg.ProbeRetry, func(c context.Context) error {
			return w.cfg.Probe(c, in)
		})
		if err != nil {
			w.probeBreaker.Failure()
			w.abandonProbe(in)
			if ctx.Err() != nil {
				// Shutdown: dead-letter the rest of the queue too.
				for {
					rest, ok := w.queue.pop()
					if !ok {
						return
					}
					w.abandonProbe(rest)
				}
			}
			continue
		}
		w.probeBreaker.Success()
		w.submitted.Add(1)
	}
}

// abandonProbe counts one given-up submission and parks it in the
// dead-letter file.
func (w *Watcher) abandonProbe(in triage.Input) {
	w.submitFailures.Add(1)
	path := w.DeadLetterPath()
	if path == "" {
		return
	}
	if err := appendDeadLetter(path, in); err != nil {
		w.logf("zonewatch: dead-letter append: %v", err)
		return
	}
	w.deadLettered.Add(1)
}

// submitLoop drains the submission queue in the background. A failing
// probe target degrades and eventually opens the probe breaker, at
// which point the loop idles — admitting one probe per cooldown — while
// detection keeps queueing; the queue bounds memory by dropping its
// oldest entries.
func (w *Watcher) submitLoop(ctx context.Context) {
	for {
		in, ok := w.queue.pop()
		if !ok {
			select {
			case <-ctx.Done():
				return
			case <-w.queue.notify:
				continue
			}
		}
		for !w.probeBreaker.Allow() {
			if sleepCtx(ctx, 250*time.Millisecond) != nil {
				w.queue.pushFront(in)
				return
			}
		}
		err := resilience.Retry(ctx, w.cfg.ProbeRetry, func(c context.Context) error {
			return w.cfg.Probe(c, in)
		})
		if err != nil {
			w.queue.pushFront(in)
			if ctx.Err() != nil {
				return
			}
			w.probeBreaker.Failure()
			w.submitFailures.Add(1)
			if sleepCtx(ctx, 250*time.Millisecond) != nil {
				return
			}
			continue
		}
		w.probeBreaker.Success()
		w.submitted.Add(1)
	}
}

// Health is the watcher's point-in-time operational snapshot, shaped
// for /metrics and the -status view.
type Health struct {
	// State is the worst of the zone and probe breaker states.
	State string                   `json:"state"`
	Zone  resilience.BreakerStats  `json:"zone_breaker"`
	Probe *resilience.BreakerStats `json:"probe_breaker,omitempty"`

	Scans       uint64 `json:"scans"`
	ScanErrors  uint64 `json:"scan_errors"`
	WatchErrors uint64 `json:"watch_errors"`
	// LastScanUnix is the completion time of the last successful scan.
	LastScanUnix int64 `json:"last_scan_unix,omitempty"`

	Lines    uint64 `json:"zone_lines"`
	Names    uint64 `json:"zone_names"`
	Added    uint64 `json:"deltas_emitted"`
	Detected uint64 `json:"deltas_detected"`

	ProbesSubmitted uint64 `json:"probes_submitted"`
	ProbeFailures   uint64 `json:"probe_failures"`
	// ProbesDeadLettered counts abandoned submissions parked in the
	// dead-letter file for a survey batch to retry.
	ProbesDeadLettered uint64 `json:"probes_dead_lettered,omitempty"`
	QueueLen           int    `json:"queue_len"`
	QueueDropped       uint64 `json:"queue_dropped"`

	SeenSize       int64   `json:"seen_size"`
	SeenLoadMillis float64 `json:"seen_load_ms"`
}

// Health snapshots the watcher. Safe from any goroutine.
func (w *Watcher) Health() Health {
	h := Health{
		State:          w.zoneBreaker.State().String(),
		Zone:           w.zoneBreaker.Stats(),
		Scans:          w.scans.Load(),
		ScanErrors:     w.scanErrors.Load(),
		WatchErrors:    w.watchErrors.Load(),
		LastScanUnix:   w.lastScanUnix.Load(),
		Lines:          w.linesTotal.Load(),
		Names:          w.namesTotal.Load(),
		Added:          w.addedTotal.Load(),
		Detected:       w.detectedTotal.Load(),
		SeenSize:       w.seenSize.Load(),
		SeenLoadMillis: float64(w.seenLoadMicros.Load()) / 1000,
	}
	worst := w.zoneBreaker.State()
	if w.cfg.Probe != nil {
		ps := w.probeBreaker.Stats()
		h.Probe = &ps
		h.ProbesSubmitted = w.submitted.Load()
		h.ProbeFailures = w.submitFailures.Load()
		h.ProbesDeadLettered = w.deadLettered.Load()
		h.QueueLen = w.queue.len()
		h.QueueDropped = w.queue.dropped.Load()
		if s := w.probeBreaker.State(); s > worst {
			worst = s
		}
	}
	h.State = worst.String()
	return h
}

// submitQueue is the bounded detection→probe handoff. Push never
// blocks: at capacity the oldest entry is dropped and counted, so a
// long downstream outage costs visibility into the oldest detections,
// never memory or detection throughput.
type submitQueue struct {
	mu      sync.Mutex
	items   []triage.Input
	cap     int
	dropped atomic.Uint64
	notify  chan struct{}
}

func newSubmitQueue(cap int) *submitQueue {
	return &submitQueue{cap: cap, notify: make(chan struct{}, 1)}
}

func (q *submitQueue) push(in triage.Input) {
	q.mu.Lock()
	if len(q.items) >= q.cap {
		q.items = q.items[1:]
		q.dropped.Add(1)
	}
	q.items = append(q.items, in)
	q.mu.Unlock()
	select {
	case q.notify <- struct{}{}:
	default:
	}
}

// pushFront re-queues an item at the head (the retry path). It may
// briefly exceed cap — the head item is the oldest and must not drop
// itself.
func (q *submitQueue) pushFront(in triage.Input) {
	q.mu.Lock()
	q.items = append([]triage.Input{in}, q.items...)
	q.mu.Unlock()
}

func (q *submitQueue) pop() (triage.Input, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.items) == 0 {
		return triage.Input{}, false
	}
	in := q.items[0]
	q.items = q.items[1:]
	return in, true
}

func (q *submitQueue) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
