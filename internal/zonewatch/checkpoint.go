package zonewatch

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"repro/internal/snapshot"
)

// The scan checkpoint. It is deliberately tiny — offsets and a prefix
// CRC, never data — because the deltas file it points into is the real
// journal. PrefixCRC covers every zone byte in [0, ZoneOff): a resume
// re-reads that prefix and must reproduce the CRC exactly before it
// trusts the offset, so a zone that was replaced, truncated or edited
// under an interrupted scan can never be silently continued at a
// meaningless position. Checkpoints are written through the snapshot
// layer's atomic temp-file + fsync + rename, so a crash mid-write
// leaves the previous checkpoint intact.

const (
	ckptMagic   = "SHAMCKPT"
	ckptVersion = 1
	// magic + version u32 + complete u8 + zoneSize i64 + zoneOff i64 +
	// prefixCRC u32 + scanStartOut i64 + outOff i64 + emitted u64
	ckptBodySize = len(ckptMagic) + 4 + 1 + 8 + 8 + 4 + 8 + 8 + 8
	ckptFileSize = ckptBodySize + 4 // + trailing CRC
)

type checkpoint struct {
	// Complete marks a finished generation: the zone described by
	// ZoneSize/PrefixCRC has been fully scanned and its additions merged
	// into the durable seen-set.
	Complete bool
	// ZoneSize is the zone file's size when the scan opened it.
	ZoneSize int64
	// ZoneOff is the number of zone bytes fully consumed (always a line
	// boundary).
	ZoneOff int64
	// PrefixCRC is the CRC-32 (IEEE) over zone bytes [0, ZoneOff).
	PrefixCRC uint32
	// ScanStartOut is the deltas-file size when this scan started; the
	// session's own emissions live in [ScanStartOut, OutOff).
	ScanStartOut int64
	// OutOff is the deltas-file offset covering every fully-written
	// delta line so far.
	OutOff int64
	// Emitted counts delta lines emitted by this scan, for stats.
	Emitted uint64
}

func (c checkpoint) marshal() []byte {
	buf := make([]byte, 0, ckptFileSize)
	buf = append(buf, ckptMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, ckptVersion)
	if c.Complete {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.LittleEndian.AppendUint64(buf, uint64(c.ZoneSize))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(c.ZoneOff))
	buf = binary.LittleEndian.AppendUint32(buf, c.PrefixCRC)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(c.ScanStartOut))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(c.OutOff))
	buf = binary.LittleEndian.AppendUint64(buf, c.Emitted)
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
}

func unmarshalCheckpoint(data []byte) (checkpoint, error) {
	var c checkpoint
	if len(data) != ckptFileSize {
		return c, fmt.Errorf("zonewatch: checkpoint of %d bytes, want %d", len(data), ckptFileSize)
	}
	if string(data[:len(ckptMagic)]) != ckptMagic {
		return c, fmt.Errorf("zonewatch: not a checkpoint file")
	}
	sum := binary.LittleEndian.Uint32(data[ckptBodySize:])
	if got := crc32.ChecksumIEEE(data[:ckptBodySize]); got != sum {
		return c, fmt.Errorf("zonewatch: checkpoint crc %08x, stored %08x", got, sum)
	}
	if v := binary.LittleEndian.Uint32(data[len(ckptMagic):]); v != ckptVersion {
		return c, fmt.Errorf("zonewatch: checkpoint v%d, this build reads v%d", v, ckptVersion)
	}
	p := len(ckptMagic) + 4
	c.Complete = data[p] == 1
	p++
	c.ZoneSize = int64(binary.LittleEndian.Uint64(data[p:]))
	p += 8
	c.ZoneOff = int64(binary.LittleEndian.Uint64(data[p:]))
	p += 8
	c.PrefixCRC = binary.LittleEndian.Uint32(data[p:])
	p += 4
	c.ScanStartOut = int64(binary.LittleEndian.Uint64(data[p:]))
	p += 8
	c.OutOff = int64(binary.LittleEndian.Uint64(data[p:]))
	p += 8
	c.Emitted = binary.LittleEndian.Uint64(data[p:])
	if c.ZoneOff < 0 || c.ZoneSize < 0 || c.OutOff < 0 || c.ScanStartOut < 0 || c.ScanStartOut > c.OutOff {
		return c, fmt.Errorf("zonewatch: checkpoint offsets inconsistent")
	}
	return c, nil
}

func writeCheckpointFile(path string, c checkpoint) error {
	return snapshot.WriteFileAtomic(path, c.marshal())
}

// readCheckpointFile loads the checkpoint. ok is false when the file
// does not exist; a present-but-corrupt checkpoint returns an error so
// the caller can fall back to the conservative rescan path.
func readCheckpointFile(path string) (c checkpoint, ok bool, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return checkpoint{}, false, nil
		}
		return checkpoint{}, false, err
	}
	c, err = unmarshalCheckpoint(data)
	if err != nil {
		return checkpoint{}, false, err
	}
	return c, true, nil
}

// prefixCRC computes the CRC-32 over r's bytes [0, off) by sequential
// chunked reads — the resume path's proof that the consumed zone prefix
// is byte-identical to what the checkpoint scanned.
func prefixCRC(r io.ReaderAt, off int64) (uint32, error) {
	var crc uint32
	buf := make([]byte, 256<<10)
	for pos := int64(0); pos < off; {
		n := int64(len(buf))
		if off-pos < n {
			n = off - pos
		}
		read, err := r.ReadAt(buf[:n], pos)
		if read > 0 {
			crc = crc32.Update(crc, crc32.IEEETable, buf[:read])
			pos += int64(read)
		}
		if err != nil {
			if err == io.EOF && pos >= off {
				break
			}
			return 0, err
		}
	}
	return crc, nil
}
