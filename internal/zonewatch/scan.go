package zonewatch

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/domain"
	"repro/internal/snapshot"
	"repro/internal/triage"
)

// ErrSeenSet marks an unreadable or corrupt durable seen-set. The
// watcher refuses to scan over it: a half-lost seen-set would re-emit
// already-reported domains, the one mistake a monitoring pipeline must
// never make. The loop goes degraded and retries, so restoring the
// file (or its .bak) recovers without a restart.
var ErrSeenSet = errors.New("zonewatch: seen-set unreadable")

// ErrZoneTruncated marks a zone file that shrank below the plausible
// fraction of the last completed generation — a truncated registry
// drop, not a real day-over-day delta. The watcher refuses to scan it
// and retries with backoff until a plausible zone appears.
var ErrZoneTruncated = errors.New("zonewatch: zone file implausibly small")

// ScanStats summarizes one ScanOnce call.
type ScanStats struct {
	// UpToDate is true when the checkpoint proves the current zone was
	// already fully scanned and nothing was done.
	UpToDate bool
	// Resumed is true when the scan continued from a mid-zone
	// checkpoint instead of starting at offset zero.
	Resumed bool
	// Lines is the number of zone lines consumed by this call.
	Lines int64
	// Names is how many of those carried a scannable candidate FQDN.
	Names int64
	// Added is how many candidates were new to the seen-set (delta
	// lines emitted).
	Added int64
	// Detected is how many added names matched a reference domain.
	Detected int64
	// ZoneBytes is the total zone size at completion.
	ZoneBytes int64
	// SeenLoadMillis is the durable seen-set load time, set on the call
	// that loaded it.
	SeenLoadMillis float64
}

// ScanOnce runs one full delta pass over the configured zone file:
// load (or reuse) the durable seen-set, resume from a valid checkpoint
// or start fresh, stream the zone emitting one deltas line per added
// FQDN, and on reaching EOF merge the session into the seen-set and
// mark the generation complete. Safe to call repeatedly; a completed
// generation returns UpToDate without touching the zone beyond a CRC
// pass. Not safe for concurrent calls on one Watcher — Run serializes.
//
// Cancellation mid-scan aborts without flushing or checkpointing, which
// is exactly the durability situation a SIGKILL leaves behind; the next
// call resumes from the last checkpoint with byte-identical output.
func (w *Watcher) ScanOnce(ctx context.Context) (ScanStats, error) {
	st, err := w.scanLocked(ctx)
	if err == nil {
		w.scans.Add(1)
		w.lastScanUnix.Store(time.Now().Unix())
		w.linesTotal.Add(uint64(st.Lines))
		w.namesTotal.Add(uint64(st.Names))
		w.addedTotal.Add(uint64(st.Added))
		w.detectedTotal.Add(uint64(st.Detected))
	} else if ctx.Err() == nil {
		w.scanErrors.Add(1)
	}
	return st, err
}

func (w *Watcher) scanLocked(ctx context.Context) (st ScanStats, retErr error) {

	// The durable seen-set loads once and stays cached across scans; a
	// corrupt file keeps failing here — loudly, degraded — until the
	// operator restores it, at which point this same path recovers.
	if w.seen == nil {
		t0 := time.Now()
		seen, err := loadSeenSet(w.seenPath())
		if err != nil {
			return st, fmt.Errorf("%w: %v", ErrSeenSet, err)
		}
		w.seen = seen
		st.SeenLoadMillis = float64(time.Since(t0)) / float64(time.Millisecond)
		w.seenLoadMicros.Store(time.Since(t0).Microseconds())
	}
	w.seenSize.Store(int64(w.seen.size()))

	zf, err := os.Open(w.cfg.ZonePath)
	if err != nil {
		return st, fmt.Errorf("open zone: %w", err)
	}
	defer zf.Close()
	fi, err := zf.Stat()
	if err != nil {
		return st, fmt.Errorf("stat zone: %w", err)
	}
	zoneSize := fi.Size()

	ckpt, haveCkpt, ckptErr := readCheckpointFile(w.ckptPath())
	if ckptErr != nil {
		// A corrupt checkpoint is recoverable — the deltas journal holds
		// the ground truth — but worth a line in the log.
		w.logf("zonewatch: discarding unreadable checkpoint: %v", ckptErr)
	}

	// Shrink guard: a zone dramatically smaller than the last completed
	// generation is a truncated or failed registry drop. Refuse it —
	// scanning it is harmless for dedup but would make the watcher
	// declare a bogus generation complete.
	guard := w.lastZoneSize
	if guard == 0 && haveCkpt && ckpt.Complete {
		guard = ckpt.ZoneSize
	}
	if guard > 0 && float64(zoneSize) < w.minZoneFraction()*float64(guard) {
		return st, fmt.Errorf("%w: %d bytes vs %d last generation", ErrZoneTruncated, zoneSize, guard)
	}

	// Completed checkpoint matching this exact zone: nothing to do.
	if haveCkpt && ckpt.Complete && ckpt.ZoneSize == zoneSize {
		if crc, err := prefixCRC(zf, zoneSize); err == nil && crc == ckpt.PrefixCRC {
			w.lastZoneSize = zoneSize
			st.UpToDate = true
			st.ZoneBytes = zoneSize
			return st, nil
		}
	}

	df, err := os.OpenFile(w.deltasPath(), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return st, fmt.Errorf("open deltas: %w", err)
	}
	// The journal is written through df: its Close error is a write
	// error, and swallowing it would let a scan report success whose
	// final journal bytes never landed.
	defer func() {
		if cerr := df.Close(); cerr != nil && retErr == nil {
			retErr = fmt.Errorf("close deltas: %w", cerr)
		}
	}()
	dfi, err := df.Stat()
	if err != nil {
		return st, fmt.Errorf("stat deltas: %w", err)
	}
	deltasSize := dfi.Size()

	// Decide where this scan starts. Three cases, in order of trust:
	//
	//  1. Valid active checkpoint whose zone prefix still matches:
	//     resume exactly — truncate the deltas file to the checkpointed
	//     offset (dropping lines emitted after it; the rescan re-emits
	//     them identically), rebuild the session fingerprints from the
	//     checkpointed region, seek the zone to the offset. Output is
	//     byte-identical to an uninterrupted run.
	//  2. Active checkpoint but the zone changed underneath it: the old
	//     session's emissions are real and must never repeat — ingest
	//     their fingerprints (keeping the lines), then scan the new
	//     zone from the top.
	//  3. No usable checkpoint: if the last generation completed, prior
	//     emissions are already merged into the seen-set and the scan
	//     starts clean; if the checkpoint was lost or corrupt, ingest
	//     the whole deltas journal — the union is idempotent, so
	//     over-ingesting can only prevent duplicates, never cause them.
	var (
		zoneOff      int64
		runningCRC   uint32
		outOff       int64
		scanStartOut int64
		emitted      uint64
	)
	switch {
	case haveCkpt && !ckpt.Complete && ckpt.ZoneOff <= zoneSize && ckpt.OutOff <= deltasSize:
		crc, err := prefixCRC(zf, ckpt.ZoneOff)
		if err != nil {
			return st, fmt.Errorf("validate resume: %w", err)
		}
		if crc == ckpt.PrefixCRC {
			if err := df.Truncate(ckpt.OutOff); err != nil {
				return st, fmt.Errorf("truncate deltas: %w", err)
			}
			if err := w.ingestDeltas(df, ckpt.ScanStartOut, ckpt.OutOff); err != nil {
				return st, fmt.Errorf("reingest deltas: %w", err)
			}
			zoneOff, runningCRC = ckpt.ZoneOff, crc
			scanStartOut, outOff, emitted = ckpt.ScanStartOut, ckpt.OutOff, ckpt.Emitted
			st.Resumed = true
			break
		}
		// Zone changed under the interrupted scan: case 2.
		fallthrough
	case haveCkpt && !ckpt.Complete:
		// Lines past the last checkpoint were emitted too; keep every
		// complete one and its fingerprint, drop only a torn tail.
		end, err := completeLineEnd(df, ckpt.ScanStartOut, deltasSize)
		if err != nil {
			return st, fmt.Errorf("trim deltas: %w", err)
		}
		if err := df.Truncate(end); err != nil {
			return st, fmt.Errorf("truncate deltas: %w", err)
		}
		if err := w.ingestDeltas(df, ckpt.ScanStartOut, end); err != nil {
			return st, fmt.Errorf("reingest deltas: %w", err)
		}
		scanStartOut, outOff = ckpt.ScanStartOut, end
	case haveCkpt && ckpt.Complete:
		// Normal fresh scan of a new generation: everything emitted so
		// far is merged in the seen-set already.
		scanStartOut, outOff = deltasSize, deltasSize
	default:
		// First run, or lost/corrupt checkpoint: trust only the journal.
		end, err := completeLineEnd(df, 0, deltasSize)
		if err != nil {
			return st, fmt.Errorf("trim deltas: %w", err)
		}
		if err := df.Truncate(end); err != nil {
			return st, fmt.Errorf("truncate deltas: %w", err)
		}
		if err := w.ingestDeltas(df, 0, end); err != nil {
			return st, fmt.Errorf("reingest deltas: %w", err)
		}
		scanStartOut, outOff = 0, end
	}

	if _, err := zf.Seek(zoneOff, io.SeekStart); err != nil {
		return st, fmt.Errorf("seek zone: %w", err)
	}
	if _, err := df.Seek(outOff, io.SeekStart); err != nil {
		return st, fmt.Errorf("seek deltas: %w", err)
	}

	det, _ := w.cfg.Engine.Current()
	zr := bufio.NewReaderSize(zf, 1<<18)
	dw := bufio.NewWriterSize(df, 1<<16)
	var (
		scratch   []byte
		sinceCkpt int64
		throttleT time.Time
	)
	if w.cfg.ThrottleLPS > 0 {
		throttleT = time.Now()
	}
	flushCheckpoint := func() error {
		if err := dw.Flush(); err != nil {
			return err
		}
		if err := df.Sync(); err != nil {
			return err
		}
		return writeCheckpointFile(w.ckptPath(), checkpoint{
			ZoneSize:     zoneSize,
			ZoneOff:      zoneOff,
			PrefixCRC:    runningCRC,
			ScanStartOut: scanStartOut,
			OutOff:       outOff,
			Emitted:      emitted,
		})
	}

	for {
		line, err := zr.ReadSlice('\n')
		if err == bufio.ErrBufferFull {
			// Pathologically long line: spill to scratch and keep going.
			scratch = append(scratch[:0], line...)
			for err == bufio.ErrBufferFull {
				line, err = zr.ReadSlice('\n')
				scratch = append(scratch, line...)
			}
			line = scratch
		}
		if len(line) > 0 {
			zoneOff += int64(len(line))
			runningCRC = crc32.Update(runningCRC, crc32.IEEETable, line)
			st.Lines++
			sinceCkpt++

			if name, ok := domain.NormalizeZoneLine(firstField(line)); ok {
				st.Names++
				if w.seen.addHash(Fingerprint(name)) {
					matches := det.DetectDomainBytes(name)
					n, werr := writeDeltaLine(dw, name, matches)
					if werr != nil {
						return st, fmt.Errorf("write deltas: %w", werr)
					}
					outOff += int64(n)
					emitted++
					st.Added++
					if len(matches) > 0 {
						st.Detected++
						if w.queue != nil {
							m := matches[0]
							w.queue.push(triage.Input{
								FQDN:      m.FQDN,
								Reference: m.Imitated(),
								Source:    triage.SourceOf(m),
							})
						}
					}
				}
			}

			if sinceCkpt >= w.checkpointEvery() {
				sinceCkpt = 0
				if err := flushCheckpoint(); err != nil {
					return st, fmt.Errorf("checkpoint: %w", err)
				}
			}
			if w.cfg.ThrottleLPS > 0 {
				throttleT = throttleT.Add(time.Second / time.Duration(w.cfg.ThrottleLPS))
				if d := time.Until(throttleT); d > 0 {
					if serr := sleepCtx(ctx, d); serr != nil {
						return st, serr
					}
				}
			}
			if st.Lines%128 == 0 {
				if cerr := ctx.Err(); cerr != nil {
					// Abort cold: no flush, no checkpoint — the same
					// durability state a SIGKILL leaves.
					return st, cerr
				}
			}
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return st, fmt.Errorf("read zone: %w", err)
		}
	}

	if zoneOff < zoneSize {
		// The file shrank while we were reading it — an in-place
		// truncation mid-drop. Do not finalize; the last checkpoint
		// stands and the retry re-evaluates the zone.
		return st, fmt.Errorf("%w: shrank to %d bytes mid-scan (opened at %d)", ErrZoneTruncated, zoneOff, zoneSize)
	}
	zoneSize = zoneOff // the zone may legitimately have grown under us

	// Completion ordering — each step idempotent under re-execution, so
	// a crash between any two of them is safe:
	//  1. final active checkpoint at EOF (a restart rescans zero lines
	//     and re-runs the merge),
	//  2. merge the session into the durable seen-set (keeping a .bak
	//     of the previous generation),
	//  3. completion checkpoint.
	if err := flushCheckpoint(); err != nil {
		return st, fmt.Errorf("checkpoint: %w", err)
	}
	if len(w.seen.add) > 0 {
		if len(w.seen.base) > 0 {
			if err := snapshot.WriteSeenSetFile(w.seenPath()+".bak", w.seen.base); err != nil {
				return st, fmt.Errorf("write seen-set backup: %w", err)
			}
		}
		merged := w.seen.merged()
		if err := snapshot.WriteSeenSetFile(w.seenPath(), merged); err != nil {
			return st, fmt.Errorf("write seen-set: %w", err)
		}
		w.seen = newSeenSet(merged)
		w.seenSize.Store(int64(len(merged)))
	}
	if err := writeCheckpointFile(w.ckptPath(), checkpoint{
		Complete:     true,
		ZoneSize:     zoneSize,
		ZoneOff:      zoneSize,
		PrefixCRC:    runningCRC,
		ScanStartOut: outOff,
		OutOff:       outOff,
		Emitted:      emitted,
	}); err != nil {
		return st, fmt.Errorf("completion checkpoint: %w", err)
	}
	w.lastZoneSize = zoneSize
	st.ZoneBytes = zoneSize
	return st, nil
}

// ingestDeltas re-reads the deltas journal region [from, to) and seeds
// the session seen-set with the fingerprint of each line's FQDN — the
// resume path's reconstruction of an interrupted session's additions.
func (w *Watcher) ingestDeltas(df *os.File, from, to int64) error {
	if to <= from {
		return nil
	}
	r := bufio.NewReaderSize(io.NewSectionReader(df, from, to-from), 1<<16)
	for {
		line, err := r.ReadBytes('\n')
		if name := firstField(line); len(name) > 0 {
			// Deltas lines are already normalized; fingerprint directly.
			w.seen.addHash(Fingerprint(bytes.TrimRight(name, "\r\n")))
		}
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
	}
}

// completeLineEnd returns the offset of the end of the last
// newline-terminated line in [0, limit), never below floor — used to
// drop a partial trailing line a crash may have left in the deltas
// file.
func completeLineEnd(df *os.File, floor, limit int64) (int64, error) {
	const chunk = 64 << 10
	for end := limit; end > floor; {
		start := end - chunk
		if start < floor {
			start = floor
		}
		buf := make([]byte, end-start)
		if _, err := df.ReadAt(buf, start); err != nil {
			return 0, err
		}
		if i := bytes.LastIndexByte(buf, '\n'); i >= 0 {
			return start + int64(i) + 1, nil
		}
		end = start
	}
	return floor, nil
}

// firstField returns the first whitespace-delimited field of a zone
// master-file line — the owner name — so records with TTL/class/type
// columns fingerprint identically to a bare name-per-line list.
//
//shamlint:noalloc
func firstField(line []byte) []byte {
	start := 0
	for start < len(line) && (line[start] == ' ' || line[start] == '\t') {
		start++
	}
	end := start
	for end < len(line) && line[end] != ' ' && line[end] != '\t' && line[end] != '\r' && line[end] != '\n' {
		end++
	}
	return line[start:end]
}

// writeDeltaLine emits one added FQDN. Non-matching names are a bare
// FQDN; matches carry the imitated reference and database attribution
// in the survey CLI's match-file format (fqdn TAB reference TAB
// source), so the deltas file feeds `shamfinder survey` directly.
//
//shamlint:noalloc
func writeDeltaLine(w *bufio.Writer, name []byte, matches []core.Match) (int, error) {
	n, err := w.Write(name)
	if err != nil {
		return n, err
	}
	if len(matches) > 0 {
		m := matches[0]
		//shamlint:allow noalloc hit path only — a detected addition is rare and about to be probed over the network anyway
		k, err := fmt.Fprintf(w, "\t%s\t%s", m.Imitated(), triage.SourceOf(m))
		n += k
		if err != nil {
			return n, err
		}
	}
	if err := w.WriteByte('\n'); err != nil {
		return n, err
	}
	return n + 1, nil
}
