package zonewatch

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/resilience"
	"repro/internal/triage"
)

// capturedBatch is one Submit call the tests record.
type capturedBatch struct {
	inputs   []triage.Input
	queried  int
	from, to int64
}

// batchCapture is a Submit hook that records every cut, with an
// optional one-shot failure injection.
type batchCapture struct {
	batches []capturedBatch
	fail    error
}

func (c *batchCapture) submit(inputs []triage.Input, queried int, from, to int64) (string, error) {
	if c.fail != nil {
		err := c.fail
		c.fail = nil
		return "", err
	}
	c.batches = append(c.batches, capturedBatch{inputs: inputs, queried: queried, from: from, to: to})
	return "j1", nil
}

func appendJournal(t testing.TB, path string, lines ...string) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.WriteString(strings.Join(lines, "\n") + "\n"); err != nil {
		t.Fatal(err)
	}
}

func fqdnsOf(inputs []triage.Input) []string {
	out := make([]string, len(inputs))
	for i, in := range inputs {
		out[i] = in.FQDN
	}
	return out
}

// TestBatcherCoversSpansExactlyOnce drives the batcher through two cuts
// and a restart: every submitted span must start where the previous one
// ended, only detected lines become inputs, and a restart seeded with
// the furthest covered offset re-submits nothing.
func TestBatcherCoversSpansExactlyOnce(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "deltas.out")
	cap1 := &batchCapture{}
	b, err := NewSurveyBatcher(SurveyBatcherConfig{
		JournalPath: journal,
		Submit:      cap1.submit,
		MaxBatch:    2,
		MaxAge:      time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// No journal yet: a tick is a quiet no-op.
	b.Tick(ctx)
	if len(cap1.batches) != 0 {
		t.Fatalf("tick before journal cut %d batches", len(cap1.batches))
	}

	// Three detected homographs among two plain additions: the size
	// threshold (2) cuts, carrying everything pending.
	appendJournal(t, journal,
		"a.com\tgoogle.com\tconfusable",
		"plain1.com",
		"b.com\tfacebook.com\tsimchar",
		"c.com\tgoogle.com\tconfusable",
		"plain2.com",
	)
	b.Tick(ctx)
	if len(cap1.batches) != 1 {
		t.Fatalf("batches = %d, want 1", len(cap1.batches))
	}
	first := cap1.batches[0]
	if got := fqdnsOf(first.inputs); len(got) != 3 || got[0] != "a.com" || got[1] != "b.com" || got[2] != "c.com" {
		t.Errorf("first batch inputs = %v", got)
	}
	if first.inputs[0].Reference != "google.com" || first.inputs[0].Source != "confusable" {
		t.Errorf("first input = %+v", first.inputs[0])
	}
	if first.queried != 5 {
		t.Errorf("queried = %d, want all 5 delta lines", first.queried)
	}
	if first.from != 0 {
		t.Errorf("first span starts at %d", first.from)
	}
	size1, _ := os.Stat(journal)
	if first.to != size1.Size() {
		t.Errorf("first span ends at %d, journal is %d", first.to, size1.Size())
	}
	if b.Lag() != 0 {
		t.Errorf("lag after cut = %d", b.Lag())
	}

	// One more delta: under the size threshold and the age threshold, so
	// it waits — Flush cuts it.
	appendJournal(t, journal, "d.com\tgoogle.com\tconfusable")
	b.Tick(ctx)
	if len(cap1.batches) != 1 {
		t.Fatalf("under-threshold tick cut a batch")
	}
	if b.Lag() == 0 {
		t.Errorf("uncovered journal bytes must show as lag")
	}
	b.Flush()
	if len(cap1.batches) != 2 {
		t.Fatalf("flush did not cut")
	}
	second := cap1.batches[1]
	if got := fqdnsOf(second.inputs); len(got) != 1 || got[0] != "d.com" {
		t.Errorf("second batch inputs = %v", got)
	}
	if second.from != first.to {
		t.Errorf("spans not consecutive: [%d,%d) then [%d,%d)", first.from, first.to, second.from, second.to)
	}

	// Restart: a new batcher seeded with the furthest covered offset
	// (what jobstore.MaxJournalTo answers) sees only new lines.
	cap2 := &batchCapture{}
	b2, err := NewSurveyBatcher(SurveyBatcherConfig{
		JournalPath: journal,
		Submit:      cap2.submit,
		MaxBatch:    1,
		Cursor:      second.to,
	})
	if err != nil {
		t.Fatal(err)
	}
	b2.Tick(ctx)
	if len(cap2.batches) != 0 {
		t.Fatalf("restart re-submitted covered deltas: %+v", cap2.batches)
	}
	appendJournal(t, journal, "e.com\tgoogle.com\tconfusable")
	b2.Tick(ctx)
	if len(cap2.batches) != 1 {
		t.Fatalf("restart batches = %d, want 1", len(cap2.batches))
	}
	if got := fqdnsOf(cap2.batches[0].inputs); len(got) != 1 || got[0] != "e.com" {
		t.Errorf("restart batch inputs = %v (must be only the new delta)", got)
	}
	if cap2.batches[0].from != second.to {
		t.Errorf("restart span starts at %d, want %d", cap2.batches[0].from, second.to)
	}
}

func TestBatcherAgeCut(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "deltas.out")
	cap := &batchCapture{}
	b, err := NewSurveyBatcher(SurveyBatcherConfig{
		JournalPath: journal,
		Submit:      cap.submit,
		MaxBatch:    100,
		MaxAge:      30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	appendJournal(t, journal, "a.com\tgoogle.com\tconfusable")
	b.Tick(ctx)
	if len(cap.batches) != 0 {
		t.Fatal("fresh batch cut before its age threshold")
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(cap.batches) == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
		b.Tick(ctx)
	}
	if len(cap.batches) != 1 {
		t.Fatal("age threshold never cut the straggler batch")
	}
}

// TestBatcherToleratesJournalTruncation covers the watcher's
// checkpoint-resume behavior: the journal momentarily truncates below
// the cursor, then grows back byte-identically. The batcher must wait,
// not error, and must not double-submit when the bytes return.
func TestBatcherToleratesJournalTruncation(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "deltas.out")
	cap := &batchCapture{}
	b, err := NewSurveyBatcher(SurveyBatcherConfig{
		JournalPath: journal,
		Submit:      cap.submit,
		MaxBatch:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	appendJournal(t, journal, "a.com\tgoogle.com\tconfusable", "b.com\tgoogle.com\tconfusable")
	b.Tick(ctx)
	if len(cap.batches) != 1 {
		t.Fatalf("batches = %d, want 1", len(cap.batches))
	}
	full, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}

	// Mid checkpoint-resume: the journal is shorter than the cursor.
	if err := os.Truncate(journal, int64(len(full))-5); err != nil {
		t.Fatal(err)
	}
	b.Tick(ctx)
	if len(cap.batches) != 1 {
		t.Fatalf("tick over a truncated journal cut a batch")
	}
	if b.pollErrors.Load() != 0 {
		t.Errorf("truncation counted as a poll error")
	}
	if b.Lag() != 0 {
		t.Errorf("truncated journal reported lag %d", b.Lag())
	}

	// The watcher rewrote the dropped bytes identically and added one
	// new line: only the new line may submit.
	if err := os.WriteFile(journal, full, 0o644); err != nil {
		t.Fatal(err)
	}
	appendJournal(t, journal, "c.com\tgoogle.com\tconfusable")
	b.Tick(ctx)
	if len(cap.batches) != 2 {
		t.Fatalf("batches after recovery = %d, want 2", len(cap.batches))
	}
	if got := fqdnsOf(cap.batches[1].inputs); len(got) != 1 || got[0] != "c.com" {
		t.Errorf("recovery batch = %v, want only the new delta", got)
	}
	if cap.batches[1].from != int64(len(full)) {
		t.Errorf("recovery span starts at %d, want %d", cap.batches[1].from, len(full))
	}
}

// TestBatcherDeadLetterReplay: abandoned probe items ride the next
// batch (deduped against fresh deltas), survive a failed submission,
// and the file is truncated only once a batch carrying them lands.
func TestBatcherDeadLetterReplay(t *testing.T) {
	dir := t.TempDir()
	journal := filepath.Join(dir, "deltas.out")
	dl := filepath.Join(dir, "probe.deadletter")
	if err := os.WriteFile(dl, []byte("dead.com\na.com\tgoogle.com\tconfusable\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cap := &batchCapture{fail: errors.New("store down")}
	b, err := NewSurveyBatcher(SurveyBatcherConfig{
		JournalPath:    journal,
		Submit:         cap.submit,
		MaxBatch:       1,
		DeadLetterPath: dl,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// a.com arrives both as a fresh delta and as a dead-letter replay.
	appendJournal(t, journal, "a.com\tgoogle.com\tconfusable")

	// First cut fails: batch and dead-letter file both survive.
	b.Tick(ctx)
	if len(cap.batches) != 0 {
		t.Fatalf("failed submit produced a batch")
	}
	if b.submitErrors.Load() != 1 {
		t.Errorf("submit_errors = %d, want 1", b.submitErrors.Load())
	}
	if fi, err := os.Stat(dl); err != nil || fi.Size() == 0 {
		t.Fatalf("dead-letter file dropped on a failed submit (%v)", err)
	}

	// Retry succeeds: replays first, deduped, file truncated.
	b.Tick(ctx)
	if len(cap.batches) != 1 {
		t.Fatalf("batches = %d, want 1", len(cap.batches))
	}
	got := fqdnsOf(cap.batches[0].inputs)
	if len(got) != 2 || got[0] != "dead.com" || got[1] != "a.com" {
		t.Errorf("batch inputs = %v, want deduped [dead.com a.com]", got)
	}
	if cap.batches[0].queried != 3 { // 1 journal line + 2 dead-letter items
		t.Errorf("queried = %d, want 3", cap.batches[0].queried)
	}
	if fi, err := os.Stat(dl); err != nil || fi.Size() != 0 {
		t.Errorf("dead-letter file not truncated after success (size=%v err=%v)", fi, err)
	}

	// A dead-letter arriving with no fresh deltas still cuts a
	// (journal-empty-span) retry batch.
	if err := os.WriteFile(dl, []byte("late.com\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	b.Tick(ctx)
	if len(cap.batches) != 2 {
		t.Fatalf("dead-letter-only tick did not cut")
	}
	last := cap.batches[1]
	if got := fqdnsOf(last.inputs); len(got) != 1 || got[0] != "late.com" {
		t.Errorf("dead-letter-only batch = %v", got)
	}
	if last.from != last.to {
		t.Errorf("dead-letter-only batch covered journal span [%d,%d)", last.from, last.to)
	}
}

// TestDrainProbesDeadLettersAbandoned: a one-shot drain against a dead
// probe target must give up on every item — retries exhausted or
// breaker open — and park each one in the dead-letter file instead of
// losing it.
func TestDrainProbesDeadLettersAbandoned(t *testing.T) {
	dir := t.TempDir()
	var calls atomic.Int32
	w := newTestWatcher(t, dir, func(c *Config) {
		c.Probe = func(ctx context.Context, in triage.Input) error {
			calls.Add(1)
			return errors.New("probe target down")
		}
		c.ProbeRetry = resilience.RetryPolicy{Attempts: 1}
	})
	ins := []triage.Input{
		{FQDN: "a.com", Reference: "google.com", Source: "confusable"},
		{FQDN: "b.com"},
		{FQDN: "c.com"},
	}
	for _, in := range ins {
		w.queue.push(in)
	}
	w.DrainProbes(context.Background())

	h := w.Health()
	if h.ProbesDeadLettered != uint64(len(ins)) {
		t.Errorf("probes_dead_lettered = %d, want %d", h.ProbesDeadLettered, len(ins))
	}
	if h.ProbeFailures != uint64(len(ins)) {
		t.Errorf("probe_failures = %d, want %d", h.ProbeFailures, len(ins))
	}
	if h.QueueLen != 0 {
		t.Errorf("queue not drained: %d", h.QueueLen)
	}
	data, err := os.ReadFile(w.DeadLetterPath())
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) != len(ins) {
		t.Fatalf("dead-letter lines = %d, want %d: %q", len(lines), len(ins), data)
	}
	if lines[0] != "a.com\tgoogle.com\tconfusable" {
		t.Errorf("dead-letter line = %q (must keep reference and source)", lines[0])
	}
	// The file round-trips through the batcher's replay parser.
	in, ok := parseMatchLine([]byte(lines[0]))
	if !ok || in.FQDN != "a.com" || in.Reference != "google.com" || in.Source != "confusable" {
		t.Errorf("replay parse = (%+v, %v)", in, ok)
	}
}
