// Package browserpolicy models the IDN display algorithms modern
// browsers adopted after the April 2017 disclosure (paper Section 2.2):
// when a label mixes scripts outside a small set of legitimate
// combinations, the address bar shows Punycode instead of Unicode, and
// a whole-script-confusable check catches single-script lookalikes
// such as the all-Cyrillic "аррӏе". The model exists to measure the
// paper's motivating claim: these defenses still display many IDN
// homographs — diacritic variants and non-Latin homographs — in
// Unicode form, which is exactly the population ShamFinder detects.
package browserpolicy

import (
	"unicode"

	"repro/internal/confusables"
)

// Display is the address-bar rendering decision.
type Display uint8

// Decisions.
const (
	// DisplayUnicode shows the decoded IDN — the user sees the
	// lookalike glyphs.
	DisplayUnicode Display = iota
	// DisplayPunycode shows the raw xn-- form.
	DisplayPunycode
)

// String names the decision.
func (d Display) String() string {
	if d == DisplayPunycode {
		return "punycode"
	}
	return "unicode"
}

// Reason explains a decision.
type Reason string

// Reasons.
const (
	ReasonASCII         Reason = "all-ASCII"
	ReasonSingleScript  Reason = "single script"
	ReasonAllowedMix    Reason = "allowed script combination"
	ReasonDisallowedMix Reason = "disallowed script mixing"
	ReasonWholeScript   Reason = "whole-script confusable"
	ReasonInvisible     Reason = "invisible or combining-only"
)

// script buckets relevant to the mixing rules.
type script uint8

const (
	scLatin script = iota
	scCyrillic
	scGreek
	scHan
	scKana
	scHangul
	scBopomofo
	scOther
	scCommon // digits, hyphen, marks
)

func scriptOf(r rune) script {
	switch {
	case r == '-' || (r >= '0' && r <= '9'):
		return scCommon
	case r < 0x80:
		return scLatin
	case unicode.Is(unicode.Latin, r):
		return scLatin
	case unicode.Is(unicode.Cyrillic, r):
		return scCyrillic
	case unicode.Is(unicode.Greek, r):
		return scGreek
	case unicode.Is(unicode.Han, r):
		return scHan
	case unicode.Is(unicode.Hiragana, r) || unicode.Is(unicode.Katakana, r):
		return scKana
	case unicode.Is(unicode.Hangul, r):
		return scHangul
	case unicode.Is(unicode.Bopomofo, r):
		return scBopomofo
	case unicode.Is(unicode.Mn, r) || unicode.Is(unicode.Me, r):
		return scCommon
	default:
		return scOther
	}
}

// allowedMixes are the "highly restrictive" profile's legitimate
// combinations (Mozilla's IDN display algorithm; Chrome is similar):
// Han with Japanese kana, Han with Hangul, Han with Bopomofo — each
// optionally with Latin.
var allowedMixes = []map[script]bool{
	{scLatin: true, scHan: true, scKana: true},
	{scLatin: true, scHan: true, scHangul: true},
	{scLatin: true, scHan: true, scBopomofo: true},
}

// Policy is a configured display algorithm.
type Policy struct {
	// UC is the confusables database backing the whole-script check.
	// Nil disables that check (pre-2017 behaviour).
	UC *confusables.DB
}

// Decide returns the rendering for one Unicode label.
func (p *Policy) Decide(label string) (Display, Reason) {
	seen := map[script]bool{}
	ascii := true
	letters := 0
	for _, r := range label {
		if r >= 0x80 {
			ascii = false
		}
		s := scriptOf(r)
		if s == scCommon {
			continue
		}
		letters++
		seen[s] = true
	}
	if ascii {
		return DisplayUnicode, ReasonASCII
	}
	if letters == 0 {
		return DisplayPunycode, ReasonInvisible
	}
	if len(seen) == 1 {
		for s := range seen {
			if s != scLatin && p.wholeScriptConfusable(label) {
				_ = s
				return DisplayPunycode, ReasonWholeScript
			}
		}
		return DisplayUnicode, ReasonSingleScript
	}
	for _, mix := range allowedMixes {
		ok := true
		for s := range seen {
			if !mix[s] {
				ok = false
				break
			}
		}
		if ok {
			return DisplayUnicode, ReasonAllowedMix
		}
	}
	return DisplayPunycode, ReasonDisallowedMix
}

// wholeScriptConfusable reports whether every letter of a single-script
// non-Latin label maps to a Latin prototype in the UC database — the
// "аррӏе.com" class Chrome punycodes.
func (p *Policy) wholeScriptConfusable(label string) bool {
	if p.UC == nil {
		return false
	}
	for _, r := range label {
		if scriptOf(r) == scCommon {
			continue
		}
		proto := p.UC.SkeletonRune(r)
		if proto == r || proto >= 0x80 {
			return false
		}
	}
	return true
}

// Evaluate tallies decisions over a set of Unicode labels.
type Tally struct {
	Unicode  int
	Punycode int
	ByReason map[Reason]int
}

// Evaluate applies the policy to every label.
func (p *Policy) Evaluate(labels []string) Tally {
	t := Tally{ByReason: make(map[Reason]int)}
	for _, l := range labels {
		d, r := p.Decide(l)
		if d == DisplayUnicode {
			t.Unicode++
		} else {
			t.Punycode++
		}
		t.ByReason[r]++
	}
	return t
}
