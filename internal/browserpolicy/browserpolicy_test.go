package browserpolicy

import (
	"testing"

	"repro/internal/confusables"
)

// ucForTest maps the Cyrillic lookalikes of "apple" to Latin.
func ucForTest() *confusables.DB {
	uc := confusables.New()
	uc.Add(0x0430, []rune{'a'}, "а") // Cyrillic a
	uc.Add(0x0440, []rune{'p'}, "р") // Cyrillic er
	uc.Add(0x04CF, []rune{'l'}, "ӏ") // Cyrillic palochka
	uc.Add(0x0435, []rune{'e'}, "е") // Cyrillic ie
	return uc
}

func TestDecideASCII(t *testing.T) {
	p := &Policy{}
	d, r := p.Decide("google")
	if d != DisplayUnicode || r != ReasonASCII {
		t.Errorf("got %v, %v", d, r)
	}
}

func TestDiacriticAttackDisplaysUnicode(t *testing.T) {
	// "facébook" is single-script Latin: browsers show it in Unicode —
	// the paper's core motivating gap.
	p := &Policy{UC: ucForTest()}
	d, r := p.Decide("facébook")
	if d != DisplayUnicode || r != ReasonSingleScript {
		t.Errorf("facébook: %v, %v", d, r)
	}
}

func TestMixedLatinCyrillicPunycoded(t *testing.T) {
	p := &Policy{}
	d, r := p.Decide("gооgle") // Latin g,l,e + Cyrillic о
	if d != DisplayPunycode || r != ReasonDisallowedMix {
		t.Errorf("gооgle: %v, %v", d, r)
	}
}

func TestWholeScriptConfusable(t *testing.T) {
	p := &Policy{UC: ucForTest()}
	// All-Cyrillic "аррӏе" (apple): single script, but every letter is
	// a Latin lookalike — punycoded by the 2017+ policy.
	d, r := p.Decide("аррӏе")
	if d != DisplayPunycode || r != ReasonWholeScript {
		t.Errorf("аррӏе: %v, %v", d, r)
	}
	// Without the UC database (pre-2017 behaviour) it displays.
	pre := &Policy{}
	if d, _ := pre.Decide("аррӏе"); d != DisplayUnicode {
		t.Error("pre-2017 policy punycoded a single-script label")
	}
	// A genuine Cyrillic word with non-confusable letters displays.
	if d, _ := p.Decide("домен"); d != DisplayUnicode {
		t.Error("genuine Cyrillic word punycoded")
	}
}

func TestCJKKanaMixAllowed(t *testing.T) {
	p := &Policy{UC: ucForTest()}
	// エ業大学: Katakana + Han — a legitimate Japanese combination, so
	// browsers display it even though it is a homograph of 工業大学
	// (the paper's Section 2.2 example of what current defenses miss).
	d, r := p.Decide("エ業大学")
	if d != DisplayUnicode || r != ReasonAllowedMix {
		t.Errorf("エ業大学: %v, %v", d, r)
	}
	// Latin + Han is also allowed (the browsers' documented exception).
	if d, _ := p.Decide("abc工"); d != DisplayUnicode {
		t.Error("Latin+Han punycoded")
	}
}

func TestDisallowedGreekMix(t *testing.T) {
	p := &Policy{}
	if d, _ := p.Decide("gοοgle"); d != DisplayPunycode { // Greek omicron
		t.Error("Latin+Greek mix displayed")
	}
}

func TestDigitsAndHyphensAreNeutral(t *testing.T) {
	p := &Policy{}
	if d, _ := p.Decide("домен-24"); d != DisplayUnicode {
		t.Error("digits/hyphen broke single-script detection")
	}
}

func TestInvisibleOnly(t *testing.T) {
	p := &Policy{}
	if d, r := p.Decide("́̂"); d != DisplayPunycode || r != ReasonInvisible {
		t.Errorf("combining-only label: %v, %v", d, r)
	}
}

func TestEvaluateTally(t *testing.T) {
	p := &Policy{UC: ucForTest()}
	tally := p.Evaluate([]string{"google", "facébook", "gооgle", "аррӏе"})
	if tally.Unicode != 2 || tally.Punycode != 2 {
		t.Errorf("tally = %+v", tally)
	}
	if tally.ByReason[ReasonWholeScript] != 1 || tally.ByReason[ReasonDisallowedMix] != 1 {
		t.Errorf("reasons = %+v", tally.ByReason)
	}
}
