package ranking

import (
	"bytes"
	"strings"
	"testing"
)

func TestNewListAndRank(t *testing.T) {
	l := NewList([]string{"google.com", "Amazon.com", "example.net"})
	if l.Rank("google.com") != 1 {
		t.Error("google rank")
	}
	if l.Rank("amazon.com") != 2 {
		t.Error("case-insensitive rank")
	}
	if l.Rank("missing.com") != 0 {
		t.Error("missing rank should be 0")
	}
	if !l.Contains("example.net") || l.Contains("nope.org") {
		t.Error("Contains mismatch")
	}
}

func TestTopAndSLDs(t *testing.T) {
	l := NewList([]string{"google.com", "example.net", "amazon.com"})
	top := l.Top(2)
	if len(top) != 2 || top[0] != "google.com" {
		t.Errorf("Top = %v", top)
	}
	if got := l.Top(99); len(got) != 3 {
		t.Errorf("Top(99) = %v", got)
	}
	slds := l.SLDs(5)
	// Every TLD contributes a registrable label now — the seed dropped
	// example.net outright.
	if len(slds) != 3 || slds[0] != "google" || slds[1] != "example" || slds[2] != "amazon" {
		t.Errorf("SLDs = %v", slds)
	}
	if got := l.SLDs(1); len(got) != 1 {
		t.Errorf("SLDs(1) = %v", got)
	}
}

// TestSLDsMultiTLD: co.uk-style suffixes index on the registrable
// label, duplicates collapse onto the best-ranked occurrence, and IDN
// TLDs are handled.
func TestSLDsMultiTLD(t *testing.T) {
	l := NewList([]string{
		"amazon.co.uk",
		"google.com",
		"google.net",              // duplicate label, lower rank
		"www.bbc.co.uk",           // subdomain present in the list
		"xn--80ak6aa92e.xn--p1ai", // ACE label under an IDN TLD
	})
	got := l.SLDs(10)
	want := []string{"amazon", "google", "bbc", "xn--80ak6aa92e"}
	if len(got) != len(want) {
		t.Fatalf("SLDs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SLDs = %v, want %v", got, want)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	l := NewList([]string{"google.com", "amazon.com"})
	var buf bytes.Buffer
	if err := l.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ParseCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 || got.Rank("amazon.com") != 2 {
		t.Errorf("round trip = %v", got.Entries)
	}
}

func TestParseCSVErrors(t *testing.T) {
	cases := []string{
		"1 google.com",     // no comma
		"x,google.com",     // bad rank
		"2,google.com",     // out of order
		"1,a.com\n3,b.com", // gap
	}
	for _, c := range cases {
		if _, err := ParseCSV(strings.NewReader(c)); err == nil {
			t.Errorf("ParseCSV(%q) succeeded", c)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(1000, 7, PaperAnchors())
	b := Generate(1000, 7, PaperAnchors())
	if a.Len() != b.Len() {
		t.Fatal("length mismatch")
	}
	for i := range a.Entries {
		if a.Entries[i] != b.Entries[i] {
			t.Fatalf("entry %d differs: %v vs %v", i, a.Entries[i], b.Entries[i])
		}
	}
	c := Generate(1000, 8, PaperAnchors())
	same := 0
	for i := range a.Entries {
		if a.Entries[i] == c.Entries[i] {
			same++
		}
	}
	if same == a.Len() {
		t.Error("different seeds produced identical lists")
	}
}

func TestGenerateAnchorsPinned(t *testing.T) {
	l := Generate(10000, 7, PaperAnchors())
	for _, a := range PaperAnchors() {
		if got := l.Rank(a.Domain); got != a.Rank {
			t.Errorf("%s at rank %d, want %d", a.Domain, got, a.Rank)
		}
	}
}

func TestGenerateGrowsToFitAnchors(t *testing.T) {
	l := Generate(10, 7, PaperAnchors()) // max anchor rank is 7400
	if l.Len() < 7400 {
		t.Errorf("list of %d entries cannot hold anchor at 7400", l.Len())
	}
}

func TestGenerateNoDuplicates(t *testing.T) {
	l := Generate(5000, 7, PaperAnchors())
	seen := make(map[string]bool)
	for _, e := range l.Entries {
		if seen[e.Domain] {
			t.Fatalf("duplicate domain %q", e.Domain)
		}
		seen[e.Domain] = true
	}
}

func TestMergeUnique(t *testing.T) {
	a := NewList([]string{"google.com", "amazon.com"})
	b := NewList([]string{"amazon.com", "majestic.com"})
	m := MergeUnique(a, b)
	if m.Len() != 3 || m.Rank("majestic.com") != 3 {
		t.Errorf("merged = %v", m.Entries)
	}
}

func TestSortedByName(t *testing.T) {
	l := NewList([]string{"zebra.com", "apple.com"})
	s := l.SortedByName()
	if s[0] != "apple.com" || s[1] != "zebra.com" {
		t.Errorf("sorted = %v", s)
	}
}
