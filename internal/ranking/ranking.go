// Package ranking models Alexa-style top-site lists: ranked domain
// names with CSV serialisation in the "rank,domain" format Alexa
// distributed, plus a deterministic generator that fills the list with
// plausible brandable names around a set of pinned real-world anchors
// (google at the top, myetherwallet and allstate in the mid ranks the
// paper calls out in Table 9).
package ranking

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/domain"
	"repro/internal/stats"
)

// Entry is one row of a top-sites list.
type Entry struct {
	Rank   int
	Domain string // registrable domain without trailing dot, e.g. "google.com"
}

// List is a ranked list of domains, rank 1 first.
type List struct {
	Entries []Entry
	index   map[string]int // domain -> rank
}

// NewList builds a list from already-ordered domains.
func NewList(domains []string) *List {
	l := &List{index: make(map[string]int, len(domains))}
	for i, d := range domains {
		e := Entry{Rank: i + 1, Domain: strings.ToLower(d)}
		l.Entries = append(l.Entries, e)
		l.index[e.Domain] = e.Rank
	}
	return l
}

// Rank returns the rank of domain, or 0 if absent.
func (l *List) Rank(domain string) int {
	return l.index[strings.ToLower(domain)]
}

// Contains reports whether domain appears anywhere in the list.
func (l *List) Contains(domain string) bool { return l.Rank(domain) > 0 }

// Top returns the first n domains (or all if n exceeds the size).
func (l *List) Top(n int) []string {
	if n > len(l.Entries) {
		n = len(l.Entries)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = l.Entries[i].Domain
	}
	return out
}

// Len reports the list size.
func (l *List) Len() int { return len(l.Entries) }

// SLDs returns the registrable labels of the top-ranked domains — the
// reference labels Algorithm 1 matches against (public suffix removed,
// co.uk-style multi-label suffixes handled) — until n distinct labels
// are collected or the list is exhausted. Every TLD contributes: the
// seed's ".com"-only filter silently dropped amazon.co.uk-style
// references. Duplicate labels (google.com and google.net) keep their
// best-ranked occurrence.
func (l *List) SLDs(n int) []string {
	var out []string
	seen := make(map[string]bool, n)
	for _, e := range l.Entries {
		if len(out) == n {
			break
		}
		label, _ := domain.Registrable(e.Domain)
		if label == "" || seen[label] {
			continue
		}
		seen[label] = true
		out = append(out, label)
	}
	return out
}

// WriteCSV emits the Alexa "rank,domain" CSV form.
func (l *List) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, e := range l.Entries {
		if _, err := fmt.Fprintf(bw, "%d,%s\n", e.Rank, e.Domain); err != nil {
			return fmt.Errorf("ranking: %w", err)
		}
	}
	return bw.Flush()
}

// ParseCSV reads a "rank,domain" CSV. Rows must be rank-ordered.
func ParseCSV(r io.Reader) (*List, error) {
	sc := bufio.NewScanner(r)
	var domains []string
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		rank, domain, ok := strings.Cut(text, ",")
		if !ok {
			return nil, fmt.Errorf("ranking: line %d: missing comma", line)
		}
		n, err := strconv.Atoi(rank)
		if err != nil {
			return nil, fmt.Errorf("ranking: line %d: bad rank %q", line, rank)
		}
		if n != len(domains)+1 {
			return nil, fmt.Errorf("ranking: line %d: rank %d out of order", line, n)
		}
		domains = append(domains, domain)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("ranking: %w", err)
	}
	return NewList(domains), nil
}

// Anchor pins a real domain at a fixed rank in the generated list.
type Anchor struct {
	Rank   int
	Domain string
}

// PaperAnchors are the domains the paper's Table 9 and Section 6
// discuss, at ranks consistent with its narrative: google, amazon and
// facebook in the top 10; myetherwallet at 7,400 and allstate at 5,148
// among .com domains in the Alexa ranking.
func PaperAnchors() []Anchor {
	return []Anchor{
		{1, "google.com"},
		{3, "youtube.com"},
		{4, "facebook.com"},
		{6, "amazon.com"},
		{9, "wikipedia.com"},
		{12, "yahoo.com"},
		{15, "gmail.com"},
		{80, "binance.com"},
		{120, "twitter.com"},
		{200, "netflix.com"},
		{812, "doviz.com"},
		{957, "expansion.com"},
		{1366, "shadbase.com"},
		{1504, "peru.com"},
		{5148, "allstate.com"},
		{7400, "myetherwallet.com"},
	}
}

// Generate builds a deterministic list of size n with the anchors
// pinned and the remaining ranks filled with synthetic brandable .com
// names. The same seed always yields the same list.
func Generate(n int, seed uint64, anchors []Anchor) *List {
	rng := stats.NewRNG(seed)
	byRank := make(map[int]string, len(anchors))
	maxAnchor := 0
	for _, a := range anchors {
		byRank[a.Rank] = strings.ToLower(a.Domain)
		if a.Rank > maxAnchor {
			maxAnchor = a.Rank
		}
	}
	if n < maxAnchor {
		n = maxAnchor
	}
	used := make(map[string]bool, n)
	for _, d := range byRank {
		used[d] = true
	}
	domains := make([]string, 0, n)
	for rank := 1; rank <= n; rank++ {
		if d, ok := byRank[rank]; ok {
			domains = append(domains, d)
			continue
		}
		for {
			d := syntheticBrand(rng) + ".com"
			if !used[d] {
				used[d] = true
				domains = append(domains, d)
				break
			}
		}
	}
	return NewList(domains)
}

// syllables for brand synthesis; chosen so generated names look like
// startup brands ("zentiva", "quboro") rather than random strings.
var (
	onsets  = []string{"b", "c", "d", "f", "g", "k", "l", "m", "n", "p", "q", "r", "s", "t", "v", "z", "br", "cl", "st", "tr"}
	vowels  = []string{"a", "e", "i", "o", "u", "ia", "io"}
	codas   = []string{"", "", "n", "r", "s", "x", "m"}
	suffixe = []string{"", "", "ly", "ify", "hub", "base", "lab", "io"}
)

func syntheticBrand(rng *stats.RNG) string {
	var sb strings.Builder
	syllableCount := 2 + rng.Intn(2)
	for i := 0; i < syllableCount; i++ {
		sb.WriteString(onsets[rng.Intn(len(onsets))])
		sb.WriteString(vowels[rng.Intn(len(vowels))])
		if i == syllableCount-1 {
			sb.WriteString(codas[rng.Intn(len(codas))])
		}
	}
	sb.WriteString(suffixe[rng.Intn(len(suffixe))])
	return sb.String()
}

// MergeUnique concatenates lists, keeping the first occurrence of each
// domain — how the paper combines Alexa with Majestic Million.
func MergeUnique(lists ...*List) *List {
	var domains []string
	seen := make(map[string]bool)
	for _, l := range lists {
		for _, e := range l.Entries {
			if !seen[e.Domain] {
				seen[e.Domain] = true
				domains = append(domains, e.Domain)
			}
		}
	}
	return NewList(domains)
}

// SortedByName returns the domains in lexicographic order (useful for
// deterministic golden tests).
func (l *List) SortedByName() []string {
	out := l.Top(l.Len())
	sort.Strings(out)
	return out
}
