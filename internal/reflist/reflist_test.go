package reflist

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func writeTemp(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "refs.txt")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadPlainList(t *testing.T) {
	path := writeTemp(t, "google.com\n# comment\nFACEBOOK.COM\n\namazon\n")
	refs, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"google", "facebook", "amazon"}
	if !reflect.DeepEqual(refs, want) {
		t.Fatalf("refs = %v, want %v", refs, want)
	}
}

func TestLoadNoTrailingNewline(t *testing.T) {
	refs, err := Load(writeTemp(t, "google.com\nfacebook.com"))
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"google", "facebook"}; !reflect.DeepEqual(refs, want) {
		t.Fatalf("refs = %v, want %v", refs, want)
	}
}

func TestLoadCSV(t *testing.T) {
	refs, err := Load(writeTemp(t, "1,google.com\n2,facebook.com\n"))
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"google", "facebook"}; !reflect.DeepEqual(refs, want) {
		t.Fatalf("refs = %v, want %v", refs, want)
	}
}

// TestLoadCommaBeyondFirstLine is the sniffing regression: a plain
// list with a comma somewhere in its first 512 bytes (but not on line 1)
// used to be misrouted to the CSV parser.
func TestLoadCommaBeyondFirstLine(t *testing.T) {
	path := writeTemp(t, "google.com\n# ranked, by popularity\nfacebook.com\n")
	refs, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"google", "facebook"}
	if !reflect.DeepEqual(refs, want) {
		t.Fatalf("refs = %v, want %v (comma on line 2 misrouted to CSV?)", refs, want)
	}
}

// TestLoadLongFirstLine: the sniff must work for first lines longer
// than any fixed head buffer.
func TestLoadLongFirstLine(t *testing.T) {
	long := strings.Repeat("a", 5000)
	refs, err := Load(writeTemp(t, long+".com\ngoogle.com\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 2 || refs[0] != long || refs[1] != "google" {
		t.Fatalf("unexpected refs (%d entries)", len(refs))
	}
}

// TestLoadMultiTLD is the registrable-label regression: the seed
// TrimSuffix(d, ".com") indexed "amazon.co.uk" verbatim (an impossible
// reference) and "google.net" with its TLD glued on. Every TLD must
// route through the suffix-aware splitter.
func TestLoadMultiTLD(t *testing.T) {
	path := writeTemp(t, "amazon.co.uk\ngoogle.net\nWWW.BBC.CO.UK\nxn--80ak6aa92e.xn--p1ai\npaypal.com\n")
	refs, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"amazon", "google", "bbc", "xn--80ak6aa92e", "paypal"}
	if !reflect.DeepEqual(refs, want) {
		t.Fatalf("refs = %v, want %v", refs, want)
	}
}

// TestLoadCSVMultiTLD: the CSV route must keep non-.com rows too
// (the seed's SLDs dropped them before they reached the detector).
func TestLoadCSVMultiTLD(t *testing.T) {
	refs, err := Load(writeTemp(t, "1,google.com\n2,amazon.co.uk\n3,example.net\n"))
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"google", "amazon", "example"}
	if !reflect.DeepEqual(refs, want) {
		t.Fatalf("refs = %v, want %v", refs, want)
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope.txt")); err == nil {
		t.Fatal("want error for missing file")
	}
}

// TestLoadCSVBlankFirstLine: sniffing must skip blank lines, so a
// rank CSV with a leading blank line still routes to the CSV parser.
func TestLoadCSVBlankFirstLine(t *testing.T) {
	refs, err := Load(writeTemp(t, "\n1,google.com\n2,facebook.com\n"))
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"google", "facebook"}; !reflect.DeepEqual(refs, want) {
		t.Fatalf("refs = %v, want %v", refs, want)
	}
}

// TestReadInlineList covers the io.Reader entry the /v1/reload handler
// could grow to accept request-body lists through.
func TestReadInlineList(t *testing.T) {
	refs, err := Read(strings.NewReader("google.com\npaypal.com\n"))
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"google", "paypal"}; !reflect.DeepEqual(refs, want) {
		t.Fatalf("refs = %v, want %v", refs, want)
	}
}
