// Package reflist loads reference domain lists — the brand names the
// detector protects — from the two formats defenders actually have:
// a plain one-domain-per-line file (comments and blanks tolerated) or
// an Alexa-style "rank,domain" CSV. Each domain contributes its
// registrable label, suffix-aware, so amazon.co.uk indexes "amazon"
// just as google.com indexes "google", on any TLD.
//
// The loader sits in its own package because three layers share it:
// the CLI (detect/compile/serve flags), the HTTP serving layer's
// /v1/reload endpoint, and the facade's Serve wiring. A reference
// list is the unit of hot reload, so the parsing rules must be one
// implementation — a list that loads differently over HTTP than it
// did at startup would make epochs incomparable.
package reflist

import (
	"bufio"
	"io"
	"os"
	"strings"

	"repro/internal/domain"
	"repro/internal/ranking"
)

// maxLineBytes bounds one list line; zone-scale lists stay streamable.
const maxLineBytes = 16 * 1024 * 1024

// Load reads reference labels from a plain list or rank CSV at path.
func Load(path string) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	// Only the first non-blank line is sniffed for the CSV comma: a
	// plain domain list whose head happens to contain a comma further
	// down must not be misrouted to the CSV parser, and read/seek
	// errors are reported instead of ignored.
	sniff := bufio.NewScanner(f)
	sniff.Buffer(make([]byte, 64*1024), maxLineBytes)
	isCSV := false
	for sniff.Scan() {
		if line := strings.TrimSpace(sniff.Text()); line != "" {
			isCSV = strings.Contains(line, ",")
			break
		}
	}
	if err := sniff.Err(); err != nil {
		return nil, err
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	if isCSV {
		return ReadCSV(f)
	}
	return Read(f)
}

// Read parses a plain domain list: one domain per line, blank lines
// and #-comments skipped, each domain reduced to its registrable label.
func Read(r io.Reader) ([]string, error) {
	var refs []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), maxLineBytes)
	for sc.Scan() {
		d := strings.TrimSpace(sc.Text())
		if d == "" || strings.HasPrefix(d, "#") {
			continue
		}
		if label, _ := domain.Registrable(strings.ToLower(d)); label != "" {
			refs = append(refs, label)
		}
	}
	return refs, sc.Err()
}

// Labels reduces an inline reference list exactly the way the file
// loaders reduce their lines: whitespace trimmed, blanks and
// #-comments skipped, lowercased, and cut to the registrable label —
// so {"references":["paypal.com"]} over the reload API indexes
// "paypal", not an inert dotted literal no label can ever match.
func Labels(domains []string) []string {
	refs := make([]string, 0, len(domains))
	for _, d := range domains {
		d = strings.TrimSpace(d)
		if d == "" || strings.HasPrefix(d, "#") {
			continue
		}
		if label, _ := domain.Registrable(strings.ToLower(d)); label != "" {
			refs = append(refs, label)
		}
	}
	return refs
}

// ReadCSV parses an Alexa-style "rank,domain" CSV, keeping rank order.
func ReadCSV(r io.Reader) ([]string, error) {
	list, err := ranking.ParseCSV(r)
	if err != nil {
		return nil, err
	}
	return list.SLDs(list.Len()), nil
}
