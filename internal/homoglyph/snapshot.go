package homoglyph

import (
	"fmt"
	"sort"

	"repro/internal/confusables"
	"repro/internal/simchar"
)

// Snapshot is the flattened, serializable form of the compiled index: one
// row per indexed character (sorted by rune) plus the concatenated
// partner and source-mask arrays, laid out contiguously in rune order.
// It exists so the internal/snapshot codec can persist a fully compiled
// database and FromSnapshot can rebuild one without touching the font,
// the SimChar Δ scan, or the UC skeleton walk — the whole Section 3
// build cost collapses into bulk array reads.
type Snapshot struct {
	Use      Source
	Runes    []rune   // indexed characters, ascending
	Counts   []int32  // partners per character, parallel to Runes
	UCSkel   []rune   // precomputed UC skeleton (0 = none), parallel
	SimASCII []rune   // smallest ASCII SimChar partner (0 = none)
	SimLow   []rune   // smallest SimChar partner overall (0 = none)
	Partners []rune   // concatenated sorted partner lists, rune order
	Masks    []Source // parallel to Partners
}

// Snapshot flattens the compiled index. The layout is canonical (runes
// ascending, partner spans re-laid in that order), so equal databases
// produce identical snapshots regardless of map iteration order at
// compile time.
func (db *DB) Snapshot() *Snapshot {
	s := &Snapshot{Use: db.use}
	s.Runes = make([]rune, 0, len(db.idx.spans))
	for r := range db.idx.spans {
		s.Runes = append(s.Runes, r)
	}
	sort.Slice(s.Runes, func(i, j int) bool { return s.Runes[i] < s.Runes[j] })
	s.Counts = make([]int32, len(s.Runes))
	s.UCSkel = make([]rune, len(s.Runes))
	s.SimASCII = make([]rune, len(s.Runes))
	s.SimLow = make([]rune, len(s.Runes))
	s.Partners = make([]rune, 0, len(db.idx.partners))
	s.Masks = make([]Source, 0, len(db.idx.masks))
	for i, r := range s.Runes {
		sp := db.idx.spans[r]
		s.Counts[i] = sp.end - sp.start
		s.UCSkel[i] = sp.ucSkel
		s.SimASCII[i] = sp.simASCII
		s.SimLow[i] = sp.simLow
		s.Partners = append(s.Partners, db.idx.partners[sp.start:sp.end]...)
		s.Masks = append(s.Masks, db.idx.masks[sp.start:sp.end]...)
	}
	return s
}

// FromSnapshot rebuilds a database from its flattened form plus the
// component databases (either may be nil, matching New). The compiled
// index is taken from the snapshot verbatim — nothing is recompiled, so
// load cost is one map fill over the row arrays.
func FromSnapshot(s *Snapshot, uc *confusables.DB, sim *simchar.DB) (*DB, error) {
	n := len(s.Runes)
	if len(s.Counts) != n || len(s.UCSkel) != n || len(s.SimASCII) != n || len(s.SimLow) != n {
		return nil, fmt.Errorf("homoglyph: snapshot row arrays disagree on length")
	}
	if len(s.Partners) != len(s.Masks) {
		return nil, fmt.Errorf("homoglyph: %d partners vs %d masks", len(s.Partners), len(s.Masks))
	}
	use := s.Use
	if use == SourceNone {
		use = SourceUC | SourceSimChar
	}
	idx := &index{
		spans:    make(map[rune]span, n),
		partners: s.Partners,
		masks:    s.Masks,
	}
	off := int32(0)
	for i, r := range s.Runes {
		c := s.Counts[i]
		if c < 0 || int(off)+int(c) > len(s.Partners) {
			return nil, fmt.Errorf("homoglyph: snapshot partner spans overflow at U+%04X", r)
		}
		if _, dup := idx.spans[r]; dup {
			return nil, fmt.Errorf("homoglyph: duplicate snapshot row for U+%04X", r)
		}
		idx.spans[r] = span{
			start:    off,
			end:      off + c,
			ucSkel:   s.UCSkel[i],
			simASCII: s.SimASCII[i],
			simLow:   s.SimLow[i],
		}
		off += c
	}
	if int(off) != len(s.Partners) {
		return nil, fmt.Errorf("homoglyph: %d partners unclaimed by snapshot rows", len(s.Partners)-int(off))
	}
	return &DB{uc: uc, sim: sim, use: use, idx: idx}, nil
}
