package homoglyph

import (
	"testing"
	"testing/quick"

	"repro/internal/confusables"
	"repro/internal/hexfont"
	"repro/internal/simchar"
)

// testComponents builds small, fully-controlled component databases:
//
//	UC:      а(U+0430)→a, е(U+0435)→e, ѕ(U+0455)→s
//	SimChar: o/ο(U+03BF) twins, o/օ(U+0585) twins, x/х(U+0445) twins
func testComponents() (*confusables.DB, *simchar.DB) {
	uc := confusables.New()
	uc.Add(0x0430, []rune{'a'}, "CYRILLIC A")
	uc.Add(0x0435, []rune{'e'}, "CYRILLIC E")
	uc.Add(0x0455, []rune{'s'}, "CYRILLIC DZE")

	font := hexfont.New()
	shape := func(seed int) *hexfont.Glyph {
		g := &hexfont.Glyph{Width: 8}
		for i := 0; i < 12; i++ {
			g.Set(i+2, (i+seed)%6)
			g.Set(i+2, (i+seed+3)%6)
		}
		return g
	}
	font.SetGlyph('o', shape(0))
	font.SetGlyph(0x03BF, shape(0)) // ο
	font.SetGlyph(0x0585, shape(0)) // օ
	font.SetGlyph('x', shape(2))
	font.SetGlyph(0x0445, shape(2)) // х
	font.SetGlyph('z', shape(4))    // no partners
	sim, _ := simchar.Build(font, nil, simchar.Options{})
	return uc, sim
}

func testDB() *DB {
	uc, sim := testComponents()
	return New(uc, sim, 0)
}

func TestSourceString(t *testing.T) {
	cases := map[Source]string{
		SourceNone:               "none",
		SourceUC:                 "UC",
		SourceSimChar:            "SimChar",
		SourceUC | SourceSimChar: "UC∪SimChar",
	}
	for src, want := range cases {
		if got := src.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", src, got, want)
		}
	}
}

func TestConfusableSources(t *testing.T) {
	db := testDB()
	cases := []struct {
		a, b rune
		ok   bool
		src  Source
	}{
		{'a', 0x0430, true, SourceUC},
		{0x0430, 'a', true, SourceUC}, // symmetric
		{'o', 0x03BF, true, SourceSimChar},
		{0x03BF, 0x0585, true, SourceSimChar}, // twin of a twin
		{'x', 0x0445, true, SourceSimChar},
		{'a', 'b', false, SourceNone},
		{'z', 'o', false, SourceNone},
	}
	for _, c := range cases {
		ok, src := db.Confusable(c.a, c.b)
		if ok != c.ok || (ok && src != c.src) {
			t.Errorf("Confusable(%U, %U) = %v, %v; want %v, %v", c.a, c.b, ok, src, c.ok, c.src)
		}
	}
}

func TestConfusableIdentity(t *testing.T) {
	db := testDB()
	if ok, _ := db.Confusable('q', 'q'); !ok {
		t.Error("identity not confusable")
	}
}

func TestConfusableSymmetryProperty(t *testing.T) {
	db := testDB()
	pool := []rune{'a', 'e', 'o', 's', 'x', 'z', 0x0430, 0x0435, 0x0455, 0x03BF, 0x0585, 0x0445}
	f := func(i, j uint8) bool {
		a := pool[int(i)%len(pool)]
		b := pool[int(j)%len(pool)]
		okAB, _ := db.Confusable(a, b)
		okBA, _ := db.Confusable(b, a)
		return okAB == okBA
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestWithSources(t *testing.T) {
	db := testDB()
	ucOnly := db.WithSources(SourceUC)
	simOnly := db.WithSources(SourceSimChar)

	if ok, _ := ucOnly.Confusable('o', 0x03BF); ok {
		t.Error("UC-only view answered a SimChar pair")
	}
	if ok, _ := simOnly.Confusable('a', 0x0430); ok {
		t.Error("SimChar-only view answered a UC pair")
	}
	if ok, _ := ucOnly.Confusable('a', 0x0430); !ok {
		t.Error("UC-only view lost its own pair")
	}
}

func TestHomoglyphsUnion(t *testing.T) {
	db := testDB()
	got := db.Homoglyphs('o')
	if len(got) != 2 || got[0] != 0x03BF || got[1] != 0x0585 {
		t.Errorf("Homoglyphs(o) = %U", got)
	}
	if got := db.Homoglyphs('a'); len(got) != 1 || got[0] != 0x0430 {
		t.Errorf("Homoglyphs(a) = %U", got)
	}
	if got := db.Homoglyphs('z'); len(got) != 0 {
		t.Errorf("Homoglyphs(z) = %U", got)
	}
}

func TestHomoglyphsSorted(t *testing.T) {
	db := testDB()
	for _, r := range []rune{'o', 'a', 'x'} {
		hs := db.Homoglyphs(r)
		for i := 1; i < len(hs); i++ {
			if hs[i-1] >= hs[i] {
				t.Fatalf("Homoglyphs(%c) not sorted: %U", r, hs)
			}
		}
	}
}

func TestCanonical(t *testing.T) {
	db := testDB()
	cases := []struct{ in, want rune }{
		{0x0430, 'a'},    // UC skeleton
		{0x03BF, 'o'},    // SimChar ASCII partner
		{0x0585, 'o'},    // SimChar ASCII partner (other twin)
		{'a', 'a'},       // ASCII is always itself
		{0x4E00, 0x4E00}, // unknown char maps to itself
	}
	for _, c := range cases {
		if got := db.Canonical(c.in); got != c.want {
			t.Errorf("Canonical(%U) = %U, want %U", c.in, got, c.want)
		}
	}
}

func TestCanonicalIdempotentProperty(t *testing.T) {
	db := testDB()
	pool := []rune{'a', 'o', 'x', 'z', 0x0430, 0x0435, 0x0455, 0x03BF, 0x0585, 0x0445, 0x4E8C}
	f := func(i uint8) bool {
		r := pool[int(i)%len(pool)]
		c := db.Canonical(r)
		return db.Canonical(c) == c
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRevert(t *testing.T) {
	db := testDB()
	cases := []struct{ in, want string }{
		{"gооgle", "gооgle"}, // Cyrillic о is not in this tiny DB
		{"οx", "ox"},
		{"аеѕ", "aes"},
		{"plain", "plain"},
		{"", ""},
	}
	for _, c := range cases {
		if got := db.Revert(c.in); got != c.want {
			t.Errorf("Revert(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestNilComponents(t *testing.T) {
	uc, sim := testComponents()
	ucOnly := New(uc, nil, 0)
	if ok, _ := ucOnly.Confusable('a', 0x0430); !ok {
		t.Error("nil SimChar broke UC lookups")
	}
	if ok, _ := ucOnly.Confusable('o', 0x03BF); ok {
		t.Error("nil SimChar answered a SimChar pair")
	}
	simOnly := New(nil, sim, 0)
	if ok, _ := simOnly.Confusable('o', 0x03BF); !ok {
		t.Error("nil UC broke SimChar lookups")
	}
	if got := simOnly.Revert("ο"); got != "o" {
		t.Errorf("nil-UC Revert = %q", got)
	}
	if New(nil, nil, 0).Chars().Len() != 0 {
		t.Error("empty DB has chars")
	}
}

func TestChars(t *testing.T) {
	db := testDB()
	chars := db.Chars()
	for _, r := range []rune{0x0430, 0x03BF, 0x0585, 'o'} {
		if !chars.Contains(r) {
			t.Errorf("Chars missing %U", r)
		}
	}
	ucOnly := db.WithSources(SourceUC).Chars()
	if ucOnly.Contains(0x03BF) {
		t.Error("UC-only chars include SimChar entries")
	}
}

func TestComponentAccessors(t *testing.T) {
	uc, sim := testComponents()
	db := New(uc, sim, 0)
	if db.UC() != uc || db.SimChar() != sim {
		t.Error("accessors returned wrong components")
	}
}
