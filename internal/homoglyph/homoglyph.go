// Package homoglyph provides the unified homoglyph database the ShamFinder
// framework queries during detection: the union of the UC confusables
// database and the automatically built SimChar database (paper Figure 2).
// It also implements the homograph→original reversion of Section 6.4.
//
// The union is compiled once, at New() time, into an immutable flattened
// index: one sorted partner array per character with a per-partner source
// mask, plus precomputed canonicalization data. Queries never walk the
// component databases — Confusable is a map probe plus one binary search,
// and Homoglyphs returns a filtered copy of the precompiled partner list
// instead of re-scanning every UC source. Source-restricted views
// (WithSources) share the same index and filter by mask at query time.
package homoglyph

import (
	"sort"

	"repro/internal/confusables"
	"repro/internal/simchar"
	"repro/internal/ucd"
)

// Source identifies which component database(s) vouch for a pair.
type Source uint8

const (
	// SourceNone means the pair is not in the database.
	SourceNone Source = 0
	// SourceUC marks pairs from the TR39 confusables database.
	SourceUC Source = 1 << iota
	// SourceSimChar marks pairs from the pixel-distance database.
	SourceSimChar
)

// String names the source combination.
func (s Source) String() string {
	switch s {
	case SourceUC:
		return "UC"
	case SourceSimChar:
		return "SimChar"
	case SourceUC | SourceSimChar:
		return "UC∪SimChar"
	default:
		return "none"
	}
}

// span is one character's slice of the flattened partner arrays plus its
// precomputed canonicalization targets (zero = none).
type span struct {
	start, end int32
	ucSkel     rune // UC skeleton, when it differs from the rune itself
	simASCII   rune // smallest ASCII SimChar partner
	simLow     rune // smallest SimChar partner overall
}

// index is the immutable compiled union, shared by every WithSources view.
type index struct {
	spans    map[rune]span
	partners []rune   // concatenated sorted partner lists
	masks    []Source // parallel to partners
}

// DB is the unified homoglyph database.
type DB struct {
	uc  *confusables.DB
	sim *simchar.DB
	use Source
	idx *index
}

// New builds a database from the available components; either may be nil.
// The use mask restricts which components answer queries, letting the
// evaluation compare UC-only (the prior work of Quinkert et al.) against
// SimChar and the union (paper Tables 8 and 14). The component union is
// compiled into the flattened index here, once; WithSources views reuse it.
func New(uc *confusables.DB, sim *simchar.DB, use Source) *DB {
	if use == SourceNone {
		use = SourceUC | SourceSimChar
	}
	return &DB{uc: uc, sim: sim, use: use, idx: compile(uc, sim)}
}

// WithSources returns a view of the same database restricted to the mask.
func (db *DB) WithSources(use Source) *DB {
	return &DB{uc: db.uc, sim: db.sim, use: use, idx: db.idx}
}

// compile flattens the UC ∪ SimChar union. UC confusability is skeleton
// equality (a ~ b iff skeleton(a) == skeleton(b)), so each skeleton class
// — the sources resolving to a prototype, plus the prototype itself —
// forms a clique of partners. SimChar pairs are symmetric already.
func compile(uc *confusables.DB, sim *simchar.DB) *index {
	adj := make(map[rune]map[rune]Source)
	link := func(a, b rune, src Source) {
		m := adj[a]
		if m == nil {
			m = make(map[rune]Source)
			adj[a] = m
		}
		m[b] |= src
	}

	if sim != nil {
		for _, r := range sim.Chars().Runes() {
			for _, h := range sim.Homoglyphs(r) {
				link(r, h, SourceSimChar)
			}
		}
	}
	if uc != nil {
		// UC confusability is FULL-skeleton equality: every rune sharing a
		// prototype sequence forms a clique. Keying classes by the complete
		// sequence (not its first rune, the pre-fix truncation) keeps a
		// multi-rune-prototype source ('Ⅱ' → "II") out of the prototype's
		// single-rune clique — pairing it with 'I' would let the pairwise
		// backend claim confusions TR39 does not list, and could even mint
		// ASCII↔ASCII pairs ('m' ~ 'r'), breaking posting soundness. Runes
		// whose sequences agree ('w' and 'Ԝ' both → "vv") still pair up.
		classes := make(map[string][]rune)
		var skel []rune
		for _, s := range uc.Sources() {
			skel = uc.SkeletonAppend(skel[:0], s)
			if len(skel) == 1 && skel[0] == s {
				continue // self-prototype: nothing to pair with
			}
			classes[string(skel)] = append(classes[string(skel)], s)
		}
		for sk, members := range classes {
			// A single-rune prototype belongs to its own class, unless it
			// maps onward itself (then it sits in the class it maps into).
			if prot := []rune(sk); len(prot) == 1 {
				if t := uc.SkeletonAppend(nil, prot[0]); len(t) == 1 && t[0] == prot[0] {
					members = append(members, prot[0])
				}
			}
			for _, a := range members {
				for _, b := range members {
					if a != b {
						link(a, b, SourceUC)
					}
				}
			}
		}
	}

	// Lay the spans out in ascending rune order so the in-memory arena
	// is identical across runs (the snapshot codec re-lays in this same
	// order; building it this way makes the two byte-equal).
	order := make([]rune, 0, len(adj))
	for r := range adj {
		order = append(order, r)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })

	idx := &index{spans: make(map[rune]span, len(adj))}
	for _, r := range order {
		m := adj[r]
		sp := span{start: int32(len(idx.partners))}
		ps := make([]rune, 0, len(m))
		for p := range m {
			ps = append(ps, p)
		}
		sort.Slice(ps, func(i, j int) bool { return ps[i] < ps[j] })
		for _, p := range ps {
			idx.partners = append(idx.partners, p)
			idx.masks = append(idx.masks, m[p])
		}
		sp.end = int32(len(idx.partners))
		if uc != nil {
			// CanonicalRune follows the chain only through single-rune
			// targets: a rune whose prototype is a sequence has no one-rune
			// original, so it canonicalizes no further (SkeletonRune would
			// have truncated "II" to 'I' here).
			if sk := uc.CanonicalRune(r); sk != r {
				sp.ucSkel = sk
			}
		}
		if sim != nil {
			if hs := sim.Homoglyphs(r); len(hs) > 0 {
				sp.simLow = hs[0]
				for _, h := range hs {
					if h < 0x80 {
						sp.simASCII = h
						break
					}
				}
			}
		}
		idx.spans[r] = sp
	}
	return idx
}

// Confusable reports whether a and b are listed as a homoglyph pair, and
// by which component: one span probe and one binary search over the
// flattened partner array.
func (db *DB) Confusable(a, b rune) (bool, Source) {
	if a == b {
		return true, db.use
	}
	sp, ok := db.idx.spans[a]
	if !ok {
		return false, SourceNone
	}
	lo, hi := sp.start, sp.end
	for lo < hi {
		mid := (lo + hi) / 2
		switch p := db.idx.partners[mid]; {
		case p < b:
			lo = mid + 1
		case p > b:
			hi = mid
		default:
			if src := db.idx.masks[mid] & db.use; src != 0 {
				return true, src
			}
			return false, SourceNone
		}
	}
	return false, SourceNone
}

// Homoglyphs returns every character listed as confusable with r under
// the view's sources, sorted ascending. The result is exactly the set of
// x ≠ r for which Confusable(r, x) holds.
func (db *DB) Homoglyphs(r rune) []rune {
	sp, ok := db.idx.spans[r]
	if !ok {
		return nil
	}
	out := make([]rune, 0, sp.end-sp.start)
	for i := sp.start; i < sp.end; i++ {
		if db.idx.masks[i]&db.use != 0 {
			out = append(out, db.idx.partners[i])
		}
	}
	return out
}

// Canonical maps r to its most plausible original character: the UC
// skeleton if listed, otherwise the smallest ASCII partner in SimChar,
// otherwise r itself. This drives the Section 6.4 reversion and the
// Figure 12 warning UI ("Lao Digit Zero → Latin Small Letter O"). All
// candidates are precomputed at New() time, so this is O(1).
func (db *DB) Canonical(r rune) rune {
	if r < 0x80 {
		return r
	}
	sp, ok := db.idx.spans[r]
	if !ok {
		return r
	}
	if db.use&SourceUC != 0 && sp.ucSkel != 0 {
		return sp.ucSkel
	}
	if db.use&SourceSimChar != 0 {
		if sp.simASCII != 0 {
			return sp.simASCII
		}
		// No ASCII partner: fall back to the smallest partner so chains
		// (e.g. Hangul tail twins) still canonicalize deterministically.
		if sp.simLow != 0 && sp.simLow < r {
			return sp.simLow
		}
	}
	return r
}

// Revert maps every rune of a (Unicode-form) label to its canonical
// counterpart, reconstructing the domain a homograph targets (§6.4).
func (db *DB) Revert(label string) string {
	out := make([]rune, 0, len(label))
	for _, r := range label {
		out = append(out, db.Canonical(r))
	}
	return string(out)
}

// Chars returns the set of non-ASCII characters known to the database
// under the current mask (Table 1 accounting).
func (db *DB) Chars() *ucd.RuneSet {
	s := ucd.NewRuneSet()
	if db.use&SourceSimChar != 0 && db.sim != nil {
		s = s.Union(db.sim.Chars())
	}
	if db.use&SourceUC != 0 && db.uc != nil {
		s = s.Union(db.uc.Chars())
	}
	return s
}

// Use returns the view's active source mask.
func (db *DB) Use() Source { return db.use }

// UC returns the UC component (may be nil).
func (db *DB) UC() *confusables.DB { return db.uc }

// SimChar returns the SimChar component (may be nil).
func (db *DB) SimChar() *simchar.DB { return db.sim }
