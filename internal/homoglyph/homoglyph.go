// Package homoglyph provides the unified homoglyph database the ShamFinder
// framework queries during detection: the union of the UC confusables
// database and the automatically built SimChar database (paper Figure 2).
// It also implements the homograph→original reversion of Section 6.4.
package homoglyph

import (
	"sort"

	"repro/internal/confusables"
	"repro/internal/simchar"
	"repro/internal/ucd"
)

// Source identifies which component database(s) vouch for a pair.
type Source uint8

const (
	// SourceNone means the pair is not in the database.
	SourceNone Source = 0
	// SourceUC marks pairs from the TR39 confusables database.
	SourceUC Source = 1 << iota
	// SourceSimChar marks pairs from the pixel-distance database.
	SourceSimChar
)

// String names the source combination.
func (s Source) String() string {
	switch s {
	case SourceUC:
		return "UC"
	case SourceSimChar:
		return "SimChar"
	case SourceUC | SourceSimChar:
		return "UC∪SimChar"
	default:
		return "none"
	}
}

// DB is the unified homoglyph database.
type DB struct {
	uc  *confusables.DB
	sim *simchar.DB
	use Source
}

// New builds a database from the available components; either may be nil.
// The use mask restricts which components answer queries, letting the
// evaluation compare UC-only (the prior work of Quinkert et al.) against
// SimChar and the union (paper Tables 8 and 14).
func New(uc *confusables.DB, sim *simchar.DB, use Source) *DB {
	if use == SourceNone {
		use = SourceUC | SourceSimChar
	}
	return &DB{uc: uc, sim: sim, use: use}
}

// WithSources returns a view of the same database restricted to the mask.
func (db *DB) WithSources(use Source) *DB {
	return &DB{uc: db.uc, sim: db.sim, use: use}
}

// Confusable reports whether a and b are listed as a homoglyph pair, and
// by which component.
func (db *DB) Confusable(a, b rune) (bool, Source) {
	if a == b {
		return true, db.use
	}
	var src Source
	if db.use&SourceUC != 0 && db.uc != nil && db.uc.Confusable(a, b) {
		src |= SourceUC
	}
	if db.use&SourceSimChar != 0 && db.sim != nil && db.sim.Confusable(a, b) {
		src |= SourceSimChar
	}
	return src != 0, src
}

// Homoglyphs returns every character listed as confusable with r, sorted.
func (db *DB) Homoglyphs(r rune) []rune {
	set := map[rune]bool{}
	if db.use&SourceSimChar != 0 && db.sim != nil {
		for _, h := range db.sim.Homoglyphs(r) {
			set[h] = true
		}
	}
	if db.use&SourceUC != 0 && db.uc != nil {
		// UC is directed (source → prototype); collect both directions.
		for _, src := range db.uc.Sources() {
			if db.uc.Confusable(src, r) && src != r {
				set[src] = true
			}
		}
		if tgt, ok := db.uc.Lookup(r); ok && len(tgt) == 1 && tgt[0] != r {
			set[tgt[0]] = true
		}
	}
	out := make([]rune, 0, len(set))
	for h := range set {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Canonical maps r to its most plausible original character: the UC
// skeleton if listed, otherwise the smallest ASCII partner in SimChar,
// otherwise r itself. This drives the Section 6.4 reversion and the
// Figure 12 warning UI ("Lao Digit Zero → Latin Small Letter O").
func (db *DB) Canonical(r rune) rune {
	if r < 0x80 {
		return r
	}
	if db.use&SourceUC != 0 && db.uc != nil {
		if s := db.uc.SkeletonRune(r); s != r {
			return s
		}
	}
	if db.use&SourceSimChar != 0 && db.sim != nil {
		for _, h := range db.sim.Homoglyphs(r) {
			if h < 0x80 {
				return h
			}
		}
		// No ASCII partner: fall back to the smallest partner so chains
		// (e.g. Hangul tail twins) still canonicalize deterministically.
		if hs := db.sim.Homoglyphs(r); len(hs) > 0 && hs[0] < r {
			return hs[0]
		}
	}
	return r
}

// Revert maps every rune of a (Unicode-form) label to its canonical
// counterpart, reconstructing the domain a homograph targets (§6.4).
func (db *DB) Revert(label string) string {
	out := make([]rune, 0, len(label))
	for _, r := range label {
		out = append(out, db.Canonical(r))
	}
	return string(out)
}

// Chars returns the set of non-ASCII characters known to the database
// under the current mask (Table 1 accounting).
func (db *DB) Chars() *ucd.RuneSet {
	s := ucd.NewRuneSet()
	if db.use&SourceSimChar != 0 && db.sim != nil {
		s = s.Union(db.sim.Chars())
	}
	if db.use&SourceUC != 0 && db.uc != nil {
		s = s.Union(db.uc.Chars())
	}
	return s
}

// UC returns the UC component (may be nil).
func (db *DB) UC() *confusables.DB { return db.uc }

// SimChar returns the SimChar component (may be nil).
func (db *DB) SimChar() *simchar.DB { return db.sim }
