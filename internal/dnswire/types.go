// Package dnswire implements an RFC 1035 DNS message codec: header,
// question and resource-record encoding/decoding with full name
// compression support, plus the record types the ShamFinder measurement
// pipeline probes for (A, NS, MX, CNAME, TXT, SOA, AAAA) and EDNS0 OPT.
//
// The codec follows the decode-into-preallocated-struct style: Message
// has an Unpack method that reuses its slices across calls where
// possible, and Pack appends into a caller-provided buffer, so steady-
// state probing allocates close to nothing.
package dnswire

import (
	"errors"
	"fmt"
	"strings"
)

// Type is a DNS RR TYPE (RFC 1035 §3.2.2 plus later allocations).
type Type uint16

// Record types used by the measurement pipeline.
const (
	TypeNone  Type = 0
	TypeA     Type = 1
	TypeNS    Type = 2
	TypeCNAME Type = 5
	TypeSOA   Type = 6
	TypeMX    Type = 15
	TypeTXT   Type = 16
	TypeAAAA  Type = 28
	TypeOPT   Type = 41
	TypeANY   Type = 255
)

var typeNames = map[Type]string{
	TypeA:     "A",
	TypeNS:    "NS",
	TypeCNAME: "CNAME",
	TypeSOA:   "SOA",
	TypeMX:    "MX",
	TypeTXT:   "TXT",
	TypeAAAA:  "AAAA",
	TypeOPT:   "OPT",
	TypeANY:   "ANY",
}

// String returns the mnemonic for t, or "TYPE<n>" for unknown types
// (RFC 3597 generic notation).
func (t Type) String() string {
	if s, ok := typeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("TYPE%d", uint16(t))
}

// TypeByName maps a mnemonic like "MX" back to its Type code.
func TypeByName(s string) (Type, bool) {
	for t, name := range typeNames {
		if name == strings.ToUpper(s) {
			return t, true
		}
	}
	return TypeNone, false
}

// Class is a DNS CLASS. Only IN is used in practice.
type Class uint16

// DNS classes.
const (
	ClassIN  Class = 1
	ClassANY Class = 255
)

// String returns the mnemonic for c.
func (c Class) String() string {
	switch c {
	case ClassIN:
		return "IN"
	case ClassANY:
		return "ANY"
	}
	return fmt.Sprintf("CLASS%d", uint16(c))
}

// Opcode is the DNS header operation code.
type Opcode uint8

// Opcodes.
const (
	OpcodeQuery  Opcode = 0
	OpcodeStatus Opcode = 2
)

// RCode is the DNS response code.
type RCode uint8

// Response codes (RFC 1035 §4.1.1).
const (
	RCodeSuccess        RCode = 0 // NOERROR
	RCodeFormatError    RCode = 1 // FORMERR
	RCodeServerFailure  RCode = 2 // SERVFAIL
	RCodeNameError      RCode = 3 // NXDOMAIN
	RCodeNotImplemented RCode = 4 // NOTIMP
	RCodeRefused        RCode = 5 // REFUSED
)

var rcodeNames = map[RCode]string{
	RCodeSuccess:        "NOERROR",
	RCodeFormatError:    "FORMERR",
	RCodeServerFailure:  "SERVFAIL",
	RCodeNameError:      "NXDOMAIN",
	RCodeNotImplemented: "NOTIMP",
	RCodeRefused:        "REFUSED",
}

// String returns the mnemonic for rc.
func (rc RCode) String() string {
	if s, ok := rcodeNames[rc]; ok {
		return s
	}
	return fmt.Sprintf("RCODE%d", uint8(rc))
}

// Codec errors.
var (
	ErrTruncatedMessage = errors.New("dnswire: truncated message")
	ErrNameTooLong      = errors.New("dnswire: name exceeds 255 octets")
	ErrLabelTooLong     = errors.New("dnswire: label exceeds 63 octets")
	ErrPointerLoop      = errors.New("dnswire: compression pointer loop")
	ErrTrailingBytes    = errors.New("dnswire: trailing bytes after message")
	ErrTooManyRecords   = errors.New("dnswire: record count exceeds message size")
)

// Header is the fixed 12-octet DNS message header (RFC 1035 §4.1.1).
type Header struct {
	ID                 uint16
	Response           bool   // QR
	Opcode             Opcode // OPCODE
	Authoritative      bool   // AA
	Truncated          bool   // TC
	RecursionDesired   bool   // RD
	RecursionAvailable bool   // RA
	RCode              RCode  // RCODE
}

func (h *Header) pack(buf []byte, counts [4]uint16) []byte {
	var flags uint16
	if h.Response {
		flags |= 1 << 15
	}
	flags |= uint16(h.Opcode&0xf) << 11
	if h.Authoritative {
		flags |= 1 << 10
	}
	if h.Truncated {
		flags |= 1 << 9
	}
	if h.RecursionDesired {
		flags |= 1 << 8
	}
	if h.RecursionAvailable {
		flags |= 1 << 7
	}
	flags |= uint16(h.RCode & 0xf)
	buf = appendUint16(buf, h.ID)
	buf = appendUint16(buf, flags)
	for _, c := range counts {
		buf = appendUint16(buf, c)
	}
	return buf
}

func (h *Header) unpack(msg []byte) (counts [4]uint16, off int, err error) {
	if len(msg) < 12 {
		return counts, 0, ErrTruncatedMessage
	}
	h.ID = readUint16(msg, 0)
	flags := readUint16(msg, 2)
	h.Response = flags&(1<<15) != 0
	h.Opcode = Opcode(flags >> 11 & 0xf)
	h.Authoritative = flags&(1<<10) != 0
	h.Truncated = flags&(1<<9) != 0
	h.RecursionDesired = flags&(1<<8) != 0
	h.RecursionAvailable = flags&(1<<7) != 0
	h.RCode = RCode(flags & 0xf)
	for i := range counts {
		counts[i] = readUint16(msg, 4+2*i)
	}
	return counts, 12, nil
}

func appendUint16(b []byte, v uint16) []byte {
	return append(b, byte(v>>8), byte(v))
}

func appendUint32(b []byte, v uint32) []byte {
	return append(b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func readUint16(b []byte, off int) uint16 {
	return uint16(b[off])<<8 | uint16(b[off+1])
}

func readUint32(b []byte, off int) uint32 {
	return uint32(b[off])<<24 | uint32(b[off+1])<<16 | uint32(b[off+2])<<8 | uint32(b[off+3])
}
