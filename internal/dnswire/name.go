package dnswire

import "strings"

// maxNameOctets is the RFC 1035 limit on the wire form of a name.
const maxNameOctets = 255

// maxLabelOctets is the RFC 1035 limit on one label.
const maxLabelOctets = 63

// CanonicalName lowercases s and ensures it ends with a single trailing
// dot, the canonical form used throughout the zone store. The root name
// is ".".
func CanonicalName(s string) string {
	s = strings.ToLower(strings.TrimSuffix(s, "."))
	if s == "" {
		return "."
	}
	return s + "."
}

// SplitLabels splits a canonical name into its labels, excluding the
// root. "example.com." yields ["example", "com"].
func SplitLabels(name string) []string {
	name = strings.TrimSuffix(name, ".")
	if name == "" {
		return nil
	}
	return strings.Split(name, ".")
}

// nameCompressor tracks where names (and their suffixes) were written so
// later occurrences can be replaced with 2-octet pointers (RFC 1035
// §4.1.4). Pointers can only target the first 0x3FFF octets.
type nameCompressor map[string]int

// packName appends the wire form of name to buf, compressing against
// previously written names in cmp. cmp may be nil to disable
// compression (required inside RDATA of unknown types).
func packName(buf []byte, name string, cmp nameCompressor) ([]byte, error) {
	name = CanonicalName(name)
	if name == "." {
		return append(buf, 0), nil
	}
	if len(name) > maxNameOctets {
		return buf, ErrNameTooLong
	}
	labels := SplitLabels(name)
	for i := range labels {
		suffix := strings.Join(labels[i:], ".") + "."
		if cmp != nil {
			if ptr, ok := cmp[suffix]; ok {
				return appendUint16(buf, 0xC000|uint16(ptr)), nil
			}
			if len(buf) < 0x3FFF {
				cmp[suffix] = len(buf)
			}
		}
		label := labels[i]
		if len(label) > maxLabelOctets {
			return buf, ErrLabelTooLong
		}
		if len(label) == 0 {
			return buf, ErrTruncatedMessage
		}
		buf = append(buf, byte(len(label)))
		buf = append(buf, label...)
	}
	return append(buf, 0), nil
}

// unpackName reads a possibly-compressed name starting at off within
// msg. It returns the canonical text form and the offset of the first
// octet after the name's in-place representation (i.e. after the
// pointer if one was followed).
func unpackName(msg []byte, off int) (string, int, error) {
	var sb strings.Builder
	// next is the offset to resume at once the first pointer is taken;
	// -1 means no pointer has been followed yet.
	next := -1
	hops := 0
	total := 0
	for {
		if off >= len(msg) {
			return "", 0, ErrTruncatedMessage
		}
		b := msg[off]
		switch {
		case b == 0:
			if next >= 0 {
				off = next
			} else {
				off++
			}
			if sb.Len() == 0 {
				return ".", off, nil
			}
			return sb.String(), off, nil
		case b&0xC0 == 0xC0:
			if off+1 >= len(msg) {
				return "", 0, ErrTruncatedMessage
			}
			ptr := int(b&0x3F)<<8 | int(msg[off+1])
			if next < 0 {
				next = off + 2
			}
			hops++
			// A message of at most 64 KiB can hold fewer than 16 K
			// distinct pointer targets; more hops than that is a loop.
			if hops > len(msg)/2+1 {
				return "", 0, ErrPointerLoop
			}
			off = ptr
		case b&0xC0 != 0:
			return "", 0, ErrTruncatedMessage // reserved label types
		default:
			n := int(b)
			if off+1+n > len(msg) {
				return "", 0, ErrTruncatedMessage
			}
			total += n + 1
			if total > maxNameOctets {
				return "", 0, ErrNameTooLong
			}
			sb.Write(toLowerAppend(msg[off+1 : off+1+n]))
			sb.WriteByte('.')
			off += 1 + n
		}
	}
}

// toLowerAppend lowercases ASCII bytes without allocating for the
// common already-lowercase case.
func toLowerAppend(b []byte) []byte {
	lower := true
	for _, c := range b {
		if 'A' <= c && c <= 'Z' {
			lower = false
			break
		}
	}
	if lower {
		return b
	}
	out := make([]byte, len(b))
	for i, c := range b {
		if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		out[i] = c
	}
	return out
}
