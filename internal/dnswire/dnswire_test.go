package dnswire

import (
	"bytes"
	"net/netip"
	"strings"
	"testing"
	"testing/quick"
)

func TestCanonicalName(t *testing.T) {
	cases := []struct{ in, want string }{
		{"example.com", "example.com."},
		{"Example.COM.", "example.com."},
		{"", "."},
		{".", "."},
		{"a.b.c", "a.b.c."},
	}
	for _, c := range cases {
		if got := CanonicalName(c.in); got != c.want {
			t.Errorf("CanonicalName(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestSplitLabels(t *testing.T) {
	if got := SplitLabels("a.b.com."); len(got) != 3 || got[0] != "a" || got[2] != "com" {
		t.Errorf("SplitLabels = %v", got)
	}
	if got := SplitLabels("."); got != nil {
		t.Errorf("SplitLabels(root) = %v, want nil", got)
	}
}

func TestNameRoundTrip(t *testing.T) {
	names := []string{
		".",
		"com.",
		"example.com.",
		"xn--fcbook-dya.com.",
		strings.Repeat("a", 63) + ".com.",
	}
	for _, name := range names {
		buf, err := packName(nil, name, nil)
		if err != nil {
			t.Fatalf("packName(%q): %v", name, err)
		}
		got, off, err := unpackName(buf, 0)
		if err != nil {
			t.Fatalf("unpackName(%q): %v", name, err)
		}
		if got != name {
			t.Errorf("round trip %q -> %q", name, got)
		}
		if off != len(buf) {
			t.Errorf("offset after %q = %d, want %d", name, off, len(buf))
		}
	}
}

func TestPackNameLimits(t *testing.T) {
	if _, err := packName(nil, strings.Repeat("a", 64)+".com", nil); err != ErrLabelTooLong {
		t.Errorf("long label: got %v, want ErrLabelTooLong", err)
	}
	long := strings.Repeat("aaaaaaa.", 40) // 320 octets
	if _, err := packName(nil, long, nil); err != ErrNameTooLong {
		t.Errorf("long name: got %v, want ErrNameTooLong", err)
	}
}

func TestNameCompression(t *testing.T) {
	cmp := make(nameCompressor)
	buf, err := packName(nil, "mail.example.com.", cmp)
	if err != nil {
		t.Fatal(err)
	}
	firstLen := len(buf)
	buf, err = packName(buf, "www.example.com.", cmp)
	if err != nil {
		t.Fatal(err)
	}
	// Second name should be 4(www)+2(pointer) = 6 octets.
	if got := len(buf) - firstLen; got != 6 {
		t.Errorf("compressed second name uses %d octets, want 6", got)
	}
	name, _, err := unpackName(buf, firstLen)
	if err != nil {
		t.Fatal(err)
	}
	if name != "www.example.com." {
		t.Errorf("decompressed = %q", name)
	}
}

func TestPointerLoopDetected(t *testing.T) {
	// A pointer that points at itself.
	msg := []byte{0xC0, 0x00}
	if _, _, err := unpackName(msg, 0); err != ErrPointerLoop {
		t.Errorf("self-pointer: got %v, want ErrPointerLoop", err)
	}
}

func TestUnpackNameTruncated(t *testing.T) {
	cases := [][]byte{
		{},           // empty
		{5, 'a'},     // label runs past end
		{0xC0},       // pointer missing second octet
		{0x80, 0x01}, // reserved label type
	}
	for _, msg := range cases {
		if _, _, err := unpackName(msg, 0); err == nil {
			t.Errorf("unpackName(% x) succeeded, want error", msg)
		}
	}
}

func TestCaseInsensitiveDecode(t *testing.T) {
	buf := []byte{3, 'W', 'w', 'W', 3, 'C', 'o', 'M', 0}
	name, _, err := unpackName(buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if name != "www.com." {
		t.Errorf("got %q, want lowercase form", name)
	}
}

func mustAddr(t *testing.T, s string) netip.Addr {
	t.Helper()
	a, err := netip.ParseAddr(s)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestMessageRoundTrip(t *testing.T) {
	m := &Message{
		Header: Header{
			ID: 0xBEEF, Response: true, Authoritative: true,
			RecursionDesired: true, RCode: RCodeSuccess,
		},
		Questions: []Question{{Name: "example.com.", Type: TypeA, Class: ClassIN}},
		Answers: []Record{
			{Name: "example.com.", Class: ClassIN, TTL: 300,
				Data: A{Addr: mustAddr(t, "192.0.2.1")}},
			{Name: "example.com.", Class: ClassIN, TTL: 300,
				Data: AAAA{Addr: mustAddr(t, "2001:db8::1")}},
			{Name: "example.com.", Class: ClassIN, TTL: 600,
				Data: MX{Preference: 10, Host: "mail.example.com."}},
			{Name: "example.com.", Class: ClassIN, TTL: 600,
				Data: TXT{Strings: []string{"v=spf1 -all", "second"}}},
		},
		Authority: []Record{
			{Name: "example.com.", Class: ClassIN, TTL: 86400,
				Data: NS{Host: "ns1.example.com."}},
			{Name: "example.com.", Class: ClassIN, TTL: 86400,
				Data: SOA{MName: "ns1.example.com.", RName: "hostmaster.example.com.",
					Serial: 2024010101, Refresh: 7200, Retry: 900, Expire: 1209600, Minimum: 300}},
		},
		Additional: []Record{
			{Name: "www.example.com.", Class: ClassIN, TTL: 60,
				Data: CNAME{Target: "example.com."}},
		},
	}
	buf, err := m.Pack(nil)
	if err != nil {
		t.Fatal(err)
	}
	var got Message
	if err := got.Unpack(buf); err != nil {
		t.Fatalf("Unpack: %v\n% x", err, buf)
	}
	if got.Header != m.Header {
		t.Errorf("header = %+v, want %+v", got.Header, m.Header)
	}
	if len(got.Answers) != 4 || len(got.Authority) != 2 || len(got.Additional) != 1 {
		t.Fatalf("section sizes = %d/%d/%d", len(got.Answers), len(got.Authority), len(got.Additional))
	}
	if a := got.Answers[0].Data.(A); a.Addr != mustAddr(t, "192.0.2.1") {
		t.Errorf("A = %v", a.Addr)
	}
	if mx := got.Answers[2].Data.(MX); mx.Preference != 10 || mx.Host != "mail.example.com." {
		t.Errorf("MX = %+v", mx)
	}
	if txt := got.Answers[3].Data.(TXT); len(txt.Strings) != 2 || txt.Strings[0] != "v=spf1 -all" {
		t.Errorf("TXT = %+v", txt)
	}
	soa := got.Authority[1].Data.(SOA)
	if soa.Serial != 2024010101 || soa.MName != "ns1.example.com." {
		t.Errorf("SOA = %+v", soa)
	}
}

func TestCompressionShrinksMessage(t *testing.T) {
	m := NewQuery(1, "a.very.long.shared.suffix.example.com.", TypeNS)
	for i := 0; i < 5; i++ {
		m.Answers = append(m.Answers, Record{
			Name: "a.very.long.shared.suffix.example.com.", Class: ClassIN, TTL: 60,
			Data: NS{Host: "ns.very.long.shared.suffix.example.com."},
		})
	}
	packed, err := m.Pack(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Rough uncompressed estimate: each of the 6 names would repeat
	// ~39 octets. Compression should cut the total well below that.
	if len(packed) > 180 {
		t.Errorf("compressed message is %d octets, expected < 180", len(packed))
	}
	var got Message
	if err := got.Unpack(packed); err != nil {
		t.Fatal(err)
	}
	if got.Answers[4].Data.(NS).Host != "ns.very.long.shared.suffix.example.com." {
		t.Errorf("round trip lost name: %v", got.Answers[4])
	}
}

func TestUnknownTypeRoundTrip(t *testing.T) {
	m := NewQuery(7, "example.com.", Type(99))
	m.Answers = append(m.Answers, Record{
		Name: "example.com.", Class: ClassIN, TTL: 1,
		Data: Unknown{RRType: Type(99), Data: []byte{1, 2, 3, 4}},
	})
	buf, err := m.Pack(nil)
	if err != nil {
		t.Fatal(err)
	}
	var got Message
	if err := got.Unpack(buf); err != nil {
		t.Fatal(err)
	}
	u := got.Answers[0].Data.(Unknown)
	if u.RRType != 99 || !bytes.Equal(u.Data, []byte{1, 2, 3, 4}) {
		t.Errorf("unknown = %+v", u)
	}
}

func TestTruncate(t *testing.T) {
	m := NewQuery(3, "example.com.", TypeA)
	m.Header.Response = true
	for i := 0; i < 100; i++ {
		m.Answers = append(m.Answers, Record{
			Name: "example.com.", Class: ClassIN, TTL: 60,
			Data: TXT{Strings: []string{strings.Repeat("x", 100)}},
		})
	}
	if err := m.Truncate(MaxUDPPayload); err != nil {
		t.Fatal(err)
	}
	buf, err := m.Pack(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) > MaxUDPPayload {
		t.Errorf("truncated message is %d octets", len(buf))
	}
	if !m.Header.Truncated {
		t.Error("TC bit not set after truncation")
	}
}

func TestTruncateNoopWhenSmall(t *testing.T) {
	m := NewQuery(3, "example.com.", TypeA)
	if err := m.Truncate(MaxUDPPayload); err != nil {
		t.Fatal(err)
	}
	if m.Header.Truncated {
		t.Error("TC bit set on small message")
	}
}

func TestUnpackRejectsHostileCounts(t *testing.T) {
	// Header claiming 65535 answers with no body.
	msg := make([]byte, 12)
	msg[6] = 0xFF
	msg[7] = 0xFF
	var m Message
	if err := m.Unpack(msg); err != ErrTooManyRecords {
		t.Errorf("got %v, want ErrTooManyRecords", err)
	}
}

func TestUnpackTrailingBytes(t *testing.T) {
	m := NewQuery(1, "example.com.", TypeA)
	buf, err := m.Pack(nil)
	if err != nil {
		t.Fatal(err)
	}
	buf = append(buf, 0xAB)
	var got Message
	if err := got.Unpack(buf); err != ErrTrailingBytes {
		t.Errorf("got %v, want ErrTrailingBytes", err)
	}
}

func TestNewResponse(t *testing.T) {
	q := NewQuery(42, "foo.com.", TypeMX)
	r := NewResponse(q, RCodeNameError)
	if !r.Header.Response || r.Header.ID != 42 || r.Header.RCode != RCodeNameError {
		t.Errorf("response header = %+v", r.Header)
	}
	if len(r.Questions) != 1 || r.Questions[0].Name != "foo.com." {
		t.Errorf("question not echoed: %+v", r.Questions)
	}
}

func TestTypeStrings(t *testing.T) {
	if TypeMX.String() != "MX" || Type(9999).String() != "TYPE9999" {
		t.Error("Type.String mismatch")
	}
	if got, ok := TypeByName("aaaa"); !ok || got != TypeAAAA {
		t.Errorf("TypeByName(aaaa) = %v, %v", got, ok)
	}
	if _, ok := TypeByName("NOPE"); ok {
		t.Error("TypeByName accepted junk")
	}
	if RCodeNameError.String() != "NXDOMAIN" || RCode(14).String() != "RCODE14" {
		t.Error("RCode.String mismatch")
	}
	if ClassIN.String() != "IN" || Class(7).String() != "CLASS7" {
		t.Error("Class.String mismatch")
	}
}

func TestHeaderFlagsRoundTrip(t *testing.T) {
	f := func(id uint16, resp, aa, tc, rd, ra bool, op, rc uint8) bool {
		h := Header{
			ID: id, Response: resp, Authoritative: aa, Truncated: tc,
			RecursionDesired: rd, RecursionAvailable: ra,
			Opcode: Opcode(op & 0xf), RCode: RCode(rc & 0xf),
		}
		buf := h.pack(nil, [4]uint16{})
		var got Header
		_, _, err := got.unpack(buf)
		return err == nil && got == h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestNameRoundTripProperty packs and unpacks arbitrary well-formed
// names built from random label lengths.
func TestNameRoundTripProperty(t *testing.T) {
	f := func(seed uint32) bool {
		// Derive 1-4 labels of lengths 1-20 from the seed.
		s := seed
		n := int(s%4) + 1
		var labels []string
		for i := 0; i < n; i++ {
			s = s*1664525 + 1013904223
			l := int(s%20) + 1
			labels = append(labels, strings.Repeat(string(rune('a'+int(s%26))), l))
		}
		name := strings.Join(labels, ".") + "."
		buf, err := packName(nil, name, nil)
		if err != nil {
			return false
		}
		got, _, err := unpackName(buf, 0)
		return err == nil && got == name
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestUnpackFuzzDoesNotPanic(t *testing.T) {
	// Deterministic pseudo-random corpus; Unpack must return an error
	// or succeed but never panic or over-allocate.
	var m Message
	s := uint64(12345)
	for i := 0; i < 2000; i++ {
		s = s*6364136223846793005 + 1442695040888963407
		n := int(s % 64)
		buf := make([]byte, n)
		for j := range buf {
			s = s*6364136223846793005 + 1442695040888963407
			buf[j] = byte(s >> 33)
		}
		_ = m.Unpack(buf) // must not panic
	}
}

func TestRecordString(t *testing.T) {
	r := Record{Name: "a.com.", Class: ClassIN, TTL: 60,
		Data: MX{Preference: 5, Host: "mx.a.com."}}
	want := "a.com. 60 IN MX 5 mx.a.com."
	if got := r.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}
