package dnswire

import (
	"fmt"
	"net/netip"
	"strings"
)

// Question is the QD-section entry of a DNS message.
type Question struct {
	Name  string
	Type  Type
	Class Class
}

// String renders the question in dig-like "name TYPE CLASS" form.
func (q Question) String() string {
	return fmt.Sprintf("%s %s %s", CanonicalName(q.Name), q.Class, q.Type)
}

func (q Question) pack(buf []byte, cmp nameCompressor) ([]byte, error) {
	buf, err := packName(buf, q.Name, cmp)
	if err != nil {
		return buf, err
	}
	buf = appendUint16(buf, uint16(q.Type))
	buf = appendUint16(buf, uint16(q.Class))
	return buf, nil
}

func unpackQuestion(msg []byte, off int) (Question, int, error) {
	var q Question
	name, off, err := unpackName(msg, off)
	if err != nil {
		return q, 0, err
	}
	if off+4 > len(msg) {
		return q, 0, ErrTruncatedMessage
	}
	q.Name = name
	q.Type = Type(readUint16(msg, off))
	q.Class = Class(readUint16(msg, off+2))
	return q, off + 4, nil
}

// RData is the type-specific payload of a resource record.
type RData interface {
	// Type reports the RR TYPE this payload belongs to.
	Type() Type
	// packRData appends the RDATA wire form. Compression is allowed
	// only for the record types RFC 1035 §4.1.4 sanctions (NS, CNAME,
	// SOA, MX names).
	packRData(buf []byte, cmp nameCompressor) ([]byte, error)
	// String renders the zone-file presentation of the RDATA.
	String() string
}

// A is an IPv4 address record.
type A struct{ Addr netip.Addr }

// Type implements RData.
func (A) Type() Type { return TypeA }

func (a A) packRData(buf []byte, _ nameCompressor) ([]byte, error) {
	if !a.Addr.Is4() {
		return buf, fmt.Errorf("dnswire: A record address %v is not IPv4", a.Addr)
	}
	v4 := a.Addr.As4()
	return append(buf, v4[:]...), nil
}

func (a A) String() string { return a.Addr.String() }

// AAAA is an IPv6 address record.
type AAAA struct{ Addr netip.Addr }

// Type implements RData.
func (AAAA) Type() Type { return TypeAAAA }

func (a AAAA) packRData(buf []byte, _ nameCompressor) ([]byte, error) {
	if !a.Addr.Is6() || a.Addr.Is4In6() {
		return buf, fmt.Errorf("dnswire: AAAA record address %v is not IPv6", a.Addr)
	}
	v6 := a.Addr.As16()
	return append(buf, v6[:]...), nil
}

func (a AAAA) String() string { return a.Addr.String() }

// NS is a name-server record.
type NS struct{ Host string }

// Type implements RData.
func (NS) Type() Type { return TypeNS }

func (r NS) packRData(buf []byte, cmp nameCompressor) ([]byte, error) {
	return packName(buf, r.Host, cmp)
}

func (r NS) String() string { return CanonicalName(r.Host) }

// CNAME is a canonical-name alias record.
type CNAME struct{ Target string }

// Type implements RData.
func (CNAME) Type() Type { return TypeCNAME }

func (r CNAME) packRData(buf []byte, cmp nameCompressor) ([]byte, error) {
	return packName(buf, r.Target, cmp)
}

func (r CNAME) String() string { return CanonicalName(r.Target) }

// MX is a mail-exchanger record.
type MX struct {
	Preference uint16
	Host       string
}

// Type implements RData.
func (MX) Type() Type { return TypeMX }

func (r MX) packRData(buf []byte, cmp nameCompressor) ([]byte, error) {
	buf = appendUint16(buf, r.Preference)
	return packName(buf, r.Host, cmp)
}

func (r MX) String() string {
	return fmt.Sprintf("%d %s", r.Preference, CanonicalName(r.Host))
}

// TXT is a text record holding one or more character strings.
type TXT struct{ Strings []string }

// Type implements RData.
func (TXT) Type() Type { return TypeTXT }

func (r TXT) packRData(buf []byte, _ nameCompressor) ([]byte, error) {
	ss := r.Strings
	if len(ss) == 0 {
		ss = []string{""}
	}
	for _, s := range ss {
		if len(s) > 255 {
			return buf, fmt.Errorf("dnswire: TXT string exceeds 255 octets")
		}
		buf = append(buf, byte(len(s)))
		buf = append(buf, s...)
	}
	return buf, nil
}

func (r TXT) String() string {
	parts := make([]string, len(r.Strings))
	for i, s := range r.Strings {
		parts[i] = fmt.Sprintf("%q", s)
	}
	return strings.Join(parts, " ")
}

// SOA is the start-of-authority record.
type SOA struct {
	MName   string // primary name server
	RName   string // responsible mailbox
	Serial  uint32
	Refresh uint32
	Retry   uint32
	Expire  uint32
	Minimum uint32
}

// Type implements RData.
func (SOA) Type() Type { return TypeSOA }

func (r SOA) packRData(buf []byte, cmp nameCompressor) ([]byte, error) {
	buf, err := packName(buf, r.MName, cmp)
	if err != nil {
		return buf, err
	}
	buf, err = packName(buf, r.RName, cmp)
	if err != nil {
		return buf, err
	}
	for _, v := range [5]uint32{r.Serial, r.Refresh, r.Retry, r.Expire, r.Minimum} {
		buf = appendUint32(buf, v)
	}
	return buf, nil
}

func (r SOA) String() string {
	return fmt.Sprintf("%s %s %d %d %d %d %d",
		CanonicalName(r.MName), CanonicalName(r.RName),
		r.Serial, r.Refresh, r.Retry, r.Expire, r.Minimum)
}

// OPT is the EDNS0 pseudo-record (RFC 6891). Only the UDP payload size
// carried in the CLASS field matters for this codec; it is surfaced via
// Record.Class on OPT records.
type OPT struct{}

// Type implements RData.
func (OPT) Type() Type { return TypeOPT }

func (OPT) packRData(buf []byte, _ nameCompressor) ([]byte, error) { return buf, nil }

func (OPT) String() string { return "" }

// Unknown carries the raw RDATA of a type the codec does not model
// (RFC 3597 treatment). It round-trips byte-for-byte.
type Unknown struct {
	RRType Type
	Data   []byte
}

// Type implements RData.
func (u Unknown) Type() Type { return u.RRType }

func (u Unknown) packRData(buf []byte, _ nameCompressor) ([]byte, error) {
	return append(buf, u.Data...), nil
}

func (u Unknown) String() string {
	return fmt.Sprintf("\\# %d %x", len(u.Data), u.Data)
}

// Record is one resource record with its owner name, TTL and payload.
type Record struct {
	Name  string
	Class Class
	TTL   uint32
	Data  RData
}

// String renders the record in zone-file presentation form.
func (r Record) String() string {
	return fmt.Sprintf("%s %d %s %s %s",
		CanonicalName(r.Name), r.TTL, r.Class, r.Data.Type(), r.Data)
}

func (r Record) pack(buf []byte, cmp nameCompressor) ([]byte, error) {
	buf, err := packName(buf, r.Name, cmp)
	if err != nil {
		return buf, err
	}
	buf = appendUint16(buf, uint16(r.Data.Type()))
	buf = appendUint16(buf, uint16(r.Class))
	buf = appendUint32(buf, r.TTL)
	lenOff := len(buf)
	buf = appendUint16(buf, 0) // RDLENGTH placeholder
	buf, err = r.Data.packRData(buf, cmp)
	if err != nil {
		return buf, err
	}
	rdlen := len(buf) - lenOff - 2
	if rdlen > 0xFFFF {
		return buf, fmt.Errorf("dnswire: RDATA exceeds 65535 octets")
	}
	buf[lenOff] = byte(rdlen >> 8)
	buf[lenOff+1] = byte(rdlen)
	return buf, nil
}

func unpackRecord(msg []byte, off int) (Record, int, error) {
	var rec Record
	name, off, err := unpackName(msg, off)
	if err != nil {
		return rec, 0, err
	}
	if off+10 > len(msg) {
		return rec, 0, ErrTruncatedMessage
	}
	typ := Type(readUint16(msg, off))
	rec.Name = name
	rec.Class = Class(readUint16(msg, off+2))
	rec.TTL = readUint32(msg, off+4)
	rdlen := int(readUint16(msg, off+8))
	off += 10
	if off+rdlen > len(msg) {
		return rec, 0, ErrTruncatedMessage
	}
	rdata := msg[off : off+rdlen]
	rec.Data, err = unpackRData(typ, msg, off, rdata)
	if err != nil {
		return rec, 0, err
	}
	return rec, off + rdlen, nil
}

// unpackRData decodes RDATA. msg and rdStart are needed because name
// fields inside RDATA may contain compression pointers into the whole
// message.
func unpackRData(typ Type, msg []byte, rdStart int, rdata []byte) (RData, error) {
	switch typ {
	case TypeA:
		if len(rdata) != 4 {
			return nil, fmt.Errorf("dnswire: A RDATA is %d octets, want 4", len(rdata))
		}
		return A{Addr: netip.AddrFrom4([4]byte(rdata))}, nil
	case TypeAAAA:
		if len(rdata) != 16 {
			return nil, fmt.Errorf("dnswire: AAAA RDATA is %d octets, want 16", len(rdata))
		}
		return AAAA{Addr: netip.AddrFrom16([16]byte(rdata))}, nil
	case TypeNS:
		host, _, err := unpackName(msg, rdStart)
		if err != nil {
			return nil, err
		}
		return NS{Host: host}, nil
	case TypeCNAME:
		target, _, err := unpackName(msg, rdStart)
		if err != nil {
			return nil, err
		}
		return CNAME{Target: target}, nil
	case TypeMX:
		if len(rdata) < 3 {
			return nil, ErrTruncatedMessage
		}
		host, _, err := unpackName(msg, rdStart+2)
		if err != nil {
			return nil, err
		}
		return MX{Preference: readUint16(rdata, 0), Host: host}, nil
	case TypeTXT:
		var ss []string
		for i := 0; i < len(rdata); {
			n := int(rdata[i])
			if i+1+n > len(rdata) {
				return nil, ErrTruncatedMessage
			}
			ss = append(ss, string(rdata[i+1:i+1+n]))
			i += 1 + n
		}
		return TXT{Strings: ss}, nil
	case TypeSOA:
		mname, off, err := unpackName(msg, rdStart)
		if err != nil {
			return nil, err
		}
		rname, off, err := unpackName(msg, off)
		if err != nil {
			return nil, err
		}
		if off+20 > len(msg) || off+20 > rdStart+len(rdata) {
			return nil, ErrTruncatedMessage
		}
		return SOA{
			MName:   mname,
			RName:   rname,
			Serial:  readUint32(msg, off),
			Refresh: readUint32(msg, off+4),
			Retry:   readUint32(msg, off+8),
			Expire:  readUint32(msg, off+12),
			Minimum: readUint32(msg, off+16),
		}, nil
	case TypeOPT:
		return OPT{}, nil
	default:
		return Unknown{RRType: typ, Data: append([]byte(nil), rdata...)}, nil
	}
}
