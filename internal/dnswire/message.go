package dnswire

import (
	"fmt"
	"strings"
)

// MaxUDPPayload is the classic RFC 1035 UDP message size limit. Replies
// larger than the client's advertised limit are truncated (TC bit set)
// so the client retries over TCP.
const MaxUDPPayload = 512

// EDNSPayload is the UDP payload size this codec advertises in OPT
// records it emits.
const EDNSPayload = 4096

// Message is a complete DNS message.
type Message struct {
	Header     Header
	Questions  []Question
	Answers    []Record
	Authority  []Record
	Additional []Record
}

// Pack appends the wire form of m to buf and returns the extended
// slice. Pass nil to allocate fresh. Name compression is applied across
// all sections.
func (m *Message) Pack(buf []byte) ([]byte, error) {
	base := len(buf)
	cmp := make(nameCompressor)
	counts := [4]uint16{
		uint16(len(m.Questions)),
		uint16(len(m.Answers)),
		uint16(len(m.Authority)),
		uint16(len(m.Additional)),
	}
	buf = m.Header.pack(buf, counts)
	var err error
	for _, q := range m.Questions {
		if buf, err = q.pack(buf, cmp); err != nil {
			return buf[:base], fmt.Errorf("packing question %q: %w", q.Name, err)
		}
	}
	for _, sec := range [][]Record{m.Answers, m.Authority, m.Additional} {
		for _, rr := range sec {
			if buf, err = rr.pack(buf, cmp); err != nil {
				return buf[:base], fmt.Errorf("packing record %q: %w", rr.Name, err)
			}
		}
	}
	return buf, nil
}

// Unpack parses a complete DNS message from msg, replacing m's
// contents. Section slices are reused when capacity allows.
func (m *Message) Unpack(msg []byte) error {
	counts, off, err := m.Header.unpack(msg)
	if err != nil {
		return err
	}
	// Each question is ≥5 octets, each record ≥11; reject counts that
	// cannot fit to avoid huge allocations from hostile headers.
	need := 5*int(counts[0]) + 11*(int(counts[1])+int(counts[2])+int(counts[3]))
	if need > len(msg)-off {
		return ErrTooManyRecords
	}
	m.Questions = m.Questions[:0]
	for i := 0; i < int(counts[0]); i++ {
		var q Question
		q, off, err = unpackQuestion(msg, off)
		if err != nil {
			return fmt.Errorf("question %d: %w", i, err)
		}
		m.Questions = append(m.Questions, q)
	}
	for s, dst := range []*[]Record{&m.Answers, &m.Authority, &m.Additional} {
		*dst = (*dst)[:0]
		for i := 0; i < int(counts[s+1]); i++ {
			var rr Record
			rr, off, err = unpackRecord(msg, off)
			if err != nil {
				return fmt.Errorf("section %d record %d: %w", s+1, i, err)
			}
			*dst = append(*dst, rr)
		}
	}
	if off != len(msg) {
		return ErrTrailingBytes
	}
	return nil
}

// Truncate trims m to fit within size octets when packed, setting the
// TC bit if anything was dropped. Records are dropped whole, from the
// additional section backwards, per the usual server behaviour.
func (m *Message) Truncate(size int) error {
	for {
		buf, err := m.Pack(nil)
		if err != nil {
			return err
		}
		if len(buf) <= size {
			return nil
		}
		m.Header.Truncated = true
		switch {
		case len(m.Additional) > 0:
			m.Additional = m.Additional[:len(m.Additional)-1]
		case len(m.Authority) > 0:
			m.Authority = m.Authority[:len(m.Authority)-1]
		case len(m.Answers) > 0:
			m.Answers = m.Answers[:len(m.Answers)-1]
		default:
			return fmt.Errorf("dnswire: cannot truncate message below %d octets", len(buf))
		}
	}
}

// NewQuery builds a standard recursive query for one question.
func NewQuery(id uint16, name string, typ Type) *Message {
	return &Message{
		Header: Header{ID: id, Opcode: OpcodeQuery, RecursionDesired: true},
		Questions: []Question{{
			Name:  CanonicalName(name),
			Type:  typ,
			Class: ClassIN,
		}},
	}
}

// NewResponse builds a response skeleton echoing the query's ID,
// question and RD flag.
func NewResponse(query *Message, rcode RCode) *Message {
	resp := &Message{
		Header: Header{
			ID:               query.Header.ID,
			Response:         true,
			Opcode:           query.Header.Opcode,
			RecursionDesired: query.Header.RecursionDesired,
			RCode:            rcode,
		},
	}
	resp.Questions = append(resp.Questions, query.Questions...)
	return resp
}

// String renders the message in a dig-like multi-section dump, useful
// in test failures.
func (m *Message) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, ";; id=%d %s qr=%t aa=%t tc=%t\n",
		m.Header.ID, m.Header.RCode, m.Header.Response,
		m.Header.Authoritative, m.Header.Truncated)
	for _, q := range m.Questions {
		fmt.Fprintf(&sb, ";; question: %s\n", q)
	}
	for _, sec := range []struct {
		name string
		rrs  []Record
	}{
		{"answer", m.Answers}, {"authority", m.Authority}, {"additional", m.Additional},
	} {
		for _, rr := range sec.rrs {
			fmt.Fprintf(&sb, ";; %s: %s\n", sec.name, rr)
		}
	}
	return sb.String()
}
