package dnsserver

import (
	"net/netip"
	"strings"
	"sync"
	"testing"

	"repro/internal/dnsclient"
	"repro/internal/dnswire"
	"repro/internal/zonefile"
)

func testStore(t *testing.T) *Store {
	t.Helper()
	zone := `
$ORIGIN com.
$TTL 300
@	IN SOA ns.registry.com. admin.registry.com. 1 2 3 4 5
example	IN NS ns1.example.com.
ns1.example	IN A 127.0.0.1
example	IN A 127.0.0.1
example	IN MX 10 mail.example.com.
www.example IN CNAME example
parked	IN NS ns.parking.net.
`
	z, err := zonefile.Parse(strings.NewReader(zone), "")
	if err != nil {
		t.Fatal(err)
	}
	st := NewStore()
	st.AddZone(z)
	return st
}

func startServer(t *testing.T, st *Store) *Server {
	t.Helper()
	srv := NewServer(st)
	if err := srv.ListenAndServe("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

func TestStoreLookup(t *testing.T) {
	st := testStore(t)
	recs, exists := st.Lookup("example.com.", dnswire.TypeA)
	if !exists || len(recs) != 1 {
		t.Fatalf("A lookup: exists=%t recs=%v", exists, recs)
	}
	if _, exists = st.Lookup("nonexistent.com.", dnswire.TypeA); exists {
		t.Error("nonexistent name reported as existing")
	}
	// NODATA: name exists, type absent.
	recs, exists = st.Lookup("parked.com.", dnswire.TypeA)
	if !exists || len(recs) != 0 {
		t.Errorf("NODATA lookup: exists=%t recs=%v", exists, recs)
	}
}

func TestStoreCNAMEChase(t *testing.T) {
	st := testStore(t)
	recs, exists := st.Lookup("www.example.com.", dnswire.TypeA)
	if !exists || len(recs) != 2 {
		t.Fatalf("CNAME chase: exists=%t recs=%v", exists, recs)
	}
	if recs[0].Data.Type() != dnswire.TypeCNAME || recs[1].Data.Type() != dnswire.TypeA {
		t.Errorf("CNAME chase order: %v", recs)
	}
}

func TestStoreAuthoritative(t *testing.T) {
	st := testStore(t)
	if !st.Authoritative("anything.com.") {
		t.Error("not authoritative for .com name")
	}
	if st.Authoritative("example.net.") {
		t.Error("authoritative for .net name")
	}
}

func TestStoreRemove(t *testing.T) {
	st := testStore(t)
	st.Remove("example.com.", dnswire.TypeMX)
	if recs, _ := st.Lookup("example.com.", dnswire.TypeMX); len(recs) != 0 {
		t.Errorf("MX survived removal: %v", recs)
	}
	if recs, _ := st.Lookup("example.com.", dnswire.TypeA); len(recs) != 1 {
		t.Error("A removed collaterally")
	}
	st.Remove("example.com.", dnswire.TypeANY)
	if _, exists := st.Lookup("example.com.", dnswire.TypeA); exists {
		t.Error("name survived ANY removal")
	}
}

func TestServerUDPQuery(t *testing.T) {
	srv := startServer(t, testStore(t))
	c := dnsclient.New(srv.Addr())
	resp, err := c.Query("example.com.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Header.Authoritative {
		t.Error("AA bit not set")
	}
	a := resp.Answers[0].Data.(dnswire.A)
	if a.Addr != netip.MustParseAddr("127.0.0.1") {
		t.Errorf("A = %v", a.Addr)
	}
}

func TestServerNXDOMAIN(t *testing.T) {
	srv := startServer(t, testStore(t))
	c := dnsclient.New(srv.Addr())
	resp, err := c.Query("missing.com.", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.RCode != dnswire.RCodeNameError {
		t.Errorf("rcode = %v", resp.Header.RCode)
	}
	if len(resp.Authority) != 1 || resp.Authority[0].Data.Type() != dnswire.TypeSOA {
		t.Errorf("authority = %v", resp.Authority)
	}
}

func TestServerRefusesOffZone(t *testing.T) {
	srv := startServer(t, testStore(t))
	c := dnsclient.New(srv.Addr())
	_, err := c.Query("example.org.", dnswire.TypeA)
	if err != dnsclient.ErrRefused {
		t.Errorf("err = %v, want ErrRefused", err)
	}
}

func TestServerTruncationAndTCPFallback(t *testing.T) {
	st := testStore(t)
	// Enough TXT records at one name to exceed 512 octets over UDP.
	for i := 0; i < 20; i++ {
		st.Add(dnswire.Record{
			Name: "big.com.", Class: dnswire.ClassIN, TTL: 60,
			Data: dnswire.TXT{Strings: []string{strings.Repeat("x", 80)}},
		})
	}
	srv := startServer(t, st)
	c := dnsclient.New(srv.Addr())
	resp, err := c.Query("big.com.", dnswire.TypeTXT)
	if err != nil {
		t.Fatal(err)
	}
	// The client must have fallen back to TCP and received the full set.
	if len(resp.Answers) != 20 {
		t.Errorf("answers = %d, want 20 (TC fallback failed?)", len(resp.Answers))
	}
	if resp.Header.Truncated {
		t.Error("final response still truncated")
	}
}

func TestServerConcurrentClients(t *testing.T) {
	srv := startServer(t, testStore(t))
	var wg sync.WaitGroup
	errs := make(chan error, 50)
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := dnsclient.New(srv.Addr())
			if _, err := c.Query("example.com.", dnswire.TypeNS); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if srv.Queries() < 50 {
		t.Errorf("query counter = %d", srv.Queries())
	}
}

func TestServerOnQueryHook(t *testing.T) {
	st := testStore(t)
	srv := NewServer(st)
	var mu sync.Mutex
	var seen []string
	srv.OnQuery = func(q dnswire.Question) {
		mu.Lock()
		seen = append(seen, q.Name)
		mu.Unlock()
	}
	if err := srv.ListenAndServe("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := dnsclient.New(srv.Addr())
	if _, err := c.Query("example.com.", dnswire.TypeA); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 1 || seen[0] != "example.com." {
		t.Errorf("hook saw %v", seen)
	}
}

func TestClientHas(t *testing.T) {
	srv := startServer(t, testStore(t))
	c := dnsclient.New(srv.Addr())
	cases := []struct {
		name string
		typ  dnswire.Type
		want bool
	}{
		{"example.com.", dnswire.TypeNS, true},
		{"example.com.", dnswire.TypeMX, true},
		{"parked.com.", dnswire.TypeA, false},
		{"missing.com.", dnswire.TypeNS, false},
	}
	for _, tc := range cases {
		got, err := c.Has(tc.name, tc.typ)
		if err != nil {
			t.Errorf("Has(%s, %s): %v", tc.name, tc.typ, err)
			continue
		}
		if got != tc.want {
			t.Errorf("Has(%s, %s) = %t, want %t", tc.name, tc.typ, got, tc.want)
		}
	}
}

func TestProbeBatch(t *testing.T) {
	srv := startServer(t, testStore(t))
	c := dnsclient.New(srv.Addr())
	domains := []string{"example.com.", "parked.com.", "missing.com."}
	results := c.ProbeBatch(domains, 4)
	if len(results) != 3 {
		t.Fatalf("results = %v", results)
	}
	if !results[0].HasNS || !results[0].HasA || !results[0].HasMX {
		t.Errorf("example.com = %+v", results[0])
	}
	if !results[1].HasNS || results[1].HasA {
		t.Errorf("parked.com = %+v", results[1])
	}
	if results[2].HasNS {
		t.Errorf("missing.com = %+v", results[2])
	}
}

func TestClientTimeoutAgainstDeadServer(t *testing.T) {
	c := dnsclient.New("127.0.0.1:1") // nothing listens there
	c.Timeout = 50 * 1e6              // 50ms
	c.Retries = 1
	if _, err := c.Query("example.com.", dnswire.TypeA); err == nil {
		t.Error("query against dead server succeeded")
	}
}

func TestServerDoubleStartAndClose(t *testing.T) {
	srv := startServer(t, testStore(t))
	if err := srv.ListenAndServe("127.0.0.1:0"); err == nil {
		t.Error("second ListenAndServe succeeded")
	}
	if err := srv.Close(); err != nil {
		t.Error(err)
	}
	if err := srv.Close(); err != nil {
		t.Error("second Close errored:", err)
	}
}
