package dnsserver

import (
	"crypto/tls"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dnswire"
)

// Fault is an injected server-side failure mode for one query,
// selected by a Server's OnFault hook. The triage pipeline's
// fault-injection harness uses these to reproduce the pathologies a
// zone-scale DNS sweep meets in the wild: silently dropped datagrams,
// responses that only fit over TCP, and lame servers.
type Fault int

// Fault modes.
const (
	// FaultNone answers normally.
	FaultNone Fault = iota
	// FaultDrop swallows the query: no response on either transport.
	// A UDP client retries and eventually times out.
	FaultDrop
	// FaultTruncate answers over UDP with the TC bit set and an empty
	// answer section, forcing the standard TCP fallback; TCP queries
	// are answered normally.
	FaultTruncate
	// FaultServFail answers SERVFAIL, the lame-delegation shape.
	FaultServFail
)

// Server answers DNS queries over UDP and TCP from a Store, with
// optional DoT (EnableDoT) and DoH (EnableDoH) listeners sharing the
// same store and fault hooks. Start it with ListenAndServe on an
// address like "127.0.0.1:0"; Addr reports the port actually bound so
// tests and the simulator can point clients at it.
type Server struct {
	Store *Store

	// ReadTimeout bounds how long a TCP or DoT connection may idle
	// between queries. Zero means 5 seconds.
	ReadTimeout time.Duration

	mu          sync.Mutex
	udpConn     *net.UDPConn
	tcpLn       net.Listener
	dotLn       net.Listener
	dohLn       net.Listener
	dohSrv      *http.Server
	cert        *tls.Certificate
	streamConns map[net.Conn]struct{}
	done        chan struct{}
	wg          sync.WaitGroup
	started     bool
	queries     atomic.Int64
	OnQuery     func(q dnswire.Question) // optional observation hook (passive DNS taps this)
	// OnFault, when non-nil, is consulted once per parsed query and may
	// inject a failure mode instead of the normal answer. udp reports
	// the transport the query arrived on. The hook runs on the serving
	// goroutine; it must be safe for concurrent use.
	OnFault func(q dnswire.Question, udp bool) Fault
}

// NewServer returns a server over the given store.
func NewServer(store *Store) *Server {
	return &Server{Store: store}
}

// ListenAndServe binds UDP and TCP sockets on addr and serves until
// Close is called. It returns once both listeners are active.
func (s *Server) ListenAndServe(addr string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return errors.New("dnsserver: already started")
	}
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return fmt.Errorf("dnsserver: resolving %q: %w", addr, err)
	}
	// DNS serves the same port over UDP and TCP. With an ephemeral
	// port request the UDP bind may land on a port whose TCP side is
	// already taken by an unrelated process, so retry the pair a few
	// times before giving up.
	var uc *net.UDPConn
	var ln net.Listener
	for attempt := 0; ; attempt++ {
		uc, err = net.ListenUDP("udp", udpAddr)
		if err != nil {
			return fmt.Errorf("dnsserver: udp listen: %w", err)
		}
		ln, err = net.Listen("tcp", uc.LocalAddr().String())
		if err == nil {
			break
		}
		uc.Close()
		if udpAddr.Port != 0 || attempt >= 16 {
			return fmt.Errorf("dnsserver: tcp listen: %w", err)
		}
	}
	s.udpConn = uc
	s.tcpLn = ln
	s.done = make(chan struct{})
	s.started = true
	s.wg.Add(2)
	go s.serveUDP(s.done)
	go s.serveStream(s.tcpLn, s.done)
	return nil
}

// Addr returns the bound address, valid after ListenAndServe.
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.udpConn == nil {
		return ""
	}
	return s.udpConn.LocalAddr().String()
}

// Queries reports how many queries have been answered.
func (s *Server) Queries() int64 { return s.queries.Load() }

// Close shuts every listener down and waits for in-flight handlers.
// A closed server can be started again (and DoT/DoH re-enabled), so
// tests can prove clients survive a mid-batch restart.
func (s *Server) Close() error {
	s.mu.Lock()
	if !s.started {
		s.mu.Unlock()
		return nil
	}
	close(s.done)
	s.udpConn.Close()
	s.tcpLn.Close()
	if s.dotLn != nil {
		s.dotLn.Close()
		s.dotLn = nil
	}
	if s.dohSrv != nil {
		s.dohSrv.Close()
		s.dohSrv = nil
		s.dohLn = nil
	}
	for conn := range s.streamConns {
		conn.Close()
	}
	s.streamConns = nil
	s.started = false
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

func (s *Server) serveUDP(done <-chan struct{}) {
	defer s.wg.Done()
	buf := make([]byte, 64*1024)
	for {
		n, raddr, err := s.udpConn.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-done:
				return
			default:
				continue // transient read error; keep serving
			}
		}
		pkt := make([]byte, n)
		copy(pkt, buf[:n])
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			resp := s.handle(pkt, true)
			if resp != nil {
				s.udpConn.WriteToUDP(resp, raddr)
			}
		}()
	}
}

// serveStream accepts length-framed DNS connections — plain TCP and
// the TLS listener EnableDoT adds both land here.
func (s *Server) serveStream(ln net.Listener, done <-chan struct{}) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-done:
				return
			default:
				continue
			}
		}
		// Track the connection so Close can tear it down immediately;
		// pooled clients hold keep-alive connections idle in a read, and
		// waiting out their read deadline would stall every restart.
		s.mu.Lock()
		select {
		case <-done:
			s.mu.Unlock()
			conn.Close()
			continue
		default:
		}
		if s.streamConns == nil {
			s.streamConns = make(map[net.Conn]struct{})
		}
		s.streamConns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveTCPConn(conn)
			s.mu.Lock()
			delete(s.streamConns, conn)
			s.mu.Unlock()
		}()
	}
}

// serveTCPConn handles the RFC 1035 §4.2.2 two-octet length framing,
// answering any number of pipelined queries on one connection.
func (s *Server) serveTCPConn(conn net.Conn) {
	defer conn.Close()
	timeout := s.ReadTimeout
	if timeout == 0 {
		timeout = 5 * time.Second
	}
	lenBuf := make([]byte, 2)
	for {
		conn.SetReadDeadline(time.Now().Add(timeout))
		if _, err := io.ReadFull(conn, lenBuf); err != nil {
			return
		}
		n := int(lenBuf[0])<<8 | int(lenBuf[1])
		msg := make([]byte, n)
		if _, err := io.ReadFull(conn, msg); err != nil {
			return
		}
		resp := s.handle(msg, false)
		if resp == nil {
			// An injected drop (or unsalvageable garbage): swallow the
			// query but keep the connection open, so stream clients see
			// the same silent-timeout pathology datagram clients do
			// instead of a clean EOF.
			continue
		}
		out := make([]byte, 2+len(resp))
		out[0] = byte(len(resp) >> 8)
		out[1] = byte(len(resp))
		copy(out[2:], resp)
		if _, err := conn.Write(out); err != nil {
			return
		}
	}
}

// handle decodes one query and produces the packed response, or nil to
// drop the packet (unparseable header).
func (s *Server) handle(pkt []byte, udp bool) []byte {
	var query dnswire.Message
	if err := query.Unpack(pkt); err != nil {
		// Try to salvage the ID for a FORMERR; otherwise drop.
		if len(pkt) < 12 {
			return nil
		}
		resp := &dnswire.Message{Header: dnswire.Header{
			ID:       uint16(pkt[0])<<8 | uint16(pkt[1]),
			Response: true,
			RCode:    dnswire.RCodeFormatError,
		}}
		out, _ := resp.Pack(nil)
		return out
	}
	if query.Header.Response || len(query.Questions) != 1 {
		resp := dnswire.NewResponse(&query, dnswire.RCodeFormatError)
		out, _ := resp.Pack(nil)
		return out
	}
	s.queries.Add(1)
	q := query.Questions[0]
	if s.OnQuery != nil {
		s.OnQuery(q)
	}
	if s.OnFault != nil {
		switch s.OnFault(q, udp) {
		case FaultDrop:
			return nil
		case FaultTruncate:
			if udp {
				resp := dnswire.NewResponse(&query, dnswire.RCodeSuccess)
				resp.Header.Authoritative = true
				resp.Header.Truncated = true
				out, _ := resp.Pack(nil)
				return out
			}
			// TCP retry after the forced truncation answers normally.
		case FaultServFail:
			resp := dnswire.NewResponse(&query, dnswire.RCodeServerFailure)
			out, _ := resp.Pack(nil)
			return out
		}
	}

	var resp *dnswire.Message
	switch {
	case query.Header.Opcode != dnswire.OpcodeQuery:
		resp = dnswire.NewResponse(&query, dnswire.RCodeNotImplemented)
	case !s.Store.Authoritative(q.Name):
		resp = dnswire.NewResponse(&query, dnswire.RCodeRefused)
	default:
		answers, exists := s.Store.Lookup(q.Name, q.Type)
		switch {
		case len(answers) > 0:
			resp = dnswire.NewResponse(&query, dnswire.RCodeSuccess)
			resp.Answers = answers
		case exists:
			resp = dnswire.NewResponse(&query, dnswire.RCodeSuccess) // NODATA
		default:
			resp = dnswire.NewResponse(&query, dnswire.RCodeNameError)
		}
		resp.Header.Authoritative = true
		if resp.Header.RCode != dnswire.RCodeSuccess || len(resp.Answers) == 0 {
			if soa, ok := s.Store.SOAFor(q.Name); ok {
				resp.Authority = append(resp.Authority, soa)
			}
		}
	}
	if udp {
		if err := resp.Truncate(dnswire.MaxUDPPayload); err != nil {
			return nil
		}
	}
	out, err := resp.Pack(nil)
	if err != nil {
		return nil
	}
	return out
}
