package dnsserver

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"errors"
	"fmt"
	"io"
	"math/big"
	"net"
	"net/http"
	"sync"
	"time"
)

// dohBodyBufs recycles request-body read buffers across DoH exchanges
// so the hot path does not pay an io.ReadAll growth sequence per query.
var dohBodyBufs = sync.Pool{New: func() any {
	b := make([]byte, 64*1024)
	return &b
}}

// The encrypted listeners: EnableDoT serves RFC 7858 DNS-over-TLS
// (length-framed DNS on a TLS stream), EnableDoH serves RFC 8484
// DNS-over-HTTPS (wire-format POST to /dns-query, HTTP/2 negotiated
// via ALPN). Both answer through the same handle() path as UDP and
// TCP, so the Store, OnQuery and OnFault hooks — and therefore the
// whole fault-injection harness — cover every transport identically.

// EnableDoT adds a DNS-over-TLS listener on addr. Call after
// ListenAndServe; the listener shuts down with Close and may be
// re-enabled after a restart.
func (s *Server) EnableDoT(addr string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.started {
		return errors.New("dnsserver: EnableDoT before ListenAndServe")
	}
	if s.dotLn != nil {
		return errors.New("dnsserver: DoT already enabled")
	}
	cert, err := s.certLocked()
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("dnsserver: dot listen: %w", err)
	}
	s.dotLn = tls.NewListener(ln, &tls.Config{
		Certificates: []tls.Certificate{*cert},
		NextProtos:   []string{"dot"},
	})
	s.wg.Add(1)
	go s.serveStream(s.dotLn, s.done)
	return nil
}

// DoTAddr returns the DoT listener's address, valid after EnableDoT.
func (s *Server) DoTAddr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dotLn == nil {
		return ""
	}
	return s.dotLn.Addr().String()
}

// EnableDoH adds a DNS-over-HTTPS listener on addr, answering
// wire-format POSTs on /dns-query. Call after ListenAndServe; the
// listener shuts down with Close and may be re-enabled after a
// restart.
func (s *Server) EnableDoH(addr string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.started {
		return errors.New("dnsserver: EnableDoH before ListenAndServe")
	}
	if s.dohSrv != nil {
		return errors.New("dnsserver: DoH already enabled")
	}
	cert, err := s.certLocked()
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("dnsserver: doh listen: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/dns-query", s.handleDoH)
	srv := &http.Server{
		Handler:   mux,
		TLSConfig: &tls.Config{Certificates: []tls.Certificate{*cert}},
		// Receive windows far above the 64 KiB DNS message ceiling keep
		// the connection from spending syscalls on WINDOW_UPDATE chatter
		// for tiny wire-format bodies.
		HTTP2: &http.HTTP2Config{
			MaxReceiveBufferPerConnection: 1 << 20,
			MaxReceiveBufferPerStream:     1 << 20,
		},
	}
	s.dohLn = ln
	s.dohSrv = srv
	s.wg.Add(1)
	go s.serveDoH(srv, ln, s.done)
	return nil
}

// DoHAddr returns the DoH listener's address, valid after EnableDoH.
func (s *Server) DoHAddr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dohLn == nil {
		return ""
	}
	return s.dohLn.Addr().String()
}

// serveDoH runs the HTTPS listener until Close; ServeTLS adds "h2" to
// the ALPN set, so clients multiplex queries over HTTP/2 streams.
func (s *Server) serveDoH(srv *http.Server, ln net.Listener, done <-chan struct{}) {
	defer s.wg.Done()
	srv.ServeTLS(ln, "", "")
	<-done
}

// handleDoH answers one RFC 8484 POST through the shared handle()
// path. An injected FaultDrop holds the stream open until the client
// gives up, mirroring a silent drop rather than a clean HTTP error.
func (s *Server) handleDoH(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST wire-format queries only", http.StatusMethodNotAllowed)
		return
	}
	bufp := dohBodyBufs.Get().(*[]byte)
	defer dohBodyBufs.Put(bufp)
	n, err := io.ReadFull(io.LimitReader(r.Body, int64(len(*bufp))), *bufp)
	if err != nil && err != io.ErrUnexpectedEOF {
		http.Error(w, "short read", http.StatusBadRequest)
		return
	}
	resp := s.handle((*bufp)[:n], false)
	if resp == nil {
		s.mu.Lock()
		done := s.done
		s.mu.Unlock()
		select {
		case <-r.Context().Done():
		case <-done:
		}
		return
	}
	w.Header().Set("Content-Type", "application/dns-message")
	w.Write(resp)
}

// certLocked lazily self-signs one in-memory loopback certificate,
// shared by the DoT and DoH listeners and kept across restarts so
// clients resuming TLS sessions keep verifying against the same
// identity.
func (s *Server) certLocked() (*tls.Certificate, error) {
	if s.cert != nil {
		return s.cert, nil
	}
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("dnsserver: generating key: %w", err)
	}
	tmpl := x509.Certificate{
		SerialNumber: big.NewInt(1),
		Subject:      pkix.Name{CommonName: "dnsserver"},
		NotBefore:    time.Now().Add(-time.Hour),
		NotAfter:     time.Now().Add(24 * time.Hour),
		KeyUsage:     x509.KeyUsageKeyEncipherment | x509.KeyUsageDigitalSignature,
		ExtKeyUsage:  []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
		DNSNames:     []string{"localhost"},
		IPAddresses:  []net.IP{net.IPv4(127, 0, 0, 1), net.IPv6loopback},
	}
	der, err := x509.CreateCertificate(rand.Reader, &tmpl, &tmpl, &key.PublicKey, key)
	if err != nil {
		return nil, fmt.Errorf("dnsserver: self-signing: %w", err)
	}
	s.cert = &tls.Certificate{Certificate: [][]byte{der}, PrivateKey: key}
	return s.cert, nil
}
