// Package dnsserver implements a concurrent authoritative DNS server
// over UDP and TCP, serving a zone store built from parsed zone files
// or programmatic registration. The ShamFinder measurement pipeline
// probes this server exactly as the paper probed the live DNS: NS
// lookups to find registered homographs, A lookups to find hosted
// ones, and MX lookups for the Table 11 mail-capability column.
package dnsserver

import (
	"sort"
	"strings"
	"sync"

	"repro/internal/dnswire"
	"repro/internal/zonefile"
)

// Store is a thread-safe collection of resource records indexed by
// owner name and type. The zero value is empty and ready to use.
type Store struct {
	mu      sync.RWMutex
	records map[string]map[dnswire.Type][]dnswire.Record
	zones   []string // canonical zone apexes, longest first
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{records: make(map[string]map[dnswire.Type][]dnswire.Record)}
}

// AddZone registers a zone apex (e.g. "com.") so the server can answer
// authoritatively (AA bit, NXDOMAIN vs REFUSED) for names under it,
// then loads all of the zone's records.
func (s *Store) AddZone(z *zonefile.Zone) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.addApexLocked(z.Origin)
	for _, rec := range z.Records {
		s.addLocked(rec)
	}
}

// AddApex registers a zone apex without records.
func (s *Store) AddApex(apex string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.addApexLocked(dnswire.CanonicalName(apex))
}

func (s *Store) addApexLocked(apex string) {
	for _, z := range s.zones {
		if z == apex {
			return
		}
	}
	s.zones = append(s.zones, apex)
	sort.Slice(s.zones, func(i, j int) bool { return len(s.zones[i]) > len(s.zones[j]) })
}

// Add inserts one record.
func (s *Store) Add(rec dnswire.Record) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.addLocked(rec)
}

func (s *Store) addLocked(rec dnswire.Record) {
	rec.Name = dnswire.CanonicalName(rec.Name)
	byType, ok := s.records[rec.Name]
	if !ok {
		byType = make(map[dnswire.Type][]dnswire.Record)
		s.records[rec.Name] = byType
	}
	typ := rec.Data.Type()
	byType[typ] = append(byType[typ], rec)
}

// Remove deletes all records of the given type at name. TypeANY
// removes the whole node.
func (s *Store) Remove(name string, typ dnswire.Type) {
	s.mu.Lock()
	defer s.mu.Unlock()
	name = dnswire.CanonicalName(name)
	if typ == dnswire.TypeANY {
		delete(s.records, name)
		return
	}
	if byType, ok := s.records[name]; ok {
		delete(byType, typ)
		if len(byType) == 0 {
			delete(s.records, name)
		}
	}
}

// Lookup returns the records of the given type at name, following at
// most one CNAME (sufficient for the flat zones the simulator builds).
// The boolean reports whether the name exists at all (for NXDOMAIN vs
// NODATA).
func (s *Store) Lookup(name string, typ dnswire.Type) (answers []dnswire.Record, nameExists bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	name = dnswire.CanonicalName(name)
	byType, ok := s.records[name]
	if !ok {
		return nil, false
	}
	if typ == dnswire.TypeANY {
		for _, recs := range byType {
			answers = append(answers, recs...)
		}
		return answers, true
	}
	if recs, ok := byType[typ]; ok {
		return append(answers, recs...), true
	}
	// CNAME redirection: answer includes the CNAME plus the target's
	// records of the requested type, if we host them.
	if cnames, ok := byType[dnswire.TypeCNAME]; ok && len(cnames) > 0 {
		answers = append(answers, cnames...)
		target := cnames[0].Data.(dnswire.CNAME).Target
		if tb, ok := s.records[dnswire.CanonicalName(target)]; ok {
			answers = append(answers, tb[typ]...)
		}
		return answers, true
	}
	return nil, true
}

// Authoritative reports whether name falls under one of the store's
// registered zone apexes.
func (s *Store) Authoritative(name string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	name = dnswire.CanonicalName(name)
	for _, apex := range s.zones {
		if name == apex || strings.HasSuffix(name, "."+apex) {
			return true
		}
	}
	return false
}

// SOAFor returns the apex SOA record covering name, used to fill the
// authority section of negative responses.
func (s *Store) SOAFor(name string) (dnswire.Record, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	name = dnswire.CanonicalName(name)
	for _, apex := range s.zones {
		if name != apex && !strings.HasSuffix(name, "."+apex) {
			continue
		}
		if byType, ok := s.records[apex]; ok {
			if soas := byType[dnswire.TypeSOA]; len(soas) > 0 {
				return soas[0], true
			}
		}
	}
	return dnswire.Record{}, false
}

// Len reports the number of owner names in the store.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.records)
}
