// Package jobstore persists survey jobs so the measurement half of the
// monitoring loop survives crashes: every /v1/survey job lives on disk
// as a directory holding a CRC'd manifest (the job's spec, inputs and
// state machine) plus the triage JSONL record log (the same checkpoint
// format the survey CLI's -resume rides). A SIGKILL at any point leaves
// a state the next process resumes byte-identically: the manifest is
// written through the snapshot layer's atomic temp-file + fsync +
// rename, the record log is append-only with a torn-tail trim on
// resume, and a manifest that fails its checksum is refused loudly and
// quarantined — never silently dropped, never silently trusted.
//
// Layout:
//
//	<dir>/<id>/manifest.job    SHAMJOBM envelope around the Manifest JSON
//	<dir>/<id>/records.jsonl   one triage.Record per completed domain
//	<dir>/quarantine/<id>/     jobs whose manifest failed validation
//
// The state machine:
//
//	accepted ──► running ──► draining ──► done
//	                │            │
//	                └────────────┴─────► failed / cancelled
//
// accepted: manifest durable, pipeline not yet started (or queued for a
// restart slot). running: records are streaming into the log. draining:
// every record is on disk, the final tally is being computed. The three
// terminal states carry the tally (done), the error cause and whether a
// retry could help (failed), or neither (cancelled).
package jobstore

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/snapshot"
	"repro/internal/triage"
)

// Job states.
const (
	StateAccepted  = "accepted"
	StateRunning   = "running"
	StateDraining  = "draining"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// Terminal reports whether state is final — the job will never write
// another record and is eligible for retention eviction.
func Terminal(state string) bool {
	return state == StateDone || state == StateFailed || state == StateCancelled
}

// Spec is the replayable half of a survey request: everything needed to
// rebuild the job's triage pipeline in a fresh process. It deliberately
// excludes the candidate list (the manifest carries the post-detection
// Inputs instead, so a resume never re-detects against a newer engine
// epoch).
type Spec struct {
	Resolver  string `json:"resolver,omitempty"`
	Transport string `json:"dns_transport,omitempty"`
	// Backend names the detection backend the submit-time detect stage
	// ran with ("postings", "skeleton", "both"); recorded so a replayed
	// manifest shows how its inputs were selected.
	Backend        string  `json:"backend,omitempty"`
	DNSWorkers     int     `json:"dns_workers,omitempty"`
	WebWorkers     int     `json:"web_workers,omitempty"`
	Rate           float64 `json:"rate,omitempty"`
	Retries        *int    `json:"retries,omitempty"`
	StageTimeoutMS int     `json:"stage_timeout_ms,omitempty"`
	DNSTimeoutMS   int     `json:"dns_timeout_ms,omitempty"`
	WebTimeoutMS   int     `json:"web_timeout_ms,omitempty"`
	SkipDNS        bool    `json:"skip_dns,omitempty"`
	SkipWeb        bool    `json:"skip_web,omitempty"`
	SkipBlacklist  bool    `json:"skip_blacklist,omitempty"`
}

// Manifest is one job's durable descriptor.
type Manifest struct {
	ID    string `json:"id"`
	State string `json:"state"`
	// Epoch is the engine epoch the detection stage answered from; a
	// resumed job keeps it (inputs are replayed, never re-detected).
	Epoch    uint64 `json:"epoch"`
	Queried  int    `json:"queried"`
	Detected int    `json:"detected"`
	Spec     Spec   `json:"spec"`
	// Inputs is the exact post-detection triage input list; replaying it
	// with the record log as a resume set reproduces the job
	// byte-identically.
	Inputs []triage.Input `json:"inputs,omitempty"`

	// JournalPath/From/To record the zone-watch deltas-journal span this
	// job covers, for batcher-submitted jobs: on watcher restart the
	// batch cursor restarts after max(To) over all manifests, so no
	// delta is ever surveyed twice and none is orphaned.
	JournalPath string `json:"journal_path,omitempty"`
	JournalFrom int64  `json:"journal_from,omitempty"`
	JournalTo   int64  `json:"journal_to,omitempty"`

	// Error and Retryable describe a failed job: Retryable marks causes
	// a re-submission could clear (a stalled stage, a dead resolver) as
	// opposed to wrong input.
	Error     string `json:"error,omitempty"`
	Retryable bool   `json:"retryable,omitempty"`
	// Tally is the final §6 aggregation, present once terminal.
	Tally *triage.Tally `json:"tally,omitempty"`

	// Resumes counts how many process restarts have resumed this job.
	Resumes int `json:"resumes,omitempty"`

	CreatedUnix int64 `json:"created_unix"`
	UpdatedUnix int64 `json:"updated_unix"`
}

// ManifestMagic identifies a job-manifest envelope.
const ManifestMagic = "SHAMJOBM"

// ManifestVersion is the current manifest format version.
const ManifestVersion = 1

const (
	manifestName = "manifest.job"
	recordsName  = "records.jsonl"
	quarantine   = "quarantine"
)

// MarshalManifest seals the manifest JSON in the SHAMJOBM envelope.
func MarshalManifest(m Manifest) ([]byte, error) {
	payload, err := json.Marshal(m)
	if err != nil {
		return nil, fmt.Errorf("jobstore: encoding manifest %s: %w", m.ID, err)
	}
	return snapshot.SealEnvelope(ManifestMagic, ManifestVersion, payload), nil
}

// UnmarshalManifest opens and decodes a manifest. Any corruption — a
// bad checksum, truncation, malformed JSON, an unknown state — is an
// error; the caller quarantines, never guesses.
func UnmarshalManifest(data []byte) (Manifest, error) {
	var m Manifest
	payload, err := snapshot.OpenEnvelope(data, ManifestMagic, ManifestVersion)
	if err != nil {
		return m, fmt.Errorf("jobstore: %w", err)
	}
	if err := json.Unmarshal(payload, &m); err != nil {
		return m, fmt.Errorf("jobstore: decoding manifest: %w", err)
	}
	switch m.State {
	case StateAccepted, StateRunning, StateDraining, StateDone, StateFailed, StateCancelled:
	default:
		return m, fmt.Errorf("jobstore: manifest %s in unknown state %q", m.ID, m.State)
	}
	if m.ID == "" {
		return m, fmt.Errorf("jobstore: manifest without an id")
	}
	return m, nil
}

// Store is a directory of durable survey jobs. All methods are safe for
// concurrent use; one Store owns its directory.
type Store struct {
	dir string

	mu   sync.Mutex
	seq  int                 // high-water mark of numeric id suffixes
	jobs map[string]Manifest // last persisted manifest per live job
}

// Open prepares dir (created if missing) and indexes the numeric id
// space so NewID never reuses an id — not even one belonging to a
// quarantined or just-evicted job, whose records a client may still be
// asking about.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("jobstore: dir required")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobstore: %w", err)
	}
	s := &Store{dir: dir, jobs: make(map[string]Manifest)}
	bump := func(name string) {
		if n, err := strconv.Atoi(strings.TrimPrefix(name, "j")); err == nil && strings.HasPrefix(name, "j") && n > s.seq {
			s.seq = n
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("jobstore: %w", err)
	}
	for _, e := range entries {
		bump(e.Name())
	}
	if qs, err := os.ReadDir(filepath.Join(dir, quarantine)); err == nil {
		for _, e := range qs {
			bump(strings.SplitN(e.Name(), ".", 2)[0])
		}
	}
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// NewID allocates the next job id ("j1", "j2", ...).
func (s *Store) NewID() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	return "j" + strconv.Itoa(s.seq)
}

func (s *Store) jobDir(id string) string       { return filepath.Join(s.dir, id) }
func (s *Store) manifestPath(id string) string { return filepath.Join(s.dir, id, manifestName) }

// RecordsPath is where id's JSONL record log lives.
func (s *Store) RecordsPath(id string) string { return filepath.Join(s.dir, id, recordsName) }

// Put durably persists m (creating the job directory on first write)
// and stamps UpdatedUnix. Atomic: a crash mid-Put leaves the previous
// manifest intact.
func (s *Store) Put(m Manifest) error {
	if m.ID == "" {
		return fmt.Errorf("jobstore: manifest without an id")
	}
	//shamlint:allow determinism UpdatedUnix is operational metadata on the manifest, never replayed into record bytes
	m.UpdatedUnix = time.Now().Unix()
	if m.CreatedUnix == 0 {
		m.CreatedUnix = m.UpdatedUnix
	}
	data, err := MarshalManifest(m)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(s.jobDir(m.ID), 0o755); err != nil {
		return fmt.Errorf("jobstore: %w", err)
	}
	if err := snapshot.WriteFileAtomic(s.manifestPath(m.ID), data); err != nil {
		return fmt.Errorf("jobstore: writing manifest %s: %w", m.ID, err)
	}
	s.mu.Lock()
	s.jobs[m.ID] = m
	s.mu.Unlock()
	return nil
}

// Get returns the last persisted manifest for id.
func (s *Store) Get(id string) (Manifest, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.jobs[id]
	return m, ok
}

// List returns every live manifest, ordered by id sequence (creation
// order).
func (s *Store) List() []Manifest {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Manifest, 0, len(s.jobs))
	for _, m := range s.jobs {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return idSeq(out[i].ID) < idSeq(out[j].ID) })
	return out
}

func idSeq(id string) int {
	n, _ := strconv.Atoi(strings.TrimPrefix(id, "j"))
	return n
}

// Remove deletes a job — its manifest, records and directory — for
// explicit DELETE and retention eviction.
func (s *Store) Remove(id string) error {
	s.mu.Lock()
	delete(s.jobs, id)
	s.mu.Unlock()
	return os.RemoveAll(s.jobDir(id))
}

// MaxJournalTo returns the largest journal offset any live job covers
// for journalPath — the batch cursor's restart position. Zero when no
// job covers the journal.
func (s *Store) MaxJournalTo(journalPath string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var max int64
	for _, m := range s.jobs {
		if m.JournalPath == journalPath && m.JournalTo > max {
			max = m.JournalTo
		}
	}
	return max
}

// RecoverResult summarizes a Recover pass.
type RecoverResult struct {
	// Active holds jobs found in a non-terminal state — interrupted by
	// the previous process's death — oldest first. The caller resumes
	// them.
	Active []Manifest
	// Finished holds terminal jobs, oldest first, records still on disk.
	Finished []Manifest
	// Quarantined counts job directories whose manifest failed
	// validation and was moved under quarantine/.
	Quarantined int
}

// Recover scans the store directory, loads every manifest, and
// quarantines the ones that fail validation. It is the restart path:
// call once after Open, then resume Active and republish Finished. A
// quarantined job keeps its directory (manifest and records) under
// quarantine/<id> for the operator — refusing loudly costs a directory
// rename; silently dropping it would cost the job.
func (s *Store) Recover(logf func(format string, args ...any)) (RecoverResult, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	var res RecoverResult
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return res, fmt.Errorf("jobstore: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() || e.Name() == quarantine {
			continue
		}
		id := e.Name()
		data, err := os.ReadFile(s.manifestPath(id))
		if err == nil {
			var m Manifest
			if m, err = UnmarshalManifest(data); err == nil {
				if m.ID != id {
					err = fmt.Errorf("jobstore: manifest in %s names id %s", id, m.ID)
				} else {
					s.mu.Lock()
					s.jobs[id] = m
					s.mu.Unlock()
					if Terminal(m.State) {
						res.Finished = append(res.Finished, m)
					} else {
						res.Active = append(res.Active, m)
					}
					continue
				}
			}
		}
		logf("jobstore: quarantining job %s: %v", id, err)
		if qerr := s.quarantineJob(id); qerr != nil {
			return res, fmt.Errorf("jobstore: quarantining %s (%v): %w", id, err, qerr)
		}
		res.Quarantined++
	}
	sort.Slice(res.Active, func(i, j int) bool { return idSeq(res.Active[i].ID) < idSeq(res.Active[j].ID) })
	sort.Slice(res.Finished, func(i, j int) bool { return idSeq(res.Finished[i].ID) < idSeq(res.Finished[j].ID) })
	return res, nil
}

// quarantineJob moves a job directory under quarantine/, never
// overwriting an earlier quarantined copy of the same id.
func (s *Store) quarantineJob(id string) error {
	if err := os.MkdirAll(filepath.Join(s.dir, quarantine), 0o755); err != nil {
		return err
	}
	dst := filepath.Join(s.dir, quarantine, id)
	for n := 2; ; n++ {
		if _, err := os.Stat(dst); os.IsNotExist(err) {
			break
		}
		dst = filepath.Join(s.dir, quarantine, id+"."+strconv.Itoa(n))
	}
	//shamlint:allow durable-write quarantine is a same-dir atomic directory rename; a crash loses only the label, never record data
	return os.Rename(s.jobDir(id), dst)
}

// PrepareResume readies an interrupted job's record log for replay: the
// torn tail a crash may have left mid-line is truncated away, and the
// surviving complete records come back as the triage resume set. The
// resumed pipeline appends only records not in this set, so the final
// log is byte-identical to an uninterrupted run's.
func (s *Store) PrepareResume(id string) (_ map[string]triage.Record, retErr error) {
	path := s.RecordsPath(id)
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		if os.IsNotExist(err) {
			return map[string]triage.Record{}, nil
		}
		return nil, fmt.Errorf("jobstore: opening record log: %w", err)
	}
	// The log was opened for writing (the trim below): its Close error
	// is a write error and must not be swallowed, or the resumed job
	// would append after a trim that never reached disk.
	defer func() {
		if cerr := f.Close(); cerr != nil && retErr == nil {
			retErr = fmt.Errorf("jobstore: closing record log: %w", cerr)
		}
	}()
	fi, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("jobstore: %w", err)
	}
	if end := completeLineEnd(fileBytesReader{f}, fi.Size()); end < fi.Size() {
		if err := f.Truncate(end); err != nil {
			return nil, fmt.Errorf("jobstore: trimming torn record: %w", err)
		}
		if err := f.Sync(); err != nil {
			return nil, fmt.Errorf("jobstore: syncing trimmed record log: %w", err)
		}
	}
	return triage.LoadCheckpoint(path)
}

// LoadRecords reads a job's full record log (terminal jobs answering a
// GET after a restart).
func (s *Store) LoadRecords(id string) ([]triage.Record, error) {
	f, err := os.Open(s.RecordsPath(id))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("jobstore: opening record log: %w", err)
	}
	defer f.Close()
	return triage.ReadRecords(f)
}

// OpenRecordsAppend opens id's record log for appending — the running
// job's streaming checkpoint writer.
func (s *Store) OpenRecordsAppend(id string) (*os.File, error) {
	if err := os.MkdirAll(s.jobDir(id), 0o755); err != nil {
		return nil, fmt.Errorf("jobstore: %w", err)
	}
	f, err := os.OpenFile(s.RecordsPath(id), os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("jobstore: opening record log: %w", err)
	}
	return f, nil
}

type fileBytesReader struct{ f *os.File }

func (r fileBytesReader) ReadAt(p []byte, off int64) (int, error) { return r.f.ReadAt(p, off) }

// completeLineEnd returns the end offset of the last newline-terminated
// line in [0, limit) — the jobstore's torn-tail trim, same discipline
// as the zone watcher's deltas journal.
func completeLineEnd(r fileBytesReader, limit int64) int64 {
	const chunk = 64 << 10
	for end := limit; end > 0; {
		start := end - chunk
		if start < 0 {
			start = 0
		}
		buf := make([]byte, end-start)
		if _, err := r.ReadAt(buf, start); err != nil {
			return 0
		}
		for i := len(buf) - 1; i >= 0; i-- {
			if buf[i] == '\n' {
				return start + int64(i) + 1
			}
		}
		end = start
	}
	return 0
}
