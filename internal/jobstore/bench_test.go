package jobstore

import (
	"fmt"
	"strconv"
	"testing"

	"repro/internal/triage"
)

// benchManifest builds a manifest with n inputs — the size knob for the
// write path.
func benchManifest(id string, n int) Manifest {
	m := testManifest(id)
	m.Inputs = make([]triage.Input, n)
	for i := range m.Inputs {
		m.Inputs[i] = triage.Input{
			FQDN:      "xn--bench-" + strconv.Itoa(i) + ".example",
			Reference: "example.com",
			Source:    "UC",
		}
	}
	return m
}

// BenchmarkJobManifestWrite measures one durable state transition: seal
// the envelope, write the temp file, fsync, rename.
func BenchmarkJobManifestWrite(b *testing.B) {
	for _, n := range []int{16, 256} {
		b.Run(fmt.Sprintf("inputs=%d", n), func(b *testing.B) {
			s, err := Open(b.TempDir())
			if err != nil {
				b.Fatal(err)
			}
			m := benchManifest(s.NewID(), n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Queried = i
				if err := s.Put(m); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkJobRecover measures the restart path over a store of mixed
// terminal and interrupted jobs: read, checksum and decode every
// manifest.
func BenchmarkJobRecover(b *testing.B) {
	for _, jobs := range []int{8, 64} {
		b.Run(fmt.Sprintf("jobs=%d", jobs), func(b *testing.B) {
			dir := b.TempDir()
			s, err := Open(dir)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < jobs; i++ {
				m := benchManifest(s.NewID(), 32)
				if i%2 == 0 {
					m.State = StateDone
					m.Tally = triage.NewTally()
				} else {
					m.State = StateRunning
				}
				if err := s.Put(m); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s2, err := Open(dir)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := s2.Recover(nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPrepareResume measures the torn-tail trim + checkpoint load
// over a record log left by a crash.
func BenchmarkPrepareResume(b *testing.B) {
	for _, recs := range []int{100, 2000} {
		b.Run(fmt.Sprintf("records=%d", recs), func(b *testing.B) {
			s, err := Open(b.TempDir())
			if err != nil {
				b.Fatal(err)
			}
			id := s.NewID()
			f, err := s.OpenRecordsAppend(id)
			if err != nil {
				b.Fatal(err)
			}
			w := triage.NewRecordWriter(f)
			for i := 0; i < recs; i++ {
				if err := w.Write(triage.Record{FQDN: "d" + strconv.Itoa(i) + ".example", HasNS: true}); err != nil {
					b.Fatal(err)
				}
			}
			if _, err := f.WriteString(`{"fqdn":"torn`); err != nil {
				b.Fatal(err)
			}
			f.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m, err := s.PrepareResume(id)
				if err != nil {
					b.Fatal(err)
				}
				if len(m) != recs {
					b.Fatalf("resume set %d, want %d", len(m), recs)
				}
			}
		})
	}
}
