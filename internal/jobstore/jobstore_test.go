package jobstore

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/triage"
)

func testManifest(id string) Manifest {
	retries := 2
	return Manifest{
		ID:       id,
		State:    StateAccepted,
		Epoch:    7,
		Queried:  3,
		Detected: 2,
		Spec: Spec{
			Resolver:   "127.0.0.1:5353",
			DNSWorkers: 4,
			Rate:       10,
			Retries:    &retries,
			SkipWeb:    true,
		},
		Inputs: []triage.Input{
			{FQDN: "xn--ggle-0nda.com", Reference: "google.com", Source: "UC"},
			{FQDN: "xn--facebok-y0a.com", Reference: "facebook.com", Source: "SimChar"},
		},
		JournalPath: "/tmp/deltas.log",
		JournalFrom: 100,
		JournalTo:   240,
	}
}

func TestManifestRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m := testManifest(s.NewID())
	if err := s.Put(m); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(m.ID)
	if !ok {
		t.Fatal("Get missed a just-Put manifest")
	}
	if got.CreatedUnix == 0 || got.UpdatedUnix == 0 {
		t.Fatal("Put did not stamp timestamps")
	}
	// A fresh Store over the same dir recovers it identically.
	s2, err := Open(s.Dir())
	if err != nil {
		t.Fatal(err)
	}
	res, err := s2.Recover(t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if res.Quarantined != 0 || len(res.Finished) != 0 || len(res.Active) != 1 {
		t.Fatalf("Recover = %+v, want one active job", res)
	}
	r := res.Active[0]
	if r.ID != m.ID || r.State != StateAccepted || r.Epoch != 7 ||
		len(r.Inputs) != 2 || r.Inputs[1].Reference != "facebook.com" ||
		r.Spec.Retries == nil || *r.Spec.Retries != 2 || !r.Spec.SkipWeb ||
		r.JournalTo != 240 {
		t.Fatalf("recovered manifest diverged: %+v", r)
	}
}

func TestUnmarshalManifestRejectsBadState(t *testing.T) {
	m := testManifest("j1")
	m.State = "limbo"
	data, err := MarshalManifest(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalManifest(data); err == nil || !strings.Contains(err.Error(), "limbo") {
		t.Fatalf("unknown state accepted: %v", err)
	}
}

func TestRecoverQuarantinesCorruptManifests(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	good := testManifest(s.NewID())
	good.State = StateDone
	if err := s.Put(good); err != nil {
		t.Fatal(err)
	}
	bad := testManifest(s.NewID())
	if err := s.Put(bad); err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the middle of the bad manifest and leave a record
	// log beside it: quarantine must keep both for the operator.
	path := filepath.Join(dir, bad.ID, "manifest.job")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.RecordsPath(bad.ID), []byte("{\"fqdn\":\"a\"}\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s2.Recover(t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if res.Quarantined != 1 {
		t.Fatalf("Quarantined = %d, want 1", res.Quarantined)
	}
	if len(res.Finished) != 1 || res.Finished[0].ID != good.ID {
		t.Fatalf("Finished = %+v, want just %s", res.Finished, good.ID)
	}
	if _, ok := s2.Get(bad.ID); ok {
		t.Fatal("corrupt job still visible after quarantine")
	}
	qrec := filepath.Join(dir, "quarantine", bad.ID, "records.jsonl")
	if _, err := os.Stat(qrec); err != nil {
		t.Fatalf("quarantined record log missing: %v", err)
	}
	// A second corrupt job with a recycled directory name must not
	// overwrite the first quarantined copy.
	if err := os.MkdirAll(filepath.Join(dir, bad.ID), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, bad.ID, "manifest.job"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	res3, err := s3.Recover(t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if res3.Quarantined != 1 {
		t.Fatalf("second Recover quarantined %d, want 1", res3.Quarantined)
	}
	if _, err := os.Stat(qrec); err != nil {
		t.Fatalf("first quarantined copy clobbered: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "quarantine", bad.ID+".2")); err != nil {
		t.Fatalf("second quarantined copy missing: %v", err)
	}
}

func TestNewIDMonotonicAcrossReopenAndQuarantine(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if id := s.NewID(); id != "j1" {
		t.Fatalf("first id = %s", id)
	}
	m := testManifest(s.NewID()) // j2
	if err := s.Put(m); err != nil {
		t.Fatal(err)
	}
	// Corrupt j2 so it lands in quarantine, then reopen: j2 must still
	// never be reissued.
	if err := os.WriteFile(filepath.Join(dir, m.ID, "manifest.job"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Recover(t.Logf); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if id := s3.NewID(); id != "j3" {
		t.Fatalf("id after reopen = %s, want j3 (j2 is quarantined, not free)", id)
	}
}

func TestPrepareResumeTrimsTornTail(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	id := s.NewID()
	recs := []triage.Record{
		{FQDN: "a.example", HasNS: true},
		{FQDN: "b.example", HasA: true},
	}
	f, err := s.OpenRecordsAppend(id)
	if err != nil {
		t.Fatal(err)
	}
	w := triage.NewRecordWriter(f)
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	// Simulate a crash mid-append: a torn third record with no newline.
	if _, err := f.WriteString(`{"fqdn":"c.exam`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	resume, err := s.PrepareResume(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(resume) != 2 {
		t.Fatalf("resume set has %d records, want 2", len(resume))
	}
	if _, ok := resume["b.example"]; !ok {
		t.Fatal("complete record b.example missing from resume set")
	}
	data, err := os.ReadFile(s.RecordsPath(id))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(string(data), "\n") || strings.Contains(string(data), "c.exam") {
		t.Fatalf("torn tail survived PrepareResume: %q", data)
	}
	// No record log at all is a clean empty resume, not an error.
	if m, err := s.PrepareResume("j999"); err != nil || len(m) != 0 {
		t.Fatalf("missing log: %v, %v", m, err)
	}
}

func TestRemoveAndMaxJournalTo(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	a := testManifest(s.NewID())
	a.JournalTo = 240
	b := testManifest(s.NewID())
	b.JournalFrom, b.JournalTo = 240, 512
	c := testManifest(s.NewID())
	c.JournalPath, c.JournalTo = "/elsewhere.log", 9999
	for _, m := range []Manifest{a, b, c} {
		if err := s.Put(m); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.MaxJournalTo("/tmp/deltas.log"); got != 512 {
		t.Fatalf("MaxJournalTo = %d, want 512", got)
	}
	if got := s.MaxJournalTo("/nowhere.log"); got != 0 {
		t.Fatalf("MaxJournalTo for uncovered journal = %d, want 0", got)
	}
	if err := s.Remove(b.ID); err != nil {
		t.Fatal(err)
	}
	if got := s.MaxJournalTo("/tmp/deltas.log"); got != 240 {
		t.Fatalf("MaxJournalTo after Remove = %d, want 240", got)
	}
	if _, err := os.Stat(filepath.Join(s.Dir(), b.ID)); !os.IsNotExist(err) {
		t.Fatalf("Remove left the job directory: %v", err)
	}
	if got := s.List(); len(got) != 2 || got[0].ID != a.ID || got[1].ID != c.ID {
		t.Fatalf("List after Remove = %+v", got)
	}
}

func TestLoadRecords(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	id := s.NewID()
	f, err := s.OpenRecordsAppend(id)
	if err != nil {
		t.Fatal(err)
	}
	w := triage.NewRecordWriter(f)
	if err := w.Write(triage.Record{FQDN: "a.example"}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	recs, err := s.LoadRecords(id)
	if err != nil || len(recs) != 1 || recs[0].FQDN != "a.example" {
		t.Fatalf("LoadRecords = %+v, %v", recs, err)
	}
	if recs, err := s.LoadRecords("j404"); err != nil || recs != nil {
		t.Fatalf("LoadRecords on missing job = %+v, %v", recs, err)
	}
}
