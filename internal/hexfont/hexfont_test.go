package hexfont

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/bitmap"
)

const sampleHex = `# comment line
0041:0000000018242442427E424242420000
4E00:000000000000000000000000000000007FFC0000000000000000000000000000
`

func TestParseBasic(t *testing.T) {
	f, err := Parse(strings.NewReader(sampleHex))
	if err != nil {
		t.Fatal(err)
	}
	if f.Len() != 2 {
		t.Fatalf("Len = %d, want 2", f.Len())
	}
	g, ok := f.Glyph('A')
	if !ok || g.Width != 8 {
		t.Fatalf("glyph A: ok=%v width=%d", ok, g.Width)
	}
	// Row 4 of A is 0x18 = 00011000 → pixels at columns 3,4.
	if !g.At(4, 3) || !g.At(4, 4) || g.At(4, 2) {
		t.Fatal("glyph A row 4 pixels wrong")
	}
	cjk, ok := f.Glyph(0x4E00)
	if !ok || cjk.Width != 16 {
		t.Fatalf("glyph 4E00: ok=%v width=%d", ok, cjk.Width)
	}
	// Row 8 is 0x7FFC → 13 pixels at columns 1..13.
	n := 0
	for j := 0; j < 16; j++ {
		if cjk.At(8, j) {
			n++
		}
	}
	if n != 13 {
		t.Fatalf("glyph 4E00 row 8 has %d pixels, want 13", n)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"0041 missing colon",
		"ZZZZ:0000000018242442427E424242420000",
		"0041:00",
		"0041:" + strings.Repeat("GG", 16),
	}
	for _, in := range bad {
		if _, err := Parse(strings.NewReader(in)); err == nil {
			t.Errorf("Parse(%q) expected error", in)
		}
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	f, err := Parse(strings.NewReader(sampleHex))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != f.Len() {
		t.Fatalf("round-trip len = %d, want %d", back.Len(), f.Len())
	}
	for _, r := range f.Runes() {
		a, _ := f.Glyph(r)
		b, ok := back.Glyph(r)
		if !ok || a.Rows != b.Rows || a.Width != b.Width {
			t.Fatalf("glyph %#U does not round-trip", r)
		}
	}
}

func TestRasterizeCentered(t *testing.T) {
	g := &Glyph{Width: 8}
	g.Set(0, 0)
	g.Set(15, 7)
	im := g.Rasterize()
	// Halfwidth: rows offset by 8, cols by 12.
	if !im.At(8, 12) || !im.At(23, 19) {
		t.Fatalf("centered rasterization wrong:\n%s", im)
	}
	if im.PixelCount() != 2 {
		t.Fatalf("PixelCount = %d, want 2 (1:1 mapping)", im.PixelCount())
	}
	full := &Glyph{Width: 16}
	full.Set(0, 0)
	if !full.Rasterize().At(8, 8) {
		t.Fatal("fullwidth offset wrong")
	}
}

func TestRasterizeDeltaEqualsNativeDiff(t *testing.T) {
	a := &Glyph{Width: 8}
	a.Set(5, 3)
	a.Set(6, 4)
	b := a.Clone()
	b.Flip(2, 2)
	b.Flip(2, 3)
	b.Flip(3, 3)
	if d := bitmap.Delta(a.Rasterize(), b.Rasterize()); d != 3 {
		t.Fatalf("Δ = %d, want 3 (native diff preserved)", d)
	}
}

func TestRasterizeScaled(t *testing.T) {
	g := &Glyph{Width: 8}
	g.Set(0, 0)
	im := g.RasterizeScaled()
	// One native pixel becomes a 2×4 block for halfwidth glyphs.
	if im.PixelCount() != 8 {
		t.Fatalf("scaled PixelCount = %d, want 8", im.PixelCount())
	}
	full := &Glyph{Width: 16}
	full.Set(0, 0)
	if full.RasterizeScaled().PixelCount() != 4 {
		t.Fatal("scaled fullwidth pixel should be 2x2")
	}
}

func TestFlipAndClone(t *testing.T) {
	g := &Glyph{Width: 16}
	g.Flip(3, 3)
	if !g.At(3, 3) {
		t.Fatal("Flip on should set")
	}
	c := g.Clone()
	c.Flip(3, 3)
	if !g.At(3, 3) || c.At(3, 3) {
		t.Fatal("Clone must be independent; double flip must clear")
	}
	// Out-of-range flips are no-ops.
	g.Flip(-1, 0)
	g.Flip(0, 16)
	if g.PixelCount() != 1 {
		t.Fatal("out-of-range Flip must not corrupt")
	}
}

func TestFontAccessors(t *testing.T) {
	f := New()
	if f.Covers('a') || f.Len() != 0 {
		t.Fatal("empty font should cover nothing")
	}
	g := &Glyph{Width: 8}
	f.SetGlyph('a', g)
	f.SetGlyph('b', g)
	if !f.Covers('a') || f.Len() != 2 {
		t.Fatal("SetGlyph/Covers broken")
	}
	rs := f.Runes()
	if len(rs) != 2 || rs[0] != 'a' || rs[1] != 'b' {
		t.Fatalf("Runes = %v", rs)
	}
	imgs := f.RasterizeAll()
	if len(imgs) != 2 {
		t.Fatalf("RasterizeAll len = %d", len(imgs))
	}
}

func TestWriteHalfAndFullWidthFormats(t *testing.T) {
	f := New()
	h := &Glyph{Width: 8}
	h.Set(0, 0)
	w := &Glyph{Width: 16}
	w.Set(0, 15)
	f.SetGlyph('x', h)
	f.SetGlyph(0x4E01, w)
	var buf bytes.Buffer
	if err := f.Write(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %v", lines)
	}
	// 'x' (0078) sorts before 4E01.
	if !strings.HasPrefix(lines[0], "0078:80") {
		t.Errorf("halfwidth line = %q", lines[0])
	}
	if len(lines[0]) != 5+32 {
		t.Errorf("halfwidth line length = %d, want 37", len(lines[0]))
	}
	if !strings.HasPrefix(lines[1], "4E01:0001") {
		t.Errorf("fullwidth line = %q", lines[1])
	}
	if len(lines[1]) != 5+64 {
		t.Errorf("fullwidth line length = %d, want 69", len(lines[1]))
	}
}
