// Package hexfont reads and writes bitmap fonts in the GNU Unifont .hex
// format and rasterizes glyphs to the 32×32 binary images used by the
// SimChar pipeline (paper Section 3.3, Step I).
//
// The .hex format stores one glyph per line as "CODEPOINT:ROWDATA" where
// ROWDATA is 32 hex digits for a halfwidth (8×16) glyph or 64 hex digits
// for a fullwidth (16×16) glyph.
package hexfont

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/bitmap"
)

// GlyphHeight is the native row count of Unifont glyphs.
const GlyphHeight = 16

// Glyph is one native-resolution Unifont glyph. Rows always has
// GlyphHeight entries; for Width==8 only the high byte of each row is used.
type Glyph struct {
	Width int // 8 or 16
	Rows  [GlyphHeight]uint16
}

// At reports whether the native pixel at row i, column j is set.
func (g *Glyph) At(i, j int) bool {
	if i < 0 || i >= GlyphHeight || j < 0 || j >= g.Width {
		return false
	}
	shift := uint(15 - j)
	if g.Width == 8 {
		shift = uint(15 - j) // high byte holds the 8 columns
	}
	return g.Rows[i]&(1<<shift) != 0
}

// Set turns on the native pixel at row i, column j.
func (g *Glyph) Set(i, j int) {
	if i < 0 || i >= GlyphHeight || j < 0 || j >= g.Width {
		return
	}
	g.Rows[i] |= 1 << uint(15-j)
}

// PixelCount returns the number of set pixels in the native glyph.
func (g *Glyph) PixelCount() int {
	n := 0
	for i := 0; i < GlyphHeight; i++ {
		for j := 0; j < g.Width; j++ {
			if g.At(i, j) {
				n++
			}
		}
	}
	return n
}

// Rasterize embeds the native glyph centered on a 32×32 canvas with a 1:1
// pixel mapping (halfwidth glyphs at columns 12..19, fullwidth at 8..23,
// rows 8..23). Centering rather than magnifying keeps the Δ metric equal to
// the native pixel difference, which is what makes a 3-pixel acute accent
// land at Δ=3 as in the paper's Figure 6.
func (g *Glyph) Rasterize() *bitmap.Image {
	im := &bitmap.Image{}
	rowOff := (bitmap.N - GlyphHeight) / 2
	colOff := (bitmap.N - g.Width) / 2
	for i := 0; i < GlyphHeight; i++ {
		for j := 0; j < g.Width; j++ {
			if g.At(i, j) {
				im.Set(i+rowOff, j+colOff)
			}
		}
	}
	return im
}

// RasterizeScaled magnifies the native glyph to fill the 32×32 canvas
// (×2 vertically, ×2 or ×4 horizontally). It exists for the ablation bench
// comparing centered embedding against nearest-neighbour magnification,
// under which every native pixel difference costs 4–8 canvas pixels.
func (g *Glyph) RasterizeScaled() *bitmap.Image {
	im := &bitmap.Image{}
	xscale := 2
	if g.Width == 8 {
		xscale = 4
	}
	for i := 0; i < GlyphHeight; i++ {
		for j := 0; j < g.Width; j++ {
			if !g.At(i, j) {
				continue
			}
			for di := 0; di < 2; di++ {
				for dj := 0; dj < xscale; dj++ {
					im.Set(i*2+di, j*xscale+dj)
				}
			}
		}
	}
	return im
}

// Clone returns an independent copy of the glyph.
func (g *Glyph) Clone() *Glyph {
	out := *g
	return &out
}

// Flip toggles the native pixel at row i, column j.
func (g *Glyph) Flip(i, j int) {
	if i < 0 || i >= GlyphHeight || j < 0 || j >= g.Width {
		return
	}
	g.Rows[i] ^= 1 << uint(15-j)
}

// Font is a collection of glyphs keyed by code point.
type Font struct {
	glyphs map[rune]*Glyph
}

// New returns an empty font.
func New() *Font {
	return &Font{glyphs: make(map[rune]*Glyph)}
}

// SetGlyph installs (or replaces) the glyph for r.
func (f *Font) SetGlyph(r rune, g *Glyph) {
	f.glyphs[r] = g
}

// Glyph returns the glyph for r and whether the font covers r.
func (f *Font) Glyph(r rune) (*Glyph, bool) {
	g, ok := f.glyphs[r]
	return g, ok
}

// Covers reports whether the font has a glyph for r.
func (f *Font) Covers(r rune) bool {
	_, ok := f.glyphs[r]
	return ok
}

// Len returns the number of glyphs in the font.
func (f *Font) Len() int { return len(f.glyphs) }

// Runes returns the covered code points in ascending order.
func (f *Font) Runes() []rune {
	out := make([]rune, 0, len(f.glyphs))
	for r := range f.glyphs {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Parse reads a font in .hex format. Blank lines and lines starting with
// '#' are skipped. Malformed lines abort with a line-numbered error.
func Parse(r io.Reader) (*Font, error) {
	f := New()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		colon := strings.IndexByte(line, ':')
		if colon < 0 {
			return nil, fmt.Errorf("hexfont: line %d: missing ':'", lineNo)
		}
		cp, err := strconv.ParseUint(line[:colon], 16, 32)
		if err != nil {
			return nil, fmt.Errorf("hexfont: line %d: bad code point %q: %v", lineNo, line[:colon], err)
		}
		data := line[colon+1:]
		g := &Glyph{}
		switch len(data) {
		case 32: // 8×16: one byte per row
			g.Width = 8
			for i := 0; i < GlyphHeight; i++ {
				b, err := strconv.ParseUint(data[i*2:i*2+2], 16, 8)
				if err != nil {
					return nil, fmt.Errorf("hexfont: line %d: bad row data: %v", lineNo, err)
				}
				g.Rows[i] = uint16(b) << 8
			}
		case 64: // 16×16: two bytes per row
			g.Width = 16
			for i := 0; i < GlyphHeight; i++ {
				w, err := strconv.ParseUint(data[i*4:i*4+4], 16, 16)
				if err != nil {
					return nil, fmt.Errorf("hexfont: line %d: bad row data: %v", lineNo, err)
				}
				g.Rows[i] = uint16(w)
			}
		default:
			return nil, fmt.Errorf("hexfont: line %d: row data must be 32 or 64 hex digits, got %d", lineNo, len(data))
		}
		f.glyphs[rune(cp)] = g
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("hexfont: %w", err)
	}
	return f, nil
}

// Write serializes the font in .hex format, code points ascending.
func (f *Font) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, r := range f.Runes() {
		g := f.glyphs[r]
		if _, err := fmt.Fprintf(bw, "%04X:", r); err != nil {
			return err
		}
		for i := 0; i < GlyphHeight; i++ {
			if g.Width == 8 {
				if _, err := fmt.Fprintf(bw, "%02X", byte(g.Rows[i]>>8)); err != nil {
					return err
				}
			} else {
				if _, err := fmt.Fprintf(bw, "%04X", g.Rows[i]); err != nil {
					return err
				}
			}
		}
		if _, err := bw.WriteString("\n"); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// RasterizeAll renders every glyph, returning a map from code point to
// image. This is the paper's "generating images" step timed in Table 5.
func (f *Font) RasterizeAll() map[rune]*bitmap.Image {
	out := make(map[rune]*bitmap.Image, len(f.glyphs))
	for r, g := range f.glyphs {
		out[r] = g.Rasterize()
	}
	return out
}
