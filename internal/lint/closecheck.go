package lint

import (
	"fmt"
	"go/ast"
	"strings"
)

// CloseCheckAnalyzer flags Close/Sync calls on writable *os.File
// values whose error is discarded — as a bare expression statement or a
// deferred call — inside the durability packages. On a written file the
// Close/Sync error is the write error (delayed allocation, full disk):
// dropping it silently breaks the crash-safety contract. Writability is
// tracked per function: a file from os.Open is read-only; one from
// os.Create/os.CreateTemp, or os.OpenFile with a writing flag, is
// writable; anything of unknown origin is trusted (and a bare .Sync()
// always implies durability intent, so it is always checked).
func CloseCheckAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "close-check",
		Doc:  "Close/Sync errors on writable files in durability packages must be checked",
		Run: func(pkg *Package, cfg *Config) []Diagnostic {
			if !inScope(cfg.CloseCheckPkgs, pkg.Path) {
				return nil
			}
			var diags []Diagnostic
			eachFuncDecl(pkg, func(fd *ast.FuncDecl) {
				writable := writableFiles(pkg, fd)
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					var call *ast.CallExpr
					var how string
					switch st := n.(type) {
					case *ast.ExprStmt:
						call, _ = st.X.(*ast.CallExpr)
						how = "unchecked"
					case *ast.DeferStmt:
						call = st.Call
						how = "deferred"
					default:
						return true
					}
					if call == nil {
						return true
					}
					sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
					if !ok || (sel.Sel.Name != "Close" && sel.Sel.Name != "Sync") {
						return true
					}
					tv, ok := pkg.Info.Types[sel.X]
					if !ok || !isOSFile(tv.Type) {
						return true
					}
					if sel.Sel.Name == "Close" && !writable[exprKey(sel.X)] {
						return true
					}
					diags = append(diags, Diagnostic{
						Pos:     pkg.Fset.Position(call.Pos()),
						Rule:    "close-check",
						Message: fmt.Sprintf("%s %s.%s() on a writable file discards the write error; check it explicitly", how, exprKey(sel.X), sel.Sel.Name),
					})
					return true
				})
			})
			return diags
		},
	}
}

// writableFiles maps expression keys of *os.File variables that this
// function obtained via a writing open (os.Create, os.CreateTemp, or
// os.OpenFile with O_WRONLY/O_RDWR/O_APPEND/O_CREATE flags).
func writableFiles(pkg *Package, fd *ast.FuncDecl) map[string]bool {
	out := map[string]bool{}
	record := func(lhs ast.Expr, rhs ast.Expr) {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok {
			return
		}
		name, ok := isPkgFunc(pkg.Info, call, "os", "Create", "CreateTemp", "OpenFile")
		if !ok {
			return
		}
		if name == "OpenFile" {
			if len(call.Args) < 2 || !hasWriteFlag(call.Args[1]) {
				return
			}
		}
		out[exprKey(lhs)] = true
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if len(st.Rhs) == 1 && len(st.Lhs) >= 1 {
				record(st.Lhs[0], st.Rhs[0])
			}
		case *ast.ValueSpec:
			if len(st.Values) == 1 && len(st.Names) >= 1 {
				record(st.Names[0], st.Values[0])
			}
		}
		return true
	})
	return out
}

// hasWriteFlag reports whether a flags expression mentions a writing
// open flag (textually — the flags are constant expressions like
// os.O_WRONLY|os.O_CREATE|os.O_APPEND).
func hasWriteFlag(e ast.Expr) bool {
	s := exprKey(e)
	for _, f := range []string{"O_WRONLY", "O_RDWR", "O_APPEND", "O_CREATE", "O_TRUNC"} {
		if strings.Contains(s, f) {
			return true
		}
	}
	return false
}

// exprKey renders a simple expression (ident, selector chain) as a
// stable string key for intra-function matching.
func exprKey(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprKey(x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return exprKey(x.X) + "[" + exprKey(x.Index) + "]"
	case *ast.BasicLit:
		return x.Value
	case *ast.CallExpr:
		return exprKey(x.Fun) + "()"
	case *ast.CompositeLit:
		return "literal"
	case *ast.StarExpr:
		return "*" + exprKey(x.X)
	case *ast.UnaryExpr:
		return x.Op.String() + exprKey(x.X)
	case *ast.BinaryExpr:
		return exprKey(x.X) + x.Op.String() + exprKey(x.Y)
	default:
		return fmt.Sprintf("%T@%d", e, e.Pos())
	}
}
