package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// This file is the dynamic twin of the static noalloc analyzer: a
// table-driven AllocsPerRun gate each annotated package runs over its
// own //shamlint:noalloc list. Because the exercise table is checked
// against the annotations in the source, the static and dynamic checks
// cannot drift apart — adding an annotation without an exercise (or
// vice versa) fails that package's tests.

// ScanNoallocDir returns the display names ("DecodeAppend",
// "(*Detector).DetectLabelBytes") of //shamlint:noalloc functions
// declared in the non-test files of one package directory.
func ScanNoallocDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				if strings.HasPrefix(strings.TrimSpace(c.Text), noallocMarker) {
					names = append(names, FuncDisplayName(fd))
					break
				}
			}
		}
	}
	sort.Strings(names)
	return names, nil
}

// CheckNoallocCoverage asserts that exercises covers exactly the
// //shamlint:noalloc annotations in dir (the drift gate, which runs
// even under -race), then measures each exercise with AllocsPerRun and
// fails on any allocation (skipped under -race, whose instrumentation
// allocates). Each exercise must drive the annotated function on its
// steady-state path with pre-grown buffers, the way the hot loop does.
func CheckNoallocCoverage(t testing.TB, dir string, exercises map[string]func()) {
	t.Helper()
	annotated, err := ScanNoallocDir(dir)
	if err != nil {
		t.Fatalf("scanning %s for noalloc annotations: %v", dir, err)
	}
	for _, name := range annotated {
		if _, ok := exercises[name]; !ok {
			t.Errorf("//shamlint:noalloc %s has no AllocsPerRun exercise — add one to this package's gate table", name)
		}
	}
	for name := range exercises {
		found := false
		for _, a := range annotated {
			if a == name {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("exercise %q has no //shamlint:noalloc annotation in %s — annotate the function or drop the exercise", name, dir)
		}
	}
	if t.Failed() {
		return
	}
	if RaceEnabled {
		t.Logf("race instrumentation allocates; drift gate checked, AllocsPerRun skipped")
		return
	}
	for _, name := range annotated {
		fn := exercises[name]
		if n := testing.AllocsPerRun(200, fn); n != 0 {
			t.Errorf("noalloc function %s allocates %.1f/op on its steady-state path", name, n)
		}
	}
}
