package lint

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

const moduleDir = "../.."

// Each fixture directory exercises one analyzer: a config scoping only
// that rule to the fixture package, positive cases marked with
// `// want <rule> "<message substring>"`, and allowlisted cases that
// must stay silent. The noalloc and directive rules are unscoped.
var fixtures = []struct {
	dir string
	cfg func(pkgPath string) *Config
}{
	{"durablewrite", func(p string) *Config { return &Config{DurableWritePkgs: []string{p}} }},
	{"noalloc", func(p string) *Config { return &Config{} }},
	{"determinism", func(p string) *Config { return &Config{DeterminismPkgs: []string{p}} }},
	{"singleepoch", func(p string) *Config { return &Config{SingleEpochPkgs: []string{p}} }},
	{"closecheck", func(p string) *Config { return &Config{CloseCheckPkgs: []string{p}} }},
	{"goroutinectx", func(p string) *Config { return &Config{GoroutinePkgs: []string{p}} }},
	{"directive", func(p string) *Config { return &Config{} }},
}

// want markers live in fixture comments: `want <rule> "<substr>"`, with
// an optional line offset (`want-1 …`) for diagnostics the marker
// cannot share a line with (e.g. a malformed directive itself).
var wantRe = regexp.MustCompile(`want([+-]\d+)? ([a-z-]+) "([^"]*)"`)

type expectation struct {
	line   int
	rule   string
	substr string
}

func TestFixtureDiagnostics(t *testing.T) {
	for _, fx := range fixtures {
		t.Run(fx.dir, func(t *testing.T) {
			pkgPath := "fixture/" + fx.dir
			pkg, err := LoadDir(moduleDir, filepath.Join("testdata", fx.dir), pkgPath)
			if err != nil {
				t.Fatalf("loading fixture: %v", err)
			}
			var wants []expectation
			for _, f := range pkg.Files {
				for _, cg := range f.Comments {
					for _, c := range cg.List {
						for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
							line := pkg.Fset.Position(c.Pos()).Line
							if m[1] != "" {
								off, _ := strconv.Atoi(m[1])
								line += off
							}
							wants = append(wants, expectation{line: line, rule: m[2], substr: m[3]})
						}
					}
				}
			}
			if len(wants) == 0 {
				t.Fatalf("fixture %s has no want markers", fx.dir)
			}
			diags := Run([]*Package{pkg}, fx.cfg(pkgPath))

			matched := make([]bool, len(diags))
			for _, w := range wants {
				found := false
				for i, d := range diags {
					if !matched[i] && d.Pos.Line == w.line && d.Rule == w.rule && strings.Contains(d.Message, w.substr) {
						matched[i] = true
						found = true
						break
					}
				}
				if !found {
					t.Errorf("expected %s diagnostic at line %d containing %q; not reported", w.rule, w.line, w.substr)
				}
			}
			for i, d := range diags {
				if !matched[i] {
					t.Errorf("unexpected diagnostic: %s", d)
				}
			}
		})
	}
}

// TestRuleSetComplete pins the analyzer roster: the issue's six
// contracts, each with a fixture above.
func TestRuleSetComplete(t *testing.T) {
	want := []string{"durable-write", "noalloc", "determinism", "single-epoch", "close-check", "goroutine-ctx"}
	got := RuleNames()
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("rule set = %v, want %v", got, want)
	}
}

func TestScanNoallocTree(t *testing.T) {
	refs, err := ScanNoallocTree(moduleDir)
	if err != nil {
		t.Fatal(err)
	}
	keys := map[string]bool{}
	for _, r := range refs {
		keys[r.Key()] = true
	}
	// The documented hot-path contracts must stay annotated; losing one
	// silently would disable both the static and dynamic gates for it.
	for _, k := range []string{
		"internal/core.(*Detector).DetectLabelBytes",
		"internal/core.(*Detector).DetectDomainBytes",
		"internal/domain.NormalizeZoneLine",
		"internal/domain.AppendSpans",
		"internal/punycode.DecodeAppend",
		"internal/punycode.ToUnicodeLabelAppend",
		"internal/punycode.IsIDN",
		"internal/punycode.IsIDNBytes",
		"internal/punycode.Fold",
		"internal/zonewatch.firstField",
		"internal/zonewatch.writeDeltaLine",
	} {
		if !keys[k] {
			t.Errorf("expected //shamlint:noalloc annotation on %s; tree scan found %v", k, refs)
		}
	}
	// Annotations only appear where a package-local gate test can
	// exercise them (fixture trees excluded by the testdata skip).
	for _, r := range refs {
		if strings.Contains(r.Pkg, "testdata") {
			t.Errorf("testdata annotation leaked into tree scan: %+v", r)
		}
	}
}
