package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one finding: a position, the rule that fired, and a
// message saying what to do about it.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
}

// An Analyzer inspects one package and reports findings. Findings are
// filtered against //shamlint:allow directives by Run, not by the
// analyzer itself.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Package, *Config) []Diagnostic
}

// Analyzers is the full rule set, in a stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		DurableWriteAnalyzer(),
		NoallocAnalyzer(),
		DeterminismAnalyzer(),
		SingleEpochAnalyzer(),
		CloseCheckAnalyzer(),
		GoroutineAnalyzer(),
	}
}

// Config scopes the package-targeted rules. Each list holds import
// paths; a package is in scope when its path matches exactly.
type Config struct {
	// DurableWritePkgs persist crash-safe state: direct os.WriteFile /
	// os.Create / os.Rename there must go through the blessed
	// snapshot.WriteFileAtomic / SealEnvelope helpers.
	DurableWritePkgs []string
	// DeterminismPkgs produce byte-reproducible artifacts: wall-clock
	// reads, math/rand, and unsorted map iteration feeding output are
	// errors.
	DeterminismPkgs []string
	// SingleEpochPkgs answer requests from one engine epoch: a
	// function there may consult the engine at most once.
	SingleEpochPkgs []string
	// CloseCheckPkgs are the durability packages where an unchecked
	// Close/Sync error on a writable file silently loses data.
	CloseCheckPkgs []string
	// GoroutinePkgs host long-running loops: a `go func` there must
	// carry a ctx/done signal or a completion channel.
	GoroutinePkgs []string
}

// DefaultConfig scopes the rules to this repo's packages. This is the
// machine-readable form of the contracts CHANGES.md records in prose.
func DefaultConfig() *Config {
	return &Config{
		DurableWritePkgs: []string{
			"repro/internal/jobstore",
			"repro/internal/zonewatch",
			"repro/internal/snapshot",
			"repro/internal/service",
		},
		DeterminismPkgs: []string{
			"repro/internal/snapshot",
			"repro/internal/punycode",
			"repro/internal/domain",
			"repro/internal/zonefile",
			"repro/internal/homoglyph",
			"repro/internal/dnswire",
			"repro/internal/core",
			"repro/internal/jobstore",
			"repro/internal/triage",
		},
		SingleEpochPkgs: []string{
			"repro/internal/service",
		},
		CloseCheckPkgs: []string{
			"repro/internal/jobstore",
			"repro/internal/zonewatch",
			"repro/internal/snapshot",
			"repro/internal/service",
		},
		GoroutinePkgs: []string{
			"repro/internal/service",
			"repro/internal/zonewatch",
			"repro/internal/triage",
			"repro/internal/jobstore",
			"repro/internal/resilience",
			"repro/internal/dnsclient",
			// The server's pooled listeners (UDP, stream, DoT, DoH) spawn
			// one goroutine per listener and per accepted connection; every
			// one must carry the done channel.
			"repro/internal/dnsserver",
		},
	}
}

func inScope(pkgs []string, path string) bool {
	for _, p := range pkgs {
		if p == path {
			return true
		}
	}
	return false
}

// RuleNames returns every rule an //shamlint:allow directive may name.
func RuleNames() []string {
	as := Analyzers()
	names := make([]string, len(as))
	for i, a := range as {
		names[i] = a.Name
	}
	return names
}

// Run executes every analyzer over every package, applies the
// //shamlint:allow escape hatches, validates the directives themselves,
// and returns the surviving findings sorted by position.
func Run(pkgs []*Package, cfg *Config) []Diagnostic {
	if cfg == nil {
		cfg = DefaultConfig()
	}
	var out []Diagnostic
	for _, pkg := range pkgs {
		dirs, dirDiags := collectDirectives(pkg)
		out = append(out, dirDiags...)
		var raw []Diagnostic
		for _, a := range Analyzers() {
			raw = append(raw, a.Run(pkg, cfg)...)
		}
		for _, d := range raw {
			if !dirs.allows(d) {
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return out
}

// --- directives ---

const (
	allowPrefix   = "//shamlint:allow"
	noallocMarker = "//shamlint:noalloc"
)

type allowDirective struct {
	rule string
}

// directives indexes a package's //shamlint:allow comments: line-level
// allows suppress findings on the directive's own line or the line
// below it; an allow in a function's doc comment suppresses that rule
// across the whole function body.
type directives struct {
	fset    *token.FileSet
	byLine  map[string]map[int][]allowDirective // file -> line -> allows
	funcs   []funcAllow
	noalloc []*ast.FuncDecl
}

type funcAllow struct {
	file       string
	start, end int // body line range, inclusive
	rule       string
}

func (ds *directives) allows(d Diagnostic) bool {
	for _, a := range ds.byLine[d.Pos.Filename][d.Pos.Line] {
		if a.rule == d.Rule {
			return true
		}
	}
	// A standalone comment line allows the line below it.
	for _, a := range ds.byLine[d.Pos.Filename][d.Pos.Line-1] {
		if a.rule == d.Rule {
			return true
		}
	}
	for _, fa := range ds.funcs {
		if fa.file == d.Pos.Filename && fa.rule == d.Rule && d.Pos.Line >= fa.start && d.Pos.Line <= fa.end {
			return true
		}
	}
	return false
}

// collectDirectives scans a package's comments for shamlint directives,
// reporting malformed ones (unknown rule, missing reason) as findings
// under the "directive" rule — an escape hatch without a written reason
// is itself a violation.
func collectDirectives(pkg *Package) (*directives, []Diagnostic) {
	ds := &directives{fset: pkg.Fset, byLine: map[string]map[int][]allowDirective{}}
	var diags []Diagnostic
	known := map[string]bool{}
	for _, n := range RuleNames() {
		known[n] = true
	}

	record := func(c *ast.Comment, inDoc *ast.FuncDecl) {
		text := strings.TrimSpace(c.Text)
		if !strings.HasPrefix(text, allowPrefix) {
			return
		}
		pos := pkg.Fset.Position(c.Pos())
		rest := strings.TrimSpace(strings.TrimPrefix(text, allowPrefix))
		rule, reason, _ := strings.Cut(rest, " ")
		reason = strings.TrimSpace(reason)
		if rule == "" || !known[rule] {
			diags = append(diags, Diagnostic{Pos: pos, Rule: "directive",
				Message: fmt.Sprintf("shamlint:allow names unknown rule %q (rules: %s)", rule, strings.Join(RuleNames(), ", "))})
			return
		}
		if reason == "" {
			diags = append(diags, Diagnostic{Pos: pos, Rule: "directive",
				Message: fmt.Sprintf("shamlint:allow %s needs a written reason", rule)})
			return
		}
		if inDoc != nil && inDoc.Body != nil {
			ds.funcs = append(ds.funcs, funcAllow{
				file:  pos.Filename,
				start: pkg.Fset.Position(inDoc.Pos()).Line,
				end:   pkg.Fset.Position(inDoc.Body.End()).Line,
				rule:  rule,
			})
			return
		}
		if ds.byLine[pos.Filename] == nil {
			ds.byLine[pos.Filename] = map[int][]allowDirective{}
		}
		ds.byLine[pos.Filename][pos.Line] = append(ds.byLine[pos.Filename][pos.Line], allowDirective{rule: rule})
	}

	for _, f := range pkg.Files {
		// Doc-comment directives scope to their function.
		docOwner := map[*ast.Comment]*ast.FuncDecl{}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				docOwner[c] = fd
				if strings.HasPrefix(strings.TrimSpace(c.Text), noallocMarker) {
					ds.noalloc = append(ds.noalloc, fd)
				}
			}
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				record(c, docOwner[c])
			}
		}
	}
	return ds, diags
}

// NoallocFuncs returns the //shamlint:noalloc-annotated declarations in
// pkg — the contract list both the static analyzer and the dynamic
// AllocsPerRun gate are driven from.
func NoallocFuncs(pkg *Package) []*ast.FuncDecl {
	ds, _ := collectDirectives(pkg)
	return ds.noalloc
}

// FuncDisplayName renders a FuncDecl as "Name" or "(*Recv).Name", the
// key format the dynamic alloc gate's table uses.
func FuncDisplayName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	recv := fd.Recv.List[0].Type
	var b strings.Builder
	b.WriteString("(")
	writeTypeExpr(&b, recv)
	b.WriteString(").")
	b.WriteString(fd.Name.Name)
	return b.String()
}

func writeTypeExpr(b *strings.Builder, e ast.Expr) {
	switch t := e.(type) {
	case *ast.Ident:
		b.WriteString(t.Name)
	case *ast.StarExpr:
		b.WriteString("*")
		writeTypeExpr(b, t.X)
	case *ast.IndexExpr: // generic receiver
		writeTypeExpr(b, t.X)
	case *ast.IndexListExpr:
		writeTypeExpr(b, t.X)
	default:
		fmt.Fprintf(b, "%T", e)
	}
}
