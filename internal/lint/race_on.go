//go:build race

package lint

// RaceEnabled reports whether this build carries the race detector,
// whose instrumentation allocates inside measured regions.
const RaceEnabled = true
