package lint

import "testing"

// TestShamlintSelfCheck runs the full rule set over the whole module —
// the same gate CI's `shamlint ./...` step enforces. The repo must lint
// clean: every finding is either fixed or carries a reasoned
// //shamlint:allow, so a regression in any durability/determinism/
// hot-path contract fails this test before it ships.
func TestShamlintSelfCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	pkgs, err := LoadPackages(moduleDir, "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) < 30 {
		t.Fatalf("loaded only %d packages — the module load is not seeing the repo", len(pkgs))
	}
	diags := Run(pkgs, DefaultConfig())
	for _, d := range diags {
		t.Errorf("shamlint: %s", d)
	}
	if len(diags) > 0 {
		t.Errorf("%d finding(s); fix them or add //shamlint:allow <rule> <reason> at the site", len(diags))
	}
}
