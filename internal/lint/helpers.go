package lint

import (
	"go/ast"
	"go/types"
)

// calleeFunc resolves a call expression to the *types.Func it invokes
// (package-level function or method), or nil for conversions, builtins
// and indirect calls through function values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// isPkgFunc reports whether call invokes pkgPath.name (a package-level
// function, matched by the defining package's import path).
func isPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath string, names ...string) (string, bool) {
	f := calleeFunc(info, call)
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != pkgPath {
		return "", false
	}
	for _, n := range names {
		if f.Name() == n {
			return n, true
		}
	}
	return "", false
}

// isConversion reports whether call is a type conversion, returning the
// target type.
func isConversion(info *types.Info, call *ast.CallExpr) (types.Type, bool) {
	tv, ok := info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return nil, false
	}
	return tv.Type, true
}

// namedPathAndName unwraps pointers and returns the defining package
// path and type name for a named type, or ("", "") otherwise.
func namedPathAndName(t types.Type) (string, string) {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return "", ""
	}
	return n.Obj().Pkg().Path(), n.Obj().Name()
}

// isOSFile reports whether t is *os.File.
func isOSFile(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	path, name := namedPathAndName(p.Elem())
	return path == "os" && name == "File"
}

// isContext reports whether t is context.Context.
func isContext(t types.Type) bool {
	path, name := namedPathAndName(t)
	return path == "context" && name == "Context"
}

// eachFuncDecl visits every function declaration with a body.
func eachFuncDecl(pkg *Package, fn func(*ast.FuncDecl)) {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(fd)
			}
		}
	}
}
