// Package directive is a shamlint fixture: the escape hatch itself is
// validated — unknown rules and missing reasons are findings.
package directive

import "os"

func bogusDirectives(path string) error {
	//shamlint:allow no-such-rule because I said so // want directive "unknown rule"
	_ = path
	//shamlint:allow durable-write
	// want-1 directive "needs a written reason"
	return os.Remove(path)
}
