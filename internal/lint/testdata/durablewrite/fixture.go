// Package durablewrite is a shamlint fixture: direct file mutation in
// a state-persisting package.
package durablewrite

import "os"

func persistState(path string, data []byte) error {
	if err := os.WriteFile(path, data, 0o644); err != nil { // want durable-write "direct os.WriteFile"
		return err
	}
	f, err := os.Create(path + ".new") // want durable-write "direct os.Create"
	if err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(path+".new", path) // want durable-write "direct os.Rename"
}

func allowedRename(from, to string) error {
	//shamlint:allow durable-write fixture: rename is part of a commit protocol proven elsewhere
	return os.Rename(from, to)
}
