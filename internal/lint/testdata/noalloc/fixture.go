// Package noalloc is a shamlint fixture: allocation-forcing constructs
// inside //shamlint:noalloc functions.
package noalloc

import "fmt"

type sink interface{ accept(any) }

// hot is the annotated hot path; every allocating construct below must
// be flagged.
//
//shamlint:noalloc
func hot(b []byte, s sink) int {
	str := string(b)             // want noalloc "conversion allocates"
	back := []byte(str)          // want noalloc "conversion allocates"
	buf := make([]byte, 16)      // want noalloc "make allocates"
	lit := []int{1, 2, 3}        // want noalloc "slice literal allocates"
	m := map[string]int{}        // want noalloc "map literal allocates"
	fmt.Println(len(m))          // want noalloc "fmt.Println allocates"
	f := func() int { return 1 } // want noalloc "closure allocates"
	joined := str + "suffix"     // want noalloc "string concatenation allocates"
	s.accept(len(joined))        // want noalloc "boxes into interface"
	return len(back) + len(buf) + len(lit) + f()
}

// cold is unannotated: the same constructs are fine here.
func cold(b []byte) string {
	return string(b) + fmt.Sprint(len(b))
}

// warm keeps its miss path clean; the one hit-path allocation is
// enumerated with an allow.
//
//shamlint:noalloc
func warm(b []byte, found bool) string {
	if found {
		//shamlint:allow noalloc fixture: hit path materializes the match string
		return string(b)
	}
	return ""
}
