// Package determinism is a shamlint fixture: wall clock, randomness,
// and unsorted map iteration in a codec package.
package determinism

import (
	"fmt"
	"io"
	"math/rand" // want determinism "math/rand in a determinism package"
	"sort"
	"time"
)

func stampHeader(w io.Writer) {
	fmt.Fprintf(w, "generated %v %d\n", time.Now(), rand.Int()) // want determinism "time.Now in a determinism package"
}

func encodeUnsorted(w io.Writer, m map[string]int) {
	for k, v := range m { // want determinism "feeds a writer/encoder"
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

func collectUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m { // want determinism "never sorted"
		keys = append(keys, k)
	}
	return keys
}

// collectSorted is the blessed idiom: collect, sort, then emit.
func collectSorted(w io.Writer, m map[string]int) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s=%d\n", k, m[k])
	}
}

// countOnly never leaks iteration order.
func countOnly(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

func allowedClock() int64 {
	//shamlint:allow determinism fixture: operational metadata, not encoded output
	return time.Now().Unix()
}
