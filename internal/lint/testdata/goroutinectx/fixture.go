// Package goroutinectx is a shamlint fixture: goroutines without a
// cancellation or completion signal in a long-running package.
package goroutinectx

import (
	"context"
	"sync"
)

func work() {}

func fireAndForget() {
	go func() { // want goroutine-ctx "no cancellation or completion signal"
		work()
	}()
	go work() // want goroutine-ctx "no cancellation or completion signal"
}

func withContext(ctx context.Context) {
	go func() {
		<-ctx.Done()
		work()
	}()
}

func withChannel(done chan struct{}) {
	go func() {
		work()
		close(done)
	}()
}

func withWaitGroup(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
}

func namedWithCtx(ctx context.Context) {
	go watch(ctx)
}

func watch(ctx context.Context) { <-ctx.Done() }

func allowedDetached() {
	//shamlint:allow goroutine-ctx fixture: process-lifetime helper, intentionally detached
	go work()
}
