// Package closecheck is a shamlint fixture: discarded Close/Sync
// errors on writable files.
package closecheck

import "os"

func writeDropsClose(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close() // want close-check "deferred f.Close"
	_, err = f.Write(data)
	return err
}

func appendDropsBoth(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	_, werr := f.Write(data)
	f.Sync()  // want close-check "unchecked f.Sync"
	f.Close() // want close-check "unchecked f.Close"
	return werr
}

// readOnlyClose is fine: nothing was written, Close cannot lose data.
func readOnlyClose(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, 64)
	n, err := f.Read(buf)
	return buf[:n], err
}

// checkedClose is the blessed shape: the Close error joins the return.
func checkedClose(path string, data []byte) (retErr error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && retErr == nil {
			retErr = cerr
		}
	}()
	_, err = f.Write(data)
	return err
}

func allowedClose(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	//shamlint:allow close-check fixture: error-path cleanup, the original error is already being returned
	f.Close()
	return nil
}
