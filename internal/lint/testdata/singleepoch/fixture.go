// Package singleepoch is a shamlint fixture: request paths that
// consult the engine more than once.
package singleepoch

type Detector struct{ refs int }

func (d *Detector) DetectBytes(b []byte) int { return d.refs + len(b) }

type Engine struct{ det *Detector }

func (e *Engine) Current() (*Detector, uint64)             { return e.det, 1 }
func (e *Engine) DetectDomainBytes(b []byte) (int, uint64) { return e.det.DetectBytes(b), 1 }

// handleOnce is the contract: one Current(), everything else on the
// pinned detector.
func handleOnce(e *Engine, reqs [][]byte) int {
	det, _ := e.Current()
	total := 0
	for _, r := range reqs {
		total += det.DetectBytes(r)
	}
	return total
}

func handleTwice(e *Engine, a, b []byte) int {
	x, _ := e.DetectDomainBytes(a)
	y, _ := e.DetectDomainBytes(b) // want single-epoch "engine consulted 2 times"
	return x + y
}

func handleInLoop(e *Engine, reqs [][]byte) int {
	total := 0
	for _, r := range reqs {
		n, _ := e.DetectDomainBytes(r) // want single-epoch "inside a loop"
		total += n
	}
	return total
}

func handleAllowed(e *Engine, a []byte) (int, uint64) {
	_, epoch := e.Current()
	//shamlint:allow single-epoch fixture: second read is a freshness probe, not part of the answer
	n, _ := e.DetectDomainBytes(a)
	return n, epoch
}
