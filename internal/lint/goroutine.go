package lint

import (
	"go/ast"
	"go/types"
)

// GoroutineAnalyzer enforces goroutine hygiene in the long-running
// packages: a `go` statement must carry some way to be stopped or
// awaited. A launched func literal passes if its body references a
// context.Context, performs any channel operation (send, receive,
// close, select, range-over-channel), or calls a sync.WaitGroup
// method; a launched named function passes if any argument is a
// context or channel. Anything else is a fire-and-forget goroutine
// that outlives shutdown — the drain/cancel contracts of the serve and
// watch loops forbid those.
func GoroutineAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "goroutine-ctx",
		Doc:  "goroutines in long-running packages need a cancellation or completion signal (ctx, channel, or WaitGroup)",
		Run: func(pkg *Package, cfg *Config) []Diagnostic {
			if !inScope(cfg.GoroutinePkgs, pkg.Path) {
				return nil
			}
			var diags []Diagnostic
			for _, f := range pkg.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					gs, ok := n.(*ast.GoStmt)
					if !ok {
						return true
					}
					if goStmtHasSignal(pkg, gs) {
						return true
					}
					diags = append(diags, Diagnostic{
						Pos:     pkg.Fset.Position(gs.Pos()),
						Rule:    "goroutine-ctx",
						Message: "goroutine has no cancellation or completion signal (no ctx, channel op, or WaitGroup); it cannot be stopped or awaited",
					})
					return true
				})
			}
			return diags
		},
	}
}

func goStmtHasSignal(pkg *Package, gs *ast.GoStmt) bool {
	if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
		for _, p := range lit.Type.Params.List {
			if tv, ok := pkg.Info.Types[p.Type]; ok && typeIsSignal(tv.Type) {
				return true
			}
		}
		return bodyHasSignal(pkg, lit.Body)
	}
	// Named function or method value: any ctx/channel argument counts.
	for _, arg := range gs.Call.Args {
		if tv, ok := pkg.Info.Types[arg]; ok && tv.Type != nil && typeIsSignal(tv.Type) {
			return true
		}
	}
	return false
}

func typeIsSignal(t types.Type) bool {
	if isContext(t) {
		return true
	}
	_, isChan := t.Underlying().(*types.Chan)
	return isChan
}

func bodyHasSignal(pkg *Package, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.SendStmt, *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if x.Op.String() == "<-" {
				found = true
			}
		case *ast.RangeStmt:
			if tv, ok := pkg.Info.Types[x.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.Ident:
			if tv, ok := pkg.Info.Types[x]; ok && tv.Type != nil && isContext(tv.Type) {
				found = true
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "close" {
				if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
					found = true
					return false
				}
			}
			f := calleeFunc(pkg.Info, x)
			if f == nil {
				return true
			}
			if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
				if path, name := namedPathAndName(sig.Recv().Type()); path == "sync" && name == "WaitGroup" {
					found = true
				}
			}
		}
		return !found
	})
	return found
}
