// Package lint is shamlint: a repo-invariant static-analysis pass that
// mechanizes the prose contracts earlier PRs established — durable
// writes go through the blessed snapshot helpers, annotated hot paths
// stay allocation-free, codec output is deterministic, a request is
// answered from exactly one engine epoch, Close/Sync errors on writable
// files are checked, and long-running goroutines carry a cancellation
// or completion signal.
//
// The implementation is pure standard library (go/parser + go/types).
// Package metadata and export data for imports come from `go list
// -export -deps -json`, the same source `go vet` uses, so the module
// stays dependency-free.
package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one type-checked package ready for analysis.
type Package struct {
	Path  string // import path ("repro/internal/jobstore")
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// exportImporter resolves imports from gc export data. Paths already
// type-checked from source win; anything else (stdlib, and on the lazy
// path fixture imports) is resolved through `go list -export`, cached.
type exportImporter struct {
	mu      sync.Mutex
	dir     string // working directory for lazy `go list` runs
	source  map[string]*types.Package
	exports map[string]string // import path -> export data file
	gc      types.Importer
}

func newExportImporter(dir string, fset *token.FileSet) *exportImporter {
	imp := &exportImporter{
		dir:     dir,
		source:  map[string]*types.Package{},
		exports: map[string]string{},
	}
	imp.gc = importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		e, err := imp.exportFile(path)
		if err != nil {
			return nil, err
		}
		return os.Open(e)
	})
	return imp
}

func (imp *exportImporter) Import(path string) (*types.Package, error) {
	imp.mu.Lock()
	p, ok := imp.source[path]
	imp.mu.Unlock()
	if ok {
		return p, nil
	}
	return imp.gc.Import(path)
}

// exportFile returns the export-data file for path, running `go list
// -export` on a cache miss (fixture packages import stdlib packages the
// module load may not have pulled in).
func (imp *exportImporter) exportFile(path string) (string, error) {
	imp.mu.Lock()
	defer imp.mu.Unlock()
	if e, ok := imp.exports[path]; ok {
		return e, nil
	}
	cmd := exec.Command("go", "list", "-export", "-json=ImportPath,Export", "--", path)
	cmd.Dir = imp.dir
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("lint: go list -export %s: %w", path, err)
	}
	var p listPkg
	if err := json.Unmarshal(out, &p); err != nil {
		return "", fmt.Errorf("lint: go list -export %s: %w", path, err)
	}
	if p.Export == "" {
		return "", fmt.Errorf("lint: no export data for %q", path)
	}
	imp.exports[path] = p.Export
	return p.Export, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
}

// LoadPackages type-checks every package matched by patterns in the
// module rooted at dir. Dependencies resolve from gc export data, so
// only the module's own source is parsed.
func LoadPackages(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,GoFiles,Export,Standard,Module,Error", "--",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list: %w", err)
	}

	var metas []*listPkg
	dec := json.NewDecoder(strings.NewReader(string(out)))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		metas = append(metas, &p)
	}

	fset := token.NewFileSet()
	imp := newExportImporter(dir, fset)
	var pkgs []*Package
	// `go list -deps` emits dependencies before dependents, so each
	// module package's in-module imports are already source-checked
	// when its turn comes.
	for _, m := range metas {
		if m.Export != "" {
			imp.exports[m.ImportPath] = m.Export
		}
		if m.Module == nil || m.Standard || len(m.GoFiles) == 0 {
			continue
		}
		if m.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", m.ImportPath, m.Error.Err)
		}
		var files []*ast.File
		for _, gf := range m.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(m.Dir, gf), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		info := newInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(m.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("lint: type-checking %s: %w", m.ImportPath, err)
		}
		imp.mu.Lock()
		imp.source[m.ImportPath] = tpkg
		imp.mu.Unlock()
		pkgs = append(pkgs, &Package{Path: m.ImportPath, Fset: fset, Files: files, Types: tpkg, Info: info})
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// LoadDir type-checks one directory of Go files as the package pkgPath
// — the fixture loader for testdata packages the go tool ignores.
// moduleDir anchors the `go list` runs that fetch export data for the
// fixture's (stdlib) imports.
func LoadDir(moduleDir, dir, pkgPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	imp := newExportImporter(moduleDir, fset)
	info := newInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", dir, err)
	}
	return &Package{Path: pkgPath, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}
