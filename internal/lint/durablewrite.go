package lint

import (
	"fmt"
	"go/ast"
)

// DurableWriteAnalyzer enforces the durable-write discipline PR 2/6/7
// established: in packages that persist crash-safe state, files reach
// disk through snapshot.WriteFileAtomic (temp + fsync + rename) or an
// append-fsync journal, never through a bare os.WriteFile/os.Create,
// and renames that are part of a commit protocol live inside the
// blessed helpers. A direct call is an error; intentional exceptions
// carry //shamlint:allow durable-write <reason>.
func DurableWriteAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "durable-write",
		Doc:  "state-persisting packages must write through snapshot.WriteFileAtomic/SealEnvelope, not direct os.WriteFile/os.Create/os.Rename",
		Run: func(pkg *Package, cfg *Config) []Diagnostic {
			if !inScope(cfg.DurableWritePkgs, pkg.Path) {
				return nil
			}
			var diags []Diagnostic
			for _, f := range pkg.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					name, ok := isPkgFunc(pkg.Info, call, "os", "WriteFile", "Create", "Rename")
					if !ok {
						return true
					}
					diags = append(diags, Diagnostic{
						Pos:     pkg.Fset.Position(call.Pos()),
						Rule:    "durable-write",
						Message: fmt.Sprintf("direct os.%s in a state-persisting package; use snapshot.WriteFileAtomic/SealEnvelope or annotate //shamlint:allow durable-write <reason>", name),
					})
					return true
				})
			}
			return diags
		},
	}
}
