package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"sort"
	"strings"
)

// NoallocRef names one //shamlint:noalloc-annotated function:
// "internal/core.(*Detector).DetectLabelBytes". ScanNoallocTree
// gathers these with a comment-only parse (no type checking), so the
// dynamic AllocsPerRun gate can enumerate the contract list cheaply at
// test time and fail when it drifts from the annotations.
type NoallocRef struct {
	Pkg  string // module-relative package dir ("internal/core")
	Func string // display name ("(*Detector).DetectLabelBytes")
	File string // absolute path of the declaring file
	Line int
}

func (r NoallocRef) Key() string { return r.Pkg + "." + r.Func }

// ScanNoallocTree walks root (a module checkout) for non-test .go
// files carrying //shamlint:noalloc on a function declaration.
func ScanNoallocTree(root string) ([]NoallocRef, error) {
	var refs []NoallocRef
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if path == root {
				return nil
			}
			name := d.Name()
			if name == "testdata" || name == ".git" || strings.HasPrefix(name, ".") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		fset := token.NewFileSet()
		f, perr := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if perr != nil {
			return perr
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				if !strings.HasPrefix(strings.TrimSpace(c.Text), noallocMarker) {
					continue
				}
				rel, rerr := filepath.Rel(root, filepath.Dir(path))
				if rerr != nil {
					rel = filepath.Dir(path)
				}
				refs = append(refs, NoallocRef{
					Pkg:  filepath.ToSlash(rel),
					Func: FuncDisplayName(fd),
					File: path,
					Line: fset.Position(fd.Pos()).Line,
				})
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(refs, func(i, j int) bool { return refs[i].Key() < refs[j].Key() })
	return refs, nil
}
