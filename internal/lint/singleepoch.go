package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// SingleEpochAnalyzer enforces the PR-4 serving invariant: a request is
// answered from exactly ONE engine epoch. A handler takes
// Engine.Current() once and runs the whole request against that
// detector; consulting the engine a second time (a second Current(), a
// convenience DetectDomain* on the engine, or either inside a loop)
// can straddle a hot swap and mix epochs within one response.
func SingleEpochAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "single-epoch",
		Doc:  "a request-path function must consult the engine at most once (take Engine.Current() once)",
		Run: func(pkg *Package, cfg *Config) []Diagnostic {
			if !inScope(cfg.SingleEpochPkgs, pkg.Path) {
				return nil
			}
			var diags []Diagnostic
			eachFuncDecl(pkg, func(fd *ast.FuncDecl) {
				type site struct {
					call   *ast.CallExpr
					name   string
					inLoop bool
				}
				var sites []site
				var walk func(n ast.Node, loopDepth int)
				walk = func(n ast.Node, loopDepth int) {
					ast.Inspect(n, func(m ast.Node) bool {
						switch x := m.(type) {
						case *ast.ForStmt:
							if x.Body != nil {
								walk(x.Body, loopDepth+1)
							}
							return false
						case *ast.RangeStmt:
							if x.Body != nil {
								walk(x.Body, loopDepth+1)
							}
							return false
						case *ast.CallExpr:
							if name, ok := engineCall(pkg, x); ok {
								sites = append(sites, site{call: x, name: name, inLoop: loopDepth > 0})
							}
						}
						return true
					})
				}
				walk(fd.Body, 0)
				for i, s := range sites {
					if i == 0 && !s.inLoop {
						continue
					}
					why := fmt.Sprintf("engine consulted %d times in %s", len(sites), fd.Name.Name)
					if s.inLoop {
						why = fmt.Sprintf("engine consulted inside a loop in %s", fd.Name.Name)
					}
					diags = append(diags, Diagnostic{
						Pos:     pkg.Fset.Position(s.call.Pos()),
						Rule:    "single-epoch",
						Message: fmt.Sprintf("%s: %s can straddle a hot swap — take Engine.Current() once per request and reuse the detector", why, s.name),
					})
				}
			})
			return diags
		},
	}
}

// engineCall reports whether call is a state-reading method on an
// Engine (matched by type name, so the facade wrapper and test
// fixtures are covered alongside core.Engine).
func engineCall(pkg *Package, call *ast.CallExpr) (string, bool) {
	f := calleeFunc(pkg.Info, call)
	if f == nil {
		return "", false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	_, typeName := namedPathAndName(sig.Recv().Type())
	if typeName != "Engine" {
		return "", false
	}
	switch f.Name() {
	case "Current", "DetectDomain", "DetectDomainBytes":
		return "Engine." + f.Name(), true
	}
	return "", false
}
