package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// DeterminismAnalyzer guards the byte-reproducibility contracts: the
// SHAMSNAP codec family, the deterministic-order pipeline output, and
// the byte-identical crash-resume journals all promise that the same
// input produces the same bytes. Inside the determinism packages it
// flags:
//
//   - time.Now (wall clock leaking into output),
//   - any use of math/rand,
//   - a `range` over a map that feeds an encoder/writer directly, or
//     that accumulates into a slice never passed to a sort — map
//     iteration order is random per run.
//
// The collect-keys-then-sort idiom is recognized and allowed.
func DeterminismAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "determinism",
		Doc:  "codec and ordering packages must not consult wall clock, randomness, or unsorted map iteration",
		Run: func(pkg *Package, cfg *Config) []Diagnostic {
			if !inScope(cfg.DeterminismPkgs, pkg.Path) {
				return nil
			}
			var diags []Diagnostic
			for _, f := range pkg.Files {
				for _, imp := range f.Imports {
					path := strings.Trim(imp.Path.Value, `"`)
					if path == "math/rand" || path == "math/rand/v2" {
						diags = append(diags, Diagnostic{
							Pos:     pkg.Fset.Position(imp.Pos()),
							Rule:    "determinism",
							Message: "math/rand in a determinism package: seed-dependent output is not reproducible",
						})
					}
				}
				ast.Inspect(f, func(n ast.Node) bool {
					if call, ok := n.(*ast.CallExpr); ok {
						if name, ok := isPkgFunc(pkg.Info, call, "time", "Now"); ok {
							diags = append(diags, Diagnostic{
								Pos:     pkg.Fset.Position(call.Pos()),
								Rule:    "determinism",
								Message: fmt.Sprintf("time.%s in a determinism package: wall clock must not reach encoded output", name),
							})
						}
					}
					return true
				})
			}
			eachFuncDecl(pkg, func(fd *ast.FuncDecl) {
				diags = append(diags, mapRangeFindings(pkg, fd)...)
			})
			return diags
		},
	}
}

// mapRangeFindings flags map-range loops in fd whose iteration order
// can reach output: a body that calls a writer/encoder, or appends to
// an outer slice that no later sort call touches.
func mapRangeFindings(pkg *Package, fd *ast.FuncDecl) []Diagnostic {
	sorted := sortedExprs(pkg, fd)
	var diags []Diagnostic
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pkg.Info.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		if sink, what := mapRangeSink(pkg, rng, sorted); sink {
			diags = append(diags, Diagnostic{
				Pos:     pkg.Fset.Position(rng.Pos()),
				Rule:    "determinism",
				Message: fmt.Sprintf("range over map %s %s: map iteration order is random — collect and sort first", exprKey(rng.X), what),
			})
		}
		return true
	})
	return diags
}

// mapRangeSink decides whether the loop body leaks iteration order:
// directly (writer/encoder call) or via an append to an outer slice
// that is never sorted afterwards.
func mapRangeSink(pkg *Package, rng *ast.RangeStmt, sorted map[string]bool) (bool, string) {
	direct := false
	var unsortedAppend string
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
				if isOrderSink(sel.Sel.Name) {
					direct = true
				}
			} else if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
				if isOrderSink(id.Name) {
					direct = true
				}
			}
			if f := calleeFunc(pkg.Info, x); f != nil && f.Pkg() != nil && f.Pkg().Path() == "fmt" {
				if strings.HasPrefix(f.Name(), "Fprint") || strings.HasPrefix(f.Name(), "Print") {
					direct = true
				}
			}
		case *ast.AssignStmt:
			// s = append(s, ...) where s is declared outside the loop —
			// appending to a variable the loop itself declares (the
			// range value, a per-iteration local) carries no order out.
			if len(x.Rhs) != 1 {
				return true
			}
			call, ok := ast.Unparen(x.Rhs[0]).(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "append" {
				return true
			}
			if declaredWithin(pkg, x.Lhs[0], rng) {
				return true
			}
			key := exprKey(x.Lhs[0])
			if !sorted[key] {
				unsortedAppend = key
			}
		}
		return true
	})
	if direct {
		return true, "feeds a writer/encoder"
	}
	if unsortedAppend != "" {
		return true, fmt.Sprintf("accumulates into %q which is never sorted", unsortedAppend)
	}
	return false, ""
}

// isOrderSink matches method names whose call inside a map range means
// iteration order reached an output stream.
func isOrderSink(name string) bool {
	for _, p := range []string{"Write", "Encode", "Marshal", "Fprint", "Print"} {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// declaredWithin reports whether the root identifier of e is declared
// inside the range statement (its key/value variables or a body local).
func declaredWithin(pkg *Package, e ast.Expr, rng *ast.RangeStmt) bool {
	root := ast.Unparen(e)
	for {
		if sel, ok := root.(*ast.SelectorExpr); ok {
			root = ast.Unparen(sel.X)
			continue
		}
		if idx, ok := root.(*ast.IndexExpr); ok {
			root = ast.Unparen(idx.X)
			continue
		}
		break
	}
	id, ok := root.(*ast.Ident)
	if !ok {
		return false
	}
	obj := pkg.Info.Uses[id]
	if obj == nil {
		obj = pkg.Info.Defs[id]
	}
	return obj != nil && obj.Pos() >= rng.Pos() && obj.Pos() <= rng.End()
}

// sortedExprs collects expression keys passed to sort.*/slices.Sort*
// anywhere in fd — the "collected then sorted" set map ranges may
// safely append to.
func sortedExprs(pkg *Package, fd *ast.FuncDecl) map[string]bool {
	out := map[string]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		f := calleeFunc(pkg.Info, call)
		if f == nil || f.Pkg() == nil {
			return true
		}
		if p := f.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		if len(call.Args) == 0 {
			return true
		}
		// sort.Slice(s, less) / slices.Sort(s) / sort.Sort(byX(s)):
		// credit every identifier mentioned in the first argument.
		ast.Inspect(call.Args[0], func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok {
				out[id.Name] = true
			}
			if sel, ok := m.(*ast.SelectorExpr); ok {
				out[exprKey(sel)] = true
				return false
			}
			return true
		})
		return true
	})
	return out
}
