package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// NoallocAnalyzer enforces the //shamlint:noalloc contract on the
// documented hot-path functions (the zone-scale per-line pipeline:
// normalize, split, decode, probe). Inside an annotated function it
// flags constructs that force an allocation:
//
//   - string <-> []byte/[]rune conversions,
//   - calls into fmt,
//   - make/new and slice/map/pointer composite literals,
//   - closures (func literals),
//   - string concatenation,
//   - interface boxing: a concrete value passed to an interface
//     parameter at a call site.
//
// Allocations confined to the hit path (a match was found; the caller
// is about to do I/O anyway) carry //shamlint:allow noalloc <reason> —
// the annotation keeps them enumerated and reviewed. The dynamic twin
// of this rule is the AllocsPerRun gate driven from the same
// annotation list.
func NoallocAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "noalloc",
		Doc:  "//shamlint:noalloc functions must avoid allocation-forcing constructs",
		Run: func(pkg *Package, cfg *Config) []Diagnostic {
			var diags []Diagnostic
			for _, fd := range NoallocFuncs(pkg) {
				diags = append(diags, noallocFindings(pkg, fd)...)
			}
			return diags
		},
	}
}

func noallocFindings(pkg *Package, fd *ast.FuncDecl) []Diagnostic {
	var diags []Diagnostic
	report := func(pos token.Pos, format string, args ...any) {
		diags = append(diags, Diagnostic{
			Pos:     pkg.Fset.Position(pos),
			Rule:    "noalloc",
			Message: fmt.Sprintf(format, args...) + fmt.Sprintf(" in noalloc function %s", FuncDisplayName(fd)),
		})
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			report(x.Pos(), "closure allocates")
			return false // don't descend: the closure's own body is not the hot path
		case *ast.CompositeLit:
			tv, ok := pkg.Info.Types[x]
			if !ok {
				return true
			}
			switch tv.Type.Underlying().(type) {
			case *types.Slice, *types.Map:
				report(x.Pos(), "%s literal allocates", typeKind(tv.Type))
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
					report(x.Pos(), "address of composite literal escapes")
				}
			}
		case *ast.BinaryExpr:
			if x.Op == token.ADD {
				if tv, ok := pkg.Info.Types[x]; ok {
					if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						report(x.Pos(), "string concatenation allocates")
					}
				}
			}
		case *ast.CallExpr:
			diags = append(diags, noallocCall(pkg, fd, x)...)
		}
		return true
	})
	return diags
}

func noallocCall(pkg *Package, fd *ast.FuncDecl, call *ast.CallExpr) []Diagnostic {
	var diags []Diagnostic
	report := func(format string, args ...any) {
		diags = append(diags, Diagnostic{
			Pos:     pkg.Fset.Position(call.Pos()),
			Rule:    "noalloc",
			Message: fmt.Sprintf(format, args...) + fmt.Sprintf(" in noalloc function %s", FuncDisplayName(fd)),
		})
	}
	// Conversions between string and byte/rune slices copy.
	if target, ok := isConversion(pkg.Info, call); ok {
		if len(call.Args) == 1 {
			if tv, ok := pkg.Info.Types[call.Args[0]]; ok && stringSliceConversion(tv.Type, target) {
				report("%s -> %s conversion allocates", tv.Type, target)
			}
		}
		return diags
	}
	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make", "new":
				report("%s allocates", id.Name)
			}
			return diags
		}
	}
	f := calleeFunc(pkg.Info, call)
	if f != nil && f.Pkg() != nil && f.Pkg().Path() == "fmt" {
		report("fmt.%s allocates", f.Name())
		return diags
	}
	// Interface boxing: concrete argument to an interface parameter.
	sigTV, ok := pkg.Info.Types[call.Fun]
	if !ok {
		return diags
	}
	sig, ok := sigTV.Type.Underlying().(*types.Signature)
	if !ok {
		return diags
	}
	for i, arg := range call.Args {
		var param types.Type
		if sig.Variadic() && i >= sig.Params().Len()-1 {
			last := sig.Params().At(sig.Params().Len() - 1).Type()
			if call.Ellipsis != token.NoPos {
				continue // s... passes the slice through
			}
			param = last.(*types.Slice).Elem()
		} else if i < sig.Params().Len() {
			param = sig.Params().At(i).Type()
		} else {
			continue
		}
		if !types.IsInterface(param) {
			continue
		}
		tv, ok := pkg.Info.Types[arg]
		if !ok || tv.Type == nil {
			continue
		}
		if types.IsInterface(tv.Type) || isUntypedNil(tv.Type) {
			continue
		}
		// Pointers and other reference kinds box without copying the
		// pointee, but the interface header itself may still force the
		// value to escape; flag concrete non-pointer values only, the
		// unambiguous cases.
		switch tv.Type.Underlying().(type) {
		case *types.Pointer, *types.Chan, *types.Signature:
			continue
		}
		report("argument %s boxes into interface %s", exprKey(arg), param)
	}
	return diags
}

func stringSliceConversion(from, to types.Type) bool {
	return (isStringType(from) && isByteOrRuneSlice(to)) ||
		(isByteOrRuneSlice(from) && isStringType(to))
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

func isUntypedNil(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}

func typeKind(t types.Type) string {
	switch t.Underlying().(type) {
	case *types.Slice:
		return "slice"
	case *types.Map:
		return "map"
	default:
		return strings.TrimPrefix(t.String(), "*")
	}
}
