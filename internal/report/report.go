// Package report renders the experiment harness's output: aligned text
// tables for terminal output, paper-vs-measured comparison rows, and
// the EXPERIMENTS.md document that records every regenerated table and
// figure.
package report

import (
	"fmt"
	"io"
	"strings"
	"unicode/utf8"
)

// Table is a simple aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable starts a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends one row; values are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

func (t *Table) widths() []int {
	w := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		w[i] = utf8.RuneCountInString(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(w) && utf8.RuneCountInString(c) > w[i] {
				w[i] = utf8.RuneCountInString(c)
			}
		}
	}
	return w
}

// Write renders the table as aligned text.
func (t *Table) Write(w io.Writer) error {
	widths := t.widths()
	line := func(cells []string) string {
		var sb strings.Builder
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			if pad := widths[i] - utf8.RuneCountInString(c); pad > 0 && i < len(cells)-1 {
				sb.WriteString(strings.Repeat(" ", pad))
			}
		}
		return sb.String()
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title + "\n")
	}
	sb.WriteString(line(t.Headers) + "\n")
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", total-2) + "\n")
	for _, row := range t.Rows {
		sb.WriteString(line(row) + "\n")
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	t.Write(&sb)
	return sb.String()
}

// Markdown renders the table as a GitHub-flavoured markdown table.
func (t *Table) Markdown() string {
	var sb strings.Builder
	sb.WriteString("| " + strings.Join(t.Headers, " | ") + " |\n")
	sb.WriteString("|" + strings.Repeat("---|", len(t.Headers)) + "\n")
	for _, row := range t.Rows {
		sb.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	return sb.String()
}

// Comparison is one paper-vs-measured line in EXPERIMENTS.md.
type Comparison struct {
	Metric   string
	Paper    string
	Measured string
	Note     string
}

// Experiment is one regenerated table or figure.
type Experiment struct {
	ID          string // "Table 8", "Figure 9", ...
	Description string
	Bench       string // the go test -bench target that regenerates it
	Comparisons []Comparison
	Tables      []*Table // measured output tables, rendered verbatim
	Commentary  string
}

// Add appends a paper-vs-measured row.
func (e *Experiment) Add(metric, paper, measured, note string) {
	e.Comparisons = append(e.Comparisons, Comparison{metric, paper, measured, note})
}

// Addf formats the measured value.
func (e *Experiment) Addf(metric, paper, format string, args ...interface{}) {
	e.Add(metric, paper, fmt.Sprintf(format, args...), "")
}

// Document is the whole EXPERIMENTS.md.
type Document struct {
	Title       string
	Preamble    string
	Experiments []*Experiment
}

// Write renders the document as markdown.
func (d *Document) Write(w io.Writer) error {
	var sb strings.Builder
	sb.WriteString("# " + d.Title + "\n\n")
	if d.Preamble != "" {
		sb.WriteString(d.Preamble + "\n\n")
	}
	for _, e := range d.Experiments {
		sb.WriteString("## " + e.ID + " — " + e.Description + "\n\n")
		if e.Bench != "" {
			sb.WriteString("Regenerate with `go test -bench=" + e.Bench + " -benchtime=1x .` or `go run ./cmd/experiments -run " + strings.ToLower(strings.ReplaceAll(e.ID, " ", "")) + "`.\n\n")
		}
		if len(e.Comparisons) > 0 {
			sb.WriteString("| Metric | Paper | Measured | Note |\n|---|---|---|---|\n")
			for _, c := range e.Comparisons {
				sb.WriteString(fmt.Sprintf("| %s | %s | %s | %s |\n", c.Metric, c.Paper, c.Measured, c.Note))
			}
			sb.WriteString("\n")
		}
		for _, t := range e.Tables {
			sb.WriteString("```\n" + t.String() + "```\n\n")
		}
		if e.Commentary != "" {
			sb.WriteString(e.Commentary + "\n\n")
		}
	}
	_, err := io.WriteString(w, sb.String())
	return err
}
