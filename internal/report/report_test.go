package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tbl := NewTable("Demo", "Name", "Count")
	tbl.AddRow("short", 1)
	tbl.AddRow("much-longer-name", 22)
	out := tbl.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, two rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "Demo") {
		t.Errorf("title missing: %q", lines[0])
	}
	// The Count column must start at the same offset in both rows.
	idx1 := strings.Index(lines[3], "1")
	idx2 := strings.Index(lines[4], "22")
	if idx1 != idx2 {
		t.Errorf("columns misaligned (%d vs %d):\n%s", idx1, idx2, out)
	}
}

func TestTableFloatFormatting(t *testing.T) {
	tbl := NewTable("", "v")
	tbl.AddRow(3.14159)
	if !strings.Contains(tbl.String(), "3.14") || strings.Contains(tbl.String(), "3.14159") {
		t.Errorf("float formatting: %s", tbl.String())
	}
}

func TestTableUnicodeWidths(t *testing.T) {
	tbl := NewTable("", "domain", "n")
	tbl.AddRow("gmaıl.com", 1)
	tbl.AddRow("plain.com", 2)
	out := tbl.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Both data rows must have the count at the same rune offset.
	r1 := []rune(lines[2])
	r2 := []rune(lines[3])
	if len(r1) != len(r2) {
		t.Errorf("unicode row widths differ:\n%s", out)
	}
}

func TestMarkdown(t *testing.T) {
	tbl := NewTable("", "a", "b")
	tbl.AddRow(1, 2)
	md := tbl.Markdown()
	if !strings.Contains(md, "| a | b |") || !strings.Contains(md, "| 1 | 2 |") {
		t.Errorf("markdown = %q", md)
	}
}

func TestDocumentWrite(t *testing.T) {
	doc := &Document{Title: "Experiments", Preamble: "intro"}
	e := &Experiment{ID: "Table 8", Description: "detection", Bench: "BenchmarkTable08"}
	e.Add("UC", "436", "430", "close")
	e.Addf("union", "3,280", "%d", 3279)
	tbl := NewTable("", "db", "n")
	tbl.AddRow("UC", 430)
	e.Tables = append(e.Tables, tbl)
	e.Commentary = "matches shape"
	doc.Experiments = append(doc.Experiments, e)

	var buf bytes.Buffer
	if err := doc.Write(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# Experiments", "## Table 8 — detection", "| UC | 436 | 430 | close |",
		"| union | 3,280 | 3279 |", "BenchmarkTable08", "matches shape", "```",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("document missing %q:\n%s", want, out)
		}
	}
}
