package fontgen

import (
	"testing"

	"repro/internal/bitmap"
	"repro/internal/hexfont"
)

func render(t *testing.T, f *hexfont.Font, r rune) *bitmap.Image {
	t.Helper()
	g, ok := f.Glyph(r)
	if !ok {
		t.Fatalf("font does not cover %#U", r)
	}
	return g.Rasterize()
}

func TestBaseLetterformsPairwiseDistinct(t *testing.T) {
	// Distinct base letterforms must differ by more than the SimChar
	// threshold, otherwise accidental homoglyphs would pollute the curated
	// structure (e.g. 'c' vs 'o').
	runes := BaseRunes()
	imgs := make(map[rune]*bitmap.Image, len(runes))
	for _, r := range runes {
		imgs[r] = baseGlyph(r).Rasterize()
	}
	for i, a := range runes {
		for _, b := range runes[i+1:] {
			if d := bitmap.Delta(imgs[a], imgs[b]); d <= 6 {
				t.Errorf("base letterforms %q and %q too close: Δ=%d\n%s",
					a, b, d, bitmap.SideBySide(imgs[a], imgs[b]))
			}
		}
	}
}

func TestBaseLetterformsNotSparse(t *testing.T) {
	for _, r := range BaseRunes() {
		if r == '-' {
			continue // the hyphen is legitimately sparse (Figure 7 class)
		}
		if im := baseGlyph(r).Rasterize(); im.IsSparse(10) {
			t.Errorf("letterform %q is sparse: %d px", r, im.PixelCount())
		}
	}
}

func TestMarksDoNotOverlapBases(t *testing.T) {
	// Every curated diacritic must cost exactly its mark's pixel count.
	f := Generate(Options{LatinOnly: true})
	for _, d := range diacritics {
		base := render(t, f, d.Base)
		marked := render(t, f, d.CP)
		if got, want := bitmap.Delta(base, marked), d.Mark.Cost(); got != want {
			t.Errorf("Δ(%#U, %q) = %d, want %d (%s overlaps base)",
				d.CP, d.Base, got, want, d.Mark)
		}
	}
}

func TestTwinsAreIdentical(t *testing.T) {
	f := Full()
	for _, tw := range twins {
		a := render(t, f, tw.CP)
		b := render(t, f, tw.Base)
		if !bitmap.Equal(a, b) {
			t.Errorf("twin %#U differs from base %q: Δ=%d", tw.CP, tw.Base, bitmap.Delta(a, b))
		}
	}
}

func TestVariantsHaveExactDelta(t *testing.T) {
	f := Full()
	for _, v := range variants {
		a := render(t, f, v.CP)
		b := render(t, f, v.Base)
		if got := bitmap.Delta(a, b); got != len(v.Flips) {
			t.Errorf("variant %#U: Δ=%d, want %d", v.CP, got, len(v.Flips))
		}
	}
}

func TestSpecCodePointsUnique(t *testing.T) {
	seen := map[rune]string{}
	record := func(cp rune, kind string) {
		if prev, dup := seen[cp]; dup {
			t.Errorf("%#U appears in both %s and %s", cp, prev, kind)
		}
		seen[cp] = kind
	}
	for _, d := range diacritics {
		record(d.CP, "diacritics")
	}
	for _, tw := range twins {
		record(tw.CP, "twins")
	}
	for _, v := range variants {
		record(v.CP, "variants")
	}
}

func TestFigure6LadderForE(t *testing.T) {
	// The paper's Figure 6 shows 'e' homoglyph candidates at Δ = 0..6.
	// Verify every rung is populated by some curated character.
	f := Full()
	e := render(t, f, 'e')
	rungs := map[int]rune{}
	check := func(cp rune) {
		if g, ok := f.Glyph(cp); ok {
			d := bitmap.Delta(e, g.Rasterize())
			if _, have := rungs[d]; !have {
				rungs[d] = cp
			}
		}
	}
	check(0x0435) // е twin: Δ=0
	for _, d := range diacritics {
		if d.Base == 'e' {
			check(d.CP)
		}
	}
	for _, v := range variants {
		if v.Base == 'e' {
			check(v.CP)
		}
	}
	for delta := 0; delta <= 6; delta++ {
		if _, ok := rungs[delta]; !ok {
			t.Errorf("no 'e' candidate at Δ=%d (Figure 6 rung missing)", delta)
		}
	}
}

func TestHangulComposition(t *testing.T) {
	f := Full()
	// 가 (first syllable): lead 0, vowel 0, tail 0.
	l, v, tl, ok := DecomposeHangul(0xAC00)
	if !ok || l != 0 || v != 0 || tl != 0 {
		t.Fatalf("DecomposeHangul(AC00) = %d,%d,%d,%v", l, v, tl, ok)
	}
	if _, _, _, ok := DecomposeHangul('a'); ok {
		t.Fatal("'a' must not decompose")
	}
	// Two syllables differing only in a paired tail have Δ=3.
	// Tail pair (1,2): syllables AC01 and AC02.
	a := render(t, f, 0xAC01)
	b := render(t, f, 0xAC02)
	if d := bitmap.Delta(a, b); d != 3 {
		t.Errorf("paired-tail syllables Δ=%d, want 3", d)
	}
	// Syllables differing in vowel must be far apart.
	c := render(t, f, 0xAC00)
	d2 := render(t, f, 0xAC00+28) // next vowel, same lead, no tail
	if d := bitmap.Delta(c, d2); d <= 4 {
		t.Errorf("different-vowel syllables too close: Δ=%d", d)
	}
}

func TestHangulPairedTailShare(t *testing.T) {
	// 22 of 27 real tails are paired, so the fraction of syllables with a
	// Δ≤4 partner should be 22/28 including the no-tail case being
	// unpaired... precisely 19·21·22 syllables have a partner.
	f := Full()
	withPartner := 0
	// Sample one lead/vowel combination and count paired tails.
	for tail := 1; tail < tailCount; tail++ {
		s := 0*588 + 0*28 + tail
		im := render(t, f, rune(HangulBase+s))
		for other := 1; other < tailCount; other++ {
			if other == tail {
				continue
			}
			o := render(t, f, rune(HangulBase+0*588+0*28+other))
			if bitmap.Delta(im, o) <= 4 {
				withPartner++
				break
			}
		}
	}
	if withPartner != 2*twinTailPairs {
		t.Errorf("tails with partner = %d, want %d", withPartner, 2*twinTailPairs)
	}
}

func TestCJKDerivedPairs(t *testing.T) {
	f := Full()
	// Offset 1 mod 107 pairs with its predecessor at Δ=3.
	a := render(t, f, cjkBase)
	b := render(t, f, cjkBase+1)
	if d := bitmap.Delta(a, b); d != 3 {
		t.Errorf("CJK pair Δ=%d, want 3", d)
	}
	// Non-pair neighbours are far apart.
	c := render(t, f, cjkBase+2)
	d2 := render(t, f, cjkBase+3)
	if d := bitmap.Delta(c, d2); d <= 4 {
		t.Errorf("unrelated CJK glyphs too close: Δ=%d", d)
	}
}

func TestCuratedCrossScriptPairs(t *testing.T) {
	f := Full()
	cases := []struct {
		a, b rune
		want int
	}{
		{0x5DE5, 0x30A8, 0}, // 工 = エ (paper §2.2)
		{0x4E8C, 0x30CB, 0}, // 二 = ニ
		{0x573C, 0x91CC, 2}, // Fig. 5 pair
		{0x0B33, 0x0B32, 3}, // Oriya Fig. 5 pair
	}
	for _, c := range cases {
		a := render(t, f, c.a)
		b := render(t, f, c.b)
		if d := bitmap.Delta(a, b); d != c.want {
			t.Errorf("Δ(%#U, %#U) = %d, want %d", c.a, c.b, d, c.want)
		}
	}
}

func TestArabicRasmStructure(t *testing.T) {
	f := Full()
	// ب (0628, 1 dot below) vs ت (062A, 2 dots above): same rasm,
	// Δ = 1 + 2 = 3.
	beh := render(t, f, 0x0628)
	teh := render(t, f, 0x062A)
	if d := bitmap.Delta(beh, teh); d != 3 {
		t.Errorf("Δ(beh, teh) = %d, want 3", d)
	}
	// ت vs ث differ by one dot.
	theh := render(t, f, 0x062B)
	if d := bitmap.Delta(teh, theh); d != 1 {
		t.Errorf("Δ(teh, theh) = %d, want 1", d)
	}
	// Different rasm families are far apart.
	hah := render(t, f, 0x062D)
	if d := bitmap.Delta(beh, hah); d <= 4 {
		t.Errorf("different rasm too close: Δ=%d", d)
	}
	// ك and ک are exact twins.
	if d := bitmap.Delta(render(t, f, 0x0643), render(t, f, 0x06A9)); d != 0 {
		t.Errorf("kaf/keheh Δ=%d, want 0", d)
	}
}

func TestCombiningMarksAreSparse(t *testing.T) {
	f := Full()
	for cp := rune(0x0300); cp <= 0x030F; cp++ {
		if im := render(t, f, cp); !im.IsSparse(10) {
			t.Errorf("combining mark %#U is not sparse (%d px)", cp, im.PixelCount())
		}
	}
}

func TestFullFontCoverage(t *testing.T) {
	f := Full()
	// The paper's Unifont12 covers 52,457 IDNA code points; the synthetic
	// font must land in the same order of magnitude.
	if n := f.Len(); n < 38000 || n > 60000 {
		t.Fatalf("font covers %d glyphs, want ~40k-55k", n)
	}
	for _, r := range []rune{'a', 'z', '0', 0x00E9, 0x0430, 0x4E00, 0x9FFF, 0x3400, 0xAC00, 0xD7A3, 0x1400, 0xA500, 0x0628, 0x30A8} {
		if !f.Covers(r) {
			t.Errorf("font must cover %#U", r)
		}
	}
}

func TestFullIsCached(t *testing.T) {
	if Full() != Full() {
		t.Fatal("Full() must return the cached font")
	}
}

func TestLatinOnlyOption(t *testing.T) {
	f := Generate(Options{LatinOnly: true})
	if f.Covers(0x4E00) {
		t.Fatal("LatinOnly font must not cover CJK")
	}
	if !f.Covers('a') || !f.Covers(0x00E9) {
		t.Fatal("LatinOnly font must cover Latin")
	}
}

func TestSkipOptions(t *testing.T) {
	f := Generate(Options{SkipCJK: true, SkipHangul: true})
	if f.Covers(0x4E00) || f.Covers(0xAC00) {
		t.Fatal("skip options not honoured")
	}
	if !f.Covers(0x0430) || !f.Covers(0x1400) {
		t.Fatal("skip options must keep other scripts")
	}
}

func TestTwinOfAndDiacriticsOf(t *testing.T) {
	if base, ok := TwinOf(0x043E); !ok || base != 'o' {
		t.Errorf("TwinOf(о) = %q, %v", base, ok)
	}
	if _, ok := TwinOf('a'); ok {
		t.Error("TwinOf(a) should be false")
	}
	ds := DiacriticsOf('o')
	if len(ds) < 5 {
		t.Errorf("DiacriticsOf(o) = %d entries, want several", len(ds))
	}
}

func TestMarkMetadata(t *testing.T) {
	if MarkAcute.Cost() != 3 || MarkDot.Cost() != 1 {
		t.Fatal("mark costs wrong")
	}
	if !MarkMacron.WithinThreshold(4) || MarkCircumflex.WithinThreshold(4) {
		t.Fatal("WithinThreshold wrong")
	}
	if MarkAcute.String() != "acute" || Mark(200).String() != "unknown" {
		t.Fatal("mark names wrong")
	}
}

func BenchmarkGenerateLatinOnly(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Generate(Options{LatinOnly: true})
	}
}

func BenchmarkGenerateMid(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Generate(Options{SkipCJK: true, SkipHangul: true})
	}
}
