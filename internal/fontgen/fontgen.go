// Package fontgen synthesizes the deterministic Unifont-format bitmap font
// the reproduction uses in place of GNU Unifont (see DESIGN.md §1). The
// font encodes real homoglyph structure — cross-script twins, cheap
// diacritics, jamo-composed Hangul, stroke-variant ideographs — so that the
// SimChar pipeline, run unchanged over it, discovers the same shape of
// homoglyph database the paper reports.
package fontgen

import (
	"sync"

	"repro/internal/hexfont"
	"repro/internal/stats"
)

// Options tunes how much of the Unicode space the generated font covers.
type Options struct {
	// LatinOnly restricts the font to the hand-drawn letterforms plus the
	// curated diacritics/twins/variants — a small font for fast tests.
	LatinOnly bool
	// SkipCJK drops the CJK Unified Ideographs and Extension A (~27.5k
	// glyphs), and SkipHangul the 11,172 composed syllables. The mid-size
	// configurations keep benches quick while exercising every generator.
	SkipCJK    bool
	SkipHangul bool
	// StyleSeed perturbs the procedural letterforms, producing a
	// distinct font "style" (the paper's Section 7.1 future work:
	// running SimChar over multiple fonts). Zero is the default style.
	// Curated structure (diacritics, twins, stroke variants) is
	// style-invariant, as it is across real fonts; only the
	// procedurally drawn script bodies change.
	StyleSeed uint64
}

// Generate builds the synthetic font. Later stages override earlier ones:
// procedural script fills first, then composed Hangul and CJK, then the
// curated diacritics, twins, variants and derived near-pairs.
func Generate(opt Options) *hexfont.Font {
	f := hexfont.New()
	// 1. Hand-drawn ASCII letterforms.
	for _, r := range BaseRunes() {
		f.SetGlyph(r, baseGlyph(r))
	}
	if !opt.LatinOnly {
		// 2. Procedural script blocks.
		for _, pr := range proceduralRanges {
			for cp := pr.lo; cp <= pr.hi; cp++ {
				seed := scriptSeed(pr.family, cp) ^ (opt.StyleSeed * 0x9E3779B97F4A7C15)
				f.SetGlyph(cp, strokeGlyph(pr.width, seed, pr.body, pr.target))
			}
		}
		// 3. Within-block derived near-pairs for Canadian Aboriginal
		// syllabics and Vai (paper Table 4 rows 3 and 4).
		deriveInRange(f, 0x1400, 0x167F, 7, []int{1, 4}, opt.StyleSeed)
		deriveInRange(f, 0xA500, 0xA63F, 5, []int{1}, opt.StyleSeed)
		// 4. Composed and generated large blocks.
		if !opt.SkipCJK {
			generateCJK(f)
		}
		if !opt.SkipHangul {
			generateHangul(f)
		}
		generateArabic(f)
		generateCombining(f)
	}
	// 5. Curated Latin-centric structure.
	for _, d := range diacritics {
		f.SetGlyph(d.CP, applyMark(baseGlyph(d.Base), d.Mark))
	}
	for _, tw := range twins {
		f.SetGlyph(tw.CP, baseGlyph(tw.Base))
	}
	for _, v := range variants {
		g := baseGlyph(v.Base)
		for _, p := range v.Flips {
			g.Flip(p[0], p[1])
		}
		f.SetGlyph(v.CP, g)
	}
	if !opt.LatinOnly {
		// 6. Curated cross- and within-script near-twins.
		for _, dp := range curatedDerived {
			applyDerived(f, dp)
		}
		for _, dp := range curatedFullDerived {
			applyDerived(f, dp)
		}
	}
	return f
}

// deriveInRange turns code points at the given offsets (mod stride)
// into small variants of their predecessor. The marker stroke costs 3
// pixels in the default style; other styles render it with 2–5 pixels
// per character, so whether a pair lands within the θ=4 cutoff is
// font-dependent — the cross-font variability the paper's Section 7.1
// anticipates.
func deriveInRange(f *hexfont.Font, lo, hi rune, stride int, offsets []int, style uint64) {
	offSet := make(map[int]bool, len(offsets))
	for _, o := range offsets {
		offSet[o] = true
	}
	marker := [][2]int{{14, 2}, {14, 3}, {15, 3}, {15, 2}, {13, 2}}
	for cp := lo; cp <= hi; cp++ {
		if !offSet[int(cp-lo)%stride] {
			continue
		}
		prev, ok := f.Glyph(cp - 1)
		if !ok {
			continue
		}
		n := 3
		if style != 0 {
			h := stats.Mix(uint64(cp) ^ style*0x9E3779B97F4A7C15)
			n = 2 + int(h%4)
			// Some styles draw the variant off a different neighbour,
			// creating pairs the default style does not have at all.
			if h&0x10 != 0 {
				if alt, ok := f.Glyph(cp - 2); ok {
					prev = alt
				}
			}
		}
		g := prev.Clone()
		for _, p := range marker[:n] {
			g.Flip(p[0], p[1])
		}
		f.SetGlyph(cp, g)
	}
}

// applyDerived renders dp.CP as dp.From with the pair's flips (nil flips
// mean an exact twin).
func applyDerived(f *hexfont.Font, dp derivedPair) {
	from, ok := f.Glyph(dp.From)
	if !ok {
		return
	}
	g := from.Clone()
	for _, p := range dp.Flips {
		g.Flip(p[0], p[1])
	}
	f.SetGlyph(dp.CP, g)
}

// generateCombining renders the Combining Diacritical Marks block
// (U+0300..U+036F) as bare marks. They are deliberately sparse: the
// paper's Step III eliminates them from SimChar (Figure 7), while the UC
// confusables database still lists them (Table 4).
func generateCombining(f *hexfont.Font) {
	baseMarks := []Mark{
		MarkGrave, MarkAcute, MarkCircumflex, MarkTilde, MarkMacron,
		MarkBreve, MarkDot, MarkDiaeresis, MarkHook, MarkRing,
	}
	for cp := rune(0x0300); cp <= 0x036F; cp++ {
		g := &hexfont.Glyph{Width: 8}
		m := baseMarks[int(cp-0x0300)%len(baseMarks)]
		for _, p := range markPixels[m] {
			g.Set(p[0], p[1])
		}
		// Shift successive copies of the same mark down a row so the 112
		// marks are distinct glyphs.
		shift := int(cp-0x0300) / len(baseMarks)
		if shift > 0 {
			sh := &hexfont.Glyph{Width: 8}
			for i := 0; i < hexfont.GlyphHeight; i++ {
				for j := 0; j < 8; j++ {
					if g.At(i, j) && i+shift < hexfont.GlyphHeight {
						sh.Set(i+shift, j)
					}
				}
			}
			g = sh
		}
		f.SetGlyph(cp, g)
	}
}

var (
	fullOnce sync.Once
	fullFont *hexfont.Font
)

// Full returns the complete synthetic font, built once and cached
// (≈42k glyphs). Callers must treat it as read-only.
func Full() *hexfont.Font {
	fullOnce.Do(func() { fullFont = Generate(Options{}) })
	return fullFont
}

// TwinOf returns the curated base letter a code point was rendered
// identical to, if any — useful to tests and the Figure 12 warning demo.
func TwinOf(cp rune) (rune, bool) {
	for _, tw := range twins {
		if tw.CP == cp {
			return tw.Base, true
		}
	}
	return 0, false
}

// DiacriticsOf returns the curated diacritic entries whose base is r.
func DiacriticsOf(r rune) []diacritic {
	var out []diacritic
	for _, d := range diacritics {
		if d.Base == r {
			out = append(out, d)
		}
	}
	return out
}

// Diacritic describes one curated marked letter (exported view).
type Diacritic = diacritic
