package fontgen

import "repro/internal/hexfont"

// Mark is a diacritical mark drawn onto a base letterform. Marks above sit
// in rows 0..2 (clear of ascenders, which start at row 3); marks below sit
// in rows 14..15. Each mark has a fixed pixel cost, which — because the
// rasterizer embeds glyphs 1:1 — is exactly the Δ the marked letter scores
// against its base. Marks costing ≤ 4 pixels land inside the SimChar
// threshold; heavier marks populate the Δ=5..8 rungs of Figure 9.
type Mark uint8

const (
	MarkNone        Mark = iota
	MarkDot              // 1 px
	MarkDotBelow         // 1 px
	MarkGrave            // 2 px
	MarkDiaeresis        // 2 px
	MarkAcute            // 3 px
	MarkOgonek           // 3 px
	MarkCedilla          // 3 px
	MarkHorn             // 3 px
	MarkMacron           // 4 px
	MarkBreve            // 4 px
	MarkBar              // 4 px (stroke through, protruding pixels only)
	MarkSlash            // 4 px (ø-style corner slash)
	MarkCircumflex       // 5 px
	MarkCaron            // 5 px
	MarkHook             // 5 px
	MarkRing             // 6 px
	MarkTilde            // 6 px
	MarkDoubleAcute      // 6 px
)

// markPixels lists the (row, col) pixels of each mark.
var markPixels = map[Mark][][2]int{
	MarkDot:         {{1, 3}},
	MarkDotBelow:    {{15, 3}},
	MarkGrave:       {{0, 2}, {1, 3}},
	MarkDiaeresis:   {{1, 2}, {1, 5}},
	MarkAcute:       {{0, 5}, {1, 4}, {2, 3}},
	MarkOgonek:      {{14, 4}, {15, 5}, {15, 6}},
	MarkCedilla:     {{14, 3}, {15, 2}, {15, 3}},
	MarkHorn:        {{5, 6}, {6, 6}, {6, 7}},
	MarkMacron:      {{1, 2}, {1, 3}, {1, 4}, {1, 5}},
	MarkBreve:       {{0, 2}, {1, 3}, {1, 4}, {0, 5}},
	MarkBar:         {{4, 6}, {4, 7}, {5, 6}, {5, 7}},
	MarkSlash:       {{6, 6}, {6, 7}, {14, 0}, {14, 1}},
	MarkCircumflex:  {{2, 1}, {1, 2}, {0, 3}, {1, 4}, {2, 5}},
	MarkCaron:       {{0, 1}, {1, 2}, {2, 3}, {1, 4}, {0, 5}},
	MarkHook:        {{0, 2}, {0, 3}, {0, 4}, {1, 5}, {2, 4}},
	MarkRing:        {{0, 3}, {0, 4}, {1, 2}, {1, 5}, {2, 3}, {2, 4}},
	MarkTilde:       {{1, 1}, {0, 2}, {0, 3}, {1, 4}, {0, 5}, {1, 6}},
	MarkDoubleAcute: {{0, 3}, {1, 2}, {2, 1}, {0, 6}, {1, 5}, {2, 4}},
}

// Cost returns the pixel cost of the mark, which equals the Δ it induces.
func (m Mark) Cost() int { return len(markPixels[m]) }

// WithinThreshold reports whether a letter carrying this mark stays within
// the SimChar Δ≤4 threshold of its base.
func (m Mark) WithinThreshold(threshold int) bool { return m.Cost() <= threshold }

// String names the mark.
func (m Mark) String() string {
	names := map[Mark]string{
		MarkNone: "none", MarkDot: "dot above", MarkDotBelow: "dot below",
		MarkGrave: "grave", MarkDiaeresis: "diaeresis", MarkAcute: "acute",
		MarkOgonek: "ogonek", MarkCedilla: "cedilla", MarkHorn: "horn",
		MarkMacron: "macron", MarkBreve: "breve", MarkBar: "bar",
		MarkSlash: "slash", MarkCircumflex: "circumflex", MarkCaron: "caron",
		MarkHook: "hook above", MarkRing: "ring above", MarkTilde: "tilde",
		MarkDoubleAcute: "double acute",
	}
	if s, ok := names[m]; ok {
		return s
	}
	return "unknown"
}

// applyMark draws the mark onto a copy of the glyph. Mark pixels are
// guaranteed by construction not to overlap the base letterforms, so the
// resulting Δ equals the mark's cost; the tests assert this.
func applyMark(g *hexfont.Glyph, m Mark) *hexfont.Glyph {
	out := g.Clone()
	for _, p := range markPixels[m] {
		out.Set(p[0], p[1])
	}
	return out
}
