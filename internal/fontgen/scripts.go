package fontgen

import (
	"repro/internal/hexfont"
	"repro/internal/stats"
)

// Procedural glyph synthesis for the script blocks where individual
// letterforms do not matter to the homograph analysis: each code point gets
// a deterministic pseudo-random arrangement of strokes dense enough to pass
// the sparse filter and — with overwhelming probability — far from every
// other glyph, so homoglyph pairs only arise where the spec says so.

// region is an inclusive pixel rectangle within the 16×16 native canvas.
type region struct {
	r0, c0, r1, c1 int
}

func (rg region) cells() [][2]int {
	var out [][2]int
	for i := rg.r0; i <= rg.r1; i++ {
		for j := rg.c0; j <= rg.c1; j++ {
			out = append(out, [2]int{i, j})
		}
	}
	return out
}

// strokeGlyph draws count pseudo-random 2-3 pixel strokes seeded by seed
// into the region, on a glyph of the given width. Density is high enough
// (≥ 12 px) to clear the sparse filter.
func strokeGlyph(width int, seed uint64, rg region, target int) *hexfont.Glyph {
	g := &hexfont.Glyph{Width: width}
	rng := stats.NewRNG(seed)
	cells := rg.cells()
	if target > len(cells) {
		target = len(cells)
	}
	placed := 0
	for placed < target {
		c := cells[rng.Intn(len(cells))]
		i, j := c[0], c[1]
		if !g.At(i, j) {
			g.Set(i, j)
			placed++
		}
		// Extend into a short stroke half the time, for a hand-drawn feel.
		if rng.Intn(2) == 0 {
			di, dj := 0, 1
			if rng.Intn(2) == 0 {
				di, dj = 1, 0
			}
			ni, nj := i+di, j+dj
			if ni <= rg.r1 && nj <= rg.c1 && !g.At(ni, nj) && placed < target {
				g.Set(ni, nj)
				placed++
			}
		}
	}
	return g
}

// scriptSeed derives a stable seed for a code point within a generator
// family, keeping families independent of one another.
func scriptSeed(family uint64, cp rune) uint64 {
	return stats.Mix(family*0x1000000 + uint64(cp))
}

// Generator family identifiers (arbitrary but fixed).
const (
	famGreek uint64 = iota + 1
	famCyrillic
	famArmenian
	famHebrew
	famArabic
	famThai
	famLao
	famKana
	famCA
	famVai
	famYi
	famGeorgian
	famEthiopic
	famCJK
	famBrahmic
	famCherokeeSup
	famMyanmar
)

// halfBody is the canvas region procedural halfwidth letters draw into.
var halfBody = region{6, 0, 13, 7}

// fullBody is the canvas region fullwidth glyphs draw into.
var fullBody = region{2, 2, 13, 13}

// proceduralRanges lists the block ranges filled with stroke glyphs when
// the code point is not claimed by the curated spec. Width selects half- or
// fullwidth rendering; target is the black-pixel budget.
var proceduralRanges = []struct {
	lo, hi rune
	family uint64
	width  int
	body   region
	target int
}{
	{0x03B1, 0x03C9, famGreek, 8, halfBody, 18},       // Greek lowercase
	{0x0430, 0x045F, famCyrillic, 8, halfBody, 18},    // Cyrillic lowercase + extensions
	{0x0460, 0x04FF, famCyrillic, 8, halfBody, 20},    // historic Cyrillic
	{0x0500, 0x052F, famCyrillic, 8, halfBody, 20},    // Cyrillic Supplement
	{0x0561, 0x0586, famArmenian, 8, halfBody, 18},    // Armenian lowercase
	{0x05D0, 0x05EA, famHebrew, 8, halfBody, 16},      // Hebrew letters
	{0x0E01, 0x0E2E, famThai, 8, halfBody, 17},        // Thai consonants
	{0x0E81, 0x0EAE, famLao, 8, halfBody, 17},         // Lao consonants
	{0x10D0, 0x10FA, famGeorgian, 8, halfBody, 18},    // Georgian mkhedruli
	{0x1200, 0x12BF, famEthiopic, 8, halfBody, 19},    // Ethiopic subset
	{0x1000, 0x102A, famMyanmar, 8, halfBody, 18},     // Myanmar consonants
	{0xAB70, 0xABBF, famCherokeeSup, 8, halfBody, 18}, // Cherokee small letters
	{0x0905, 0x0939, famBrahmic, 8, halfBody, 19},     // Devanagari
	{0x0995, 0x09B9, famBrahmic, 8, halfBody, 19},     // Bengali subset
	{0x0B85, 0x0BB9, famBrahmic, 8, halfBody, 19},     // Tamil subset
	{0x0B15, 0x0B39, famBrahmic, 8, halfBody, 19},     // Oriya subset
	{0x3041, 0x3096, famKana, 16, fullBody, 24},       // Hiragana
	{0x30A1, 0x30FA, famKana, 16, fullBody, 24},       // Katakana
	{0x1400, 0x167F, famCA, 8, halfBody, 15},          // Canadian Aboriginal syllabics
	{0xA500, 0xA63F, famVai, 8, halfBody, 16},         // Vai
	{0xA000, 0xA48C, famYi, 16, fullBody, 22},         // Yi syllables
}

// derivedPair renders CP as a copy of From with the listed pixel flips —
// the mechanism behind within-script near-twins (paper Figure 5: Oriya
// ଲ/ଳ, CJK 里/圼, Katakana エ / CJK 工).
type derivedPair struct {
	CP    rune
	From  rune
	Flips [][2]int
}

// curatedDerived lists hand-picked near-twins, including the exact example
// pairs the paper shows in Figures 2, 5 and 12.
var curatedDerived = []derivedPair{
	{0x0B33, 0x0B32, [][2]int{{13, 6}, {13, 7}, {12, 7}}}, // Oriya la/lla (Fig. 5)
	{0x05DF, 0x05D5, [][2]int{{14, 4}, {15, 4}}},          // Hebrew final nun = vav + descender
	{0x05E8, 0x05D3, [][2]int{{6, 0}, {6, 1}}},            // Hebrew resh ≈ dalet
	{0x0E14, 0x0E15, [][2]int{{6, 3}, {7, 3}}},            // Thai do dek ≈ to tao
	{0x0E1A, 0x0E1B, [][2]int{{2, 5}, {3, 5}}},            // Thai bo baimai ≈ po pla
}

// curatedFullDerived are fullwidth near-twins: famous CJK/Kana confusables.
var curatedFullDerived = []derivedPair{
	{0x573C, 0x91CC, [][2]int{{13, 4}, {13, 5}}}, // 圼 ≈ 里 (Fig. 5)
	{0x4E8C, 0x30CB, nil},                        // 二 = ニ twin
	{0x5DE5, 0x30A8, nil},                        // 工 = エ twin (paper §2.2)
	{0x529B, 0x30AB, [][2]int{{3, 12}, {4, 12}}}, // 力 ≈ カ
	{0x53E3, 0x30ED, nil},                        // 口 = ロ twin
	{0x535C, 0x30C8, [][2]int{{8, 9}}},           // 卜 ≈ ト
	{0x30FC, 0x4E00, [][2]int{{8, 2}, {8, 13}}},  // ー prolonged sound mark ≈ 一
}
