package fontgen

// This file is the curated homoglyph specification: which code points are
// rendered as marked, identical, or slightly perturbed versions of the
// ASCII letterforms. It encodes the real-world structure the paper's
// SimChar discovers — Latin/Cyrillic/Greek/Armenian twins, accented
// variants whose diacritics cost only a few pixels, and the famous digit
// lookalikes ('໐' for 'o' in Figure 12).

// diacritic renders code point CP as Base plus Mark.
type diacritic struct {
	CP   rune
	Base rune
	Mark Mark
}

// diacritics lists composed Latin letters (Latin-1 Supplement, Extended-A,
// Extended-B/IPA, Extended Additional) with the mark that distinguishes
// them from their base letter. Marks with cost ≤ 4 put the letter inside
// SimChar; heavier marks provide the Δ=5..8 ladder of Figures 6 and 9.
var diacritics = []diacritic{
	// Latin-1 Supplement.
	{0x00E0, 'a', MarkGrave}, {0x00E1, 'a', MarkAcute}, {0x00E2, 'a', MarkCircumflex},
	{0x00E3, 'a', MarkTilde}, {0x00E4, 'a', MarkDiaeresis}, {0x00E5, 'a', MarkRing},
	{0x00E7, 'c', MarkCedilla},
	{0x00E8, 'e', MarkGrave}, {0x00E9, 'e', MarkAcute}, {0x00EA, 'e', MarkCircumflex},
	{0x00EB, 'e', MarkDiaeresis},
	{0x00EC, 'i', MarkGrave}, {0x00ED, 'i', MarkAcute}, {0x00EE, 'i', MarkCircumflex},
	{0x00EF, 'i', MarkDiaeresis},
	{0x00F1, 'n', MarkTilde},
	{0x00F2, 'o', MarkGrave}, {0x00F3, 'o', MarkAcute}, {0x00F4, 'o', MarkCircumflex},
	{0x00F5, 'o', MarkTilde}, {0x00F6, 'o', MarkDiaeresis}, {0x00F8, 'o', MarkSlash},
	{0x00F9, 'u', MarkGrave}, {0x00FA, 'u', MarkAcute}, {0x00FB, 'u', MarkCircumflex},
	{0x00FC, 'u', MarkDiaeresis},
	{0x00FD, 'y', MarkAcute}, {0x00FF, 'y', MarkDiaeresis},
	// Latin Extended-A (lowercase members).
	{0x0101, 'a', MarkMacron}, {0x0103, 'a', MarkBreve}, {0x0105, 'a', MarkOgonek},
	{0x0107, 'c', MarkAcute}, {0x0109, 'c', MarkCircumflex}, {0x010B, 'c', MarkDot},
	{0x010D, 'c', MarkCaron},
	{0x010F, 'd', MarkCaron}, {0x0111, 'd', MarkBar},
	{0x0113, 'e', MarkMacron}, {0x0115, 'e', MarkBreve}, {0x0117, 'e', MarkDot},
	{0x0119, 'e', MarkOgonek}, {0x011B, 'e', MarkCaron},
	{0x011D, 'g', MarkCircumflex}, {0x011F, 'g', MarkBreve}, {0x0121, 'g', MarkDot},
	{0x0123, 'g', MarkGrave}, // real ģ uses a turned comma above; grave keeps Δ small
	{0x0125, 'h', MarkCircumflex}, {0x0127, 'h', MarkBar},
	{0x0129, 'i', MarkTilde}, {0x012B, 'i', MarkMacron}, {0x012D, 'i', MarkBreve},
	{0x012F, 'i', MarkOgonek},
	{0x0135, 'j', MarkCircumflex},
	{0x0137, 'k', MarkCedilla},
	{0x013A, 'l', MarkAcute}, {0x013C, 'l', MarkCedilla}, {0x013E, 'l', MarkCaron},
	{0x0142, 'l', MarkBar},
	{0x0144, 'n', MarkAcute}, {0x0146, 'n', MarkCedilla}, {0x0148, 'n', MarkCaron},
	{0x014D, 'o', MarkMacron}, {0x014F, 'o', MarkBreve}, {0x0151, 'o', MarkDoubleAcute},
	{0x0155, 'r', MarkAcute}, {0x0157, 'r', MarkCedilla}, {0x0159, 'r', MarkCaron},
	{0x015B, 's', MarkAcute}, {0x015D, 's', MarkCircumflex}, {0x015F, 's', MarkCedilla},
	{0x0161, 's', MarkCaron},
	{0x0163, 't', MarkCedilla}, {0x0165, 't', MarkCaron}, {0x0167, 't', MarkBar},
	{0x0169, 'u', MarkTilde}, {0x016B, 'u', MarkMacron}, {0x016D, 'u', MarkBreve},
	{0x016F, 'u', MarkRing}, {0x0171, 'u', MarkDoubleAcute}, {0x0173, 'u', MarkOgonek},
	{0x0175, 'w', MarkCircumflex},
	{0x0177, 'y', MarkCircumflex},
	{0x017A, 'z', MarkAcute}, {0x017C, 'z', MarkDot}, {0x017E, 'z', MarkCaron},
	// Latin Extended-B and IPA selections.
	{0x01A1, 'o', MarkHorn}, {0x01B0, 'u', MarkHorn},
	{0x01CE, 'a', MarkCaron}, {0x01D0, 'i', MarkCaron}, {0x01D2, 'o', MarkCaron},
	{0x01D4, 'u', MarkCaron},
	{0x01EB, 'o', MarkOgonek},
	{0x01F5, 'g', MarkAcute},
	{0x0219, 's', MarkOgonek}, {0x021B, 't', MarkOgonek},
	{0x0227, 'a', MarkDot}, {0x022F, 'o', MarkDot}, {0x0233, 'y', MarkMacron},
	{0x1E03, 'b', MarkDot}, {0x1E05, 'b', MarkDotBelow},
	{0x1E0B, 'd', MarkDot}, {0x1E0D, 'd', MarkDotBelow},
	{0x1E1F, 'f', MarkDot},
	{0x1E21, 'g', MarkMacron},
	{0x1E23, 'h', MarkDot}, {0x1E25, 'h', MarkDotBelow},
	{0x1E2B, 'h', MarkBreve},
	{0x1E31, 'k', MarkAcute}, {0x1E33, 'k', MarkDotBelow},
	{0x1E37, 'l', MarkDotBelow},
	{0x1E3F, 'm', MarkAcute}, {0x1E41, 'm', MarkDot}, {0x1E43, 'm', MarkDotBelow},
	{0x1E45, 'n', MarkDot}, {0x1E47, 'n', MarkDotBelow},
	{0x1E55, 'p', MarkAcute}, {0x1E57, 'p', MarkDot},
	{0x1E59, 'r', MarkDot}, {0x1E5B, 'r', MarkDotBelow},
	{0x1E61, 's', MarkDot}, {0x1E63, 's', MarkDotBelow},
	{0x1E6B, 't', MarkDot}, {0x1E6D, 't', MarkDotBelow},
	{0x1E7D, 'v', MarkTilde}, {0x1E7F, 'v', MarkDotBelow},
	{0x1E81, 'w', MarkGrave}, {0x1E83, 'w', MarkAcute}, {0x1E87, 'w', MarkDot},
	{0x1E89, 'w', MarkDotBelow},
	{0x1E8B, 'x', MarkDot}, {0x1E8D, 'x', MarkDiaeresis},
	{0x1E8F, 'y', MarkDot},
	{0x1E91, 'z', MarkCircumflex}, {0x1E93, 'z', MarkDotBelow},
	{0x1E97, 't', MarkDiaeresis},
	{0x1E98, 'w', MarkRing}, {0x1E99, 'y', MarkRing},
	{0x1EA1, 'a', MarkDotBelow}, {0x1EA3, 'a', MarkHook},
	{0x1EB9, 'e', MarkDotBelow}, {0x1EBB, 'e', MarkHook}, {0x1EBD, 'e', MarkTilde},
	{0x1EC9, 'i', MarkHook}, {0x1ECB, 'i', MarkDotBelow},
	{0x1ECD, 'o', MarkDotBelow}, {0x1ECF, 'o', MarkHook},
	{0x1EE5, 'u', MarkDotBelow}, {0x1EE7, 'u', MarkHook},
	{0x1EF3, 'y', MarkGrave}, {0x1EF5, 'y', MarkDotBelow}, {0x1EF7, 'y', MarkHook},
	{0x1EF9, 'y', MarkTilde},
}

// twin renders code point CP pixel-identically to Base (Δ = 0). These are
// the classic cross-script homographs: Cyrillic а/е/о/р/с/у/х, Greek
// omicron, Armenian oh, and the zero digits of a dozen Brahmic scripts
// that render as a plain circle.
type twin struct {
	CP   rune
	Base rune
}

var twins = []twin{
	// Cyrillic lookalikes of Latin lowercase letters.
	{0x0430, 'a'}, // а
	{0x0435, 'e'}, // е
	{0x043E, 'o'}, // о
	{0x0440, 'p'}, // р
	{0x0441, 'c'}, // с
	{0x0443, 'y'}, // у
	{0x0445, 'x'}, // х
	{0x0455, 's'}, // ѕ
	{0x0456, 'i'}, // і
	{0x0458, 'j'}, // ј
	{0x04BB, 'h'}, // һ
	{0x0501, 'd'}, // ԁ
	{0x051B, 'q'}, // ԛ
	{0x051D, 'w'}, // ԝ
	{0x0461, 'w'}, // ѡ (omega)
	{0x04CF, 'l'}, // ӏ palochka
	{0x043C, 'm'}, // м
	// Greek lookalikes.
	{0x03BF, 'o'}, // ο omicron
	{0x03F2, 'c'}, // ϲ lunate sigma
	{0x03F3, 'j'}, // ϳ yot
	// Armenian lookalikes.
	{0x0585, 'o'}, // օ
	{0x0578, 'n'}, // ո vo
	{0x057D, 'u'}, // ս seh
	{0x0570, 'h'}, // հ ho
	{0x0561, 'w'}, // ա ayb... rendered as w-like per Unifont
	// IPA.
	{0x0261, 'g'}, // ɡ script g
	{0x026A, 'i'}, // ɪ small capital i
	// Round zero digits and letters across scripts (all render as the 'o'
	// circle): the Figure 12 example uses Lao digit zero.
	{0x0ED0, 'o'}, // ໐ Lao zero
	{0x0966, 'o'}, // ० Devanagari zero
	{0x09E6, 'o'}, // ০ Bengali zero
	{0x0AE6, 'o'}, // ૦ Gujarati zero
	{0x0B66, 'o'}, // ୦ Oriya zero
	{0x0BE6, 'o'}, // ௦ Tamil zero
	{0x0C66, 'o'}, // ౦ Telugu zero
	{0x0CE6, 'o'}, // ೦ Kannada zero
	{0x0D66, 'o'}, // ൦ Malayalam zero
	{0x0E50, 'o'}, // ๐ Thai zero
	{0x17E0, 'o'}, // ០ Khmer zero
	{0x0F20, 'o'}, // ༠ Tibetan zero
	{0x07C0, 'o'}, // ߀ NKo zero
	{0x101D, 'o'}, // ဝ Myanmar wa
	{0x10FF, 'o'}, // ჿ Georgian labial sign
}

// variant renders CP as Base with specific extra/removed pixels (given as
// flips), producing a precise nonzero Δ. These model near-twins whose
// shapes differ by a stroke detail: dotless ı, Greek η with its descender,
// izhitsa's tail on v, and the long s that is an f without a crossbar.
type variant struct {
	CP    rune
	Base  rune
	Flips [][2]int
}

var variants = []variant{
	{0x0131, 'i', [][2]int{{4, 2}, {4, 3}}},                   // ı = i minus its dot (Δ=2)
	{0x0237, 'j', [][2]int{{4, 3}, {4, 4}}},                   // ȷ dotless j (Δ=2)
	{0x017F, 'f', [][2]int{{7, 0}, {7, 3}, {7, 4}}},           // ſ long s = f minus crossbar ends (Δ=3)
	{0x0269, 'i', [][2]int{{4, 2}, {4, 3}, {13, 5}}},          // ɩ iota = dotless i with tail (Δ=3)
	{0x03B9, 'i', [][2]int{{4, 2}, {4, 3}, {13, 5}, {12, 5}}}, // Greek ι (Δ=4)
	{0x03B7, 'n', [][2]int{{14, 5}, {15, 5}}},                 // η = n plus right descender (Δ=2)
	{0x03BD, 'v', [][2]int{{7, 1}}},                           // ν (Δ=1)
	{0x03C5, 'u', [][2]int{{13, 1}, {12, 5}}},                 // υ rounded bottoms (Δ=2)
	{0x03BA, 'k', [][2]int{{3, 0}, {4, 0}, {5, 0}, {6, 0}}},   // κ = k without ascender top (Δ=4)
	{0x03C1, 'p', [][2]int{{15, 0}, {15, 1}}},                 // ρ = p with shortened stem (Δ=2)
	{0x03C4, 't', [][2]int{{5, 2}, {5, 3}, {6, 2}, {6, 3}}},   // τ = t minus top stub (Δ=4)
	{0x03B5, 'e', [][2]int{{10, 4}, {10, 5}, {11, 1}}},        // ε open e (Δ=3)
	{0x03C9, 'w', [][2]int{{13, 2}, {13, 4}, {12, 3}}},        // ω round w (Δ=3)
	{0x03BC, 'u', [][2]int{{14, 0}, {15, 0}}},                 // μ = u with left descender (Δ=2)
	{0x0475, 'v', [][2]int{{8, 6}}},                           // ѵ izhitsa = v with flick (Δ=1)
	{0x0446, 'u', [][2]int{{14, 5}, {15, 6}}},                 // ц = u-like with tail (Δ=2)
	{0x0457, 'i', [][2]int{{4, 2}, {1, 2}, {1, 5}}},           // ї = і with diaeresis
	{0x04BD, 'e', [][2]int{{10, 0}, {10, 1}, {11, 5}}},        // ҽ abkhazian che (Δ=3)
	{0x0581, 'g', [][2]int{{7, 6}, {8, 6}}},                   // ց armenian co (Δ=2)
	{0x0584, 'p', [][2]int{{3, 3}, {4, 3}}},                   // ք armenian keh (Δ=2)
	{0x057C, 'n', [][2]int{{14, 0}, {15, 0}}},                 // ռ armenian ra (Δ=2)
	{0x0563, 'q', [][2]int{{15, 5}, {15, 6}}},                 // գ armenian gim (Δ=2)
	{0x0572, 'n', [][2]int{{14, 5}, {15, 5}, {15, 4}}},        // ղ armenian ghad (Δ=3)
}
