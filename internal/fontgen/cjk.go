package fontgen

import (
	"repro/internal/hexfont"
	"repro/internal/stats"
)

// CJK Unified Ideographs are generated as dense deterministic stroke grids.
// A sparse arithmetic progression of code points is derived from its
// predecessor with a 3-pixel flip, modelling the real phenomenon of
// ideograph pairs that differ by a single short stroke (里/圼, 土/士, 未/末).
const (
	cjkBase     = 0x4E00
	cjkEnd      = 0x9FFF
	cjkExtABase = 0x3400
	cjkExtAEnd  = 0x4DB5
	// cjkPairStride: code points ≡ 1 (mod stride) are near-twins of their
	// predecessor. (0x9FFF-0x4E00+1)/107 ≈ 196 pairs ≈ 392 characters,
	// matching the paper's 395 CJK characters in SimChar (Table 4).
	cjkPairStride = 107
)

// cjkFlips is the fixed 3-pixel difference of a CJK near-twin pair, chosen
// at the bottom-right of the body where the generator never draws (the
// body grid stops at column 12 for pair predecessors).
var cjkFlips = [][2]int{{13, 14}, {13, 15}, {12, 15}}

// cjkGlyph renders one ideograph: a frame stroke plus dense inner strokes.
func cjkGlyph(cp rune) *hexfont.Glyph {
	g := strokeGlyph(16, scriptSeed(famCJK, cp), region{2, 2, 13, 12}, 42)
	// A top bar and left stem give every ideograph the common "boxed"
	// silhouette, concentrating variation in the interior.
	for j := 2; j <= 12; j++ {
		g.Set(1, j)
	}
	for i := 2; i <= 13; i++ {
		g.Set(i, 1)
	}
	return g
}

// generateCJK adds the unified ideographs and Extension A to the font.
func generateCJK(f *hexfont.Font) {
	for cp := rune(cjkBase); cp <= cjkEnd; cp++ {
		off := int(cp - cjkBase)
		if off%cjkPairStride == 1 {
			prev, _ := f.Glyph(cp - 1)
			g := prev.Clone()
			for _, p := range cjkFlips {
				g.Flip(p[0], p[1])
			}
			f.SetGlyph(cp, g)
			continue
		}
		f.SetGlyph(cp, cjkGlyph(cp))
	}
	for cp := rune(cjkExtABase); cp <= cjkExtAEnd; cp++ {
		f.SetGlyph(cp, cjkGlyph(cp))
	}
}

// Arabic letters share a rasm (base skeleton) and differ by i'jam dots:
// ب/ت/ث are one skeleton with one dot below, two dots above, three dots
// above. Dots cost 1 pixel each, so same-rasm letters differ by Δ ≤ 6 and
// many pairs land within the SimChar threshold — the paper finds Arabic in
// the top-5 blocks of both SimChar and UC∩IDNA (Table 4).
type arabicLetter struct {
	CP        rune
	Rasm      int
	DotsAbove int
	DotsBelow int
}

// arabicLetters tabulates the core alphabet with its real rasm grouping.
var arabicLetters = []arabicLetter{
	{0x0628, 1, 0, 1},  // ب beh
	{0x062A, 1, 2, 0},  // ت teh
	{0x062B, 1, 3, 0},  // ث theh
	{0x067E, 1, 0, 3},  // پ peh
	{0x062C, 2, 0, 1},  // ج jeem
	{0x062D, 2, 0, 0},  // ح hah
	{0x062E, 2, 1, 0},  // خ khah
	{0x0686, 2, 0, 3},  // چ tcheh
	{0x062F, 3, 0, 0},  // د dal
	{0x0630, 3, 1, 0},  // ذ thal
	{0x0631, 4, 0, 0},  // ر reh
	{0x0632, 4, 1, 0},  // ز zain
	{0x0698, 4, 3, 0},  // ژ jeh
	{0x0633, 5, 0, 0},  // س seen
	{0x0634, 5, 3, 0},  // ش sheen
	{0x0635, 6, 0, 0},  // ص sad
	{0x0636, 6, 1, 0},  // ض dad
	{0x0637, 7, 0, 0},  // ط tah
	{0x0638, 7, 1, 0},  // ظ zah
	{0x0639, 8, 0, 0},  // ع ain
	{0x063A, 8, 1, 0},  // غ ghain
	{0x0641, 9, 1, 0},  // ف feh
	{0x0642, 9, 2, 0},  // ق qaf
	{0x06A4, 9, 3, 0},  // ڤ veh
	{0x0643, 10, 0, 0}, // ك kaf
	{0x06A9, 10, 0, 0}, // ک keheh (twin of kaf in our rendering)
	{0x0644, 11, 0, 0}, // ل lam
	{0x0645, 12, 0, 0}, // م meem
	{0x0646, 1, 1, 0},  // ن noon (beh rasm, one dot above)
	{0x0647, 13, 0, 0}, // ه heh
	{0x0648, 14, 0, 0}, // و waw
	{0x0649, 15, 0, 0}, // ى alef maksura
	{0x064A, 15, 0, 2}, // ي yeh
	{0x0627, 16, 0, 0}, // ا alef
	{0x0621, 17, 0, 0}, // ء hamza
	{0x066E, 1, 0, 0},  // ٮ dotless beh
	{0x066F, 9, 0, 0},  // ٯ dotless qaf
	{0x06CC, 15, 0, 0}, // ی farsi yeh (twin of alef maksura)
	{0x0679, 1, 0, 2},  // ٹ tteh (approximated with two dots below)
	{0x0688, 3, 0, 1},  // ڈ ddal
	{0x0691, 4, 0, 1},  // ڑ rreh
	{0x06BA, 1, 0, 0},  // ں noon ghunna (dotless beh rasm)
	{0x06D2, 15, 0, 1}, // ے yeh barree (approx)
	{0x06AF, 10, 1, 0}, // گ gaf
	{0x06C1, 13, 1, 0}, // ہ heh goal
	{0x0677, 14, 1, 0}, // ٷ (approx: waw rasm variant)
	{0x06CB, 14, 2, 0}, // ۋ ve
	{0x06C6, 14, 3, 0}, // ۆ oe
	{0x0672, 16, 1, 0}, // ٲ alef with wavy hamza (approx)
	{0x0673, 16, 0, 1}, // ٳ
	{0x0675, 16, 2, 0}, // ٵ
	{0x067A, 1, 2, 2},  // ٺ
	{0x067B, 1, 0, 2},  // ٻ (same dots as tteh: twin pair)
	{0x067D, 1, 3, 1},  // ٽ (approx)
	{0x067F, 1, 4, 0},  // ٿ
	{0x0680, 1, 0, 4},  // ڀ
	{0x0683, 2, 0, 2},  // ڃ
	{0x0684, 2, 0, 2},  // ڄ (twin of ڃ in our rendering)
	{0x0687, 2, 0, 4},  // ڇ
	{0x068A, 3, 0, 1},  // ڊ (twin of ddal)
	{0x068C, 3, 2, 0},  // ڌ
	{0x068D, 3, 0, 2},  // ڍ
	{0x068E, 3, 3, 0},  // ڎ
	{0x0692, 4, 2, 0},  // ڒ
	{0x0695, 4, 0, 1},  // ڕ (twin of rreh)
	{0x0696, 4, 1, 1},  // ږ
	{0x0699, 4, 2, 2},  // ڙ (approx)
	{0x06A0, 8, 2, 0},  // ڠ
	{0x06A2, 9, 1, 1},  // ڢ (approx)
	{0x06A6, 9, 4, 0},  // ڦ
	{0x06B0, 10, 2, 0}, // ڰ
	{0x06B2, 10, 0, 2}, // ڲ
	{0x06B4, 10, 3, 0}, // ڴ
	{0x06BB, 10, 0, 1}, // ڻ (approx)
	{0x06BE, 13, 0, 1}, // ھ (approx)
	{0x06C2, 13, 2, 0}, // ۂ (approx)
	{0x06C4, 14, 0, 1}, // ۄ
	{0x06C7, 14, 0, 2}, // ۇ (approx)
	{0x06C8, 14, 0, 3}, // ۈ (approx)
	{0x06CA, 14, 1, 1}, // ۊ
	{0x06CE, 15, 1, 0}, // ێ (approx)
	{0x06D0, 15, 0, 3}, // ې
	{0x06D1, 15, 3, 0}, // ۑ
}

// Dot positions: above dots sit on row 3, below dots on row 15, spread
// horizontally from column 5; rasm bodies draw in rows 6..13.
func arabicGlyph(l arabicLetter) *hexfont.Glyph {
	g := strokeGlyph(8, stats.Mix(famArabic<<40|uint64(l.Rasm)), region{6, 0, 13, 7}, 16)
	for d := 0; d < l.DotsAbove && d < 4; d++ {
		g.Set(3, 5-d)
	}
	for d := 0; d < l.DotsBelow && d < 4; d++ {
		g.Set(15, 5-d)
	}
	return g
}

// generateArabic adds the tabulated Arabic letters to the font.
func generateArabic(f *hexfont.Font) {
	for _, l := range arabicLetters {
		f.SetGlyph(l.CP, arabicGlyph(l))
	}
}
