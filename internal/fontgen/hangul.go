package fontgen

import (
	"repro/internal/hexfont"
	"repro/internal/stats"
)

// Hangul syllables (U+AC00..U+D7A3) are composed algorithmically from jamo
// exactly as the real script composes them: syllable index s decomposes
// into lead s/588, vowel (s%588)/28 and tail s%28. Each jamo class draws
// into a disjoint canvas region, so the Δ between two syllables is the sum
// of the Δs of their differing jamo — which is how thousands of Hangul
// near-pairs arise from a handful of near-twin tails (the paper's Table 4
// finds 8,787 Hangul characters in SimChar, by far the largest block).
const (
	HangulBase  = 0xAC00
	HangulCount = 11172
	leadCount   = 19
	vowelCount  = 21
	tailCount   = 28 // includes "no tail" at index 0
)

// Jamo regions: lead top-left, vowel top-right, tail bottom. Tail bases
// draw only into columns 0..12 so the 3-pixel twin marker at columns 13..15
// never overlaps.
var (
	leadRegion  = region{0, 0, 6, 6}
	vowelRegion = region{0, 0, 9, 7} // offset to columns 8..15 when drawn
	tailRegion  = region{10, 0, 15, 12}
)

// twinTailPairs is the number of tail pairs (A, A+marker) among tails
// 1..27. With 11 pairs, 22 of the 27 real tails have a Δ=3 partner and
// 19·21·22 = 8,778 syllables land in SimChar, matching the paper's 8,787.
const twinTailPairs = 11

// tailMarker is the 3-pixel difference between the two tails of a pair.
var tailMarker = [][2]int{{15, 13}, {15, 14}, {14, 14}}

// jamoPixels returns the pixel set for one jamo, drawn deterministically.
func jamoPixels(family uint64, index, target int, rg region) [][2]int {
	g := strokeGlyph(16, stats.Mix(family<<32|uint64(index)), rg, target)
	var out [][2]int
	for i := rg.r0; i <= rg.r1; i++ {
		for j := rg.c0; j <= rg.c1; j++ {
			if g.At(i, j) {
				out = append(out, [2]int{i, j})
			}
		}
	}
	return out
}

// hangulJamoSets builds the lead, vowel and tail pixel tables once.
func hangulJamoSets() (leads, vowels, tails [][][2]int) {
	leads = make([][][2]int, leadCount)
	for l := 0; l < leadCount; l++ {
		leads[l] = jamoPixels(101, l, 14, leadRegion)
	}
	vowels = make([][][2]int, vowelCount)
	for v := 0; v < vowelCount; v++ {
		px := jamoPixels(102, v, 12, vowelRegion)
		for i := range px {
			px[i][1] += 8 // shift vowels into the right half
		}
		vowels[v] = px
	}
	tails = make([][][2]int, tailCount)
	// Tail 0 is empty. Tails 1..2·twinTailPairs come in near-twin pairs;
	// the rest are singletons.
	for p := 0; p < twinTailPairs; p++ {
		base := jamoPixels(103, p, 11, tailRegion)
		tails[1+2*p] = base
		withMarker := make([][2]int, len(base), len(base)+len(tailMarker))
		copy(withMarker, base)
		withMarker = append(withMarker, tailMarker...)
		tails[2+2*p] = withMarker
	}
	for t := 1 + 2*twinTailPairs; t < tailCount; t++ {
		tails[t] = jamoPixels(104, t, 12, tailRegion)
	}
	return leads, vowels, tails
}

// generateHangul adds all 11,172 composed syllables to the font.
func generateHangul(f *hexfont.Font) {
	leads, vowels, tails := hangulJamoSets()
	for s := 0; s < HangulCount; s++ {
		l := s / 588
		v := (s % 588) / 28
		t := s % 28
		g := &hexfont.Glyph{Width: 16}
		for _, p := range leads[l] {
			g.Set(p[0], p[1])
		}
		for _, p := range vowels[v] {
			g.Set(p[0], p[1])
		}
		for _, p := range tails[t] {
			g.Set(p[0], p[1])
		}
		f.SetGlyph(rune(HangulBase+s), g)
	}
}

// DecomposeHangul returns the lead, vowel and tail indices of a syllable,
// or ok=false if r is not a composed Hangul syllable.
func DecomposeHangul(r rune) (lead, vowel, tail int, ok bool) {
	if r < HangulBase || r >= HangulBase+HangulCount {
		return 0, 0, 0, false
	}
	s := int(r - HangulBase)
	return s / 588, (s % 588) / 28, s % 28, true
}
