package experiments

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/bitmap"
	"repro/internal/confusables"
	"repro/internal/report"
	"repro/internal/simchar"
	"repro/internal/ucd"
)

// Table1 reproduces the character-set accounting of Figure 3 / Table 1:
// IDNA2008, UC (confusables.txt), their intersection, SimChar, and the
// unions the framework actually uses.
func Table1(e *Env) *report.Experiment {
	exp := &report.Experiment{
		ID:          "Table 1",
		Description: "Characters and homoglyph pairs per character set",
		Bench:       "BenchmarkTable01_CharacterSets",
	}
	idna := ucd.IDNASet()
	uc := confusables.Default()
	ucChars := uc.Chars()
	ucIDNA := uc.RestrictSources(idna)
	sim := e.DB().SimChar()
	simChars := sim.Chars()
	ucIDNAChars := ucChars.Intersect(idna)

	interUC := simChars.Intersect(ucChars)
	union := simChars.Union(ucIDNAChars)

	tbl := report.NewTable("Character sets", "Set", "# characters", "# homoglyph pairs")
	tbl.AddRow("IDNA", idna.Len(), "n/a")
	tbl.AddRow("UC", ucChars.Len(), uc.Pairs())
	tbl.AddRow("UC ∩ IDNA", ucIDNAChars.Len(), ucIDNA.Pairs())
	tbl.AddRow("SimChar", simChars.Len(), sim.NumPairs())
	tbl.AddRow("SimChar ∩ UC", interUC.Len(), "-")
	tbl.AddRow("SimChar ∪ (UC ∩ IDNA)", union.Len(), sim.NumPairs()+ucIDNA.Pairs())
	exp.Tables = append(exp.Tables, tbl)

	exp.Addf("IDNA characters", "123,006", "%d", idna.Len())
	exp.Addf("UC characters / pairs", "9,605 / 6,296", "%d / %d", ucChars.Len(), uc.Pairs())
	exp.Addf("UC ∩ IDNA characters / pairs", "980 / 627", "%d / %d", ucIDNAChars.Len(), ucIDNA.Pairs())
	exp.Addf("SimChar characters / pairs", "12,686 / 13,208", "%d / %d", simChars.Len(), sim.NumPairs())
	exp.Addf("SimChar ∩ UC characters", "233", "%d", interUC.Len())
	exp.Commentary = "The stdlib Unicode tables are newer than Unicode 12.0.0 and the font is synthetic, so absolute counts shift; the set relationships (UC mostly outside IDNA, SimChar an order of magnitude beyond UC ∩ IDNA, small SimChar ∩ UC overlap) are the reproduced result."
	return exp
}

// Table2 reproduces the font-coverage accounting.
func Table2(e *Env) *report.Experiment {
	exp := &report.Experiment{
		ID:          "Table 2",
		Description: "Characters covered by the font (IDNA ∩ Unifont, UC ∩ Unifont, SimChar)",
		Bench:       "BenchmarkTable02_FontCoverage",
	}
	font := e.Font()
	idna := ucd.IDNASet()
	covered := 0
	for _, r := range idna.Runes() {
		if font.Covers(r) {
			covered++
		}
	}
	uc := confusables.Default()
	ucCovered := 0
	for _, r := range uc.Chars().Runes() {
		if font.Covers(r) {
			ucCovered++
		}
	}
	sim := e.DB().SimChar()

	tbl := report.NewTable("Font coverage", "Set", "# chars")
	tbl.AddRow("IDNA ∩ font", covered)
	tbl.AddRow("UC ∩ font", ucCovered)
	tbl.AddRow("SimChar", sim.Chars().Len())
	exp.Tables = append(exp.Tables, tbl)

	exp.Addf("IDNA ∩ Unifont12", "52,457", "%d", covered)
	exp.Addf("UC ∩ Unifont12", "5,080", "%d", ucCovered)
	exp.Addf("SimChar chars / pairs", "12,686 / 13,208", "%d / %d", sim.Chars().Len(), sim.NumPairs())
	return exp
}

// Table3 counts homoglyphs per Basic Latin lowercase letter in SimChar
// and in UC ∩ IDNA.
func Table3(e *Env) *report.Experiment {
	exp := &report.Experiment{
		ID:          "Table 3",
		Description: "Homoglyphs of Latin lowercase letters (SimChar vs UC ∩ IDNA)",
		Bench:       "BenchmarkTable03_LatinHomoglyphs",
	}
	sim := e.DB().SimChar()
	ucIDNA := confusables.Default().RestrictSources(ucd.IDNASet())

	tbl := report.NewTable("Per-letter homoglyphs", "Letter", "SimChar", "UC ∩ IDNA")
	totalSim, totalUC := 0, 0
	type row struct {
		letter   rune
		sim, ucn int
	}
	rows := make([]row, 0, 26)
	for r := 'a'; r <= 'z'; r++ {
		nSim := len(sim.Homoglyphs(r))
		nUC := 0
		for _, g := range ucIDNA.Sources() {
			if g != r && ucIDNA.Confusable(r, g) {
				nUC++
			}
		}
		rows = append(rows, row{r, nSim, nUC})
		totalSim += nSim
		totalUC += nUC
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].sim > rows[j].sim })
	for _, r := range rows {
		tbl.AddRow(string(r.letter), r.sim, r.ucn)
	}
	tbl.AddRow("Total", totalSim, totalUC)
	exp.Tables = append(exp.Tables, tbl)

	exp.Addf("SimChar total Latin homoglyphs", "351", "%d", totalSim)
	exp.Addf("UC ∩ IDNA total Latin homoglyphs", "141", "%d", totalUC)
	exp.Addf("most-homoglyphed letter", "'o' (40)", "'%c' (%d)", rows[0].letter, rows[0].sim)
	exp.Commentary = "SimChar finds several times more Latin-letter homoglyphs than UC ∩ IDNA, and 'o' is the most homoglyphed letter — the paper's two qualitative findings."
	return exp
}

// Table4 attributes each database's characters to Unicode blocks.
func Table4(e *Env) *report.Experiment {
	exp := &report.Experiment{
		ID:          "Table 4",
		Description: "Top-5 Unicode blocks in SimChar and UC ∩ IDNA",
		Bench:       "BenchmarkTable04_UnicodeBlocks",
	}
	top5 := func(chars []rune) []string {
		counts := make(map[string]int)
		for _, r := range chars {
			counts[ucd.BlockOf(r)]++
		}
		type bc struct {
			block string
			n     int
		}
		var rows []bc
		for b, n := range counts {
			if b == "Basic Latin" {
				continue // the target letters themselves, as in the paper
			}
			rows = append(rows, bc{b, n})
		}
		sort.Slice(rows, func(i, j int) bool {
			if rows[i].n != rows[j].n {
				return rows[i].n > rows[j].n
			}
			return rows[i].block < rows[j].block
		})
		var out []string
		for i := 0; i < 5 && i < len(rows); i++ {
			out = append(out, fmt.Sprintf("%s (%d)", rows[i].block, rows[i].n))
		}
		return out
	}
	simTop := top5(e.DB().SimChar().Chars().Runes())
	ucIDNA := confusables.Default().RestrictSources(ucd.IDNASet())
	ucTop := top5(ucIDNA.Chars().Runes())

	tbl := report.NewTable("Top blocks", "Rank", "SimChar", "UC ∩ IDNA")
	for i := 0; i < 5; i++ {
		s, u := "-", "-"
		if i < len(simTop) {
			s = simTop[i]
		}
		if i < len(ucTop) {
			u = ucTop[i]
		}
		tbl.AddRow(i+1, s, u)
	}
	exp.Tables = append(exp.Tables, tbl)
	exp.Add("SimChar top blocks", "Hangul, CJK, Canadian Aboriginal, Vai, Arabic",
		fmt.Sprintf("%v", simTop), "")
	exp.Add("UC ∩ IDNA top blocks", "CJK, Combining Marks, Arabic, Cyrillic, Thai",
		fmt.Sprintf("%v", ucTop), "")
	exp.Commentary = "The two databases are dominated by different blocks, which is why the paper uses them as complements."
	return exp
}

// Table5 measures SimChar construction time stage by stage.
func Table5(e *Env) *report.Experiment {
	exp := &report.Experiment{
		ID:          "Table 5",
		Description: "Time to construct SimChar",
		Bench:       "BenchmarkTable05_BuildTime",
	}
	// Rebuild once, timed, so the numbers are from this run rather
	// than the cached shared DB.
	sim, tim := simchar.Build(e.Font(), ucd.IDNASet(), simchar.Options{})
	tbl := report.NewTable("Build timings", "Process", "Time")
	tbl.AddRow("Generating images", tim.RasterizeImages.Round(time.Millisecond))
	tbl.AddRow("Computing Δ for all pairs", tim.ComputePairwise.Round(time.Millisecond))
	tbl.AddRow("Eliminating sparse characters", tim.EliminateSparse.Round(time.Millisecond))
	exp.Tables = append(exp.Tables, tbl)

	exp.Addf("generating images", "79.2 s", "%v", tim.RasterizeImages.Round(time.Millisecond))
	exp.Addf("pairwise Δ", "10.9 h (15 processes)", "%v", tim.ComputePairwise.Round(time.Millisecond))
	exp.Addf("sparse elimination", "18.0 s", "%v", tim.EliminateSparse.Round(time.Millisecond))
	exp.Addf("pairs compared after banded prefilter", "n/a (naive in paper)",
		"%d (saved %d comparisons)", tim.CandidatePairs, tim.ComparisonsSaved)
	exp.Commentary = fmt.Sprintf("The paper's 10.9 h comes from a naive O(n²) scan of 52,457 glyphs on 15 processes; this implementation adds a banded pigeonhole index that only compares candidate pairs (%d pairs instead of ~1.4B), which is the dominant reason the build is ~5 orders of magnitude faster. The ablation bench BenchmarkAblationNaiveVsBanded quantifies the difference on equal footing. SimChar ended with %d pairs.", tim.CandidatePairs, sim.NumPairs())
	return exp
}

// Figure6 renders the Δ ladder for the letter 'e': for each Δ in
// [0, 6], a character at exactly that distance with its glyph.
func Figure6(e *Env) *report.Experiment {
	exp := &report.Experiment{
		ID:          "Figure 6",
		Description: "Letter 'e' and candidate homoglyphs at Δ = 0..6",
		Bench:       "BenchmarkFigure06_DeltaLadder",
	}
	font := e.Font()
	base, ok := font.Glyph('e')
	if !ok {
		exp.Commentary = "font has no glyph for 'e'"
		return exp
	}
	baseImg := base.Rasterize()
	found := make(map[int]rune)
	for _, r := range font.Runes() {
		if r == 'e' || !ucd.IsPValid(r) {
			continue
		}
		g, _ := font.Glyph(r)
		d := bitmap.DeltaCapped(baseImg, g.Rasterize(), 7)
		if d <= 6 {
			if _, taken := found[d]; !taken {
				found[d] = r
			}
		}
	}
	tbl := report.NewTable("Δ ladder for 'e'", "Δ", "Code point", "Detected as homoglyph (θ=4)")
	for d := 0; d <= 6; d++ {
		cp := "-"
		if r, ok := found[d]; ok {
			cp = fmt.Sprintf("U+%04X %c", r, r)
		}
		tbl.AddRow(d, cp, d <= simchar.DefaultThreshold)
	}
	exp.Tables = append(exp.Tables, tbl)
	exp.Addf("ladder coverage Δ≤4", "homoglyphs at every Δ≤4", "%d of 5 rungs populated", countRungs(found, 4))
	return exp
}

func countRungs(found map[int]rune, maxD int) int {
	n := 0
	for d := 0; d <= maxD; d++ {
		if _, ok := found[d]; ok {
			n++
		}
	}
	return n
}
