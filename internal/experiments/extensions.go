package experiments

import (
	"fmt"

	"repro/internal/fontgen"
	"repro/internal/report"
	"repro/internal/simchar"
	"repro/internal/ucd"
)

// Extension71 runs the paper's Section 7.1 future-work experiment:
// build SimChar under additional font styles and measure how the union
// grows — quantifying how much the choice of font affects the detected
// homoglyphs.
func Extension71(e *Env) *report.Experiment {
	exp := &report.Experiment{
		ID:          "Section 7.1",
		Description: "Multi-font SimChar: union growth across font styles",
		Bench:       "BenchmarkAblationMultiFont",
	}
	idna := ucd.IDNASet()
	base := e.DB().SimChar()

	tbl := report.NewTable("Per-style databases", "Font", "Pairs", "New vs default", "Lost vs default")
	tbl.AddRow("default style", base.NumPairs(), 0, 0)
	dbs := []*simchar.DB{base}
	for _, style := range []uint64{99, 1234} {
		font := fontgen.Generate(fontgen.Options{
			SkipCJK:    e.Opt.FastFont,
			SkipHangul: e.Opt.FastFont,
			StyleSeed:  style,
		})
		db, _ := simchar.Build(font, idna, simchar.Options{})
		dbs = append(dbs, db)
		tbl.AddRow(fmt.Sprintf("style %d", style), db.NumPairs(),
			len(simchar.Diff(db, base)), len(simchar.Diff(base, db)))
	}
	union := simchar.Merge(dbs...)
	tbl.AddRow("union (3 styles)", union.NumPairs(), union.NumPairs()-base.NumPairs(), 0)
	exp.Tables = append(exp.Tables, tbl)

	exp.Addf("union growth over single font", "future work in the paper", "+%d pairs (%.1f%%)",
		union.NumPairs()-base.NumPairs(),
		100*float64(union.NumPairs()-base.NumPairs())/float64(base.NumPairs()))
	exp.Commentary = "Each font style renders stroke details differently, so some near-pairs cross the θ=4 cutoff only under certain fonts; merging per-font databases (attacker's choice of rendering) strictly grows coverage. This implements the paper's stated future work of extending SimChar to other font families."
	return exp
}
