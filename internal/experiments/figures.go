package experiments

import (
	"fmt"
	"sort"

	"repro/internal/confusables"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/study"
	"repro/internal/ucd"
)

// Figure9 runs Experiment 1 of Section 4.1: confusability of SimChar
// candidate pairs as a function of the threshold Δ.
func Figure9(e *Env) *report.Experiment {
	exp := &report.Experiment{
		ID:          "Figure 9",
		Description: "Confusability score vs threshold Δ (simulated MTurk study)",
		Bench:       "BenchmarkFigure09_ThresholdStudy",
	}
	font := e.Font()
	ladder := study.Ladder(font, ucd.IsPValid, 8, 20, e.Opt.Seed)
	var pairs []study.Pair
	for d := 0; d <= 8; d++ {
		pairs = append(pairs, ladder[d]...)
	}
	pairs = append(pairs, study.Dummies(font, 30, e.Opt.Seed)...)
	out := study.Run(pairs, study.Config{Seed: e.Opt.Seed, Participants: 14})

	byDelta := out.SummaryByDelta()
	tbl := report.NewTable(
		fmt.Sprintf("Confusability by Δ (recruited %d, removed %d by QC)", out.Recruited, out.Removed),
		"Δ", "n", "Mean", "Median", "Boxplot [1..5]")
	deltas := make([]int, 0, len(byDelta))
	for d := range byDelta {
		deltas = append(deltas, d)
	}
	sort.Ints(deltas)
	for _, d := range deltas {
		s := byDelta[d]
		tbl.AddRow(d, s.N, s.Mean, s.Median, stats.AsciiBox(s, 1, 5, 32))
	}
	exp.Tables = append(exp.Tables, tbl)

	if s, ok := byDelta[4]; ok {
		exp.Addf("Δ=4 mean / median", "3.57 / 4", "%.2f / %.1f", s.Mean, s.Median)
	}
	if s, ok := byDelta[5]; ok {
		exp.Addf("Δ=5 mean / median", "2.57 / 2", "%.2f / %.1f", s.Mean, s.Median)
	}
	if err := out.Validate(); err != nil {
		exp.Addf("shape check", "monotone drop after Δ=4", "FAILED: %v", err)
	} else {
		exp.Add("shape check", "monotone drop after Δ=4", "holds", "")
	}
	exp.Commentary = "Scores fall monotonically with Δ and cross from 'confusing' to 'distinct' between Δ=4 and Δ=5 — the evidence behind the paper's θ=4 choice. The participant pool, dummy attention checks and QC removals are simulated and executed for real."
	return exp
}

// Figure10 runs Experiment 2: SimChar vs UC vs random-pair
// confusability.
func Figure10(e *Env) *report.Experiment {
	exp := &report.Experiment{
		ID:          "Figure 10",
		Description: "Confusability of Random vs SimChar vs UC pairs",
		Bench:       "BenchmarkFigure10_Confusability",
	}
	font := e.Font()
	ladder := study.Ladder(font, ucd.IsPValid, 4, 20, e.Opt.Seed)
	var simPairs []study.Pair
	for d := 0; d <= 4; d++ {
		simPairs = append(simPairs, ladder[d]...)
	}
	if len(simPairs) > 100 {
		simPairs = simPairs[:100]
	}

	// UC pairs: Latin-letter confusables from the UC ∩ IDNA database,
	// with their true glyph distances (some large — Figure 11's
	// "semantically close but visually distinct" entries).
	ucIDNA := confusables.Default().RestrictSources(ucd.IDNASet())
	var ucPairs []study.Pair
	for letter := 'a'; letter <= 'z'; letter++ {
		for _, g := range ucIDNA.Sources() {
			if g == letter || !ucIDNA.Confusable(letter, g) {
				continue
			}
			ucPairs = append(ucPairs, study.Pair{
				A: letter, B: g,
				Delta: study.DeltaOf(font, letter, g),
				Kind:  study.KindUC,
			})
		}
	}
	sort.Slice(ucPairs, func(i, j int) bool { return ucPairs[i].B < ucPairs[j].B })
	if len(ucPairs) > 30 {
		ucPairs = ucPairs[:30]
	}
	dummies := study.Dummies(font, 30, e.Opt.Seed)

	all := append(append(simPairs, ucPairs...), dummies...)
	out := study.Run(all, study.Config{Seed: e.Opt.Seed + 1, Participants: 30})
	byKind := out.SummaryByKind()

	tbl := report.NewTable(
		fmt.Sprintf("Confusability by set (recruited %d, removed %d by QC)", out.Recruited, out.Removed),
		"Set", "n", "Mean", "Median", "Boxplot [1..5]")
	for _, k := range []study.PairKind{study.KindRandom, study.KindSimChar, study.KindUC} {
		s := byKind[k]
		tbl.AddRow(k.String(), s.N, s.Mean, s.Median, stats.AsciiBox(s, 1, 5, 32))
	}
	exp.Tables = append(exp.Tables, tbl)

	r, s, u := byKind[study.KindRandom], byKind[study.KindSimChar], byKind[study.KindUC]
	exp.Addf("Random median", "≈1", "%.1f", r.Median)
	exp.Addf("SimChar mean / median", ">4 / 4", "%.2f / %.1f", s.Mean, s.Median)
	exp.Addf("UC mean / median", "<4 / 4", "%.2f / %.1f", u.Mean, u.Median)
	if s.Mean > u.Mean && u.Mean > r.Mean {
		exp.Add("ordering", "SimChar > UC > Random", "holds", "")
	} else {
		exp.Add("ordering", "SimChar > UC > Random",
			fmt.Sprintf("VIOLATED: %.2f / %.2f / %.2f", s.Mean, u.Mean, r.Mean), "")
	}
	exp.Commentary = "SimChar pairs are judged more confusable than UC pairs on average (UC contains semantically-related but visually distinct entries, the paper's Figure 11), and random pairs anchor the bottom of the scale."
	return exp
}
