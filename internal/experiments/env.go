// Package experiments regenerates every table and figure of the
// paper's evaluation. Each experiment function returns a
// report.Experiment holding the measured output next to the paper's
// published numbers; cmd/experiments renders them into EXPERIMENTS.md
// and the root bench_test.go wraps each one in a testing.B benchmark.
package experiments

import (
	"fmt"
	"sync"

	"repro/internal/blacklist"
	"repro/internal/confusables"
	"repro/internal/fontgen"
	"repro/internal/hexfont"
	"repro/internal/homoglyph"
	"repro/internal/ranking"
	"repro/internal/registry"
	"repro/internal/simchar"
	"repro/internal/ucd"
)

// Options configures the experiment environment.
type Options struct {
	// Seed drives every stochastic choice; the default 7 matches the
	// committed EXPERIMENTS.md.
	Seed uint64
	// Scale is the benign-corpus scale for the registry (paper =
	// 1.0). Zero means 0.002 (≈282k domains), which keeps the full
	// pipeline under a minute.
	Scale float64
	// FastFont skips CJK and Hangul generation. Tables 1/2/4 need
	// the full font to reproduce the paper's block counts; the
	// network-facing experiments do not.
	FastFont bool
	// RefCount is the reference-list size. Zero means 10,000 (the
	// paper's Alexa top-10k of .com).
	RefCount int
}

func (o Options) fill() Options {
	if o.Seed == 0 {
		o.Seed = 7
	}
	if o.Scale == 0 {
		o.Scale = 0.002
	}
	if o.RefCount == 0 {
		o.RefCount = 10000
	}
	return o
}

// Env lazily builds and caches the expensive shared fixtures: the
// synthetic font, the SimChar/UC databases, the reference ranking and
// the synthetic registry.
type Env struct {
	Opt Options

	fontOnce sync.Once
	font     *hexfont.Font

	dbOnce sync.Once
	db     *homoglyph.DB
	simTim simchar.Timings

	refsOnce sync.Once
	refs     *ranking.List

	regOnce sync.Once
	reg     *registry.Registry
	regErr  error

	blOnce sync.Once
	bl     *blacklist.Set
}

// NewEnv returns an environment over opt.
func NewEnv(opt Options) *Env {
	return &Env{Opt: opt.fill()}
}

// Font returns the shared synthetic font.
func (e *Env) Font() *hexfont.Font {
	e.fontOnce.Do(func() {
		if e.Opt.FastFont {
			e.font = fontgen.Generate(fontgen.Options{SkipCJK: true, SkipHangul: true})
		} else {
			e.font = fontgen.Full()
		}
	})
	return e.font
}

// DB returns the shared UC ∪ SimChar homoglyph database.
func (e *Env) DB() *homoglyph.DB {
	e.dbOnce.Do(func() {
		sim, tim := simchar.Build(e.Font(), ucd.IDNASet(), simchar.Options{})
		e.simTim = tim
		e.db = homoglyph.New(confusables.Default(), sim, 0)
	})
	return e.db
}

// SimCharTimings reports the build timings of the shared database.
func (e *Env) SimCharTimings() simchar.Timings {
	e.DB()
	return e.simTim
}

// Refs returns the shared reference ranking.
func (e *Env) Refs() *ranking.List {
	e.refsOnce.Do(func() {
		e.refs = ranking.Generate(e.Opt.RefCount, e.Opt.Seed, ranking.PaperAnchors())
	})
	return e.refs
}

// Registry returns the shared synthetic registry.
func (e *Env) Registry() (*registry.Registry, error) {
	e.regOnce.Do(func() {
		e.reg, e.regErr = registry.Generate(registry.Options{
			Seed:  e.Opt.Seed,
			Scale: e.Opt.Scale,
			Refs:  e.Refs(),
			DB:    e.DB(),
		})
	})
	if e.regErr != nil {
		return nil, fmt.Errorf("experiments: building registry: %w", e.regErr)
	}
	return e.reg, nil
}

// Blacklists returns the shared feeds.
func (e *Env) Blacklists() (*blacklist.Set, error) {
	reg, err := e.Registry()
	if err != nil {
		return nil, err
	}
	e.blOnce.Do(func() {
		e.bl = blacklist.FromRegistry(reg, blacklist.DefaultFiller(), e.Opt.Seed)
	})
	return e.bl, nil
}
