package experiments

import (
	"strings"

	"repro/internal/browserpolicy"
	"repro/internal/confusables"
	"repro/internal/punycode"
	"repro/internal/report"
	"repro/internal/ucd"
)

// Section22 measures the paper's motivating gap: how many of the
// detected IDN homographs would modern browsers still display in
// Unicode form? The display model implements the post-2017
// script-mixing and whole-script-confusable rules; everything the
// model shows in Unicode reaches the user's eyes looking like the
// target brand.
func Section22(e *Env) (*report.Experiment, error) {
	exp := &report.Experiment{
		ID:          "Section 2.2",
		Description: "Detected homographs that browser IDN policies still display in Unicode",
		Bench:       "BenchmarkSection22_BrowserGap",
	}
	res, err := Detect(e)
	if err != nil {
		return nil, err
	}
	labels := make([]string, 0, len(res.UnionDomains))
	for _, d := range res.UnionDomains {
		uni, err := punycode.ToUnicodeLabel(strings.TrimSuffix(d, ".com"))
		if err != nil {
			continue
		}
		labels = append(labels, uni)
	}
	uc := confusables.Default().RestrictSources(ucd.IDNASet())
	post := &browserpolicy.Policy{UC: uc}
	pre := &browserpolicy.Policy{} // pre-2017: no whole-script check

	postTally := post.Evaluate(labels)
	preTally := pre.Evaluate(labels)

	tbl := report.NewTable("Browser display of detected homographs",
		"Policy", "Shown as Unicode", "Forced to Punycode")
	tbl.AddRow("pre-2017 (no checks beyond mixing)", preTally.Unicode, preTally.Punycode)
	tbl.AddRow("post-2017 (mixing + whole-script)", postTally.Unicode, postTally.Punycode)
	exp.Tables = append(exp.Tables, tbl)

	reasons := report.NewTable("Post-2017 decisions by reason", "Reason", "Count")
	for _, r := range []browserpolicy.Reason{
		browserpolicy.ReasonSingleScript, browserpolicy.ReasonAllowedMix,
		browserpolicy.ReasonDisallowedMix, browserpolicy.ReasonWholeScript,
	} {
		reasons.AddRow(string(r), postTally.ByReason[r])
	}
	exp.Tables = append(exp.Tables, reasons)

	exp.Addf("homographs evaluated", "3,280 detected", "%d", len(labels))
	exp.Addf("still displayed as Unicode (post-2017)", "the paper's motivating gap", "%d (%.0f%%)",
		postTally.Unicode, 100*float64(postTally.Unicode)/float64(len(labels)))
	exp.Commentary = "Single-script diacritic variants (facébook) and legitimate-looking CJK/Kana combinations (エ業大学) pass every browser check and render in Unicode — the population only a homoglyph-database approach like ShamFinder catches. Script-mixing rules do catch the classic Latin/Cyrillic blends."
	return exp, nil
}
