package experiments

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

var (
	envOnce sync.Once
	envVal  *Env
)

// fastEnv shares one FastFont environment across the package's tests.
func fastEnv(t testing.TB) *Env {
	t.Helper()
	envOnce.Do(func() {
		envVal = NewEnv(Options{Seed: 7, Scale: 0.0001, FastFont: true})
	})
	return envVal
}

func TestUnicodeTables(t *testing.T) {
	e := fastEnv(t)
	t1 := Table1(e)
	if len(t1.Comparisons) == 0 || len(t1.Tables) == 0 {
		t.Error("Table1 empty")
	}
	t3 := Table3(e)
	// SimChar must beat UC ∩ IDNA on Latin homoglyph totals.
	var simTotal, ucTotal string
	for _, c := range t3.Comparisons {
		if strings.HasPrefix(c.Metric, "SimChar total") {
			simTotal = c.Measured
		}
		if strings.HasPrefix(c.Metric, "UC ∩ IDNA total") {
			ucTotal = c.Measured
		}
	}
	if simTotal == "" || ucTotal == "" {
		t.Fatalf("Table3 comparisons missing: %+v", t3.Comparisons)
	}
}

func TestFigure6Ladder(t *testing.T) {
	e := fastEnv(t)
	exp := Figure6(e)
	if len(exp.Tables) == 0 {
		t.Fatal("no ladder table")
	}
	out := exp.Tables[0].String()
	if !strings.Contains(out, "0") {
		t.Errorf("ladder output:\n%s", out)
	}
}

func TestDetectionPipeline(t *testing.T) {
	e := fastEnv(t)
	res, err := Detect(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.UnionDomains) < len(res.UCDomains) || len(res.UnionDomains) < len(res.SimDomains) {
		t.Errorf("union %d smaller than parts %d/%d",
			len(res.UnionDomains), len(res.UCDomains), len(res.SimDomains))
	}
	// The union must detect at least the injected 3,280 homographs.
	if len(res.UnionDomains) < 3280 {
		t.Errorf("union detections = %d, want >= 3280", len(res.UnionDomains))
	}
	// SimChar alone should dominate UC alone by several times.
	if len(res.SimDomains) < 3*len(res.UCDomains) {
		t.Errorf("SimChar %d not >> UC %d", len(res.SimDomains), len(res.UCDomains))
	}
}

func TestProbePipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("probe pipeline spins up the full serving stack")
	}
	e := fastEnv(t)
	out, err := Probe(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.WithNS) < len(out.WithA) {
		t.Errorf("NS %d < A %d", len(out.WithNS), len(out.WithA))
	}
	if out.ScanSum.AnyOpen == 0 {
		t.Fatal("no active homographs found")
	}
	if out.ScanSum.AnyOpen != len(out.Active) {
		t.Errorf("active mismatch: %d vs %d", out.ScanSum.AnyOpen, len(out.Active))
	}
	total := 0
	for _, n := range out.Tally.ByCategory {
		total += n
	}
	if total != len(out.Active) {
		t.Errorf("classified %d of %d active", total, len(out.Active))
	}
	if out.PDNS.Len() == 0 {
		t.Error("passive DNS collected nothing")
	}
}

func TestTableRunsProduceComparisons(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep")
	}
	e := fastEnv(t)
	doc, err := RunAll(e, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Experiments) != len(All()) {
		t.Fatalf("ran %d of %d experiments", len(doc.Experiments), len(All()))
	}
	var buf bytes.Buffer
	if err := doc.Write(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table 8", "Figure 9", "Table 14", "Section 6.4"} {
		if !strings.Contains(out, want) {
			t.Errorf("document missing %q", want)
		}
	}
}

func TestRunAllFilter(t *testing.T) {
	e := fastEnv(t)
	doc, err := RunAll(e, map[string]bool{"table3": true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Experiments) != 1 || doc.Experiments[0].ID != "Table 3" {
		t.Errorf("filter broken: %v", doc.Experiments)
	}
}
