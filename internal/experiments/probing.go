package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/blacklist"
	"repro/internal/dnsclient"
	"repro/internal/dnsserver"
	"repro/internal/dnswire"
	"repro/internal/hostsim"
	"repro/internal/pdns"
	"repro/internal/portscan"
	"repro/internal/punycode"
	"repro/internal/registry"
	"repro/internal/report"
	"repro/internal/webclassify"
	"repro/internal/websim"
)

// ProbeOutcome carries everything the live-probing stages produced:
// DNS reachability, port-scan results, web classification and the
// passive-DNS view. It is cached per Env because it spins up the whole
// simulated serving stack.
type ProbeOutcome struct {
	WithNS      []string // detected homographs with NS records
	WithA       []string // subset with A records
	MX          map[string]bool
	ScanSum     portscan.Summary
	Active      []string // at least one open port
	Classify    []webclassify.Result
	Tally       webclassify.Tally
	PDNS        *pdns.DB
	LiveQueries int64
}

var probeCache = struct {
	env *Env
	out *ProbeOutcome
}{}

// Probe runs the Section 6 measurement pipeline against the simulated
// infrastructure: authoritative DNS (NS/A/MX), TCP port scans of the
// resolvable set, HTTP/HTTPS classification of the responsive set, and
// passive-DNS collection.
func Probe(e *Env) (*ProbeOutcome, error) {
	if probeCache.env == e && probeCache.out != nil {
		return probeCache.out, nil
	}
	reg, err := e.Registry()
	if err != nil {
		return nil, err
	}
	res, err := Detect(e)
	if err != nil {
		return nil, err
	}
	bl, err := e.Blacklists()
	if err != nil {
		return nil, err
	}

	// Authoritative DNS with a passive-DNS tap.
	store := dnsserver.NewStore()
	store.AddZone(reg.BuildProbeZone(0))
	srv := dnsserver.NewServer(store)
	collector := pdns.NewDB()
	srv.OnQuery = collector.Hook()
	if err := srv.ListenAndServe("127.0.0.1:0"); err != nil {
		return nil, fmt.Errorf("experiments: dns server: %w", err)
	}
	defer srv.Close()
	client := dnsclient.New(srv.Addr())
	client.Timeout = 3 * time.Second

	// Stage 1: NS / A / MX probing of every detected homograph.
	probes := client.ProbeBatch(res.UnionDomains, 32)
	out := &ProbeOutcome{MX: make(map[string]bool)}
	for _, p := range probes {
		if p.Err != nil {
			return nil, fmt.Errorf("experiments: probing %s: %w", p.Name, p.Err)
		}
		if p.HasNS {
			out.WithNS = append(out.WithNS, p.Name)
		}
		if p.HasA {
			out.WithA = append(out.WithA, p.Name)
		}
		if p.HasMX {
			out.MX[p.Name] = true
		}
	}

	// Stage 2: web hosting simulation + port scan of the A-record set.
	mapper, err := hostsim.NewMapper()
	if err != nil {
		return nil, err
	}
	web := websim.NewServer()
	if err := web.Start(); err != nil {
		return nil, err
	}
	defer web.Close()
	websim.Deploy(reg, web, mapper)

	scanner := &portscan.Scanner{Resolve: mapper.Resolve, Timeout: time.Second, Workers: 64}
	scanResults := scanner.Scan(out.WithA, []int{80, 443})
	out.ScanSum = portscan.Summarize(scanResults)
	for _, r := range scanResults {
		if r.AnyOpen() {
			out.Active = append(out.Active, r.Domain)
		}
	}

	// Stage 3: web classification of the responsive set.
	db := e.DB()
	classifier := &webclassify.Classifier{
		Resolve:   mapper.Resolve,
		Timeout:   3 * time.Second,
		Workers:   32,
		UserAgent: "Mozilla/5.0 (X11; Linux x86_64) ShamFinder-Survey/1.0",
		Reverter: func(domain string) (string, bool) {
			label := strings.TrimSuffix(domain, ".com")
			uni, err := punycode.ToUnicodeLabel(label)
			if err != nil {
				return "", false
			}
			return db.Revert(uni) + ".com", true
		},
		IsMalicious: bl.AnyContains,
		ParkingNS:   trimDots(registry.ParkingProviders),
		NSLookup: func(domain string) ([]string, error) {
			resp, err := client.Query(domain, dnswire.TypeNS)
			if err != nil {
				return nil, err
			}
			var hosts []string
			for _, rr := range resp.Answers {
				if ns, ok := rr.Data.(dnswire.NS); ok {
					hosts = append(hosts, ns.Host)
				}
			}
			return hosts, nil
		},
	}
	out.Classify = classifier.ClassifyBatch(out.Active)
	out.Tally = webclassify.TallyResults(out.Classify)

	// Stage 4: passive DNS — seed historical counts from ground truth,
	// then drive a live Zipf load through the resolver so the
	// collection path is exercised for real.
	for i := range reg.Homographs {
		h := &reg.Homographs[i]
		collector.Seed(h.ASCII, h.Resolutions)
	}
	driver := &pdns.Driver{Domains: out.Active, Queries: 400, Workers: 8}
	sent, _ := driver.Run(e.Opt.Seed, func(name string) error {
		_, err := client.Query(name, dnswire.TypeA)
		return err
	})
	out.LiveQueries = int64(sent)
	out.PDNS = collector

	probeCache.env, probeCache.out = e, out
	return out, nil
}

// Table10 reports the DNS and port-scan funnel.
func Table10(e *Env) (*report.Experiment, error) {
	exp := &report.Experiment{
		ID:          "Table 10",
		Description: "Port-scan results for the detected IDN homographs",
		Bench:       "BenchmarkTable10_PortScan",
	}
	out, err := Probe(e)
	if err != nil {
		return nil, err
	}
	tbl := report.NewTable("Reachability funnel", "Stage", "# domains")
	tbl.AddRow("with NS records", len(out.WithNS))
	tbl.AddRow("with A records", len(out.WithA))
	tbl.AddRow("TCP/80 open", out.ScanSum.Port80)
	tbl.AddRow("TCP/443 open", out.ScanSum.Port443)
	tbl.AddRow("TCP/80 & TCP/443", out.ScanSum.Both)
	tbl.AddRow("Total (unique)", out.ScanSum.AnyOpen)
	exp.Tables = append(exp.Tables, tbl)

	exp.Addf("NS records", "2,294", "%d", len(out.WithNS))
	exp.Addf("A records", "1,909", "%d", len(out.WithA))
	exp.Addf("TCP/80", "1,642", "%d", out.ScanSum.Port80)
	exp.Addf("TCP/443", "700", "%d", out.ScanSum.Port443)
	exp.Addf("both ports", "695", "%d", out.ScanSum.Both)
	exp.Addf("unique active", "1,647", "%d", out.ScanSum.AnyOpen)
	exp.Commentary = "Roughly half of registered homographs answer on a web port, matching the paper's funnel."
	return exp, nil
}

// Table11 lists the top-10 active homographs by passive-DNS
// resolutions.
func Table11(e *Env) (*report.Experiment, error) {
	exp := &report.Experiment{
		ID:          "Table 11",
		Description: "Top-10 active IDN homographs by DNS resolutions",
		Bench:       "BenchmarkTable11_PassiveDNS",
	}
	reg, err := e.Registry()
	if err != nil {
		return nil, err
	}
	out, err := Probe(e)
	if err != nil {
		return nil, err
	}
	activeSet := make(map[string]bool, len(out.Active))
	for _, d := range out.Active {
		activeSet[d] = true
	}
	top := out.PDNS.TopFiltered(10, func(name string) bool { return activeSet[name] })

	tbl := report.NewTable("Top resolutions", "Domain (unicode)", "Category", "# resolutions", "MX", "Web link", "SNS")
	for _, entry := range top {
		h, ok := reg.Homograph(entry.Name)
		uni, flavor := entry.Name, "-"
		mx, weblink, sns := "", "", ""
		if ok {
			uni = h.Unicode
			flavor = h.Flavor
			if flavor == "" {
				flavor = classOf(out, entry.Name)
			}
			switch {
			case h.MXActive:
				mx = "active"
			case h.MXPast:
				mx = "past"
			}
			if h.WebLink {
				weblink = "yes"
			}
			if h.SNS {
				sns = "yes"
			}
		}
		tbl.AddRow(uni, flavor, entry.Count, mx, weblink, sns)
	}
	exp.Tables = append(exp.Tables, tbl)

	if len(top) > 0 {
		uni, flavor := top[0].Name, "-"
		if h, ok := reg.Homograph(top[0].Name); ok {
			uni, flavor = h.Unicode, h.Flavor
		}
		exp.Addf("top entry", "gmaıl[.]com Phishing 615,447", "%s %s %d",
			uni, flavor, top[0].Count)
	}
	exp.Addf("live queries through the collector", "n/a (Farsight historical)", "%d", out.LiveQueries)
	exp.Commentary = "The most-resolved homograph is an active phishing site imitating gmail with User-Agent cloaking, followed by parked and for-sale registrations — the paper's Table 11 composition. Historical counts are ground-truth-seeded (Farsight substitution, DESIGN.md §1); the live Zipf load exercises the collection path."
	return exp, nil
}

func classOf(out *ProbeOutcome, domain string) string {
	for _, r := range out.Classify {
		if r.Domain == domain {
			return string(r.Category)
		}
	}
	return "-"
}

// Table12 reports the web classification of active homographs.
func Table12(e *Env) (*report.Experiment, error) {
	exp := &report.Experiment{
		ID:          "Table 12",
		Description: "Classification of the active IDN homographs",
		Bench:       "BenchmarkTable12_WebClasses",
	}
	out, err := Probe(e)
	if err != nil {
		return nil, err
	}
	order := []webclassify.Category{
		webclassify.CatParked, webclassify.CatForSale, webclassify.CatRedirect,
		webclassify.CatNormal, webclassify.CatEmpty, webclassify.CatError,
	}
	paper := map[webclassify.Category]string{
		webclassify.CatParked: "348", webclassify.CatForSale: "345",
		webclassify.CatRedirect: "338", webclassify.CatNormal: "281",
		webclassify.CatEmpty: "222", webclassify.CatError: "113",
	}
	tbl := report.NewTable("Active homograph classes", "Category", "Number")
	total := 0
	for _, cat := range order {
		n := out.Tally.ByCategory[cat]
		tbl.AddRow(string(cat), n)
		total += n
		exp.Addf(string(cat), paper[cat], "%d", n)
	}
	tbl.AddRow("Total", total)
	exp.Tables = append(exp.Tables, tbl)
	exp.Addf("total", "1,647", "%d", total)
	exp.Commentary = "Classification runs over live HTTP responses from the simulated hosting (parking boilerplate, Location headers, empty bodies, connection resets), not over ground-truth labels."
	return exp, nil
}

// Table13 breaks down the redirecting homographs.
func Table13(e *Env) (*report.Experiment, error) {
	exp := &report.Experiment{
		ID:          "Table 13",
		Description: "Classification of redirecting IDN homographs",
		Bench:       "BenchmarkTable13_Redirects",
	}
	out, err := Probe(e)
	if err != nil {
		return nil, err
	}
	tbl := report.NewTable("Redirect classes", "Category", "Number")
	rows := []struct {
		class webclassify.RedirectClass
		paper string
	}{
		{webclassify.RedirBrand, "178"},
		{webclassify.RedirLegit, "125"},
		{webclassify.RedirMalicious, "35"},
	}
	total := 0
	for _, r := range rows {
		n := out.Tally.ByRedirect[r.class]
		tbl.AddRow(string(r.class), n)
		total += n
		exp.Addf(string(r.class), r.paper, "%d", n)
	}
	tbl.AddRow("Total", total)
	exp.Tables = append(exp.Tables, tbl)
	exp.Addf("total", "338", "%d", total)
	exp.Commentary = "Brand protection is recognised by reverting the homograph with the homoglyph database and comparing against the Location target; malicious redirects are recognised by blacklist lookup of the target — both live signals."
	return exp, nil
}

// Table14 matches detected homographs against the blacklist feeds.
func Table14(e *Env) (*report.Experiment, error) {
	exp := &report.Experiment{
		ID:          "Table 14",
		Description: "Malicious IDN homographs per blacklist feed",
		Bench:       "BenchmarkTable14_Blacklists",
	}
	bl, err := e.Blacklists()
	if err != nil {
		return nil, err
	}
	res, err := Detect(e)
	if err != nil {
		return nil, err
	}
	rows := blacklist.TableFourteen(bl, res.UCDomains, res.SimDomains, res.UnionDomains)
	tbl := report.NewTable("Blacklist matches", "Homoglyph DB", "hpHosts", "GSB", "Symantec")
	byFeed := make(map[string]blacklist.TableRow, len(rows))
	for _, r := range rows {
		byFeed[r.Feed] = r
	}
	tbl.AddRow("UC", byFeed["hpHosts"].UC, byFeed["GSB"].UC, byFeed["Symantec"].UC)
	tbl.AddRow("SimChar", byFeed["hpHosts"].SimChar, byFeed["GSB"].SimChar, byFeed["Symantec"].SimChar)
	tbl.AddRow("UC ∪ SimChar", byFeed["hpHosts"].Union, byFeed["GSB"].Union, byFeed["Symantec"].Union)
	exp.Tables = append(exp.Tables, tbl)

	exp.Addf("hpHosts UC / SimChar / union", "28 / 222 / 242", "%d / %d / %d",
		byFeed["hpHosts"].UC, byFeed["hpHosts"].SimChar, byFeed["hpHosts"].Union)
	exp.Addf("GSB union", "13", "%d", byFeed["GSB"].Union)
	exp.Addf("Symantec union", "8", "%d", byFeed["Symantec"].Union)
	exp.Commentary = "Incorporating SimChar multiplies the number of blacklist-confirmed malicious homographs the framework surfaces, across all three feeds."
	return exp, nil
}

func trimDots(hosts []string) []string {
	out := make([]string, len(hosts))
	for i, h := range hosts {
		out[i] = strings.TrimSuffix(h, ".")
	}
	return out
}
