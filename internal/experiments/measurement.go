package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/homoglyph"
	"repro/internal/langid"
	"repro/internal/punycode"
	"repro/internal/report"
)

// Table6 counts the domain lists and their IDNs.
func Table6(e *Env) (*report.Experiment, error) {
	exp := &report.Experiment{
		ID:          "Table 6",
		Description: "Domain-name lists and the IDNs they contain",
		Bench:       "BenchmarkTable06_DomainLists",
	}
	reg, err := e.Registry()
	if err != nil {
		return nil, err
	}
	rows := reg.TableSix()
	tbl := report.NewTable(
		fmt.Sprintf("Domain lists (benign corpus scaled ×%g)", e.Opt.Scale),
		"Data", "# domains", "# IDNs", "IDN fraction")
	for _, r := range rows {
		tbl.AddRow(r.Name, r.Domains, r.IDNs,
			fmt.Sprintf("%.2f%%", 100*float64(r.IDNs)/float64(r.Domains)))
	}
	exp.Tables = append(exp.Tables, tbl)
	union := rows[2]
	exp.Addf("union domains", "141,212,035", "%d (×%g scale)", union.Domains, e.Opt.Scale)
	exp.Addf("union IDNs", "955,512 (0.67%)", "%d (%.2f%%)",
		union.IDNs, 100*float64(union.IDNs)/float64(union.Domains))
	exp.Commentary = "The benign corpus scales with -scale while homograph counts stay absolute (homograph-dense sampling, DESIGN.md §1), so the IDN fraction converges to the paper's 0.67% as scale grows."
	return exp, nil
}

// Table7 identifies the language of every registered IDN label.
func Table7(e *Env) (*report.Experiment, error) {
	exp := &report.Experiment{
		ID:          "Table 7",
		Description: "Top languages used for IDNs",
		Bench:       "BenchmarkTable07_Languages",
	}
	reg, err := e.Registry()
	if err != nil {
		return nil, err
	}
	rows := langid.TallyAll(reg.IDNLabels())
	tbl := report.NewTable("IDN languages", "Rank", "Language", "Number", "Fraction")
	for i, r := range rows {
		if i >= 8 {
			break
		}
		tbl.AddRow(i+1, r.Language.Name, r.Count, fmt.Sprintf("%.1f%%", 100*r.Fraction))
	}
	exp.Tables = append(exp.Tables, tbl)
	paperTop := []string{"Chinese 46.5%", "Korean 10.6%", "Japanese 9.3%", "Germany 5.6%", "Turkish 3.6%"}
	for i := 0; i < 5 && i < len(rows); i++ {
		exp.Addf(fmt.Sprintf("rank %d", i+1), paperTop[i], "%s %.1f%%",
			rows[i].Language.Name, 100*rows[i].Fraction)
	}
	exp.Commentary = "East-Asian languages dominate, with Chinese roughly half — the ranking the paper reports. Note the detected fractions drift at small -scale because the homograph population (mostly Latin-lookalike labels) is a larger share of all IDNs."
	return exp, nil
}

// DetectionResult carries the per-database detection outputs shared by
// Tables 8, 9, 14 and Section 6.4.
type DetectionResult struct {
	UC    []core.Match
	Sim   []core.Match
	Union []core.Match

	UCDomains    []string // detected IDNs (with .com), per database
	SimDomains   []string
	UnionDomains []string

	Elapsed       time.Duration // union batch run wall-clock (indexed, parallel)
	StreamElapsed time.Duration // union run through DetectStream
	LinearElapsed time.Duration // union run through the seed linear engine
	IDNs          int           // scanned IDN count
	Refs          int
}

var detectionCache = struct {
	env *Env
	res *DetectionResult
}{}

// Detect runs Algorithm 1 three times — UC only, SimChar only, and the
// union — over every registered IDN against the top-10k references.
// The result is cached per Env.
func Detect(e *Env) (*DetectionResult, error) {
	if detectionCache.env == e && detectionCache.res != nil {
		return detectionCache.res, nil
	}
	reg, err := e.Registry()
	if err != nil {
		return nil, err
	}
	refs := e.Refs().SLDs(e.Opt.RefCount)
	idns := reg.IDNs()
	labels := make([]string, len(idns))
	for i, d := range idns {
		labels[i] = strings.TrimSuffix(d, ".com")
	}

	run := func(src homoglyph.Source) (*core.Detector, []core.Match, time.Duration) {
		det := core.NewDetector(e.DB().WithSources(src), refs)
		start := time.Now()
		matches := det.Detect(labels)
		return det, matches, time.Since(start)
	}
	res := &DetectionResult{IDNs: len(labels), Refs: len(refs)}
	var det *core.Detector
	_, res.UC, _ = run(homoglyph.SourceUC)
	_, res.Sim, _ = run(homoglyph.SourceSimChar)
	det, res.Union, res.Elapsed = run(homoglyph.SourceUC | homoglyph.SourceSimChar)
	res.UCDomains = withCom(core.DetectedIDNs(res.UC))
	res.SimDomains = withCom(core.DetectedIDNs(res.Sim))
	res.UnionDomains = withCom(core.DetectedIDNs(res.Union))

	// Time the two alternative union-engine paths for Section 4.2 on the
	// union detector just built: the zone-scale streaming API and the
	// seed linear scan it replaced.
	start := time.Now()
	in := make(chan string, 256)
	go func() {
		for _, l := range labels {
			in <- l
		}
		close(in)
	}()
	streamed := 0
	for range det.DetectStream(in, 0) {
		streamed++
	}
	res.StreamElapsed = time.Since(start)
	if streamed != len(res.Union) {
		return nil, fmt.Errorf("experiments: stream produced %d matches, batch %d", streamed, len(res.Union))
	}
	start = time.Now()
	for _, l := range labels {
		det.DetectLabelLinear(l)
	}
	res.LinearElapsed = time.Since(start)

	detectionCache.env, detectionCache.res = e, res
	return res, nil
}

func withCom(labels []string) []string {
	out := make([]string, len(labels))
	for i, l := range labels {
		out[i] = l + ".com"
	}
	return out
}

// Table8 reports detected homograph counts per database.
func Table8(e *Env) (*report.Experiment, error) {
	exp := &report.Experiment{
		ID:          "Table 8",
		Description: "Detected IDN homographs for ASCII domains, by homoglyph database",
		Bench:       "BenchmarkTable08_Detection",
	}
	res, err := Detect(e)
	if err != nil {
		return nil, err
	}
	tbl := report.NewTable("Detections", "Homoglyph DB", "Number")
	tbl.AddRow("UC", len(res.UCDomains))
	tbl.AddRow("SimChar", len(res.SimDomains))
	tbl.AddRow("UC ∪ SimChar", len(res.UnionDomains))
	exp.Tables = append(exp.Tables, tbl)

	exp.Addf("UC detections", "436", "%d", len(res.UCDomains))
	exp.Addf("SimChar detections", "3,110", "%d", len(res.SimDomains))
	exp.Addf("union detections", "3,280", "%d", len(res.UnionDomains))
	ratio := float64(len(res.UnionDomains)) / float64(len(res.UCDomains))
	exp.Addf("union / UC ratio", "≈7.5×", "%.1f×", ratio)
	exp.Commentary = "Adding SimChar multiplies detections roughly eightfold over the UC-only baseline (the Quinkert et al. approach), the paper's headline result."
	return exp, nil
}

// Table9 lists the reference domains with the most homographs.
func Table9(e *Env) (*report.Experiment, error) {
	exp := &report.Experiment{
		ID:          "Table 9",
		Description: "Top-5 ASCII domain names with the most IDN homographs",
		Bench:       "BenchmarkTable09_TopTargets",
	}
	res, err := Detect(e)
	if err != nil {
		return nil, err
	}
	hist := core.TargetHistogram(res.Union)
	type tc struct {
		target string
		n      int
	}
	rows := make([]tc, 0, len(hist))
	for t, n := range hist {
		rows = append(rows, tc{t, n})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].n != rows[j].n {
			return rows[i].n > rows[j].n
		}
		return rows[i].target < rows[j].target
	})
	tbl := report.NewTable("Top targets", "Rank", "Domain name", "# homographs", "Alexa rank")
	for i := 0; i < 5 && i < len(rows); i++ {
		tbl.AddRow(i+1, rows[i].target+".com", rows[i].n, e.Refs().Rank(rows[i].target+".com"))
	}
	exp.Tables = append(exp.Tables, tbl)

	paper := []string{"myetherwallet.com (170)", "google.com (114)", "amazon.com (75)", "facebook.com (72)", "allstate.com (68)"}
	for i := 0; i < 5 && i < len(rows); i++ {
		exp.Addf(fmt.Sprintf("rank %d", i+1), paper[i], "%s.com (%d)", rows[i].target, rows[i].n)
	}
	exp.Commentary = "The top target (myetherwallet, Alexa rank ~7,400) and fifth (allstate, ~5,148) are only moderately popular — the paper's observation that homograph attacks also chase mid-tier brands."
	return exp, nil
}

// Throughput measures the Section 4.2 detection rate: seconds per
// reference domain scanning the full IDN set.
func Throughput(e *Env) (*report.Experiment, error) {
	exp := &report.Experiment{
		ID:          "Section 4.2",
		Description: "Detection throughput (Alexa 10k refs × all IDNs)",
		Bench:       "BenchmarkDetectionThroughput",
	}
	res, err := Detect(e)
	if err != nil {
		return nil, err
	}
	perRef := res.Elapsed.Seconds() / float64(res.Refs)
	exp.Addf("total sweep", "743.6 s (141M domains, 955k IDNs)", "%.3f s (%d IDNs)",
		res.Elapsed.Seconds(), res.IDNs)
	exp.Addf("per reference domain", "0.07 s", "%.6f s", perRef)
	exp.Addf("streaming sweep (DetectStream)", "n/a", "%.3f s (%.0f labels/s)",
		res.StreamElapsed.Seconds(), float64(res.IDNs)/res.StreamElapsed.Seconds())
	exp.Addf("seed linear engine", "n/a", "%.3f s (%.1f× slower than indexed)",
		res.LinearElapsed.Seconds(), res.LinearElapsed.Seconds()/res.Elapsed.Seconds())
	exp.Commentary = "Fast enough to screen a newly observed IDN in real time, the paper's requirement for a blocking countermeasure. The indexed engine intersects per-position candidate lists instead of scanning every same-length reference, so the sweep scales with matches rather than with the reference-list size."
	return exp, nil
}

// Revert64 reproduces Section 6.4: map malicious homographs back to
// their original domains and count those whose original is outside the
// Alexa top 1k.
func Revert64(e *Env) (*report.Experiment, error) {
	exp := &report.Experiment{
		ID:          "Section 6.4",
		Description: "Reverting malicious IDNs to their original domains",
		Bench:       "BenchmarkRevert",
	}
	reg, err := e.Registry()
	if err != nil {
		return nil, err
	}
	bl, err := e.Blacklists()
	if err != nil {
		return nil, err
	}
	res, err := Detect(e)
	if err != nil {
		return nil, err
	}
	db := e.DB()
	reverted, nonTop1k := 0, 0
	for _, domain := range res.UnionDomains {
		if !bl.AnyContains(domain) {
			continue
		}
		label := strings.TrimSuffix(domain, ".com")
		uni, err := punycode.ToUnicodeLabel(label)
		if err != nil {
			continue
		}
		original := db.Revert(uni) + ".com"
		reverted++
		rank := e.Refs().Rank(original)
		if rank == 0 || rank > 1000 {
			nonTop1k++
		}
	}
	_ = reg
	exp.Addf("malicious IDNs reverted", "blacklisted set", "%d", reverted)
	exp.Addf("originals outside Alexa top-1k", "91", "%d", nonTop1k)
	exp.Commentary = "Reversion uses the homoglyph database's canonical mapping; a sizeable share of malicious homographs target domains a top-1k reference list would miss, motivating the paper's revert-then-trace workflow."
	return exp, nil
}
