package snapshot

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"reflect"
	"sync"
	"testing"

	"repro/internal/confusables"
	"repro/internal/core"
	"repro/internal/fontgen"
	"repro/internal/homoglyph"
	"repro/internal/punycode"
	"repro/internal/simchar"
	"repro/internal/stats"
	"repro/internal/ucd"
)

var (
	fixtureOnce sync.Once
	fixtureDB   *homoglyph.DB
)

// builtDB is the freshly compiled database every snapshot is compared
// against: mid-size synthetic font, default UC, full Δ scan.
func builtDB(t testing.TB) *homoglyph.DB {
	t.Helper()
	fixtureOnce.Do(func() {
		font := fontgen.Generate(fontgen.Options{SkipCJK: true, SkipHangul: true})
		sim, _ := simchar.Build(font, ucd.IDNASet(), simchar.Options{})
		fixtureDB = homoglyph.New(confusables.Default(), sim, 0)
	})
	return fixtureDB
}

var testRefs = []string{
	"google", "facebook", "amazon", "apple", "paypal",
	"myetherwallet", "binance", "allstate", "netflix", "spotify",
}

// fuzzCorpus builds a deterministic mixed corpus: real homographs
// (reference labels with 1–2 database substitutions), clean ASCII
// labels, junk ACE labels, and raw garbage — the input families a zone
// sweep actually sees.
func fuzzCorpus(t testing.TB, db *homoglyph.DB, n int) []string {
	t.Helper()
	rng := stats.NewRNG(0x50a9)
	var corpus []string
	for len(corpus) < n {
		switch rng.Intn(4) {
		case 0: // homograph of a reference
			ref := testRefs[rng.Intn(len(testRefs))]
			runes := []rune(ref)
			for subs := 1 + rng.Intn(2); subs > 0; subs-- {
				pos := rng.Intn(len(runes))
				if glyphs := db.Homoglyphs(runes[pos]); len(glyphs) > 0 {
					runes[pos] = glyphs[rng.Intn(len(glyphs))]
				}
			}
			if a, err := punycode.ToASCIILabel(string(runes)); err == nil {
				corpus = append(corpus, a)
			}
		case 1: // clean ASCII label
			b := make([]byte, 1+rng.Intn(12))
			for i := range b {
				b[i] = byte('a' + rng.Intn(26))
			}
			corpus = append(corpus, string(b))
		case 2: // syntactically plausible but junk ACE label
			b := make([]byte, 1+rng.Intn(10))
			for i := range b {
				b[i] = byte('a' + rng.Intn(26))
			}
			corpus = append(corpus, "xn--"+string(b))
		default: // raw garbage, possibly invalid
			b := make([]byte, rng.Intn(8))
			for i := range b {
				b[i] = byte(32 + rng.Intn(224))
			}
			corpus = append(corpus, string(b))
		}
	}
	return corpus
}

// TestRoundTripDetectionParity is the tentpole guarantee: build → save →
// load must produce byte-for-byte identical DetectLabel results versus
// the freshly built detector, across a fuzzed corpus, for both the
// embedded-detector path and a detector rebuilt over the loaded DB.
func TestRoundTripDetectionParity(t *testing.T) {
	db := builtDB(t)
	det := core.NewDetector(db, testRefs)

	loadedDB, loadedDet, err := Unmarshal(Marshal(db, det))
	if err != nil {
		t.Fatal(err)
	}
	if loadedDet == nil {
		t.Fatal("detector section was not round-tripped")
	}
	rebuilt := core.NewDetector(loadedDB, testRefs)

	corpus := fuzzCorpus(t, db, 4000)
	matches := 0
	for _, label := range corpus {
		want := det.DetectLabel(label)
		matches += len(want)
		if got := loadedDet.DetectLabel(label); !reflect.DeepEqual(got, want) {
			t.Fatalf("embedded detector diverges on %q:\n got %v\nwant %v", label, got, want)
		}
		if got := rebuilt.DetectLabel(label); !reflect.DeepEqual(got, want) {
			t.Fatalf("rebuilt detector diverges on %q:\n got %v\nwant %v", label, got, want)
		}
	}
	if matches == 0 {
		t.Fatal("corpus produced no matches; parity test is vacuous")
	}
}

// TestRoundTripDBQueries checks the non-detection query surface of the
// loaded database: Confusable, Homoglyphs, Canonical, Chars, and the
// source-restricted views all answer as the built one does.
func TestRoundTripDBQueries(t *testing.T) {
	db := builtDB(t)
	loaded, _, err := Unmarshal(Marshal(db, nil))
	if err != nil {
		t.Fatal(err)
	}
	chars := db.Chars().Runes()
	if got := loaded.Chars().Runes(); !reflect.DeepEqual(got, chars) {
		t.Fatalf("Chars diverges: %d vs %d runes", len(got), len(chars))
	}
	rng := stats.NewRNG(99)
	probe := append([]rune{'o', 'a', 'l', 0x043E, 0x0585, 0xFFFF}, chars[:min(len(chars), 2000)]...)
	for _, r := range probe {
		if got, want := loaded.Homoglyphs(r), db.Homoglyphs(r); !reflect.DeepEqual(got, want) {
			t.Fatalf("Homoglyphs(U+%04X) = %v, want %v", r, got, want)
		}
		if got, want := loaded.Canonical(r), db.Canonical(r); got != want {
			t.Fatalf("Canonical(U+%04X) = U+%04X, want U+%04X", r, got, want)
		}
		other := chars[rng.Intn(len(chars))]
		gotOK, gotSrc := loaded.Confusable(r, other)
		wantOK, wantSrc := db.Confusable(r, other)
		if gotOK != wantOK || gotSrc != wantSrc {
			t.Fatalf("Confusable(U+%04X, U+%04X) = %v/%v, want %v/%v", r, other, gotOK, gotSrc, wantOK, wantSrc)
		}
	}
	for _, use := range []homoglyph.Source{homoglyph.SourceUC, homoglyph.SourceSimChar} {
		lv, dv := loaded.WithSources(use), db.WithSources(use)
		for _, r := range probe[:100] {
			if got, want := lv.Homoglyphs(r), dv.Homoglyphs(r); !reflect.DeepEqual(got, want) {
				t.Fatalf("WithSources(%v).Homoglyphs(U+%04X) diverges", use, r)
			}
		}
	}
}

// TestMarshalDeterministic: equal inputs must serialize identically, so
// snapshot artifacts diff cleanly across builds.
func TestMarshalDeterministic(t *testing.T) {
	db := builtDB(t)
	det := core.NewDetector(db, testRefs)
	a := Marshal(db, det)
	b := Marshal(db, det)
	if !bytes.Equal(a, b) {
		t.Fatal("two Marshals of the same database differ")
	}
	// And a re-marshal of the loaded artifacts is byte-identical too:
	// the canonical layout survives a round trip.
	db2, det2, err := Unmarshal(a)
	if err != nil {
		t.Fatal(err)
	}
	if c := Marshal(db2, det2); !bytes.Equal(a, c) {
		t.Fatal("marshal(unmarshal(x)) != x")
	}
}

func TestRejectsBadMagic(t *testing.T) {
	db := builtDB(t)
	data := Marshal(db, nil)
	data[0] ^= 0xFF
	if _, _, err := Unmarshal(data); !errors.Is(err, ErrMagic) {
		t.Fatalf("err = %v, want ErrMagic", err)
	}
}

// reseal recomputes the trailing checksum after a deliberate mutation,
// so version/structure checks are exercised rather than the crc.
func reseal(data []byte) {
	binary.LittleEndian.PutUint32(data[len(data)-4:], crc32.ChecksumIEEE(data[:len(data)-4]))
}

func TestRejectsWrongVersion(t *testing.T) {
	db := builtDB(t)
	data := Marshal(db, nil)
	binary.LittleEndian.PutUint32(data[len(Magic):], Version+1)
	reseal(data)
	if _, _, err := Unmarshal(data); !errors.Is(err, ErrVersion) {
		t.Fatalf("err = %v, want ErrVersion", err)
	}
}

func TestRejectsCorruption(t *testing.T) {
	db := builtDB(t)
	det := core.NewDetector(db, testRefs)
	clean := Marshal(db, det)
	rng := stats.NewRNG(0xbad)
	for trial := 0; trial < 200; trial++ {
		data := append([]byte(nil), clean...)
		pos := len(Magic) + 4 + rng.Intn(len(data)-len(Magic)-4)
		data[pos] ^= byte(1 + rng.Intn(255))
		if _, _, err := Unmarshal(data); !errors.Is(err, ErrChecksum) {
			t.Fatalf("flip at %d: err = %v, want ErrChecksum", pos, err)
		}
	}
}

// TestRejectsTruncation: every prefix must fail cleanly — no panic, no
// silent partial load.
func TestRejectsTruncation(t *testing.T) {
	db := builtDB(t)
	det := core.NewDetector(db, testRefs)
	clean := Marshal(db, det)
	rng := stats.NewRNG(0x7bc)
	cuts := []int{0, 1, len(Magic), headerSize, headerSize + 1, len(clean) - 5, len(clean) - 1}
	for i := 0; i < 60; i++ {
		cuts = append(cuts, rng.Intn(len(clean)))
	}
	for _, cut := range cuts {
		if _, _, err := Unmarshal(clean[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes was accepted", cut)
		}
	}
}

// TestRejectsResealedStructuralDamage attacks the section decoders
// directly: with the checksum recomputed the payload validators are the
// only defense, and they must reject (not panic) on arbitrary damage.
func TestRejectsResealedStructuralDamage(t *testing.T) {
	db := builtDB(t)
	det := core.NewDetector(db, testRefs)
	clean := Marshal(db, det)
	rng := stats.NewRNG(0x5ea1)
	rejected := 0
	for trial := 0; trial < 400; trial++ {
		data := append([]byte(nil), clean...)
		pos := headerSize + rng.Intn(len(data)-headerSize-4)
		data[pos] ^= byte(1 + rng.Intn(255))
		reseal(data)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("flip at %d: decoder panicked: %v", pos, r)
				}
			}()
			if _, _, err := Unmarshal(data); err != nil {
				rejected++
			}
		}()
	}
	// Some single-byte flips legitimately decode (e.g. a delta value or
	// mask bit changes), but structural damage must usually be caught.
	if rejected == 0 {
		t.Fatal("no resealed mutation was ever rejected; validators look dead")
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	db := builtDB(t)
	var buf bytes.Buffer
	if err := Write(&buf, db, nil); err != nil {
		t.Fatal(err)
	}
	loaded, det, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if det != nil {
		t.Fatal("unexpected embedded detector")
	}
	if got, want := loaded.Homoglyphs('o'), db.Homoglyphs('o'); !reflect.DeepEqual(got, want) {
		t.Fatalf("Homoglyphs(o) = %v, want %v", got, want)
	}
}

func TestFileRoundTrip(t *testing.T) {
	db := builtDB(t)
	det := core.NewDetector(db, testRefs)
	path := t.TempDir() + "/test.snap"
	if err := WriteFile(path, db, det); err != nil {
		t.Fatal(err)
	}
	_, loadedDet, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loadedDet == nil {
		t.Fatal("no detector in file")
	}
	idn := mustACE(t, "gооgle") // two Cyrillic о
	m := loadedDet.DetectLabel(idn)
	if len(m) != 1 || m[0].Reference != "google" {
		t.Fatalf("DetectLabel(%s) = %v", idn, m)
	}
}

func mustACE(t testing.TB, label string) string {
	t.Helper()
	a, err := punycode.ToASCIILabel(label)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// TestNilComponents: a DB built without UC or SimChar must survive the
// round trip with its nil components preserved.
func TestNilComponents(t *testing.T) {
	font := fontgen.Generate(fontgen.Options{SkipCJK: true, SkipHangul: true})
	sim, _ := simchar.Build(font, ucd.IDNASet(), simchar.Options{})
	for _, tc := range []struct {
		name string
		db   *homoglyph.DB
	}{
		{"sim-only", homoglyph.New(nil, sim, 0)},
		{"uc-only", homoglyph.New(confusables.Default(), nil, 0)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			loaded, _, err := Unmarshal(Marshal(tc.db, nil))
			if err != nil {
				t.Fatal(err)
			}
			if (loaded.UC() == nil) != (tc.db.UC() == nil) || (loaded.SimChar() == nil) != (tc.db.SimChar() == nil) {
				t.Fatal("component presence not preserved")
			}
			for _, r := range []rune{'o', 'a', 0x043E} {
				if got, want := loaded.Homoglyphs(r), tc.db.Homoglyphs(r); !reflect.DeepEqual(got, want) {
					t.Fatalf("Homoglyphs(U+%04X) = %v, want %v", r, got, want)
				}
			}
		})
	}
}
