package snapshot

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
)

// The seen-set artifact: the zone watcher's durable memory of every
// FQDN fingerprint it has ever observed, persisted in the SHAMSNAP
// codec family — magic, version, length-prefixed bulk array, trailing
// CRC-32, written via temp-file + rename. The payload is one sorted
// array of 64-bit hashes, so loading is a checksum pass plus a single
// bulk decode (no per-entry parsing, no map build): a 10M-domain set
// loads in milliseconds and answers membership by binary search.

// SeenMagic identifies a seen-set file.
const SeenMagic = "SHAMSEEN"

// SeenVersion is the current seen-set format version.
const SeenVersion = 1

const seenHeaderSize = len(SeenMagic) + 4 + 8 // magic + version u32 + count u64

// MarshalSeenSet serializes the fingerprints. They must be sorted
// ascending and deduplicated — the reader validates and rejects
// otherwise, because an unsorted set would silently break the binary
// search and re-emit the whole zone as "new".
func MarshalSeenSet(hashes []uint64) ([]byte, error) {
	buf := make([]byte, 0, seenHeaderSize+8*len(hashes)+4)
	buf = append(buf, SeenMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, SeenVersion)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(hashes)))
	var prev uint64
	for i, h := range hashes {
		if i > 0 && h <= prev {
			return nil, fmt.Errorf("snapshot: seen-set not sorted/unique at index %d", i)
		}
		prev = h
		buf = binary.LittleEndian.AppendUint64(buf, h)
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf)), nil
}

// UnmarshalSeenSet validates magic, version, length and checksum, then
// decodes the sorted fingerprint array. Corruption anywhere — a
// flipped bit, a truncated tail, an out-of-order entry — fails loudly:
// a silently shrunken seen-set would re-emit already-reported domains,
// the one mistake a monitoring pipeline must never make.
func UnmarshalSeenSet(data []byte) ([]uint64, error) {
	if len(data) < seenHeaderSize+4 {
		return nil, fmt.Errorf("%w: seen-set of %d bytes", ErrTruncated, len(data))
	}
	if string(data[:len(SeenMagic)]) != SeenMagic {
		return nil, fmt.Errorf("snapshot: not a seen-set file")
	}
	version := binary.LittleEndian.Uint32(data[len(SeenMagic):])
	if version != SeenVersion {
		return nil, fmt.Errorf("%w: seen-set v%d, this build reads v%d", ErrVersion, version, SeenVersion)
	}
	sum := binary.LittleEndian.Uint32(data[len(data)-4:])
	if got := crc32.ChecksumIEEE(data[:len(data)-4]); got != sum {
		return nil, fmt.Errorf("%w: seen-set crc %08x, stored %08x", ErrChecksum, got, sum)
	}
	n := binary.LittleEndian.Uint64(data[len(SeenMagic)+4:])
	payload := data[seenHeaderSize : len(data)-4]
	if uint64(len(payload)) != 8*n {
		return nil, fmt.Errorf("%w: seen-set claims %d entries with %d payload bytes", ErrTruncated, n, len(payload))
	}
	hashes := make([]uint64, n)
	var prev uint64
	for i := range hashes {
		h := binary.LittleEndian.Uint64(payload[8*i:])
		if i > 0 && h <= prev {
			return nil, fmt.Errorf("snapshot: seen-set out of order at index %d", i)
		}
		prev = h
		hashes[i] = h
	}
	return hashes, nil
}

// WriteSeenSetFile persists the sorted fingerprints atomically.
func WriteSeenSetFile(path string, hashes []uint64) error {
	data, err := MarshalSeenSet(hashes)
	if err != nil {
		return err
	}
	return WriteFileAtomic(path, data)
}

// ReadSeenSetFile loads a seen-set. A missing file is not an error —
// it is the empty set every watch deployment starts from — and is
// reported as (nil, nil).
func ReadSeenSetFile(path string) ([]uint64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	return UnmarshalSeenSet(data)
}
