// Package snapshot persists the framework's fully compiled artifacts —
// the flattened homoglyph index (UC ∪ SimChar union, canonical targets,
// source masks), the component databases needed to answer accounting
// queries, and optionally a detector's per-(length, position) posting
// lists — as one versioned, checksummed binary blob.
//
// The paper's build pipeline (font rasterization, the Section 3.3
// pairwise Δ scan, UC parsing, index compilation) costs seconds per
// process; a production deployment that scales horizontally or runs as a
// short-lived CLI pays that on every cold start. A snapshot collapses it
// into one file read: every section is a length-prefixed bulk array, so
// loading is a checksum pass plus slice decodes — no per-entry parsing,
// no font, no Δ scan. Detection results are byte-for-byte identical to a
// fresh build (property-tested), and the format is forward-versioned so
// future index layouts can bump Version without silently misreading old
// files.
//
// Layout (all integers little-endian):
//
//	magic "SHAMSNAP" | version u32 | flags u32 | sections... | crc32 u32
//
// where the CRC-32 (IEEE) covers everything before it. Sections appear
// in fixed order, gated by flag bits: UC entries, SimChar pairs, the
// homoglyph index, and the optional detector.
package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"repro/internal/confusables"
	"repro/internal/core"
	"repro/internal/homoglyph"
	"repro/internal/simchar"
)

// Magic identifies a shamfinder snapshot file.
const Magic = "SHAMSNAP"

// Version is the current format version. Readers reject anything else:
// a compiled artifact silently misread as an older layout would corrupt
// detection, the one failure mode a checksum cannot catch.
//
// v2 extended the detector section with the TR39 skeleton index (rep
// map, many-to-one sequences, skeleton→refs posting lists); v1 files
// must be recompiled.
const Version = 2

// Section flag bits.
const (
	flagUC uint32 = 1 << iota
	flagSimChar
	flagDetector
)

// Errors returned by Unmarshal; all are also wrapped with context.
var (
	ErrMagic     = errors.New("snapshot: not a shamfinder snapshot")
	ErrVersion   = errors.New("snapshot: unsupported format version")
	ErrChecksum  = errors.New("snapshot: checksum mismatch")
	ErrTruncated = errors.New("snapshot: truncated")
)

const headerSize = len(Magic) + 8 // magic + version + flags
const minSize = headerSize + 4    // + trailing crc

// Marshal serializes the database and (when non-nil) a detector built
// over it.
func Marshal(db *homoglyph.DB, det *core.Detector) []byte {
	var flags uint32
	if db.UC() != nil {
		flags |= flagUC
	}
	if db.SimChar() != nil {
		flags |= flagSimChar
	}
	if det != nil {
		flags |= flagDetector
	}
	e := &enc{}
	e.raw([]byte(Magic))
	e.u32(Version)
	e.u32(flags)
	if uc := db.UC(); uc != nil {
		writeUC(e, uc)
	}
	if sim := db.SimChar(); sim != nil {
		writeSimChar(e, sim)
	}
	writeIndex(e, db.Snapshot())
	if det != nil {
		writeDetector(e, det.Snapshot())
	}
	e.u32(crc32.ChecksumIEEE(e.buf))
	return e.buf
}

// Unmarshal reconstructs the database and the embedded detector (nil if
// none was serialized). It validates magic, version, and checksum before
// touching any section, and every slice header against the remaining
// byte count, so corrupt or truncated input fails cleanly instead of
// panicking or over-allocating.
func Unmarshal(data []byte) (*homoglyph.DB, *core.Detector, error) {
	if len(data) < minSize {
		return nil, nil, fmt.Errorf("%w: %d bytes", ErrTruncated, len(data))
	}
	if string(data[:len(Magic)]) != Magic {
		return nil, nil, ErrMagic
	}
	version := binary.LittleEndian.Uint32(data[len(Magic):])
	if version != Version {
		return nil, nil, fmt.Errorf("%w: file has v%d, this build reads v%d", ErrVersion, version, Version)
	}
	sum := binary.LittleEndian.Uint32(data[len(data)-4:])
	if got := crc32.ChecksumIEEE(data[:len(data)-4]); got != sum {
		return nil, nil, fmt.Errorf("%w: crc %08x, stored %08x", ErrChecksum, got, sum)
	}
	flags := binary.LittleEndian.Uint32(data[len(Magic)+4:])

	d := &dec{data: data[:len(data)-4], off: headerSize}
	var uc *confusables.DB
	var sim *simchar.DB
	if flags&flagUC != 0 {
		uc = readUC(d)
	}
	if flags&flagSimChar != 0 {
		sim = readSimChar(d)
	}
	idx := readIndex(d)
	var detSnap *core.Snapshot
	if flags&flagDetector != 0 {
		detSnap = readDetector(d)
	}
	if d.err != nil {
		return nil, nil, d.err
	}
	if d.off != len(d.data) {
		return nil, nil, fmt.Errorf("snapshot: %d trailing bytes after last section", len(d.data)-d.off)
	}

	db, err := homoglyph.FromSnapshot(idx, uc, sim)
	if err != nil {
		return nil, nil, err
	}
	var det *core.Detector
	if detSnap != nil {
		det, err = core.NewDetectorFromSnapshot(db, detSnap)
		if err != nil {
			return nil, nil, err
		}
	}
	return db, det, nil
}

// Write serializes to w.
func Write(w io.Writer, db *homoglyph.DB, det *core.Detector) error {
	_, err := w.Write(Marshal(db, det))
	return err
}

// Read deserializes from r (reading it fully).
func Read(r io.Reader) (*homoglyph.DB, *core.Detector, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, nil, fmt.Errorf("snapshot: %w", err)
	}
	return Unmarshal(data)
}

// WriteFile writes the snapshot to path atomically: the bytes land in a
// temp file in the same directory and are renamed into place, so a
// crash mid-write never destroys an existing artifact and a worker
// fleet cold-starting from the path never observes a truncated file.
func WriteFile(path string, db *homoglyph.DB, det *core.Detector) error {
	return WriteFileAtomic(path, Marshal(db, det))
}

// WriteFileAtomic writes data to path through a same-directory temp
// file, fsync, and rename — the durability discipline every artifact
// in the SHAMSNAP family (snapshots, seen-sets, watch checkpoints)
// shares: a reader never observes a half-written file, and a crash
// mid-write leaves the previous artifact intact.
//
//shamlint:allow durable-write this IS the blessed helper — temp + fsync + rename is the atomic publish itself
//shamlint:allow close-check the unchecked Close sits on the error-cleanup path; the write error is already being returned
func WriteFileAtomic(path string, data []byte) error {
	dir, base := filepath.Split(path)
	tmp, err := os.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return err
	}
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		return cleanup(err)
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// ReadFile loads a snapshot from path — the one-file cold start.
func ReadFile(path string) (*homoglyph.DB, *core.Detector, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	return Unmarshal(data)
}

// --- section writers ---

func writeUC(e *enc, uc *confusables.DB) {
	entries := uc.Entries()
	e.u32(uint32(len(entries)))
	for _, en := range entries {
		e.i32(int32(en.Source))
	}
	for _, en := range entries {
		e.i32(int32(len(en.Target)))
	}
	for _, en := range entries {
		for _, t := range en.Target {
			e.i32(int32(t))
		}
	}
	comments := make([]string, len(entries))
	for i, en := range entries {
		comments[i] = en.Comment
	}
	e.strings(comments)
}

func writeSimChar(e *enc, sim *simchar.DB) {
	pairs := sim.Pairs()
	e.u32(uint32(len(pairs)))
	for _, p := range pairs {
		e.i32(int32(p.A))
		e.i32(int32(p.B))
		e.i32(int32(p.Delta))
	}
}

func writeIndex(e *enc, s *homoglyph.Snapshot) {
	e.u8(byte(s.Use))
	e.runes(s.Runes)
	e.i32s(s.Counts)
	e.runes(s.UCSkel)
	e.runes(s.SimASCII)
	e.runes(s.SimLow)
	e.runes(s.Partners)
	masks := make([]byte, len(s.Masks))
	for i, m := range s.Masks {
		masks[i] = byte(m)
	}
	e.bytes(masks)
}

func writeDetector(e *enc, s *core.Snapshot) {
	e.strings(s.Refs)
	e.u32(uint32(len(s.Buckets)))
	for i := range s.Buckets {
		b := &s.Buckets[i]
		e.u32(uint32(b.Length))
		e.i32s(b.RefIDs)
		e.i32s(b.PosCounts)
		e.runes(b.Runes)
		e.i32s(b.ListLens)
		e.i32s(b.ListIDs)
	}
	// v2: the skeleton index.
	e.runes(s.SkelRepRunes)
	e.runes(s.SkelReps)
	e.runes(s.SkelSeqRunes)
	e.i32s(s.SkelSeqLens)
	e.runes(s.SkelSeqs)
	e.strings(s.SkelKeys)
	e.i32s(s.SkelListLens)
	e.i32s(s.SkelListIDs)
}

// --- section readers ---

func readUC(d *dec) *confusables.DB {
	n := d.count(4)
	sources := d.i32s(n)
	targetLens := d.i32s(n)
	total := 0
	for _, l := range targetLens {
		if l < 0 {
			d.fail("negative UC target length")
			return nil
		}
		total += int(l)
	}
	targets := d.i32s(d.checkCount(total, 4))
	comments := d.strings()
	if d.err != nil {
		return nil
	}
	if len(comments) != n {
		d.fail("UC comment table length mismatch")
		return nil
	}
	uc := confusables.New()
	off := 0
	for i := 0; i < n; i++ {
		l := int(targetLens[i])
		tgt := make([]rune, l)
		for j := 0; j < l; j++ {
			tgt[j] = rune(targets[off+j])
		}
		off += l
		uc.Add(rune(sources[i]), tgt, comments[i])
	}
	return uc
}

func readSimChar(d *dec) *simchar.DB {
	n := d.count(12)
	triples := d.i32s(d.checkCount(3*n, 4))
	if d.err != nil {
		return nil
	}
	pairs := make([]simchar.Pair, n)
	for i := 0; i < n; i++ {
		pairs[i] = simchar.Pair{
			A:     rune(triples[3*i]),
			B:     rune(triples[3*i+1]),
			Delta: int(triples[3*i+2]),
		}
	}
	return simchar.FromPairs(pairs)
}

func readIndex(d *dec) *homoglyph.Snapshot {
	s := &homoglyph.Snapshot{}
	s.Use = homoglyph.Source(d.u8())
	s.Runes = d.runes(d.count(4))
	s.Counts = d.i32s(d.count(4))
	s.UCSkel = d.runes(d.count(4))
	s.SimASCII = d.runes(d.count(4))
	s.SimLow = d.runes(d.count(4))
	s.Partners = d.runes(d.count(4))
	masks := d.bytes(d.count(1))
	if d.err != nil {
		return s
	}
	s.Masks = make([]homoglyph.Source, len(masks))
	for i, m := range masks {
		s.Masks[i] = homoglyph.Source(m)
	}
	return s
}

func readDetector(d *dec) *core.Snapshot {
	s := &core.Snapshot{}
	s.Refs = d.strings()
	nb := d.count(4)
	if d.err != nil {
		return s
	}
	s.Buckets = make([]core.BucketSnapshot, nb)
	for i := 0; i < nb; i++ {
		b := &s.Buckets[i]
		b.Length = int32(d.u32())
		b.RefIDs = d.i32s(d.count(4))
		b.PosCounts = d.i32s(d.count(4))
		b.Runes = d.runes(d.count(4))
		b.ListLens = d.i32s(d.count(4))
		b.ListIDs = d.i32s(d.count(4))
		if d.err != nil {
			return s
		}
	}
	s.SkelRepRunes = d.runes(d.count(4))
	s.SkelReps = d.runes(d.count(4))
	s.SkelSeqRunes = d.runes(d.count(4))
	s.SkelSeqLens = d.i32s(d.count(4))
	s.SkelSeqs = d.runes(d.count(4))
	s.SkelKeys = d.strings()
	s.SkelListLens = d.i32s(d.count(4))
	s.SkelListIDs = d.i32s(d.count(4))
	return s
}

// --- primitive codec ---

// enc accumulates the output buffer; every write appends.
type enc struct{ buf []byte }

func (e *enc) raw(b []byte) { e.buf = append(e.buf, b...) }

func (e *enc) u8(v byte) { e.buf = append(e.buf, v) }

func (e *enc) u32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }

func (e *enc) i32(v int32) { e.u32(uint32(v)) }

func (e *enc) i32s(s []int32) {
	e.u32(uint32(len(s)))
	for _, v := range s {
		e.u32(uint32(v))
	}
}

func (e *enc) runes(s []rune) {
	e.u32(uint32(len(s)))
	for _, v := range s {
		e.u32(uint32(v))
	}
}

func (e *enc) bytes(s []byte) {
	e.u32(uint32(len(s)))
	e.raw(s)
}

// strings writes a table as lengths plus one concatenated blob, so the
// reader can materialize all values out of a single allocation.
func (e *enc) strings(s []string) {
	e.u32(uint32(len(s)))
	for _, v := range s {
		e.u32(uint32(len(v)))
	}
	for _, v := range s {
		e.raw([]byte(v))
	}
}

// dec is a sticky-error cursor over the payload. Count reads validate
// the claimed element count against the bytes actually remaining before
// any allocation, so a corrupt header can't request a huge buffer.
type dec struct {
	data []byte
	off  int
	err  error
}

func (d *dec) fail(msg string) {
	if d.err == nil {
		d.err = fmt.Errorf("snapshot: %s at offset %d", msg, d.off)
	}
}

func (d *dec) remaining() int { return len(d.data) - d.off }

func (d *dec) u8() byte {
	if d.err != nil {
		return 0
	}
	if d.remaining() < 1 {
		d.err = fmt.Errorf("%w: need 1 byte at offset %d", ErrTruncated, d.off)
		return 0
	}
	v := d.data[d.off]
	d.off++
	return v
}

func (d *dec) u32() uint32 {
	if d.err != nil {
		return 0
	}
	if d.remaining() < 4 {
		d.err = fmt.Errorf("%w: need 4 bytes at offset %d", ErrTruncated, d.off)
		return 0
	}
	v := binary.LittleEndian.Uint32(d.data[d.off:])
	d.off += 4
	return v
}

// count reads an element count and validates count*elemSize against the
// remaining payload.
func (d *dec) count(elemSize int) int {
	n := int(d.u32())
	return d.checkCount(n, elemSize)
}

// checkCount validates an externally derived count the same way.
func (d *dec) checkCount(n, elemSize int) int {
	if d.err != nil {
		return 0
	}
	if n < 0 || n > d.remaining()/elemSize {
		d.err = fmt.Errorf("%w: %d elements claimed with %d bytes left at offset %d",
			ErrTruncated, n, d.remaining(), d.off)
		return 0
	}
	return n
}

func (d *dec) i32s(n int) []int32 {
	if d.checkCount(n, 4) == 0 {
		return nil
	}
	out := make([]int32, n)
	raw := d.data[d.off : d.off+4*n]
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(raw[4*i:]))
	}
	d.off += 4 * n
	return out
}

func (d *dec) runes(n int) []rune {
	if d.checkCount(n, 4) == 0 {
		return nil
	}
	out := make([]rune, n)
	raw := d.data[d.off : d.off+4*n]
	for i := range out {
		out[i] = rune(binary.LittleEndian.Uint32(raw[4*i:]))
	}
	d.off += 4 * n
	return out
}

func (d *dec) bytes(n int) []byte {
	if d.checkCount(n, 1) == 0 {
		return nil
	}
	out := d.data[d.off : d.off+n : d.off+n]
	d.off += n
	return out
}

// strings reads a table written by enc.strings (self-delimiting: the
// count is part of the encoding). All values share one backing string,
// sliced out of a single blob conversion.
func (d *dec) strings() []string {
	n := d.count(4)
	if d.err != nil {
		return nil
	}
	lens := d.i32s(n)
	total := 0
	for _, l := range lens {
		if l < 0 {
			d.fail("negative string length")
			return nil
		}
		total += int(l)
	}
	blob := string(d.bytes(d.checkCount(total, 1)))
	if d.err != nil {
		return nil
	}
	out := make([]string, n)
	off := 0
	for i := 0; i < n; i++ {
		l := int(lens[i])
		out[i] = blob[off : off+l]
		off += l
	}
	return out
}
